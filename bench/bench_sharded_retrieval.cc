/**
 * @file bench_sharded_retrieval.cc
 * Scatter-gather sweep over the sharded retrieval service: shard
 * counts x partitioners x backends on one synthetic corpus. Reports
 * recall against the exact single-index oracle, estimated scan bytes
 * per query, batch wall time, critical-path (slowest-shard) time, and
 * merge time — the functional counterparts of the quantities the
 * analytical ScannModel prices. `--json out.json` additionally emits
 * the rows machine-readably for perf-trajectory tracking.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/recall.h"
#include "retrieval/serving/sharded_index.h"

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::serving;

  const size_t n = 20'000;
  const size_t dim = 64;
  const size_t num_queries = 32;
  const size_t k = 10;
  Rng rng(31);
  const ann::Matrix data = ann::GenClustered(n, dim, 64, 0.3f, rng);
  const ann::Matrix queries =
      ann::GenQueriesNear(data, num_queries, 0.1f, rng);

  const ann::FlatIndex flat(data.Clone(), ann::Metric::kL2);
  const auto truth = flat.SearchBatch(queries, k);

  Banner("sharded scatter-gather retrieval sweep (20K x 64-d)");
  TextTable table;
  table.SetHeader({"backend", "partitioner", "shards", "recall@10",
                   "KB/query", "batch ms", "slowest shard ms",
                   "merge ms"});

  ThreadPool pool(4);
  JsonWriter json = StartBenchJson("sharded_retrieval");
  json.Key("rows").Int(static_cast<int64_t>(n));
  json.Key("dim").Int(static_cast<int64_t>(dim));
  json.Key("queries").Int(static_cast<int64_t>(num_queries));
  json.Key("results").BeginArray();

  const std::vector<ShardBackend> backends = {
      ShardBackend::kFlat, ShardBackend::kIvfPq,
      ShardBackend::kScannTree};
  const std::vector<PartitionerKind> partitioners = {
      PartitionerKind::kRoundRobin, PartitionerKind::kHash,
      PartitionerKind::kKMeansBalanced};

  for (ShardBackend backend : backends) {
    for (PartitionerKind partitioner : partitioners) {
      for (int shards : {1, 2, 4, 8}) {
        ShardedIndexOptions options;
        options.num_shards = shards;
        options.partitioner = partitioner;
        options.backend = backend;
        options.ivfpq.nlist = 32;
        options.nprobe = 8;
        options.rerank = 50;
        options.tree.levels = 1;
        options.tree.fanout = 16;
        options.beam = 8;
        const ShardedIndex sharded(data.Clone(), options);

        ShardSearchStats stats;
        const auto results =
            sharded.SearchBatch(queries, k, &pool, &stats);
        const double recall = ann::MeanRecallAtK(results, truth, k);
        const double batch_ms =
            (stats.MaxShardSeconds() + stats.merge_seconds) * 1e3;
        const double bytes_per_query =
            stats.TotalScanBytes() / static_cast<double>(num_queries);

        table.AddRow({ShardBackendName(backend),
                      PartitionerName(partitioner),
                      std::to_string(shards), TextTable::Num(recall, 3),
                      TextTable::Num(bytes_per_query / kKiB, 4),
                      TextTable::Num(batch_ms, 4),
                      TextTable::Num(stats.MaxShardSeconds() * 1e3, 4),
                      TextTable::Num(stats.merge_seconds * 1e3, 4)});

        json.BeginObject();
        json.Key("backend").String(ShardBackendName(backend));
        json.Key("partitioner").String(PartitionerName(partitioner));
        json.Key("shards").Int(shards);
        json.Key("recall_at_10").Number(recall);
        json.Key("bytes_per_query").Number(bytes_per_query);
        json.Key("batch_seconds").Number(batch_ms / 1e3);
        json.Key("max_shard_seconds").Number(stats.MaxShardSeconds());
        json.Key("merge_seconds").Number(stats.merge_seconds);
        json.EndObject();
      }
    }
  }
  table.Print();
  json.EndArray();
  FinishBenchJson(json, JsonOutputPath(argc, argv));

  std::printf(
      "(exact flat sharding keeps recall at 1.0 for every partitioner —\n"
      " the merge is lossless; approximate backends trade recall for\n"
      " scanned bytes per shard exactly as the P_scan knob prescribes)\n");
  return 0;
}
