/**
 * @file bench_runtime_slo.cc
 * SLO sweep over the online serving runtime: offered-load multipliers
 * x workload scenarios (Poisson, bursty MMPP, diurnal) against one
 * optimizer-chosen schedule on a live sharded retrieval tier. Reports
 * delivered throughput, TTFT/TPOT percentiles, queue waits, rejection
 * counts, and SLO attainment per operating point — the knee of the
 * attainment curve is the capacity a (TTFT, TPOT) target really buys,
 * which the closed-form QPS alone cannot show. `--json out.json`
 * emits the rows machine-readably for perf-trajectory tracking.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::runtime;

  // Live tier: small enough that every sweep point stays sub-second.
  Rng rng(51);
  ann::Matrix corpus = ann::GenClustered(10'000, 32, 32, 0.3f, rng);
  const ann::Matrix query_pool =
      ann::GenQueriesNear(corpus, 128, 0.1f, rng);
  serving::ShardedIndexOptions tier_options;
  tier_options.num_shards = 4;
  tier_options.backend = serving::ShardBackend::kIvf;
  tier_options.ivf.nlist = 32;
  tier_options.nprobe = 8;
  tier_options.num_threads = 1;
  const serving::ShardedIndex tier(std::move(corpus), tier_options);

  // Optimizer-chosen schedule for the paper's Case I at 8B.
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  opt::SearchOptions grid;
  grid.batch_sizes = {1, 4, 16, 64};
  grid.decode_batch_sizes = {16, 64, 256};
  const opt::ScheduledPoint chosen =
      opt::Optimizer(model, grid).Search().MaxQpsPerChip();

  RuntimeOptions base_options;
  base_options.admission_queue_limit = 512;
  base_options.slo.ttft_seconds = chosen.perf.ttft * 3.0 + 0.1;
  base_options.slo.tpot_seconds = chosen.perf.tpot * 3.0;

  // Windowed attainment + burn-rate alerting per operating point: the
  // scalar attainment says how much of the run met the SLO, the worst
  // window and the alert count say how the misses clustered.
  obs::TimeSeriesOptions ts_options;
  ts_options.window_seconds = 0.1;
  ts_options.windows_per_level = 32;
  obs::SloAlertOptions alert_options;
  alert_options.attainment_goal = 0.95;
  alert_options.rules.push_back({});  // Default page rule.
  alert_options.rules.back().short_window_seconds = 0.3;
  alert_options.rules.back().long_window_seconds = 1.5;

  Banner("runtime SLO sweep (optimizer-chosen schedule, live scans)");
  std::printf("schedule: analytical %.1f QPS, TTFT %.1f ms; SLO "
              "(TTFT %.0f ms, TPOT %.1f ms)\n",
              chosen.perf.qps, ToMillis(chosen.perf.ttft),
              base_options.slo.ttft_seconds * 1e3,
              base_options.slo.tpot_seconds * 1e3);

  TextTable table;
  table.SetHeader({"workload", "load x", "QPS", "rejected", "p50 TTFT ms",
                   "p95 TTFT ms", "p99 TTFT ms", "p95 TPOT ms",
                   "p95 wait ms", "SLO att.", "worst win", "alerts"});

  JsonWriter json = StartBenchJson("runtime_slo");
  json.Key("analytical_qps").Number(chosen.perf.qps);
  json.Key("slo_ttft_seconds").Number(base_options.slo.ttft_seconds);
  json.Key("slo_tpot_seconds").Number(base_options.slo.tpot_seconds);
  json.Key("attainment_goal").Number(alert_options.attainment_goal);
  json.Key("results").BeginArray();

  const int requests = 500;
  const std::vector<double> loads = {0.3, 0.6, 0.9, 1.2, 2.0};
  for (const std::string& scenario :
       {std::string("poisson"), std::string("mmpp"),
        std::string("diurnal")}) {
    for (double load : loads) {
      const double qps = chosen.perf.qps * load;
      ArrivalTrace trace;
      if (scenario == "poisson") {
        trace = PoissonTrace(requests, qps, 71);
      } else if (scenario == "mmpp") {
        MmppOptions mmpp;
        mmpp.quiet_qps = qps * 0.5;
        mmpp.burst_qps = qps * 3.0;
        mmpp.mean_quiet_seconds = 1.0;
        mmpp.mean_burst_seconds = 0.25;
        trace = MmppTrace(requests, mmpp, 71);
      } else {
        DiurnalOptions diurnal;
        diurnal.mean_qps = qps;
        diurnal.period_seconds = 8.0;
        diurnal.amplitude = 0.8;
        trace = DiurnalTrace(requests, diurnal, 71);
      }
      obs::TelemetryTimeSeries series(ts_options);
      obs::SloAlertEngine alert_engine(alert_options);
      RuntimeOptions options = base_options;
      options.timeseries = &series;
      options.alerts = &alert_engine;
      const ServingRuntime server(model, chosen.schedule, tier, options);
      const RuntimeResult result = server.Serve(trace, query_pool);

      double min_window_attainment = 1.0;
      for (int level = 0; level < ts_options.levels; ++level) {
        for (const obs::WindowStats& window : series.Level(level)) {
          if (window.completed + window.rejected > 0 &&
              window.Attainment() < min_window_attainment) {
            min_window_attainment = window.Attainment();
          }
        }
      }
      int64_t alerts_fired = 0;
      for (const obs::AlertTransition& transition :
           alert_engine.transitions()) {
        alerts_fired += transition.firing ? 1 : 0;
      }

      table.AddRow({scenario, TextTable::Num(load, 2),
                    TextTable::Num(result.throughput, 4),
                    std::to_string(result.rejected),
                    TextTable::Num(result.ttft.Percentile(0.5) * 1e3, 4),
                    TextTable::Num(result.ttft.Percentile(0.95) * 1e3, 4),
                    TextTable::Num(result.ttft.Percentile(0.99) * 1e3, 4),
                    TextTable::Num(result.tpot.Percentile(0.95) * 1e3, 4),
                    TextTable::Num(
                        result.queue_wait.Percentile(0.95) * 1e3, 4),
                    TextTable::Num(result.slo_attainment, 4),
                    TextTable::Num(min_window_attainment, 4),
                    std::to_string(alerts_fired)});

      json.BeginObject();
      json.Key("workload").String(scenario);
      json.Key("load_multiplier").Number(load);
      json.Key("offered_qps").Number(qps);
      json.Key("throughput").Number(result.throughput);
      json.Key("rejected").Int(result.rejected);
      json.Key("p50_ttft").Number(result.ttft.Percentile(0.5));
      json.Key("p95_ttft").Number(result.ttft.Percentile(0.95));
      json.Key("p99_ttft").Number(result.ttft.Percentile(0.99));
      json.Key("p95_tpot").Number(result.tpot.Percentile(0.95));
      json.Key("p95_queue_wait").Number(result.queue_wait.Percentile(0.95));
      json.Key("slo_attainment").Number(result.slo_attainment);
      json.Key("min_window_attainment").Number(min_window_attainment);
      json.Key("windows_closed").Int(series.windows_closed());
      json.Key("alert_transitions")
          .Int(static_cast<int64_t>(alert_engine.transitions().size()));
      json.Key("alerts_fired").Int(alerts_fired);
      json.Key("real_scan_seconds").Number(result.real_scan_seconds);
      json.Key("real_scan_bytes").Number(result.real_scan_bytes);
      json.EndObject();
    }
  }
  table.Print();
  json.EndArray();
  FinishBenchJson(json, JsonOutputPath(argc, argv));

  std::printf(
      "(attainment holds near 1.0 below capacity and collapses past\n"
      " it; bursty MMPP traffic breaks the SLO earlier than Poisson at\n"
      " the same mean load — the queueing headroom the closed form\n"
      " cannot price)\n");
  return 0;
}
