/**
 * @file bench_ablation_prefix_cache.cc
 * Ablation (DESIGN.md / paper §8 related work): document-level KV
 * caching (RAGCache / CacheBlend style). Sweeps the prefix-cache hit
 * rate on Case I and reports how the bottleneck mix and the optimized
 * QPS/Chip shift — the paper predicts caching "will increase the
 * importance of retrieval and decoding performance".
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Ablation: KV prefix caching on Case I (70B LLM)");
  TextTable table;
  table.SetHeader({"hit rate", "retrieval %", "prefix %", "decode %",
                   "RAGO max QPS/Chip"});
  for (double hit : {0.0, 0.5, 0.9}) {
    core::RAGSchema schema = core::MakeHyperscaleSchema(70, 1);
    schema.workload.prefix_cache_hit_rate = hit;
    const core::PipelineModel model(schema, DefaultCluster());
    double shares[3] = {0, 0, 0};
    for (const core::StageShare& share : model.TimeBreakdown()) {
      switch (share.stage) {
        case core::StageType::kRetrieval:
          shares[0] = share.fraction;
          break;
        case core::StageType::kPrefix:
          shares[1] = share.fraction;
          break;
        case core::StageType::kDecode:
          shares[2] = share.fraction;
          break;
        default:
          break;
      }
    }
    const opt::OptimizerResult result =
        opt::Optimizer(model, StandardGrid()).Search();
    table.AddRow({TextTable::Num(hit, 2),
                  TextTable::Num(100 * shares[0], 3),
                  TextTable::Num(100 * shares[1], 3),
                  TextTable::Num(100 * shares[2], 3),
                  TextTable::Num(result.MaxQpsPerChip().perf.qps_per_chip,
                                 4)});
  }
  table.Print();
  std::printf("(caching retrieved-document KV shifts the bottleneck from "
              "prefix\n toward retrieval and decode, as the paper's "
              "related-work analysis predicts)\n");
  return 0;
}
