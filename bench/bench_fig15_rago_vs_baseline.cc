/**
 * @file bench_fig15_rago_vs_baseline.cc
 * Reproduces paper Figure 15 (the headline result): RAGO versus the
 * LLM-only-system extension baseline on Case II (long-context, 70B,
 * 1M tokens) and Case IV (rewriter + reranker, 70B), 128-XPU cluster.
 *
 * Paper shape: RAGO achieves ~1.7x (C-II) and ~1.5x (C-IV) higher max
 * QPS/Chip, and up to 55% lower TTFT at matched throughput.
 *
 * Also reports the optimizer's thread-pool scaling on this search
 * space: wall-clock of the full Algorithm-1 search at 1 vs 8 threads
 * (bit-identical frontiers; pinned by test_determinism). `--json
 * out.json` emits both the figure numbers and the scaling data.
 */
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct CaseReport {
  std::string name;
  double rago_max_qpc = 0.0;
  double base_max_qpc = 0.0;
  double speedup = 0.0;
  double paper_speedup = 0.0;
  /// At the baseline's max QPS/Chip; NaN (JSON null) when no RAGO
  /// frontier point reaches that throughput.
  double ttft_reduction_pct = std::numeric_limits<double>::quiet_NaN();
};

CaseReport Compare(const char* name, const rago::core::RAGSchema& schema,
                   double paper_speedup) {
  using namespace rago;
  using namespace rago::bench;

  const core::PipelineModel model(schema, LargeCluster());
  const opt::Optimizer optimizer(model, StandardGrid());
  const opt::OptimizerResult rago_result = optimizer.Search();
  const opt::OptimizerResult baseline = optimizer.SearchBaseline();

  Banner(std::string("Figure 15 ") + name);
  PrintFrontier("RAGO", rago_result.pareto);
  PrintFrontier("Baseline (LLM-only extension)", baseline.pareto);

  CaseReport report;
  report.name = name;
  report.paper_speedup = paper_speedup;
  report.rago_max_qpc = rago_result.MaxQpsPerChip().perf.qps_per_chip;
  report.base_max_qpc = baseline.MaxQpsPerChip().perf.qps_per_chip;
  report.speedup = report.rago_max_qpc / report.base_max_qpc;
  std::printf("max QPS/Chip: RAGO %.3f vs baseline %.3f -> %.2fx "
              "(paper: %.1fx)\n",
              report.rago_max_qpc, report.base_max_qpc, report.speedup,
              paper_speedup);

  // TTFT at matched throughput: lowest RAGO TTFT that still meets the
  // baseline's best QPS/Chip.
  const double base_ttft = baseline.MaxQpsPerChip().perf.ttft;
  const double rago_ttft =
      TtftAtThroughput(rago_result.pareto, report.base_max_qpc);
  if (rago_ttft > 0) {
    report.ttft_reduction_pct = 100.0 * (1.0 - rago_ttft / base_ttft);
    std::printf("TTFT at baseline's max throughput: RAGO %.3f s vs "
                "baseline %.3f s -> %.0f%% reduction (paper: up to 55%%)\n",
                rago_ttft, base_ttft, report.ttft_reduction_pct);
  }
  return report;
}

/// Wall-clock of the full Fig. 15 search space (both cases) at one
/// thread count; `frontier` receives every (TTFT, QPS/Chip) point so
/// the caller can assert the search is thread-count-invariant.
double TimedSearchSeconds(int num_threads,
                          std::vector<std::pair<double, double>>* frontier) {
  using namespace rago;
  using namespace rago::bench;
  opt::SearchOptions options = StandardGrid();
  options.num_threads = num_threads;
  frontier->clear();
  const Clock::time_point start = Clock::now();
  for (const core::RAGSchema& schema :
       {core::MakeLongContextSchema(70, 1'000'000),
        core::MakeRewriterRerankerSchema(70)}) {
    const core::PipelineModel model(schema, LargeCluster());
    const opt::OptimizerResult result =
        opt::Optimizer(model, options).Search();
    for (const opt::ScheduledPoint& point : result.pareto) {
      frontier->emplace_back(point.perf.ttft, point.perf.qps_per_chip);
    }
  }
  return SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;

  const std::string json_path = JsonOutputPath(argc, argv);

  std::vector<CaseReport> reports;
  reports.push_back(
      Compare("(a) Case II: long-context 70B, 1M tokens",
              core::MakeLongContextSchema(70, 1'000'000), 1.7));
  reports.push_back(
      Compare("(b) Case IV: rewriter + reranker, 70B",
              core::MakeRewriterRerankerSchema(70), 1.5));

  // --- Optimizer thread-pool scaling on this search space. ---
  Banner("Algorithm-1 search wall-clock vs threads");
  std::vector<std::pair<double, double>> frontier_serial;
  std::vector<std::pair<double, double>> frontier_parallel;
  const double t1 = TimedSearchSeconds(1, &frontier_serial);
  const double t8 = TimedSearchSeconds(8, &frontier_parallel);
  const double scaling = t1 / t8;
  std::printf("search wall-clock: 1 thread %.3f s, 8 threads %.3f s -> "
              "%.2fx speedup (%d hardware threads)\n",
              t1, t8, scaling, DefaultNumThreads());
  // Point-for-point equality, not just matching sizes: this is the
  // bench-level witness of the determinism contract.
  const bool identical = frontier_serial == frontier_parallel;
  if (identical) {
    std::printf("frontiers bit-identical across thread counts (%zu "
                "points)\n",
                frontier_serial.size());
  } else {
    std::printf("WARNING: frontiers diverged across thread counts "
                "(%zu vs %zu points) — determinism contract broken\n",
                frontier_serial.size(), frontier_parallel.size());
  }

  if (!json_path.empty()) {
    JsonWriter json = StartBenchJson("fig15");
    json.Key("cases").BeginArray();
    for (const CaseReport& report : reports) {
      json.BeginObject()
          .Key("name").String(report.name)
          .Key("rago_max_qps_per_chip").Number(report.rago_max_qpc)
          .Key("baseline_max_qps_per_chip").Number(report.base_max_qpc)
          .Key("speedup").Number(report.speedup)
          .Key("paper_speedup").Number(report.paper_speedup)
          .Key("ttft_reduction_pct").Number(report.ttft_reduction_pct)
          .EndObject();
    }
    json.EndArray()
        .Key("optimizer_scaling").BeginObject()
            .Key("search_seconds_1_thread").Number(t1)
            .Key("search_seconds_8_threads").Number(t8)
            .Key("speedup_8_over_1").Number(scaling)
            .Key("hardware_threads").Int(DefaultNumThreads())
            .Key("frontier_points").Int(
                static_cast<int64_t>(frontier_serial.size()))
            .Key("frontiers_identical").Bool(identical)
        .EndObject();
    FinishBenchJson(json, json_path);
  }
  // Make the determinism witness enforceable for scripted runs.
  return identical ? 0 : 1;
}
