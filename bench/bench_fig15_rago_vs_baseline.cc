/**
 * @file bench_fig15_rago_vs_baseline.cc
 * Reproduces paper Figure 15 (the headline result): RAGO versus the
 * LLM-only-system extension baseline on Case II (long-context, 70B,
 * 1M tokens) and Case IV (rewriter + reranker, 70B), 128-XPU cluster.
 *
 * Paper shape: RAGO achieves ~1.7x (C-II) and ~1.5x (C-IV) higher max
 * QPS/Chip, and up to 55% lower TTFT at matched throughput.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

void Compare(const char* name, const rago::core::RAGSchema& schema,
             double paper_speedup) {
  using namespace rago;
  using namespace rago::bench;

  const core::PipelineModel model(schema, LargeCluster());
  const opt::Optimizer optimizer(model, StandardGrid());
  const opt::OptimizerResult rago_result = optimizer.Search();
  const opt::OptimizerResult baseline = optimizer.SearchBaseline();

  Banner(std::string("Figure 15 ") + name);
  PrintFrontier("RAGO", rago_result.pareto);
  PrintFrontier("Baseline (LLM-only extension)", baseline.pareto);

  const double rago_max = rago_result.MaxQpsPerChip().perf.qps_per_chip;
  const double base_max = baseline.MaxQpsPerChip().perf.qps_per_chip;
  std::printf("max QPS/Chip: RAGO %.3f vs baseline %.3f -> %.2fx "
              "(paper: %.1fx)\n",
              rago_max, base_max, rago_max / base_max, paper_speedup);

  // TTFT at matched throughput: lowest RAGO TTFT that still meets the
  // baseline's best QPS/Chip.
  const double base_ttft = baseline.MaxQpsPerChip().perf.ttft;
  const double rago_ttft = TtftAtThroughput(rago_result.pareto, base_max);
  if (rago_ttft > 0) {
    std::printf("TTFT at baseline's max throughput: RAGO %.3f s vs "
                "baseline %.3f s -> %.0f%% reduction (paper: up to 55%%)\n",
                rago_ttft, base_ttft, 100.0 * (1.0 - rago_ttft / base_ttft));
  }
}

}  // namespace

int main() {
  Compare("(a) Case II: long-context 70B, 1M tokens",
          rago::core::MakeLongContextSchema(70, 1'000'000), 1.7);
  Compare("(b) Case IV: rewriter + reranker, 70B",
          rago::core::MakeRewriterRerankerSchema(70), 1.5);
  return 0;
}
