/**
 * @file bench_fig10_idleness.cc
 * Reproduces paper Figure 10b: normalized decoding latency caused
 * purely by batching iterative retrieval requests. Retrieval and
 * prefix latencies are set to zero so all slowdown is idle time spent
 * waiting for the iterative batch to fill.
 *
 * Paper shape: latency ~1.0 when the iterative batch is much smaller
 * than the decode batch; up to ~2.8-3.1x when they are comparable or
 * the iterative batch exceeds the decode pool.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sim/iterative_sim.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Figure 10b: normalized decode latency from batching idleness");
  std::printf("(4 retrievals/sequence, 256 decode tokens, zero-latency "
              "retrieval+prefix)\n");

  const std::vector<int> decode_batches = {4, 8, 16, 64, 128, 256};
  const std::vector<int> iterative_batches = {256, 128, 64, 16, 8, 4, 2, 1};

  TextTable table;
  std::vector<std::string> header = {"iter\\decode"};
  for (int d : decode_batches) {
    header.push_back(std::to_string(d));
  }
  table.SetHeader(header);

  for (int iterative : iterative_batches) {
    std::vector<std::string> row = {std::to_string(iterative)};
    for (int decode : decode_batches) {
      sim::IterativeSimConfig config;
      config.decode_batch = decode;
      config.iterative_batch = iterative;
      config.decode_tokens = 256;
      config.retrievals_per_sequence = 4;
      config.step_latency = 1.0;
      config.round_latency = 0.0;
      config.num_sequences = std::max(512, decode * 4);
      config.seed = 99;
      const auto result = sim::SimulateIterativeDecode(config);
      row.push_back(TextTable::Num(result.normalized_latency, 3));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("(paper heatmap: 1.00 along the bottom row, up to 3.08 at\n"
              " iterative batch >> decode batch, 2.77 on the diagonal)\n");
  return 0;
}
