/**
 * @file bench_fig05_rag_vs_llmonly.cc
 * Reproduces paper Figure 5: TTFT vs QPS/Chip Pareto frontiers for
 * RAG with small models (1B, 8B) versus LLM-only serving with larger
 * models (8B, 70B) on the 16-server / 64-XPU cluster.
 *
 * Paper shape to reproduce: RAG 8B beats LLM-only 70B on max QPS/Chip
 * (~1.5x in the paper); RAG 1B and RAG 8B are nearly identical because
 * both are retrieval-bound.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Figure 5: larger LLM vs RAG with smaller models");

  struct System {
    const char* name;
    core::RAGSchema schema;
  };
  const std::vector<System> systems = {
      {"RAG 1B", core::MakeHyperscaleSchema(1, 1)},
      {"RAG 8B", core::MakeHyperscaleSchema(8, 1)},
      {"LLM-only 8B", core::MakeLlmOnlySchema(8)},
      {"LLM-only 70B", core::MakeLlmOnlySchema(70)},
  };

  double rag8_max = 0.0;
  double rag1_max = 0.0;
  double llm70_max = 0.0;
  for (const System& system : systems) {
    const core::PipelineModel model(system.schema, DefaultCluster());
    const opt::Optimizer optimizer(model, StandardGrid());
    const opt::OptimizerResult result = optimizer.Search();
    PrintFrontier(system.name, result.pareto);
    const double max_qpc = result.MaxQpsPerChip().perf.qps_per_chip;
    if (std::string(system.name) == "RAG 8B") {
      rag8_max = max_qpc;
    } else if (std::string(system.name) == "RAG 1B") {
      rag1_max = max_qpc;
    } else if (std::string(system.name) == "LLM-only 70B") {
      llm70_max = max_qpc;
    }
  }

  Banner("Figure 5 headline ratios");
  std::printf("RAG 8B vs LLM-only 70B max QPS/Chip: %.2fx (paper: 1.5x)\n",
              rag8_max / llm70_max);
  std::printf("RAG 1B vs RAG 8B max QPS/Chip:       %.2fx (paper: ~1x)\n",
              rag1_max / rag8_max);
  return 0;
}
