/**
 * @file bench_obs_trajectory.cc
 * Perf-trajectory harness: one end-to-end observed serving run plus a
 * kernel roofline profile, written as BENCH_runtime.json and compared
 * run-over-run against a committed baseline.
 *
 * This is the perf counterpart of test_fig15_regression: where that
 * test freezes *accuracy* (speedup bands over the cost model), this
 * bench freezes the serving stack's *behavior and performance
 * envelope*. One document, three comparison classes:
 *
 *  - `pinned` — exact-match fields (outcome digest, request counts,
 *    trace span counts, metric counters, kernel variant). The bench
 *    forces scalar kernels so these are machine-invariant; any drift
 *    is a real behavior change.
 *  - `virtual` — virtual-clock doubles (throughput, percentiles,
 *    roofline accounting). Deterministic given the build; compared at
 *    rel 1e-6 (above the %.9g emission precision, below any real
 *    change).
 *  - `measured` — wall-clock numbers (machine peaks, achieved GB/s,
 *    scheduler overhead req/s). Compared as positive and within a
 *    x16 band: wide enough for CI jitter and machine-class spread,
 *    tight enough to catch order-of-magnitude regressions.
 *  - `info` — machine-dependent classification (memory- vs
 *    compute-bound, ridge intensity, measured-provider schedule
 *    choice); reported, never compared.
 *
 * Usage:
 *   bench_obs_trajectory [--quick] [--json BENCH_runtime.json]
 *                        [--baseline bench/baselines/BENCH_runtime.json]
 *
 * With `--json`, also writes `<path>.trace.json` — the Chrome
 * trace-event export of the observed run (chrome://tracing-loadable),
 * uploaded as a CI artifact next to the metrics document. With
 * `--baseline`, exits non-zero listing every band violation.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/json_reader.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/perf/roofline.h"
#include "retrieval/serving/calibration.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/obs/trace.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"

namespace {

using namespace rago;

/// Formats a schedule's decision key as one compact string.
std::string ScheduleKeyString(const core::Schedule& s) {
  std::string out = "g[";
  for (size_t i = 0; i < s.chain_group.size(); ++i) {
    out += (i ? "," : "") + std::to_string(s.chain_group[i]);
  }
  out += "]x[";
  for (size_t i = 0; i < s.group_chips.size(); ++i) {
    out += (i ? "," : "") + std::to_string(s.group_chips[i]);
  }
  out += "]b[";
  for (size_t i = 0; i < s.chain_batch.size(); ++i) {
    out += (i ? "," : "") + std::to_string(s.chain_batch[i]);
  }
  out += "]d" + std::to_string(s.decode_chips) + "/" +
         std::to_string(s.decode_batch) + "r" +
         std::to_string(s.retrieval_servers) + "/" +
         std::to_string(s.retrieval_batch);
  return out;
}

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

void WriteKernelAccounting(JsonWriter& json,
                           const retrieval::KernelRooflinePoint& point) {
  json.Key(point.kernel).BeginObject();
  json.Key("bytes").Number(point.work.bytes);
  json.Key("flops").Number(point.work.flops);
  json.Key("intensity").Number(point.intensity);
  json.EndObject();
}

void WriteKernelMeasurement(JsonWriter& json,
                            const retrieval::KernelRooflinePoint& point) {
  json.Key(point.kernel).BeginObject();
  json.Key("achieved_gbps").Number(point.achieved_bytes_per_sec / 1e9);
  json.Key("achieved_gflops").Number(point.achieved_flops_per_sec / 1e9);
  json.Key("seconds").Number(point.seconds);
  json.Key("roofline_efficiency").Number(point.roofline_efficiency);
  json.EndObject();
}

/// One comparator finding, e.g. "pinned.digest: 'a' != 'b'".
using Failures = std::vector<std::string>;

std::string TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

/// How a section's numbers are judged.
enum class NumberPolicy {
  kExact,      ///< Bit-for-bit after %.9g emission ("pinned").
  kRelative,   ///< Rel 1e-6 ("virtual": deterministic doubles).
  kBand,       ///< Positive and within x16 either way ("measured").
};

bool NumbersMatch(double fresh, double baseline, NumberPolicy policy) {
  switch (policy) {
    case NumberPolicy::kExact:
      return fresh == baseline;
    case NumberPolicy::kRelative: {
      const double scale = std::max(std::fabs(fresh), std::fabs(baseline));
      return std::fabs(fresh - baseline) <= 1e-6 * scale + 1e-12;
    }
    case NumberPolicy::kBand:
      return fresh > 0.0 && baseline > 0.0 && fresh <= baseline * 16.0 &&
             baseline <= fresh * 16.0;
  }
  return false;
}

/// Recursively compares two nodes under one policy; key sets must
/// match exactly in every section so silently added or dropped fields
/// fail loudly instead of escaping the bands.
void CompareNode(const JsonValue& fresh, const JsonValue& baseline,
                 NumberPolicy policy, const std::string& path,
                 Failures& failures) {
  if (fresh.type() != baseline.type()) {
    failures.push_back(path + ": type " + TypeName(fresh.type()) +
                       " != baseline " + TypeName(baseline.type()));
    return;
  }
  switch (fresh.type()) {
    case JsonValue::Type::kNull:
      return;
    case JsonValue::Type::kBool:
      if (fresh.AsBool() != baseline.AsBool()) {
        failures.push_back(path + ": " +
                           std::string(fresh.AsBool() ? "true" : "false") +
                           " != baseline " +
                           (baseline.AsBool() ? "true" : "false"));
      }
      return;
    case JsonValue::Type::kNumber:
      if (!NumbersMatch(fresh.AsNumber(), baseline.AsNumber(), policy)) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%s: %.9g vs baseline %.9g",
                      path.c_str(), fresh.AsNumber(), baseline.AsNumber());
        failures.push_back(buf);
      }
      return;
    case JsonValue::Type::kString:
      if (fresh.AsString() != baseline.AsString()) {
        failures.push_back(path + ": \"" + fresh.AsString() +
                           "\" != baseline \"" + baseline.AsString() + "\"");
      }
      return;
    case JsonValue::Type::kArray: {
      if (fresh.size() != baseline.size()) {
        failures.push_back(path + ": " + std::to_string(fresh.size()) +
                           " elements != baseline " +
                           std::to_string(baseline.size()));
        return;
      }
      for (size_t i = 0; i < fresh.size(); ++i) {
        CompareNode(fresh.Items()[i], baseline.Items()[i], policy,
                    path + "[" + std::to_string(i) + "]", failures);
      }
      return;
    }
    case JsonValue::Type::kObject: {
      for (const auto& [key, value] : fresh.Members()) {
        const JsonValue* other = baseline.Find(key);
        if (other == nullptr) {
          failures.push_back(path + "." + key + ": missing from baseline");
          continue;
        }
        CompareNode(value, *other, policy, path + "." + key, failures);
      }
      for (const auto& [key, value] : baseline.Members()) {
        (void)value;
        if (fresh.Find(key) == nullptr) {
          failures.push_back(path + "." + key +
                             ": in baseline but not produced");
        }
      }
      return;
    }
  }
}

/// Compares a freshly produced document against the committed
/// baseline. Returns the number of violations (0 = pass).
size_t CompareAgainstBaseline(const JsonValue& fresh,
                              const JsonValue& baseline) {
  Failures failures;
  if (fresh.At("schema_version").AsInt() !=
      baseline.At("schema_version").AsInt()) {
    failures.push_back("schema_version mismatch: refusing to compare");
  } else {
    CompareNode(fresh.At("bench"), baseline.At("bench"),
                NumberPolicy::kExact, "bench", failures);
    CompareNode(fresh.At("pinned"), baseline.At("pinned"),
                NumberPolicy::kExact, "pinned", failures);
    CompareNode(fresh.At("virtual"), baseline.At("virtual"),
                NumberPolicy::kRelative, "virtual", failures);
    CompareNode(fresh.At("measured"), baseline.At("measured"),
                NumberPolicy::kBand, "measured", failures);
    // "info" is machine-dependent by design: never compared.
  }
  for (const std::string& failure : failures) {
    std::printf("REGRESSION %s\n", failure.c_str());
  }
  return failures.size();
}

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      RAGO_REQUIRE(i + 1 < argc, flag + " requires a value");
      return argv[i + 1];
    }
  }
  return "";
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::runtime;

  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_path = JsonOutputPath(argc, argv);
  const std::string baseline_path = FlagValue(argc, argv, "--baseline");

  // Machine-invariant pinned fields require the scalar kernel table:
  // forced here (and restored on exit) so the digest and the profiled
  // variant never depend on the host's SIMD support.
  const bool was_forced = ann::kernels::ForceScalarActive();
  ann::kernels::SetForceScalar(true);

  // --- Observed serving run: one operating point, fully instrumented.
  Rng rng(51);
  ann::Matrix corpus =
      ann::GenClustered(quick ? 4'000 : 20'000, 32, 24, 0.3f, rng);
  const ann::Matrix query_pool =
      ann::GenQueriesNear(corpus, 128, 0.1f, rng);
  serving::ShardedIndexOptions tier_options;
  tier_options.num_shards = 4;
  tier_options.backend = serving::ShardBackend::kIvf;
  tier_options.ivf.nlist = 32;
  tier_options.nprobe = 8;
  tier_options.num_threads = 1;
  const serving::ShardedIndex tier(std::move(corpus), tier_options);

  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  opt::SearchOptions grid;
  grid.batch_sizes = {1, 4, 16, 64};
  grid.decode_batch_sizes = {16, 64, 256};
  const opt::Optimizer optimizer(model, grid);
  const opt::OptimizerResult analytic = optimizer.Search();
  const opt::ScheduledPoint chosen = analytic.MaxQpsPerChip();

  obs::TraceRecorder trace;
  // Deterministic sampling: a quarter of requests by id hash plus the
  // eight worst survivors — the pinned trace counts below freeze the
  // sampled shape, so a sampling regression fails the baseline check.
  obs::TraceSamplingOptions sampling;
  sampling.head_rate = 0.25;
  sampling.tail_keep = 8;
  sampling.seed = 17;
  trace.SetSampling(sampling);

  // Windowed telemetry + burn-rate alerting + flight recorder, all fed
  // by the runtime on the virtual clock.
  obs::TimeSeriesOptions ts_options;
  ts_options.window_seconds = 0.05;
  ts_options.windows_per_level = 16;
  obs::TelemetryTimeSeries series(ts_options);
  obs::SloAlertOptions alert_options;
  alert_options.attainment_goal = 0.95;
  alert_options.rules.push_back({});  // Default page rule.
  alert_options.rules.back().short_window_seconds = 0.15;
  alert_options.rules.back().long_window_seconds = 0.6;
  obs::SloAlertEngine alert_engine(alert_options);
  obs::FlightRecorder flight(96);

  MetricsRegistry metrics;
  RuntimeOptions options;
  options.admission_queue_limit = 512;
  options.slo.ttft_seconds = chosen.perf.ttft * 3.0 + 0.1;
  options.slo.tpot_seconds = chosen.perf.tpot * 3.0;
  options.trace = &trace;
  options.metrics = &metrics;
  options.timeseries = &series;
  options.alerts = &alert_engine;
  options.flight = &flight;
  const ServingRuntime server(model, chosen.schedule, tier, options);

  const int requests = quick ? 240 : 1'000;
  const ArrivalTrace arrivals =
      PoissonTrace(requests, chosen.perf.qps * 0.9, 71);

  const auto serve_start = std::chrono::steady_clock::now();
  const RuntimeResult result = server.Serve(arrivals, query_pool);
  const double serve_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  // Requests the scheduler pushed through per host wall second — the
  // overhead ceiling of the engine itself (ROADMAP direction 5).
  const double scheduler_overhead_rps =
      static_cast<double>(result.completed) / serve_wall_seconds;

  int64_t trace_spans = 0;
  int64_t trace_instants = 0;
  int64_t trace_counters = 0;
  for (const obs::TraceEvent& event : trace.events()) {
    switch (event.phase) {
      case obs::TraceEvent::Phase::kComplete: ++trace_spans; break;
      case obs::TraceEvent::Phase::kInstant: ++trace_instants; break;
      case obs::TraceEvent::Phase::kCounter: ++trace_counters; break;
    }
  }

  // Worst windowed attainment across every retained ladder window that
  // saw terminal events — the windowed view of the SLO story that the
  // run-level attainment scalar averages away.
  double min_window_attainment = 1.0;
  for (int level = 0; level < ts_options.levels; ++level) {
    for (const obs::WindowStats& window : series.Level(level)) {
      if (window.completed + window.rejected > 0) {
        min_window_attainment =
            std::min(min_window_attainment, window.Attainment());
      }
    }
  }

  // --- Roofline: machine peaks + the four scan shapes. ---
  retrieval::ProbeOptions probe;
  retrieval::KernelProfileOptions kprof;
  if (quick) {
    probe.triad_elements = size_t{1} << 20;
    probe.flop_iterations = size_t{4} << 20;
    probe.repetitions = 2;
    kprof.num_rows = size_t{1} << 14;
    kprof.repetitions = 2;
  }
  const retrieval::MachinePeaks peaks =
      retrieval::CalibrateMachinePeaks(probe);
  const retrieval::KernelProfiler profiler(peaks, kprof);
  const std::vector<retrieval::KernelRooflinePoint> points = {
      profiler.ProfileL2Batch(), profiler.ProfileIpBatch(),
      profiler.ProfileL2Tile(), profiler.ProfileAdc(),
      profiler.ProfileAdcPacked()};

  // --- Measured-cost optimizer pass (informational: wall-clock
  // calibration makes the chosen schedule machine-dependent). ---
  const retrieval::MeasuredRetrievalModel measured =
      serving::CalibrateRetrievalModel(tier, query_pool, 10,
                                       DefaultCpuServer());
  const opt::OptimizerResult remeasured =
      optimizer.Search(model.ProviderWithRetrievalModel(measured));
  const opt::ScheduledPoint rechosen = remeasured.MaxQpsPerChip();

  // --- Report. ---
  Banner("observability trajectory (scalar kernels, traced run)");
  std::printf("run: %d requests, digest %s, %zu trace events "
              "(%lld spans, %lld instants, %lld counters), "
              "%d streaming histograms\n",
              requests, DigestHex(result.outcome_digest).c_str(),
              trace.size(), static_cast<long long>(trace_spans),
              static_cast<long long>(trace_instants),
              static_cast<long long>(trace_counters),
              result.streaming_histograms);
  std::printf("telemetry: %lld windows closed (%lld folded, %lld "
              "dropped, %zu held), min window attainment %.3f, "
              "%lld/%lld requests trace-sampled, %zu alert transitions, "
              "flight ring %zu/%lld\n",
              static_cast<long long>(series.windows_closed()),
              static_cast<long long>(series.windows_folded()),
              static_cast<long long>(series.windows_dropped()),
              series.WindowsHeld(), min_window_attainment,
              static_cast<long long>(trace.sampled_requests()),
              static_cast<long long>(trace.finalized_requests()),
              alert_engine.transitions().size(), flight.size(),
              static_cast<long long>(flight.appended()));
  std::printf("serving: %.1f QPS virtual, p50/p95 TTFT %.1f/%.1f ms, "
              "attainment %.3f; scheduler overhead %.0f req/s wall\n",
              result.throughput, result.ttft.Percentile(0.5) * 1e3,
              result.ttft.Percentile(0.95) * 1e3, result.slo_attainment,
              scheduler_overhead_rps);
  std::printf("machine: %.2f GB/s triad, %.2f GFLOP/s fma, ridge %.2f "
              "flops/byte\n",
              peaks.bandwidth_bytes_per_sec / 1e9, peaks.flops_per_sec / 1e9,
              peaks.RidgeIntensity());
  TextTable table("kernel roofline");
  table.SetHeader({"kernel", "intensity", "GB/s", "GFLOP/s", "bound",
                   "efficiency"});
  for (const auto& point : points) {
    table.AddRow({point.kernel, TextTable::Num(point.intensity, 3),
                  TextTable::Num(point.achieved_bytes_per_sec / 1e9, 3),
                  TextTable::Num(point.achieved_flops_per_sec / 1e9, 3),
                  point.memory_bound ? "memory" : "compute",
                  TextTable::Num(point.roofline_efficiency, 3)});
  }
  table.Print();
  std::printf("optimizer: analytic %s (TTFT %.1f ms) vs measured-cost "
              "%s (TTFT %.1f ms)%s\n",
              ScheduleKeyString(chosen.schedule).c_str(),
              ToMillis(chosen.perf.ttft),
              ScheduleKeyString(rechosen.schedule).c_str(),
              ToMillis(rechosen.perf.ttft),
              chosen.schedule == rechosen.schedule
                  ? ""
                  : "  <- measured costs changed the choice");

  // --- The trajectory document. ---
  JsonWriter json = StartBenchJson("obs_trajectory");

  json.Key("pinned").BeginObject();
  json.Key("quick").Bool(quick);
  json.Key("kernel_variant").String(ann::kernels::Active().name);
  json.Key("digest").String(DigestHex(result.outcome_digest));
  json.Key("submitted").Int(result.submitted);
  json.Key("admitted").Int(result.admitted);
  json.Key("rejected").Int(result.rejected);
  json.Key("completed").Int(result.completed);
  json.Key("streaming_histograms").Int(result.streaming_histograms);
  json.Key("trace_spans").Int(trace_spans);
  json.Key("trace_instants").Int(trace_instants);
  json.Key("trace_counters").Int(trace_counters);
  json.Key("trace_finalized").Int(trace.finalized_requests());
  json.Key("trace_sampled").Int(trace.sampled_requests());
  json.Key("trace_discarded").Int(trace.discarded_requests());
  json.Key("windows_closed").Int(series.windows_closed());
  json.Key("windows_folded").Int(series.windows_folded());
  json.Key("windows_dropped").Int(series.windows_dropped());
  json.Key("windows_held").Int(static_cast<int64_t>(series.WindowsHeld()));
  json.Key("alert_transitions")
      .Int(static_cast<int64_t>(alert_engine.transitions().size()));
  json.Key("flight_appended").Int(flight.appended());
  json.Key("flight_dropped").Int(flight.dropped());
  json.Key("batches_flushed")
      .Int(metrics.FindCounter("runtime.batches_flushed")->value());
  json.Key("full_batches")
      .Int(metrics.FindCounter("runtime.full_batches")->value());
  json.EndObject();

  json.Key("virtual").BeginObject();
  json.Key("throughput_qps").Number(result.throughput);
  json.Key("makespan_seconds").Number(result.makespan);
  json.Key("p50_ttft_seconds").Number(result.ttft.Percentile(0.5));
  json.Key("p95_ttft_seconds").Number(result.ttft.Percentile(0.95));
  json.Key("p95_tpot_seconds").Number(result.tpot.Percentile(0.95));
  json.Key("p95_queue_wait_seconds")
      .Number(result.queue_wait.Percentile(0.95));
  json.Key("slo_attainment").Number(result.slo_attainment);
  json.Key("min_window_attainment").Number(min_window_attainment);
  json.Key("decode_utilization").Number(result.decode_utilization);
  json.Key("kernels").BeginObject();
  for (const auto& point : points) {
    WriteKernelAccounting(json, point);
  }
  json.EndObject();
  json.EndObject();

  json.Key("measured").BeginObject();
  json.Key("peak_bandwidth_gbps")
      .Number(peaks.bandwidth_bytes_per_sec / 1e9);
  json.Key("peak_gflops").Number(peaks.flops_per_sec / 1e9);
  json.Key("serve_wall_seconds").Number(serve_wall_seconds);
  json.Key("scheduler_overhead_rps").Number(scheduler_overhead_rps);
  json.Key("kernels").BeginObject();
  for (const auto& point : points) {
    WriteKernelMeasurement(json, point);
  }
  json.EndObject();
  json.EndObject();

  json.Key("info").BeginObject();
  json.Key("ridge_intensity").Number(peaks.RidgeIntensity());
  json.Key("memory_bound").BeginObject();
  for (const auto& point : points) {
    json.Key(point.kernel).Bool(point.memory_bound);
  }
  json.EndObject();
  json.Key("analytic_schedule").String(ScheduleKeyString(chosen.schedule));
  json.Key("measured_schedule")
      .String(ScheduleKeyString(rechosen.schedule));
  json.Key("provider_changed_schedule")
      .Bool(!(chosen.schedule == rechosen.schedule));
  json.Key("analytic_ttft_seconds").Number(chosen.perf.ttft);
  json.Key("measured_ttft_seconds").Number(rechosen.perf.ttft);
  json.EndObject();

  json.EndObject();
  MaybeWriteJson(json_path, json);
  if (!json_path.empty()) {
    JsonWriter chrome;
    trace.WriteChromeTrace(chrome);
    MaybeWriteJson(json_path + ".trace.json", chrome);
  }

  ann::kernels::SetForceScalar(was_forced);

  if (!baseline_path.empty()) {
    const JsonValue fresh = JsonValue::Parse(json.str());
    const JsonValue baseline = ParseJsonFile(baseline_path);
    const size_t violations = CompareAgainstBaseline(fresh, baseline);
    if (violations != 0) {
      std::printf("FAIL: %zu regression(s) vs %s\n", violations,
                  baseline_path.c_str());
      return 1;
    }
    std::printf("regression check passed vs %s\n", baseline_path.c_str());
  }
  return 0;
}
