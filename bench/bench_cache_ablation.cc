/**
 * @file bench_cache_ablation.cc
 * Cache-tier ablation: retrieval-result cache capacity x Zipf query
 * skew, served by the online runtime against a live sharded index.
 * Each point reports the *measured* retrieval/document cache hit
 * rates, the measured prefix hit rate that replaces the schema's
 * assumed knob, TTFT percentiles split into cached vs uncached
 * populations, and SLO attainment — the ablation that shows when a
 * cache tier pays (heavy-tailed popularity) and when it is dead
 * weight (uniform traffic, zero capacity). `--json out.json` emits
 * machine-readable rows; `--quick` trims the grid for CI smoke runs.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"

namespace {

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) {
    return -1.0;
  }
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[rank];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::runtime;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }

  // Live tier sized so every sweep point stays sub-second; the query
  // pool (256 rows) is the popularity universe the Zipf streams skew.
  Rng rng(61);
  ann::Matrix corpus = ann::GenClustered(8'000, 32, 32, 0.3f, rng);
  const int64_t pool_rows = 256;
  const ann::Matrix query_pool =
      ann::GenQueriesNear(corpus, static_cast<size_t>(pool_rows), 0.1f,
                          rng);
  serving::ShardedIndexOptions tier_options;
  tier_options.num_shards = 4;
  tier_options.backend = serving::ShardBackend::kFlat;
  tier_options.num_threads = 1;
  const serving::ShardedIndex tier(std::move(corpus), tier_options);

  // Optimizer-chosen schedule for the paper's Case I at 8B.
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  opt::SearchOptions grid;
  grid.batch_sizes = {1, 4, 16, 64};
  grid.decode_batch_sizes = {16, 64, 256};
  const opt::ScheduledPoint chosen =
      opt::Optimizer(model, grid).Search().MaxQpsPerChip();

  const int requests = quick ? 300 : 1200;
  const double offered_qps = chosen.perf.qps * 0.7;
  const std::vector<int64_t> capacities =
      quick ? std::vector<int64_t>{0, 128}
            : std::vector<int64_t>{0, 32, 128};
  const std::vector<double> skews =
      quick ? std::vector<double>{0.0, 1.0}
            : std::vector<double>{0.0, 0.7, 1.0, 1.3};
  const ArrivalTrace trace = PoissonTrace(requests, offered_qps, 67);

  Banner("cache ablation (capacity x Zipf skew, live scans)");
  std::printf("schedule: analytical %.1f QPS; offered %.1f QPS; "
              "%d requests over a %lld-row query pool\n",
              chosen.perf.qps, offered_qps, requests,
              static_cast<long long>(pool_rows));

  TextTable table;
  table.SetHeader({"skew", "capacity", "hit rate", "doc rate",
                   "prefix rate", "p50 TTFT ms", "p95 TTFT ms",
                   "p50 hit ms", "p50 miss ms", "SLO att."});

  JsonWriter json = StartBenchJson("cache_ablation");
  json.Key("requests").Int(requests);
  json.Key("pool_rows").Int(pool_rows);
  json.Key("offered_qps").Number(offered_qps);
  json.Key("results").BeginArray();

  for (double skew : skews) {
    const QueryStream stream = ZipfianQueryStream(
        requests, pool_rows, skew,
        73 + static_cast<uint64_t>(skew * 100));
    double baseline_p50 = -1.0;
    for (int64_t capacity : capacities) {
      RuntimeOptions options;
      options.num_threads = 2;
      options.slo.ttft_seconds = chosen.perf.ttft * 3.0 + 0.1;
      options.slo.tpot_seconds = chosen.perf.tpot * 3.0;
      options.cache.retrieval_capacity = capacity;
      // The document KV level scales with the result cache: enough
      // blocks for the hot set's retrieved passages.
      options.cache.doc_capacity = capacity * 32;
      const ServingRuntime server(model, chosen.schedule, tier,
                                  options);
      const RuntimeResult result =
          server.Serve(trace, query_pool, stream);

      std::vector<double> all_ttft;
      std::vector<double> hit_ttft;
      std::vector<double> miss_ttft;
      for (const RequestOutcome& outcome : result.requests) {
        if (!outcome.admitted) {
          continue;
        }
        all_ttft.push_back(outcome.ttft);
        (outcome.retrieval_cache_hit ? hit_ttft : miss_ttft)
            .push_back(outcome.ttft);
      }
      const double p50 = PercentileOf(all_ttft, 0.5);
      if (capacity == 0) {
        baseline_p50 = p50;
      }
      const double p50_hit = PercentileOf(hit_ttft, 0.5);

      table.AddRow(
          {TextTable::Num(skew, 2), std::to_string(capacity),
           TextTable::Num(result.retrieval_cache.HitRate(), 4),
           TextTable::Num(result.doc_cache.HitRate(), 4),
           TextTable::Num(result.measured_prefix_hit_rate, 4),
           TextTable::Num(p50 * 1e3, 4),
           TextTable::Num(PercentileOf(all_ttft, 0.95) * 1e3, 4),
           p50_hit < 0 ? "-" : TextTable::Num(p50_hit * 1e3, 4),
           TextTable::Num(PercentileOf(miss_ttft, 0.5) * 1e3, 4),
           TextTable::Num(result.slo_attainment, 4)});

      json.BeginObject();
      json.Key("zipf_skew").Number(skew);
      json.Key("retrieval_capacity").Int(capacity);
      json.Key("doc_capacity").Int(options.cache.doc_capacity);
      json.Key("retrieval_hit_rate")
          .Number(result.retrieval_cache.HitRate());
      json.Key("retrieval_hits").Int(result.retrieval_cache.hits);
      json.Key("retrieval_misses").Int(result.retrieval_cache.misses);
      json.Key("retrieval_evictions")
          .Int(result.retrieval_cache.evictions);
      json.Key("doc_hit_rate").Number(result.doc_cache.HitRate());
      json.Key("measured_prefix_hit_rate")
          .Number(result.measured_prefix_hit_rate);
      json.Key("p50_ttft").Number(p50);
      json.Key("p95_ttft").Number(PercentileOf(all_ttft, 0.95));
      json.Key("p50_ttft_cached").Number(p50_hit);
      json.Key("p50_ttft_uncached")
          .Number(PercentileOf(miss_ttft, 0.5));
      json.Key("p50_ttft_cache_off_baseline").Number(baseline_p50);
      json.Key("cached_below_baseline")
          .Bool(p50_hit >= 0 && baseline_p50 >= 0 &&
                p50_hit < baseline_p50);
      json.Key("throughput").Number(result.throughput);
      json.Key("slo_attainment").Number(result.slo_attainment);
      json.Key("outcome_digest")
          .String(std::to_string(result.outcome_digest));
      json.EndObject();
    }
  }
  table.Print();
  json.EndArray();
  FinishBenchJson(json, JsonOutputPath(argc, argv));

  std::printf(
      "(uniform traffic defeats any capacity; Zipf skew >= 1 turns a\n"
      " moderate cache into a majority hit rate, and cached requests'\n"
      " p50 TTFT collapses below the cache-off baseline — batch\n"
      " formation plus the scan drop out of their critical path)\n");
  return 0;
}
