/**
 * @file bench_fig11_rewriter_reranker.cc
 * Reproduces paper Figure 11: Case IV (query rewriter + reranker).
 * Prints the resource-normalized time breakdown for 8B and 70B main
 * LLMs and the TTFT inflation caused by the autoregressive rewriter.
 *
 * Paper shape: the rewriter and reranker consume negligible
 * resource-time and QPS/Chip is largely unaffected, but TTFT rises
 * ~2.4x when the rewriter is included.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Figure 11: time breakdown with rewriter and reranker");
  for (int size : {8, 70}) {
    TextTable table(std::to_string(size) + "B LLM");
    table.SetHeader({"stage", "share %"});
    const core::PipelineModel model(core::MakeRewriterRerankerSchema(size),
                                    DefaultCluster());
    for (const core::StageShare& share : model.TimeBreakdown()) {
      table.AddRow({core::StageName(share.stage),
                    TextTable::Num(100 * share.fraction, 3)});
    }
    table.Print();
  }

  Banner("TTFT inflation from the rewriter (batch 1, 16+16 chips)");
  {
    TextTable table;
    table.SetHeader({"LLM", "TTFT w/o rewriter (ms)", "TTFT with (ms)",
                     "inflation"});
    for (int size : {8, 70}) {
      const core::PipelineModel with(core::MakeRewriterRerankerSchema(size),
                                     DefaultCluster());
      const core::PipelineModel without(core::MakeHyperscaleSchema(size, 1),
                                        DefaultCluster());
      auto simple = [](const core::PipelineModel& m) {
        core::Schedule s;
        s.chain_group.assign(m.chain().size(), 0);
        s.group_chips = {16};
        s.chain_batch.assign(m.chain().size(), 1);
        s.decode_chips = 16;
        s.decode_batch = 64;
        s.retrieval_servers = m.MinRetrievalServers();
        s.retrieval_batch = 1;
        return m.Evaluate(s);
      };
      const double ttft_with = simple(with).ttft;
      const double ttft_without = simple(without).ttft;
      table.AddRow({std::to_string(size) + "B",
                    TextTable::Num(ToMillis(ttft_without), 4),
                    TextTable::Num(ToMillis(ttft_with), 4),
                    TextTable::Num(ttft_with / ttft_without, 3) + "x"});
    }
    table.Print();
    std::printf("(paper: ~2.4x TTFT from the autoregressive rewriter; "
                "reranker negligible)\n");
  }
  return 0;
}
