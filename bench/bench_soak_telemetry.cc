/**
 * @file bench_soak_telemetry.cc
 * Telemetry soak harness: one long composite-traffic serving run
 * (MMPP bursts superimposed on a diurnal tide, ~1.3x capacity on
 * average) with the full observation layer attached — windowed
 * time-series ladder, burn-rate alerting, deterministic trace
 * sampling, flight recorder — repeated across worker-pool sizes.
 *
 * The harness enforces (RAGO_CHECK, so violations abort non-zero):
 *  - **bit identity across threads {1, 2, 8}**: the outcome digest,
 *    the full telemetry time-series JSON, the alert-transition log,
 *    and the sampled per-request trace summary are byte-for-byte
 *    identical for every pool size;
 *  - **digest neutrality**: a run with the whole layer detached
 *    produces the same outcome digest — observation only;
 *  - **bounded memory**: the retention ladder never holds more than
 *    its configured cap of windows, the flight ring never exceeds its
 *    capacity, and sampling commits a strict subset of finalized
 *    requests with nothing left pending.
 *
 * Usage:
 *   bench_soak_telemetry [--quick] [--json out.json]
 *                        [--flight flight_dump.json]
 *
 * `--quick` serves 5k requests instead of 100k (the CI smoke mode);
 * `--json` writes the machine-readable soak document (caps, counts,
 * and per-thread wall time); `--flight` dumps the flight ring of the
 * final run — the same JSON the engines emit on a crash.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/obs/trace.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"

namespace {

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

std::string FlagValue(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) {
      RAGO_REQUIRE(i + 1 < argc, flag + " requires a value");
      return argv[i + 1];
    }
  }
  return "";
}

std::string DigestHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

/// Everything one observed serve produced, captured for comparison.
struct SoakRun {
  uint64_t digest = 0;
  std::string timeseries_json;
  std::string alerts_json;
  std::string sampled_summary_json;
  double wall_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::runtime;

  const bool quick = HasFlag(argc, argv, "--quick");
  const std::string json_path = JsonOutputPath(argc, argv);
  const std::string flight_path = FlagValue(argc, argv, "--flight");

  // Live tier + optimizer-chosen schedule, same shape as the SLO
  // sweep harness.
  Rng rng(51);
  ann::Matrix corpus =
      ann::GenClustered(quick ? 4'000 : 10'000, 32, 24, 0.3f, rng);
  const ann::Matrix query_pool =
      ann::GenQueriesNear(corpus, 128, 0.1f, rng);
  serving::ShardedIndexOptions tier_options;
  tier_options.num_shards = 4;
  tier_options.backend = serving::ShardBackend::kIvf;
  tier_options.ivf.nlist = 32;
  tier_options.nprobe = 8;
  tier_options.num_threads = 1;
  const serving::ShardedIndex tier(std::move(corpus), tier_options);

  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  opt::SearchOptions grid;
  grid.batch_sizes = {1, 4, 16, 64};
  grid.decode_batch_sizes = {16, 64, 256};
  const opt::ScheduledPoint chosen =
      opt::Optimizer(model, grid).Search().MaxQpsPerChip();
  const double capacity = chosen.perf.qps;

  // Composite soak traffic: MMPP bursts (mean ~0.8x capacity, bursts
  // to 2.4x) superimposed on a diurnal tide (mean 0.5x, deep swing).
  // The sum averages ~1.3x capacity but dips below it every trough,
  // so burn-rate alerts both fire and clear over the run.
  const int requests = quick ? 5'000 : 100'000;
  MmppOptions mmpp;
  mmpp.quiet_qps = capacity * 0.3;
  mmpp.burst_qps = capacity * 1.8;
  mmpp.mean_quiet_seconds = 2.0;
  mmpp.mean_burst_seconds = 0.5;
  DiurnalOptions diurnal;
  diurnal.mean_qps = capacity * 0.35;
  diurnal.period_seconds = 10.0;
  diurnal.amplitude = 0.9;
  const ArrivalTrace trace = MergeTraces(
      MmppTrace(requests / 2, mmpp, 71),
      DiurnalTrace(requests - requests / 2, diurnal, 72));

  // The observation policy under soak load: a ladder that must fold
  // and drop, head sampling that keeps ~2% plus the 32 worst, a flight
  // ring far smaller than the event count.
  // Windows sized so the run overflows the ladder: the quick run still
  // folds and drops, the full soak does so hundreds of times over.
  obs::TimeSeriesOptions ts_options;
  ts_options.window_seconds = quick ? 0.025 : 0.1;
  ts_options.windows_per_level = quick ? 8 : 16;
  ts_options.fold_factor = 4;
  ts_options.levels = 3;
  const size_t held_cap =
      static_cast<size_t>(ts_options.windows_per_level) *
          static_cast<size_t>(ts_options.levels) +
      1;  // +1 for the in-progress window.
  obs::SloAlertOptions alert_options;
  alert_options.attainment_goal = 0.95;
  obs::BurnRateRule page;
  page.name = "page";
  page.short_window_seconds = quick ? 0.1 : 0.4;
  page.long_window_seconds = quick ? 1.0 : 4.0;
  page.burn_threshold = 2.0;
  page.fire_after = 2;
  page.clear_after = 2;
  obs::BurnRateRule ticket;
  ticket.name = "ticket";
  ticket.short_window_seconds = quick ? 0.25 : 1.0;
  ticket.long_window_seconds = quick ? 2.5 : 10.0;
  ticket.burn_threshold = 1.0;
  alert_options.rules = {page, ticket};
  obs::TraceSamplingOptions sampling;
  sampling.head_rate = 0.02;
  sampling.tail_keep = 32;
  sampling.seed = 9;
  constexpr int kFlightCapacity = 512;

  RuntimeOptions base_options;
  base_options.admission_queue_limit = 256;
  base_options.slo.ttft_seconds = chosen.perf.ttft * 3.0 + 0.1;
  base_options.slo.tpot_seconds = chosen.perf.tpot * 3.0;
  base_options.timeline_limit = 512;

  Banner("telemetry soak (composite MMPP + diurnal, full obs layer)");
  std::printf("traffic: %d requests, offered %.1f QPS vs capacity %.1f "
              "(%.2fx)\n",
              requests, OfferedQps(trace), capacity,
              OfferedQps(trace) / capacity);

  // --- Reference run with the entire layer detached: the digest all
  // observed runs must reproduce bit for bit. ---
  uint64_t plain_digest = 0;
  {
    RuntimeOptions options = base_options;
    const ServingRuntime server(model, chosen.schedule, tier, options);
    plain_digest = server.Serve(trace, query_pool).outcome_digest;
  }

  // --- Observed runs across worker-pool sizes. ---
  const std::vector<int> thread_counts = {1, 2, 8};
  std::vector<SoakRun> runs;
  int64_t rejected = 0;
  int64_t alerts_fired = 0;
  int64_t alert_transitions = 0;
  double slo_attainment = 0.0;
  double min_window_attainment = 1.0;
  int streaming_histograms = 0;
  int64_t windows_closed = 0, windows_folded = 0, windows_dropped = 0;
  size_t windows_held = 0;
  int64_t finalized = 0, sampled = 0, discarded = 0;
  size_t trace_events = 0;
  int64_t flight_appended = 0, flight_dropped = 0;
  size_t flight_size = 0;

  for (int threads : thread_counts) {
    obs::TelemetryTimeSeries series(ts_options);
    obs::SloAlertEngine alert_engine(alert_options);
    obs::FlightRecorder flight(kFlightCapacity);
    obs::TraceRecorder recorder;
    recorder.SetSampling(sampling);

    RuntimeOptions options = base_options;
    options.num_threads = threads;
    options.timeseries = &series;
    options.alerts = &alert_engine;
    options.flight = &flight;
    options.trace = &recorder;
    const ServingRuntime server(model, chosen.schedule, tier, options);

    const auto start = std::chrono::steady_clock::now();
    const RuntimeResult result = server.Serve(trace, query_pool);
    SoakRun run;
    run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    run.digest = result.outcome_digest;
    run.timeseries_json = series.Json();
    run.alerts_json = alert_engine.Json();
    run.sampled_summary_json = recorder.RequestSummaryJson();

    // Bounded memory, enforced: the ladder, the ring, the sampler.
    RAGO_CHECK(series.WindowsHeld() <= held_cap,
               "retention ladder exceeded its window cap");
    RAGO_CHECK(flight.size() <=
                   static_cast<size_t>(flight.capacity()),
               "flight ring exceeded its capacity");
    RAGO_CHECK(recorder.sampled_requests() <=
                   recorder.finalized_requests(),
               "sampler committed more requests than finalized");
    RAGO_CHECK(recorder.pending_requests() == 0 &&
                   recorder.tail_kept() == 0,
               "sampler left requests buffered after the run");

    std::printf("threads %d: digest %s, %.2fs wall, %lld windows "
                "(%zu held), %lld/%lld sampled, %zu alert "
                "transitions, flight %zu/%lld\n",
                threads, DigestHex(run.digest).c_str(),
                run.wall_seconds,
                static_cast<long long>(series.windows_closed()),
                series.WindowsHeld(),
                static_cast<long long>(recorder.sampled_requests()),
                static_cast<long long>(recorder.finalized_requests()),
                alert_engine.transitions().size(), flight.size(),
                static_cast<long long>(flight.appended()));

    if (threads == thread_counts.back()) {
      // Stats are identical across pool sizes (checked below via the
      // serialized forms); report the last run's and dump its ring.
      // min_window_attainment scans *retained* ladder windows only —
      // RRD semantics: dropped history is gone by design.
      rejected = result.rejected;
      slo_attainment = result.slo_attainment;
      streaming_histograms = result.streaming_histograms;
      windows_closed = series.windows_closed();
      windows_folded = series.windows_folded();
      windows_dropped = series.windows_dropped();
      windows_held = series.WindowsHeld();
      finalized = recorder.finalized_requests();
      sampled = recorder.sampled_requests();
      discarded = recorder.discarded_requests();
      trace_events = recorder.size();
      flight_appended = flight.appended();
      flight_dropped = flight.dropped();
      flight_size = flight.size();
      alert_transitions =
          static_cast<int64_t>(alert_engine.transitions().size());
      for (const obs::AlertTransition& transition :
           alert_engine.transitions()) {
        alerts_fired += transition.firing ? 1 : 0;
      }
      for (int level = 0; level < ts_options.levels; ++level) {
        for (const obs::WindowStats& window : series.Level(level)) {
          if (window.completed + window.rejected > 0 &&
              window.Attainment() < min_window_attainment) {
            min_window_attainment = window.Attainment();
          }
        }
      }
      if (!flight_path.empty()) {
        flight.DumpToFile(flight_path);
        std::printf("wrote %s\n", flight_path.c_str());
      }
    }
    runs.push_back(std::move(run));
  }

  // --- The determinism contract, enforced byte for byte. ---
  for (size_t i = 0; i < runs.size(); ++i) {
    RAGO_CHECK(runs[i].digest == plain_digest,
               "observed digest diverged from the unobserved run");
    if (i == 0) {
      continue;
    }
    RAGO_CHECK(runs[i].timeseries_json == runs[0].timeseries_json,
               "telemetry time-series diverged across thread counts");
    RAGO_CHECK(runs[i].alerts_json == runs[0].alerts_json,
               "alert transitions diverged across thread counts");
    RAGO_CHECK(
        runs[i].sampled_summary_json == runs[0].sampled_summary_json,
        "sampled trace diverged across thread counts");
  }
  std::printf("determinism: digest + time-series + alerts + sampled "
              "trace bit-identical for threads {1, 2, 8}, equal to the "
              "unobserved digest\n");
  std::printf("soak: attainment %.3f (worst retained window %.3f), %lld "
              "rejected, %lld/%lld alert transitions fired, ladder "
              "%lld closed -> %lld folded + %lld dropped (%zu held, "
              "cap %zu), %lld/%lld requests sampled (%zu events)\n",
              slo_attainment, min_window_attainment,
              static_cast<long long>(rejected),
              static_cast<long long>(alerts_fired),
              static_cast<long long>(alert_transitions),
              static_cast<long long>(windows_closed),
              static_cast<long long>(windows_folded),
              static_cast<long long>(windows_dropped), windows_held,
              held_cap, static_cast<long long>(sampled),
              static_cast<long long>(finalized), trace_events);

  // --- Machine-readable soak document. ---
  JsonWriter json = StartBenchJson("soak_telemetry");
  json.Key("quick").Bool(quick);
  json.Key("requests").Int(requests);
  json.Key("offered_qps").Number(OfferedQps(trace));
  json.Key("capacity_qps").Number(capacity);
  json.Key("digest").String(DigestHex(plain_digest));
  json.Key("rejected").Int(rejected);
  json.Key("slo_attainment").Number(slo_attainment);
  json.Key("min_window_attainment").Number(min_window_attainment);
  json.Key("streaming_histograms").Int(streaming_histograms);
  json.Key("thread_counts").BeginArray();
  for (int threads : thread_counts) {
    json.Int(threads);
  }
  json.EndArray();
  json.Key("bit_identical_across_threads").Bool(true);
  json.Key("digest_neutral").Bool(true);
  json.Key("ladder").BeginObject();
  json.Key("window_seconds").Number(ts_options.window_seconds);
  json.Key("windows_closed").Int(windows_closed);
  json.Key("windows_folded").Int(windows_folded);
  json.Key("windows_dropped").Int(windows_dropped);
  json.Key("windows_held").Int(static_cast<int64_t>(windows_held));
  json.Key("held_cap").Int(static_cast<int64_t>(held_cap));
  json.EndObject();
  json.Key("sampling").BeginObject();
  json.Key("head_rate").Number(sampling.head_rate);
  json.Key("tail_keep").Int(sampling.tail_keep);
  json.Key("finalized").Int(finalized);
  json.Key("sampled").Int(sampled);
  json.Key("discarded").Int(discarded);
  json.Key("trace_events").Int(static_cast<int64_t>(trace_events));
  json.EndObject();
  json.Key("alerts").BeginObject();
  json.Key("transitions").Int(alert_transitions);
  json.Key("fired").Int(alerts_fired);
  json.EndObject();
  json.Key("flight").BeginObject();
  json.Key("capacity").Int(kFlightCapacity);
  json.Key("size").Int(static_cast<int64_t>(flight_size));
  json.Key("appended").Int(flight_appended);
  json.Key("dropped").Int(flight_dropped);
  json.EndObject();
  json.Key("wall_seconds").BeginArray();
  for (const SoakRun& run : runs) {
    json.Number(run.wall_seconds);
  }
  json.EndArray();
  FinishBenchJson(json, json_path);
  return 0;
}
