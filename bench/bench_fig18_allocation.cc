/**
 * @file bench_fig18_allocation.cc
 * Reproduces paper Figure 18: sensitivity to resource allocation in
 * Case II, for (a) the collocated and (b) the disaggregated
 * placement. Each allocation plan's own frontier is computed; the
 * spread between the best and worst allocation's max QPS/Chip
 * measures how much a bad split costs.
 *
 * Paper shape: up to ~52.5x (collocated) and ~64.1x (disaggregated)
 * spread between balanced and imbalanced allocations.
 */
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

void AllocationStudy(const char* name, int placement_filter) {
  using namespace rago;
  using namespace rago::bench;

  const core::PipelineModel model(core::MakeLongContextSchema(70, 1'000'000),
                                  LargeCluster());
  opt::SearchOptions options = StandardGrid();
  options.placement_filter = placement_filter;
  options.keep_plan_frontiers = true;
  const opt::OptimizerResult result =
      opt::Optimizer(model, options).Search();

  // Each plan frontier corresponds to one allocation (chips per group
  // + decode chips) under the chosen placement.
  struct PlanBest {
    std::string label;
    double max_qpc = 0.0;
  };
  std::vector<PlanBest> plans;
  for (const opt::PlanFrontier& plan : result.plan_frontiers) {
    PlanBest best;
    best.label = plan.plan_label;
    for (const auto& point : plan.points) {
      best.max_qpc = std::max(best.max_qpc, point.perf.qps_per_chip);
    }
    if (best.max_qpc > 0) {
      plans.push_back(best);
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const PlanBest& a, const PlanBest& b) {
              return a.max_qpc > b.max_qpc;
            });

  Banner(std::string("Figure 18 ") + name);
  TextTable table("best and worst allocations (of " +
                  std::to_string(plans.size()) + ")");
  table.SetHeader({"allocation", "max QPS/Chip"});
  for (size_t i = 0; i < plans.size() && i < 3; ++i) {
    table.AddRow({plans[i].label, TextTable::Num(plans[i].max_qpc, 4)});
  }
  for (size_t i = plans.size() >= 3 ? plans.size() - 3 : 0;
       i < plans.size(); ++i) {
    table.AddRow({plans[i].label, TextTable::Num(plans[i].max_qpc, 4)});
  }
  table.Print();
  std::printf("allocation spread (best/worst max QPS/Chip): %.1fx\n",
              plans.front().max_qpc / plans.back().max_qpc);
}

}  // namespace

int main() {
  // Case II's prefix chain is [encode, prefix]: placement 0 collocates
  // them, placement 1 disaggregates.
  AllocationStudy("(a) collocated placement (paper: up to 52.5x)", 0);
  AllocationStudy("(b) disaggregated placement (paper: up to 64.1x)", 1);
  return 0;
}
