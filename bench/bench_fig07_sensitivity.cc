/**
 * @file bench_fig07_sensitivity.cc
 * Reproduces paper Figure 7 (and echoes Table 2): sensitivity of the
 * retrieval time share in Case I to
 *  (a) the XPU generation (A/B/C) across 1B-405B LLMs,
 *  (b) the scanned database fraction (0.01% / 0.1% / 1%),
 *  (c) prefix and decode sequence lengths (heatmap, 8B LLM).
 *
 * Paper shape: newer XPUs raise the retrieval share (up to ~25pp);
 * larger scan fractions raise it sharply; longer sequences lower it
 * (86.3% at 128/128 down to ~31% at 2048/512 in the paper).
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"

namespace {

double RetrievalShare(const rago::core::PipelineModel& model) {
  for (const rago::core::StageShare& share : model.TimeBreakdown()) {
    if (share.stage == rago::core::StageType::kRetrieval) {
      return share.fraction;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Table 2: XPU generations");
  {
    TextTable table;
    table.SetHeader({"XPU", "TFLOPS", "HBM (GB)", "Mem BW (GB/s)",
                     "ICI BW (GB/s)"});
    for (XpuVersion version :
         {XpuVersion::kA, XpuVersion::kB, XpuVersion::kC}) {
      const XpuSpec xpu = MakeXpu(version);
      table.AddRow({xpu.name, TextTable::Num(xpu.peak_flops / kTera, 4),
                    TextTable::Num(xpu.hbm_bytes / kGiB, 3),
                    TextTable::Num(xpu.hbm_bw / kGiga, 4),
                    TextTable::Num(xpu.ici_bw / kGiga, 3)});
    }
    table.Print();
  }

  Banner("Figure 7a: retrieval share vs XPU generation");
  {
    TextTable table;
    table.SetHeader({"model", "XPU-A %", "XPU-B %", "XPU-C %"});
    for (int size : {1, 8, 70, 405}) {
      std::vector<std::string> row = {"RAG " + std::to_string(size) + "B"};
      for (XpuVersion version :
           {XpuVersion::kA, XpuVersion::kB, XpuVersion::kC}) {
        ClusterConfig cluster = DefaultCluster();
        cluster.xpu = MakeXpu(version);
        const core::PipelineModel model(core::MakeHyperscaleSchema(size, 1),
                                        cluster);
        row.push_back(TextTable::Num(100 * RetrievalShare(model), 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  Banner("Figure 7b: retrieval share vs scanned database fraction");
  {
    TextTable table;
    table.SetHeader({"model", "0.01% scan", "0.1% scan", "1.0% scan"});
    for (int size : {1, 8, 70, 405}) {
      std::vector<std::string> row = {"RAG " + std::to_string(size) + "B"};
      for (double fraction : {0.0001, 0.001, 0.01}) {
        core::RAGSchema schema = core::MakeHyperscaleSchema(size, 1);
        schema.retrieval.scan_fraction = fraction;
        const core::PipelineModel model(schema, DefaultCluster());
        row.push_back(TextTable::Num(100 * RetrievalShare(model), 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  Banner("Figure 7c: retrieval share vs prefix/decode length (8B LLM)");
  {
    TextTable table;
    table.SetHeader({"decode\\prefix", "128", "256", "512", "1024", "2048"});
    for (int decode : {128, 256, 512}) {
      std::vector<std::string> row = {std::to_string(decode)};
      for (int prefix : {128, 256, 512, 1024, 2048}) {
        core::RAGSchema schema = core::MakeHyperscaleSchema(8, 1);
        schema.workload.prefix_tokens = prefix;
        schema.workload.decode_tokens = decode;
        const core::PipelineModel model(schema, DefaultCluster());
        row.push_back(TextTable::Num(100 * RetrievalShare(model), 3));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("(paper: 86.3%% at 128/128 shrinking to 30.9%% at "
                "2048/512)\n");
  }
  return 0;
}
