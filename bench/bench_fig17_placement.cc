/**
 * @file bench_fig17_placement.cc
 * Reproduces paper Figure 17: sensitivity to the task placement
 * policy. For each placement option (fully collocated, fully
 * disaggregated, and hybrids) the harness reports that placement's own
 * Pareto frontier extremes.
 *
 * Paper shape: Case II is placement-insensitive (~2% max QPS/Chip
 * spread) because encode and prefix are both compute-intense; Case IV
 * is sensitive (~1.5x) because collocating the autoregressive
 * rewrite-decode with prefix wastes XPUs and the group pauses for
 * retrieval.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

void PlacementStudy(const char* name, const rago::core::RAGSchema& schema,
                    const rago::opt::SearchOptions& grid) {
  using namespace rago;
  using namespace rago::bench;

  const core::PipelineModel model(schema, LargeCluster());
  const opt::Optimizer probe(model, grid);
  const auto placements = probe.PlacementOptions();

  Banner(std::string("Figure 17 ") + name);
  TextTable table;
  table.SetHeader({"placement", "max QPS/Chip", "min TTFT (ms)"});
  double best = 0.0;
  double worst = 1e30;
  for (size_t p = 0; p < placements.size(); ++p) {
    opt::SearchOptions options = grid;
    options.placement_filter = static_cast<int>(p);
    const opt::OptimizerResult result =
        opt::Optimizer(model, options).Search();
    if (result.pareto.empty()) {
      continue;
    }
    const double max_qpc = result.MaxQpsPerChip().perf.qps_per_chip;
    const double min_ttft = result.MinTtft().perf.ttft;
    best = std::max(best, max_qpc);
    worst = std::min(worst, max_qpc);
    table.AddRow({probe.PlacementLabel(placements[p]),
                  TextTable::Num(max_qpc, 4),
                  TextTable::Num(ToMillis(min_ttft), 5)});
  }
  table.Print();
  std::printf("max QPS/Chip spread across placements: %.2fx\n",
              best / worst);
}

}  // namespace

int main() {
  using namespace rago;
  PlacementStudy("(a) Case II: long-context 70B, 1M tokens (paper: ~2%)",
                 core::MakeLongContextSchema(70, 1'000'000),
                 bench::StandardGrid());
  PlacementStudy("(b) Case IV: rewriter + reranker, 70B (paper: ~1.5x)",
                 core::MakeRewriterRerankerSchema(70), bench::CoarseGrid());
  return 0;
}
