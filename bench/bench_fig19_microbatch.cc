/**
 * @file bench_fig19_microbatch.cc
 * Reproduces paper Figure 19: TTFT reduction from micro-batching a
 * burst of user requests through the pre-decode stages.
 *  (a) Case I, 70B: burst batch x queries-per-retrieval heatmap.
 *  (b) Case II, 70B: burst batch x context length heatmap.
 *  (c) Case IV: burst batch x LLM size heatmap.
 *
 * Paper shape: C-II benefits even at micro-batch 2 (22%, up to 55%);
 * C-I needs batch >= 8-16 (vector search latency is flat below ~16);
 * C-IV is moderate (~25% at batch 32).
 */
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"

namespace {

using rago::core::PipelineModel;
using rago::core::Schedule;

/// Average-TTFT reduction (%) for a burst processed in micro-batches
/// of size `micro` versus one monolithic batch.
double Reduction(const PipelineModel& model, int64_t burst, int64_t micro,
                 int chips_per_group, int decode_chips) {
  Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  // Disaggregate every stage for streaming (one group per stage).
  for (size_t i = 0; i < model.chain().size(); ++i) {
    schedule.chain_group[i] = static_cast<int>(i);
  }
  schedule.group_chips.assign(model.chain().size(), chips_per_group);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = 256;
  schedule.retrieval_servers = model.MinRetrievalServers();

  schedule.chain_batch.assign(model.chain().size(), micro);
  schedule.retrieval_batch = micro;
  const double micro_ttft = model.BurstAverageTtft(schedule, burst);

  schedule.chain_batch.assign(model.chain().size(), burst);
  schedule.retrieval_batch = burst;
  const double mono_ttft = model.BurstAverageTtft(schedule, burst);
  // Micro-batching is optional: where it would hurt (flat-latency
  // stages at tiny bursts), the scheduler keeps the monolithic batch,
  // so the reduction floors at zero (the paper's 0.0 cells).
  return std::max(0.0, 100.0 * (1.0 - micro_ttft / mono_ttft));
}

void Heatmap(const std::string& title, const std::vector<std::string>& rows,
             const std::function<double(size_t, int64_t)>& cell) {
  rago::bench::Banner(title);
  rago::TextTable table;
  std::vector<std::string> header = {"config\\burst"};
  for (int64_t burst : {2, 4, 8, 16, 32}) {
    header.push_back(std::to_string(burst));
  }
  table.SetHeader(header);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> row = {rows[r]};
    for (int64_t burst : {2, 4, 8, 16, 32}) {
      row.push_back(rago::TextTable::Num(cell(r, burst), 3));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace

int main() {
  using namespace rago;
  using namespace rago::bench;

  // (a) Case I, 70B: rows are queries per retrieval.
  {
    const std::vector<int> queries = {1, 2, 4, 8};
    std::vector<PipelineModel> models;
    std::vector<std::string> labels;
    for (int q : queries) {
      models.emplace_back(core::MakeHyperscaleSchema(70, q),
                          LargeCluster());
      labels.push_back(std::to_string(q) + " qpr");
    }
    Heatmap("Figure 19a: TTFT reduction %, Case I, 70B", labels,
            [&](size_t r, int64_t burst) {
              // Micro-batch of 1/4 of the burst (at least 1).
              const int64_t micro = std::max<int64_t>(1, burst / 4);
              return Reduction(models[r], burst, micro, 32, 32);
            });
    std::printf("(paper: ~0%% at small bursts, up to 46.9%% at burst 32, "
                "8 queries)\n");
  }

  // (b) Case II, 70B: rows are context lengths.
  {
    const std::vector<int64_t> contexts = {100'000, 1'000'000, 10'000'000};
    std::vector<PipelineModel> models;
    std::vector<std::string> labels;
    for (int64_t c : contexts) {
      models.emplace_back(core::MakeLongContextSchema(70, c),
                          LargeCluster());
      labels.push_back(std::to_string(c / 1000) + "K");
    }
    Heatmap("Figure 19b: TTFT reduction %, Case II, 70B", labels,
            [&](size_t r, int64_t burst) {
              const int64_t micro = std::max<int64_t>(1, burst / 4);
              return Reduction(models[r], burst, micro, 32, 16);
            });
    std::printf("(paper: 22.5%% at burst 2 for 10M, up to 55.2%% at "
                "burst 32 for 1M)\n");
  }

  // (c) Case IV: rows are main LLM sizes.
  {
    const std::vector<int> sizes = {8, 70};
    std::vector<PipelineModel> models;
    std::vector<std::string> labels;
    for (int s : sizes) {
      models.emplace_back(core::MakeRewriterRerankerSchema(s),
                          LargeCluster());
      labels.push_back(std::to_string(s) + "B");
    }
    Heatmap("Figure 19c: TTFT reduction %, Case IV", labels,
            [&](size_t r, int64_t burst) {
              const int64_t micro = std::max<int64_t>(1, burst / 4);
              return Reduction(models[r], burst, micro, 16, 32);
            });
    std::printf("(paper: up to ~27.7%% at burst 32)\n");
  }
  return 0;
}
