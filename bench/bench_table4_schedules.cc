/**
 * @file bench_table4_schedules.cc
 * Reproduces paper Table 4: the concrete schedules RAGO and the
 * baseline pick in Case II (long-context 70B, 1M tokens, 128 XPUs) at
 * the max-QPS/Chip and min-TTFT ends of the frontier: batch sizes per
 * stage, XPU allocation, and the resulting TTFT / QPS/Chip.
 *
 * Paper shape: RAGO's throughput point gives most XPUs to the encoder
 * (64 of 96) with small encode batches and a large prefix batch; the
 * latency point collocates encode+prefix with batch 1.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

void AddRow(rago::TextTable& table, const char* name,
            const rago::opt::ScheduledPoint& point,
            const rago::core::PipelineModel& model) {
  using rago::TextTable;
  const auto& schedule = point.schedule;
  const auto& chain = model.chain();
  std::string encode_batch = "-";
  std::string prefix_batch = "-";
  std::string encode_chips = "-";
  std::string prefix_chips = "-";
  for (size_t i = 0; i < chain.size(); ++i) {
    const int g = schedule.chain_group[i];
    const bool collocated =
        schedule.chain_group.front() == schedule.chain_group.back();
    const std::string chips =
        std::to_string(schedule.group_chips[static_cast<size_t>(g)]) +
        (collocated && chain.size() > 1 ? " (col)" : "");
    if (chain[i] == rago::core::StageType::kDatabaseEncode) {
      encode_batch = std::to_string(schedule.chain_batch[i]);
      encode_chips = chips;
    } else if (chain[i] == rago::core::StageType::kPrefix) {
      prefix_batch = std::to_string(schedule.chain_batch[i]);
      prefix_chips = chips;
    }
  }
  table.AddRow({name, TextTable::Num(point.perf.ttft, 4),
                TextTable::Num(point.perf.qps_per_chip, 4), encode_batch,
                std::to_string(schedule.retrieval_batch), prefix_batch,
                std::to_string(schedule.decode_batch), encode_chips,
                prefix_chips, std::to_string(schedule.decode_chips),
                std::to_string(schedule.AllocatedXpus())});
}

}  // namespace

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Table 4: RAGO vs baseline schedules, Case II (70B, 1M tokens)");
  const core::PipelineModel model(core::MakeLongContextSchema(70, 1'000'000),
                                  LargeCluster());
  const opt::Optimizer optimizer(model, StandardGrid());
  const opt::OptimizerResult rago_result = optimizer.Search();
  const opt::OptimizerResult baseline = optimizer.SearchBaseline();

  TextTable table;
  table.SetHeader({"schedule", "TTFT (s)", "QPS/Chip", "b.enc", "b.retr",
                   "b.prefix", "b.decode", "XPU enc", "XPU prefix",
                   "XPU dec", "XPU total"});
  AddRow(table, "RAGO (max QPS/Chip)", rago_result.MaxQpsPerChip(), model);
  // The paper's throughput row keeps TTFT at 2.47 s; report our best
  // throughput point under a comparable 3 s TTFT ceiling.
  {
    const opt::ScheduledPoint* bounded = nullptr;
    for (const opt::ScheduledPoint& point : rago_result.pareto) {
      if (point.perf.ttft <= 3.0 &&
          (bounded == nullptr ||
           point.perf.qps_per_chip > bounded->perf.qps_per_chip)) {
        bounded = &point;
      }
    }
    if (bounded != nullptr) {
      AddRow(table, "RAGO (max QPS/Chip, TTFT<=3s)", *bounded, model);
    }
  }
  AddRow(table, "RAGO (min TTFT)", rago_result.MinTtft(), model);
  AddRow(table, "Baseline (max QPS/Chip)", baseline.MaxQpsPerChip(), model);
  AddRow(table, "Baseline (min TTFT)", baseline.MinTtft(), model);
  table.Print();

  std::printf(
      "(paper Table 4: RAGO max-QPS = encode 64 XPUs / prefix 16 / decode "
      "16,\n encode batch 2, prefix batch 128, decode batch 1024; both "
      "min-TTFT rows\n collocate encode+prefix on 64 XPUs at batch 1)\n");
  return 0;
}
