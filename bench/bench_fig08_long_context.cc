/**
 * @file bench_fig08_long_context.cc
 * Reproduces paper Figure 8: Case II (long-context sequence
 * processing) with a 70B generative LLM.
 *  (a) TTFT vs QPS/Chip Pareto for context lengths 100K / 1M / 10M
 *      plus the "no long context" reference.
 *  (b) Time breakdown across encode / retrieval / prefix / decode.
 * Also reports the RAG vs long-context-LLM comparison from §5.2
 * (paper: 2852.6x TTFT and 6633.9x QPS/Chip at 1M tokens).
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  Banner("Figure 8a: QPS/Chip Pareto, 70B LLM, long-context RAG");
  {
    // "No long context": plain 512-token prompt without retrieval.
    core::RAGSchema plain = core::MakeLlmOnlySchema(70);
    plain.workload.prefix_tokens = 512;
    const core::PipelineModel model(plain, LargeCluster());
    PrintFrontier("no long context",
                  opt::Optimizer(model, StandardGrid()).Search().pareto);
  }
  for (int64_t context : {100'000LL, 1'000'000LL, 10'000'000LL}) {
    const core::PipelineModel model(core::MakeLongContextSchema(70, context),
                                    LargeCluster());
    const opt::OptimizerResult result =
        opt::Optimizer(model, StandardGrid()).Search();
    PrintFrontier("context len: " + std::to_string(context / 1000) + "K",
                  result.pareto);
  }

  Banner("Figure 8b: time breakdown, 70B LLM + long-context retrieval");
  {
    TextTable table;
    table.SetHeader(
        {"context", "encode %", "retrieval %", "prefix %", "decode %"});
    for (int64_t context : {100'000LL, 1'000'000LL, 10'000'000LL}) {
      const core::PipelineModel model(
          core::MakeLongContextSchema(70, context), LargeCluster());
      double shares[4] = {0, 0, 0, 0};
      for (const core::StageShare& share : model.TimeBreakdown()) {
        switch (share.stage) {
          case core::StageType::kDatabaseEncode:
            shares[0] = share.fraction;
            break;
          case core::StageType::kRetrieval:
            shares[1] = share.fraction;
            break;
          case core::StageType::kPrefix:
            shares[2] = share.fraction;
            break;
          case core::StageType::kDecode:
            shares[3] = share.fraction;
            break;
          default:
            break;
        }
      }
      table.AddRow({std::to_string(context / 1000) + "K",
                    TextTable::Num(100 * shares[0], 3),
                    TextTable::Num(100 * shares[1], 3),
                    TextTable::Num(100 * shares[2], 3),
                    TextTable::Num(100 * shares[3], 3)});
    }
    table.Print();
  }

  Banner("RAG vs long-context LLM (paper 5.2, 1M tokens, 70B)");
  {
    // Fixed comparable schedules on the large cluster.
    const core::PipelineModel rag(core::MakeLongContextSchema(70, 1'000'000),
                                  LargeCluster());
    core::Schedule rag_schedule;
    rag_schedule.chain_group = {0, 1};
    rag_schedule.group_chips = {64, 16};
    rag_schedule.chain_batch = {1, 1};
    rag_schedule.decode_chips = 16;
    rag_schedule.decode_batch = 64;
    rag_schedule.retrieval_servers = 1;
    rag_schedule.retrieval_batch = 1;
    const core::EndToEndPerf rag_perf = rag.Evaluate(rag_schedule);

    const core::PipelineModel llm(
        core::MakeLongContextLlmOnlySchema(70, 1'000'000), LargeCluster());
    core::Schedule llm_schedule;
    llm_schedule.chain_group = {0};
    llm_schedule.group_chips = {64};
    llm_schedule.chain_batch = {1};
    llm_schedule.decode_chips = 32;
    llm_schedule.decode_batch = 8;  // 1M-token KV caches cap the batch.
    llm_schedule.retrieval_servers = 1;
    const core::EndToEndPerf llm_perf = llm.Evaluate(llm_schedule);

    std::printf("RAG:              TTFT %.3f s, QPS/Chip %.4f\n",
                rag_perf.ttft, rag_perf.qps_per_chip);
    std::printf("long-context LLM: TTFT %.1f s, QPS/Chip %.6f\n",
                llm_perf.ttft, llm_perf.qps_per_chip);
    std::printf("speedup: %.0fx TTFT, %.0fx QPS/Chip "
                "(paper: 2852.6x TTFT, 6633.9x QPS/Chip)\n",
                llm_perf.ttft / rag_perf.ttft,
                rag_perf.qps_per_chip / llm_perf.qps_per_chip);
  }
  return 0;
}
