/**
 * @file bench_ablation_kvcache.cc
 * Ablation (DESIGN.md): grouped-query attention's KV-cache footprint.
 * The paper's decode-stage memory arithmetic assumes GQA-era models;
 * this harness quantifies how much continuous-batching capacity and
 * decode throughput GQA buys versus full multi-head attention.
 */
#include <cstdio>

#include "bench/bench_common.h"
#include "hardware/xpu.h"
#include "models/inference.h"
#include "models/transformer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::models;

  Banner("Ablation: GQA vs MHA KV cache (decode on 8 XPU-C, ctx 768)");
  TextTable table;
  table.SetHeader({"model", "attention", "KV B/token", "max batch",
                   "tokens/s at max batch"});
  for (int size : {8, 70}) {
    for (bool gqa : {true, false}) {
      TransformerConfig config = LlamaBySize(size);
      if (!gqa) {
        config.num_kv_heads = config.num_heads;  // Full MHA.
        config.name += "-MHA";
      }
      const InferenceModel model(config, DefaultXpu());
      const int64_t max_batch = model.MaxDecodeBatch(8, 768);
      double tokens_per_s = 0.0;
      if (max_batch > 0) {
        const PhaseCost cost = model.BestDecode(8, max_batch, 640, 768);
        tokens_per_s = cost.feasible ? cost.throughput : 0.0;
      }
      table.AddRow({config.name, gqa ? "GQA" : "MHA",
                    TextTable::Num(config.KvBytesPerToken(), 6),
                    std::to_string(max_batch),
                    TextTable::Num(tokens_per_s, 5)});
    }
  }
  table.Print();
  std::printf("(GQA's 8x smaller cache supports ~8x larger continuous "
              "batches,\n which is what lets RAG decode amortize weight "
              "reads)\n");
  return 0;
}
