/**
 * @file bench_fig09_iterative.cc
 * Reproduces paper Figure 9: Case III (iterative retrievals during
 * decoding, 70B LLM), via the discrete-event simulator fed with step
 * and retrieval latencies from the cost models.
 *  (a) TPOT vs decode batch size (1..1024) for 1/2/4/8 retrievals per
 *      sequence.
 *  (b) TPOT vs iterative retrieval batch size (1..64) for decode
 *      batches {4, 16, 64, 256} at 4 retrievals per sequence.
 *
 * Paper shape: TPOT grows with both retrieval frequency and decode
 * batch; at small decode batches larger iterative batches hurt, at
 * decode batch 256 they help, and decode batch 64 has a sweet spot
 * around iterative batch 4.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "sim/iterative_sim.h"

namespace {

/// Builds a DES config from the pipeline model's latencies.
rago::sim::IterativeSimConfig SimFor(const rago::core::PipelineModel& model,
                                     int decode_batch, int iterative_batch,
                                     int retrievals) {
  rago::sim::IterativeSimConfig config;
  config.decode_batch = decode_batch;
  config.iterative_batch = iterative_batch;
  config.decode_tokens = model.schema().workload.decode_tokens;
  config.retrievals_per_sequence = retrievals;
  // Decode runs on 16 XPUs; retrieval rounds pay retrieval latency at
  // the iterative batch plus prefix ingestion of the new passages.
  config.step_latency = model.EvalDecode(16, decode_batch).latency;
  config.round_latency =
      model.EvalRetrieval(iterative_batch, model.MinRetrievalServers())
          .latency +
      model.EvalIngestPrefix(16, iterative_batch).latency;
  config.num_sequences = std::max(256, decode_batch * 3);
  config.seed = 1234;
  return config;
}

}  // namespace

int main() {
  using namespace rago;
  using namespace rago::bench;

  const core::PipelineModel model(core::MakeIterativeSchema(70, 4),
                                  DefaultCluster());

  Banner("Figure 9a: TPOT vs decode batch per retrieval frequency (70B)");
  {
    TextTable table;
    table.SetHeader({"decode batch", "1 retr (ms)", "2 retr (ms)",
                     "4 retr (ms)", "8 retr (ms)"});
    for (int decode_batch : {1, 4, 16, 64, 256, 1024}) {
      std::vector<std::string> row = {std::to_string(decode_batch)};
      // Iterative batch scaled with the pool so batching can fill
      // (the paper tunes it per configuration).
      const int iterative_batch = std::max(1, decode_batch / 16);
      for (int retrievals : {1, 2, 4, 8}) {
        const auto config =
            SimFor(model, decode_batch, iterative_batch, retrievals);
        const auto result = sim::SimulateIterativeDecode(config);
        row.push_back(TextTable::Num(ToMillis(result.avg_tpot), 4));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  Banner("Figure 9b: TPOT vs iterative batch (70B, 4 retrievals)");
  {
    TextTable table;
    table.SetHeader({"iter batch", "dec=4 (ms)", "dec=16 (ms)",
                     "dec=64 (ms)", "dec=256 (ms)"});
    for (int iterative : {1, 2, 4, 8, 16, 32, 64}) {
      std::vector<std::string> row = {std::to_string(iterative)};
      for (int decode_batch : {4, 16, 64, 256}) {
        const auto config = SimFor(model, decode_batch, iterative, 4);
        const auto result = sim::SimulateIterativeDecode(config);
        row.push_back(TextTable::Num(ToMillis(result.avg_tpot), 4));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("(paper: small decode batches suffer from large iterative "
                "batches;\n decode batch 256 benefits; 64 has a sweet "
                "spot)\n");
  }
  return 0;
}
