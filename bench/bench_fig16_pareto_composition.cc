/**
 * @file bench_fig16_pareto_composition.cc
 * Reproduces paper Figure 16: the global Pareto frontier is composed
 * of many distinct placement+allocation plans, each contributing a
 * segment. Prints the top plans by max QPS/Chip and by min TTFT for
 * Case II and Case IV.
 *
 * Paper shape: no single plan spans the frontier; the
 * throughput-optimal plan trades ~40% higher TTFT for ~1.5x QPS/Chip
 * versus the latency-optimal plan (C-IV).
 */
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

namespace {

void Compose(const char* name, const rago::core::RAGSchema& schema) {
  using namespace rago;
  using namespace rago::bench;

  opt::SearchOptions options = CoarseGrid();
  options.keep_plan_frontiers = true;
  const core::PipelineModel model(schema, LargeCluster());
  const opt::OptimizerResult result =
      opt::Optimizer(model, options).Search();

  Banner(std::string("Figure 16 ") + name);
  PrintFrontier("global Pareto", result.pareto);

  // Rank plans by their best QPS/Chip contribution.
  std::vector<const opt::PlanFrontier*> plans;
  for (const opt::PlanFrontier& plan : result.plan_frontiers) {
    if (!plan.points.empty()) {
      plans.push_back(&plan);
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const opt::PlanFrontier* a, const opt::PlanFrontier* b) {
              auto best = [](const opt::PlanFrontier* p) {
                double q = 0.0;
                for (const auto& point : p->points) {
                  q = std::max(q, point.perf.qps_per_chip);
                }
                return q;
              };
              return best(a) > best(b);
            });

  TextTable table("top plans by max QPS/Chip (of " +
                  std::to_string(plans.size()) + " plans)");
  table.SetHeader({"plan", "max QPS/Chip", "TTFT there (ms)",
                   "min TTFT (ms)"});
  for (size_t i = 0; i < plans.size() && i < 6; ++i) {
    double best_q = 0.0;
    double ttft_at_best = 0.0;
    double min_ttft = 1e30;
    for (const auto& point : plans[i]->points) {
      if (point.perf.qps_per_chip > best_q) {
        best_q = point.perf.qps_per_chip;
        ttft_at_best = point.perf.ttft;
      }
      min_ttft = std::min(min_ttft, point.perf.ttft);
    }
    table.AddRow({plans[i]->plan_label, TextTable::Num(best_q, 4),
                  TextTable::Num(rago::ToMillis(ttft_at_best), 5),
                  TextTable::Num(rago::ToMillis(min_ttft), 5)});
  }
  table.Print();

  // How many distinct plans contribute points to the global frontier?
  size_t contributing = 0;
  for (const opt::PlanFrontier* plan : plans) {
    for (const auto& point : plan->points) {
      bool on_global = false;
      for (const auto& global : result.pareto) {
        if (std::abs(global.perf.ttft - point.perf.ttft) < 1e-12 &&
            std::abs(global.perf.qps_per_chip - point.perf.qps_per_chip) <
                1e-12) {
          on_global = true;
          break;
        }
      }
      if (on_global) {
        ++contributing;
        break;
      }
    }
  }
  std::printf("plans contributing to the global frontier: %zu "
              "(paper: multiple distinct plans)\n",
              contributing);
}

}  // namespace

int main() {
  Compose("(a) Case II: long-context 70B, 1M tokens",
          rago::core::MakeLongContextSchema(70, 1'000'000));
  Compose("(b) Case IV: rewriter + reranker, 70B",
          rago::core::MakeRewriterRerankerSchema(70));
  return 0;
}
