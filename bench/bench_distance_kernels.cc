/**
 * @file bench_distance_kernels.cc
 * Distance-kernel micro-benchmark: GB/s and distance evals/s per
 * compiled kernel variant (scalar / avx2 / avx512) for the batched
 * L2 / inner-product, multi-query micro-tile, and PQ ADC kernels in
 * both the strided and packed (fast-scan) layouts, plus the headline
 * speedups the ISSUE acceptance bands track: batched-AVX2 vs
 * scalar-single-row, and packed ADC vs the scalar strided scan. The
 * working set is sized to stay cache-resident so the numbers reflect
 * kernel arithmetic, not DRAM.
 *
 * Accepts `--json out.json` like the other harnesses. The report is
 * printed on any host — including non-AVX or 1-core containers, where
 * the dispatched variant simply equals scalar; speedup-band
 * enforcement lives in multi-core CI, not here (see ROADMAP).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/packed_codes.h"

namespace {

using Clock = std::chrono::steady_clock;
using rago::Rng;
namespace kernels = rago::ann::kernels;

/// Keeps measured loops from being optimized away.
volatile float g_sink = 0.0f;

struct Measurement {
  double seconds = 0.0;
  int64_t reps = 0;
};

/// Runs `body` until ~0.2 s has elapsed (at least 3 reps) and returns
/// total time and rep count.
template <typename Body>
Measurement MeasureFor(Body&& body) {
  constexpr double kTargetSeconds = 0.2;
  Measurement m;
  const Clock::time_point start = Clock::now();
  do {
    body();
    ++m.reps;
    m.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
  } while (m.seconds < kTargetSeconds || m.reps < 3);
  return m;
}

struct KernelResult {
  std::string kernel;
  std::string variant;
  double gb_per_sec = 0.0;
  double evals_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;

  // 4096 x 128-d float rows = 2 MB: streams from L2/L3, so variants
  // are compared on kernel arithmetic rather than DRAM bandwidth.
  const size_t rows = 4096;
  const size_t dim = 128;
  const size_t tile_queries = 8;
  const size_t pq_m = 16;
  Rng rng(99);
  std::vector<float> data(rows * dim);
  for (float& x : data) {
    x = static_cast<float>(rng.NextGaussian());
  }
  std::vector<float> queries(tile_queries * dim);
  for (float& x : queries) {
    x = static_cast<float>(rng.NextGaussian());
  }
  std::vector<float> adc_table(pq_m * kernels::kAdcCentroids);
  for (float& x : adc_table) {
    x = static_cast<float>(rng.NextGaussian());
  }
  std::vector<uint8_t> codes(rows * pq_m);
  for (uint8_t& c : codes) {
    c = static_cast<uint8_t>(rng.NextBounded(kernels::kAdcCentroids));
  }
  const rago::ann::PackedCodes packed(codes.data(), rows, pq_m);
  std::vector<float> out(tile_queries * rows);

  Banner("Distance-kernel throughput (4096 x 128-d rows, cache-resident)");
  std::printf(
      "avx2 compiled: %s | avx2 supported: %s | avx512 compiled: %s | "
      "avx512 supported: %s | dispatched: %s%s\n",
      kernels::Avx2KernelsCompiled() ? "yes" : "no",
      kernels::CpuSupportsAvx2() ? "yes" : "no",
      kernels::Avx512KernelsCompiled() ? "yes" : "no",
      kernels::CpuSupportsAvx512() ? "yes" : "no", kernels::Active().name,
      kernels::ForceScalarActive() ? " (forced)" : "");

  const double row_bytes = static_cast<double>(rows * dim * sizeof(float));
  const double code_bytes = static_cast<double>(rows * pq_m);
  std::vector<KernelResult> results;

  // The scalar-single-row baseline the acceptance speedup is defined
  // against: one kernel invocation per row, like the legacy per-row
  // Distance() loops the batched layer replaced.
  double scalar_single_evals_per_sec = 0.0;
  {
    const kernels::KernelTable& scalar = kernels::ScalarKernels();
    const Measurement m = MeasureFor([&] {
      for (size_t i = 0; i < rows; ++i) {
        scalar.l2sq_batch(queries.data(), data.data() + i * dim, 1, dim,
                          out.data() + i);
      }
      g_sink += out[rows / 2];
    });
    const double per_sec = static_cast<double>(m.reps) / m.seconds;
    scalar_single_evals_per_sec = per_sec * static_cast<double>(rows);
    results.push_back({"l2sq_single_row", "scalar", per_sec * row_bytes / 1e9,
                       scalar_single_evals_per_sec});
  }

  struct Variant {
    const char* name;
    const kernels::KernelTable* table;
  };
  // Every compiled-in, host-supported tier side by side.
  std::vector<Variant> variants;
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    if (const kernels::KernelTable* table = kernels::VariantByName(name)) {
      variants.push_back({name, table});
    }
  }

  double avx2_batch_evals_per_sec = 0.0;
  double scalar_adc_strided_evals_per_sec = 0.0;
  struct AdcSpeedups {
    std::string variant;
    double strided_evals_per_sec = 0.0;
    double packed_evals_per_sec = 0.0;
  };
  std::vector<AdcSpeedups> adc;
  for (const Variant& variant : variants) {
    const kernels::KernelTable& table = *variant.table;
    AdcSpeedups adc_row;
    adc_row.variant = variant.name;
    {
      const Measurement m = MeasureFor([&] {
        table.l2sq_batch(queries.data(), data.data(), rows, dim, out.data());
        g_sink += out[rows / 2];
      });
      const double per_sec = static_cast<double>(m.reps) / m.seconds;
      results.push_back({"l2sq_batch", variant.name,
                         per_sec * row_bytes / 1e9,
                         per_sec * static_cast<double>(rows)});
      if (std::string(variant.name) == "avx2") {
        avx2_batch_evals_per_sec = per_sec * static_cast<double>(rows);
      }
    }
    {
      const Measurement m = MeasureFor([&] {
        table.dot_batch(queries.data(), data.data(), rows, dim, out.data());
        g_sink += out[rows / 2];
      });
      const double per_sec = static_cast<double>(m.reps) / m.seconds;
      results.push_back({"dot_batch", variant.name,
                         per_sec * row_bytes / 1e9,
                         per_sec * static_cast<double>(rows)});
    }
    {
      const Measurement m = MeasureFor([&] {
        table.l2sq_tile(queries.data(), tile_queries, data.data(), rows, dim,
                        out.data());
        g_sink += out[rows / 2];
      });
      const double per_sec = static_cast<double>(m.reps) / m.seconds;
      // The tile streams each row once for all queries: bytes touched
      // stay one pass, evals multiply by the query count.
      results.push_back(
          {"l2sq_tile_q8", variant.name, per_sec * row_bytes / 1e9,
           per_sec * static_cast<double>(rows * tile_queries)});
    }
    {
      const Measurement m = MeasureFor([&] {
        table.adc_batch(adc_table.data(), codes.data(), rows, pq_m,
                        out.data());
        g_sink += out[rows / 2];
      });
      const double per_sec = static_cast<double>(m.reps) / m.seconds;
      adc_row.strided_evals_per_sec = per_sec * static_cast<double>(rows);
      if (std::string(variant.name) == "scalar") {
        scalar_adc_strided_evals_per_sec = adc_row.strided_evals_per_sec;
      }
      results.push_back({"adc_batch_m16", variant.name,
                         per_sec * code_bytes / 1e9,
                         per_sec * static_cast<double>(rows)});
    }
    {
      const Measurement m = MeasureFor([&] {
        table.adc_packed(adc_table.data(), packed.data(), rows, pq_m,
                         out.data());
        g_sink += out[rows / 2];
      });
      const double per_sec = static_cast<double>(m.reps) / m.seconds;
      adc_row.packed_evals_per_sec = per_sec * static_cast<double>(rows);
      results.push_back({"adc_packed_m16", variant.name,
                         per_sec * code_bytes / 1e9,
                         per_sec * static_cast<double>(rows)});
    }
    adc.push_back(adc_row);
  }

  TextTable table_out;
  table_out.SetHeader({"kernel", "variant", "GB/s", "evals/s"});
  for (const KernelResult& r : results) {
    table_out.AddRow({r.kernel, r.variant, TextTable::Num(r.gb_per_sec, 4),
                      TextTable::Num(r.evals_per_sec, 4)});
  }
  table_out.Print();

  const double speedup =
      avx2_batch_evals_per_sec > 0.0
          ? avx2_batch_evals_per_sec / scalar_single_evals_per_sec
          : 0.0;
  if (avx2_batch_evals_per_sec > 0.0) {
    std::printf(
        "\nAVX2 batched L2 vs scalar single-row: %.2fx "
        "(acceptance band: >= 4x on AVX2 hosts; enforced in CI, "
        "reported everywhere)\n",
        speedup);
  } else {
    std::printf(
        "\nAVX2 kernels unavailable on this host; scalar-only report "
        "(speedup band deferred to AVX2 CI runners)\n");
  }
  double best_packed_vs_scalar_strided = 0.0;
  for (const AdcSpeedups& row : adc) {
    const double vs_strided =
        row.strided_evals_per_sec > 0.0
            ? row.packed_evals_per_sec / row.strided_evals_per_sec
            : 0.0;
    const double vs_scalar =
        scalar_adc_strided_evals_per_sec > 0.0
            ? row.packed_evals_per_sec / scalar_adc_strided_evals_per_sec
            : 0.0;
    if (row.variant != "scalar") {
      best_packed_vs_scalar_strided =
          std::max(best_packed_vs_scalar_strided, vs_scalar);
    }
    std::printf(
        "ADC %s: packed vs strided %.2fx, packed vs scalar strided %.2fx\n",
        row.variant.c_str(), vs_strided, vs_scalar);
  }
  std::printf(
      "Packed-ADC band (info-only until CI runners stabilize): best SIMD "
      "packed vs scalar strided >= 2.5x on AVX2 hosts; measured %.2fx\n",
      best_packed_vs_scalar_strided);

  JsonWriter json = StartBenchJson("distance_kernels");
  json.Key("rows").Int(static_cast<int64_t>(rows));
  json.Key("dim").Int(static_cast<int64_t>(dim));
  json.Key("tile_queries").Int(static_cast<int64_t>(tile_queries));
  json.Key("pq_subspaces").Int(static_cast<int64_t>(pq_m));
  json.Key("avx2_compiled").Bool(kernels::Avx2KernelsCompiled());
  json.Key("avx2_supported").Bool(kernels::CpuSupportsAvx2());
  json.Key("avx512_compiled").Bool(kernels::Avx512KernelsCompiled());
  json.Key("avx512_supported").Bool(kernels::CpuSupportsAvx512());
  json.Key("avx2_batch_vs_scalar_single_speedup").Number(speedup);
  // Per-variant ADC layout comparison (the tentpole's acceptance
  // number is adc_packed_best_vs_scalar_strided_speedup).
  json.Key("adc_speedups").BeginArray();
  for (const AdcSpeedups& row : adc) {
    json.BeginObject();
    json.Key("variant").String(row.variant);
    json.Key("strided_evals_per_sec").Number(row.strided_evals_per_sec);
    json.Key("packed_evals_per_sec").Number(row.packed_evals_per_sec);
    json.Key("packed_vs_strided_speedup")
        .Number(row.strided_evals_per_sec > 0.0
                    ? row.packed_evals_per_sec / row.strided_evals_per_sec
                    : 0.0);
    json.Key("packed_vs_scalar_strided_speedup")
        .Number(scalar_adc_strided_evals_per_sec > 0.0
                    ? row.packed_evals_per_sec /
                          scalar_adc_strided_evals_per_sec
                    : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.Key("adc_packed_best_vs_scalar_strided_speedup")
      .Number(best_packed_vs_scalar_strided);
  // Info-only until CI runners stabilize, like the roofline bands.
  json.Key("adc_packed_band").BeginObject();
  json.Key("min_speedup_vs_scalar_strided").Number(2.5);
  json.Key("enforced").Bool(false);
  json.EndObject();
  json.Key("results").BeginArray();
  for (const KernelResult& r : results) {
    json.BeginObject();
    json.Key("kernel").String(r.kernel);
    json.Key("variant").String(r.variant);
    json.Key("gb_per_sec").Number(r.gb_per_sec);
    json.Key("evals_per_sec").Number(r.evals_per_sec);
    json.EndObject();
  }
  json.EndArray();
  FinishBenchJson(json, JsonOutputPath(argc, argv));
  return 0;
}
