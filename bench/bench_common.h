/**
 * @file bench_common.h
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: same series, same axes, printed as aligned text tables.
 * Absolute values come from this repo's re-implementation of the
 * published cost models; the reproduction target is the *shape* (see
 * EXPERIMENTS.md).
 */
#ifndef RAGO_BENCH_BENCH_COMMON_H
#define RAGO_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/table.h"
#include "common/units.h"
#include "rago/optimizer.h"

namespace rago::bench {

/// Prints a section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Parses the shared `--json <path>` flag (machine-readable output for
 * perf-trajectory tracking, e.g. BENCH_*.json). Returns an empty
 * string when the flag is absent.
 */
inline std::string JsonOutputPath(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      RAGO_REQUIRE(i + 1 < argc, "--json requires an output path");
      return argv[i + 1];
    }
  }
  return "";
}

/**
 * Version of the shared `--json` envelope every bench emits. Bump on
 * any incompatible shape change so the perf-trajectory tooling and the
 * regression comparator (bench_obs_trajectory --baseline) can refuse
 * documents they do not understand instead of misreading them.
 */
inline constexpr int kBenchJsonSchemaVersion = 1;

/**
 * Opens the shared envelope: {"schema_version": N, "bench": "<name>",
 * ...bench-specific fields...}. Callers append their fields and close
 * with FinishBenchJson. The round-trip tests pin this shape through
 * common/json_reader.h.
 */
inline JsonWriter StartBenchJson(const std::string& bench_name) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(kBenchJsonSchemaVersion);
  json.Key("bench").String(bench_name);
  return json;
}

/// Writes a finished JSON document to `path` (no-op on empty path).
inline void MaybeWriteJson(const std::string& path,
                           const JsonWriter& json) {
  if (path.empty()) {
    return;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  RAGO_REQUIRE(file != nullptr, "cannot open JSON output file: " + path);
  std::fputs(json.str().c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
}

/// Closes the envelope opened by StartBenchJson and writes it to
/// `path` when non-empty (the parsed `--json` flag).
inline void FinishBenchJson(JsonWriter& json, const std::string& path) {
  json.EndObject();
  MaybeWriteJson(path, json);
}

/// Moderate search grids that keep every harness under a minute.
inline opt::SearchOptions StandardGrid() {
  opt::SearchOptions options;
  options.batch_sizes = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  options.decode_batch_sizes = {1, 4, 16, 64, 256, 1024};
  return options;
}

/// Coarser grid for the largest searches (Case IV, plan frontiers).
inline opt::SearchOptions CoarseGrid() {
  opt::SearchOptions options;
  options.batch_sizes = {1, 4, 16, 64, 256};
  options.decode_batch_sizes = {4, 16, 64, 256, 1024};
  return options;
}

/// Renders a Pareto frontier as TTFT / QPS/Chip rows.
inline void PrintFrontier(const std::string& title,
                          const std::vector<opt::ScheduledPoint>& points) {
  TextTable table(title);
  table.SetHeader({"TTFT (ms)", "QPS/Chip", "QPS", "TPOT (ms)", "chips"});
  for (const auto& point : points) {
    table.AddRow({TextTable::Num(ToMillis(point.perf.ttft), 5),
                  TextTable::Num(point.perf.qps_per_chip, 4),
                  TextTable::Num(point.perf.qps, 4),
                  TextTable::Num(ToMillis(point.perf.tpot), 4),
                  std::to_string(point.perf.chip_equivalents)});
  }
  table.Print();
}

/// Lowest TTFT among frontier points with throughput >= target.
inline double TtftAtThroughput(
    const std::vector<opt::ScheduledPoint>& frontier, double min_qpc) {
  double best = -1.0;
  for (const auto& point : frontier) {  // Sorted by ascending TTFT.
    if (point.perf.qps_per_chip >= min_qpc) {
      best = point.perf.ttft;
      break;
    }
  }
  return best;
}

}  // namespace rago::bench

#endif  // RAGO_BENCH_BENCH_COMMON_H
