/**
 * @file bench_micro_substrates.cc
 * google-benchmark microbenchmarks of the substrates: ANN kernels
 * (distance scan, PQ ADC, tree search, k-means), the roofline
 * inference evaluator, the retrieval cost model, schedule evaluation,
 * and the iterative-decode DES. These measure this repository's own
 * code, complementing the figure harnesses that measure the modeled
 * system.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "models/inference.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/pq.h"
#include "retrieval/ann/scann_tree.h"
#include "retrieval/perf/scann_model.h"
#include "sim/iterative_sim.h"

namespace {

using namespace rago;

void BM_AnnL2DistanceScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const ann::Matrix data = ann::GenUniform(n, 96, rng);
  const ann::Matrix query = ann::GenUniform(1, 96, rng);
  for (auto _ : state) {
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      sum += ann::L2Sq(query.Row(0), data.Row(i), 96);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 96 * 4);
}
BENCHMARK(BM_AnnL2DistanceScan)->Arg(1024)->Arg(16384);

void BM_AnnPqAdcScan(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  const ann::Matrix data = ann::GenClustered(n, 96, 8, 0.4f, rng);
  const ann::ProductQuantizer pq(data, 12, rng, 4);
  const std::vector<uint8_t> codes = pq.EncodeAll(data);
  const auto table = pq.BuildAdcTable(data.Row(0));
  for (auto _ : state) {
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      sum += pq.AdcDistance(table, codes.data() + i * pq.CodeBytes());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * pq.CodeBytes()));
}
BENCHMARK(BM_AnnPqAdcScan)->Arg(4096)->Arg(65536);

void BM_AnnTreeSearch(benchmark::State& state) {
  Rng rng(3);
  ann::Matrix data = ann::GenClustered(20000, 32, 64, 0.3f, rng);
  const ann::Matrix queries = ann::GenQueriesNear(data, 64, 0.1f, rng);
  ann::ScannTreeOptions options;
  options.levels = 2;
  options.fanout = 16;
  options.pq_subspaces = 8;
  const ann::ScannTree tree(std::move(data), options, rng);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Search(queries.Row(q % queries.rows()), 10,
                    static_cast<int>(state.range(0)), 50));
    ++q;
  }
}
BENCHMARK(BM_AnnTreeSearch)->Arg(4)->Arg(32);

void BM_AnnFlatSearch(benchmark::State& state) {
  Rng rng(4);
  ann::Matrix data = ann::GenUniform(10000, 96, rng);
  const ann::Matrix queries = ann::GenUniform(16, 96, rng);
  const ann::FlatIndex index(std::move(data), ann::Metric::kL2);
  size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(queries.Row(q % 16), 10));
    ++q;
  }
}
BENCHMARK(BM_AnnFlatSearch);

void BM_RooflinePrefixEval(benchmark::State& state) {
  const models::InferenceModel model(models::Llama70B(), DefaultXpu());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.BestPrefix(64, 16, 512));
  }
}
BENCHMARK(BM_RooflinePrefixEval);

void BM_RetrievalModelEval(benchmark::State& state) {
  const retrieval::ScannModel model(retrieval::DatabaseSpec{},
                                    DefaultCpuServer(), 16);
  int64_t batch = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Search(batch));
    batch = batch % 512 + 1;
  }
}
BENCHMARK(BM_RetrievalModelEval);

void BM_ScheduleEvaluate(benchmark::State& state) {
  const core::PipelineModel model(core::MakeRewriterRerankerSchema(8),
                                  DefaultCluster());
  core::Schedule schedule;
  schedule.chain_group = {0, 0, 1, 1};
  schedule.group_chips = {8, 16};
  schedule.chain_batch = {8, 8, 16, 16};
  schedule.decode_chips = 16;
  schedule.decode_batch = 256;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(schedule));
  }
}
BENCHMARK(BM_ScheduleEvaluate);

void BM_OptimizerSearchCaseII(benchmark::State& state) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  DefaultCluster());
  opt::SearchOptions options;
  options.batch_sizes = {1, 8, 64, 512};
  options.decode_batch_sizes = {16, 256};
  for (auto _ : state) {
    const opt::Optimizer optimizer(model, options);
    benchmark::DoNotOptimize(optimizer.Search());
  }
}
BENCHMARK(BM_OptimizerSearchCaseII);

void BM_IterativeDes(benchmark::State& state) {
  sim::IterativeSimConfig config;
  config.decode_batch = 64;
  config.iterative_batch = 8;
  config.retrievals_per_sequence = 4;
  config.num_sequences = 256;
  for (auto _ : state) {
    config.seed = static_cast<uint64_t>(state.iterations());
    benchmark::DoNotOptimize(sim::SimulateIterativeDecode(config));
  }
}
BENCHMARK(BM_IterativeDes);

}  // namespace

BENCHMARK_MAIN();
