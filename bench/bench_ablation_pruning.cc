/**
 * @file bench_ablation_pruning.cc
 * Ablation (DESIGN.md): per-stage Pareto pruning in Algorithm 1.
 * Pruning each stage's (chips, batch) options to their 3-objective
 * frontier before schedule enumeration must not change the result —
 * only the work. This harness measures both.
 */
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;
  using Clock = std::chrono::steady_clock;

  Banner("Ablation: Algorithm 1 per-stage Pareto pruning (Case II, 70B)");
  const core::PipelineModel model(core::MakeLongContextSchema(70, 1'000'000),
                                  LargeCluster());

  TextTable table;
  table.SetHeader({"pruning", "schedules evaluated", "search time (ms)",
                   "frontier size", "max QPS/Chip"});
  double reference_qpc = -1.0;
  for (bool pruning : {true, false}) {
    opt::SearchOptions options = StandardGrid();
    options.per_stage_pareto_pruning = pruning;
    const opt::Optimizer optimizer(model, options);
    const auto start = Clock::now();
    const opt::OptimizerResult result = optimizer.Search();
    const double millis =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    const double max_qpc = result.MaxQpsPerChip().perf.qps_per_chip;
    table.AddRow({pruning ? "on" : "off",
                  std::to_string(result.schedules_evaluated),
                  TextTable::Num(millis, 4),
                  std::to_string(result.pareto.size()),
                  TextTable::Num(max_qpc, 5)});
    if (reference_qpc < 0) {
      reference_qpc = max_qpc;
    } else if (std::abs(reference_qpc - max_qpc) > 1e-9 * reference_qpc) {
      std::printf("WARNING: pruning changed the frontier!\n");
    }
  }
  table.Print();
  std::printf("(pruning is lossless: identical frontier, fewer "
              "evaluations)\n");
  return 0;
}
