/**
 * @file bench_fig06_hyperscale.cc
 * Reproduces paper Figure 6: Case I (hyperscale retrieval).
 *  (a,b) TTFT vs QPS/Chip Pareto for 8B and 70B LLMs at 1/2/4/8 query
 *        vectors per retrieval, plus a no-retrieval reference with the
 *        same prefix length.
 *  (c,d) Resource-normalized time breakdown across retrieval / prefix
 *        / decode.
 *
 * Paper shape: for 8B, QPS roughly halves as queries double (retrieval
 * bound); for 70B, inference dominates until ~4 queries, then
 * retrieval takes over.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"

int main() {
  using namespace rago;
  using namespace rago::bench;

  for (int size : {8, 70}) {
    Banner("Figure 6: QPS/Chip Pareto, " + std::to_string(size) + "B LLM");
    for (int queries : {1, 2, 4, 8}) {
      const core::PipelineModel model(
          core::MakeHyperscaleSchema(size, queries), DefaultCluster());
      const opt::OptimizerResult result =
          opt::Optimizer(model, StandardGrid()).Search();
      PrintFrontier(std::to_string(queries) + " queries/retrieval",
                    result.pareto);
    }
    // "No retrieval" line: same 512-token prefix, retrieval disabled.
    core::RAGSchema no_retrieval = core::MakeLlmOnlySchema(size);
    no_retrieval.workload.prefix_tokens = 512;
    const core::PipelineModel model(no_retrieval, DefaultCluster());
    const opt::OptimizerResult result =
        opt::Optimizer(model, StandardGrid()).Search();
    PrintFrontier("no retrieval (same prefix len)", result.pareto);
  }

  for (int size : {8, 70}) {
    Banner("Figure 6c/d: time breakdown, " + std::to_string(size) +
           "B LLM + large-scale retrieval");
    TextTable table;
    table.SetHeader({"queries", "retrieval %", "prefix %", "decode %"});
    for (int queries : {1, 2, 4, 8}) {
      const core::PipelineModel model(
          core::MakeHyperscaleSchema(size, queries), DefaultCluster());
      double retrieval = 0.0;
      double prefix = 0.0;
      double decode = 0.0;
      for (const core::StageShare& share : model.TimeBreakdown()) {
        switch (share.stage) {
          case core::StageType::kRetrieval:
            retrieval = share.fraction;
            break;
          case core::StageType::kPrefix:
            prefix = share.fraction;
            break;
          case core::StageType::kDecode:
            decode = share.fraction;
            break;
          default:
            break;
        }
      }
      table.AddRow({std::to_string(queries),
                    TextTable::Num(100 * retrieval, 3),
                    TextTable::Num(100 * prefix, 3),
                    TextTable::Num(100 * decode, 3)});
    }
    table.Print();
  }
  return 0;
}
