/**
 * @file bench_ann_comparison.cc
 * Substrate study (paper §2's algorithm discussion): IVF-PQ versus a
 * graph index (HNSW) versus the ScaNN-style tree on the same synthetic
 * corpus. The paper argues IVF-PQ wins at RAG hyperscale because of
 * memory efficiency even though graphs do less work per query; this
 * harness quantifies both sides: recall, distance evaluations /
 * scanned bytes per query, and index memory.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"

int main(int argc, char** argv) {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::ann;

  const size_t n = 20'000;
  const size_t dim = 64;
  Rng rng(77);
  const Matrix data = GenClustered(n, dim, 64, 0.3f, rng);
  const Matrix queries = GenQueriesNear(data, 32, 0.1f, rng);

  const FlatIndex flat(data.Clone(), Metric::kL2);
  const std::vector<std::vector<Neighbor>> truth =
      flat.SearchBatch(queries, 10);

  // Every scan below runs through the dispatched distance kernels;
  // record which variant priced this run so perf trajectories across
  // hosts stay comparable.
  const char* kernel_variant = kernels::Active().name;

  Banner("ANN algorithm comparison (20K x 64-d clustered vectors)");
  TextTable table;
  table.SetHeader({"index", "setting", "kernel", "recall@10", "work/query",
                   "index bytes/vector"});

  JsonWriter json = StartBenchJson("ann_comparison");
  json.Key("rows").Int(static_cast<int64_t>(n));
  json.Key("dim").Int(static_cast<int64_t>(dim));
  json.Key("kernel_variant").String(kernel_variant);
  json.Key("results").BeginArray();
  // One record per table row; `work_per_query` is scanned bytes for
  // the PQ-based indexes and distance evaluations for the graph.
  auto record = [&json, kernel_variant](
                    const char* index, const std::string& setting,
                    double recall, double work, const char* work_unit,
                    double bytes_per_vector) {
    json.BeginObject();
    json.Key("index").String(index);
    json.Key("setting").String(setting);
    json.Key("kernel").String(kernel_variant);
    json.Key("recall_at_10").Number(recall);
    json.Key("work_per_query").Number(work);
    json.Key("work_unit").String(work_unit);
    json.Key("index_bytes_per_vector").Number(bytes_per_vector);
    json.EndObject();
  };

  // IVF-PQ: 8-byte codes + coarse centroids.
  {
    IvfPqOptions options;
    options.nlist = 128;
    options.pq_subspaces = 8;
    Rng build_rng(1);
    const IvfPqIndex index(data.Clone(), options, build_rng);
    for (int nprobe : {4, 16, 64}) {
      const auto results = index.SearchBatch(queries, 10, nprobe, 100);
      const double recall = MeanRecallAtK(results, truth, 10);
      const double bytes_per_vector = 8.0 + 128.0 * dim * 4 / n;
      table.AddRow({"IVF-PQ", "nprobe=" + std::to_string(nprobe),
                    kernel_variant, TextTable::Num(recall, 3),
                    TextTable::Num(index.ExpectedScannedBytes(nprobe), 4) +
                        " B scanned",
                    TextTable::Num(bytes_per_vector, 3)});
      record("IVF-PQ", "nprobe=" + std::to_string(nprobe), recall,
             index.ExpectedScannedBytes(nprobe), "bytes", bytes_per_vector);
    }
  }

  // ScaNN-style tree.
  {
    ScannTreeOptions options;
    options.levels = 2;
    options.fanout = 16;
    options.pq_subspaces = 8;
    Rng build_rng(2);
    const ScannTree tree(data.Clone(), options, build_rng);
    for (int beam : {4, 16, 64}) {
      const auto results = tree.SearchBatch(queries, 10, beam, 100);
      const double recall = MeanRecallAtK(results, truth, 10);
      table.AddRow({"ScaNN-tree", "beam=" + std::to_string(beam),
                    kernel_variant, TextTable::Num(recall, 3),
                    TextTable::Num(tree.ExpectedLeafBytesScanned(beam), 4) +
                        " B scanned",
                    "8 (+tree)"});
      record("ScaNN-tree", "beam=" + std::to_string(beam), recall,
             tree.ExpectedLeafBytesScanned(beam), "bytes", 8.0);
    }
  }

  // HNSW graph: full-precision vectors + links.
  {
    Rng build_rng(3);
    const HnswIndex index(data.Clone(), Metric::kL2, HnswOptions{},
                          build_rng);
    const double bytes_per_vector =
        dim * 4.0 +
        static_cast<double>(index.GraphBytes()) / static_cast<double>(n);
    for (int ef : {16, 64, 128}) {
      const auto results = index.SearchBatch(queries, 10, ef);
      const double recall = MeanRecallAtK(results, truth, 10);
      const double evals_per_query =
          static_cast<double>(index.last_distance_evals()) /
          static_cast<double>(queries.rows());
      table.AddRow({"HNSW", "ef=" + std::to_string(ef),
                    kernel_variant, TextTable::Num(recall, 3),
                    TextTable::Num(evals_per_query, 4) + " dists",
                    TextTable::Num(bytes_per_vector, 4)});
      record("HNSW", "ef=" + std::to_string(ef), recall, evals_per_query,
             "distance_evals", bytes_per_vector);
    }
  }
  table.Print();
  json.EndArray();
  FinishBenchJson(json, JsonOutputPath(argc, argv));
  std::printf(
      "(paper 2: PQ stores ~8 B/vector vs ~%zu B/vector for the graph -\n"
      " a ~%zux memory gap that decides hyperscale feasibility, while the\n"
      " graph needs orders of magnitude fewer distance evaluations)\n",
      static_cast<size_t>(dim * 4 + 100), static_cast<size_t>(dim / 2));
  return 0;
}
