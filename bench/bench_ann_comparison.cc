/**
 * @file bench_ann_comparison.cc
 * Substrate study (paper §2's algorithm discussion): IVF-PQ versus a
 * graph index (HNSW) versus the ScaNN-style tree on the same synthetic
 * corpus. The paper argues IVF-PQ wins at RAG hyperscale because of
 * memory efficiency even though graphs do less work per query; this
 * harness quantifies both sides: recall, distance evaluations /
 * scanned bytes per query, and index memory.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"

namespace {

rago::ann::Matrix Copy(const rago::ann::Matrix& m) {
  rago::ann::Matrix out(m.rows(), m.dim());
  for (size_t i = 0; i < m.rows(); ++i) {
    out.CopyRowFrom(m, i, i);
  }
  return out;
}

}  // namespace

int main() {
  using namespace rago;
  using namespace rago::bench;
  using namespace rago::ann;

  const size_t n = 20'000;
  const size_t dim = 64;
  Rng rng(77);
  const Matrix data = GenClustered(n, dim, 64, 0.3f, rng);
  const Matrix queries = GenQueriesNear(data, 32, 0.1f, rng);

  const FlatIndex flat(Copy(data), Metric::kL2);
  std::vector<std::vector<Neighbor>> truth;
  for (size_t q = 0; q < queries.rows(); ++q) {
    truth.push_back(flat.Search(queries.Row(q), 10));
  }

  Banner("ANN algorithm comparison (20K x 64-d clustered vectors)");
  TextTable table;
  table.SetHeader({"index", "setting", "recall@10", "work/query",
                   "index bytes/vector"});

  // IVF-PQ: 8-byte codes + coarse centroids.
  {
    IvfPqOptions options;
    options.nlist = 128;
    options.pq_subspaces = 8;
    Rng build_rng(1);
    const IvfPqIndex index(Copy(data), options, build_rng);
    for (int nprobe : {4, 16, 64}) {
      std::vector<std::vector<Neighbor>> results;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(index.Search(queries.Row(q), 10, nprobe, 100));
      }
      table.AddRow({"IVF-PQ", "nprobe=" + std::to_string(nprobe),
                    TextTable::Num(MeanRecallAtK(results, truth, 10), 3),
                    TextTable::Num(index.ExpectedScannedBytes(nprobe), 4) +
                        " B scanned",
                    TextTable::Num(8.0 + 128.0 * dim * 4 / n, 3)});
    }
  }

  // ScaNN-style tree.
  {
    ScannTreeOptions options;
    options.levels = 2;
    options.fanout = 16;
    options.pq_subspaces = 8;
    Rng build_rng(2);
    const ScannTree tree(Copy(data), options, build_rng);
    for (int beam : {4, 16, 64}) {
      std::vector<std::vector<Neighbor>> results;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(tree.Search(queries.Row(q), 10, beam, 100));
      }
      table.AddRow({"ScaNN-tree", "beam=" + std::to_string(beam),
                    TextTable::Num(MeanRecallAtK(results, truth, 10), 3),
                    TextTable::Num(tree.ExpectedLeafBytesScanned(beam), 4) +
                        " B scanned",
                    "8 (+tree)"});
    }
  }

  // HNSW graph: full-precision vectors + links.
  {
    Rng build_rng(3);
    const HnswIndex index(Copy(data), Metric::kL2, HnswOptions{},
                          build_rng);
    const double bytes_per_vector =
        dim * 4.0 +
        static_cast<double>(index.GraphBytes()) / static_cast<double>(n);
    for (int ef : {16, 64, 128}) {
      std::vector<std::vector<Neighbor>> results;
      int64_t evals = 0;
      for (size_t q = 0; q < queries.rows(); ++q) {
        results.push_back(index.Search(queries.Row(q), 10, ef));
        evals += index.last_distance_evals();
      }
      table.AddRow({"HNSW", "ef=" + std::to_string(ef),
                    TextTable::Num(MeanRecallAtK(results, truth, 10), 3),
                    TextTable::Num(static_cast<double>(evals) /
                                       static_cast<double>(queries.rows()),
                                   4) +
                        " dists",
                    TextTable::Num(bytes_per_vector, 4)});
    }
  }
  table.Print();
  std::printf(
      "(paper 2: PQ stores ~8 B/vector vs ~%zu B/vector for the graph -\n"
      " a ~%zux memory gap that decides hyperscale feasibility, while the\n"
      " graph needs orders of magnitude fewer distance evaluations)\n",
      static_cast<size_t>(dim * 4 + 100), static_cast<size_t>(dim / 2));
  return 0;
}
