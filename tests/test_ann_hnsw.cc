/**
 * @file test_ann_hnsw.cc
 * Tests for the HNSW graph index: recall behavior, beam-width
 * trade-off, determinism, and the memory/work accounting used by the
 * IVF-PQ-vs-graph comparison bench.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/recall.h"
#include "tests/testing/test_support.h"

namespace rago::ann {
namespace {

using Bed = rago::testing::AnnTestBed;
using rago::testing::CopyMatrix;

Bed MakeBed(size_t n = 3000, size_t dim = 16, size_t nq = 24) {
  rago::testing::AnnTestBedOptions options;
  options.rows = n;
  options.dim = dim;
  options.num_queries = nq;
  options.seed = 31;
  options.clusters = 24;
  return rago::testing::MakeAnnTestBed(options);
}

TEST(Hnsw, HighRecallAtModerateEf) {
  const Bed bed = MakeBed();
  Rng rng(5);
  const HnswIndex index(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, rng);
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    results.push_back(index.Search(bed.queries.Row(q), 10, 64));
  }
  EXPECT_GT(MeanRecallAtK(results, bed.truth, 10), 0.9);
}

TEST(Hnsw, RecallImprovesWithEf) {
  const Bed bed = MakeBed();
  Rng rng(6);
  const HnswIndex index(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, rng);
  std::vector<double> recalls;
  for (int ef : {10, 32, 128}) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      results.push_back(index.Search(bed.queries.Row(q), 10, ef));
    }
    recalls.push_back(MeanRecallAtK(results, bed.truth, 10));
  }
  EXPECT_GE(recalls[1], recalls[0] - 0.03);
  EXPECT_GE(recalls[2], recalls[1] - 0.03);
  EXPECT_GT(recalls[2], 0.95);
}

TEST(Hnsw, DistanceEvalsFarBelowBruteForce) {
  // The point of the graph: sublinear work per query.
  const Bed bed = MakeBed(4000, 16, 8);
  Rng rng(7);
  const HnswIndex index(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, rng);
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    index.Search(bed.queries.Row(q), 10, 48);
    EXPECT_LT(index.last_distance_evals(), 4000 / 2)
        << "graph search degenerated to a scan";
    EXPECT_GT(index.last_distance_evals(), 0);
  }
}

TEST(Hnsw, GraphBytesReflectDegreeBound) {
  const Bed bed = MakeBed(1000, 8, 1);
  Rng rng(8);
  HnswOptions options;
  options.max_degree = 8;
  const HnswIndex index(CopyMatrix(bed.data), Metric::kL2, options, rng);
  EXPECT_GT(index.GraphBytes(), 0);
  // Base layer allows 2M links per node (plus sparse upper layers).
  EXPECT_LT(index.GraphBytes(),
            static_cast<int64_t>(1000) * (2 * 8 + 8) * 4);
}

TEST(Hnsw, DeterministicForSeed) {
  const Bed bed = MakeBed(800, 8, 4);
  Rng a(9);
  Rng b(9);
  const HnswIndex ia(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, a);
  const HnswIndex ib(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, b);
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    const auto ra = ia.Search(bed.queries.Row(q), 5, 32);
    const auto rb = ib.Search(bed.queries.Row(q), 5, 32);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
    }
  }
}

TEST(Hnsw, SelfQueryFindsSelf) {
  const Bed bed = MakeBed(500, 8, 1);
  Rng rng(10);
  const HnswIndex index(CopyMatrix(bed.data), Metric::kL2, HnswOptions{}, rng);
  for (size_t i = 0; i < 20; ++i) {
    const auto result = index.Search(bed.data.Row(i), 1, 32);
    ASSERT_FALSE(result.empty());
    EXPECT_EQ(result[0].id, static_cast<int64_t>(i));
  }
}

TEST(Hnsw, RejectsDegenerateOptions) {
  Rng rng(11);
  Matrix data = GenUniform(100, 4, rng);
  HnswOptions options;
  options.max_degree = 1;
  EXPECT_THROW(HnswIndex(CopyMatrix(data), Metric::kL2, options, rng),
               rago::ConfigError);
  options = HnswOptions{};
  options.ef_construction = 2;
  EXPECT_THROW(HnswIndex(CopyMatrix(data), Metric::kL2, options, rng),
               rago::ConfigError);
}

TEST(Hnsw, HandlesTinyDatabases) {
  Rng rng(12);
  Matrix data = GenUniform(3, 4, rng);
  const HnswIndex index(CopyMatrix(data), Metric::kL2, HnswOptions{}, rng);
  const auto result = index.Search(data.Row(0), 3, 8);
  EXPECT_EQ(result.size(), 3u);
}

}  // namespace
}  // namespace rago::ann
