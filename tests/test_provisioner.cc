/**
 * @file test_provisioner.cc
 * Tests for SLO-driven capacity planning and for the KV prefix-cache
 * workload extension.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/provisioner.h"
#include "tests/testing/test_support.h"

namespace rago::opt {
namespace {

SearchOptions SmallGrid() {
  SearchOptions options = rago::testing::SmallSearchGrid();
  options.decode_batch_sizes = {16, 128};
  return options;
}

TEST(Provisioner, FindsMinimalBudgetForModestSlo) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  SloSpec slo;
  slo.min_qps = 10.0;
  slo.max_ttft = 0.5;
  const ProvisionResult result = Provision(model, slo, SmallGrid());
  ASSERT_TRUE(result.satisfiable);
  EXPECT_LE(result.chosen.schedule.AllocatedXpus(), result.xpu_budget);
  EXPECT_GE(result.chosen.perf.qps, 10.0);
  EXPECT_LE(result.chosen.perf.ttft, 0.5);
  // A modest target should not need the whole cluster.
  EXPECT_LT(result.xpu_budget, DefaultCluster().TotalXpus());
}

TEST(Provisioner, BudgetGrowsWithThroughputTarget) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  SloSpec low;
  low.min_qps = 5.0;
  SloSpec high;
  high.min_qps = 400.0;
  const ProvisionResult low_result = Provision(model, low, SmallGrid());
  const ProvisionResult high_result = Provision(model, high, SmallGrid());
  ASSERT_TRUE(low_result.satisfiable);
  ASSERT_TRUE(high_result.satisfiable);
  EXPECT_LE(low_result.xpu_budget, high_result.xpu_budget);
  EXPECT_LT(low_result.chosen.schedule.AllocatedXpus(),
            high_result.chosen.schedule.AllocatedXpus());
}

TEST(Provisioner, UnsatisfiableSloReported) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  SloSpec impossible;
  impossible.min_qps = 1e9;  // Far beyond the retrieval tier.
  const ProvisionResult result = Provision(model, impossible, SmallGrid());
  EXPECT_FALSE(result.satisfiable);
  EXPECT_FALSE(result.budgets_tried.empty());
}

TEST(Provisioner, TpotConstraintHonored) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(70, 1),
                                  DefaultCluster());
  SloSpec slo;
  slo.min_qps = 1.0;
  slo.max_tpot = 0.040;
  const ProvisionResult result = Provision(model, slo, SmallGrid());
  if (result.satisfiable) {
    EXPECT_LE(result.chosen.perf.tpot, 0.040);
  }
}

TEST(Provisioner, RequiresAtLeastOneConstraint) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  DefaultCluster());
  EXPECT_THROW(Provision(model, SloSpec{}, SmallGrid()),
               rago::ConfigError);
}

TEST(PrefixCache, HitRateCutsPrefixCost) {
  // RAGCache-style document KV caching (paper §8): prefix compute for
  // the retrieved content shrinks with the hit rate.
  core::RAGSchema schema = core::MakeHyperscaleSchema(70, 1);
  const core::PipelineModel cold(schema, DefaultCluster());
  schema.workload.prefix_cache_hit_rate = 0.9;
  const core::PipelineModel warm(schema, DefaultCluster());
  const core::StagePerf cold_prefix =
      cold.EvalChainStage(core::StageType::kPrefix, 16, 8);
  const core::StagePerf warm_prefix =
      warm.EvalChainStage(core::StageType::kPrefix, 16, 8);
  ASSERT_TRUE(cold_prefix.feasible && warm_prefix.feasible);
  // 90% of the 480 retrieved tokens skipped: ~7x less prefix work.
  EXPECT_GT(cold_prefix.latency / warm_prefix.latency, 3.0);
}

TEST(PrefixCache, ShiftsBreakdownTowardRetrieval) {
  // The paper's related-work discussion: KV caching makes retrieval
  // and decode relatively more important.
  core::RAGSchema schema = core::MakeHyperscaleSchema(70, 1);
  auto retrieval_share = [&](double hit) {
    core::RAGSchema s = schema;
    s.workload.prefix_cache_hit_rate = hit;
    const core::PipelineModel model(s, DefaultCluster());
    for (const core::StageShare& share : model.TimeBreakdown()) {
      if (share.stage == core::StageType::kRetrieval) {
        return share.fraction;
      }
    }
    return 0.0;
  };
  EXPECT_GT(retrieval_share(0.9), retrieval_share(0.0) * 1.2);
}

TEST(PrefixCache, ValidationAcceptsFullHitRateRejectsOutOfRange) {
  // The hit rate lives on the *closed* interval: 1.0 is a legitimate
  // value (a measured rate on a repeat-only trace reaches it), and the
  // pricing clamps the prompt to at least one token there.
  core::RAGSchema schema = core::MakeHyperscaleSchema(8, 1);
  schema.workload.prefix_cache_hit_rate = 1.0;
  EXPECT_NO_THROW(schema.Validate());
  const core::PipelineModel model(schema, DefaultCluster());
  const core::StagePerf full =
      model.EvalChainStage(core::StageType::kPrefix, 8, 4);
  ASSERT_TRUE(full.feasible);
  EXPECT_TRUE(std::isfinite(full.latency));
  EXPECT_GT(full.latency, 0.0);
  schema.workload.prefix_cache_hit_rate = -0.1;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);
  schema.workload.prefix_cache_hit_rate = 1.1;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);
}

TEST(PrefixCache, NoEffectWithoutRetrieval) {
  core::RAGSchema schema = core::MakeLlmOnlySchema(8);
  schema.workload.prefix_cache_hit_rate = 0.5;
  const core::PipelineModel model(schema, DefaultCluster());
  core::RAGSchema plain = core::MakeLlmOnlySchema(8);
  const core::PipelineModel reference(plain, DefaultCluster());
  const core::StagePerf a =
      model.EvalChainStage(core::StageType::kPrefix, 8, 4);
  const core::StagePerf b =
      reference.EvalChainStage(core::StageType::kPrefix, 8, 4);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
}

}  // namespace
}  // namespace rago::opt
