/**
 * @file test_lint.cc
 * Fixture tests for the determinism/concurrency linter (tools/lint/).
 *
 * Every rule gets a minimal firing example, a same-line
 * `rago-lint: allow(<rule>)` suppression check, and its documented
 * non-matches (e.g. `static_assert` for `assert`, `std::thread::id`
 * for `raw-thread`, `snprintf` for `bare-io`). The committed tree
 * itself linting clean is pinned by the `lint_tree` CTest entry, which
 * runs the real CLI over src/, tests/, bench/, examples/, tools/ with
 * the repo policy config. Fixture snippets live inside string
 * literals, which the linter strips — so this file stays clean under
 * its own scan.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "tools/lint/lint.h"

namespace rago::lint {
namespace {

std::vector<std::string> RulesOf(const std::vector<Violation>& violations) {
  std::vector<std::string> rules;
  for (const Violation& v : violations) {
    rules.push_back(v.rule);
  }
  return rules;
}

std::vector<Violation> Lint(const std::string& path, const std::string& src,
                            const LintConfig& config = LintConfig()) {
  return LintSource(path, src, config);
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(LintStrip, RemovesCommentsAndLiteralContents) {
  const StrippedSource out = StripSource(
      "int x = 0; // assert(x)\n"
      "const char* s = \"assert(y)\";\n"
      "/* rand() */ int y = 1;\n");
  EXPECT_EQ(out.code.find("assert"), std::string::npos);
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  // Delimiters and line structure survive.
  EXPECT_NE(out.code.find('"'), std::string::npos);
  EXPECT_EQ(std::count(out.code.begin(), out.code.end(), '\n'), 3);
}

TEST(LintStrip, RawStringContentsAreStripped) {
  const StrippedSource out = StripSource(
      "const char* s = R\"(std::thread t; rand();)\";\nint z = 2;\n");
  EXPECT_EQ(out.code.find("rand"), std::string::npos);
  EXPECT_EQ(out.code.find("thread"), std::string::npos);
  EXPECT_NE(out.code.find("int z = 2;"), std::string::npos);
}

TEST(LintStrip, MultiLineRawStringKeepsLineNumbers) {
  const StrippedSource out =
      StripSource("auto s = R\"(a\nb\nc)\";\nint tail = 0;\n");
  EXPECT_EQ(std::count(out.code.begin(), out.code.end(), '\n'), 4);
}

TEST(LintStrip, DigitSeparatorIsNotACharLiteral) {
  // If 1'000 opened a char literal, the assert( after it would be
  // swallowed as literal contents and the canary token would vanish.
  const StrippedSource out = StripSource("int n = 1'000'000; assert(n);\n");
  EXPECT_NE(out.code.find("assert"), std::string::npos);
}

TEST(LintStrip, EscapedQuoteInsideString) {
  const StrippedSource out =
      StripSource("const char* s = \"a\\\"b\"; rand();\n");
  EXPECT_NE(out.code.find("rand"), std::string::npos);
}

TEST(LintStrip, SuppressionCommentParsing) {
  const StrippedSource out = StripSource(
      "int a;\n"
      "int b; // rago-lint: allow(wallclock, raw-rng)\n"
      "int c; /* rago-lint: allow(assert) */\n");
  ASSERT_EQ(out.suppressions.count(2), 1u);
  EXPECT_EQ(out.suppressions.at(2).count("wallclock"), 1u);
  EXPECT_EQ(out.suppressions.at(2).count("raw-rng"), 1u);
  ASSERT_EQ(out.suppressions.count(3), 1u);
  EXPECT_EQ(out.suppressions.at(3).count("assert"), 1u);
  EXPECT_EQ(out.suppressions.count(1), 0u);
}

TEST(LintStrip, SuppressionInsideStringLiteralIgnored) {
  const StrippedSource out =
      StripSource("const char* s = \"// rago-lint: allow(assert)\";\n");
  EXPECT_TRUE(out.suppressions.empty());
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

TEST(LintConfigTest, ParsesAllowAndExportPath) {
  const LintConfig config = ParseConfig(
      "# policy\n"
      "allow wallclock bench/\n"
      "allow bare-io tests/  # trailing comment\n"
      "\n"
      "export-path src/serving/\n");
  ASSERT_EQ(config.allow.count("wallclock"), 1u);
  EXPECT_EQ(config.allow.at("wallclock").front(), "bench/");
  ASSERT_EQ(config.export_paths.size(), 1u);
  EXPECT_EQ(config.export_paths.front(), "src/serving/");
}

TEST(LintConfigTest, RejectsUnknownRuleAndDirective) {
  EXPECT_THROW(ParseConfig("allow no-such-rule src/\n"), ConfigError);
  EXPECT_THROW(ParseConfig("frobnicate src/\n"), ConfigError);
  EXPECT_THROW(ParseConfig("allow wallclock\n"), ConfigError);
  EXPECT_THROW(ParseConfig("allow wallclock a b\n"), ConfigError);
}

TEST(LintConfigTest, RuleNamesAreKnown) {
  for (const std::string& rule : RuleNames()) {
    EXPECT_TRUE(IsKnownRule(rule));
  }
  EXPECT_FALSE(IsKnownRule("made-up"));
}

// ---------------------------------------------------------------------------
// wallclock
// ---------------------------------------------------------------------------

TEST(LintWallclock, FiresOnClockNow) {
  const auto v = Lint("src/a.cc",
                      "double T() { return Clock::now().time_since_epoch()"
                      ".count(); }\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "wallclock");
  EXPECT_EQ(v[0].line, 1);
}

TEST(LintWallclock, FiresOnSteadyClockAndCTime) {
  EXPECT_EQ(RulesOf(Lint("src/a.cc",
                         "auto t = std::chrono::steady_clock::now();\n")),
            std::vector<std::string>{"wallclock"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "time_t t = time(nullptr);\n")),
            std::vector<std::string>{"wallclock"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc",
                         "timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);"
                         "\n")),
            std::vector<std::string>{"wallclock"});
}

TEST(LintWallclock, IgnoresMemberNamedTimeAndIdentifiersContainingTime) {
  EXPECT_TRUE(Lint("src/a.cc", "double x = stats.time();\n").empty());
  EXPECT_TRUE(Lint("src/a.cc", "double x = runtime(3);\n").empty());
  EXPECT_TRUE(Lint("src/a.cc", "double wall_time = 0.0;\n").empty());
}

TEST(LintWallclock, InlineSuppressionAndConfigAllow) {
  const std::string src =
      "auto t = Clock::now();  // rago-lint: allow(wallclock)\n";
  EXPECT_TRUE(Lint("src/a.cc", src).empty());
  // Wrong rule name in the suppression does not help.
  EXPECT_EQ(Lint("src/a.cc",
                 "auto t = Clock::now();  // rago-lint: allow(assert)\n")
                .size(),
            1u);
  // Config path allowlist.
  const LintConfig config = ParseConfig("allow wallclock bench/\n");
  EXPECT_TRUE(
      Lint("bench/bench_x.cc", "auto t = Clock::now();\n", config).empty());
  EXPECT_EQ(
      Lint("src/a.cc", "auto t = Clock::now();\n", config).size(), 1u);
}

// ---------------------------------------------------------------------------
// raw-rng
// ---------------------------------------------------------------------------

TEST(LintRawRng, FiresOnRandAndEngines) {
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "int r = rand() % 10;\n")),
            std::vector<std::string>{"raw-rng"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "std::mt19937 gen(42);\n")),
            std::vector<std::string>{"raw-rng"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "std::random_device rd;\n")),
            std::vector<std::string>{"raw-rng"});
}

TEST(LintRawRng, IgnoresRngAndSimilarNames) {
  EXPECT_TRUE(Lint("src/a.cc", "Rng rng(seed); rng.NextU64();\n").empty());
  EXPECT_TRUE(Lint("src/a.cc", "int operand = 1; strand();\n").empty());
}

TEST(LintRawRng, InlineSuppression) {
  EXPECT_TRUE(
      Lint("src/a.cc",
           "std::mt19937 gen(42);  // rago-lint: allow(raw-rng)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FiresOnlyInExportPaths) {
  const std::string src =
      "std::unordered_map<uint64_t, int> counts_;\n"
      "void Dump() { for (const auto& [k, v] : counts_) { Emit(k, v); } }\n";
  LintConfig config;
  config.export_paths = {"src/serving/"};
  const auto v = Lint("src/serving/telemetry.cc", src, config);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "unordered-iter");
  EXPECT_EQ(v[0].line, 2);
  // Outside the export scope the same code is fine (merges into keyed
  // structures are order-independent).
  EXPECT_TRUE(Lint("src/rago/optimizer.cc", src, config).empty());
}

TEST(LintUnorderedIter, IgnoresOrderedContainersAndIterators) {
  LintConfig config;
  config.export_paths = {"src/"};
  EXPECT_TRUE(Lint("src/a.cc",
                   "std::map<int, int> m_;\n"
                   "void Dump() { for (const auto& [k, v] : m_) {} }\n",
                   config)
                  .empty());
  EXPECT_TRUE(Lint("src/a.cc",
                   "std::unordered_map<int, int>::iterator it;\n"
                   "std::vector<int> v_;\n"
                   "void Dump() { for (int x : v_) {} }\n",
                   config)
                  .empty());
}

TEST(LintUnorderedIter, FindLookupsAreFine) {
  LintConfig config;
  config.export_paths = {"src/"};
  EXPECT_TRUE(Lint("src/a.cc",
                   "std::unordered_map<uint64_t, int> cache_;\n"
                   "int Get(uint64_t k) { auto it = cache_.find(k);\n"
                   "  return it == cache_.end() ? 0 : it->second; }\n",
                   config)
                  .empty());
}

TEST(LintUnorderedIter, InlineSuppression) {
  LintConfig config;
  config.export_paths = {"src/"};
  EXPECT_TRUE(
      Lint("src/a.cc",
           "std::unordered_set<int> s_;\n"
           "void F() {\n"
           "  for (int x : s_) {  // rago-lint: allow(unordered-iter)\n"
           "  }\n"
           "}\n",
           config)
          .empty());
}

// ---------------------------------------------------------------------------
// raw-thread
// ---------------------------------------------------------------------------

TEST(LintRawThread, FiresOnThreadAsyncDetach) {
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "std::thread t(Work); t.join();\n")),
            std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(
      RulesOf(Lint("src/a.cc", "auto f = std::async(Work);\n")),
      std::vector<std::string>{"raw-thread"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "worker.detach();\n")),
            std::vector<std::string>{"raw-thread"});
}

TEST(LintRawThread, IgnoresObserversAndPoolTypes) {
  EXPECT_TRUE(
      Lint("src/a.cc", "std::thread::id id = std::this_thread::get_id();\n")
          .empty());
  EXPECT_TRUE(Lint("src/a.cc",
                   "unsigned n = std::thread::hardware_concurrency();\n")
                  .empty());
  EXPECT_TRUE(Lint("src/a.cc", "ThreadPool pool(4); pool.Wait();\n").empty());
  EXPECT_TRUE(Lint("src/a.cc", "detach(node);\n").empty());
}

TEST(LintRawThread, ConfigAllowForPoolImplementation) {
  const LintConfig config =
      ParseConfig("allow raw-thread src/common/thread_pool.cc\n");
  EXPECT_TRUE(Lint("src/common/thread_pool.cc",
                   "workers_.emplace_back(std::thread(run));\n", config)
                  .empty());
  EXPECT_EQ(Lint("src/serving/runtime/runtime.cc",
                 "std::thread t(Work);\n", config)
                .size(),
            1u);
}

// ---------------------------------------------------------------------------
// assert
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// raw-throw
// ---------------------------------------------------------------------------

TEST(LintRawThrow, FiresOnStdExceptionTypes) {
  const auto v = Lint(
      "src/a.cc", "void F() { throw std::runtime_error(\"boom\"); }\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "raw-throw");
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "throw std :: logic_error(\"x\");\n")),
            std::vector<std::string>{"raw-throw"});
}

TEST(LintRawThrow, RagoErrorTypesAndRethrowPass) {
  EXPECT_TRUE(
      Lint("src/a.cc", "throw ConfigError(\"bad top_k\");\n").empty());
  EXPECT_TRUE(
      Lint("src/a.cc", "throw rago::InternalError(\"invariant\");\n")
          .empty());
  EXPECT_TRUE(Lint("src/a.cc", "catch (...) { throw; }\n").empty());
  // `stdx` is a different identifier, not the std namespace.
  EXPECT_TRUE(Lint("src/a.cc", "throw stdx::error(\"x\");\n").empty());
}

TEST(LintRawThrow, InlineSuppression) {
  EXPECT_TRUE(
      Lint("src/a.cc",
           "throw std::bad_alloc();  // rago-lint: allow(raw-throw)\n")
          .empty());
}

TEST(LintAssert, FiresOnCAssertOnly) {
  const auto v = Lint("src/a.cc", "void F(int x) { assert(x > 0); }\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "assert");
  EXPECT_TRUE(
      Lint("src/a.cc", "static_assert(sizeof(int) == 4, \"abi\");\n")
          .empty());
  EXPECT_TRUE(Lint("src/a.cc", "RAGO_CHECK(x > 0, \"positive\");\n").empty());
  EXPECT_TRUE(Lint("tests/t.cc", "ASSERT_EQ(a, b);\n").empty());
}

TEST(LintAssert, InlineSuppression) {
  EXPECT_TRUE(
      Lint("src/a.cc", "assert(x);  // rago-lint: allow(assert)\n").empty());
}

// ---------------------------------------------------------------------------
// bare-io
// ---------------------------------------------------------------------------

TEST(LintBareIo, FiresOnCoutAndPrintf) {
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "std::cout << \"hi\";\n")),
            std::vector<std::string>{"bare-io"});
  EXPECT_EQ(RulesOf(Lint("src/a.cc", "printf(\"%d\", x);\n")),
            std::vector<std::string>{"bare-io"});
}

TEST(LintBareIo, IgnoresFormattingAndFileIo) {
  EXPECT_TRUE(
      Lint("src/a.cc", "std::snprintf(buf, sizeof(buf), \"%g\", v);\n")
          .empty());
  EXPECT_TRUE(
      Lint("src/a.cc", "std::fprintf(file, \"%zu\", n);\n").empty());
  EXPECT_TRUE(Lint("src/a.cc", "stream.printf_like();\n").empty());
}

TEST(LintBareIo, ConfigAllowsBinariesAndTests) {
  const LintConfig config =
      ParseConfig("allow bare-io bench/\nallow bare-io tests/\n");
  EXPECT_TRUE(
      Lint("bench/bench_x.cc", "printf(\"ok\");\n", config).empty());
  EXPECT_TRUE(
      Lint("tests/test_x.cc", "std::cout << 1;\n", config).empty());
  EXPECT_EQ(Lint("src/a.cc", "std::cout << 1;\n", config).size(), 1u);
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(LintIncludeGuard, PathDerivedGuardPasses) {
  EXPECT_TRUE(Lint("src/common/rng.h",
                   "#ifndef RAGO_COMMON_RNG_H\n"
                   "#define RAGO_COMMON_RNG_H\n"
                   "#endif\n")
                  .empty());
  // Outside src/ the full path stays in the guard name.
  EXPECT_TRUE(Lint("tools/lint/lint.h",
                   "#ifndef RAGO_TOOLS_LINT_LINT_H\n"
                   "#define RAGO_TOOLS_LINT_LINT_H\n"
                   "#endif\n")
                  .empty());
}

TEST(LintIncludeGuard, MisnamedOrMissingGuardFires) {
  const auto misnamed = Lint("src/common/rng.h",
                             "#ifndef RNG_H\n"
                             "#define RNG_H\n"
                             "#endif\n");
  ASSERT_EQ(misnamed.size(), 1u);
  EXPECT_EQ(misnamed[0].rule, "include-guard");
  EXPECT_NE(misnamed[0].message.find("RAGO_COMMON_RNG_H"),
            std::string::npos);
  EXPECT_EQ(Lint("src/a.h", "int x = 0;\n").size(), 1u);
}

TEST(LintIncludeGuard, PragmaOnceFires) {
  const auto v = Lint("src/a.h", "#pragma once\nint x = 0;\n");
  // One hit for the pragma, one for the missing named guard.
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].rule, "include-guard");
  EXPECT_EQ(v[1].rule, "include-guard");
}

TEST(LintIncludeGuard, OnlyAppliesToHeaders) {
  EXPECT_TRUE(Lint("src/a.cc", "int x = 0;\n").empty());
  EXPECT_TRUE(Lint("bench/bench_x.cc", "int main() { return 0; }\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Cross-cutting behavior
// ---------------------------------------------------------------------------

TEST(LintSourceTest, ViolationsSortedByLineAndIndependentRules) {
  const auto v = Lint("src/a.cc",
                      "void F() {\n"
                      "  printf(\"x\");\n"
                      "  assert(1);\n"
                      "  auto t = Clock::now();\n"
                      "}\n");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].rule, "bare-io");
  EXPECT_EQ(v[0].line, 2);
  EXPECT_EQ(v[1].rule, "assert");
  EXPECT_EQ(v[1].line, 3);
  EXPECT_EQ(v[2].rule, "wallclock");
  EXPECT_EQ(v[2].line, 4);
}

TEST(LintSourceTest, OwnLineSuppressionCoversNextLine) {
  // A comment that starts its own line covers the following line, so
  // justification prose can precede the flagged statement.
  EXPECT_TRUE(Lint("src/a.cc",
                   "void F() {\n"
                   "  // Measurement only. rago-lint: allow(wallclock)\n"
                   "  auto t = Clock::now();\n"
                   "}\n")
                  .empty());
}

TEST(LintSourceTest, SuppressionTwoLinesAwayDoesNotApply) {
  const auto v = Lint("src/a.cc",
                      "// rago-lint: allow(assert)\n"
                      "int x;\n"
                      "void F() { assert(x); }\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 3);
}

TEST(LintSourceTest, TrailingSuppressionDoesNotLeakToNextLine) {
  const auto v = Lint("src/a.cc",
                      "int x = 0;  // rago-lint: allow(assert)\n"
                      "void F() { assert(x); }\n");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2);
}

TEST(LintSourceTest, PrefixMatchingIsComponentWise) {
  // "src/serving" must not match "src/serving_extras".
  const LintConfig config = ParseConfig("allow assert src/serving\n");
  EXPECT_TRUE(
      Lint("src/serving/a.cc", "void F() { assert(1); }\n", config).empty());
  EXPECT_EQ(
      Lint("src/serving_extras/a.cc", "void F() { assert(1); }\n", config)
          .size(),
      1u);
}

TEST(LintSourceTest, CommentedOutCodeDoesNotFire) {
  EXPECT_TRUE(Lint("src/a.cc",
                   "// auto t = Clock::now();\n"
                   "/* std::thread t(Work); */\n")
                  .empty());
}

}  // namespace
}  // namespace rago::lint
