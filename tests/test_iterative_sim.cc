/**
 * @file test_iterative_sim.cc
 * Tests for the discrete-event iterative-retrieval decode simulator
 * (paper §5.3, Figs. 9-10).
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/iterative_sim.h"
#include "tests/testing/test_support.h"

namespace rago::sim {
namespace {

IterativeSimConfig BaseConfig() {
  IterativeSimConfig config;
  config.decode_batch = 32;
  config.iterative_batch = 4;
  config.decode_tokens = 128;
  config.retrievals_per_sequence = 4;
  config.step_latency = 1.0;
  config.round_latency = 0.0;
  config.num_sequences = 256;
  config.seed = 7;
  return config;
}

TEST(IterativeSim, NoMidDecodeRetrievalMeansNoSlowdown) {
  IterativeSimConfig config = BaseConfig();
  config.retrievals_per_sequence = 1;  // Initial retrieval only.
  const IterativeSimResult result = SimulateIterativeDecode(config);
  EXPECT_NEAR(result.normalized_latency, 1.0, 1e-9);
  EXPECT_EQ(result.rounds_executed, 0);
}

TEST(IterativeSim, DeterministicForFixedSeed) {
  const IterativeSimResult a = SimulateIterativeDecode(BaseConfig());
  const IterativeSimResult b = SimulateIterativeDecode(BaseConfig());
  EXPECT_DOUBLE_EQ(a.avg_tpot, b.avg_tpot);
  EXPECT_EQ(a.rounds_executed, b.rounds_executed);
}

TEST(IterativeSim, ZeroLatencyRoundsStillCauseBatchingIdleness) {
  // Paper Fig. 10: with zero-latency retrieval+prefix, waiting for the
  // iterative batch to fill still slows decoding.
  IterativeSimConfig config = BaseConfig();
  config.decode_batch = 64;
  config.iterative_batch = 64;
  const IterativeSimResult result = SimulateIterativeDecode(config);
  EXPECT_GT(result.normalized_latency, 1.5);
}

TEST(IterativeSim, UnitIterativeBatchHasNoWaitingCost) {
  // Rounds of one depart immediately: with zero round latency the
  // decode proceeds as if retrievals were free.
  IterativeSimConfig config = BaseConfig();
  config.iterative_batch = 1;
  const IterativeSimResult result = SimulateIterativeDecode(config);
  EXPECT_NEAR(result.normalized_latency, 1.0, 0.02);
}

TEST(IterativeSim, SlowdownGrowsWithIterativeBatch) {
  // Fig. 10's row-wise trend at fixed decode batch.
  IterativeSimConfig config = BaseConfig();
  config.decode_batch = 64;
  double prev = 0.0;
  for (int iterative : {1, 8, 32, 64}) {
    config.iterative_batch = iterative;
    const double norm =
        SimulateIterativeDecode(config).normalized_latency;
    EXPECT_GE(norm, prev - 0.05) << "iterative batch " << iterative;
    prev = norm;
  }
  EXPECT_GT(prev, 1.5);
}

TEST(IterativeSim, LargerDecodePoolAbsorbsBatching) {
  // Fig. 10's column-wise trend: at fixed iterative batch, more
  // concurrent sequences reduce the normalized latency.
  IterativeSimConfig config = BaseConfig();
  config.iterative_batch = 16;
  config.decode_batch = 16;
  const double small = SimulateIterativeDecode(config).normalized_latency;
  config.decode_batch = 256;
  config.num_sequences = 1024;
  const double large = SimulateIterativeDecode(config).normalized_latency;
  EXPECT_LT(large, small);
}

TEST(IterativeSim, RoundLatencyAddsToTpot) {
  IterativeSimConfig config = BaseConfig();
  config.iterative_batch = 1;
  config.round_latency = 10.0;  // 10 steps worth per round.
  const IterativeSimResult result = SimulateIterativeDecode(config);
  // Three mid-decode rounds of >=10 steps each over 128 tokens adds
  // >= 30/128 to the normalized latency.
  EXPECT_GT(result.normalized_latency, 1.0 + 3 * 10.0 / 128 * 0.9);
}

TEST(IterativeSim, MoreRetrievalsPerSequenceSlowDecoding) {
  IterativeSimConfig config = BaseConfig();
  config.round_latency = 5.0;
  config.iterative_batch = 8;
  double prev = 0.0;
  for (int k : {2, 4, 8}) {
    config.retrievals_per_sequence = k;
    const double norm =
        SimulateIterativeDecode(config).normalized_latency;
    EXPECT_GT(norm, prev) << "retrievals " << k;
    prev = norm;
  }
}

TEST(IterativeSim, RoundsExecutedMatchesTriggerCount) {
  IterativeSimConfig config = BaseConfig();
  config.iterative_batch = 1;  // Every trigger fires its own round.
  const IterativeSimResult result = SimulateIterativeDecode(config);
  const int64_t triggers =
      static_cast<int64_t>(config.num_sequences) *
      (config.retrievals_per_sequence - 1);
  EXPECT_EQ(result.rounds_executed, triggers);
}

TEST(IterativeSim, OversizedIterativeBatchFlushesInsteadOfDeadlock) {
  // Iterative batch far above the outstanding trigger count can never
  // fill; the simulator must flush and terminate.
  IterativeSimConfig config = BaseConfig();
  config.decode_batch = 4;
  config.iterative_batch = 256;
  config.num_sequences = 32;
  const IterativeSimResult result = SimulateIterativeDecode(config);
  EXPECT_GT(result.flushed_rounds, 0);
  EXPECT_GT(result.normalized_latency, 1.0);
}

TEST(IterativeSim, ThroughputConsistentWithMakespan) {
  const IterativeSimResult result = SimulateIterativeDecode(BaseConfig());
  RAGO_EXPECT_REL_NEAR(result.throughput, 256.0 / result.total_time, 1e-9);
}

TEST(IterativeSim, WorstTpotAtLeastAverage) {
  const IterativeSimResult result = SimulateIterativeDecode(BaseConfig());
  EXPECT_GE(result.worst_tpot, result.avg_tpot);
}

TEST(IterativeSim, RejectsInvalidConfigs) {
  IterativeSimConfig config = BaseConfig();
  config.decode_batch = 0;
  EXPECT_THROW(SimulateIterativeDecode(config), rago::ConfigError);
  config = BaseConfig();
  config.retrievals_per_sequence = 0;
  EXPECT_THROW(SimulateIterativeDecode(config), rago::ConfigError);
  config = BaseConfig();
  config.retrievals_per_sequence = config.decode_tokens;
  EXPECT_THROW(SimulateIterativeDecode(config), rago::ConfigError);
}

/// Fig. 10-style grid property: normalized latency is always >= 1 and
/// bounded; ratios near 1 when iterative << decode batch.
class IdlenessGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IdlenessGridTest, NormalizedLatencyBounds) {
  const auto [decode_batch, iterative_batch] = GetParam();
  IterativeSimConfig config = BaseConfig();
  config.decode_batch = decode_batch;
  config.iterative_batch = iterative_batch;
  config.num_sequences = decode_batch * 6;
  const IterativeSimResult result = SimulateIterativeDecode(config);
  EXPECT_GE(result.normalized_latency, 0.999);
  EXPECT_LT(result.normalized_latency, 10.0);
  if (iterative_batch == 1) {
    EXPECT_NEAR(result.normalized_latency, 1.0, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IdlenessGridTest,
    ::testing::Combine(::testing::Values(4, 16, 64, 128),
                       ::testing::Values(1, 4, 16, 64)));

}  // namespace
}  // namespace rago::sim
