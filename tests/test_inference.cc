/**
 * @file test_inference.cc
 * Tests for the roofline inference model and sharding search.
 */
#include <gtest/gtest.h>

#include "common/units.h"
#include "hardware/xpu.h"
#include "models/inference.h"
#include "models/transformer.h"

namespace rago::models {
namespace {

InferenceModel Model8B() { return InferenceModel(Llama8B(), rago::DefaultXpu()); }
InferenceModel Model70B() {
  return InferenceModel(Llama70B(), rago::DefaultXpu());
}

TEST(Inference, PrefixLatencyNearComputeRoofline) {
  // 8B prefix of 512 tokens on one chip: compute-bound, so latency
  // should be close to FLOPs / effective FLOPS.
  const InferenceModel model = Model8B();
  const PhaseCost cost = model.BestPrefix(1, 1, 512);
  ASSERT_TRUE(cost.feasible);
  const double flops = 2.0 * 8.0e9 * 512;
  const double lower = flops / model.xpu().EffectiveFlops();
  EXPECT_GT(cost.latency, lower * 0.8);
  EXPECT_LT(cost.latency, lower * 2.0);
}

TEST(Inference, DecodeStepIsMemoryBoundAtSmallBatch) {
  // Small-batch decode reads all weights once per step: latency is at
  // least weights / effective bandwidth.
  const InferenceModel model = Model70B();
  const PhaseCost cost = model.BestDecode(8, 1, 512, 768);
  ASSERT_TRUE(cost.feasible);
  const double weight_time = model.config().WeightBytes() / 8.0 /
                             model.xpu().EffectiveMemBw();
  EXPECT_GE(cost.latency, weight_time * 0.9);
}

TEST(Inference, MoreChipsNeverHurtBestPrefixLatency) {
  const InferenceModel model = Model70B();
  double prev = 1e30;
  for (int chips = 1; chips <= 64; chips *= 2) {
    const PhaseCost cost = model.BestPrefix(chips, 4, 512);
    if (!cost.feasible) {
      continue;
    }
    EXPECT_LE(cost.latency, prev * 1.001)
        << "latency regressed at " << chips << " chips";
    prev = cost.latency;
  }
}

TEST(Inference, ThroughputScalesWithBatchInPrefix) {
  const InferenceModel model = Model8B();
  const PhaseCost b1 = model.BestPrefix(4, 1, 512);
  const PhaseCost b32 = model.BestPrefix(4, 32, 512);
  ASSERT_TRUE(b1.feasible && b32.feasible);
  // Prefix is compute-bound: batch-32 throughput should be no worse.
  EXPECT_GE(b32.throughput, b1.throughput * 0.99);
}

TEST(Inference, DecodeThroughputImprovesWithBatch) {
  const InferenceModel model = Model8B();
  const PhaseCost b1 = model.BestDecode(4, 1, 512, 768);
  const PhaseCost b64 = model.BestDecode(4, 64, 512, 768);
  ASSERT_TRUE(b1.feasible && b64.feasible);
  // Weight reads amortize across the batch.
  EXPECT_GT(b64.throughput, 10.0 * b1.throughput);
}

TEST(Inference, InfeasibleWhenWeightsExceedHbm) {
  // 405B INT8 = 405 GB does not fit on a single 96 GB chip.
  const InferenceModel model(Llama405B(), rago::DefaultXpu());
  const PhaseCost cost = model.BestPrefix(1, 1, 128);
  EXPECT_FALSE(cost.feasible);
  // With 8 chips (768 GB) it fits.
  EXPECT_TRUE(model.BestPrefix(8, 1, 128).feasible);
}

TEST(Inference, MemoryPerChipShrinksWithChips) {
  const InferenceModel model = Model70B();
  const PhaseCost c2 = model.BestPrefix(2, 1, 512);
  const PhaseCost c8 = model.BestPrefix(8, 1, 512);
  ASSERT_TRUE(c2.feasible && c8.feasible);
  EXPECT_GT(c2.mem_per_chip, c8.mem_per_chip);
}

TEST(Inference, PipelinePlanBoostsThroughputOverPureTensor) {
  // With many chips, some Pareto plan should beat pure tensor
  // parallelism on throughput (pipelining multiplies completions).
  const InferenceModel model = Model8B();
  const auto options = model.PrefixOptions(32, 16, 512);
  double tensor_only_thpt = 0.0;
  double best_thpt = 0.0;
  for (const PhaseCost& cost : options) {
    if (!cost.feasible) {
      continue;
    }
    best_thpt = std::max(best_thpt, cost.throughput);
    if (cost.plan.pipeline == 1) {
      tensor_only_thpt = std::max(tensor_only_thpt, cost.throughput);
    }
  }
  EXPECT_GT(best_thpt, tensor_only_thpt);
}

TEST(Inference, MaxDecodeBatchShrinksWithContext) {
  const InferenceModel model = Model70B();
  const int64_t short_ctx = model.MaxDecodeBatch(8, 512);
  const int64_t long_ctx = model.MaxDecodeBatch(8, 8192);
  EXPECT_GT(short_ctx, long_ctx);
  EXPECT_GT(long_ctx, 0);
}

TEST(Inference, MaxDecodeBatchZeroWhenWeightsDontFit) {
  // 405 GB of INT8 weights exceed 2 x 96 GiB of HBM.
  const InferenceModel model(Llama405B(), rago::DefaultXpu());
  EXPECT_EQ(model.MaxDecodeBatch(2, 1024), 0);
}

TEST(Inference, LongContextKvCacheExhaustsMemory) {
  // Paper §5.2: long-context LLMs need KV for every token. A 1M-token
  // context on a 70B model wants ~330 GB of KV per sequence: two chips
  // cannot hold even one sequence, eight can.
  const InferenceModel model = Model70B();
  EXPECT_EQ(model.MaxDecodeBatch(2, 1'000'000), 0);
  EXPECT_GE(model.MaxDecodeBatch(8, 1'000'000), 1);
}

TEST(Inference, EncodeMatchesPrefixShapeForEncoders) {
  const InferenceModel encoder(Encoder120M(), rago::DefaultXpu());
  const PhaseCost cost = encoder.BestEncode(1, 64, 128);
  ASSERT_TRUE(cost.feasible);
  EXPECT_GT(cost.throughput, 0.0);
  // 64 chunks of 128 tokens at 120M params ~= 2*M*tokens flops.
  const double flops = 2.0 * 110e6 * 64 * 128;
  const double lower = flops / encoder.xpu().EffectiveFlops();
  EXPECT_GT(cost.latency, 0.5 * lower);
}

TEST(Inference, XpuGenerationsImprovePrefixLatency) {
  const InferenceModel a(Llama8B(), rago::MakeXpu(rago::XpuVersion::kA));
  const InferenceModel c(Llama8B(), rago::MakeXpu(rago::XpuVersion::kC));
  const PhaseCost cost_a = a.BestPrefix(4, 8, 512);
  const PhaseCost cost_c = c.BestPrefix(4, 8, 512);
  ASSERT_TRUE(cost_a.feasible && cost_c.feasible);
  EXPECT_LT(cost_c.latency, cost_a.latency);
}

TEST(Inference, PlanChipsPartitionConsistently) {
  const InferenceModel model = Model8B();
  for (const PhaseCost& cost : model.PrefixOptions(16, 4, 256)) {
    EXPECT_EQ(cost.plan.Chips(), 16);
    EXPECT_LE(cost.plan.tensor, model.config().num_heads);
    EXPECT_LE(cost.plan.pipeline, model.config().num_layers);
  }
}

/// Property sweep: latency positive and finite across a grid.
class InferenceGridTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>> {};

TEST_P(InferenceGridTest, CostsAreFiniteAndConsistent) {
  const auto [chips, batch, seq] = GetParam();
  const InferenceModel model = Model8B();
  const PhaseCost prefix = model.BestPrefix(chips, batch, seq);
  if (prefix.feasible) {
    EXPECT_GT(prefix.latency, 0.0);
    EXPECT_GT(prefix.throughput, 0.0);
    // Throughput can't exceed batch / latency by more than the
    // pipeline factor (chips).
    EXPECT_LE(prefix.throughput,
              static_cast<double>(batch) / prefix.latency * chips * 1.01);
  }
  const PhaseCost decode = model.BestDecode(chips, batch, seq, seq + 256);
  if (decode.feasible) {
    EXPECT_GT(decode.latency, 0.0);
    EXPECT_GT(decode.throughput, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InferenceGridTest,
    ::testing::Combine(::testing::Values(1, 4, 16, 64),
                       ::testing::Values<int64_t>(1, 8, 64),
                       ::testing::Values<int64_t>(128, 512, 2048)));

}  // namespace
}  // namespace rago::models
