/**
 * @file test_topk.cc
 * Tests for the bounded top-k accumulator: equivalence with
 * std::partial_sort under the Neighbor ordering, threshold semantics,
 * and empty/duplicate-score edge cases.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/topk.h"
#include "tests/testing/test_support.h"

namespace rago::ann {
namespace {

/// Reference implementation: sort all candidates, keep the first k.
std::vector<Neighbor> PartialSortTopK(std::vector<Neighbor> candidates,
                                      size_t k) {
  const size_t keep = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end());
  candidates.resize(keep);
  return candidates;
}

TEST(TopK, RejectsZeroK) {
  EXPECT_THROW(TopK(0), rago::ConfigError);
}

TEST(TopK, EmptyHeapTakesNothing) {
  TopK topk(5);
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_EQ(topk.Threshold(), std::numeric_limits<float>::infinity());
  EXPECT_TRUE(topk.SortedTake().empty());
}

TEST(TopK, FewerCandidatesThanK) {
  TopK topk(10);
  topk.Push(3.0f, 7);
  topk.Push(1.0f, 9);
  const auto out = topk.SortedTake();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 9);
  EXPECT_EQ(out[1].id, 7);
}

using TopKSeeded = rago::testing::SeededTest;

TEST_F(TopKSeeded, MatchesPartialSortOnRandomStreams) {
  Rng& rng = this->rng();
  for (const size_t k : {1u, 3u, 10u, 64u}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<Neighbor> candidates;
      const size_t n = 1 + rng.NextBounded(500);
      for (size_t i = 0; i < n; ++i) {
        candidates.push_back(
            {static_cast<float>(rng.NextUniform(0.0, 100.0)),
             static_cast<int64_t>(i)});
      }
      TopK topk(k);
      for (const Neighbor& c : candidates) {
        topk.Push(c.dist, c.id);
      }
      const auto heap_result = topk.SortedTake();
      const auto reference = PartialSortTopK(candidates, k);
      ASSERT_EQ(heap_result.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(heap_result[i].id, reference[i].id);
        EXPECT_EQ(heap_result[i].dist, reference[i].dist);
      }
    }
  }
}

TEST(TopK, MatchesPartialSortWithDuplicateScores) {
  // Heavily quantized distances force tie-breaks at the admission
  // boundary; the heap must agree with the Neighbor ordering (lower id
  // wins) regardless of push order.
  Rng rng(99);
  std::vector<Neighbor> candidates;
  for (int64_t i = 0; i < 200; ++i) {
    candidates.push_back(
        {static_cast<float>(rng.NextBounded(5)), i});
  }
  for (const size_t k : {1u, 7u, 50u}) {
    TopK topk(k);
    for (const Neighbor& c : candidates) {
      topk.Push(c.dist, c.id);
    }
    const auto heap_result = topk.SortedTake();
    const auto reference = PartialSortTopK(candidates, k);
    ASSERT_EQ(heap_result.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(heap_result[i].id, reference[i].id) << "k=" << k;
      EXPECT_EQ(heap_result[i].dist, reference[i].dist) << "k=" << k;
    }
  }
}

TEST(TopK, ResultIndependentOfPushOrder) {
  std::vector<Neighbor> candidates = {
      {2.0f, 0}, {2.0f, 1}, {2.0f, 2}, {1.0f, 3}, {3.0f, 4}, {2.0f, 5}};
  std::vector<Neighbor> expected;
  {
    TopK topk(3);
    for (const Neighbor& c : candidates) {
      topk.Push(c.dist, c.id);
    }
    expected = topk.SortedTake();
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Neighbor& a, const Neighbor& b) { return b < a; });
  TopK reversed(3);
  for (const Neighbor& c : candidates) {
    reversed.Push(c.dist, c.id);
  }
  const auto out = reversed.SortedTake();
  ASSERT_EQ(out.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(out[i].id, expected[i].id);
    EXPECT_EQ(out[i].dist, expected[i].dist);
  }
}

TEST(TopK, ThresholdTracksWorstKept) {
  TopK topk(2);
  EXPECT_EQ(topk.Threshold(), std::numeric_limits<float>::infinity());
  topk.Push(4.0f, 1);
  EXPECT_EQ(topk.Threshold(), std::numeric_limits<float>::infinity());
  topk.Push(2.0f, 2);
  EXPECT_EQ(topk.Threshold(), 4.0f);
  topk.Push(1.0f, 3);  // Evicts 4.0.
  EXPECT_EQ(topk.Threshold(), 2.0f);
  topk.Push(9.0f, 4);  // Rejected.
  EXPECT_EQ(topk.Threshold(), 2.0f);
}

TEST(TopK, SortedTakeEmptiesTheHeap) {
  TopK topk(3);
  topk.Push(1.0f, 1);
  topk.Push(2.0f, 2);
  EXPECT_EQ(topk.size(), 2u);
  EXPECT_EQ(topk.SortedTake().size(), 2u);
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_TRUE(topk.SortedTake().empty());
}

}  // namespace
}  // namespace rago::ann
