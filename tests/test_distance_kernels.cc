/**
 * @file test_distance_kernels.cc
 * Tests for the batched distance-kernel layer: scalar/dispatched
 * parity across remainder-lane dims and unaligned bases, batch-vs-tile
 * bit-identity, ADC bit-identity, deterministic tie-breaks, and
 * end-to-end id parity (exact paths) / recall parity (approximate
 * paths) between the scalar and dispatched variants.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/packed_codes.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"
#include "tests/testing/test_support.h"

namespace rago::ann::kernels {
namespace {

/// Dims that exercise the empty vector body (1, 7), exact multiples of
/// the 8-float lane width (8, 64), and remainder lanes (9, 100).
const size_t kDims[] = {1, 7, 8, 9, 64, 100};

/// Restores the force-scalar state on scope exit so tests can toggle
/// the process-wide dispatch without leaking into each other.
class ForceScalarGuard {
 public:
  explicit ForceScalarGuard(bool force) : previous_(ForceScalarActive()) {
    SetForceScalar(force);
  }
  ~ForceScalarGuard() { SetForceScalar(previous_); }

 private:
  bool previous_;
};

std::vector<float> RandomBlock(Rng& rng, size_t count) {
  std::vector<float> out(count);
  for (float& x : out) {
    x = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

TEST(DistanceKernels, DispatchReportsConsistentState) {
  {
    ForceScalarGuard guard(true);
    EXPECT_TRUE(ForceScalarActive());
    EXPECT_STREQ(Active().name, "scalar");
  }
  ForceScalarGuard guard(false);
  // Priority scalar < avx2 < avx512: the best compiled-in, host-
  // supported tier wins. (RAGO_KERNEL_VARIANT could cap this below the
  // probe results, but the ctest environment never sets it.)
  if (Avx512KernelsCompiled() && CpuSupportsAvx512()) {
    EXPECT_STREQ(Active().name, "avx512");
  } else if (Avx2KernelsCompiled() && CpuSupportsAvx2()) {
    EXPECT_STREQ(Active().name, "avx2");
  } else {
    EXPECT_STREQ(Active().name, "scalar");
  }
  // VariantByName mirrors the probes and always knows scalar.
  ASSERT_NE(VariantByName("scalar"), nullptr);
  EXPECT_STREQ(VariantByName("scalar")->name, "scalar");
  EXPECT_EQ(VariantByName("avx2") != nullptr,
            Avx2KernelsCompiled() && CpuSupportsAvx2());
  EXPECT_EQ(VariantByName("avx512") != nullptr,
            Avx512KernelsCompiled() && CpuSupportsAvx512());
  EXPECT_EQ(VariantByName("neon"), nullptr);
}

/// The compiled-in, host-supported kernel tables (scalar always).
std::vector<const KernelTable*> CompiledVariants() {
  std::vector<const KernelTable*> tables;
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    if (const KernelTable* table = VariantByName(name)) {
      tables.push_back(table);
    }
  }
  return tables;
}

TEST(DistanceKernels, ScalarBatchBitIdenticalToLegacyLoops) {
  Rng rng(11);
  for (size_t dim : kDims) {
    const size_t rows = 13;
    const std::vector<float> query = RandomBlock(rng, dim);
    const std::vector<float> data = RandomBlock(rng, rows * dim);
    std::vector<float> l2(rows);
    std::vector<float> dot(rows);
    ScalarKernels().l2sq_batch(query.data(), data.data(), rows, dim,
                               l2.data());
    ScalarKernels().dot_batch(query.data(), data.data(), rows, dim,
                              dot.data());
    for (size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(l2[i], L2Sq(query.data(), data.data() + i * dim, dim))
          << "dim " << dim << " row " << i;
      EXPECT_EQ(dot[i], Dot(query.data(), data.data() + i * dim, dim))
          << "dim " << dim << " row " << i;
    }
  }
}

TEST(DistanceKernels, DispatchedBatchAgreesWithScalarAcrossRemainderDims) {
  Rng rng(12);
  for (size_t dim : kDims) {
    const size_t rows = 13;  // Exercises the 4-row groups + remainder.
    const std::vector<float> query = RandomBlock(rng, dim);
    const std::vector<float> data = RandomBlock(rng, rows * dim);
    std::vector<float> scalar_out(rows);
    std::vector<float> active_out(rows);
    ScalarKernels().l2sq_batch(query.data(), data.data(), rows, dim,
                               scalar_out.data());
    {
      ForceScalarGuard guard(false);
      Active().l2sq_batch(query.data(), data.data(), rows, dim,
                          active_out.data());
    }
    for (size_t i = 0; i < rows; ++i) {
      if (dim < 8) {
        // The SIMD vector body is empty below one lane width, so tiny
        // dims are bit-identical across variants.
        EXPECT_EQ(scalar_out[i], active_out[i]) << "dim " << dim;
      } else {
        // SIMD reassociates the accumulation: near-equality only.
        const float scale = std::max(std::fabs(scalar_out[i]), 1.0f);
        EXPECT_NEAR(scalar_out[i], active_out[i], 1e-5f * scale)
            << "dim " << dim << " row " << i;
      }
    }
  }
}

TEST(DistanceKernels, TileBitIdenticalToBatchInEveryVariant) {
  Rng rng(13);
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    for (size_t dim : kDims) {
      const size_t rows = 9;     // 4-row groups + remainder.
      const size_t queries = 6;  // One 4-query group + remainder.
      const std::vector<float> query_block = RandomBlock(rng, queries * dim);
      const std::vector<float> data = RandomBlock(rng, rows * dim);
      std::vector<float> tiled(queries * rows);
      std::vector<float> batched(rows);
      Active().l2sq_tile(query_block.data(), queries, data.data(), rows, dim,
                         tiled.data());
      for (size_t q = 0; q < queries; ++q) {
        Active().l2sq_batch(query_block.data() + q * dim, data.data(), rows,
                            dim, batched.data());
        for (size_t i = 0; i < rows; ++i) {
          EXPECT_EQ(tiled[q * rows + i], batched[i])
              << (force_scalar ? "scalar" : "dispatched") << " dim " << dim;
        }
      }
      Active().dot_tile(query_block.data(), queries, data.data(), rows, dim,
                        tiled.data());
      for (size_t q = 0; q < queries; ++q) {
        Active().dot_batch(query_block.data() + q * dim, data.data(), rows,
                           dim, batched.data());
        for (size_t i = 0; i < rows; ++i) {
          EXPECT_EQ(tiled[q * rows + i], batched[i])
              << (force_scalar ? "scalar" : "dispatched") << " dim " << dim;
        }
      }
    }
  }
}

TEST(DistanceKernels, UnalignedRowBasesMatchAligned) {
  // Row bases offset by one float are 4-byte aligned only — the
  // kernels must produce the same values as from the aligned copy.
  Rng rng(14);
  for (size_t dim : kDims) {
    const size_t rows = 7;
    const std::vector<float> query = RandomBlock(rng, dim);
    const std::vector<float> data = RandomBlock(rng, rows * dim);
    std::vector<float> shifted(rows * dim + 1);
    std::memcpy(shifted.data() + 1, data.data(),
                rows * dim * sizeof(float));
    std::vector<float> aligned_out(rows);
    std::vector<float> unaligned_out(rows);
    ForceScalarGuard guard(false);
    Active().l2sq_batch(query.data(), data.data(), rows, dim,
                        aligned_out.data());
    Active().l2sq_batch(query.data(), shifted.data() + 1, rows, dim,
                        unaligned_out.data());
    for (size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(aligned_out[i], unaligned_out[i]) << "dim " << dim;
    }
  }
}

TEST(DistanceKernels, AdcBitIdenticalAcrossVariants) {
  Rng rng(15);
  for (size_t m : {1u, 4u, 8u, 16u}) {
    const size_t codes = 21;  // 8-code groups + remainder.
    const std::vector<float> table = RandomBlock(rng, m * kAdcCentroids);
    std::vector<uint8_t> code_block(codes * m);
    for (uint8_t& c : code_block) {
      c = static_cast<uint8_t>(rng.NextBounded(kAdcCentroids));
    }
    std::vector<float> scalar_out(codes);
    std::vector<float> active_out(codes);
    ScalarKernels().adc_batch(table.data(), code_block.data(), codes, m,
                              scalar_out.data());
    {
      ForceScalarGuard guard(false);
      Active().adc_batch(table.data(), code_block.data(), codes, m,
                         active_out.data());
    }
    for (size_t i = 0; i < codes; ++i) {
      // Lane-sequential adds in subspace order: exact across variants.
      EXPECT_EQ(scalar_out[i], active_out[i]) << "m " << m;
    }
  }
}

TEST(DistanceKernels, PackedCodesRoundTripsAndPadsBlocks) {
  Rng rng(45);
  for (size_t m : {1u, 3u, 8u, 16u}) {
    for (size_t codes : {1u, 31u, 32u, 33u, 64u, 97u}) {
      std::vector<uint8_t> strided(codes * m);
      for (uint8_t& c : strided) {
        c = static_cast<uint8_t>(rng.NextBounded(kAdcCentroids));
      }
      const PackedCodes packed(strided.data(), codes, m);
      EXPECT_EQ(packed.num_codes(), codes);
      EXPECT_EQ(packed.m(), m);
      const size_t blocks = (codes + kPackedBlock - 1) / kPackedBlock;
      EXPECT_EQ(packed.PackedBytes(), blocks * kPackedBlock * m);
      EXPECT_EQ(packed.UnpackAll(), strided) << "m " << m << " codes "
                                             << codes;
      std::vector<uint8_t> one(m);
      packed.Unpack(codes - 1, one.data());
      EXPECT_TRUE(std::memcmp(one.data(), strided.data() + (codes - 1) * m,
                              m) == 0);
      // Incremental Append builds the identical packed image.
      PackedCodes appended(m);
      for (size_t i = 0; i < codes; ++i) {
        appended.Append(strided.data() + i * m);
      }
      EXPECT_TRUE(std::memcmp(appended.data(), packed.data(),
                              packed.PackedBytes()) == 0);
    }
  }
}

TEST(DistanceKernels, AdcPackedBitIdenticalToStridedInEveryVariant) {
  // The tentpole contract: packed and strided ADC agree bit-for-bit in
  // every compiled variant, including tail blocks (codes % 32 != 0)
  // and odd subspace counts.
  Rng rng(46);
  for (size_t m : {1u, 3u, 8u, 16u}) {
    for (size_t codes : {1u, 31u, 32u, 33u, 64u, 97u}) {
      const std::vector<float> table = RandomBlock(rng, m * kAdcCentroids);
      std::vector<uint8_t> strided(codes * m);
      for (uint8_t& c : strided) {
        c = static_cast<uint8_t>(rng.NextBounded(kAdcCentroids));
      }
      const PackedCodes packed(strided.data(), codes, m);
      std::vector<float> reference(codes);
      ScalarKernels().adc_batch(table.data(), strided.data(), codes, m,
                                reference.data());
      for (const KernelTable* variant : CompiledVariants()) {
        std::vector<float> strided_out(codes);
        std::vector<float> packed_out(codes);
        variant->adc_batch(table.data(), strided.data(), codes, m,
                           strided_out.data());
        variant->adc_packed(table.data(), packed.data(), codes, m,
                            packed_out.data());
        for (size_t i = 0; i < codes; ++i) {
          EXPECT_EQ(reference[i], strided_out[i])
              << variant->name << " m " << m << " codes " << codes;
          EXPECT_EQ(reference[i], packed_out[i])
              << variant->name << " m " << m << " codes " << codes;
        }
      }
    }
  }
}

TEST(DistanceKernels, AdcKernelsWellDefinedOnDegenerateShapes) {
  // num_codes == 0 writes nothing; m == 0 writes 0.0f per code — in
  // every compiled variant, both layouts.
  const std::vector<float> table(kAdcCentroids, 1.0f);
  const std::vector<uint8_t> codes(4 * kPackedBlock, 7);
  for (const KernelTable* variant : CompiledVariants()) {
    std::vector<float> out(kPackedBlock + 1, -1.0f);
    variant->adc_batch(table.data(), codes.data(), 0, 4, out.data());
    variant->adc_packed(table.data(), codes.data(), 0, 4, out.data());
    for (float x : out) {
      EXPECT_EQ(x, -1.0f) << variant->name;  // Untouched.
    }
    variant->adc_batch(table.data(), codes.data(), out.size(), 0,
                       out.data());
    for (float x : out) {
      EXPECT_EQ(x, 0.0f) << variant->name;
    }
    std::fill(out.begin(), out.end(), -1.0f);
    variant->adc_packed(table.data(), codes.data(), out.size(), 0,
                        out.data());
    for (float x : out) {
      EXPECT_EQ(x, 0.0f) << variant->name;
    }
  }
}

TEST(DistanceKernels, ScanCodesPackedIntoTopKMatchesStridedScan) {
  // Same distances, same scan order, same tie-breaks: the packed TopK
  // scan must reproduce the strided scan exactly — ids and distance
  // bits — under every variant, including multi-tile lists.
  Rng rng(47);
  const size_t m = 8;
  const size_t codes = 1111;  // > 2 scan tiles, partial tail block.
  const std::vector<float> table = RandomBlock(rng, m * kAdcCentroids);
  std::vector<uint8_t> strided(codes * m);
  for (uint8_t& c : strided) {
    c = static_cast<uint8_t>(rng.NextBounded(kAdcCentroids));
  }
  const PackedCodes packed(strided.data(), codes, m);
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    TopK strided_top(17);
    TopK packed_top(17);
    std::vector<float> scratch;
    ScanCodesIntoTopK(table.data(), strided.data(), codes, m,
                      /*ids=*/nullptr, /*base_id=*/5, strided_top, scratch);
    ScanCodesPackedIntoTopK(table.data(), packed.data(), codes, m,
                            /*ids=*/nullptr, /*base_id=*/5, packed_top,
                            scratch);
    const std::vector<Neighbor> a = strided_top.SortedTake();
    const std::vector<Neighbor> b = packed_top.SortedTake();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id)
          << (force_scalar ? "scalar" : "dispatched") << " rank " << i;
      EXPECT_EQ(a[i].dist, b[i].dist);
    }
  }
}

TEST(DistanceKernels, ScanRowsIntoTopKKeepsIdTieBreak) {
  // Duplicate rows produce equal distances in any one variant; the
  // deterministic TopK tie-break must keep the lower id first.
  const size_t dim = 9;
  Rng rng(16);
  const std::vector<float> target = RandomBlock(rng, dim);
  std::vector<float> rows(6 * dim);
  for (size_t i = 0; i < 6; ++i) {
    std::vector<float> noise = RandomBlock(rng, dim);
    for (size_t d = 0; d < dim; ++d) {
      rows[i * dim + d] = target[d] + 10.0f + noise[d];  // Far away.
    }
  }
  // Rows 1 and 4 are identical copies of the target (distance 0).
  std::memcpy(rows.data() + 1 * dim, target.data(), dim * sizeof(float));
  std::memcpy(rows.data() + 4 * dim, target.data(), dim * sizeof(float));
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    TopK topk(2);
    std::vector<float> scratch;
    ScanRowsIntoTopK(Metric::kL2, target.data(), rows.data(), 6, dim,
                     /*ids=*/nullptr, /*base_id=*/100, topk, scratch);
    const std::vector<Neighbor> out = topk.SortedTake();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, 101);  // Equal distances: lower id first.
    EXPECT_EQ(out[1].id, 104);
  }
}

TEST(DistanceKernels, ArgMinFirstIndexWinsTies) {
  const size_t dim = 8;
  Rng rng(17);
  const std::vector<float> query = RandomBlock(rng, dim);
  std::vector<float> rows(5 * dim, 100.0f);
  // Rows 2 and 3 both equal the query exactly.
  std::memcpy(rows.data() + 2 * dim, query.data(), dim * sizeof(float));
  std::memcpy(rows.data() + 3 * dim, query.data(), dim * sizeof(float));
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    std::vector<float> scratch;
    float min_dist = -1.0f;
    EXPECT_EQ(ArgMinL2(query.data(), rows.data(), 5, dim, scratch,
                       &min_dist),
              2u);
    EXPECT_EQ(min_dist, 0.0f);
  }
}

// ---------------------------------------------------------------------------
// End-to-end variant parity on the indexes (ISSUE acceptance criteria).
// ---------------------------------------------------------------------------

TEST(DistanceKernels, FlatExactIdsIdenticalScalarVsDispatched) {
  // dim 25 exercises remainder lanes inside the index scan.
  rago::testing::AnnTestBedOptions bed_options;
  bed_options.rows = 2000;
  bed_options.dim = 25;
  bed_options.num_queries = 16;
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(bed_options);
  const FlatIndex flat(rago::testing::CopyMatrix(bed.data), Metric::kL2);
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    std::vector<Neighbor> scalar_out;
    std::vector<Neighbor> dispatched_out;
    {
      ForceScalarGuard guard(true);
      scalar_out = flat.Search(bed.queries.Row(q), 10);
    }
    {
      ForceScalarGuard guard(false);
      dispatched_out = flat.Search(bed.queries.Row(q), 10);
    }
    ASSERT_EQ(scalar_out.size(), dispatched_out.size());
    for (size_t i = 0; i < scalar_out.size(); ++i) {
      EXPECT_EQ(scalar_out[i].id, dispatched_out[i].id)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(DistanceKernels, IvfFullProbeIdsIdenticalScalarVsDispatched) {
  // Full-probe IVF scans every leaf exactly; the returned ids must not
  // depend on the kernel variant.
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(1000, 24, 8);
  Rng rng(21);
  IvfOptions options;
  options.nlist = 16;
  const IvfIndex ivf(rago::testing::CopyMatrix(bed.data), Metric::kL2,
                     options, rng);
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    std::vector<Neighbor> scalar_out;
    std::vector<Neighbor> dispatched_out;
    {
      ForceScalarGuard guard(true);
      scalar_out = ivf.Search(bed.queries.Row(q), 5, /*nprobe=*/16);
    }
    {
      ForceScalarGuard guard(false);
      dispatched_out = ivf.Search(bed.queries.Row(q), 5, /*nprobe=*/16);
    }
    ASSERT_EQ(scalar_out.size(), dispatched_out.size());
    for (size_t i = 0; i < scalar_out.size(); ++i) {
      EXPECT_EQ(scalar_out[i].id, dispatched_out[i].id)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(DistanceKernels, IvfBatchedCoarseRankingMatchesPerQuerySearch) {
  // SearchBatch ranks coarse centroids for the whole block through the
  // micro-tile kernel; within one variant tile and batch kernels are
  // bit-identical, so batched results must equal per-query Search
  // exactly — ids and distance bits — under every variant.
  rago::testing::AnnTestBedOptions bed_options;
  bed_options.rows = 1500;
  bed_options.dim = 25;  // Remainder lanes in the centroid ranking.
  bed_options.num_queries = 21;  // Partial query tile at the end.
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(bed_options);
  Rng rng(33);
  IvfOptions options;
  options.nlist = 24;
  const IvfIndex ivf(rago::testing::CopyMatrix(bed.data), Metric::kL2,
                     options, rng);
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    const auto batched = ivf.SearchBatch(bed.queries, 7, /*nprobe=*/4);
    ASSERT_EQ(batched.size(), bed.queries.rows());
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      const auto single = ivf.Search(bed.queries.Row(q), 7, /*nprobe=*/4);
      ASSERT_EQ(batched[q].size(), single.size());
      for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(batched[q][i].id, single[i].id)
            << "variant " << (force_scalar ? "scalar" : "dispatched")
            << " query " << q << " rank " << i;
        EXPECT_EQ(batched[q][i].dist, single[i].dist);
      }
    }
  }
}

TEST(DistanceKernels, IvfPqBatchedCoarseRankingMatchesPerQuerySearch) {
  // Same contract for the ADC path, with exact re-ranking in the mix.
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(1200, 24, 19);
  Rng rng(35);
  IvfPqOptions options;
  options.nlist = 24;
  options.pq_subspaces = 8;
  const IvfPqIndex index(rago::testing::CopyMatrix(bed.data), options,
                         rng);
  for (bool force_scalar : {true, false}) {
    ForceScalarGuard guard(force_scalar);
    for (int rerank : {0, 40}) {
      const auto batched =
          index.SearchBatch(bed.queries, 6, /*nprobe=*/5, rerank);
      ASSERT_EQ(batched.size(), bed.queries.rows());
      for (size_t q = 0; q < bed.queries.rows(); ++q) {
        const auto single =
            index.Search(bed.queries.Row(q), 6, /*nprobe=*/5, rerank);
        ASSERT_EQ(batched[q].size(), single.size());
        for (size_t i = 0; i < single.size(); ++i) {
          EXPECT_EQ(batched[q][i].id, single[i].id)
              << "variant " << (force_scalar ? "scalar" : "dispatched")
              << " rerank " << rerank << " query " << q << " rank " << i;
          EXPECT_EQ(batched[q][i].dist, single[i].dist);
        }
      }
    }
  }
}

TEST(DistanceKernels, IvfPqRecallParityScalarVsDispatched) {
  // The ADC path is approximate: pin recall parity, not ids. Each
  // variant builds its own index (training also runs on the kernels).
  const rago::testing::AnnTestBed bed = rago::testing::MakeAnnTestBed();
  auto recall_under = [&](bool force_scalar) {
    ForceScalarGuard guard(force_scalar);
    Rng rng(6);
    IvfPqOptions options;
    options.nlist = 32;
    options.pq_subspaces = 8;
    const IvfPqIndex index(rago::testing::CopyMatrix(bed.data), options,
                           rng);
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      results.push_back(
          index.Search(bed.queries.Row(q), 10, /*nprobe=*/8, /*rerank=*/50));
    }
    return MeanRecallAtK(results, bed.truth, 10);
  };
  const double scalar_recall = recall_under(true);
  const double dispatched_recall = recall_under(false);
  EXPECT_GT(scalar_recall, 0.8);
  EXPECT_GT(dispatched_recall, 0.8);
  EXPECT_NEAR(scalar_recall, dispatched_recall, 0.05);
}

TEST(DistanceKernels, ScannTreeRecallParityScalarVsDispatched) {
  // The tree's leaf scan runs on the packed layout; recall must not
  // depend on the kernel variant.
  const rago::testing::AnnTestBed bed = rago::testing::MakeAnnTestBed();
  auto recall_under = [&](bool force_scalar) {
    ForceScalarGuard guard(force_scalar);
    Rng rng(9);
    ScannTreeOptions options;
    options.levels = 2;
    options.fanout = 8;
    const ScannTree tree(rago::testing::CopyMatrix(bed.data), options, rng);
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      results.push_back(
          tree.Search(bed.queries.Row(q), 10, /*beam=*/8, /*rerank=*/50));
    }
    return MeanRecallAtK(results, bed.truth, 10);
  };
  const double scalar_recall = recall_under(true);
  const double dispatched_recall = recall_under(false);
  EXPECT_GT(scalar_recall, 0.8);
  EXPECT_GT(dispatched_recall, 0.8);
  EXPECT_NEAR(scalar_recall, dispatched_recall, 0.05);
}

TEST(DistanceKernels, HnswRecallParityScalarVsDispatched) {
  const rago::testing::AnnTestBed bed = rago::testing::MakeAnnTestBed();
  auto recall_under = [&](bool force_scalar) {
    ForceScalarGuard guard(force_scalar);
    Rng rng(7);
    const HnswIndex index(rago::testing::CopyMatrix(bed.data), Metric::kL2,
                          HnswOptions{}, rng);
    const auto results = index.SearchBatch(bed.queries, 10, /*ef_search=*/64);
    return MeanRecallAtK(results, bed.truth, 10);
  };
  const double scalar_recall = recall_under(true);
  const double dispatched_recall = recall_under(false);
  EXPECT_GT(scalar_recall, 0.85);
  EXPECT_GT(dispatched_recall, 0.85);
  EXPECT_NEAR(scalar_recall, dispatched_recall, 0.05);
}

}  // namespace
}  // namespace rago::ann::kernels
