/**
 * @file test_pipeline_model.cc
 * Tests for the end-to-end pipeline performance model: per-stage
 * costs, schedule evaluation, breakdown shapes matching the paper's
 * characterization (§5), and burst TTFT behavior.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "tests/testing/test_support.h"

namespace rago::core {
namespace {

Schedule SimpleSchedule(const PipelineModel& model, int group_chips,
                        int decode_chips, int64_t batch) {
  Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {group_chips};
  schedule.chain_batch.assign(model.chain().size(), batch);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = batch;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = batch;
  return schedule;
}

std::map<StageType, double> Fractions(const PipelineModel& model) {
  std::map<StageType, double> out;
  for (const StageShare& share : model.TimeBreakdown()) {
    out[share.stage] = share.fraction;
  }
  return out;
}

TEST(PipelineModel, RetrievalDominatesSmallModelCaseOne) {
  // Paper §5.1: hyperscale retrieval is the bottleneck for small LLMs
  // (>50% of resource-time) but not for 70B-class models.
  const PipelineModel small(MakeHyperscaleSchema(8, 1), DefaultCluster());
  const auto f8 = Fractions(small);
  EXPECT_GT(f8.at(StageType::kRetrieval), 0.5);

  const PipelineModel large(MakeHyperscaleSchema(70, 1), DefaultCluster());
  const auto f70 = Fractions(large);
  EXPECT_LT(f70.at(StageType::kRetrieval), 0.3);
  EXPECT_GT(f70.at(StageType::kPrefix), f70.at(StageType::kRetrieval));
}

TEST(PipelineModel, MultiQueryRetrievalShiftsBottleneck) {
  // Paper Fig. 6d: at 8 queries/retrieval even the 70B pipeline
  // becomes retrieval-heavy.
  const PipelineModel one(MakeHyperscaleSchema(70, 1), DefaultCluster());
  const PipelineModel eight(MakeHyperscaleSchema(70, 8), DefaultCluster());
  EXPECT_GT(Fractions(eight).at(StageType::kRetrieval),
            2.5 * Fractions(one).at(StageType::kRetrieval));
  EXPECT_GT(Fractions(eight).at(StageType::kRetrieval), 0.45);
}

TEST(PipelineModel, EncoderDominatesLongContext) {
  // Paper §5.2: the 120M encoder becomes the bottleneck at >=1M-token
  // contexts while retrieval is negligible (<1%).
  const PipelineModel model(MakeLongContextSchema(70, 1'000'000),
                            DefaultCluster());
  const auto f = Fractions(model);
  EXPECT_GT(f.at(StageType::kDatabaseEncode), 0.5);
  EXPECT_LT(f.at(StageType::kRetrieval), 0.01);
}

TEST(PipelineModel, EncoderShareGrowsWithContext) {
  const PipelineModel short_ctx(MakeLongContextSchema(70, 100'000),
                                DefaultCluster());
  const PipelineModel long_ctx(MakeLongContextSchema(70, 10'000'000),
                               DefaultCluster());
  EXPECT_LT(Fractions(short_ctx).at(StageType::kDatabaseEncode),
            Fractions(long_ctx).at(StageType::kDatabaseEncode));
  EXPECT_GT(Fractions(long_ctx).at(StageType::kDatabaseEncode), 0.85);
}

TEST(PipelineModel, RewriterAndRerankerNegligibleInBreakdown) {
  // Paper Fig. 11: rewriter/reranker contribute negligible time.
  const PipelineModel model(MakeRewriterRerankerSchema(70),
                            DefaultCluster());
  const auto f = Fractions(model);
  EXPECT_LT(f.at(StageType::kRewritePrefix), 0.02);
  EXPECT_LT(f.at(StageType::kRewriteDecode), 0.05);
  EXPECT_LT(f.at(StageType::kRerank), 0.02);
}

TEST(PipelineModel, RewriterInflatesTtftSubstantially) {
  // Paper §5.4: the autoregressive rewriter inflates TTFT by ~2.4x.
  const PipelineModel with(MakeRewriterRerankerSchema(70),
                           DefaultCluster());
  const PipelineModel without(MakeHyperscaleSchema(70, 1),
                              DefaultCluster());
  Schedule sw = SimpleSchedule(with, 16, 16, 1);
  Schedule so = SimpleSchedule(without, 16, 16, 1);
  const EndToEndPerf pw = with.Evaluate(sw);
  const EndToEndPerf po = without.Evaluate(so);
  ASSERT_TRUE(pw.feasible && po.feasible);
  EXPECT_GT(pw.ttft / po.ttft, 1.5);
  EXPECT_LT(pw.ttft / po.ttft, 5.0);
}

TEST(PipelineModel, BreakdownFractionsSumToOne) {
  for (int size : {1, 8, 70}) {
    const PipelineModel model(MakeHyperscaleSchema(size, 1),
                              DefaultCluster());
    double total = 0.0;
    for (const StageShare& share : model.TimeBreakdown()) {
      EXPECT_GE(share.fraction, 0.0);
      total += share.fraction;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(PipelineModel, EvaluateTtftIsSumOfStageAndRetrievalLatency) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  const Schedule schedule = SimpleSchedule(model, 8, 8, 1);
  const EndToEndPerf perf = model.Evaluate(schedule);
  ASSERT_TRUE(perf.feasible);
  const StagePerf prefix = model.EvalChainStage(StageType::kPrefix, 8, 1);
  const StagePerf retrieval =
      model.EvalRetrieval(1, schedule.retrieval_servers);
  EXPECT_NEAR(perf.ttft, prefix.latency + retrieval.latency, 1e-12);
}

TEST(PipelineModel, QpsIsMinOfStageThroughputs) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  const Schedule schedule = SimpleSchedule(model, 8, 8, 64);
  const EndToEndPerf perf = model.Evaluate(schedule);
  ASSERT_TRUE(perf.feasible);
  const StagePerf prefix = model.EvalChainStage(StageType::kPrefix, 8, 64);
  const StagePerf retrieval =
      model.EvalRetrieval(64, schedule.retrieval_servers);
  const StagePerf decode = model.EvalDecode(8, 64);
  const double expected = std::min(
      {prefix.throughput, retrieval.throughput, decode.throughput});
  RAGO_EXPECT_REL_NEAR(perf.qps, expected, 1e-9);
}

TEST(PipelineModel, ChipEquivalentsReserveRetrievalHosts) {
  // Hyperscale retrieval reserves whole database hosts (4 XPUs each);
  // allocating fewer XPUs than ride on those hosts doesn't shrink the
  // footprint, and allocating more grows it. Brute-force per-request
  // databases reserve nothing extra.
  const PipelineModel hyper(MakeHyperscaleSchema(8, 1), DefaultCluster());
  const int host_equiv = hyper.MinRetrievalServers() * 4;
  const Schedule small = SimpleSchedule(hyper, 8, 8, 4);
  EXPECT_EQ(hyper.Evaluate(small).chip_equivalents, host_equiv);
  const Schedule big = SimpleSchedule(hyper, 32, 32, 4);
  EXPECT_EQ(hyper.Evaluate(big).chip_equivalents, 64);

  const PipelineModel lc(MakeLongContextSchema(8, 100'000),
                         DefaultCluster());
  Schedule ls = SimpleSchedule(lc, 8, 8, 4);
  EXPECT_EQ(lc.Evaluate(ls).chip_equivalents, 16);
}

TEST(PipelineModel, InfeasibleWhenOverBudget) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  Schedule schedule = SimpleSchedule(model, 64, 64, 1);  // 128 > 64.
  EXPECT_FALSE(model.Evaluate(schedule).feasible);
}

TEST(PipelineModel, InfeasibleWhenModelDoesNotFit) {
  const PipelineModel model(MakeHyperscaleSchema(405, 1),
                            DefaultCluster());
  // 405 GB of weights cannot fit on one 96 GB chip.
  Schedule schedule = SimpleSchedule(model, 1, 8, 1);
  EXPECT_FALSE(model.Evaluate(schedule).feasible);
}

TEST(PipelineModel, IterativeRetrievalRaisesTpot) {
  // Paper §5.3: mid-decode retrievals stall generation.
  const PipelineModel plain(MakeHyperscaleSchema(70, 1), DefaultCluster());
  const PipelineModel iter(MakeIterativeSchema(70, 4), DefaultCluster());
  Schedule ps = SimpleSchedule(plain, 16, 16, 16);
  Schedule is = SimpleSchedule(iter, 16, 16, 16);
  is.iterative_batch = 4;
  const EndToEndPerf pp = plain.Evaluate(ps);
  const EndToEndPerf pi = iter.Evaluate(is);
  ASSERT_TRUE(pp.feasible && pi.feasible);
  EXPECT_GT(pi.tpot, pp.tpot);
  EXPECT_LE(pi.qps, pp.qps);
}

TEST(PipelineModel, EvalPrefixCachedMatchesChainStageAtSchemaKnob) {
  // EvalChainStage(kPrefix) is defined as EvalPrefixCached at the
  // schema's assumed hit rate — for any knob setting.
  for (double rate : {0.0, 0.3, 1.0}) {
    RAGSchema schema = MakeHyperscaleSchema(8, 1);
    schema.workload.prefix_cache_hit_rate = rate;
    const PipelineModel model(schema, DefaultCluster());
    const StagePerf via_chain =
        model.EvalChainStage(StageType::kPrefix, 8, 4);
    const StagePerf via_cached = model.EvalPrefixCached(8, 4, rate);
    EXPECT_EQ(via_chain.latency, via_cached.latency) << "rate " << rate;
    EXPECT_EQ(via_chain.throughput, via_cached.throughput);
    EXPECT_EQ(via_chain.feasible, via_cached.feasible);
  }
}

TEST(PipelineModel, EvalPrefixCachedMonotoneAndFiniteAtFullHit) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  double previous = std::numeric_limits<double>::infinity();
  for (double rate : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const StagePerf perf = model.EvalPrefixCached(8, 4, rate);
    ASSERT_TRUE(perf.feasible) << "rate " << rate;
    EXPECT_TRUE(std::isfinite(perf.latency));
    EXPECT_GT(perf.latency, 0.0);
    EXPECT_GT(perf.throughput, 0.0);
    // More cached content can only shrink the priced prefix.
    EXPECT_LE(perf.latency, previous);
    previous = perf.latency;
  }
  // The full-hit limit must price strictly less work than cold prefix
  // (question-only prompt vs question + retrieved content).
  EXPECT_LT(model.EvalPrefixCached(8, 4, 1.0).latency,
            model.EvalPrefixCached(8, 4, 0.0).latency);
  // Out-of-range rates are rejected, as are degenerate shapes.
  EXPECT_THROW(model.EvalPrefixCached(8, 4, -0.1), rago::ConfigError);
  EXPECT_THROW(model.EvalPrefixCached(8, 4, 1.1), rago::ConfigError);
  EXPECT_THROW(model.EvalPrefixCached(0, 4, 0.5), rago::ConfigError);
}

TEST(PipelineModel, RewriteDecodeLatencyScalesWithOutputTokens) {
  RAGSchema schema = MakeRewriterRerankerSchema(8);
  const PipelineModel model(schema, DefaultCluster());
  const StagePerf perf =
      model.EvalChainStage(StageType::kRewriteDecode, 4, 4);
  ASSERT_TRUE(perf.feasible);

  schema.workload.rewrite_output_tokens = 64;
  const PipelineModel model2(schema, DefaultCluster());
  const StagePerf perf2 =
      model2.EvalChainStage(StageType::kRewriteDecode, 4, 4);
  // Doubling generated tokens roughly doubles the stage latency.
  EXPECT_NEAR(perf2.latency / perf.latency, 2.0, 0.2);
}

TEST(PipelineModel, EncodeStageLatencyScalesWithContext) {
  const PipelineModel m1(MakeLongContextSchema(8, 1'000'000),
                         DefaultCluster());
  const PipelineModel m10(MakeLongContextSchema(8, 10'000'000),
                          DefaultCluster());
  const StagePerf p1 = m1.EvalChainStage(StageType::kDatabaseEncode, 8, 1);
  const StagePerf p10 =
      m10.EvalChainStage(StageType::kDatabaseEncode, 8, 1);
  ASSERT_TRUE(p1.feasible && p10.feasible);
  EXPECT_NEAR(p10.latency / p1.latency, 10.0, 1.5);
}

TEST(PipelineModel, EvaluateWithLiveProviderMatchesEvaluate) {
  const PipelineModel model(MakeRewriterRerankerSchema(8),
                            DefaultCluster());
  Schedule schedule;
  schedule.chain_group = {0, 0, 1, 1};
  schedule.group_chips = {4, 8};
  schedule.chain_batch = {4, 4, 8, 8};
  schedule.decode_chips = 8;
  schedule.decode_batch = 64;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 8;
  const EndToEndPerf a = model.Evaluate(schedule);
  const EndToEndPerf b = model.EvaluateWith(schedule, model.LiveProvider());
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_DOUBLE_EQ(a.ttft, b.ttft);
  EXPECT_DOUBLE_EQ(a.qps, b.qps);
  EXPECT_DOUBLE_EQ(a.qps_per_chip, b.qps_per_chip);
}

TEST(PipelineModel, CollocationAcrossRetrievalPausesGroup) {
  // Case IV with everything in one group: the group pauses for
  // retrieval, so its throughput must be lower than the same group
  // without the pause accounted (paper §6.1/§7.1).
  const PipelineModel model(MakeRewriterRerankerSchema(8),
                            DefaultCluster());
  Schedule collocated;
  collocated.chain_group = {0, 0, 0, 0};
  collocated.group_chips = {16};
  collocated.chain_batch = {8, 8, 8, 8};
  collocated.decode_chips = 16;
  collocated.decode_batch = 256;
  collocated.retrieval_servers = model.MinRetrievalServers();
  collocated.retrieval_batch = 8;

  Schedule split = collocated;
  split.chain_group = {0, 0, 1, 1};  // Split at the retrieval point.
  split.group_chips = {8, 8};        // Same total chips.

  const EndToEndPerf col = model.Evaluate(collocated);
  const EndToEndPerf dis = model.Evaluate(split);
  ASSERT_TRUE(col.feasible && dis.feasible);
  // The disaggregated plan avoids idling all 16 chips during
  // retrieval; with these small batches the pause is material.
  EXPECT_GT(dis.qps, col.qps * 1.01);
}

TEST(PipelineModel, BurstMicroBatchingReducesAverageTtft) {
  // Paper Fig. 19: processing a burst in micro-batches cuts average
  // TTFT versus one monolithic batch.
  const PipelineModel model(MakeLongContextSchema(70, 1'000'000),
                            DefaultCluster());
  Schedule micro = SimpleSchedule(model, 32, 16, 2);
  Schedule mono = SimpleSchedule(model, 32, 16, 32);
  const double ttft_micro = model.BurstAverageTtft(micro, 32);
  const double ttft_mono = model.BurstAverageTtft(mono, 32);
  EXPECT_LT(ttft_micro, ttft_mono);
}

TEST(PipelineModel, BurstTtftAtLeastPipelineLatency) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  const Schedule schedule = SimpleSchedule(model, 8, 8, 4);
  const EndToEndPerf perf = model.Evaluate(schedule);
  ASSERT_TRUE(perf.feasible);
  EXPECT_GE(model.BurstAverageTtft(schedule, 16), perf.ttft * 0.99);
}

TEST(PipelineModel, ScheduleValidationErrors) {
  const PipelineModel model(MakeRewriterRerankerSchema(8),
                            DefaultCluster());
  Schedule schedule;
  schedule.chain_group = {0, 0};  // Wrong size (chain is 4).
  schedule.group_chips = {4};
  schedule.chain_batch = {1, 1};
  EXPECT_THROW(model.Evaluate(schedule), rago::ConfigError);

  // Non-contiguous groups.
  schedule.chain_group = {0, 1, 0, 1};
  schedule.chain_batch = {1, 1, 1, 1};
  schedule.group_chips = {4, 4};
  EXPECT_THROW(model.Evaluate(schedule), rago::ConfigError);
}

TEST(PipelineModel, DecodeContextAccountsPrefixAndGeneration) {
  const PipelineModel model(MakeHyperscaleSchema(8, 1), DefaultCluster());
  EXPECT_EQ(model.AvgDecodeContext(), 512 + 128);
  EXPECT_EQ(model.MaxDecodeContext(), 512 + 256);
}

}  // namespace
}  // namespace rago::core
