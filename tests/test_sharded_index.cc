/**
 * @file test_sharded_index.cc
 * Tests for the sharded scatter-gather retrieval service: partition
 * coverage, shard/merge exactness against the single-index oracle
 * (including tie-breaks), thread-count invariance, instrumentation,
 * capacity validation, and the calibration adapter.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/serving/calibration.h"
#include "retrieval/serving/partitioner.h"
#include "retrieval/serving/sharded_index.h"
#include "tests/testing/test_support.h"

namespace rago::serving {
namespace {

using rago::testing::AnnTestBed;
using rago::testing::CopyMatrix;
using rago::testing::MakeAnnTestBed;

const std::vector<PartitionerKind> kAllPartitioners = {
    PartitionerKind::kRoundRobin,
    PartitionerKind::kHash,
    PartitionerKind::kKMeansBalanced,
};

TEST(Partitioner, EveryRowInExactlyOneShard) {
  const AnnTestBed bed = MakeAnnTestBed(500, 8, 1);
  for (PartitionerKind kind : kAllPartitioners) {
    const Partition partition = PartitionRows(bed.data, 7, kind, 99);
    ASSERT_EQ(partition.num_shards(), 7) << PartitionerName(kind);
    std::set<int64_t> seen;
    for (const auto& rows : partition.shard_rows) {
      int64_t prev = -1;
      for (int64_t id : rows) {
        EXPECT_GT(id, prev) << "ids must ascend within a shard";
        prev = id;
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
      }
    }
    EXPECT_EQ(seen.size(), bed.data.rows()) << PartitionerName(kind);
  }
}

TEST(Partitioner, CapacityBoundedPoliciesBalance) {
  const AnnTestBed bed = MakeAnnTestBed(1000, 8, 1);
  const size_t capacity = (1000 + 7) / 8;  // ceil
  for (PartitionerKind kind :
       {PartitionerKind::kRoundRobin, PartitionerKind::kKMeansBalanced}) {
    const Partition partition = PartitionRows(bed.data, 8, kind, 5);
    for (const auto& rows : partition.shard_rows) {
      EXPECT_LE(rows.size(), capacity) << PartitionerName(kind);
    }
  }
}

TEST(Partitioner, DeterministicInSeed) {
  const AnnTestBed bed = MakeAnnTestBed(400, 8, 1);
  for (PartitionerKind kind : kAllPartitioners) {
    const Partition a = PartitionRows(bed.data, 5, kind, 123);
    const Partition b = PartitionRows(bed.data, 5, kind, 123);
    EXPECT_EQ(a.shard_rows, b.shard_rows) << PartitionerName(kind);
  }
}

TEST(Partitioner, RejectsDegenerateConfigs) {
  const AnnTestBed bed = MakeAnnTestBed(16, 8, 1);
  EXPECT_THROW(PartitionRows(bed.data, 0, PartitionerKind::kRoundRobin, 1),
               ConfigError);
  EXPECT_THROW(PartitionRows(bed.data, 17, PartitionerKind::kRoundRobin, 1),
               ConfigError);
}

/// Merged sharded results must be bit-identical to the single index.
void ExpectExactMatch(const std::vector<std::vector<ann::Neighbor>>& actual,
                      const std::vector<std::vector<ann::Neighbor>>& expected,
                      const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t q = 0; q < actual.size(); ++q) {
    ASSERT_EQ(actual[q].size(), expected[q].size())
        << label << " query " << q;
    for (size_t i = 0; i < actual[q].size(); ++i) {
      EXPECT_EQ(actual[q][i].id, expected[q][i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(actual[q][i].dist, expected[q][i].dist)
          << label << " query " << q << " rank " << i;
    }
  }
}

TEST(ShardedIndex, FlatShardingIsExactForAllPartitionersAndThreadCounts) {
  // The acceptance property: sharded flat search returns top-k
  // identical (incl. tie-breaks) to the single-index search, for k
  // spanning shard boundaries, for threads {1, 4}.
  const AnnTestBed bed = MakeAnnTestBed(1500, 12, 16);
  const ann::FlatIndex single(CopyMatrix(bed.data), ann::Metric::kL2);
  for (PartitionerKind kind : kAllPartitioners) {
    ShardedIndexOptions options;
    options.num_shards = 5;
    options.partitioner = kind;
    options.backend = ShardBackend::kFlat;
    const ShardedIndex sharded(CopyMatrix(bed.data), options);
    for (size_t k : {size_t{1}, size_t{7}, size_t{23}}) {
      const auto expected = single.SearchBatch(bed.queries, k);
      for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        const auto actual = sharded.SearchBatch(bed.queries, k, &pool);
        ExpectExactMatch(actual, expected, PartitionerName(kind));
      }
      // And inline, without a pool.
      ExpectExactMatch(sharded.SearchBatch(bed.queries, k), expected,
                       PartitionerName(kind));
    }
  }
}

TEST(ShardedIndex, ExactWithDuplicateVectorTies) {
  // A database of identical vectors: every distance ties, so results
  // are decided purely by the id tie-break. Sharding must preserve it.
  ann::Matrix data(64, 4);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t d = 0; d < 4; ++d) {
      data.Row(i)[d] = 1.0f;
    }
  }
  const ann::FlatIndex single(CopyMatrix(data), ann::Metric::kL2);
  ShardedIndexOptions options;
  options.num_shards = 4;
  options.partitioner = PartitionerKind::kHash;
  const ShardedIndex sharded(CopyMatrix(data), options);

  const float query[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  const auto expected = single.Search(query, 10);
  const auto actual = sharded.Search(query, 10);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    // Ties resolve to the smallest ids: 0..9.
    EXPECT_EQ(actual[i].id, static_cast<int64_t>(i));
  }
}

TEST(ShardedIndex, KLargerThanSomeShardsStillExact) {
  // k larger than every shard's row count: the merge must pull from
  // all shards without padding or truncation artifacts.
  const AnnTestBed bed = MakeAnnTestBed(40, 6, 4);
  const ann::FlatIndex single(CopyMatrix(bed.data), ann::Metric::kL2);
  ShardedIndexOptions options;
  options.num_shards = 8;  // 5 rows per shard.
  const ShardedIndex sharded(CopyMatrix(bed.data), options);
  const auto expected = single.SearchBatch(bed.queries, 12);
  const auto actual = sharded.SearchBatch(bed.queries, 12);
  ExpectExactMatch(actual, expected, "k>shard");
}

TEST(ShardedIndex, QueryBlockSplitStaysExact) {
  // Sub-shard (shard x query-block) tasks must not change results:
  // block == 1 (one task per query), a block that leaves a ragged
  // tail, and a block far larger than the batch all match the oracle.
  const AnnTestBed bed = MakeAnnTestBed(900, 10, 17);
  const ann::FlatIndex single(CopyMatrix(bed.data), ann::Metric::kL2);
  const auto expected = single.SearchBatch(bed.queries, 11);
  for (int query_block : {1, 3, 5, 1000}) {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.query_block = query_block;
    const ShardedIndex sharded(CopyMatrix(bed.data), options);
    for (int threads : {1, 4}) {
      ThreadPool pool(threads);
      ExpectExactMatch(sharded.SearchBatch(bed.queries, 11, &pool),
                       expected, "query-block");
    }
  }
}

TEST(ShardedIndex, OwnedPoolMatchesExplicitPoolAndInline) {
  // options.num_threads makes SearchBatch parallel without a caller
  // pool; results must equal both the inline run and an explicit pool.
  const AnnTestBed bed = MakeAnnTestBed(800, 8, 12);
  ShardedIndexOptions options;
  options.num_shards = 3;
  options.query_block = 4;

  options.num_threads = 1;
  const ShardedIndex inline_index(CopyMatrix(bed.data), options);
  const auto expected = inline_index.SearchBatch(bed.queries, 7);

  options.num_threads = 4;
  const ShardedIndex pooled(CopyMatrix(bed.data), options);
  ExpectExactMatch(pooled.SearchBatch(bed.queries, 7), expected,
                   "owned pool");
  ThreadPool explicit_pool(2);
  ExpectExactMatch(pooled.SearchBatch(bed.queries, 7, &explicit_pool),
                   expected, "explicit pool overrides owned");
}

TEST(ShardedIndex, RejectsDegenerateThreadingOptions) {
  const AnnTestBed bed = MakeAnnTestBed(50, 4, 1);
  ShardedIndexOptions options;
  options.query_block = 0;
  EXPECT_THROW(ShardedIndex(CopyMatrix(bed.data), options), ConfigError);
  options.query_block = 32;
  options.num_threads = -1;
  EXPECT_THROW(ShardedIndex(CopyMatrix(bed.data), options), ConfigError);
}

TEST(ShardedIndex, DeterministicAcrossThreadCountsForApproxBackends) {
  // Fixed seed => identical merged results regardless of thread count,
  // for a backend whose build is itself randomized.
  const AnnTestBed bed = MakeAnnTestBed(2000, 16, 8);
  ShardedIndexOptions options;
  options.num_shards = 4;
  options.partitioner = PartitionerKind::kKMeansBalanced;
  options.backend = ShardBackend::kIvfPq;
  options.ivfpq.nlist = 16;
  options.nprobe = 4;
  options.rerank = 20;
  options.seed = 77;

  const ShardedIndex a(CopyMatrix(bed.data), options);
  const ShardedIndex b(CopyMatrix(bed.data), options);
  ThreadPool pool(4);
  const auto serial = a.SearchBatch(bed.queries, 10);
  const auto threaded = b.SearchBatch(bed.queries, 10, &pool);
  ExpectExactMatch(threaded, serial, "ivfpq");
}

TEST(ShardedIndex, HnswBlocksSearchConcurrentlyAndStayDeterministic) {
  // HNSW query-blocks of one shard now run in parallel (the counted
  // eval overload removed the whole-search lock); results and the
  // integer eval-based scan-byte accounting must stay thread-count
  // invariant.
  const AnnTestBed bed = MakeAnnTestBed(1500, 12, 24);
  ShardedIndexOptions options;
  options.num_shards = 2;  // Few shards, many blocks per shard.
  options.query_block = 4;
  options.backend = ShardBackend::kHnsw;
  options.ef_search = 48;
  options.seed = 33;

  const ShardedIndex a(CopyMatrix(bed.data), options);
  const ShardedIndex b(CopyMatrix(bed.data), options);
  ShardSearchStats serial_stats;
  ShardSearchStats threaded_stats;
  const auto serial =
      a.SearchBatch(bed.queries, 8, nullptr, &serial_stats);
  ThreadPool pool(4);
  const auto threaded =
      b.SearchBatch(bed.queries, 8, &pool, &threaded_stats);
  ExpectExactMatch(threaded, serial, "hnsw blocks");
  ASSERT_EQ(serial_stats.shards.size(), threaded_stats.shards.size());
  for (size_t s = 0; s < serial_stats.shards.size(); ++s) {
    EXPECT_EQ(serial_stats.shards[s].scan_bytes,
              threaded_stats.shards[s].scan_bytes)
        << "eval accounting drifted on shard " << s;
  }
  EXPECT_GT(a.BytesPerQueryPerShardEstimate(), 0.0);
  EXPECT_EQ(a.BytesPerQueryPerShardEstimate(),
            b.BytesPerQueryPerShardEstimate());
}

TEST(ShardedIndex, ApproxBackendsReachUsableRecall) {
  const AnnTestBed bed = MakeAnnTestBed(2000, 16, 16);
  auto recall_of = [&](ShardBackend backend) {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.partitioner = PartitionerKind::kKMeansBalanced;
    options.backend = backend;
    options.ivf.nlist = 16;
    options.ivfpq.nlist = 16;
    options.nprobe = 8;
    options.rerank = 30;
    options.ef_search = 64;
    options.tree.levels = 1;
    options.tree.fanout = 8;
    options.beam = 6;
    const ShardedIndex sharded(CopyMatrix(bed.data), options);
    const auto results = sharded.SearchBatch(bed.queries, 10);
    double hits = 0.0;
    for (size_t q = 0; q < results.size(); ++q) {
      std::set<int64_t> truth_ids;
      for (const auto& n : bed.truth[q]) {
        truth_ids.insert(n.id);
      }
      for (const auto& n : results[q]) {
        hits += truth_ids.count(n.id) > 0 ? 1.0 : 0.0;
      }
    }
    return hits / (10.0 * static_cast<double>(results.size()));
  };
  EXPECT_GT(recall_of(ShardBackend::kIvf), 0.9);
  EXPECT_GT(recall_of(ShardBackend::kIvfPq), 0.7);
  EXPECT_GT(recall_of(ShardBackend::kHnsw), 0.9);
  EXPECT_GT(recall_of(ShardBackend::kScannTree), 0.7);
}

TEST(ShardedIndex, StatsCoverShardsAndMerge) {
  const AnnTestBed bed = MakeAnnTestBed(1000, 8, 8);
  ShardedIndexOptions options;
  options.num_shards = 4;
  const ShardedIndex sharded(CopyMatrix(bed.data), options);
  ShardSearchStats stats;
  ThreadPool pool(2);
  sharded.SearchBatch(bed.queries, 5, &pool, &stats);

  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.num_queries, 8);
  int64_t rows = 0;
  for (const ShardStats& shard : stats.shards) {
    EXPECT_GT(shard.scan_bytes, 0.0);
    EXPECT_GE(shard.wall_seconds, 0.0);
    rows += shard.rows;
  }
  EXPECT_EQ(rows, 1000);
  EXPECT_GE(stats.merge_seconds, 0.0);
  // Flat shards scan everything: total bytes = n * dim * 4 per query.
  EXPECT_DOUBLE_EQ(stats.TotalScanBytes(),
                   1000.0 * 8 * sizeof(float) * 8 /*queries*/);
  EXPECT_GT(stats.BytesPerQueryPerShard(), 0.0);
  EXPECT_GE(stats.MaxShardSeconds(), 0.0);
}

TEST(ShardedIndex, UnderProvisionedShardCountFailsLoudly) {
  // Satellite: the modeled hyperscale database needs
  // MinServersForCapacity hosts; fewer shards must throw, not
  // silently misprice.
  const AnnTestBed bed = MakeAnnTestBed(200, 8, 1);
  retrieval::DatabaseSpec db;  // Paper default: 64B vectors, 96 B each.
  const CpuServerSpec server;
  const int required =
      retrieval::ScannModel::MinServersForCapacity(db, server);
  ASSERT_GT(required, 1);

  ShardedIndexOptions options;
  options.num_shards = 4;
  options.modeled_db = db;
  options.modeled_server = server;
  try {
    const ShardedIndex sharded(CopyMatrix(bed.data), options);
    FAIL() << "expected ConfigError for under-provisioned shard count";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find(std::to_string(required)),
              std::string::npos)
        << "error should name the required server count: " << error.what();
  }

  // A right-sized modeled database passes.
  retrieval::DatabaseSpec small = db;
  small.num_vectors = 1'000'000;
  options.modeled_db = small;
  const ShardedIndex ok(CopyMatrix(bed.data), options);
  EXPECT_EQ(ok.num_shards(), 4);
}

TEST(Calibration, ProfileReflectsMeasuredStats) {
  const AnnTestBed bed = MakeAnnTestBed(1200, 8, 16);
  ShardedIndexOptions options;
  options.num_shards = 3;
  const ShardedIndex sharded(CopyMatrix(bed.data), options);
  ShardSearchStats stats;
  sharded.SearchBatch(bed.queries, 10, nullptr, &stats);

  const retrieval::MeasuredScanProfile profile = ProfileFromStats(stats);
  EXPECT_GT(profile.scan_bytes_per_core, 0.0);
  EXPECT_GE(profile.merge_seconds_per_query, 0.0);
  RAGO_EXPECT_REL_NEAR(profile.bytes_per_query_per_server,
                       stats.BytesPerQueryPerShard(), 1e-9);

  const retrieval::MeasuredRetrievalModel model(profile, CpuServerSpec{},
                                                sharded.num_shards());
  EXPECT_GT(model.Search(1).latency, 0.0);
  // Full-fleet bytes = per-shard bytes * shards.
  RAGO_EXPECT_REL_NEAR(model.BytesScannedPerQuery(),
                       profile.bytes_per_query_per_server * 3, 1e-9);
}

TEST(Calibration, EndToEndHelperProducesAModel)  {
  const AnnTestBed bed = MakeAnnTestBed(800, 8, 8);
  ShardedIndexOptions options;
  options.num_shards = 2;
  const ShardedIndex sharded(CopyMatrix(bed.data), options);
  ThreadPool pool(2);
  const retrieval::MeasuredRetrievalModel model = CalibrateRetrievalModel(
      sharded, bed.queries, 10, CpuServerSpec{}, &pool);
  EXPECT_EQ(model.num_servers(), 2);
  EXPECT_GT(model.Search(4).latency, 0.0);
  EXPECT_GT(model.Search(4).throughput, 0.0);
}

}  // namespace
}  // namespace rago::serving
