/**
 * @file test_cache.cc
 * Tests for the multi-level serving cache tier (serving/cache) and its
 * runtime integration: LRU eviction order and counters, measured
 * document-cache hit fractions, content-based query fingerprints,
 * cache-off bit-exactness, top-k parity between cached and cacheless
 * serving, thread-count digest invariance with the cache-hit fast path
 * live, boundary hit rates on repeat-only traces, and the TTFT
 * collapse cached requests must show.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/pipeline_model.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/cache/rago_cache.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"
#include "tests/testing/test_support.h"

namespace rago::cache {
namespace {

using runtime::ArrivalTrace;
using runtime::PoissonTrace;
using runtime::QueryStream;
using runtime::RepeatNeighborOptions;
using runtime::RepeatNeighborQueryStream;
using runtime::RequestOutcome;
using runtime::RuntimeOptions;
using runtime::RuntimeResult;
using runtime::ServingRuntime;
using runtime::UniformTrace;
using runtime::ZipfianQueryStream;

/// Cached value whose single neighbor id doubles as a marker.
CachedRetrieval Marker(int64_t id) {
  CachedRetrieval value;
  value.neighbors = {{ann::Neighbor{0.0f, id}}};
  return value;
}

int64_t MarkerId(const CachedRetrieval* value) {
  return value == nullptr ? -1 : value->neighbors[0][0].id;
}

// ---------------------------------------------------------------------------
// CacheOptions
// ---------------------------------------------------------------------------

TEST(CacheOptionsTest, ValidatesKnobs) {
  CacheOptions options;
  EXPECT_NO_THROW(options.Validate());
  options.retrieval_capacity = -1;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = CacheOptions{};
  options.doc_capacity = -1;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = CacheOptions{};
  options.lookup_seconds = -1e-9;
  EXPECT_THROW(options.Validate(), ConfigError);
  // The runtime folds cache validation into its own options.
  RuntimeOptions runtime_options;
  runtime_options.cache.retrieval_capacity = -4;
  EXPECT_THROW(runtime_options.Validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// LruRetrievalCache
// ---------------------------------------------------------------------------

TEST(LruRetrievalCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  LruRetrievalCache cache(2);
  ASSERT_TRUE(cache.enabled());
  cache.Insert(1, Marker(10));
  cache.Insert(2, Marker(20));
  // Promote 1 to MRU, so the next insert must evict 2, not 1.
  EXPECT_EQ(MarkerId(cache.Lookup(1)), 10);
  cache.Insert(3, Marker(30));
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_EQ(MarkerId(cache.Lookup(1)), 10);
  EXPECT_EQ(MarkerId(cache.Lookup(3)), 30);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.counters().insertions, 3);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_EQ(cache.counters().hits, 3);
  EXPECT_EQ(cache.counters().misses, 1);
  EXPECT_DOUBLE_EQ(cache.counters().HitRate(), 0.75);
}

TEST(LruRetrievalCacheTest, ReinsertSameFingerprintReplacesWithoutEvict) {
  LruRetrievalCache cache(2);
  cache.Insert(1, Marker(10));
  cache.Insert(2, Marker(20));
  // Equal-fingerprint re-insert: replaces the value, promotes to MRU,
  // counts an insertion but never an eviction.
  cache.Insert(1, Marker(11));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.counters().insertions, 3);
  EXPECT_EQ(cache.counters().evictions, 0);
  EXPECT_EQ(MarkerId(cache.Lookup(1)), 11);
  // The re-insert promoted 1, so capacity pressure now evicts 2.
  cache.Insert(3, Marker(30));
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_EQ(MarkerId(cache.Lookup(1)), 11);
}

TEST(LruRetrievalCacheTest, ZeroCapacityIsUncountedNoOp) {
  LruRetrievalCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, Marker(10));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.counters().hits, 0);
  EXPECT_EQ(cache.counters().misses, 0);
  EXPECT_EQ(cache.counters().evictions, 0);
  EXPECT_EQ(cache.counters().insertions, 0);
  EXPECT_DOUBLE_EQ(cache.counters().HitRate(), 0.0);
}

// ---------------------------------------------------------------------------
// LruDocCache
// ---------------------------------------------------------------------------

TEST(LruDocCacheTest, MeasuresHitFractionOverDedupedIds) {
  LruDocCache cache(8);
  // First sight of {1, 2, 3} (1 repeated in-request): all cold.
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({1, 2, 1, 3}), 0.0);
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.counters().misses, 3);
  // Two of the three unique ids are now resident.
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({1, 2, 4}), 2.0 / 3.0);
  // Empty id lists measure zero without counting anything.
  const int64_t hits = cache.counters().hits;
  const int64_t misses = cache.counters().misses;
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({}), 0.0);
  EXPECT_EQ(cache.counters().hits, hits);
  EXPECT_EQ(cache.counters().misses, misses);
}

TEST(LruDocCacheTest, EvictsLruDocsUnderCapacityPressure) {
  LruDocCache cache(2);
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({1, 2}), 0.0);
  // 1 is the LRU doc; admitting 3 evicts it.
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({3}), 0.0);
  EXPECT_EQ(cache.counters().evictions, 1);
  // Re-admitting 1 misses (evicted) and pushes out 2.
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({1}), 0.0);
  // 3 survived throughout.
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({3}), 1.0);
  EXPECT_EQ(cache.size(), 2);
}

TEST(LruDocCacheTest, ZeroCapacityIsUncountedNoOp) {
  LruDocCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_DOUBLE_EQ(cache.MeasureAndAdmit({1, 2, 3}), 0.0);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.counters().misses, 0);
  EXPECT_EQ(cache.counters().insertions, 0);
}

// ---------------------------------------------------------------------------
// Query fingerprints
// ---------------------------------------------------------------------------

TEST(FingerprintTest, ContentDeterminedAndWrapAware) {
  ann::Matrix pool(4, 3);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t d = 0; d < 3; ++d) {
      pool.Row(r)[d] = static_cast<float>(r * 10 + d);
    }
  }
  // Deterministic, and distinct content fingerprints distinctly.
  EXPECT_EQ(FingerprintQueries(pool, 1, 2), FingerprintQueries(pool, 1, 2));
  EXPECT_NE(FingerprintQueries(pool, 0, 2), FingerprintQueries(pool, 1, 2));
  // Rows with equal *content* fingerprint equally regardless of index.
  for (size_t d = 0; d < 3; ++d) {
    pool.Row(2)[d] = pool.Row(0)[d];
  }
  EXPECT_EQ(FingerprintQueries(pool, 0, 1), FingerprintQueries(pool, 2, 1));
  // Wrapping matches the runtime's drawing convention: starting at the
  // last row with two queries covers rows {3, 0}, identical to a pool
  // whose first two rows hold that content.
  ann::Matrix wrapped(2, 3);
  wrapped.CopyRowFrom(pool, 3, 0);
  wrapped.CopyRowFrom(pool, 0, 1);
  EXPECT_EQ(FingerprintQueries(pool, 3, 2),
            FingerprintQueries(wrapped, 0, 2));
  EXPECT_THROW(FingerprintQueries(pool, 0, 0), ConfigError);
}

// ---------------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------------

core::Schedule SimpleSchedule(const core::PipelineModel& model,
                              int group_chips, int decode_chips,
                              int64_t batch, int64_t decode_batch) {
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {group_chips};
  schedule.chain_batch.assign(model.chain().size(), batch);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = decode_batch;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = batch;
  return schedule;
}

/// Live tier with a pool large enough for meaningful Zipf streams.
struct LiveTier {
  serving::ShardedIndex index;
  ann::Matrix queries;
};

LiveTier MakeLiveTier(size_t pool_rows = 256) {
  Rng rng(93);
  ann::Matrix data = ann::GenClustered(2000, 16, 16, 0.3f, rng);
  ann::Matrix queries = ann::GenQueriesNear(data, pool_rows, 0.1f, rng);
  serving::ShardedIndexOptions options;
  options.num_shards = 3;
  options.backend = serving::ShardBackend::kFlat;
  options.num_threads = 1;  // The runtime's pool drives parallelism.
  return LiveTier{serving::ShardedIndex(std::move(data), options),
                  std::move(queries)};
}

double PercentileOf(std::vector<double> values, double p) {
  RAGO_CHECK(!values.empty(), "percentile of empty sample");
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[rank];
}

TEST(CacheRuntimeTest, ZeroCapacityCacheServesBitIdenticallyToDefault) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const ArrivalTrace trace = PoissonTrace(120, 100.0, 41);

  RuntimeOptions base_options;
  base_options.num_threads = 2;
  const ServingRuntime base(model, schedule, tier.index, base_options);

  RuntimeOptions zeroed = base_options;
  zeroed.cache.retrieval_capacity = 0;
  zeroed.cache.doc_capacity = 0;
  zeroed.cache.lookup_seconds = 123e-6;  // Irrelevant when disabled.
  const ServingRuntime explicit_off(model, schedule, tier.index, zeroed);

  const RuntimeResult a = base.Serve(trace, tier.queries);
  const RuntimeResult b = explicit_off.Serve(trace, tier.queries);
  EXPECT_EQ(a.outcome_digest, b.outcome_digest);
  EXPECT_EQ(a.retrieval_cache.hits + a.retrieval_cache.misses, 0);
  EXPECT_EQ(a.doc_cache.insertions, 0);
  EXPECT_DOUBLE_EQ(a.measured_prefix_hit_rate, 0.0);

  // The explicit-stream Serve overload with the seed-derived rows is
  // the same computation as the legacy two-argument path.
  QueryStream legacy;
  legacy.rows.reserve(trace.arrivals.size());
  for (size_t i = 0; i < trace.arrivals.size(); ++i) {
    legacy.rows.push_back(static_cast<int64_t>(
        Rng::DeriveSeed(base_options.seed, static_cast<uint64_t>(i)) %
        tier.queries.rows()));
  }
  const RuntimeResult c = base.Serve(trace, tier.queries, legacy);
  EXPECT_EQ(a.outcome_digest, c.outcome_digest);
}

TEST(CacheRuntimeTest, TopKParityBetweenCachedAndCachelessServing) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const int requests = 300;
  const ArrivalTrace trace = PoissonTrace(requests, 120.0, 43);
  const QueryStream stream = ZipfianQueryStream(
      requests, static_cast<int64_t>(tier.queries.rows()), 1.0, 7);

  RuntimeOptions off_options;
  off_options.num_threads = 2;
  RuntimeOptions on_options = off_options;
  on_options.cache.retrieval_capacity = 64;
  on_options.cache.doc_capacity = 2048;
  const ServingRuntime off(model, schedule, tier.index, off_options);
  const ServingRuntime on(model, schedule, tier.index, on_options);

  const RuntimeResult off_result = off.Serve(trace, tier.queries, stream);
  const RuntimeResult on_result = on.Serve(trace, tier.queries, stream);
  // Caching must change *when* results arrive, never *what* they are:
  // a hit serves exactly the neighbors the skipped scan would have.
  EXPECT_GT(on_result.retrieval_cache.hits, 0);
  ASSERT_EQ(off_result.requests.size(), on_result.requests.size());
  for (size_t r = 0; r < off_result.requests.size(); ++r) {
    EXPECT_EQ(off_result.requests[r].first_neighbor,
              on_result.requests[r].first_neighbor)
        << "request " << r;
  }
  EXPECT_EQ(off_result.completed, on_result.completed);
}

TEST(CacheRuntimeTest, DigestInvariantAcrossThreadCountsWithCacheLive) {
  // Satellite of the determinism contract: the cache-hit fast path
  // injects kind-4 events, and their (time, kind, payload) tie-break
  // must keep the outcome digest bit-identical for every pool size.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const int requests = 200;
  const ArrivalTrace trace = PoissonTrace(requests, 300.0, 47);
  const QueryStream stream = ZipfianQueryStream(
      requests, static_cast<int64_t>(tier.queries.rows()), 1.2, 11);

  std::vector<RuntimeResult> results;
  for (int threads : {1, 2, 8}) {
    RuntimeOptions options;
    options.num_threads = threads;
    options.cache.retrieval_capacity = 64;
    options.cache.doc_capacity = 1024;
    const ServingRuntime runtime(model, schedule, tier.index, options);
    results.push_back(runtime.Serve(trace, tier.queries, stream));
  }
  const RuntimeResult& base = results.front();
  EXPECT_GT(base.retrieval_cache.hits, 0);
  for (size_t i = 1; i < results.size(); ++i) {
    const RuntimeResult& other = results[i];
    EXPECT_EQ(base.outcome_digest, other.outcome_digest);
    EXPECT_EQ(base.retrieval_cache.hits, other.retrieval_cache.hits);
    EXPECT_EQ(base.retrieval_cache.misses, other.retrieval_cache.misses);
    EXPECT_EQ(base.retrieval_cache.evictions,
              other.retrieval_cache.evictions);
    EXPECT_EQ(base.doc_cache.hits, other.doc_cache.hits);
    EXPECT_EQ(base.measured_prefix_hit_rate,
              other.measured_prefix_hit_rate);
    ASSERT_EQ(base.requests.size(), other.requests.size());
    for (size_t r = 0; r < base.requests.size(); ++r) {
      EXPECT_EQ(base.requests[r].retrieval_cache_hit,
                other.requests[r].retrieval_cache_hit);
      EXPECT_EQ(base.requests[r].prefix_hit_fraction,
                other.requests[r].prefix_hit_fraction);
      EXPECT_EQ(base.requests[r].ttft, other.requests[r].ttft);
    }
  }
}

TEST(CacheRuntimeTest, RepeatOnlyTraceReachesBoundaryHitRates) {
  // repeat_probability = 1.0 collapses the stream onto one query: the
  // measured hit rates legitimately reach the closed-interval boundary
  // (the schema bug this PR fixes rejected exactly this value), and
  // prefix pricing at hit_rate = 1.0 must stay finite.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const int requests = 200;
  RepeatNeighborOptions repeat;
  repeat.repeat_probability = 1.0;
  const QueryStream stream = RepeatNeighborQueryStream(
      requests, static_cast<int64_t>(tier.queries.rows()), repeat, 13);
  for (int64_t row : stream.rows) {
    EXPECT_EQ(row, stream.rows.front());
  }

  RuntimeOptions options;
  options.num_threads = 2;
  options.cache.retrieval_capacity = 8;
  options.cache.doc_capacity = 1024;
  const ServingRuntime runtime(model, schedule, tier.index, options);
  const RuntimeResult result =
      runtime.Serve(UniformTrace(requests, 50.0), tier.queries, stream);

  EXPECT_EQ(result.completed, requests);
  EXPECT_GT(result.retrieval_cache.HitRate(), 0.9);
  EXPECT_GT(result.measured_prefix_hit_rate, 0.9);
  // Requests that measured a full hit exercised EvalPrefixCached at
  // exactly 1.0 — finite TTFT proves no divide-by-zero pricing.
  int full_hits = 0;
  for (const RequestOutcome& outcome : result.requests) {
    if (outcome.prefix_hit_fraction == 1.0) {
      ++full_hits;
      EXPECT_GE(outcome.ttft, 0.0);
    }
  }
  EXPECT_GT(full_hits, requests / 2);
}

TEST(CacheRuntimeTest, ZipfHitRateAtModerateCapacityAboveHalf) {
  // Acceptance pin: Zipf(1.0) over a 256-row pool against a 128-entry
  // cache must measure a hit rate of at least 0.5.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier(256);
  const int requests = 600;
  const ArrivalTrace trace = PoissonTrace(requests, 150.0, 53);
  const QueryStream stream = ZipfianQueryStream(requests, 256, 1.0, 17);

  RuntimeOptions options;
  options.num_threads = 2;
  options.cache.retrieval_capacity = 128;
  options.cache.doc_capacity = 4096;
  const ServingRuntime runtime(model, schedule, tier.index, options);
  const RuntimeResult result =
      runtime.Serve(trace, tier.queries, stream);
  EXPECT_GE(result.retrieval_cache.HitRate(), 0.5);
  EXPECT_GT(result.measured_prefix_hit_rate, 0.0);
}

TEST(CacheRuntimeTest, CachedRequestsCollapseTtftBelowCachelessBaseline) {
  // The retrieval/prefill overlap: a hit skips batch formation plus
  // the scan's virtual service time, so the cached population's median
  // TTFT must sit strictly below the cache-off baseline's.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const int requests = 400;
  const ArrivalTrace trace = PoissonTrace(requests, 120.0, 59);
  const QueryStream stream = ZipfianQueryStream(
      requests, static_cast<int64_t>(tier.queries.rows()), 1.0, 19);

  RuntimeOptions off_options;
  off_options.num_threads = 2;
  RuntimeOptions on_options = off_options;
  on_options.cache.retrieval_capacity = 128;
  const ServingRuntime off(model, schedule, tier.index, off_options);
  const ServingRuntime on(model, schedule, tier.index, on_options);
  const RuntimeResult off_result = off.Serve(trace, tier.queries, stream);
  const RuntimeResult on_result = on.Serve(trace, tier.queries, stream);

  std::vector<double> baseline;
  std::vector<double> cached;
  for (size_t r = 0; r < off_result.requests.size(); ++r) {
    if (off_result.requests[r].admitted) {
      baseline.push_back(off_result.requests[r].ttft);
    }
    if (on_result.requests[r].retrieval_cache_hit) {
      cached.push_back(on_result.requests[r].ttft);
    }
  }
  ASSERT_GT(cached.size(), 50u);
  EXPECT_LT(PercentileOf(cached, 0.5), PercentileOf(baseline, 0.5));
}

TEST(CacheRuntimeTest, MeasuredDocCachePricingLowersPrefixTtft) {
  // Document-KV level alone (retrieval cache off): a repeat-heavy
  // stream measures a near-1 hit fraction, so prefix batches are
  // priced far below the schema's assumed 0.0 rate and mean TTFT must
  // drop against the cacheless baseline.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const int requests = 200;
  RepeatNeighborOptions repeat;
  repeat.repeat_probability = 1.0;
  const QueryStream stream = RepeatNeighborQueryStream(
      requests, static_cast<int64_t>(tier.queries.rows()), repeat, 23);
  const ArrivalTrace trace = UniformTrace(requests, 60.0);

  RuntimeOptions off_options;
  off_options.num_threads = 1;
  RuntimeOptions doc_options = off_options;
  doc_options.cache.doc_capacity = 4096;
  const ServingRuntime off(model, schedule, tier.index, off_options);
  const ServingRuntime doc(model, schedule, tier.index, doc_options);
  const RuntimeResult off_result = off.Serve(trace, tier.queries, stream);
  const RuntimeResult doc_result = doc.Serve(trace, tier.queries, stream);

  EXPECT_EQ(doc_result.retrieval_cache.hits, 0);  // Level isolated.
  EXPECT_GT(doc_result.measured_prefix_hit_rate, 0.9);
  EXPECT_LT(doc_result.ttft.Mean(), off_result.ttft.Mean());
  // Results are identical either way; only pricing moved.
  for (size_t r = 0; r < off_result.requests.size(); ++r) {
    EXPECT_EQ(off_result.requests[r].first_neighbor,
              doc_result.requests[r].first_neighbor);
  }
}

TEST(CacheRuntimeTest, RejectsMalformedQueryStreams) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const ServingRuntime runtime(model, schedule, tier.index,
                               RuntimeOptions{});
  const ArrivalTrace trace = UniformTrace(10, 100.0);

  QueryStream short_stream;
  short_stream.rows.assign(9, 0);
  EXPECT_THROW(runtime.Serve(trace, tier.queries, short_stream),
               ConfigError);
  QueryStream out_of_range;
  out_of_range.rows.assign(10, 0);
  out_of_range.rows[5] = static_cast<int64_t>(tier.queries.rows());
  EXPECT_THROW(runtime.Serve(trace, tier.queries, out_of_range),
               ConfigError);
  QueryStream negative;
  negative.rows.assign(10, 0);
  negative.rows[3] = -1;
  EXPECT_THROW(runtime.Serve(trace, tier.queries, negative), ConfigError);
}

}  // namespace
}  // namespace rago::cache
