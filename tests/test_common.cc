/**
 * @file test_common.cc
 * Unit and property tests for src/common: units, checks, RNG, math
 * helpers, Pareto utilities, and table rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include <algorithm>
#include <limits>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/histogram.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/math_util.h"
#include "common/pareto.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "tests/testing/test_support.h"

namespace rago {
namespace {

TEST(Units, DecimalAndBinaryMultipliers) {
  EXPECT_DOUBLE_EQ(kKilo, 1e3);
  EXPECT_DOUBLE_EQ(kGiga, 1e9);
  EXPECT_DOUBLE_EQ(kTera, 1e12);
  EXPECT_DOUBLE_EQ(kKiB, 1024.0);
  EXPECT_DOUBLE_EQ(kGiB, 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kTiB, 1024.0 * kGiB);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(ToMillis(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(ToMicros(0.001), 1000.0);
}

TEST(Histogram, PercentilesUseNearestRankConvention) {
  // The convention the serving DES has always used for p99:
  // sorted[(size_t)(p * (n - 1))]. Insertion order must not matter.
  Histogram hist;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) {
    hist.Add(v);
  }
  EXPECT_EQ(hist.count(), 5);
  EXPECT_DOUBLE_EQ(hist.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 4.0);  // floor(0.99 * 4) = 3.
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 5.0);
  // Adding after a percentile query re-sorts correctly.
  hist.Add(0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.5);
}

TEST(Histogram, EmptyAndInvalidQueries) {
  const Histogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  Histogram hist;
  hist.Add(1.0);
  EXPECT_THROW(hist.Percentile(-0.1), rago::ConfigError);
  EXPECT_THROW(hist.Percentile(1.5), rago::ConfigError);
}

TEST(Check, RequireThrowsConfigError) {
  EXPECT_THROW(RAGO_REQUIRE(false, "bad config"), ConfigError);
  EXPECT_NO_THROW(RAGO_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInternalErrorWithLocation) {
  try {
    RAGO_CHECK(false, "invariant broken");
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("invariant broken"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cc"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedCoversRangeWithoutBias) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBoundedRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.NextBounded(0), InternalError);
}

using RngSeeded = rago::testing::SeededTest;

TEST_F(RngSeeded, GaussianMomentsApproximatelyStandard) {
  Rng& rng = this->rng();
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(1, 128), 1);
  EXPECT_EQ(CeilDiv(0, 3), 0);
}

TEST(MathUtil, PowerOfTwoPredicates) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(-4));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(64), 64);
  EXPECT_EQ(NextPowerOfTwo(65), 128);
}

TEST(MathUtil, PowersOfTwoInRange) {
  const auto powers = PowersOfTwoInRange(4, 32);
  EXPECT_EQ(powers, (std::vector<int64_t>{4, 8, 16, 32}));
  EXPECT_TRUE(PowersOfTwoInRange(9, 8).empty());
}

TEST(MathUtil, LogSpaceEndpointsAndMonotonicity) {
  const auto values = LogSpace(1.0, 1000.0, 4);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_NEAR(values.front(), 1.0, 1e-9);
  EXPECT_NEAR(values.back(), 1000.0, 1e-6);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(MathUtil, RelDiff) {
  EXPECT_NEAR(RelDiff(100.0, 110.0), 10.0 / 110.0, 1e-12);
  EXPECT_DOUBLE_EQ(RelDiff(0.0, 0.0), 0.0);
}

TEST(Pareto, DominanceSemantics) {
  ParetoPoint<int> fast_slow{1.0, 10.0, 0};
  ParetoPoint<int> slow_fast{2.0, 20.0, 0};
  ParetoPoint<int> dominated{2.5, 9.0, 0};
  EXPECT_FALSE(Dominates(fast_slow, slow_fast));
  EXPECT_FALSE(Dominates(slow_fast, fast_slow));
  EXPECT_TRUE(Dominates(fast_slow, dominated));
  EXPECT_TRUE(Dominates(slow_fast, dominated));
  EXPECT_FALSE(Dominates(dominated, dominated));  // No self-dominance.
}

TEST(Pareto, FrontierDropsDominatedKeepsRest) {
  std::vector<ParetoPoint<int>> points = {
      {1.0, 10.0, 1}, {2.0, 20.0, 2}, {1.5, 5.0, 3}, {3.0, 19.0, 4}};
  const auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].payload, 1);
  EXPECT_EQ(frontier[1].payload, 2);
  EXPECT_TRUE(IsParetoFrontier(frontier));
}

TEST(Pareto, FrontierSortedByLatency) {
  std::vector<ParetoPoint<int>> points = {
      {5.0, 50.0, 0}, {1.0, 10.0, 0}, {3.0, 30.0, 0}};
  const auto frontier = ParetoFrontier(points);
  ASSERT_EQ(frontier.size(), 3u);
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].latency, frontier[i - 1].latency);
    EXPECT_GT(frontier[i].throughput, frontier[i - 1].throughput);
  }
}

TEST(Pareto, EmptyAndSingleton) {
  std::vector<ParetoPoint<int>> empty;
  EXPECT_TRUE(ParetoFrontier(empty).empty());
  std::vector<ParetoPoint<int>> one = {{1.0, 1.0, 7}};
  const auto frontier = ParetoFrontier(one);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0].payload, 7);
}

/// Property: for random point clouds, the frontier (a) contains no
/// dominated pair and (b) every dropped point is dominated by some
/// frontier point.
class ParetoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoPropertyTest, FrontierIsSoundAndComplete) {
  Rng rng(GetParam());
  std::vector<ParetoPoint<size_t>> points;
  const size_t n = 100 + rng.NextBounded(200);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.NextUniform(0.0, 1.0), rng.NextUniform(0.0, 1.0),
                      i});
  }
  const auto frontier = ParetoFrontier(points);
  EXPECT_TRUE(IsParetoFrontier(frontier));
  // Completeness: every input point is dominated by or equal to some
  // frontier point.
  for (const auto& point : points) {
    bool covered = false;
    for (const auto& front : frontier) {
      if (front.payload == point.payload ||
          Dominates(front, point)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point " << point.payload << " not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(OnlinePareto, AcceptsAndRejectsCorrectly) {
  OnlineParetoFront<int> front;
  EXPECT_TRUE(front.Offer(1.0, 10.0, 1));
  EXPECT_TRUE(front.Offer(2.0, 20.0, 2));      // Better throughput.
  EXPECT_FALSE(front.Offer(2.5, 15.0, 3));     // Dominated by (2, 20).
  EXPECT_FALSE(front.WouldAccept(3.0, 20.0));  // Dominated (tie tput).
  EXPECT_TRUE(front.WouldAccept(0.5, 1.0));    // New low-latency point.
  EXPECT_EQ(front.size(), 2u);
}

TEST(OnlinePareto, EvictsDominatedPredecessors) {
  OnlineParetoFront<int> front;
  front.Offer(1.0, 10.0, 1);
  front.Offer(2.0, 20.0, 2);
  front.Offer(3.0, 30.0, 3);
  // A point that dominates the first two.
  EXPECT_TRUE(front.Offer(0.5, 25.0, 4));
  const auto points = front.Take();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].payload, 4);
  EXPECT_EQ(points[1].payload, 3);
}

TEST(OnlinePareto, IdenticalLatencyKeepsBetterThroughput) {
  OnlineParetoFront<int> front;
  front.Offer(1.0, 10.0, 1);
  EXPECT_TRUE(front.Offer(1.0, 15.0, 2));   // Replaces at same latency.
  EXPECT_FALSE(front.Offer(1.0, 12.0, 3));  // Worse at same latency.
  const auto points = front.Take();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].payload, 2);
}

/// Property: streaming points through OnlineParetoFront yields exactly
/// the frontier the batch algorithm computes.
class OnlineParetoPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(OnlineParetoPropertyTest, MatchesBatchFrontier) {
  Rng rng(GetParam());
  std::vector<ParetoPoint<size_t>> points;
  OnlineParetoFront<size_t> front;
  const size_t n = 200 + rng.NextBounded(200);
  for (size_t i = 0; i < n; ++i) {
    // Discrete grid so exact duplicates occur.
    const double latency = 0.1 * static_cast<double>(rng.NextBounded(20));
    const double throughput =
        0.1 * static_cast<double>(rng.NextBounded(20));
    points.push_back({latency, throughput, i});
    if (front.WouldAccept(latency, throughput)) {
      front.Offer(latency, throughput, i);
    }
  }
  const auto batch = ParetoFrontier(points);
  const auto online = front.Take();
  ASSERT_EQ(online.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(online[i].latency, batch[i].latency);
    EXPECT_DOUBLE_EQ(online[i].throughput, batch[i].throughput);
  }
  EXPECT_TRUE(IsParetoFrontier(online));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineParetoPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(OnlinePareto, AllTiesKeepPayloadOrderIndependently) {
  // Regression for the parallel-merge duplicate bug: points equal on
  // BOTH objectives used to keep whichever was offered first, so a
  // concurrent merge could report a different duplicate per run. The
  // payload tie-break must pick the smallest payload for every offer
  // permutation.
  std::vector<int> payloads = {4, 1, 3, 2};
  std::sort(payloads.begin(), payloads.end());
  do {
    OnlineParetoFront<int> front;
    for (int payload : payloads) {
      EXPECT_TRUE(front.WouldAccept(1.0, 10.0));
      front.Offer(1.0, 10.0, payload);
    }
    const auto points = front.Take();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].payload, 1) << "offer order leaked into the tie";
  } while (std::next_permutation(payloads.begin(), payloads.end()));
}

TEST(OnlinePareto, TieBreakDoesNotDisturbDominance) {
  OnlineParetoFront<int> front;
  front.Offer(1.0, 10.0, 5);
  front.Offer(1.0, 10.0, 2);   // Tie: payload 2 survives.
  front.Offer(2.0, 20.0, 9);   // Independent frontier point.
  EXPECT_FALSE(front.Offer(1.5, 10.0, 1));  // Dominated, despite payload 1.
  const auto points = front.Take();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].payload, 2);
  EXPECT_EQ(points[1].payload, 9);
}

TEST(OnlinePareto, MergeIsPartitionAndOrderIndependent) {
  // The optimizer merges per-task partial frontiers; any split of the
  // offer stream over any number of fronts, merged in any order, must
  // produce identical points and payloads.
  Rng rng(99);
  std::vector<ParetoPoint<size_t>> stream;
  for (size_t i = 0; i < 300; ++i) {
    stream.push_back({0.1 * static_cast<double>(rng.NextBounded(12)),
                      0.1 * static_cast<double>(rng.NextBounded(12)), i});
  }
  OnlineParetoFront<size_t> serial;
  for (const auto& p : stream) {
    serial.Offer(p.latency, p.throughput, p.payload);
  }
  const auto expected = serial.Take();

  for (size_t parts : {2u, 3u, 7u}) {
    std::vector<OnlineParetoFront<size_t>> partial(parts);
    for (size_t i = 0; i < stream.size(); ++i) {
      partial[i % parts].Offer(stream[i].latency, stream[i].throughput,
                               stream[i].payload);
    }
    // Merge back-to-front to stress order independence.
    OnlineParetoFront<size_t> merged;
    for (size_t p = parts; p-- > 0;) {
      merged.Merge(std::move(partial[p]));
    }
    const auto actual = merged.Take();
    ASSERT_EQ(actual.size(), expected.size()) << parts << " parts";
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].latency, expected[i].latency);
      EXPECT_EQ(actual[i].throughput, expected[i].throughput);
      EXPECT_EQ(actual[i].payload, expected[i].payload);
    }
  }
}

/// Minimal JSON well-formedness scan: balanced containers outside
/// strings and none of the bare non-finite tokens JSON forbids.
void ExpectParseableJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  std::string outside_strings;  // Structure + literals, strings elided.
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    outside_strings += c;
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  for (const char* token : {"nan", "inf"}) {
    EXPECT_EQ(outside_strings.find(token), std::string::npos)
        << "bare non-finite token in: " << json;
  }
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  // Infeasible schedules carry latency = inf; `--json` output must stay
  // valid JSON (which has no inf/nan literals) by emitting null.
  JsonWriter json;
  json.BeginObject()
      .Key("inf").Number(std::numeric_limits<double>::infinity())
      .Key("neg_inf").Number(-std::numeric_limits<double>::infinity())
      .Key("nan").Number(std::numeric_limits<double>::quiet_NaN())
      .Key("finite").Number(1.5)
      .Key("mixed").BeginArray()
          .Number(std::numeric_limits<double>::quiet_NaN())
          .Number(2.0)
      .EndArray()
      .EndObject();
  EXPECT_EQ(json.str(),
            "{\"inf\":null,\"neg_inf\":null,\"nan\":null,"
            "\"finite\":1.5,\"mixed\":[null,2]}");
  ExpectParseableJson(json.str());
}

TEST(JsonWriter, RoundTripStaysParseable) {
  JsonWriter json;
  json.BeginObject()
      .Key("name").String("fig\"15\"\n")
      .Key("values").BeginArray();
  for (double v : {1e-9, 3.14159, 1e308,
                   std::numeric_limits<double>::infinity()}) {
    json.Number(v);
  }
  json.EndArray()
      .Key("count").Int(42)
      .Key("ok").Bool(true)
      .EndObject();
  ExpectParseableJson(json.str());
  EXPECT_NE(json.str().find("null"), std::string::npos);
}

TEST(Table, RendersAlignedColumnsWithHeader) {
  TextTable table("Title");
  table.SetHeader({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"long-name", "2.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
}

TEST(Table, CsvOutput) {
  TextTable table;
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(TextTable::Num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::Num(1234.5, 5), "1234.5");
}

// ---------------------------------------------------------------------------
// Streaming histograms (common/metrics.h)
// ---------------------------------------------------------------------------

TEST(StreamingHistogram, OptionsValidateRejectsBadPolicies) {
  StreamingHistogramOptions bad;
  bad.min_value = 0.0;
  EXPECT_THROW(bad.Validate(), ConfigError);
  bad = {};
  bad.max_value = bad.min_value;
  EXPECT_THROW(bad.Validate(), ConfigError);
  bad = {};
  bad.bins_per_decade = 0;
  EXPECT_THROW(bad.Validate(), ConfigError);
  EXPECT_NO_THROW(StreamingHistogramOptions{}.Validate());
}

TEST(StreamingHistogram, QuantilesAgreeWithExactWithinOneBinRatio) {
  // The bin midpoint convention bounds the quantile error by one bin
  // ratio, 10^(1/bins_per_decade); p=0/p=1 are exact (clamped to the
  // tracked extremes).
  Rng rng(29);
  Histogram exact;
  StreamingHistogram streaming;
  const double bin_ratio =
      std::pow(10.0, 1.0 / streaming.options().bins_per_decade);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over ~5 decades inside the regular bin range.
    const double value = std::pow(10.0, rng.NextUniform(-4.0, 1.0));
    exact.Add(value);
    streaming.Add(value);
  }
  EXPECT_EQ(streaming.count(), 20000);
  EXPECT_EQ(streaming.underflow(), 0);
  EXPECT_EQ(streaming.overflow(), 0);
  for (double p : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double approx = streaming.Quantile(p);
    const double truth = exact.Percentile(p);
    EXPECT_LE(approx, truth * bin_ratio) << "p=" << p;
    EXPECT_GE(approx, truth / bin_ratio) << "p=" << p;
  }
  // Mean and extremes are tracked exactly, not from bins.
  EXPECT_DOUBLE_EQ(streaming.Mean(), exact.Mean());
}

TEST(StreamingHistogram, MergeIsAssociativeAndCommutative) {
  Rng rng(31);
  std::vector<std::vector<double>> parts(3);
  for (size_t part = 0; part < parts.size(); ++part) {
    for (int i = 0; i < 500; ++i) {
      parts[part].push_back(std::pow(10.0, rng.NextUniform(-5.0, 3.0)));
    }
  }
  auto fill = [&parts](std::initializer_list<int> order) {
    StreamingHistogram merged;
    for (int part : order) {
      StreamingHistogram h;
      for (double v : parts[static_cast<size_t>(part)]) {
        h.Add(v);
      }
      merged.Merge(h);
    }
    return merged;
  };
  const StreamingHistogram abc = fill({0, 1, 2});
  const StreamingHistogram cba = fill({2, 1, 0});
  const StreamingHistogram bca = fill({1, 2, 0});
  ASSERT_EQ(abc.count(), 1500);
  for (const StreamingHistogram* other : {&cba, &bca}) {
    EXPECT_EQ(abc.count(), other->count());
    EXPECT_DOUBLE_EQ(abc.Min(), other->Min());
    EXPECT_DOUBLE_EQ(abc.Max(), other->Max());
    ASSERT_EQ(abc.num_bins(), other->num_bins());
    for (size_t bin = 0; bin < abc.num_bins(); ++bin) {
      EXPECT_EQ(abc.bin_count(bin), other->bin_count(bin)) << bin;
    }
    for (double p : {0.25, 0.5, 0.99}) {
      EXPECT_DOUBLE_EQ(abc.Quantile(p), other->Quantile(p));
    }
  }
}

TEST(StreamingHistogram, MergeRejectsMismatchedPolicies) {
  StreamingHistogramOptions coarse;
  coarse.bins_per_decade = 8;
  StreamingHistogram a;
  StreamingHistogram b(coarse);
  EXPECT_THROW(a.Merge(b), ConfigError);
}

TEST(StreamingHistogram, UnderflowOverflowAndNonFiniteLandInEdgeBins) {
  StreamingHistogram hist;
  const double min = hist.options().min_value;
  const double max = hist.options().max_value;
  hist.Add(0.0);                // Below min_value.
  hist.Add(-3.0);               // Negative.
  hist.Add(std::nan(""));       // NaN: fails every range check.
  hist.Add(max);                // At the upper edge: overflow.
  hist.Add(max * 10.0);
  hist.Add(min);                // First regular bin.
  EXPECT_EQ(hist.count(), 6);
  EXPECT_EQ(hist.underflow(), 3);
  EXPECT_EQ(hist.overflow(), 2);
  // Quantiles stay inside the exactly-tracked extremes even when edge
  // bins hold samples.
  EXPECT_GE(hist.Quantile(0.5), hist.Min());
  EXPECT_LE(hist.Quantile(0.5), hist.Max());
}

TEST(StreamingHistogram, ZeroSampleEdgeCases) {
  const StreamingHistogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.Min(), 0.0);
  EXPECT_EQ(empty.Max(), 0.0);
  EXPECT_EQ(empty.underflow(), 0);
  EXPECT_EQ(empty.overflow(), 0);
}

TEST(Histogram, SampleCapFoldsIntoStreamingExactlyOnce) {
  Histogram hist(64);
  Histogram unbounded;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double value = std::pow(10.0, rng.NextUniform(-3.0, 1.0));
    hist.Add(value);
    unbounded.Add(value);
    EXPECT_EQ(hist.streaming_active(), i + 1 >= 64);
  }
  EXPECT_EQ(hist.count(), 1000);
  EXPECT_FALSE(unbounded.streaming_active());
  // Mean stays exact across the fold; percentiles degrade by at most
  // one bin ratio.
  EXPECT_NEAR(hist.Mean(), unbounded.Mean(),
              1e-12 * std::fabs(unbounded.Mean()));
  const double bin_ratio = std::pow(10.0, 1.0 / 32.0);
  for (double p : {0.5, 0.95}) {
    EXPECT_LE(hist.Percentile(p), unbounded.Percentile(p) * bin_ratio);
    EXPECT_GE(hist.Percentile(p), unbounded.Percentile(p) / bin_ratio);
  }
}

TEST(Histogram, RejectsNonPositiveSampleCap) {
  EXPECT_THROW(Histogram(0), ConfigError);
  EXPECT_THROW(Histogram(-5), ConfigError);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateIsStableAndFindIsConst) {
  MetricsRegistry registry;
  registry.GetCounter("requests").Inc(3);
  registry.GetCounter("requests").Inc(2);
  registry.GetGauge("qps").Set(41.5);
  registry.GetHistogram("ttft").Add(0.25);
  EXPECT_EQ(registry.size(), 3u);
  ASSERT_NE(registry.FindCounter("requests"), nullptr);
  EXPECT_EQ(registry.FindCounter("requests")->value(), 5);
  EXPECT_EQ(registry.FindGauge("qps")->value(), 41.5);
  EXPECT_EQ(registry.FindHistogram("ttft")->count(), 1);
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindGauge("absent"), nullptr);
  EXPECT_EQ(registry.FindHistogram("absent"), nullptr);
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricsRegistry, CounterRejectsNegativeIncrements) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.GetCounter("c").Inc(-1), ConfigError);
}

TEST(MetricsRegistry, JsonEmissionIsNameSortedAndParseable) {
  // Two registries filled in opposite orders must emit byte-identical
  // documents — the determinism contract for telemetry export.
  MetricsRegistry forward;
  forward.GetCounter("a").Inc(1);
  forward.GetCounter("b").Inc(2);
  forward.GetGauge("g").Set(3.0);
  forward.GetHistogram("h").Add(0.5);
  MetricsRegistry backward;
  backward.GetHistogram("h").Add(0.5);
  backward.GetGauge("g").Set(3.0);
  backward.GetCounter("b").Inc(2);
  backward.GetCounter("a").Inc(1);

  auto emit = [](const MetricsRegistry& registry) {
    JsonWriter json;
    registry.WriteJson(json);
    return json.str();
  };
  const std::string doc = emit(forward);
  EXPECT_EQ(doc, emit(backward));

  const JsonValue parsed = JsonValue::Parse(doc);
  EXPECT_EQ(parsed.At("counters").At("a").AsInt(), 1);
  EXPECT_EQ(parsed.At("counters").At("b").AsInt(), 2);
  EXPECT_EQ(parsed.At("gauges").At("g").AsNumber(), 3.0);
  const JsonValue& hist = parsed.At("histograms").At("h");
  EXPECT_EQ(hist.At("count").AsInt(), 1);
  EXPECT_EQ(hist.At("min").AsNumber(), 0.5);
  EXPECT_EQ(hist.At("max").AsNumber(), 0.5);
}

// ---------------------------------------------------------------------------
// JSON reader + the shared bench envelope
// ---------------------------------------------------------------------------

TEST(JsonReader, BenchEnvelopeRoundTripsThroughParser) {
  JsonWriter json = bench::StartBenchJson("round_trip");
  json.Key("rows").Int(42);
  json.Key("ratio").Number(2.5);
  json.Key("ok").Bool(true);
  json.Key("results").BeginArray();
  json.BeginObject().Key("x").Number(1.5).EndObject();
  json.BeginObject().Key("x").Number(-3.25).EndObject();
  json.EndArray();
  bench::FinishBenchJson(json, "");  // Empty path: no file written.

  const JsonValue doc = JsonValue::Parse(json.str());
  EXPECT_EQ(doc.At("schema_version").AsInt(), bench::kBenchJsonSchemaVersion);
  EXPECT_EQ(doc.At("bench").AsString(), "round_trip");
  EXPECT_EQ(doc.At("rows").AsInt(), 42);
  EXPECT_EQ(doc.At("ratio").AsNumber(), 2.5);
  EXPECT_TRUE(doc.At("ok").AsBool());
  const JsonValue& results = doc.At("results");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results.Items()[0].At("x").AsNumber(), 1.5);
  EXPECT_EQ(results.Items()[1].At("x").AsNumber(), -3.25);
  // Members preserve document order: the envelope keys lead.
  EXPECT_EQ(doc.Members()[0].first, "schema_version");
  EXPECT_EQ(doc.Members()[1].first, "bench");
  EXPECT_EQ(doc.Find("absent"), nullptr);
  EXPECT_THROW(doc.At("absent"), ConfigError);
}

TEST(JsonReader, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::Parse(""), ConfigError);
  EXPECT_THROW(JsonValue::Parse("{"), ConfigError);
  EXPECT_THROW(JsonValue::Parse("{} trailing"), ConfigError);
  EXPECT_THROW(JsonValue::Parse("{\"a\":1,\"a\":2}"), ConfigError);
  EXPECT_THROW(JsonValue::Parse("[1,]"), ConfigError);
  EXPECT_THROW(JsonValue::Parse("{\"a\" 1}"), ConfigError);
  EXPECT_THROW(JsonValue::Parse("nul"), ConfigError);
}

TEST(JsonReader, NonFiniteWriterOutputParsesAsNull) {
  // json_writer emits non-finite doubles as null (pinned elsewhere);
  // the reader must accept that round-trip.
  JsonWriter json;
  json.BeginObject();
  json.Key("inf").Number(std::numeric_limits<double>::infinity());
  json.Key("nan").Number(std::nan(""));
  json.EndObject();
  const JsonValue doc = JsonValue::Parse(json.str());
  EXPECT_TRUE(doc.At("inf").is_null());
  EXPECT_TRUE(doc.At("nan").is_null());
}

}  // namespace
}  // namespace rago
