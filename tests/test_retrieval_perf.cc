/**
 * @file test_retrieval_perf.cc
 * Tests for the analytical retrieval cost models (paper §4b).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "common/units.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/perf/bruteforce_model.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/perf/roofline.h"
#include "retrieval/perf/scann_model.h"
#include "tests/testing/test_support.h"

namespace rago::retrieval {
namespace {

ScannModel PaperModel(int servers = 16) {
  return ScannModel(DatabaseSpec{}, rago::DefaultCpuServer(), servers);
}

TEST(DatabaseSpec, PaperDefaultsAndQuantizedSize) {
  DatabaseSpec spec;
  EXPECT_EQ(spec.num_vectors, 64'000'000'000);
  EXPECT_EQ(spec.dim, 768);
  EXPECT_DOUBLE_EQ(spec.pq_bytes_per_vector, 96.0);
  // 64B x 96 bytes = 6.14e12 bytes ~= 5.59 TiB (paper: 5.6 TiB).
  EXPECT_NEAR(spec.QuantizedBytes() / rago::kTiB, 5.59, 0.02);
  EXPECT_NO_THROW(spec.Validate());
}

TEST(DatabaseSpec, ValidationRejectsBadValues) {
  DatabaseSpec spec;
  spec.scan_fraction = 0.0;
  EXPECT_THROW(spec.Validate(), rago::ConfigError);
  spec = DatabaseSpec{};
  spec.scan_fraction = 1.5;
  EXPECT_THROW(spec.Validate(), rago::ConfigError);
  spec = DatabaseSpec{};
  spec.num_vectors = 0;
  EXPECT_THROW(spec.Validate(), rago::ConfigError);
  spec = DatabaseSpec{};
  spec.tree_fanout = 1;
  EXPECT_THROW(spec.Validate(), rago::ConfigError);
}

TEST(ScannModel, MinServersMatchesPaperScale) {
  // 5.59 TiB at 384 GiB per host: 15 servers is the strict capacity
  // floor; the paper provisions 16.
  const ScannModel model = PaperModel(16);
  EXPECT_GE(model.MinServersForCapacity(), 15);
  EXPECT_LE(model.MinServersForCapacity(), 16);
  EXPECT_THROW(PaperModel(8), rago::ConfigError);
}

TEST(ScannModel, LeafScanDominatesBytesPerQuery) {
  const ScannModel model = PaperModel();
  // B_retrieval ~= N * B_vec * P_scan = 64e9 * 96 * 0.001; centroid
  // levels add less than 10% on top.
  const double leaf = 64e9 * 96.0 * 0.001;
  EXPECT_GE(model.BytesScannedPerQuery(), leaf);
  EXPECT_LT(model.BytesScannedPerQuery(), leaf * 1.10);
}

TEST(ScannModel, ScanOpsCoverAllTreeLevels) {
  const ScannModel model = PaperModel();
  const auto ops = model.ScanOps();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].level, 1);
  EXPECT_EQ(ops[2].level, 3);
  // Root level: 4000 centroids of 768 float dims.
  EXPECT_DOUBLE_EQ(ops[0].bytes, 4000.0 * 768 * 4);
  // The leaf PQ scan dwarfs the centroid levels.
  EXPECT_LT(ops[0].bytes, 0.01 * ops[2].bytes);
  EXPECT_LT(ops[1].bytes, 0.10 * ops[2].bytes);
}

TEST(ScannModel, SingleQueryLatencyMatchesPerCoreRoofline) {
  // Batch 1 on 32 servers: the paper quotes ~10 ms (§7.1). One thread
  // scans its shard at 18 GB/s.
  const ScannModel model = PaperModel(32);
  const RetrievalCost cost = model.Search(1);
  const double expected =
      model.BytesPerQueryPerServer() / (18 * rago::kGiga);
  RAGO_EXPECT_REL_NEAR(cost.latency, expected, 0.01);
  EXPECT_NEAR(cost.latency, 0.0107, 0.002);
}

TEST(ScannModel, ThroughputSaturatesAtMemoryBandwidth) {
  const ScannModel model = PaperModel(16);
  // At large batch the tier is memory-bound: aggregate effective
  // bandwidth over the scanned bytes.
  const RetrievalCost cost = model.Search(4096);
  const double bound = 16 * 460e9 * 0.8 / model.BytesScannedPerQuery();
  RAGO_EXPECT_REL_NEAR(cost.throughput, bound, 0.05);
}

TEST(ScannModel, ThroughputMonotoneUpToCoreCountAndAcrossFullWaves) {
  // Throughput rises until all 96 cores are busy; partially filled
  // extra waves dip (stair pattern), but full waves keep the peak.
  const ScannModel model = PaperModel(16);
  double prev = 0.0;
  for (int64_t batch : {1, 2, 4, 8, 16, 32, 64, 96}) {
    const RetrievalCost cost = model.Search(batch);
    EXPECT_GE(cost.throughput, prev * 0.999) << "batch " << batch;
    prev = cost.throughput;
  }
  const double peak = model.Search(96).throughput;
  for (int64_t batch : {192, 384, 768}) {
    RAGO_EXPECT_REL_NEAR(model.Search(batch).throughput, peak, 0.01);
  }
  // Just past a wave boundary, throughput dips.
  EXPECT_LT(model.Search(97).throughput, peak * 0.75);
}

TEST(ScannModel, LatencyGrowsInWavesBeyondCoreCount) {
  const ScannModel model = PaperModel(16);
  const double l96 = model.Search(96).latency;
  const double l97 = model.Search(97).latency;
  EXPECT_GT(l97, l96 * 1.5);  // Second wave starts.
}

TEST(ScannModel, MoreServersCutLatencyProportionally) {
  const double l16 = PaperModel(16).Search(1).latency;
  const double l32 = PaperModel(32).Search(1).latency;
  EXPECT_NEAR(l16 / l32, 2.0, 0.01);
}

TEST(ScannModel, ScanFractionScalesWork) {
  DatabaseSpec spec01;
  spec01.scan_fraction = 0.0001;
  DatabaseSpec spec10;
  spec10.scan_fraction = 0.01;
  const ScannModel low(spec01, rago::DefaultCpuServer(), 16);
  const ScannModel high(spec10, rago::DefaultCpuServer(), 16);
  // 100x scan fraction -> exactly 100x leaf bytes; centroid levels
  // dilute the total-byte ratio somewhat.
  EXPECT_NEAR(high.ScanOps().back().bytes / low.ScanOps().back().bytes,
              100.0, 1e-6);
  const double total_ratio =
      high.BytesScannedPerQuery() / low.BytesScannedPerQuery();
  EXPECT_GT(total_ratio, 50.0);
  EXPECT_LE(total_ratio, 100.0);
  EXPECT_GT(low.Search(64).throughput, high.Search(64).throughput * 50);
}

TEST(ScannModel, RejectsNonPositiveBatch) {
  EXPECT_THROW(PaperModel().Search(0), rago::ConfigError);
}

TEST(BruteForce, BytesAreFullDatabaseScan) {
  const BruteForceModel model(100'000, 768, 2.0, rago::DefaultCpuServer());
  EXPECT_DOUBLE_EQ(model.BytesScannedPerQuery(), 100'000.0 * 768 * 2);
}

TEST(BruteForce, SmallDatabaseIsFast) {
  // Case II: 1K-100K vectors. Even 100K vectors scan in ~10 ms on one
  // thread, a negligible share of multi-second encode latency.
  const BruteForceModel model(100'000, 768, 2.0, rago::DefaultCpuServer());
  const RetrievalCost cost = model.Search(1);
  EXPECT_LT(cost.latency, 0.02);
  const BruteForceModel tiny(1'000, 768, 2.0, rago::DefaultCpuServer());
  EXPECT_LT(tiny.Search(1).latency, 0.001);
}

TEST(BruteForce, ThroughputScalesWithBatchUntilMemoryBound) {
  const BruteForceModel model(100'000, 768, 2.0, rago::DefaultCpuServer());
  const double t1 = model.Search(1).throughput;
  const double t16 = model.Search(16).throughput;
  EXPECT_GT(t16, t1 * 8);
}

TEST(BruteForce, RejectsDegenerateConfigs) {
  EXPECT_THROW(BruteForceModel(0, 768, 2.0, rago::DefaultCpuServer()),
               rago::ConfigError);
  EXPECT_THROW(BruteForceModel(10, 0, 2.0, rago::DefaultCpuServer()),
               rago::ConfigError);
}

/// Profile whose constants mirror the analytical paper model, so the
/// measured-cost adapter must reproduce ScannModel exactly.
MeasuredScanProfile AnalyticalProfile(const ScannModel& model) {
  MeasuredScanProfile profile;
  profile.bytes_per_query_per_server = model.BytesPerQueryPerServer();
  profile.scan_bytes_per_core = rago::DefaultCpuServer().scan_bytes_per_core;
  profile.merge_seconds_per_query = 0.0;
  return profile;
}

TEST(MeasuredModel, ReproducesScannModelFromItsOwnConstants) {
  // Structural cross-check: with the analytical bytes and scan rate
  // plugged in as the "measurement", the adapter's wave/roofline
  // formula must price every batch like ScannModel does.
  const ScannModel analytic = PaperModel(16);
  const MeasuredRetrievalModel measured(AnalyticalProfile(analytic),
                                        rago::DefaultCpuServer(), 16);
  RAGO_EXPECT_REL_NEAR(measured.BytesScannedPerQuery(),
                       analytic.BytesScannedPerQuery(), 1e-9);
  for (int64_t batch : {1, 8, 96, 97, 512, 4096}) {
    RAGO_EXPECT_REL_NEAR(measured.Search(batch).latency,
                         analytic.Search(batch).latency, 1e-9);
    RAGO_EXPECT_REL_NEAR(measured.Search(batch).throughput,
                         analytic.Search(batch).throughput, 1e-9);
  }
}

TEST(MeasuredModel, MergeOverheadInflatesLatency) {
  const ScannModel analytic = PaperModel(16);
  MeasuredScanProfile profile = AnalyticalProfile(analytic);
  const double base = MeasuredRetrievalModel(profile,
                                             rago::DefaultCpuServer(), 16)
                          .Search(64)
                          .latency;
  profile.merge_seconds_per_query = 1e-4;
  const double with_merge =
      MeasuredRetrievalModel(profile, rago::DefaultCpuServer(), 16)
          .Search(64)
          .latency;
  EXPECT_NEAR(with_merge - base, 64 * 1e-4, 1e-9);
}

TEST(MeasuredModel, RejectsDegenerateProfiles) {
  MeasuredScanProfile profile;
  EXPECT_THROW(
      MeasuredRetrievalModel(profile, rago::DefaultCpuServer(), 4),
      rago::ConfigError);
  profile.bytes_per_query_per_server = 1e6;
  profile.scan_bytes_per_core = 1e9;
  profile.merge_seconds_per_query = -1.0;
  EXPECT_THROW(
      MeasuredRetrievalModel(profile, rago::DefaultCpuServer(), 4),
      rago::ConfigError);
  profile.merge_seconds_per_query = 0.0;
  EXPECT_THROW(
      MeasuredRetrievalModel(profile, rago::DefaultCpuServer(), 0),
      rago::ConfigError);
  EXPECT_NO_THROW(
      MeasuredRetrievalModel(profile, rago::DefaultCpuServer(), 4));
}

/// Property sweep over server counts and batches: throughput never
/// exceeds the roofline bounds and latency stays positive.
class ScannSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(ScannSweepTest, RooflineBoundsHold) {
  const auto [servers, batch] = GetParam();
  const ScannModel model = PaperModel(servers);
  const RetrievalCost cost = model.Search(batch);
  EXPECT_GT(cost.latency, 0.0);
  const double mem_bound =
      servers * 460e9 * 0.8 / model.BytesScannedPerQuery();
  const double compute_bound =
      servers * 96.0 * 18e9 / model.BytesScannedPerQuery();
  EXPECT_LE(cost.throughput, std::min(mem_bound, compute_bound) * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScannSweepTest,
    ::testing::Combine(::testing::Values(16, 24, 32),
                       ::testing::Values<int64_t>(1, 8, 96, 512, 4096)));

// --- Roofline profiler (retrieval/perf/roofline.h) -------------------

TEST(Roofline, AccountingClosedFormsMatchHandComputation) {
  // Batch scan: rows stream once, one float distance written per row.
  const KernelWork l2 = AccountBatchScan(ann::Metric::kL2, 1000, 64);
  EXPECT_DOUBLE_EQ(l2.bytes, 1000.0 * 64 * 4 + 1000.0 * 4);
  EXPECT_DOUBLE_EQ(l2.flops, 1000.0 * 64 * 3);  // sub + FMA per element.

  const KernelWork ip = AccountBatchScan(ann::Metric::kInnerProduct, 1000, 64);
  EXPECT_DOUBLE_EQ(ip.bytes, l2.bytes);
  EXPECT_DOUBLE_EQ(ip.flops, 1000.0 * 64 * 2);  // one FMA per element.

  // Micro-tile: row stream shared across queries, full output block.
  const KernelWork tile = AccountTileScan(ann::Metric::kL2, 8, 1000, 64);
  EXPECT_DOUBLE_EQ(tile.bytes,
                   1000.0 * 64 * 4 + 8.0 * 64 * 4 + 8.0 * 1000 * 4);
  EXPECT_DOUBLE_EQ(tile.flops, 8.0 * 1000 * 64 * 3);

  // ADC: 1 byte per (code, subspace), cache-resident m x 256 table,
  // one float accumulation and output per code.
  const KernelWork adc = AccountAdcScan(4096, 16);
  EXPECT_DOUBLE_EQ(adc.bytes, 4096.0 * 16 + 16.0 * 256 * 4 + 4096.0 * 4);
  EXPECT_DOUBLE_EQ(adc.flops, 4096.0 * 16);

  // Packed ADC: whole-block multiples of the code stream, same FLOPs.
  // 4096 is block-aligned, so the streams match the strided scan.
  const KernelWork packed = AccountAdcPackedScan(4096, 16);
  EXPECT_DOUBLE_EQ(packed.bytes, adc.bytes);
  EXPECT_DOUBLE_EQ(packed.flops, adc.flops);
  // 4097 codes pad to 129 blocks of 32; outputs stay unpadded.
  const KernelWork padded = AccountAdcPackedScan(4097, 16);
  EXPECT_DOUBLE_EQ(padded.bytes,
                   129.0 * 32 * 16 + 16.0 * 256 * 4 + 4097.0 * 4);
  EXPECT_DOUBLE_EQ(padded.flops, 4097.0 * 16);

  EXPECT_THROW(AccountBatchScan(ann::Metric::kL2, 0, 64), ConfigError);
  EXPECT_THROW(AccountTileScan(ann::Metric::kL2, 8, 1000, 0), ConfigError);
  EXPECT_THROW(AccountAdcScan(4096, 0), ConfigError);
  EXPECT_THROW(AccountAdcPackedScan(0, 16), ConfigError);
}

TEST(Roofline, TileIntensityGrowsWithTileHeight) {
  // The micro-tile's reason to exist: amortizing the row stream over
  // more queries raises arithmetic intensity roughly linearly, which
  // is what eventually crosses the ridge into compute-bound land.
  double previous = AccountBatchScan(ann::Metric::kL2, 4096, 64).Intensity();
  for (size_t queries : {2, 8, 32, 128}) {
    const double intensity =
        AccountTileScan(ann::Metric::kL2, queries, 4096, 64).Intensity();
    EXPECT_GT(intensity, previous);
    previous = intensity;
  }
}

TEST(Roofline, ClassificationFollowsTheRidge) {
  KernelProfileOptions options;
  options.num_rows = 1 << 12;
  options.dim = 16;
  options.tile_queries = 8;
  options.pq_m = 8;
  options.repetitions = 1;

  // Ridge far above any kernel intensity: everything is memory-bound.
  MachinePeaks bandwidth_starved;
  bandwidth_starved.bandwidth_bytes_per_sec = 1e9;
  bandwidth_starved.flops_per_sec = 1e13;
  EXPECT_DOUBLE_EQ(bandwidth_starved.RidgeIntensity(), 1e4);
  {
    const KernelProfiler profiler(bandwidth_starved, options);
    EXPECT_TRUE(profiler.ProfileL2Batch().memory_bound);
    EXPECT_TRUE(profiler.ProfileIpBatch().memory_bound);
    EXPECT_TRUE(profiler.ProfileL2Tile().memory_bound);
    EXPECT_TRUE(profiler.ProfileAdc().memory_bound);
    EXPECT_TRUE(profiler.ProfileAdcPacked().memory_bound);
  }

  // Ridge far below: the compute roof binds everywhere.
  MachinePeaks compute_starved;
  compute_starved.bandwidth_bytes_per_sec = 1e12;
  compute_starved.flops_per_sec = 1e9;
  {
    const KernelProfiler profiler(compute_starved, options);
    EXPECT_FALSE(profiler.ProfileL2Batch().memory_bound);
    EXPECT_FALSE(profiler.ProfileAdc().memory_bound);
  }
}

TEST(Roofline, ProfiledPointsAreInternallyConsistent) {
  MachinePeaks peaks;
  peaks.bandwidth_bytes_per_sec = 10.0 * kGiB;
  peaks.flops_per_sec = 20e9;

  KernelProfileOptions options;
  options.num_rows = 1 << 12;
  options.dim = 16;
  options.tile_queries = 8;
  options.pq_m = 8;
  options.repetitions = 1;
  const KernelProfiler profiler(peaks, options);

  for (const KernelRooflinePoint& point :
       {profiler.ProfileL2Batch(), profiler.ProfileIpBatch(),
        profiler.ProfileL2Tile(), profiler.ProfileAdc(),
        profiler.ProfileAdcPacked()}) {
    EXPECT_FALSE(point.kernel.empty());
    EXPECT_EQ(point.variant, ann::kernels::Active().name);
    EXPECT_GT(point.seconds, 0.0);
    EXPECT_GT(point.work.bytes, 0.0);
    EXPECT_GT(point.work.flops, 0.0);
    EXPECT_DOUBLE_EQ(point.intensity, point.work.Intensity());
    EXPECT_DOUBLE_EQ(point.achieved_bytes_per_sec,
                     point.work.bytes / point.seconds);
    EXPECT_DOUBLE_EQ(point.achieved_flops_per_sec,
                     point.work.flops / point.seconds);
    EXPECT_EQ(point.memory_bound,
              point.intensity < peaks.RidgeIntensity());
    const double expected_bound =
        std::max(point.work.bytes / peaks.bandwidth_bytes_per_sec,
                 point.work.flops / peaks.flops_per_sec);
    EXPECT_DOUBLE_EQ(point.bound_seconds, expected_bound);
    EXPECT_GT(point.roofline_efficiency, 0.0);
    EXPECT_DOUBLE_EQ(point.roofline_efficiency,
                     point.bound_seconds / point.seconds);
  }
}

TEST(Roofline, CalibrationProbesReturnPositivePeaks) {
  ProbeOptions tiny;
  tiny.triad_elements = 1 << 14;
  tiny.flop_iterations = 1 << 16;
  tiny.repetitions = 1;
  const MachinePeaks peaks = CalibrateMachinePeaks(tiny);
  EXPECT_GT(peaks.bandwidth_bytes_per_sec, 0.0);
  EXPECT_GT(peaks.flops_per_sec, 0.0);
  EXPECT_GT(peaks.RidgeIntensity(), 0.0);
}

TEST(Roofline, OptionValidationRejectsDegenerateShapes) {
  ProbeOptions probe;
  probe.triad_elements = 0;
  EXPECT_THROW(CalibrateMachinePeaks(probe), ConfigError);
  probe = ProbeOptions{};
  probe.repetitions = 0;
  EXPECT_THROW(CalibrateMachinePeaks(probe), ConfigError);

  KernelProfileOptions kernels;
  kernels.tile_queries = 0;
  MachinePeaks peaks;
  peaks.bandwidth_bytes_per_sec = 1e9;
  peaks.flops_per_sec = 1e9;
  EXPECT_THROW(KernelProfiler(peaks, kernels), ConfigError);
  EXPECT_THROW(KernelProfiler(MachinePeaks{}, KernelProfileOptions{}),
               ConfigError);  // Uncalibrated (zero) peaks.
}

}  // namespace
}  // namespace rago::retrieval
