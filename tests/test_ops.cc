/**
 * @file test_ops.cc
 * Tests for the operator graph builders: the totals must agree with
 * the paper's closed-form approximations (FLOPs ~= 2*M*L for short
 * sequences, §3.3) and scale correctly with batch/length/mode.
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/math_util.h"
#include "models/ops.h"
#include "models/transformer.h"
#include "tests/testing/test_support.h"

namespace rago::models {
namespace {

double MatmulFlops(const std::vector<Op>& ops) {
  double total = 0.0;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kMatmul) {
      total += op.count * op.flops;
    }
  }
  return total;
}

TEST(PrefixOps, FlopsMatchTwoMLApproximation) {
  // For short sequences the paper approximates inference FLOPs as
  // 2*M*L; projection FLOPs should land within ~15% of that (embeddings
  // don't do matmuls, attention is excluded from the 2*M*L form).
  const TransformerConfig config = Llama8B();
  const int64_t seq = 512;
  const auto ops = BuildPrefixOps(config, /*batch=*/1, seq);
  const double expected = 2.0 * static_cast<double>(config.NumParams()) * seq;
  RAGO_EXPECT_REL_NEAR(MatmulFlops(ops), expected, 0.15);
}

TEST(PrefixOps, FlopsScaleLinearlyWithBatch) {
  const TransformerConfig config = Llama1B();
  const auto one = BuildPrefixOps(config, 1, 256);
  const auto eight = BuildPrefixOps(config, 8, 256);
  EXPECT_NEAR(TotalFlops(eight) / TotalFlops(one), 8.0, 1e-6);
}

TEST(PrefixOps, AttentionQuadraticInSequenceLength) {
  const TransformerConfig config = Llama8B();
  auto attention_flops = [&](int64_t len) {
    double total = 0.0;
    for (const Op& op : BuildPrefixOps(config, 1, len)) {
      if (op.kind == OpKind::kAttention) {
        total += op.count * op.flops;
      }
    }
    return total;
  };
  // Doubling the sequence quadruples attention score work.
  EXPECT_NEAR(attention_flops(1024) / attention_flops(512), 4.0, 1e-6);
}

TEST(PrefixOps, WeightBytesIndependentOfBatch) {
  const TransformerConfig config = Llama8B();
  auto weight_bytes = [&](int64_t batch) {
    double total = 0.0;
    for (const Op& op : BuildPrefixOps(config, batch, 128)) {
      total += op.count * op.weight_bytes;
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(weight_bytes(1), weight_bytes(64));
  // All matmul weights are touched once; embedding-table lookups are
  // not streamed, so the total sits slightly below the full model.
  EXPECT_NEAR(weight_bytes(1) / config.WeightBytes(), 0.95, 0.05);
}

TEST(PrefixOps, HybridAttentionCutsLongContextWork) {
  // The long-context LLM variant (paper §5.2): global attention in one
  // of four layers, local windows elsewhere.
  const TransformerConfig config = Llama70B();
  const int64_t len = 100'000;
  const auto full = BuildPrefixOps(config, 1, len, FullAttention());
  const auto hybrid = BuildPrefixOps(config, 1, len, HybridLocalAttention());
  double full_attn = 0.0;
  double hybrid_attn = 0.0;
  for (const Op& op : full) {
    if (op.kind == OpKind::kAttention) {
      full_attn += op.count * op.flops;
    }
  }
  for (const Op& op : hybrid) {
    if (op.kind == OpKind::kAttention) {
      hybrid_attn += op.count * op.flops;
    }
  }
  // 1/4 of layers keep quadratic cost; locals are negligible at 100K.
  EXPECT_LT(hybrid_attn, 0.30 * full_attn);
  EXPECT_GT(hybrid_attn, 0.20 * full_attn);
}

TEST(DecodeOps, KvTrafficDominatesAndScalesWithContext) {
  const TransformerConfig config = Llama70B();
  auto kv_bytes = [&](int64_t ctx) {
    for (const Op& op : BuildDecodeStepOps(config, 1, ctx)) {
      if (op.kind == OpKind::kAttention) {
        return op.count * op.act_bytes;
      }
    }
    return 0.0;
  };
  // KV reads scale linearly with the context length.
  EXPECT_NEAR(kv_bytes(2048) / kv_bytes(1024), 2.0, 0.01);
  // And match the config's per-token KV footprint.
  EXPECT_NEAR(kv_bytes(1024),
              1024.0 * config.KvBytesPerToken() +
                  2.0 * config.d_model * 2.0 * config.num_layers,
              1024.0 * config.KvBytesPerToken() * 0.01);
}

TEST(DecodeOps, FlopsMatchTwoMApproximation) {
  const TransformerConfig config = Llama8B();
  const auto ops = BuildDecodeStepOps(config, 1, 256);
  const double expected = 2.0 * static_cast<double>(config.NumParams());
  RAGO_EXPECT_REL_NEAR(MatmulFlops(ops), expected, 0.15);
}

TEST(DecodeOps, RejectsEncoderModels) {
  EXPECT_THROW(BuildDecodeStepOps(Encoder120M(), 1, 128),
               rago::ConfigError);
}

TEST(EncodeOps, BidirectionalAttentionCostsDoubleCausal) {
  // Encoders attend to the full sequence; decoders to half on average.
  TransformerConfig encoder = Encoder120M();
  TransformerConfig as_decoder = encoder;
  as_decoder.kind = ModelKind::kDecoder;
  auto attention_flops = [](const std::vector<Op>& ops) {
    double total = 0.0;
    for (const Op& op : ops) {
      if (op.kind == OpKind::kAttention) {
        total += op.count * op.flops;
      }
    }
    return total;
  };
  const double enc = attention_flops(BuildEncodeOps(encoder, 1, 128));
  const double dec =
      attention_flops(BuildPrefixOps(as_decoder, 1, 128));
  EXPECT_NEAR(enc / dec, 2.0, 1e-6);
}

TEST(EncodeOps, NoLmHead) {
  const auto ops = BuildEncodeOps(Encoder120M(), 4, 128);
  for (const Op& op : ops) {
    EXPECT_NE(op.name, "lm_head");
  }
}

TEST(EncodeOps, RequiresEncoderModel) {
  EXPECT_THROW(BuildEncodeOps(Llama8B(), 1, 128), rago::ConfigError);
}

TEST(Ops, InvalidArgumentsRejected) {
  EXPECT_THROW(BuildPrefixOps(Llama1B(), 0, 128), rago::ConfigError);
  EXPECT_THROW(BuildPrefixOps(Llama1B(), 1, 0), rago::ConfigError);
  EXPECT_THROW(BuildDecodeStepOps(Llama1B(), 1, 0), rago::ConfigError);
}

TEST(Ops, TotalsAreSumOverCounts) {
  std::vector<Op> ops(2);
  ops[0].count = 3;
  ops[0].flops = 10;
  ops[0].weight_bytes = 1;
  ops[0].act_bytes = 2;
  ops[1].count = 1;
  ops[1].flops = 5;
  ops[1].act_bytes = 4;
  EXPECT_DOUBLE_EQ(TotalFlops(ops), 35.0);
  EXPECT_DOUBLE_EQ(TotalBytes(ops), 13.0);
}

}  // namespace
}  // namespace rago::models
