/**
 * @file test_optimizer.cc
 * Tests for the RAGO search engine (paper Algorithm 1): placement
 * enumeration, frontier validity, pruning soundness, and the
 * LLM-extension baseline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "rago/optimizer.h"
#include "retrieval/perf/retrieval_model.h"
#include "tests/testing/test_support.h"

namespace rago::opt {
namespace {

/// Small grids keep unit-test searches fast.
SearchOptions SmallGrid() { return rago::testing::SmallSearchGrid(); }

TEST(Optimizer, PlacementCountIsTwoToTheStages) {
  const core::PipelineModel case1(core::MakeHyperscaleSchema(8, 1),
                                  rago::DefaultCluster());
  EXPECT_EQ(Optimizer(case1).PlacementOptions().size(), 1u);  // 1 stage.

  const core::PipelineModel case2(core::MakeLongContextSchema(8, 100'000),
                                  rago::DefaultCluster());
  EXPECT_EQ(Optimizer(case2).PlacementOptions().size(), 2u);  // 2 stages.

  const core::PipelineModel case4(core::MakeRewriterRerankerSchema(8),
                                  rago::DefaultCluster());
  EXPECT_EQ(Optimizer(case4).PlacementOptions().size(), 8u);  // 4 stages.
}

TEST(Optimizer, PlacementsAreContiguousAndDistinct) {
  const core::PipelineModel model(core::MakeRewriterRerankerSchema(8),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model);
  std::set<std::vector<int>> seen;
  for (const auto& placement : optimizer.PlacementOptions()) {
    EXPECT_TRUE(seen.insert(placement).second) << "duplicate placement";
    EXPECT_EQ(placement.front(), 0);
    for (size_t i = 1; i < placement.size(); ++i) {
      const int step = placement[i] - placement[i - 1];
      EXPECT_TRUE(step == 0 || step == 1);
    }
  }
}

TEST(Optimizer, PlacementLabelsReadable) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 100'000),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model);
  EXPECT_EQ(optimizer.PlacementLabel({0, 0}), "[encode+prefix]");
  EXPECT_EQ(optimizer.PlacementLabel({0, 1}), "[encode][prefix]");
}

TEST(Optimizer, FrontierIsValidPareto) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult result = optimizer.Search();
  ASSERT_FALSE(result.pareto.empty());
  // Sorted by TTFT with strictly increasing QPS/Chip.
  for (size_t i = 1; i < result.pareto.size(); ++i) {
    EXPECT_GT(result.pareto[i].perf.ttft, result.pareto[i - 1].perf.ttft);
    EXPECT_GT(result.pareto[i].perf.qps_per_chip,
              result.pareto[i - 1].perf.qps_per_chip);
  }
}

TEST(Optimizer, FrontierPointsReproduceUnderCanonicalEvaluate) {
  // Every reported point must be exactly what PipelineModel::Evaluate
  // says about its schedule (no fast-path drift).
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult result = optimizer.Search();
  for (const ScheduledPoint& point : result.pareto) {
    const core::EndToEndPerf perf = model.Evaluate(point.schedule);
    ASSERT_TRUE(perf.feasible);
    EXPECT_DOUBLE_EQ(perf.ttft, point.perf.ttft);
    EXPECT_DOUBLE_EQ(perf.qps_per_chip, point.perf.qps_per_chip);
  }
}

TEST(Optimizer, SchedulesRespectBudget) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.max_total_xpus = 16;
  const Optimizer optimizer(model, options);
  const OptimizerResult result = optimizer.Search();
  for (const ScheduledPoint& point : result.pareto) {
    EXPECT_LE(point.schedule.AllocatedXpus(), 16);
  }
}

TEST(Optimizer, RagoDominatesBaseline) {
  // The baseline's (placement, allocation) lies inside RAGO's search
  // space, so RAGO must match or beat it on both frontier ends.
  for (auto make : {&core::MakeLongContextSchema}) {
    const core::PipelineModel model(make(8, 1'000'000),
                                    rago::DefaultCluster());
    const Optimizer optimizer(model, SmallGrid());
    const OptimizerResult rago_result = optimizer.Search();
    const OptimizerResult baseline = optimizer.SearchBaseline();
    ASSERT_FALSE(rago_result.pareto.empty());
    ASSERT_FALSE(baseline.pareto.empty());
    EXPECT_GE(rago_result.MaxQpsPerChip().perf.qps_per_chip,
              baseline.MaxQpsPerChip().perf.qps_per_chip * 0.999);
    EXPECT_LE(rago_result.MinTtft().perf.ttft,
              baseline.MinTtft().perf.ttft * 1.001);
  }
}

TEST(Optimizer, CaseTwoRagoBeatsBaselineOnThroughput) {
  // Paper Fig. 15a: ~1.7x max QPS/Chip in the long-context case. Our
  // reproduction should land in the 1.3x-2.5x band.
  const core::PipelineModel model(core::MakeLongContextSchema(70, 1'000'000),
                                  rago::LargeCluster());
  SearchOptions options;
  options.batch_sizes = {1, 2, 8, 32, 128, 512};
  options.decode_batch_sizes = {16, 64, 256, 1024};
  const Optimizer optimizer(model, options);
  const double rago_best =
      optimizer.Search().MaxQpsPerChip().perf.qps_per_chip;
  const double base_best =
      optimizer.SearchBaseline().MaxQpsPerChip().perf.qps_per_chip;
  EXPECT_GT(rago_best / base_best, 1.3);
  EXPECT_LT(rago_best / base_best, 2.5);
}

TEST(Optimizer, BaselineUsesCollocatedOneToOneSplit) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 100'000),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult baseline = optimizer.SearchBaseline();
  for (const ScheduledPoint& point : baseline.pareto) {
    EXPECT_EQ(point.schedule.NumGroups(), 1);
    EXPECT_EQ(point.schedule.group_chips[0], point.schedule.decode_chips);
    EXPECT_EQ(point.schedule.group_chips[0], 32);  // Half of 64.
  }
}

TEST(Optimizer, PruningPreservesTheFrontier) {
  // Per-stage Pareto pruning is an optimization, not an approximation:
  // the frontier must be identical with and without it.
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions with = SmallGrid();
  with.per_stage_pareto_pruning = true;
  SearchOptions without = SmallGrid();
  without.per_stage_pareto_pruning = false;
  const OptimizerResult pruned = Optimizer(model, with).Search();
  const OptimizerResult full = Optimizer(model, without).Search();
  ASSERT_EQ(pruned.pareto.size(), full.pareto.size());
  for (size_t i = 0; i < pruned.pareto.size(); ++i) {
    EXPECT_NEAR(pruned.pareto[i].perf.ttft, full.pareto[i].perf.ttft,
                1e-12);
    EXPECT_NEAR(pruned.pareto[i].perf.qps_per_chip,
                full.pareto[i].perf.qps_per_chip, 1e-12);
  }
  EXPECT_LE(pruned.schedules_evaluated, full.schedules_evaluated);
}

TEST(Optimizer, PlacementFilterRestrictsSearch) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.placement_filter = 0;  // Fully collocated.
  const Optimizer optimizer(model, options);
  const OptimizerResult result = optimizer.Search();
  for (const ScheduledPoint& point : result.pareto) {
    EXPECT_EQ(point.schedule.NumGroups(), 1);
  }
}

TEST(Optimizer, PlanFrontiersComposeGlobalFrontier) {
  // Fig. 16: the global frontier is the upper envelope of per-plan
  // frontiers; every global point appears in some plan frontier.
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.keep_plan_frontiers = true;
  const OptimizerResult result = Optimizer(model, options).Search();
  ASSERT_FALSE(result.plan_frontiers.empty());
  for (const ScheduledPoint& global : result.pareto) {
    bool found = false;
    for (const PlanFrontier& plan : result.plan_frontiers) {
      for (const ScheduledPoint& point : plan.points) {
        if (std::fabs(point.perf.ttft - global.perf.ttft) < 1e-12 &&
            std::fabs(point.perf.qps_per_chip -
                      global.perf.qps_per_chip) < 1e-12) {
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Optimizer, IterativeSearchPicksIterativeBatch) {
  const core::PipelineModel model(core::MakeIterativeSchema(8, 4),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult result = optimizer.Search();
  ASSERT_FALSE(result.pareto.empty());
  // The throughput-optimal point should batch iterative retrievals.
  EXPECT_GE(result.MaxQpsPerChip().schedule.iterative_batch, 1);
}

TEST(Optimizer, UniformBatchModeTiesChainBatches) {
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.per_group_batching = false;
  const OptimizerResult result = Optimizer(model, options).Search();
  for (const ScheduledPoint& point : result.pareto) {
    const auto& batches = point.schedule.chain_batch;
    for (size_t i = 1; i < batches.size(); ++i) {
      EXPECT_EQ(batches[i], batches[0]);
    }
  }
}

TEST(Optimizer, RejectsNegativeThreadCount) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.num_threads = -1;
  EXPECT_THROW(Optimizer(model, options), rago::ConfigError);
}

TEST(Optimizer, ParallelSearchRespectsBudgetAndFrontierInvariants) {
  // Functional sanity of the parallel path beyond bit-equality (which
  // test_determinism pins): budget and Pareto invariants hold when the
  // enumeration is partitioned across workers.
  const core::PipelineModel model(core::MakeLongContextSchema(8, 1'000'000),
                                  rago::DefaultCluster());
  SearchOptions options = SmallGrid();
  options.max_total_xpus = 16;
  options.num_threads = 4;
  const OptimizerResult result = Optimizer(model, options).Search();
  ASSERT_FALSE(result.pareto.empty());
  for (const ScheduledPoint& point : result.pareto) {
    EXPECT_LE(point.schedule.AllocatedXpus(), 16);
  }
  for (size_t i = 1; i < result.pareto.size(); ++i) {
    EXPECT_GT(result.pareto[i].perf.ttft, result.pareto[i - 1].perf.ttft);
    EXPECT_GT(result.pareto[i].perf.qps_per_chip,
              result.pareto[i - 1].perf.qps_per_chip);
  }
}

TEST(Optimizer, SearchWithLiveProviderMatchesSearch) {
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult live = optimizer.Search();
  const OptimizerResult provided =
      optimizer.Search(model.LiveProvider());
  ASSERT_EQ(provided.pareto.size(), live.pareto.size());
  for (size_t i = 0; i < live.pareto.size(); ++i) {
    EXPECT_TRUE(provided.pareto[i].schedule == live.pareto[i].schedule);
    EXPECT_DOUBLE_EQ(provided.pareto[i].perf.ttft,
                     live.pareto[i].perf.ttft);
    EXPECT_DOUBLE_EQ(provided.pareto[i].perf.qps_per_chip,
                     live.pareto[i].perf.qps_per_chip);
  }
}

/// Deterministic stand-in for a calibrated MeasuredRetrievalModel:
/// fixed per-batch overhead plus a poor per-query rate, so retrieval
/// is far more expensive than the analytic ScaNN pricing and batches
/// amortize badly. Synthetic (no wall clock) so the changed choice
/// below is machine-invariant.
class SlowRetrievalModel final : public retrieval::RetrievalModel {
 public:
  retrieval::RetrievalCost Search(int64_t batch_queries) const override {
    retrieval::RetrievalCost cost;
    cost.latency = 0.040 + 0.004 * static_cast<double>(batch_queries);
    cost.throughput = static_cast<double>(batch_queries) / cost.latency;
    return cost;
  }
  double BytesScannedPerQuery() const override { return 1e6; }
};

TEST(Optimizer, MeasuredRetrievalCostsChangeTheChosenSchedule) {
  // The acceptance scenario for the measured-cost bridge: the same
  // search grid, priced once analytically and once with measured
  // retrieval costs, must select a different schedule — otherwise the
  // provider plumbing is dead weight.
  const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                  rago::DefaultCluster());
  const Optimizer optimizer(model, SmallGrid());
  const OptimizerResult analytic = optimizer.Search();

  const SlowRetrievalModel slow;
  const OptimizerResult measured =
      optimizer.Search(model.ProviderWithRetrievalModel(slow));

  ASSERT_FALSE(analytic.pareto.empty());
  ASSERT_FALSE(measured.pareto.empty());
  // Measured retrieval is strictly slower, so the best TTFT degrades...
  EXPECT_GT(measured.MinTtft().perf.ttft, analytic.MinTtft().perf.ttft);
  // ...and the optimizer adapts the schedule rather than re-picking
  // the analytic winner.
  EXPECT_FALSE(measured.MinTtft().schedule ==
               analytic.MinTtft().schedule);
  // The measured frontier is still a valid Pareto set.
  for (size_t i = 1; i < measured.pareto.size(); ++i) {
    EXPECT_GT(measured.pareto[i].perf.ttft,
              measured.pareto[i - 1].perf.ttft);
    EXPECT_GT(measured.pareto[i].perf.qps_per_chip,
              measured.pareto[i - 1].perf.qps_per_chip);
  }
}

TEST(OptimizerResult, AccessorsRejectEmptyFrontier) {
  OptimizerResult empty;
  EXPECT_THROW(empty.MaxQpsPerChip(), rago::ConfigError);
  EXPECT_THROW(empty.MinTtft(), rago::ConfigError);
}

}  // namespace
}  // namespace rago::opt
