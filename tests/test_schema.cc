/**
 * @file test_schema.cc
 * Tests for RAGSchema: presets for the four paper case studies,
 * pipeline/stage derivation, and validation.
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/schema.h"

namespace rago::core {
namespace {

TEST(Schema, CaseOneHyperscaleShape) {
  const RAGSchema schema = MakeHyperscaleSchema(8, 2);
  EXPECT_FALSE(schema.document_encoder.has_value());
  EXPECT_FALSE(schema.query_rewriter.has_value());
  EXPECT_FALSE(schema.reranker.has_value());
  EXPECT_TRUE(schema.retrieval_enabled);
  EXPECT_EQ(schema.retrieval.num_db_vectors, 64'000'000'000);
  EXPECT_EQ(schema.retrieval.queries_per_retrieval, 2);
  EXPECT_EQ(schema.retrieval.retrievals_per_sequence, 1);
  EXPECT_FALSE(schema.IterativeRetrieval());
  // Paper workload defaults.
  EXPECT_EQ(schema.workload.prefix_tokens, 512);
  EXPECT_EQ(schema.workload.decode_tokens, 256);
  EXPECT_EQ(schema.workload.question_tokens, 32);
}

TEST(Schema, CaseTwoLongContextShape) {
  const RAGSchema schema = MakeLongContextSchema(70, 1'000'000);
  ASSERT_TRUE(schema.document_encoder.has_value());
  EXPECT_EQ(schema.document_encoder->kind, models::ModelKind::kEncoder);
  EXPECT_TRUE(schema.retrieval.brute_force);
  // 1M tokens / 128-token chunks = 7813 vectors (paper: 1K-100K range
  // across 100K-10M contexts).
  EXPECT_EQ(schema.retrieval.num_db_vectors, 7813);
  EXPECT_EQ(schema.workload.context_tokens, 1'000'000);
  // The generative prompt stays short thanks to retrieval.
  EXPECT_EQ(schema.workload.prefix_tokens, 512);
}

TEST(Schema, CaseThreeIterativeShape) {
  const RAGSchema schema = MakeIterativeSchema(70, 4);
  EXPECT_TRUE(schema.IterativeRetrieval());
  EXPECT_EQ(schema.retrieval.retrievals_per_sequence, 4);
}

TEST(Schema, CaseFourRewriterRerankerShape) {
  const RAGSchema schema = MakeRewriterRerankerSchema(70);
  ASSERT_TRUE(schema.query_rewriter.has_value());
  ASSERT_TRUE(schema.reranker.has_value());
  // Paper Table 3: 8B rewriter, 120M reranker.
  EXPECT_NEAR(static_cast<double>(schema.query_rewriter->NumParams()),
              8e9, 1e9);
  EXPECT_NEAR(static_cast<double>(schema.reranker->NumParams()), 120e6,
              20e6);
  EXPECT_EQ(schema.workload.rerank_candidates, 16);
  EXPECT_EQ(schema.workload.rewrite_output_tokens, 32);
}

TEST(Schema, LlmOnlyUsesQuestionLengthPrompt) {
  const RAGSchema schema = MakeLlmOnlySchema(70);
  EXPECT_FALSE(schema.retrieval_enabled);
  EXPECT_EQ(schema.workload.prefix_tokens, 32);
}

TEST(Schema, LongContextLlmOnlyPutsContextInPrompt) {
  const RAGSchema schema = MakeLongContextLlmOnlySchema(70, 100'000);
  EXPECT_FALSE(schema.retrieval_enabled);
  EXPECT_EQ(schema.workload.prefix_tokens, 100'032);
}

TEST(Schema, PrefixChainPerCase) {
  using S = StageType;
  EXPECT_EQ(MakeHyperscaleSchema(8, 1).PrefixChainStages(),
            (std::vector<S>{S::kPrefix}));
  EXPECT_EQ(MakeLongContextSchema(8, 100'000).PrefixChainStages(),
            (std::vector<S>{S::kDatabaseEncode, S::kPrefix}));
  EXPECT_EQ(MakeRewriterRerankerSchema(8).PrefixChainStages(),
            (std::vector<S>{S::kRewritePrefix, S::kRewriteDecode, S::kRerank,
                            S::kPrefix}));
}

TEST(Schema, AllStagesInsertsRetrievalAtRightPoint) {
  using S = StageType;
  // Case I: retrieval then prefix then decode.
  EXPECT_EQ(MakeHyperscaleSchema(8, 1).AllStages(),
            (std::vector<S>{S::kRetrieval, S::kPrefix, S::kDecode}));
  // Case IV: retrieval between rewrite-decode and rerank.
  EXPECT_EQ(MakeRewriterRerankerSchema(8).AllStages(),
            (std::vector<S>{S::kRewritePrefix, S::kRewriteDecode,
                            S::kRetrieval, S::kRerank, S::kPrefix,
                            S::kDecode}));
  // LLM-only: no retrieval stage at all.
  EXPECT_EQ(MakeLlmOnlySchema(8).AllStages(),
            (std::vector<S>{S::kPrefix, S::kDecode}));
}

TEST(Schema, ValidationCatchesInconsistencies) {
  RAGSchema schema = MakeHyperscaleSchema(8, 1);
  schema.retrieval.queries_per_retrieval = 0;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);

  schema = MakeHyperscaleSchema(8, 1);
  schema.retrieval.scan_fraction = 0.0;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);

  schema = MakeHyperscaleSchema(8, 1);
  schema.generative_llm = models::Encoder120M();
  EXPECT_THROW(schema.Validate(), rago::ConfigError);

  // Encoder present but no context length.
  schema = MakeLongContextSchema(8, 100'000);
  schema.workload.context_tokens = 0;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);

  // Reranker must be an encoder model.
  schema = MakeRewriterRerankerSchema(8);
  schema.reranker = models::Llama1B();
  EXPECT_THROW(schema.Validate(), rago::ConfigError);
}

TEST(Schema, PrefixCacheHitRateAcceptsClosedIntervalBoundary) {
  // The knob is a hit *rate*: both endpoints are legitimate values. A
  // measured rate on a repeat-only trace reaches exactly 1.0, which an
  // earlier `< 1.0` comparison wrongly rejected.
  RAGSchema schema = MakeHyperscaleSchema(8, 1);
  schema.workload.prefix_cache_hit_rate = 0.0;
  EXPECT_NO_THROW(schema.Validate());
  schema.workload.prefix_cache_hit_rate = 1.0;
  EXPECT_NO_THROW(schema.Validate());
  schema.workload.prefix_cache_hit_rate = 0.5;
  EXPECT_NO_THROW(schema.Validate());
  // Anything outside the closed interval stays rejected.
  schema.workload.prefix_cache_hit_rate = -1e-9;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);
  schema.workload.prefix_cache_hit_rate = 1.0 + 1e-9;
  EXPECT_THROW(schema.Validate(), rago::ConfigError);
}

TEST(Schema, StageNamesAreStable) {
  EXPECT_STREQ(StageName(StageType::kDatabaseEncode), "encode");
  EXPECT_STREQ(StageName(StageType::kRetrieval), "retrieval");
  EXPECT_STREQ(StageName(StageType::kDecode), "decode");
}

}  // namespace
}  // namespace rago::core
