/**
 * @file test_thread_pool.cc
 * Tests for the common worker pool and its determinism contract:
 * index-keyed ParallelFor output must not depend on the thread count.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace rago {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), ConfigError);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPool, TaskExceptionsPropagateToWait) {
  // A throwing task must surface on the caller like an inline run
  // would, and must not wedge the pool.
  ThreadPool pool(2);
  pool.Submit([] { throw ConfigError("boom"); });
  EXPECT_THROW(pool.Wait(), ConfigError);
  // The pool stays usable and a clean wave waits cleanly.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 64,
                           [](size_t i) {
                             if (i == 13) {
                               throw ConfigError("bad index");
                             }
                           }),
               ConfigError);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  ParallelFor(&pool, visits.size(),
              [&](size_t i) { visits[i].fetch_add(1); });
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPool, ParallelForInlineWithoutPool) {
  std::vector<int> visits(64, 0);
  ParallelFor(nullptr, visits.size(), [&](size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 64);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, IndexKeyedOutputIsThreadCountInvariant) {
  // The determinism contract: results written into index-keyed slots
  // are identical for any worker count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(200);
    ParallelFor(&pool, out.size(), [&](size_t i) {
      Rng rng(Rng::DeriveSeed(42, i));
      out[i] = rng.NextU64();
    });
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  const std::vector<uint64_t> parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  // Distinct streams give distinct seeds; the mapping is pure.
  EXPECT_EQ(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(7, 0));
  EXPECT_NE(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(7, 1));
  EXPECT_NE(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(8, 0));
}

}  // namespace
}  // namespace rago
