/**
 * @file test_thread_pool.cc
 * Tests for the common worker pool and its determinism contract:
 * index-keyed ParallelFor output must not depend on the thread count.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace rago {
namespace {

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), ConfigError);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPool, TaskExceptionsPropagateToWait) {
  // A throwing task must surface on the caller like an inline run
  // would, and must not wedge the pool.
  ThreadPool pool(2);
  pool.Submit([] { throw ConfigError("boom"); });
  EXPECT_THROW(pool.Wait(), ConfigError);
  // The pool stays usable and a clean wave waits cleanly.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 64,
                           [](size_t i) {
                             if (i == 13) {
                               throw ConfigError("bad index");
                             }
                           }),
               ConfigError);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  ParallelFor(&pool, visits.size(),
              [&](size_t i) { visits[i].fetch_add(1); });
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPool, ParallelForInlineWithoutPool) {
  std::vector<int> visits(64, 0);
  ParallelFor(nullptr, visits.size(), [&](size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 64);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  // n < num_threads must neither hang nor double-visit: the caller and
  // at most n-1 helpers share n indexes.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(&pool, visits.size(),
              [&](size_t i) { visits[i].fetch_add(1); });
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Optimizer tasks call sub-shard searches: a ParallelFor body running
  // on a worker issues another ParallelFor on the same pool. The caller
  // participates in its own wave instead of blocking on pool
  // quiescence, so this must complete even when every worker is stuck
  // inside an outer body.
  ThreadPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 32;
  std::vector<std::atomic<int>> visits(kOuter * kInner);
  ParallelFor(&pool, kOuter, [&](size_t i) {
    ParallelFor(&pool, kInner, [&](size_t j) {
      visits[i * kInner + j].fetch_add(1);
    });
  });
  for (const auto& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPool, DeeplyNestedParallelForStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 4, [&](size_t) {
      ParallelFor(&pool, 4, [&](size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions) {
  // An inner-wave exception must surface through the outer wave on the
  // original calling thread, not vanish or wedge the pool.
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 4,
                           [&](size_t i) {
                             ParallelFor(&pool, 8, [&](size_t j) {
                               if (i == 2 && j == 5) {
                                 throw ConfigError("inner failure");
                               }
                             });
                           }),
               ConfigError);
  // The pool survives for a clean follow-up wave.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 16, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  ParallelFor(&pool, 1, [&](size_t) { executed = std::this_thread::get_id(); });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, ResolveNumThreadsSemantics) {
  EXPECT_EQ(ResolveNumThreads(0), DefaultNumThreads());
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  EXPECT_GE(DefaultNumThreads(), 1);
  EXPECT_THROW(ResolveNumThreads(-1), ConfigError);
}

TEST(ThreadPool, IndexKeyedOutputIsThreadCountInvariant) {
  // The determinism contract: results written into index-keyed slots
  // are identical for any worker count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(200);
    ParallelFor(&pool, out.size(), [&](size_t i) {
      Rng rng(Rng::DeriveSeed(42, i));
      out[i] = rng.NextU64();
    });
    return out;
  };
  const std::vector<uint64_t> serial = run(1);
  const std::vector<uint64_t> parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  // Distinct streams give distinct seeds; the mapping is pure.
  EXPECT_EQ(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(7, 0));
  EXPECT_NE(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(7, 1));
  EXPECT_NE(Rng::DeriveSeed(7, 0), Rng::DeriveSeed(8, 0));
}

}  // namespace
}  // namespace rago
