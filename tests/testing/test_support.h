/**
 * @file test_support.h
 * Shared test substrate for the RAGO suite.
 *
 * Centralizes the setup that was previously copy-pasted across test
 * files: synthetic ANN datasets with precomputed ground truth, canned
 * small RAGSchema instances wrapping the paper's case-study factories,
 * a reduced optimizer search grid, fixed-seed RNG fixtures, and
 * relative-tolerance helpers for analytical-model comparisons.
 */
#ifndef RAGO_TESTS_TESTING_TEST_SUPPORT_H
#define RAGO_TESTS_TESTING_TEST_SUPPORT_H

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::testing {

/// Canonical seed for fixtures that don't need a specific stream.
inline constexpr uint64_t kDefaultSeed = 0x5eed;

// ---------------------------------------------------------------------------
// ANN dataset helpers
// ---------------------------------------------------------------------------

/// Deep copy of a Matrix (Matrix is move-only at index-build sites).
ann::Matrix CopyMatrix(const ann::Matrix& m);

/// Clustered dataset + near-duplicate queries + exact L2 ground truth.
struct AnnTestBed {
  ann::Matrix data;
  ann::Matrix queries;
  std::vector<std::vector<ann::Neighbor>> truth;  ///< Top `truth_k` by L2.
};

struct AnnTestBedOptions {
  size_t rows = 4000;
  size_t dim = 16;
  size_t num_queries = 32;
  uint64_t seed = 17;
  int clusters = 32;
  float spread = 0.3f;
  float query_noise = 0.1f;
  size_t truth_k = 10;
};

AnnTestBed MakeAnnTestBed(const AnnTestBedOptions& options);

/// Convenience overload matching the historical per-file MakeBed helpers.
AnnTestBed MakeAnnTestBed(size_t rows = 4000, size_t dim = 16,
                          size_t num_queries = 32, uint64_t seed = 17);

// ---------------------------------------------------------------------------
// Canned schemas and search grids
// ---------------------------------------------------------------------------

/// Case I at the smallest LLM size used throughout the suite (8B, q=1).
core::RAGSchema TinyHyperscaleSchema();

/// Case II with a modest upload (8B encoder+LLM, 100k-token context).
core::RAGSchema TinyLongContextSchema(int64_t context_tokens = 100'000);

/// Case III (8B, 4 retrievals per sequence).
core::RAGSchema TinyIterativeSchema(int retrievals_per_sequence = 4);

/// Case IV (8B LLM + 8B rewriter + 120M reranker).
core::RAGSchema TinyRewriterRerankerSchema();

/// Small optimizer grid so unit-test searches stay fast.
opt::SearchOptions SmallSearchGrid();

/// TinyHyperscaleSchema() priced on the paper-default 64-XPU cluster —
/// the most common PipelineModel construction across the suite.
core::PipelineModel TinyHyperscaleModel();

// ---------------------------------------------------------------------------
// Fixtures and tolerance helpers
// ---------------------------------------------------------------------------

/// Test fixture exposing a deterministic, fixed-seed RNG per test.
class SeededTest : public ::testing::Test {
 protected:
  Rng& rng() { return rng_; }

 private:
  Rng rng_{kDefaultSeed};
};

/**
 * Relative-error assertion for analytical-model comparisons:
 * |actual - expected| <= rel_tol * max(|expected|, tiny).
 */
::testing::AssertionResult RelNear(double actual, double expected,
                                   double rel_tol);

#define RAGO_EXPECT_REL_NEAR(actual, expected, rel_tol) \
  EXPECT_TRUE(::rago::testing::RelNear((actual), (expected), (rel_tol)))

}  // namespace rago::testing

#endif  // RAGO_TESTS_TESTING_TEST_SUPPORT_H
