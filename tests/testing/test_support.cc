#include "tests/testing/test_support.h"

#include <algorithm>
#include <cmath>

#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"

namespace rago::testing {

ann::Matrix CopyMatrix(const ann::Matrix& m) { return m.Clone(); }

AnnTestBed MakeAnnTestBed(const AnnTestBedOptions& options) {
  AnnTestBed bed;
  Rng rng(options.seed);
  bed.data = ann::GenClustered(options.rows, options.dim, options.clusters,
                               options.spread, rng);
  bed.queries =
      ann::GenQueriesNear(bed.data, options.num_queries, options.query_noise,
                          rng);
  const ann::FlatIndex flat(CopyMatrix(bed.data), ann::Metric::kL2);
  bed.truth.reserve(bed.queries.rows());
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    bed.truth.push_back(flat.Search(bed.queries.Row(q), options.truth_k));
  }
  return bed;
}

AnnTestBed MakeAnnTestBed(size_t rows, size_t dim, size_t num_queries,
                          uint64_t seed) {
  AnnTestBedOptions options;
  options.rows = rows;
  options.dim = dim;
  options.num_queries = num_queries;
  options.seed = seed;
  return MakeAnnTestBed(options);
}

core::RAGSchema TinyHyperscaleSchema() {
  return core::MakeHyperscaleSchema(8, 1);
}

core::RAGSchema TinyLongContextSchema(int64_t context_tokens) {
  return core::MakeLongContextSchema(8, context_tokens);
}

core::RAGSchema TinyIterativeSchema(int retrievals_per_sequence) {
  return core::MakeIterativeSchema(8, retrievals_per_sequence);
}

core::RAGSchema TinyRewriterRerankerSchema() {
  return core::MakeRewriterRerankerSchema(8);
}

core::PipelineModel TinyHyperscaleModel() {
  return core::PipelineModel(TinyHyperscaleSchema(), DefaultCluster());
}

opt::SearchOptions SmallSearchGrid() {
  opt::SearchOptions options;
  options.batch_sizes = {1, 8, 64};
  options.decode_batch_sizes = {8, 64, 256};
  return options;
}

::testing::AssertionResult RelNear(double actual, double expected,
                                   double rel_tol) {
  const double scale = std::max(std::fabs(expected), 1e-30);
  const double rel = std::fabs(actual - expected) / scale;
  if (rel <= rel_tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "actual " << actual << " vs expected " << expected
         << " differs by relative error " << rel << " > tolerance "
         << rel_tol;
}

}  // namespace rago::testing
