/**
 * @file test_ann_indexes.cc
 * Tests for the functional ANN indexes: flat, IVF, IVF-PQ, and the
 * ScaNN-style tree — including the recall-vs-scanned-work trade-off
 * that drives the paper's P_scan knob (Fig. 7b).
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"
#include "tests/testing/test_support.h"

namespace rago::ann {
namespace {

// The substrate defaults (seed 17, 32 clusters, 0.3 spread, 0.1 query
// noise) are exactly this file's historical bed parameters.
using TestBed = rago::testing::AnnTestBed;
using rago::testing::MakeAnnTestBed;

TestBed MakeBed(size_t n = 4000, size_t dim = 16, size_t num_queries = 32,
                uint64_t seed = 17) {
  return MakeAnnTestBed(n, dim, num_queries, seed);
}

Matrix Copy(const Matrix& m) { return rago::testing::CopyMatrix(m); }

TEST(FlatIndex, ReturnsExactSortedNeighbors) {
  Rng rng(1);
  const Matrix data = GenUniform(100, 4, rng);
  const FlatIndex index(Copy(data), Metric::kL2);
  const Matrix queries = GenUniform(5, 4, rng);
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto result = index.Search(queries.Row(q), 10);
    ASSERT_EQ(result.size(), 10u);
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_LE(result[i - 1].dist, result[i].dist);
    }
    // Brute-force verify the top hit.
    float best = 1e30f;
    int64_t best_id = -1;
    for (size_t i = 0; i < data.rows(); ++i) {
      const float d = L2Sq(queries.Row(q), data.Row(i), 4);
      if (d < best) {
        best = d;
        best_id = static_cast<int64_t>(i);
      }
    }
    EXPECT_EQ(result[0].id, best_id);
  }
}

TEST(FlatIndex, SelfQueryFindsSelf) {
  Rng rng(2);
  const Matrix data = GenUniform(50, 8, rng);
  const FlatIndex index(Copy(data), Metric::kL2);
  for (size_t i = 0; i < 10; ++i) {
    const auto result = index.Search(data.Row(i), 1);
    EXPECT_EQ(result[0].id, static_cast<int64_t>(i));
    EXPECT_NEAR(result[0].dist, 0.0f, 1e-9f);
  }
}

TEST(FlatIndex, InnerProductMetricPrefersLargerDot) {
  Matrix data(2, 2);
  data.Row(0)[0] = 1.0f;   // dot with q = 1
  data.Row(1)[0] = 10.0f;  // dot with q = 10
  const FlatIndex index(Copy(data), Metric::kInnerProduct);
  const float q[2] = {1.0f, 0.0f};
  EXPECT_EQ(index.Search(q, 1)[0].id, 1);
}

TEST(TopK, KeepsSmallestAndBreaksTiesDeterministically) {
  TopK topk(3);
  topk.Push(5.0f, 1);
  topk.Push(2.0f, 2);
  topk.Push(9.0f, 3);
  topk.Push(1.0f, 4);
  topk.Push(2.0f, 5);
  const auto out = topk.SortedTake();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 4);
  EXPECT_EQ(out[1].id, 2);  // dist 2.0, lower id first
  EXPECT_EQ(out[2].id, 5);
}

TEST(IvfIndex, FullProbeMatchesExactSearch) {
  const TestBed bed = MakeBed(1000, 8, 8);
  Rng rng(3);
  IvfOptions options;
  options.nlist = 16;
  const IvfIndex ivf(Copy(bed.data), Metric::kL2, options, rng);
  const FlatIndex flat(Copy(bed.data), Metric::kL2);
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    const auto approx = ivf.Search(bed.queries.Row(q), 5, /*nprobe=*/16);
    const auto exact = flat.Search(bed.queries.Row(q), 5);
    ASSERT_EQ(approx.size(), exact.size());
    for (size_t i = 0; i < approx.size(); ++i) {
      EXPECT_EQ(approx[i].id, exact[i].id);
    }
  }
}

TEST(IvfIndex, RecallImprovesWithNprobe) {
  const TestBed bed = MakeBed();
  Rng rng(4);
  IvfOptions options;
  options.nlist = 64;
  const IvfIndex ivf(Copy(bed.data), Metric::kL2, options, rng);
  std::vector<double> recalls;
  for (int nprobe : {1, 4, 16, 64}) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      results.push_back(ivf.Search(bed.queries.Row(q), 10, nprobe));
    }
    recalls.push_back(MeanRecallAtK(results, bed.truth, 10));
  }
  for (size_t i = 1; i < recalls.size(); ++i) {
    EXPECT_GE(recalls[i], recalls[i - 1] - 1e-9);
  }
  EXPECT_NEAR(recalls.back(), 1.0, 1e-9);  // nprobe = nlist is exact.
  EXPECT_LT(recalls.front(), 1.0);         // Tiny probe misses some.
}

TEST(IvfIndex, ExpectedScannedVectorsScalesWithProbe) {
  const TestBed bed = MakeBed(2000, 8, 4);
  Rng rng(5);
  IvfOptions options;
  options.nlist = 20;
  const IvfIndex ivf(Copy(bed.data), Metric::kL2, options, rng);
  EXPECT_NEAR(ivf.ExpectedScannedVectors(5), 500.0, 1e-9);
  EXPECT_NEAR(ivf.ExpectedScannedVectors(20), 2000.0, 1e-9);
  EXPECT_NEAR(ivf.ExpectedScannedVectors(40), 2000.0, 1e-9);  // Clamped.
}

TEST(IvfPq, RecallReasonableAndImprovesWithRerank) {
  const TestBed bed = MakeBed();
  Rng rng(6);
  IvfPqOptions options;
  options.nlist = 32;
  options.pq_subspaces = 8;
  const IvfPqIndex index(Copy(bed.data), options, rng);
  std::vector<std::vector<Neighbor>> plain;
  std::vector<std::vector<Neighbor>> reranked;
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    plain.push_back(index.Search(bed.queries.Row(q), 10, /*nprobe=*/8));
    reranked.push_back(
        index.Search(bed.queries.Row(q), 10, /*nprobe=*/8, /*rerank=*/50));
  }
  const double recall_plain = MeanRecallAtK(plain, bed.truth, 10);
  const double recall_reranked = MeanRecallAtK(reranked, bed.truth, 10);
  EXPECT_GT(recall_plain, 0.5);
  EXPECT_GE(recall_reranked, recall_plain - 1e-9);
  EXPECT_GT(recall_reranked, 0.8);
}

TEST(IvfPq, ScannedBytesMatchCodeGeometry) {
  const TestBed bed = MakeBed(1000, 16, 4);
  Rng rng(7);
  IvfPqOptions options;
  options.nlist = 10;
  options.pq_subspaces = 4;
  const IvfPqIndex index(Copy(bed.data), options, rng);
  // nprobe=1 scans ~1/10 of 1000 vectors at 4 bytes each.
  EXPECT_NEAR(index.ExpectedScannedBytes(1), 400.0, 1e-9);
  EXPECT_NEAR(index.ExpectedScannedBytes(10), 4000.0, 1e-9);
}

TEST(IvfPq, RerankRequiresRawVectors) {
  const TestBed bed = MakeBed(600, 8, 2);
  Rng rng(8);
  IvfPqOptions options;
  options.nlist = 8;
  options.pq_subspaces = 4;
  options.keep_raw_vectors = false;
  const IvfPqIndex index(Copy(bed.data), options, rng);
  EXPECT_NO_THROW(index.Search(bed.queries.Row(0), 5, 4));
  EXPECT_THROW(index.Search(bed.queries.Row(0), 5, 4, /*rerank=*/20),
               rago::ConfigError);
}

TEST(ScannTree, RecallImprovesWithBeamWidth) {
  const TestBed bed = MakeBed();
  Rng rng(9);
  ScannTreeOptions options;
  options.levels = 2;
  options.fanout = 8;  // 64 leaves over 4000 vectors.
  options.pq_subspaces = 8;
  const ScannTree tree(Copy(bed.data), options, rng);
  std::vector<double> recalls;
  for (int beam : {1, 4, 16, 64}) {
    std::vector<std::vector<Neighbor>> results;
    for (size_t q = 0; q < bed.queries.rows(); ++q) {
      results.push_back(
          tree.Search(bed.queries.Row(q), 10, beam, /*rerank=*/50));
    }
    recalls.push_back(MeanRecallAtK(results, bed.truth, 10));
  }
  for (size_t i = 1; i < recalls.size(); ++i) {
    EXPECT_GE(recalls[i], recalls[i - 1] - 0.05);
  }
  EXPECT_GT(recalls.back(), 0.9);
}

TEST(ScannTree, LeafBytesScaleWithBeam) {
  const TestBed bed = MakeBed(2000, 8, 2);
  Rng rng(10);
  ScannTreeOptions options;
  options.levels = 2;
  options.fanout = 8;
  options.pq_subspaces = 4;
  const ScannTree tree(Copy(bed.data), options, rng);
  EXPECT_GT(tree.NumLeaves(), 8u);
  const double one = tree.ExpectedLeafBytesScanned(1);
  const double four = tree.ExpectedLeafBytesScanned(4);
  EXPECT_NEAR(four / one, 4.0, 1e-9);
}

TEST(ScannTree, ThreeLevelTreeMirrorsPaperShape) {
  // The paper's hyperscale index is a balanced 3-level tree; verify a
  // miniature 3-level build searches correctly.
  const TestBed bed = MakeBed(3000, 8, 8);
  Rng rng(11);
  ScannTreeOptions options;
  options.levels = 3;
  options.fanout = 6;
  options.pq_subspaces = 4;
  const ScannTree tree(Copy(bed.data), options, rng);
  std::vector<std::vector<Neighbor>> results;
  for (size_t q = 0; q < bed.queries.rows(); ++q) {
    results.push_back(tree.Search(bed.queries.Row(q), 10, /*beam=*/12,
                                  /*rerank=*/60));
  }
  EXPECT_GT(MeanRecallAtK(results, bed.truth, 10), 0.6);
}

TEST(Recall, ComputesFractionOfTruthFound) {
  std::vector<Neighbor> truth = {{0.1f, 1}, {0.2f, 2}, {0.3f, 3}};
  std::vector<Neighbor> approx = {{0.1f, 1}, {0.4f, 9}, {0.3f, 3}};
  EXPECT_NEAR(RecallAtK(approx, truth, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(RecallAtK(approx, truth, 1), 1.0, 1e-12);
  EXPECT_THROW(RecallAtK(approx, truth, 0), rago::ConfigError);
}

}  // namespace
}  // namespace rago::ann
