/**
 * @file test_integration.cc
 * Cross-module integration tests: the four paper case studies run
 * end-to-end through schema -> pipeline model -> optimizer, the
 * functional ANN library agrees qualitatively with the analytical
 * retrieval model, and the DES agrees with the analytical stall model.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/flat_index.h"
#include "retrieval/ann/recall.h"
#include "retrieval/ann/scann_tree.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/perf/scann_model.h"
#include "retrieval/serving/calibration.h"
#include "retrieval/serving/sharded_index.h"
#include "sim/iterative_sim.h"
#include "sim/serving_sim.h"
#include "tests/testing/test_support.h"

namespace rago {
namespace {

TEST(Integration, AllFourCasesSearchEndToEnd) {
  opt::SearchOptions options;
  options.batch_sizes = {1, 16, 128};
  options.decode_batch_sizes = {16, 256};
  const std::vector<core::RAGSchema> cases = {
      core::MakeHyperscaleSchema(8, 2),
      core::MakeLongContextSchema(8, 1'000'000),
      core::MakeIterativeSchema(8, 4),
      core::MakeRewriterRerankerSchema(8),
  };
  for (const core::RAGSchema& schema : cases) {
    const core::PipelineModel model(schema, DefaultCluster());
    const opt::OptimizerResult result =
        opt::Optimizer(model, options).Search();
    ASSERT_FALSE(result.pareto.empty());
    for (const opt::ScheduledPoint& point : result.pareto) {
      EXPECT_TRUE(point.perf.feasible);
      EXPECT_GT(point.perf.qps, 0.0);
      EXPECT_GT(point.perf.ttft, 0.0);
      EXPECT_GT(point.perf.tpot, 0.0);
      EXPECT_LE(point.schedule.AllocatedXpus(),
                DefaultCluster().TotalXpus());
    }
  }
}

TEST(Integration, RagVsLlmOnlyMatchesPaperOrdering) {
  // Paper Fig. 5 orderings at max QPS/Chip:
  //   RAG 8B > LLM-only 70B (quality-equivalent pair, ~1.5x);
  //   RAG 1B ~= RAG 8B (both retrieval-bound).
  opt::SearchOptions options;
  options.batch_sizes = {1, 8, 64, 512};
  options.decode_batch_sizes = {64, 512};
  auto max_qpc = [&](const core::RAGSchema& schema) {
    const core::PipelineModel model(schema, DefaultCluster());
    return opt::Optimizer(model, options)
        .Search()
        .MaxQpsPerChip()
        .perf.qps_per_chip;
  };
  const double rag1 = max_qpc(core::MakeHyperscaleSchema(1, 1));
  const double rag8 = max_qpc(core::MakeHyperscaleSchema(8, 1));
  const double llm70 = max_qpc(core::MakeLlmOnlySchema(70));
  EXPECT_GT(rag8, llm70 * 1.2);
  EXPECT_NEAR(rag1 / rag8, 1.0, 0.35);
}

TEST(Integration, FunctionalTreeAndCostModelAgreeOnScanTradeoff) {
  // The analytical model prices retrieval by bytes scanned; the
  // functional tree shows the quality side: more leaves scanned (the
  // model's cost) -> higher recall (the paper's P_scan trade-off).
  Rng rng(21);
  ann::Matrix data = ann::GenClustered(4000, 16, 32, 0.3f, rng);
  ann::Matrix queries = ann::GenQueriesNear(data, 16, 0.1f, rng);

  const ann::FlatIndex flat(rago::testing::CopyMatrix(data),
                            ann::Metric::kL2);
  std::vector<std::vector<ann::Neighbor>> truth;
  for (size_t q = 0; q < queries.rows(); ++q) {
    truth.push_back(flat.Search(queries.Row(q), 10));
  }

  ann::ScannTreeOptions tree_options;
  tree_options.levels = 2;
  tree_options.fanout = 8;
  const ann::ScannTree tree(std::move(data), tree_options, rng);

  double prev_recall = -1.0;
  double prev_bytes = 0.0;
  for (int beam : {1, 8, 32}) {
    std::vector<std::vector<ann::Neighbor>> results;
    for (size_t q = 0; q < queries.rows(); ++q) {
      results.push_back(tree.Search(queries.Row(q), 10, beam, 50));
    }
    const double recall = ann::MeanRecallAtK(results, truth, 10);
    const double bytes = tree.ExpectedLeafBytesScanned(beam);
    EXPECT_GT(bytes, prev_bytes);
    EXPECT_GE(recall, prev_recall - 0.05);
    prev_recall = recall;
    prev_bytes = bytes;
  }
  EXPECT_GT(prev_recall, 0.9);
}

TEST(Integration, MeasuredRetrievalTierMatchesScannModelInServingDes) {
  // The serving DES with the measured-cost retrieval tier swapped in
  // (ServingSimOptions::retrieval_model) must agree with the default
  // analytical tier within a bounded relative error when the measured
  // profile carries the analytical model's own constants — the
  // cross-validation path real calibrations plug into.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {8};
  schedule.chain_batch.assign(model.chain().size(), 4);
  schedule.decode_chips = 8;
  schedule.decode_batch = 64;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 4;

  const retrieval::ScannModel analytic_tier(
      retrieval::DatabaseSpec{}, DefaultCluster().cpu_server,
      schedule.retrieval_servers);
  retrieval::MeasuredScanProfile profile;
  profile.bytes_per_query_per_server =
      analytic_tier.BytesPerQueryPerServer();
  profile.scan_bytes_per_core =
      DefaultCluster().cpu_server.scan_bytes_per_core;
  const retrieval::MeasuredRetrievalModel measured_tier(
      profile, DefaultCluster().cpu_server, schedule.retrieval_servers);

  const sim::ArrivalTrace trace = sim::PoissonTrace(200, 60.0, 9);
  const sim::ServingSimResult analytic =
      sim::SimulateServing(model, schedule, trace);
  sim::ServingSimOptions options;
  options.retrieval_model = &measured_tier;
  const sim::ServingSimResult measured =
      sim::SimulateServing(model, schedule, trace, options);

  EXPECT_EQ(measured.completed, analytic.completed);
  RAGO_EXPECT_REL_NEAR(measured.avg_ttft, analytic.avg_ttft, 0.05);
  RAGO_EXPECT_REL_NEAR(measured.throughput, analytic.throughput, 0.05);
  RAGO_EXPECT_REL_NEAR(measured.retrieval_utilization,
                       analytic.retrieval_utilization, 0.05);
}

TEST(Integration, FunctionalShardedCalibrationDrivesServingDes) {
  // End-to-end: a real scatter-gather scan over the functional sharded
  // index calibrates a measured tier, and the serving DES runs on it.
  // Laptop-scale shards scan microseconds of data, so retrieval must
  // come out far cheaper than the hyperscale analytical tier, and
  // every request must still drain through the pipeline.
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(2000, 16, 16);
  serving::ShardedIndexOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.partitioner = serving::PartitionerKind::kKMeansBalanced;
  const serving::ShardedIndex sharded(
      rago::testing::CopyMatrix(bed.data), shard_options);
  const retrieval::MeasuredRetrievalModel measured_tier =
      serving::CalibrateRetrievalModel(sharded, bed.queries, 10,
                                       DefaultCluster().cpu_server);

  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {8};
  schedule.chain_batch.assign(model.chain().size(), 4);
  schedule.decode_chips = 8;
  schedule.decode_batch = 64;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 4;

  const sim::ArrivalTrace trace = sim::PoissonTrace(100, 60.0, 5);
  sim::ServingSimOptions options;
  options.retrieval_model = &measured_tier;
  const sim::ServingSimResult result =
      sim::SimulateServing(model, schedule, trace, options);
  const sim::ServingSimResult analytic =
      sim::SimulateServing(model, schedule, trace);

  EXPECT_EQ(result.completed, 100);
  EXPECT_GT(result.avg_ttft, 0.0);
  EXPECT_LE(result.avg_ttft, analytic.avg_ttft * 1.01);
  EXPECT_LT(measured_tier.Search(1).latency,
            model.EvalRetrieval(1, schedule.retrieval_servers).latency);
}

TEST(Integration, ServingDesTracksAnalyticalModelAcrossOptimizerGrid) {
  // ROADMAP cross-validation harness: instead of spot-checking one
  // hand-written schedule, sweep SimulateServing across points of the
  // optimizer's own Pareto frontier (searched in parallel via
  // SearchOptions::num_threads) and assert bounded disagreement with
  // the closed-form model at the operating points it describes:
  //  - saturation: completion rate approaches the analytical QPS;
  //  - light load with immediate batch flush: TTFT approaches the
  //    analytical batch-flow latency;
  //  - sub-saturation: throughput tracks the offered load.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  opt::SearchOptions options = rago::testing::SmallSearchGrid();
  options.num_threads = 2;  // Results are thread-count-invariant.
  const opt::OptimizerResult result = opt::Optimizer(model, options).Search();
  ASSERT_FALSE(result.pareto.empty());

  const size_t stride = std::max<size_t>(1, result.pareto.size() / 4);
  int points_checked = 0;
  for (size_t i = 0; i < result.pareto.size(); i += stride) {
    const opt::ScheduledPoint& point = result.pareto[i];
    ASSERT_TRUE(point.perf.feasible);

    // Saturation: offered load far above capacity.
    const sim::ServingSimResult saturated = sim::SimulateServing(
        model, point.schedule,
        sim::UniformTrace(1200, point.perf.qps * 5.0));
    EXPECT_EQ(saturated.completed, 1200);
    RAGO_EXPECT_REL_NEAR(saturated.throughput, point.perf.qps, 0.25);

    // Light load, immediate partial-batch flush: no queueing or
    // batch-forming wait, so TTFT ~= the analytical batch-flow TTFT.
    sim::ServingSimOptions flush_fast;
    flush_fast.batch_timeout = 1e-4;
    const sim::ServingSimResult light = sim::SimulateServing(
        model, point.schedule, sim::UniformTrace(30, 2.0), flush_fast);
    EXPECT_EQ(light.completed, 30);
    RAGO_EXPECT_REL_NEAR(light.avg_ttft, point.perf.ttft, 0.35);

    // Sub-saturation: the DES must deliver the offered load. The trace
    // is long enough that the drain tail after the last arrival cannot
    // bias completed/makespan.
    const double offered = point.perf.qps * 0.4;
    const sim::ServingSimResult cruising = sim::SimulateServing(
        model, point.schedule, sim::UniformTrace(2500, offered));
    RAGO_EXPECT_REL_NEAR(cruising.throughput, offered, 0.10);

    ++points_checked;
  }
  EXPECT_GE(points_checked, 3);
}

TEST(Integration, DesAgreesWithAnalyticalStallDirection) {
  // The optimizer's closed-form stall model and the DES must agree on
  // the direction of the iterative-batch effect at small decode pools.
  const core::PipelineModel model(core::MakeIterativeSchema(8, 4),
                                  DefaultCluster());
  core::Schedule schedule;
  schedule.chain_group = {0};
  schedule.group_chips = {8};
  schedule.chain_batch = {16};
  schedule.decode_chips = 8;
  schedule.decode_batch = 16;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 16;

  auto analytic_tpot = [&](int64_t iterative_batch) {
    core::Schedule s = schedule;
    s.iterative_batch = iterative_batch;
    return model.Evaluate(s).tpot;
  };
  auto des_tpot = [&](int iterative_batch) {
    sim::IterativeSimConfig config;
    config.decode_batch = 16;
    config.iterative_batch = iterative_batch;
    config.decode_tokens = 256;
    config.retrievals_per_sequence = 4;
    config.step_latency = model.EvalDecode(8, 16).latency;
    config.round_latency =
        model.EvalRetrieval(iterative_batch, schedule.retrieval_servers)
            .latency;
    config.num_sequences = 128;
    return SimulateIterativeDecode(config).avg_tpot;
  };

  // At a small decode pool, growing the iterative batch inflates TPOT
  // in both models (paper Fig. 9b, decode batch 4/16 curves).
  EXPECT_GT(analytic_tpot(16), analytic_tpot(1));
  EXPECT_GT(des_tpot(16), des_tpot(1));
  // And both agree within a factor of two on the absolute TPOT.
  EXPECT_NEAR(analytic_tpot(8) / des_tpot(8), 1.0, 1.0);
}

TEST(Integration, LongContextRagBeatsLongContextLlm) {
  // Paper §5.2: RAG with retrieval truncation massively outperforms
  // feeding the full 1M-token context to the LLM, even with hybrid
  // attention. We check TTFT and QPS/Chip at simple schedules.
  const core::PipelineModel rag(core::MakeLongContextSchema(70, 1'000'000),
                                LargeCluster());
  const core::PipelineModel llm(
      core::MakeLongContextLlmOnlySchema(70, 1'000'000), LargeCluster());

  core::Schedule rag_schedule;
  rag_schedule.chain_group = {0, 1};
  rag_schedule.group_chips = {64, 16};
  rag_schedule.chain_batch = {1, 1};
  rag_schedule.decode_chips = 16;
  rag_schedule.decode_batch = 64;
  rag_schedule.retrieval_servers = 1;
  rag_schedule.retrieval_batch = 1;

  core::Schedule llm_schedule;
  llm_schedule.chain_group = {0};
  llm_schedule.group_chips = {64};
  llm_schedule.chain_batch = {1};
  llm_schedule.decode_chips = 32;
  llm_schedule.decode_batch = 8;  // KV cache limits the batch.
  llm_schedule.retrieval_servers = 1;

  const core::EndToEndPerf rag_perf = rag.Evaluate(rag_schedule);
  const core::EndToEndPerf llm_perf = llm.Evaluate(llm_schedule);
  ASSERT_TRUE(rag_perf.feasible);
  ASSERT_TRUE(llm_perf.feasible);
  // Orders of magnitude, as in the paper (2852x TTFT, 6634x QPS/Chip).
  EXPECT_GT(llm_perf.ttft / rag_perf.ttft, 50.0);
  EXPECT_GT(rag_perf.qps_per_chip / llm_perf.qps_per_chip, 100.0);
}

TEST(Integration, XpuGenerationShiftsRetrievalShare) {
  // Paper Fig. 7a: better accelerators raise the retrieval share.
  auto retrieval_share = [](XpuVersion version) {
    ClusterConfig cluster = DefaultCluster();
    cluster.xpu = MakeXpu(version);
    const core::PipelineModel model(core::MakeHyperscaleSchema(8, 1),
                                    cluster);
    for (const core::StageShare& share : model.TimeBreakdown()) {
      if (share.stage == core::StageType::kRetrieval) {
        return share.fraction;
      }
    }
    return 0.0;
  };
  const double a = retrieval_share(XpuVersion::kA);
  const double c = retrieval_share(XpuVersion::kC);
  EXPECT_GT(c, a);
}

}  // namespace
}  // namespace rago
