/**
 * @file test_telemetry.cc
 * Windowed telemetry, retention ladder, burn-rate alerting, and the
 * flight recorder: rollup math, bounded memory, hysteresis, and the
 * deterministic JSON surfaces.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "common/json_reader.h"

namespace rago {
namespace {

using obs::AlertTransition;
using obs::BurnRateRule;
using obs::FlightRecorder;
using obs::SloAlertEngine;
using obs::SloAlertOptions;
using obs::TelemetryTimeSeries;
using obs::TimeSeriesOptions;
using obs::WindowStats;
using obs::WindowSummary;

TEST(TimeSeriesOptionsTest, ValidateRejectsBadGeometry) {
  TimeSeriesOptions options;
  options.window_seconds = 0.0;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = {};
  options.fold_factor = 1;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = {};
  options.windows_per_level = 2;
  options.fold_factor = 4;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = {};
  options.levels = 0;
  EXPECT_THROW(options.Validate(), ConfigError);
  EXPECT_NO_THROW(TimeSeriesOptions{}.Validate());
}

TEST(TelemetryTimeSeriesTest, RollsEventsIntoTheirWindows) {
  TimeSeriesOptions options;
  options.window_seconds = 1.0;
  TelemetryTimeSeries series(options);

  series.RecordOffered(0.1, true);
  series.RecordOffered(0.2, false);
  series.RecordQueueDepth(0.3, 0, 4);
  series.RecordQueueDepth(0.4, 0, 2);
  series.RecordBusy(0.5, 1, 0.25);
  series.RecordCompletion(0.9, 0.05, 0.01, 0.02, true);
  series.RecordCompletion(1.5, 0.40, 0.09, 0.30, false);
  series.Finish(1.5);

  const auto& fine = series.Level(0);
  ASSERT_EQ(fine.size(), 2u);
  const WindowStats& w0 = fine[0];
  EXPECT_DOUBLE_EQ(w0.start, 0.0);
  EXPECT_DOUBLE_EQ(w0.span, 1.0);
  EXPECT_EQ(w0.offered, 2);
  EXPECT_EQ(w0.admitted, 1);
  EXPECT_EQ(w0.rejected, 1);
  EXPECT_EQ(w0.completed, 1);
  EXPECT_EQ(w0.slo_ok, 1);
  // Terminal events: 1 completion (ok) + 1 rejection -> 1/2.
  EXPECT_DOUBLE_EQ(w0.Attainment(), 0.5);
  ASSERT_EQ(w0.stage_max_queue_depth.size(), 1u);
  EXPECT_EQ(w0.stage_max_queue_depth[0], 4);
  ASSERT_EQ(w0.stage_busy_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(w0.stage_busy_seconds[1], 0.25);
  EXPECT_EQ(w0.ttft.count(), 1);

  const WindowStats& w1 = fine[1];
  EXPECT_DOUBLE_EQ(w1.start, 1.0);
  EXPECT_EQ(w1.completed, 1);
  EXPECT_EQ(w1.slo_ok, 0);
  EXPECT_DOUBLE_EQ(w1.Attainment(), 0.0);
  EXPECT_EQ(series.windows_closed(), 2);
}

TEST(TelemetryTimeSeriesTest, MaterializesEmptyWindowsAcrossIdleGaps) {
  TimeSeriesOptions options;
  options.window_seconds = 1.0;
  TelemetryTimeSeries series(options);
  series.RecordOffered(0.5, true);
  series.RecordOffered(5.5, true);
  series.Finish(5.5);

  const auto& fine = series.Level(0);
  ASSERT_EQ(fine.size(), 6u);
  for (int w = 1; w <= 4; ++w) {
    EXPECT_EQ(fine[static_cast<size_t>(w)].offered, 0) << "window " << w;
    EXPECT_DOUBLE_EQ(fine[static_cast<size_t>(w)].Attainment(), 1.0);
  }
  EXPECT_EQ(fine[0].offered, 1);
  EXPECT_EQ(fine[5].offered, 1);
}

TEST(TelemetryTimeSeriesTest, LadderFoldsExactlyAndStaysBounded) {
  TimeSeriesOptions options;
  options.window_seconds = 1.0;
  options.windows_per_level = 4;
  options.fold_factor = 2;
  options.levels = 3;
  TelemetryTimeSeries series(options);

  // 40 windows, one admitted arrival + one good completion each.
  const int kWindows = 40;
  for (int w = 0; w < kWindows; ++w) {
    const double t = w + 0.5;
    series.RecordOffered(t, true);
    series.RecordCompletion(t, 0.1, 0.01, 0.0, true);
  }
  series.Finish(static_cast<double>(kWindows));

  EXPECT_EQ(series.windows_closed(), kWindows);
  size_t held = 0;
  int64_t offered_retained = 0;
  for (int level = 0; level < options.levels; ++level) {
    const auto& windows = series.Level(level);
    EXPECT_LE(windows.size(),
              static_cast<size_t>(options.windows_per_level))
        << "level " << level;
    held += windows.size();
    double expected_span = options.window_seconds;
    for (int k = 0; k < level; ++k) {
      expected_span *= options.fold_factor;
    }
    for (const WindowStats& window : windows) {
      EXPECT_DOUBLE_EQ(window.span, expected_span) << "level " << level;
      offered_retained += window.offered;
      // Folds merge histograms exactly: one sample per fine window.
      EXPECT_EQ(window.ttft.count(), window.completed);
    }
  }
  EXPECT_EQ(held, series.WindowsHeld());
  EXPECT_LE(series.WindowsHeld(),
            static_cast<size_t>(options.levels * options.windows_per_level) +
                1);
  // Nothing vanished silently: every dropped window left the bottom
  // level, where each coarse window carries fold^(levels-1) fine
  // windows' events (one offered each here).
  int64_t fine_per_dropped = 1;
  for (int k = 1; k < options.levels; ++k) {
    fine_per_dropped *= options.fold_factor;
  }
  EXPECT_EQ(offered_retained + series.windows_dropped() * fine_per_dropped,
            kWindows);
  EXPECT_GT(series.windows_folded(), 0);
  EXPECT_GT(series.windows_dropped(), 0);
}

TEST(TelemetryTimeSeriesTest, MemoryBoundHoldsForLongRuns) {
  TimeSeriesOptions options;
  options.window_seconds = 1.0;
  options.windows_per_level = 8;
  options.fold_factor = 4;
  options.levels = 2;
  TelemetryTimeSeries series(options);
  for (int w = 0; w < 5000; ++w) {
    series.RecordOffered(w + 0.25, true);
  }
  series.Finish(5000.0);
  EXPECT_EQ(series.windows_closed(), 5000);
  EXPECT_LE(series.WindowsHeld(), 8u * 2u + 1u);
  EXPECT_GT(series.windows_dropped(), 0);
}

TEST(TelemetryTimeSeriesTest, DrainClosedHandsWindowsToAlertingOnce) {
  TimeSeriesOptions options;
  options.window_seconds = 1.0;
  TelemetryTimeSeries series(options);
  series.RecordOffered(0.5, true);
  series.RecordCompletion(0.7, 0.1, 0.01, 0.0, false);
  series.AdvanceTo(2.2);  // Closes windows 0 and 1.
  std::vector<WindowSummary> drained = series.DrainClosed();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_DOUBLE_EQ(drained[0].start, 0.0);
  EXPECT_EQ(drained[0].offered, 1);
  EXPECT_EQ(drained[0].completed, 1);
  EXPECT_DOUBLE_EQ(drained[0].attainment, 0.0);
  EXPECT_EQ(drained[1].offered, 0);
  EXPECT_TRUE(series.DrainClosed().empty());
  // Finish closes the in-progress window holding the last event; a
  // never-touched trailing window does not materialize.
  series.RecordOffered(2.3, true);
  series.Finish(2.3);
  EXPECT_EQ(series.DrainClosed().size(), 1u);
}

TEST(TelemetryTimeSeriesTest, JsonExportIsDeterministicAndShaped) {
  TimeSeriesOptions options;
  options.window_seconds = 0.5;
  TelemetryTimeSeries series(options);
  series.RecordOffered(0.1, true);
  series.RecordQueueDepth(0.2, 1, 3);
  series.RecordCompletion(0.4, 0.2, 0.02, 0.1, true);
  series.Finish(0.4);

  const std::string body = series.Json();
  EXPECT_EQ(body, series.Json());  // Byte-stable re-export.

  const JsonValue doc = JsonValue::Parse(body);
  EXPECT_DOUBLE_EQ(doc.At("window_seconds").AsNumber(), 0.5);
  EXPECT_EQ(doc.At("windows_closed").AsNumber(), 1.0);
  EXPECT_EQ(doc.At("num_stages").AsNumber(), 2.0);
  const auto& levels = doc.At("levels").Items();
  ASSERT_EQ(levels.size(), 3u);  // Default ladder depth.
  const auto& windows = levels[0].At("windows").Items();
  ASSERT_EQ(windows.size(), 1u);
  const auto& window = windows[0];
  EXPECT_EQ(window.At("offered").AsNumber(), 1.0);
  EXPECT_EQ(window.At("completed").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(window.At("attainment").AsNumber(), 1.0);
  EXPECT_EQ(window.At("stage_max_queue_depth").Items().size(), 2u);
  EXPECT_GT(window.At("ttft_p50").AsNumber(), 0.0);
}

TEST(TelemetryTimeSeriesTest, RejectsRegressingConfigurationAndTime) {
  TelemetryTimeSeries series;
  series.RecordOffered(1.0, true);
  EXPECT_THROW(series.RecordOffered(-1.0, true), ConfigError);
  series.Finish(1.0);
  EXPECT_THROW(series.RecordOffered(2.0, true), ConfigError);
}

TEST(BurnRateRuleTest, ValidateRejectsDegenerateRules) {
  BurnRateRule rule;
  rule.name = "";
  EXPECT_THROW(rule.Validate(), ConfigError);
  rule = {};
  rule.long_window_seconds = rule.short_window_seconds;
  EXPECT_THROW(rule.Validate(), ConfigError);
  rule = {};
  rule.burn_threshold = 0.0;
  EXPECT_THROW(rule.Validate(), ConfigError);
  rule = {};
  rule.fire_after = 0;
  EXPECT_THROW(rule.Validate(), ConfigError);
  SloAlertOptions options;
  options.attainment_goal = 1.0;
  EXPECT_THROW(options.Validate(), ConfigError);
}

WindowSummary
MakeWindow(double start, int64_t completed, int64_t slo_ok,
           int64_t rejected = 0) {
  WindowSummary window;
  window.start = start;
  window.span = 1.0;
  window.offered = completed + rejected;
  window.admitted = completed;
  window.rejected = rejected;
  window.completed = completed;
  window.slo_ok = slo_ok;
  const int64_t terminal = completed + rejected;
  window.attainment =
      terminal == 0
          ? 1.0
          : static_cast<double>(slo_ok) / static_cast<double>(terminal);
  return window;
}

TEST(SloAlertEngineTest, FiresOnSustainedBurnAndClearsOnRecovery) {
  SloAlertOptions options;
  options.attainment_goal = 0.9;  // Budget: 10% errors.
  BurnRateRule rule;
  rule.name = "page";
  rule.short_window_seconds = 2.0;
  rule.long_window_seconds = 4.0;
  rule.burn_threshold = 1.0;
  rule.fire_after = 2;
  rule.clear_after = 2;
  options.rules = {rule};
  SloAlertEngine engine(options);

  // Four fully-failing windows: burn = 1.0 / 0.1 = 10x budget.
  std::vector<AlertTransition> fired;
  for (int w = 0; w < 4; ++w) {
    auto fresh = engine.Observe(MakeWindow(w, 10, 0));
    fired.insert(fired.end(), fresh.begin(), fresh.end());
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].firing);
  // fire_after = 2: the second breaching evaluation fires, at the end
  // of window 1.
  EXPECT_DOUBLE_EQ(fired[0].time, 2.0);
  EXPECT_DOUBLE_EQ(fired[0].short_burn, 10.0);
  EXPECT_TRUE(engine.Firing(0));

  // Recovery: perfect windows. The short window (2 fine windows) is
  // clean of errors after two good windows; clear_after = 2 more.
  std::vector<AlertTransition> cleared;
  for (int w = 4; w < 10; ++w) {
    auto fresh = engine.Observe(MakeWindow(w, 10, 10));
    cleared.insert(cleared.end(), fresh.begin(), fresh.end());
  }
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].firing);
  EXPECT_FALSE(engine.Firing(0));
  EXPECT_EQ(engine.transitions().size(), 2u);
}

TEST(SloAlertEngineTest, HysteresisSuppressesFlappingSignals) {
  SloAlertOptions options;
  options.attainment_goal = 0.9;
  BurnRateRule rule;
  rule.short_window_seconds = 1.0;  // Covers one fine window.
  rule.long_window_seconds = 3.0;
  rule.burn_threshold = 5.0;
  rule.fire_after = 2;
  options.rules = {rule};
  SloAlertEngine engine(options);

  // Alternating disaster/perfect windows: the short burn flaps above
  // and below threshold, so a 2-consecutive requirement never fires.
  for (int w = 0; w < 12; ++w) {
    const bool bad = (w % 2) == 0;
    engine.Observe(MakeWindow(w, 10, bad ? 0 : 10));
  }
  EXPECT_TRUE(engine.transitions().empty());
  EXPECT_FALSE(engine.Firing(0));
}

TEST(SloAlertEngineTest, EmptyWindowsConsumeNoBudget) {
  SloAlertOptions options;
  options.attainment_goal = 0.5;
  BurnRateRule rule;
  rule.short_window_seconds = 1.5;
  rule.long_window_seconds = 3.0;
  rule.burn_threshold = 1.0;
  options.rules = {rule};
  SloAlertEngine engine(options);
  for (int w = 0; w < 8; ++w) {
    engine.Observe(MakeWindow(w, 0, 0));
  }
  EXPECT_TRUE(engine.transitions().empty());
  EXPECT_DOUBLE_EQ(engine.BurnRate(3.0, 8.0), 0.0);
}

TEST(SloAlertEngineTest, RejectionsBurnBudgetLikeViolations) {
  SloAlertOptions options;
  options.attainment_goal = 0.9;
  BurnRateRule rule;
  rule.short_window_seconds = 1.5;
  rule.long_window_seconds = 3.0;
  rule.burn_threshold = 1.0;
  options.rules = {rule};
  SloAlertEngine engine(options);
  engine.Observe(MakeWindow(0, 0, 0, /*rejected=*/10));
  engine.Observe(MakeWindow(1, 0, 0, /*rejected=*/10));
  engine.Observe(MakeWindow(2, 0, 0, /*rejected=*/10));
  ASSERT_EQ(engine.transitions().size(), 1u);
  EXPECT_TRUE(engine.transitions()[0].firing);
}

TEST(SloAlertEngineTest, JsonListsRulesAndTransitions) {
  SloAlertOptions options;
  options.attainment_goal = 0.9;
  BurnRateRule rule;
  rule.short_window_seconds = 1.0;  // Clears on the first good window.
  rule.long_window_seconds = 3.0;
  rule.burn_threshold = 1.0;
  options.rules = {rule};
  SloAlertEngine engine(options);
  engine.Observe(MakeWindow(0, 10, 0));
  engine.Observe(MakeWindow(1, 10, 10));

  const JsonValue doc = JsonValue::Parse(engine.Json());
  EXPECT_DOUBLE_EQ(doc.At("attainment_goal").AsNumber(), 0.9);
  const auto& rules = doc.At("rules").Items();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].At("name").AsString(), "page");
  const auto& transitions = doc.At("transitions").Items();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_TRUE(transitions[0].At("firing").AsBool());
  EXPECT_FALSE(transitions[1].At("firing").AsBool());
}

TEST(FlightRecorderTest, RingKeepsTheMostRecentAndCountsDrops) {
  FlightRecorder flight(4);
  for (int i = 0; i < 10; ++i) {
    flight.Append(static_cast<double>(i), "note",
                  "entry " + std::to_string(i), i);
  }
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.appended(), 10);
  EXPECT_EQ(flight.dropped(), 6);
  EXPECT_EQ(flight.records().front().message, "entry 6");
  EXPECT_EQ(flight.records().back().message, "entry 9");
  EXPECT_THROW(FlightRecorder(0), ConfigError);
}

TEST(FlightRecorderTest, JsonAndFileDumpsAreLoadable) {
  FlightRecorder flight(8);
  flight.Append(1.5, "alert", "page FIRING", 12.5);
  const JsonValue doc = JsonValue::Parse(flight.Json());
  EXPECT_EQ(doc.At("appended").AsNumber(), 1.0);
  EXPECT_EQ(doc.At("dropped").AsNumber(), 0.0);
  const auto& records = doc.At("records").Items();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].At("kind").AsString(), "alert");
  EXPECT_DOUBLE_EQ(records[0].At("value").AsNumber(), 12.5);

  const std::string path = "test_flight_recorder_dump.json";
  flight.DumpToFile(path);
  const JsonValue from_file = ParseJsonFile(path);
  EXPECT_EQ(from_file.At("records").Items().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rago
