/**
 * @file test_serving_sim.cc
 * Tests for the trace-driven serving simulator, including the key
 * validation property: the DES and the analytical pipeline model must
 * agree at the operating points the closed form describes.
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "sim/serving_sim.h"
#include "tests/testing/test_support.h"

namespace rago::sim {
namespace {

core::Schedule SimpleSchedule(const core::PipelineModel& model,
                              int group_chips, int decode_chips,
                              int64_t batch, int64_t decode_batch) {
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {group_chips};
  schedule.chain_batch.assign(model.chain().size(), batch);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = decode_batch;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = batch;
  return schedule;
}

TEST(ServingSim, Traces) {
  const ArrivalTrace uniform = UniformTrace(10, 100.0);
  EXPECT_EQ(uniform.arrivals.size(), 10u);
  EXPECT_DOUBLE_EQ(uniform.arrivals[1] - uniform.arrivals[0], 0.01);

  const ArrivalTrace poisson = PoissonTrace(1000, 50.0, 7);
  EXPECT_EQ(poisson.arrivals.size(), 1000u);
  for (size_t i = 1; i < poisson.arrivals.size(); ++i) {
    EXPECT_GE(poisson.arrivals[i], poisson.arrivals[i - 1]);
  }
  // Mean rate close to 50 QPS.
  EXPECT_NEAR(1000.0 / poisson.arrivals.back(), 50.0, 5.0);

  const ArrivalTrace burst = BurstTrace(16);
  EXPECT_DOUBLE_EQ(burst.arrivals.back(), 0.0);

  EXPECT_THROW(UniformTrace(0, 1.0), rago::ConfigError);
}

TEST(ServingSim, AllRequestsComplete) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const ServingSimResult result =
      SimulateServing(model, schedule, PoissonTrace(200, 100.0, 3));
  EXPECT_EQ(result.completed, 200);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GT(result.avg_ttft, 0.0);
  EXPECT_GE(result.p99_ttft, result.avg_ttft);
}

TEST(ServingSim, PercentilesOrderedAndPopulated) {
  // TTFT/TPOT percentiles flow through the shared histogram; they must
  // be ordered and consistent with the means.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const ServingSimResult result =
      SimulateServing(model, schedule, PoissonTrace(400, 150.0, 5));
  EXPECT_GT(result.p50_ttft, 0.0);
  EXPECT_LE(result.p50_ttft, result.p95_ttft);
  EXPECT_LE(result.p95_ttft, result.p99_ttft);
  EXPECT_LE(result.p50_ttft, result.avg_ttft * 2.0);
  EXPECT_GT(result.p50_tpot, 0.0);
  EXPECT_LE(result.p50_tpot, result.p95_tpot);
  EXPECT_LE(result.p95_tpot, result.p99_tpot);
}

TEST(ServingSim, RejectsNegativeBatchTimeout) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  ServingSimOptions options;
  options.batch_timeout = -0.01;
  EXPECT_THROW(
      SimulateServing(model, schedule, UniformTrace(10, 5.0), options),
      rago::ConfigError);
}

TEST(ServingSim, LowLoadTtftApproachesAnalyticalLatency) {
  // One request at a time: no queueing, so TTFT ~= sum of stage
  // latencies plus at most the batch-forming timeout per stage.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 1, 16);
  const core::EndToEndPerf analytic = model.Evaluate(schedule);
  ASSERT_TRUE(analytic.feasible);
  const ServingSimResult result =
      SimulateServing(model, schedule, UniformTrace(50, 2.0));
  RAGO_EXPECT_REL_NEAR(result.avg_ttft, analytic.ttft, 0.25);
}

TEST(ServingSim, SaturationThroughputMatchesAnalyticalQps) {
  // Offered load far above capacity: the measured completion rate must
  // approach the analytical min-stage throughput.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 16, 16, 16, 256);
  const core::EndToEndPerf analytic = model.Evaluate(schedule);
  ASSERT_TRUE(analytic.feasible);
  const ServingSimResult result = SimulateServing(
      model, schedule, UniformTrace(3000, analytic.qps * 5.0));
  EXPECT_NEAR(result.throughput / analytic.qps, 1.0, 0.20);
}

TEST(ServingSim, ThroughputCappedByOfferedLoad) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 16, 16, 4, 64);
  const core::EndToEndPerf analytic = model.Evaluate(schedule);
  const double offered = analytic.qps * 0.3;
  const ServingSimResult result =
      SimulateServing(model, schedule, UniformTrace(500, offered));
  EXPECT_LE(result.throughput, offered * 1.1);
  RAGO_EXPECT_REL_NEAR(result.throughput, offered, 0.1);
}

TEST(ServingSim, UtilizationBoundedAndBottleneckHighest) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 16, 16, 16, 256);
  const core::EndToEndPerf analytic = model.Evaluate(schedule);
  const ServingSimResult result = SimulateServing(
      model, schedule, UniformTrace(2000, analytic.qps * 3.0));
  for (double u : result.group_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.01);
  }
  EXPECT_LE(result.retrieval_utilization, 1.01);
  EXPECT_LE(result.decode_utilization, 1.01);
}

TEST(ServingSim, BurstBenefitsFromMicroBatching) {
  // Same burst, micro-batched vs monolithic pre-decode batching: the
  // micro-batched schedule should deliver lower average TTFT, echoing
  // BurstAverageTtft and paper Fig. 19.
  const core::PipelineModel model(
      core::MakeLongContextSchema(8, 1'000'000), DefaultCluster());
  const core::Schedule micro = SimpleSchedule(model, 32, 8, 2, 64);
  const core::Schedule mono = SimpleSchedule(model, 32, 8, 32, 64);
  ServingSimOptions options;
  options.batch_timeout = 10.0;  // Force full batches.
  const ServingSimResult micro_result =
      SimulateServing(model, micro, BurstTrace(32), options);
  const ServingSimResult mono_result =
      SimulateServing(model, mono, BurstTrace(32), options);
  EXPECT_LT(micro_result.avg_ttft, mono_result.avg_ttft);
}

TEST(ServingSim, MultiGroupPipelineRuns) {
  const core::PipelineModel model(core::MakeRewriterRerankerSchema(8),
                                  DefaultCluster());
  core::Schedule schedule;
  schedule.chain_group = {0, 0, 1, 1};
  schedule.group_chips = {4, 16};
  schedule.chain_batch = {4, 4, 4, 4};
  schedule.decode_chips = 16;
  schedule.decode_batch = 64;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = 4;
  const ServingSimResult result =
      SimulateServing(model, schedule, PoissonTrace(200, 50.0, 11));
  EXPECT_EQ(result.completed, 200);
  ASSERT_EQ(result.group_utilization.size(), 2u);
}

TEST(ServingSim, RejectsIterativeSchemas) {
  const core::PipelineModel model(core::MakeIterativeSchema(8, 4),
                                  DefaultCluster());
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  EXPECT_THROW(SimulateServing(model, schedule, BurstTrace(4)),
               rago::ConfigError);
}

TEST(ServingSim, DeterministicForIdenticalInputs) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const ArrivalTrace trace = PoissonTrace(100, 80.0, 13);
  const ServingSimResult a = SimulateServing(model, schedule, trace);
  const ServingSimResult b = SimulateServing(model, schedule, trace);
  EXPECT_DOUBLE_EQ(a.avg_ttft, b.avg_ttft);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace rago::sim
