/**
 * @file test_hardware.cc
 * Tests for the hardware specifications (paper Table 2 and §4).
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/units.h"
#include "hardware/cluster.h"
#include "hardware/cpu_server.h"
#include "hardware/xpu.h"

namespace rago {
namespace {

TEST(Xpu, Table2SpecsMatchPaper) {
  const XpuSpec a = MakeXpu(XpuVersion::kA);
  EXPECT_EQ(a.name, "XPU-A");
  EXPECT_DOUBLE_EQ(a.peak_flops, 197e12);
  EXPECT_DOUBLE_EQ(a.hbm_bytes, 16 * kGiB);
  EXPECT_DOUBLE_EQ(a.hbm_bw, 819e9);
  EXPECT_DOUBLE_EQ(a.ici_bw, 200e9);

  const XpuSpec b = MakeXpu(XpuVersion::kB);
  EXPECT_DOUBLE_EQ(b.peak_flops, 275e12);
  EXPECT_DOUBLE_EQ(b.hbm_bytes, 32 * kGiB);

  const XpuSpec c = MakeXpu(XpuVersion::kC);
  EXPECT_DOUBLE_EQ(c.peak_flops, 459e12);
  EXPECT_DOUBLE_EQ(c.hbm_bytes, 96 * kGiB);
  EXPECT_DOUBLE_EQ(c.hbm_bw, 2765e9);
  EXPECT_DOUBLE_EQ(c.ici_bw, 600e9);
}

TEST(Xpu, GenerationsStrictlyImprove) {
  const XpuSpec a = MakeXpu(XpuVersion::kA);
  const XpuSpec b = MakeXpu(XpuVersion::kB);
  const XpuSpec c = MakeXpu(XpuVersion::kC);
  EXPECT_LT(a.peak_flops, b.peak_flops);
  EXPECT_LT(b.peak_flops, c.peak_flops);
  EXPECT_LT(a.hbm_bw, b.hbm_bw);
  EXPECT_LT(b.hbm_bw, c.hbm_bw);
}

TEST(Xpu, EffectiveRatesApplyDerates) {
  const XpuSpec c = DefaultXpu();
  EXPECT_DOUBLE_EQ(c.EffectiveFlops(), c.peak_flops * c.flops_efficiency);
  EXPECT_DOUBLE_EQ(c.EffectiveMemBw(), c.hbm_bw * c.mem_efficiency);
  EXPECT_DOUBLE_EQ(c.EffectiveNetBw(), c.ici_bw * c.net_efficiency);
  EXPECT_LT(c.EffectiveFlops(), c.peak_flops);
}

TEST(CpuServer, PaperCalibrationDefaults) {
  const CpuServerSpec server = DefaultCpuServer();
  EXPECT_EQ(server.cores, 96);
  EXPECT_DOUBLE_EQ(server.dram_bytes, 384 * kGiB);
  EXPECT_DOUBLE_EQ(server.mem_bw, 460e9);
  EXPECT_DOUBLE_EQ(server.scan_bytes_per_core, 18e9);
}

TEST(CpuServer, ScanThroughputSaturatesAtCoreCount) {
  const CpuServerSpec server = DefaultCpuServer();
  EXPECT_DOUBLE_EQ(server.ScanThroughput(1), 18e9);
  EXPECT_DOUBLE_EQ(server.ScanThroughput(10), 180e9);
  EXPECT_DOUBLE_EQ(server.ScanThroughput(96), server.ScanThroughput(200));
}

TEST(Cluster, DefaultsMatchPaperSetup) {
  const ClusterConfig cluster = DefaultCluster();
  EXPECT_EQ(cluster.num_servers, 16);
  EXPECT_EQ(cluster.xpus_per_server, 4);
  EXPECT_EQ(cluster.TotalXpus(), 64);
  EXPECT_NO_THROW(cluster.Validate());

  const ClusterConfig large = LargeCluster();
  EXPECT_EQ(large.TotalXpus(), 128);
}

TEST(Cluster, HostDramFitsPaperDatabaseAtSixteenServers) {
  // 64B vectors x 96 B = 5.59 TiB quantized; 16 x 384 GiB = 6 TiB.
  const ClusterConfig cluster = DefaultCluster();
  const double db_bytes = 64e9 * 96.0;
  EXPECT_GT(cluster.TotalHostDram(), db_bytes);
  // 14 servers would not be enough.
  ClusterConfig small = cluster;
  small.num_servers = 14;
  EXPECT_LT(small.TotalHostDram(), db_bytes);
}

TEST(Cluster, ValidateRejectsDegenerateConfigs) {
  ClusterConfig cluster = DefaultCluster();
  cluster.num_servers = 0;
  EXPECT_THROW(cluster.Validate(), ConfigError);
  cluster = DefaultCluster();
  cluster.xpus_per_server = 0;
  EXPECT_THROW(cluster.Validate(), ConfigError);
  cluster = DefaultCluster();
  cluster.xpu.peak_flops = 0;
  EXPECT_THROW(cluster.Validate(), ConfigError);
}

}  // namespace
}  // namespace rago
