/**
 * @file test_determinism.cc
 * Determinism regression tests: identical seeds must yield bitwise
 * identical results across independent runs AND across thread counts,
 * now that the optimizer search and the sharded scatter-gather run on
 * the shared thread pool.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/pipeline_model.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/serving/sharded_index.h"
#include "sim/iterative_sim.h"
#include "tests/testing/test_support.h"

namespace rago {
namespace {

using rago::testing::CopyMatrix;
using rago::testing::SmallSearchGrid;

TEST(Determinism, RngStreamsReproduceFromSeed) {
  Rng a(rago::testing::kDefaultSeed);
  Rng b(rago::testing::kDefaultSeed);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "diverged at draw " << i;
  }
  // Distinct seeds must produce distinct streams.
  Rng c(1);
  Rng d(2);
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    any_difference |= (c.NextU64() != d.NextU64());
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, OptimizerSearchIsRunToRunIdentical) {
  // Two independent optimizer searches over the same model must emit
  // identical Pareto frontiers — exact equality, not tolerance.
  const core::PipelineModel model(
      rago::testing::TinyLongContextSchema(1'000'000), DefaultCluster());
  const opt::OptimizerResult first =
      opt::Optimizer(model, SmallSearchGrid()).Search();
  const opt::OptimizerResult second =
      opt::Optimizer(model, SmallSearchGrid()).Search();
  ASSERT_FALSE(first.pareto.empty());
  ASSERT_EQ(first.pareto.size(), second.pareto.size());
  EXPECT_EQ(first.schedules_evaluated, second.schedules_evaluated);
  EXPECT_EQ(first.schedules_feasible, second.schedules_feasible);
  for (size_t i = 0; i < first.pareto.size(); ++i) {
    const opt::ScheduledPoint& x = first.pareto[i];
    const opt::ScheduledPoint& y = second.pareto[i];
    EXPECT_EQ(x.perf.ttft, y.perf.ttft);
    EXPECT_EQ(x.perf.qps_per_chip, y.perf.qps_per_chip);
    EXPECT_EQ(x.schedule.decode_chips, y.schedule.decode_chips);
    EXPECT_EQ(x.schedule.decode_batch, y.schedule.decode_batch);
    EXPECT_EQ(x.schedule.group_chips, y.schedule.group_chips);
    EXPECT_EQ(x.schedule.chain_batch, y.schedule.chain_batch);
    EXPECT_EQ(x.schedule.chain_group, y.schedule.chain_group);
  }
}

/// Full structural + metric equality of two optimizer results.
void ExpectIdenticalResults(const opt::OptimizerResult& expected,
                            const opt::OptimizerResult& actual,
                            const std::string& label) {
  EXPECT_EQ(expected.schedules_evaluated, actual.schedules_evaluated)
      << label;
  EXPECT_EQ(expected.schedules_feasible, actual.schedules_feasible)
      << label;
  ASSERT_EQ(expected.pareto.size(), actual.pareto.size()) << label;
  for (size_t i = 0; i < expected.pareto.size(); ++i) {
    const opt::ScheduledPoint& x = expected.pareto[i];
    const opt::ScheduledPoint& y = actual.pareto[i];
    EXPECT_EQ(x.perf.ttft, y.perf.ttft) << label << " point " << i;
    EXPECT_EQ(x.perf.qps, y.perf.qps) << label << " point " << i;
    EXPECT_EQ(x.perf.qps_per_chip, y.perf.qps_per_chip)
        << label << " point " << i;
    EXPECT_TRUE(x.schedule == y.schedule) << label << " point " << i;
  }
  ASSERT_EQ(expected.plan_frontiers.size(), actual.plan_frontiers.size())
      << label;
  for (size_t p = 0; p < expected.plan_frontiers.size(); ++p) {
    const opt::PlanFrontier& px = expected.plan_frontiers[p];
    const opt::PlanFrontier& py = actual.plan_frontiers[p];
    EXPECT_EQ(px.plan_label, py.plan_label) << label;
    ASSERT_EQ(px.points.size(), py.points.size())
        << label << " plan " << px.plan_label;
    for (size_t i = 0; i < px.points.size(); ++i) {
      EXPECT_EQ(px.points[i].perf.ttft, py.points[i].perf.ttft) << label;
      EXPECT_EQ(px.points[i].perf.qps_per_chip,
                py.points[i].perf.qps_per_chip)
          << label;
      EXPECT_TRUE(px.points[i].schedule == py.points[i].schedule) << label;
    }
  }
}

TEST(Determinism, OptimizerFrontierIsThreadCountInvariant) {
  // The parallel search partitions enumeration arbitrarily across
  // workers; the merged frontier (points, schedules, plan frontiers,
  // counters) must be bit-identical to the serial run for every thread
  // count — the contract the figure benches and DES sweeps rely on.
  const core::PipelineModel model(
      rago::testing::TinyLongContextSchema(1'000'000), DefaultCluster());
  opt::SearchOptions options = SmallSearchGrid();
  options.keep_plan_frontiers = true;
  options.num_threads = 1;
  const opt::OptimizerResult serial = opt::Optimizer(model, options).Search();
  ASSERT_FALSE(serial.pareto.empty());
  ASSERT_FALSE(serial.plan_frontiers.empty());
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const opt::OptimizerResult parallel =
        opt::Optimizer(model, options).Search();
    ExpectIdenticalResults(serial, parallel,
                           "threads=" + std::to_string(threads));
  }
}

TEST(Determinism, OptimizerPlacementFilterThreadCountInvariant) {
  // placement_filter + keep_plan_frontiers narrows the task partition
  // to one subtree; invariance must hold there too.
  const core::PipelineModel model(
      rago::testing::TinyLongContextSchema(1'000'000), DefaultCluster());
  opt::SearchOptions options = SmallSearchGrid();
  options.keep_plan_frontiers = true;
  options.placement_filter = 1;  // [encode][prefix] disaggregated.
  options.num_threads = 1;
  const opt::OptimizerResult serial = opt::Optimizer(model, options).Search();
  ASSERT_FALSE(serial.pareto.empty());
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const opt::OptimizerResult parallel =
        opt::Optimizer(model, options).Search();
    ExpectIdenticalResults(
        serial, parallel,
        "filtered threads=" + std::to_string(threads));
  }
}

TEST(Determinism, IterativeOptimizerThreadCountInvariant) {
  // Case III exercises the ingest-table path of the parallel profiler.
  const core::PipelineModel model(rago::testing::TinyIterativeSchema(4),
                                  DefaultCluster());
  opt::SearchOptions options = SmallSearchGrid();
  options.num_threads = 1;
  const opt::OptimizerResult serial = opt::Optimizer(model, options).Search();
  ASSERT_FALSE(serial.pareto.empty());
  for (int threads : {2, 8}) {
    options.num_threads = threads;
    ExpectIdenticalResults(serial, opt::Optimizer(model, options).Search(),
                           "iterative threads=" + std::to_string(threads));
  }
}

TEST(Determinism, ShardedSearchIsThreadCountInvariant) {
  // (shard x query-block) decomposition with the owned pool: merged
  // results and scan-byte accounting must not depend on num_threads.
  using rago::serving::ShardedIndex;
  using rago::serving::ShardedIndexOptions;
  using rago::serving::ShardSearchStats;
  const rago::testing::AnnTestBed bed =
      rago::testing::MakeAnnTestBed(1200, 8, 37);
  ShardedIndexOptions options;
  options.num_shards = 3;
  options.query_block = 8;  // 37 queries -> 5 blocks incl. a ragged tail.
  options.backend = rago::serving::ShardBackend::kIvfPq;
  options.ivfpq.nlist = 8;
  options.nprobe = 4;
  options.rerank = 16;
  options.seed = 21;

  options.num_threads = 1;
  const ShardedIndex serial_index(CopyMatrix(bed.data), options);
  ShardSearchStats serial_stats;
  const auto serial =
      serial_index.SearchBatch(bed.queries, 9, nullptr, &serial_stats);

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    const ShardedIndex index(CopyMatrix(bed.data), options);
    ShardSearchStats stats;
    const auto actual = index.SearchBatch(bed.queries, 9, nullptr, &stats);
    ASSERT_EQ(actual.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      ASSERT_EQ(actual[q].size(), serial[q].size()) << "query " << q;
      for (size_t i = 0; i < serial[q].size(); ++i) {
        EXPECT_EQ(actual[q][i].id, serial[q][i].id);
        EXPECT_EQ(actual[q][i].dist, serial[q][i].dist);
      }
    }
    ASSERT_EQ(stats.shards.size(), serial_stats.shards.size());
    for (size_t s = 0; s < stats.shards.size(); ++s) {
      EXPECT_EQ(stats.shards[s].rows, serial_stats.shards[s].rows);
      EXPECT_EQ(stats.shards[s].scan_bytes,
                serial_stats.shards[s].scan_bytes)
          << "scan-byte accounting drifted on shard " << s;
    }
  }
}

TEST(Determinism, IterativeSimReproducesFromSeed) {
  sim::IterativeSimConfig config;
  config.decode_batch = 16;
  config.iterative_batch = 4;
  config.decode_tokens = 64;
  config.retrievals_per_sequence = 3;
  config.round_latency = 2.0;
  config.num_sequences = 64;
  config.seed = rago::testing::kDefaultSeed;
  const sim::IterativeSimResult first = sim::SimulateIterativeDecode(config);
  const sim::IterativeSimResult second = sim::SimulateIterativeDecode(config);
  EXPECT_EQ(first.avg_tpot, second.avg_tpot);
  EXPECT_EQ(first.worst_tpot, second.worst_tpot);
  EXPECT_EQ(first.total_time, second.total_time);
  EXPECT_EQ(first.rounds_executed, second.rounds_executed);
  EXPECT_EQ(first.flushed_rounds, second.flushed_rounds);
}

TEST(Determinism, AnnBuildAndSearchReproduceFromSeed) {
  auto run = [] {
    Rng rng(rago::testing::kDefaultSeed);
    ann::Matrix data = ann::GenClustered(800, 8, 16, 0.3f, rng);
    ann::Matrix queries = ann::GenQueriesNear(data, 8, 0.1f, rng);
    ann::IvfOptions options;
    options.nlist = 8;
    Rng build_rng(rago::testing::kDefaultSeed + 1);
    const ann::IvfIndex index(CopyMatrix(data), ann::Metric::kL2, options,
                              build_rng);
    std::vector<std::vector<ann::Neighbor>> results;
    for (size_t q = 0; q < queries.rows(); ++q) {
      results.push_back(index.Search(queries.Row(q), 5, /*nprobe=*/2));
    }
    return results;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t q = 0; q < first.size(); ++q) {
    ASSERT_EQ(first[q].size(), second[q].size());
    for (size_t i = 0; i < first[q].size(); ++i) {
      EXPECT_EQ(first[q][i].id, second[q][i].id);
      EXPECT_EQ(first[q][i].dist, second[q][i].dist);
    }
  }
}

}  // namespace
}  // namespace rago
