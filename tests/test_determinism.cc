/**
 * @file test_determinism.cc
 * Determinism regression tests: identical seeds must yield bitwise
 * identical results across independent runs. Guards future
 * parallelization of the optimizer search and the simulators.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/pipeline_model.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/ivf_index.h"
#include "sim/iterative_sim.h"
#include "tests/testing/test_support.h"

namespace rago {
namespace {

using rago::testing::CopyMatrix;
using rago::testing::SmallSearchGrid;

TEST(Determinism, RngStreamsReproduceFromSeed) {
  Rng a(rago::testing::kDefaultSeed);
  Rng b(rago::testing::kDefaultSeed);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "diverged at draw " << i;
  }
  // Distinct seeds must produce distinct streams.
  Rng c(1);
  Rng d(2);
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    any_difference |= (c.NextU64() != d.NextU64());
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, OptimizerSearchIsRunToRunIdentical) {
  // Two independent optimizer searches over the same model must emit
  // identical Pareto frontiers — exact equality, not tolerance.
  const core::PipelineModel model(
      rago::testing::TinyLongContextSchema(1'000'000), DefaultCluster());
  const opt::OptimizerResult first =
      opt::Optimizer(model, SmallSearchGrid()).Search();
  const opt::OptimizerResult second =
      opt::Optimizer(model, SmallSearchGrid()).Search();
  ASSERT_FALSE(first.pareto.empty());
  ASSERT_EQ(first.pareto.size(), second.pareto.size());
  EXPECT_EQ(first.schedules_evaluated, second.schedules_evaluated);
  EXPECT_EQ(first.schedules_feasible, second.schedules_feasible);
  for (size_t i = 0; i < first.pareto.size(); ++i) {
    const opt::ScheduledPoint& x = first.pareto[i];
    const opt::ScheduledPoint& y = second.pareto[i];
    EXPECT_EQ(x.perf.ttft, y.perf.ttft);
    EXPECT_EQ(x.perf.qps_per_chip, y.perf.qps_per_chip);
    EXPECT_EQ(x.schedule.decode_chips, y.schedule.decode_chips);
    EXPECT_EQ(x.schedule.decode_batch, y.schedule.decode_batch);
    EXPECT_EQ(x.schedule.group_chips, y.schedule.group_chips);
    EXPECT_EQ(x.schedule.chain_batch, y.schedule.chain_batch);
    EXPECT_EQ(x.schedule.chain_group, y.schedule.chain_group);
  }
}

TEST(Determinism, IterativeSimReproducesFromSeed) {
  sim::IterativeSimConfig config;
  config.decode_batch = 16;
  config.iterative_batch = 4;
  config.decode_tokens = 64;
  config.retrievals_per_sequence = 3;
  config.round_latency = 2.0;
  config.num_sequences = 64;
  config.seed = rago::testing::kDefaultSeed;
  const sim::IterativeSimResult first = sim::SimulateIterativeDecode(config);
  const sim::IterativeSimResult second = sim::SimulateIterativeDecode(config);
  EXPECT_EQ(first.avg_tpot, second.avg_tpot);
  EXPECT_EQ(first.worst_tpot, second.worst_tpot);
  EXPECT_EQ(first.total_time, second.total_time);
  EXPECT_EQ(first.rounds_executed, second.rounds_executed);
  EXPECT_EQ(first.flushed_rounds, second.flushed_rounds);
}

TEST(Determinism, AnnBuildAndSearchReproduceFromSeed) {
  auto run = [] {
    Rng rng(rago::testing::kDefaultSeed);
    ann::Matrix data = ann::GenClustered(800, 8, 16, 0.3f, rng);
    ann::Matrix queries = ann::GenQueriesNear(data, 8, 0.1f, rng);
    ann::IvfOptions options;
    options.nlist = 8;
    Rng build_rng(rago::testing::kDefaultSeed + 1);
    const ann::IvfIndex index(CopyMatrix(data), ann::Metric::kL2, options,
                              build_rng);
    std::vector<std::vector<ann::Neighbor>> results;
    for (size_t q = 0; q < queries.rows(); ++q) {
      results.push_back(index.Search(queries.Row(q), 5, /*nprobe=*/2));
    }
    return results;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t q = 0; q < first.size(); ++q) {
    ASSERT_EQ(first[q].size(), second[q].size());
    for (size_t i = 0; i < first[q].size(); ++i) {
      EXPECT_EQ(first[q][i].id, second[q][i].id);
      EXPECT_EQ(first[q][i].dist, second[q][i].dist);
    }
  }
}

}  // namespace
}  // namespace rago
