/**
 * @file test_runtime.cc
 * Tests for the online serving runtime and its workload scenario
 * library: determinism across thread counts (bit-identical outcomes
 * and telemetry), bounded runtime-vs-DES disagreement on the operating
 * points both engines describe, SLO-attainment monotonicity under
 * rising offered load, trace-file round-trips, and option validation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "core/pipeline_model.h"
#include "hardware/cluster.h"
#include "hardware/cpu_server.h"
#include "rago/optimizer.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/serving/sharded_index.h"
#include "common/json_reader.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/runtime/runtime.h"
#include "serving/runtime/workload.h"
#include "sim/serving_sim.h"
#include "tests/testing/test_support.h"

namespace rago::runtime {
namespace {

core::Schedule SimpleSchedule(const core::PipelineModel& model,
                              int group_chips, int decode_chips,
                              int64_t batch, int64_t decode_batch) {
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {group_chips};
  schedule.chain_batch.assign(model.chain().size(), batch);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = decode_batch;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = batch;
  return schedule;
}

/// Small live retrieval tier + query pool shared by the tests.
struct LiveTier {
  serving::ShardedIndex index;
  ann::Matrix queries;
};

LiveTier MakeLiveTier(serving::ShardBackend backend =
                          serving::ShardBackend::kFlat) {
  Rng rng(91);
  ann::Matrix data = ann::GenClustered(2000, 16, 16, 0.3f, rng);
  ann::Matrix queries = ann::GenQueriesNear(data, 64, 0.1f, rng);
  serving::ShardedIndexOptions options;
  options.num_shards = 3;
  options.backend = backend;
  options.num_threads = 1;  // The runtime's pool drives parallelism.
  return LiveTier{serving::ShardedIndex(std::move(data), options),
                  std::move(queries)};
}

// ---------------------------------------------------------------------------
// Workload scenario library
// ---------------------------------------------------------------------------

TEST(Workload, MmppTraceIsSeededBurstyAndRateConsistent) {
  MmppOptions options;
  options.quiet_qps = 40.0;
  options.burst_qps = 400.0;
  options.mean_quiet_seconds = 1.0;
  options.mean_burst_seconds = 0.25;
  const ArrivalTrace trace = MmppTrace(4000, options, 5);
  ASSERT_EQ(trace.arrivals.size(), 4000u);
  for (size_t i = 1; i < trace.arrivals.size(); ++i) {
    EXPECT_GE(trace.arrivals[i], trace.arrivals[i - 1]);
  }
  // Long-run rate within 20% of the dwell-weighted mean.
  RAGO_EXPECT_REL_NEAR(OfferedQps(trace), options.MeanQps(), 0.20);
  // Same seed reproduces the trace bit-exactly; another seed does not.
  const ArrivalTrace again = MmppTrace(4000, options, 5);
  EXPECT_EQ(trace.arrivals, again.arrivals);
  const ArrivalTrace other = MmppTrace(4000, options, 6);
  EXPECT_NE(trace.arrivals, other.arrivals);
}

TEST(Workload, DiurnalTraceOscillatesAroundMeanRate) {
  DiurnalOptions options;
  options.mean_qps = 80.0;
  options.period_seconds = 10.0;
  options.amplitude = 0.9;
  const ArrivalTrace trace = DiurnalTrace(6000, options, 7);
  for (size_t i = 1; i < trace.arrivals.size(); ++i) {
    EXPECT_GE(trace.arrivals[i], trace.arrivals[i - 1]);
  }
  RAGO_EXPECT_REL_NEAR(OfferedQps(trace), options.mean_qps, 0.20);
  // The peak window must be visibly denser than the trough window:
  // count arrivals in the first quarter-period vs the third.
  int peak = 0;
  int trough = 0;
  for (double t : trace.arrivals) {
    const double phase = std::fmod(t, options.period_seconds) /
                         options.period_seconds;
    if (phase < 0.25) {
      ++peak;
    } else if (phase >= 0.5 && phase < 0.75) {
      ++trough;
    }
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(Workload, TraceFileRoundTripsBitExactly) {
  const std::string path =
      ::testing::TempDir() + "/rago_roundtrip.trace";
  for (const ArrivalTrace& trace :
       {PoissonTrace(500, 73.0, 11),
        MmppTrace(300, MmppOptions{}, 13),
        BurstTrace(32)}) {
    SaveTrace(trace, path);
    const ArrivalTrace loaded = LoadTrace(path);
    ASSERT_EQ(loaded.arrivals.size(), trace.arrivals.size());
    for (size_t i = 0; i < trace.arrivals.size(); ++i) {
      EXPECT_EQ(loaded.arrivals[i], trace.arrivals[i]) << "index " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(Workload, ZipfianStreamIsSeededAndSkewed) {
  const QueryStream stream = ZipfianQueryStream(5000, 100, 1.1, 9);
  ASSERT_EQ(stream.rows.size(), 5000u);
  for (int64_t row : stream.rows) {
    EXPECT_GE(row, 0);
    EXPECT_LT(row, 100);
  }
  // Fixed seed reproduces the stream bit-exactly; another seed and
  // another skew both perturb it.
  EXPECT_EQ(stream.rows, ZipfianQueryStream(5000, 100, 1.1, 9).rows);
  EXPECT_NE(stream.rows, ZipfianQueryStream(5000, 100, 1.1, 10).rows);
  EXPECT_NE(stream.rows, ZipfianQueryStream(5000, 100, 0.5, 9).rows);

  // Skewed popularity: the head row dominates far beyond its uniform
  // share; at skew 0 it stays near 1/pool.
  auto head_count = [](const QueryStream& s) {
    int count = 0;
    for (int64_t row : s.rows) {
      count += row == 0 ? 1 : 0;
    }
    return count;
  };
  EXPECT_GT(head_count(stream), 500);  // Uniform share would be ~50.
  const QueryStream uniform = ZipfianQueryStream(5000, 100, 0.0, 9);
  EXPECT_LT(head_count(uniform), 150);
}

TEST(Workload, RepeatNeighborStreamIsSeededAndRepeats) {
  RepeatNeighborOptions options;
  options.repeat_probability = 0.8;
  options.window = 16;
  const QueryStream stream =
      RepeatNeighborQueryStream(2000, 500, options, 21);
  ASSERT_EQ(stream.rows.size(), 2000u);
  for (int64_t row : stream.rows) {
    EXPECT_GE(row, 0);
    EXPECT_LT(row, 500);
  }
  EXPECT_EQ(stream.rows,
            RepeatNeighborQueryStream(2000, 500, options, 21).rows);
  EXPECT_NE(stream.rows,
            RepeatNeighborQueryStream(2000, 500, options, 22).rows);
  // Repeats must actually repeat: most requests re-ask a recent row.
  int repeats = 0;
  for (size_t i = 1; i < stream.rows.size(); ++i) {
    const size_t window_start =
        i >= static_cast<size_t>(options.window)
            ? i - static_cast<size_t>(options.window)
            : 0;
    for (size_t j = window_start; j < i; ++j) {
      if (stream.rows[j] == stream.rows[i]) {
        ++repeats;
        break;
      }
    }
  }
  EXPECT_GT(repeats, 1400);  // ~80% of 2000, minus fresh collisions.

  // The repeat-only limit collapses the stream onto its first row.
  options.repeat_probability = 1.0;
  const QueryStream collapsed =
      RepeatNeighborQueryStream(200, 500, options, 23);
  for (int64_t row : collapsed.rows) {
    EXPECT_EQ(row, collapsed.rows.front());
  }
}

TEST(Workload, QueryStreamsRejectInvalidOptions) {
  EXPECT_THROW(ZipfianQueryStream(0, 100, 1.0, 0), ConfigError);
  EXPECT_THROW(ZipfianQueryStream(10, 0, 1.0, 0), ConfigError);
  EXPECT_THROW(ZipfianQueryStream(10, 100, -0.5, 0), ConfigError);
  RepeatNeighborOptions options;
  options.repeat_probability = 1.5;
  EXPECT_THROW(RepeatNeighborQueryStream(10, 100, options, 0),
               ConfigError);
  options = RepeatNeighborOptions{};
  options.window = 0;
  EXPECT_THROW(RepeatNeighborQueryStream(10, 100, options, 0),
               ConfigError);
  EXPECT_THROW(RepeatNeighborQueryStream(0, 100, RepeatNeighborOptions{},
                                         0),
               ConfigError);
}

TEST(Workload, RejectsInvalidOptionsAndFiles) {
  EXPECT_THROW(UniformTrace(0, 10.0), ConfigError);
  EXPECT_THROW(PoissonTrace(10, -1.0, 0), ConfigError);
  EXPECT_THROW(BurstTrace(0), ConfigError);

  MmppOptions mmpp;
  mmpp.burst_qps = 0.0;
  EXPECT_THROW(MmppTrace(10, mmpp, 0), ConfigError);
  mmpp = MmppOptions{};
  mmpp.mean_burst_seconds = -1.0;
  EXPECT_THROW(MmppTrace(10, mmpp, 0), ConfigError);

  DiurnalOptions diurnal;
  diurnal.amplitude = 1.0;  // Would make the trough rate zero.
  EXPECT_THROW(DiurnalTrace(10, diurnal, 0), ConfigError);
  diurnal = DiurnalOptions{};
  diurnal.period_seconds = 0.0;
  EXPECT_THROW(DiurnalTrace(10, diurnal, 0), ConfigError);

  EXPECT_THROW(LoadTrace("/nonexistent/rago.trace"), ConfigError);
  // A malformed header must be rejected, not parsed as arrivals.
  const std::string path = ::testing::TempDir() + "/rago_bad.trace";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("not-a-trace\n1.0\n", file);
  std::fclose(file);
  EXPECT_THROW(LoadTrace(path), ConfigError);
  // A lying (huge) header count must report ConfigError when the
  // arrivals run out, not die in a giant up-front allocation.
  file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("rago-trace v1 18446744073709551615\n0.5\n1.5\n", file);
  std::fclose(file);
  EXPECT_THROW(LoadTrace(path), ConfigError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Runtime option validation
// ---------------------------------------------------------------------------

TEST(RuntimeOptionsTest, RejectsInvalidKnobs) {
  RuntimeOptions options;
  options.admission_queue_limit = 0;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = RuntimeOptions{};
  options.batch_timeout = -0.001;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = RuntimeOptions{};
  options.top_k = 0;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = RuntimeOptions{};
  options.slo.ttft_seconds = 0.0;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = RuntimeOptions{};
  options.timeline_limit = -1;
  EXPECT_THROW(options.Validate(), ConfigError);
  options = RuntimeOptions{};
  EXPECT_NO_THROW(options.Validate());
}

TEST(RuntimeOptionsTest, ConstructorRejectsBadConfigurations) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const LiveTier tier = MakeLiveTier();
  RuntimeOptions bad;
  bad.admission_queue_limit = -3;
  EXPECT_THROW(ServingRuntime(model, SimpleSchedule(model, 8, 8, 4, 64),
                              tier.index, bad),
               ConfigError);
  // Iterative schemas are the DES's SimulateIterativeDecode territory.
  const core::PipelineModel iterative(core::MakeIterativeSchema(8, 4),
                                      DefaultCluster());
  EXPECT_THROW(
      ServingRuntime(iterative, SimpleSchedule(iterative, 8, 8, 4, 64),
                     tier.index, RuntimeOptions{}),
      ConfigError);
}

// ---------------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------------

TEST(ServingRuntimeTest, ServesPoissonWorkloadEndToEnd) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  RuntimeOptions options;
  options.num_threads = 2;
  options.top_k = 5;
  const ServingRuntime runtime(model, schedule, tier.index, options);
  const RuntimeResult result =
      runtime.Serve(PoissonTrace(200, 100.0, 3), tier.queries);

  EXPECT_EQ(result.submitted, 200);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_EQ(result.completed, 200);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_EQ(result.ttft.count(), 200);
  EXPECT_GE(result.ttft.Percentile(0.99), result.ttft.Percentile(0.50));
  EXPECT_GT(result.tpot.Mean(), 0.0);

  // Stage telemetry: the retrieval stage ran real scans.
  ASSERT_EQ(result.stages.size(), 2u);  // retrieval, prefix.
  EXPECT_EQ(result.stages[0].type, core::StageType::kRetrieval);
  EXPECT_EQ(result.stages[0].requests, 200);
  EXPECT_GT(result.stages[0].batches, 0);
  EXPECT_GE(result.stages[0].batches, result.stages[0].full_batches);
  EXPECT_EQ(result.stages[0].queue_wait.count(), 200);
  EXPECT_FALSE(result.stages[0].timeline.empty());
  for (const StageTelemetry& stage : result.stages) {
    EXPECT_GE(stage.utilization, 0.0);
    EXPECT_LE(stage.utilization, 1.01);
  }
  EXPECT_LE(result.decode_utilization, 1.01);

  // Real-scan accounting: every admitted request retrieved neighbors.
  const int qpr = model.schema().retrieval.queries_per_retrieval;
  EXPECT_EQ(result.real_queries_scanned, 200 * qpr);
  EXPECT_GT(result.real_scan_bytes, 0.0);
  for (const RequestOutcome& outcome : result.requests) {
    EXPECT_TRUE(outcome.admitted);
    EXPECT_GE(outcome.first_neighbor, 0);
    EXPECT_LT(outcome.first_neighbor,
              static_cast<int64_t>(tier.index.size()));
    EXPECT_GE(outcome.ttft, 0.0);
    EXPECT_GE(outcome.completion, outcome.arrival);
  }
}

TEST(ServingRuntimeTest, BoundedAdmissionShedsLoadAndScoresAgainstSlo) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 16);
  const LiveTier tier = MakeLiveTier();
  RuntimeOptions options;
  options.admission_queue_limit = 4;
  options.num_threads = 1;
  const ServingRuntime runtime(model, schedule, tier.index, options);
  const RuntimeResult result =
      runtime.Serve(BurstTrace(64), tier.queries);

  EXPECT_GT(result.rejected, 0);
  EXPECT_EQ(result.admitted + result.rejected, 64);
  EXPECT_EQ(result.completed, result.admitted);
  // Rejected requests count as SLO violations by construction.
  EXPECT_LT(result.slo_attainment, 1.0);
  for (const RequestOutcome& outcome : result.requests) {
    if (!outcome.admitted) {
      EXPECT_LT(outcome.ttft, 0.0);
      EXPECT_EQ(outcome.first_neighbor, -1);
    }
  }
}

TEST(ServingRuntimeTest, DeterministicAcrossThreadCounts) {
  // The PR-3 contract extended to the runtime: a fixed seed must give
  // bit-identical request outcomes, digests, and percentile telemetry
  // for every worker-pool size, with real scans in the loop.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier(serving::ShardBackend::kIvf);
  const ArrivalTrace trace = PoissonTrace(150, 120.0, 17);

  std::vector<RuntimeResult> results;
  for (int threads : {1, 2, 8}) {
    RuntimeOptions options;
    options.num_threads = threads;
    options.top_k = 5;
    const ServingRuntime runtime(model, schedule, tier.index, options);
    results.push_back(runtime.Serve(trace, tier.queries));
  }
  const RuntimeResult& base = results.front();
  for (size_t i = 1; i < results.size(); ++i) {
    const RuntimeResult& other = results[i];
    EXPECT_EQ(base.outcome_digest, other.outcome_digest);
    EXPECT_EQ(base.completed, other.completed);
    EXPECT_EQ(base.makespan, other.makespan);
    EXPECT_EQ(base.throughput, other.throughput);
    EXPECT_EQ(base.slo_attainment, other.slo_attainment);
    for (double p : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(base.ttft.Percentile(p), other.ttft.Percentile(p));
      EXPECT_EQ(base.tpot.Percentile(p), other.tpot.Percentile(p));
      EXPECT_EQ(base.queue_wait.Percentile(p),
                other.queue_wait.Percentile(p));
    }
    EXPECT_EQ(base.ttft.Mean(), other.ttft.Mean());
    ASSERT_EQ(base.requests.size(), other.requests.size());
    for (size_t r = 0; r < base.requests.size(); ++r) {
      EXPECT_EQ(base.requests[r].first_neighbor,
                other.requests[r].first_neighbor);
      EXPECT_EQ(base.requests[r].ttft, other.requests[r].ttft);
      EXPECT_EQ(base.requests[r].completion,
                other.requests[r].completion);
    }
    ASSERT_EQ(base.stages.size(), other.stages.size());
    for (size_t s = 0; s < base.stages.size(); ++s) {
      EXPECT_EQ(base.stages[s].batches, other.stages[s].batches);
      EXPECT_EQ(base.stages[s].busy_seconds,
                other.stages[s].busy_seconds);
      EXPECT_EQ(base.stages[s].queue_wait.Percentile(0.95),
                other.stages[s].queue_wait.Percentile(0.95));
    }
  }
}

TEST(ServingRuntimeTest, ObservabilityIsDigestNeutralAcrossThreadCounts) {
  // Attaching the trace recorder and the metrics registry must not
  // change a single RuntimeResult field: observation is append-only
  // from the serial event loop. Pinned against the untraced run for
  // every worker-pool size.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier(serving::ShardBackend::kIvf);
  const ArrivalTrace trace = PoissonTrace(150, 120.0, 17);

  RuntimeOptions plain_options;
  plain_options.top_k = 5;
  const RuntimeResult plain =
      ServingRuntime(model, schedule, tier.index, plain_options)
          .Serve(trace, tier.queries);

  for (int threads : {1, 2, 8}) {
    obs::TraceRecorder recorder;
    MetricsRegistry metrics;
    RuntimeOptions options;
    options.num_threads = threads;
    options.top_k = 5;
    options.trace = &recorder;
    options.metrics = &metrics;
    const ServingRuntime runtime(model, schedule, tier.index, options);
    const RuntimeResult traced = runtime.Serve(trace, tier.queries);

    // Observation actually happened...
    EXPECT_GT(recorder.size(), 0u) << "threads " << threads;
    EXPECT_GT(metrics.size(), 0u);
    ASSERT_NE(metrics.FindCounter("runtime.requests_completed"), nullptr);
    EXPECT_EQ(metrics.FindCounter("runtime.requests_completed")->value(),
              plain.completed);

    // ...and changed nothing.
    EXPECT_EQ(traced.outcome_digest, plain.outcome_digest)
        << "threads " << threads;
    EXPECT_EQ(traced.submitted, plain.submitted);
    EXPECT_EQ(traced.admitted, plain.admitted);
    EXPECT_EQ(traced.rejected, plain.rejected);
    EXPECT_EQ(traced.completed, plain.completed);
    EXPECT_EQ(traced.makespan, plain.makespan);
    EXPECT_EQ(traced.throughput, plain.throughput);
    EXPECT_EQ(traced.slo_attainment, plain.slo_attainment);
    EXPECT_EQ(traced.decode_utilization, plain.decode_utilization);
    EXPECT_EQ(traced.max_decode_queue_depth, plain.max_decode_queue_depth);
    EXPECT_EQ(traced.measured_prefix_hit_rate,
              plain.measured_prefix_hit_rate);
    EXPECT_EQ(traced.streaming_histograms, plain.streaming_histograms);
    for (double p : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(traced.ttft.Percentile(p), plain.ttft.Percentile(p));
      EXPECT_EQ(traced.tpot.Percentile(p), plain.tpot.Percentile(p));
      EXPECT_EQ(traced.queue_wait.Percentile(p),
                plain.queue_wait.Percentile(p));
    }
    ASSERT_EQ(traced.requests.size(), plain.requests.size());
    for (size_t r = 0; r < plain.requests.size(); ++r) {
      EXPECT_EQ(traced.requests[r].first_neighbor,
                plain.requests[r].first_neighbor);
      EXPECT_EQ(traced.requests[r].ttft, plain.requests[r].ttft);
      EXPECT_EQ(traced.requests[r].completion,
                plain.requests[r].completion);
    }
    ASSERT_EQ(traced.stages.size(), plain.stages.size());
    for (size_t s = 0; s < plain.stages.size(); ++s) {
      EXPECT_EQ(traced.stages[s].batches, plain.stages[s].batches);
      EXPECT_EQ(traced.stages[s].busy_seconds,
                plain.stages[s].busy_seconds);
      EXPECT_EQ(traced.stages[s].max_queue_depth,
                plain.stages[s].max_queue_depth);
    }

    // The trace itself is also thread-count invariant on the virtual
    // clock: same spans, same timestamps, for every pool size. The
    // request summary is the deterministic view — the Chrome export
    // additionally carries the measured real_scan_wall_s arg, which
    // is wall-clock and legitimately varies run to run.
    obs::TraceRecorder base_recorder;
    RuntimeOptions base_options = options;
    base_options.num_threads = 1;
    base_options.trace = &base_recorder;
    base_options.metrics = nullptr;
    ServingRuntime(model, schedule, tier.index, base_options)
        .Serve(trace, tier.queries);
    EXPECT_EQ(recorder.RequestSummaryJson(),
              base_recorder.RequestSummaryJson());
    EXPECT_EQ(recorder.size(), base_recorder.size());
  }
}

TEST(ServingRuntimeTest, HistogramSampleCapSwitchoverIsSurfacedNotSilent) {
  // Direction-5 soak blocker: the exact-sample recorders grow without
  // bound on long traces. Past the configured cap they must fold into
  // the bounded streaming form, report it via streaming_histograms,
  // and leave every digest-covered field untouched.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  const ArrivalTrace trace = PoissonTrace(150, 120.0, 17);

  RuntimeOptions exact_options;
  exact_options.top_k = 5;
  const RuntimeResult exact =
      ServingRuntime(model, schedule, tier.index, exact_options)
          .Serve(trace, tier.queries);
  EXPECT_EQ(exact.streaming_histograms, 0);
  EXPECT_FALSE(exact.ttft.streaming_active());

  RuntimeOptions capped_options;
  capped_options.top_k = 5;
  capped_options.histogram_sample_cap = 32;  // 150 samples exceed it.
  const RuntimeResult capped =
      ServingRuntime(model, schedule, tier.index, capped_options)
          .Serve(trace, tier.queries);
  EXPECT_GT(capped.streaming_histograms, 0);
  EXPECT_TRUE(capped.ttft.streaming_active());
  EXPECT_EQ(capped.ttft.count(), exact.ttft.count());

  // Outcomes are histogram-independent: the digest cannot move.
  EXPECT_EQ(capped.outcome_digest, exact.outcome_digest);
  EXPECT_EQ(capped.makespan, exact.makespan);
  // Streaming percentiles track the exact ones within one bin ratio
  // (bins_per_decade = 32 -> ratio 10^(1/32) ~ 1.075).
  const double bin_ratio = std::pow(10.0, 1.0 / 32.0);
  for (double p : {0.5, 0.95}) {
    const double approx = capped.ttft.Percentile(p);
    const double truth = exact.ttft.Percentile(p);
    EXPECT_LE(approx, truth * bin_ratio);
    EXPECT_GE(approx, truth / bin_ratio);
  }
}

TEST(ServingRuntimeTest, TracksServingDesAcrossOptimizerPoints) {
  // Runtime-vs-DES cross-check, mirroring the PR-4 DES-vs-analytical
  // harness: both engines run the same schedule batching semantics on
  // model-priced virtual time, so for the same Poisson trace their
  // throughput and mean TTFT must agree within a tight bound — the
  // runtime merely adds (bounded-but-large) admission and real scans.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  opt::SearchOptions search = rago::testing::SmallSearchGrid();
  search.num_threads = 2;
  const opt::OptimizerResult frontier =
      opt::Optimizer(model, search).Search();
  ASSERT_FALSE(frontier.pareto.empty());
  const LiveTier tier = MakeLiveTier();

  const size_t stride = std::max<size_t>(1, frontier.pareto.size() / 3);
  int points_checked = 0;
  for (size_t i = 0; i < frontier.pareto.size(); i += stride) {
    const opt::ScheduledPoint& point = frontier.pareto[i];
    const ArrivalTrace trace =
        PoissonTrace(400, point.perf.qps * 0.6, 23);

    const sim::ServingSimResult des =
        sim::SimulateServing(model, point.schedule, trace);
    RuntimeOptions options;
    options.admission_queue_limit = 1 << 20;  // Effectively unbounded.
    options.num_threads = 2;
    const ServingRuntime runtime(model, point.schedule, tier.index,
                                 options);
    const RuntimeResult live = runtime.Serve(trace, tier.queries);

    EXPECT_EQ(live.completed, des.completed);
    RAGO_EXPECT_REL_NEAR(live.throughput, des.throughput, 0.05);
    RAGO_EXPECT_REL_NEAR(live.ttft.Mean(), des.avg_ttft, 0.05);
    RAGO_EXPECT_REL_NEAR(live.tpot.Mean(), des.avg_tpot, 0.05);
    ++points_checked;
  }
  EXPECT_GE(points_checked, 2);
}

TEST(ServingRuntimeTest, SloAttainmentMonotoneUnderRisingLoad) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const core::EndToEndPerf perf = model.Evaluate(schedule);
  ASSERT_TRUE(perf.feasible);
  const LiveTier tier = MakeLiveTier();

  RuntimeOptions options;
  options.num_threads = 1;
  // SLO placed between the unloaded and the saturated operating
  // points, so attainment must degrade as queues build. The light-load
  // TTFT includes up to one batch-forming timeout per pre-decode
  // stage, so the target budgets for those on top of the batch-flow
  // latency.
  options.batch_timeout = 0.005;
  options.slo.ttft_seconds = perf.ttft * 3.0 + 3 * options.batch_timeout;
  options.slo.tpot_seconds = perf.tpot * 3.0;
  options.admission_queue_limit = 64;
  const ServingRuntime runtime(model, schedule, tier.index, options);

  std::vector<double> attainment;
  for (double load : {0.3, 1.2, 4.0}) {
    const RuntimeResult result = runtime.Serve(
        PoissonTrace(300, perf.qps * load, 29), tier.queries);
    attainment.push_back(result.slo_attainment);
  }
  EXPECT_GT(attainment[0], 0.9);  // Light load comfortably meets SLO.
  // Monotone non-increasing (tiny tolerance for Poisson luck).
  EXPECT_GE(attainment[0] + 0.02, attainment[1]);
  EXPECT_GE(attainment[1] + 0.02, attainment[2]);
  EXPECT_LT(attainment[2], attainment[0]);
}

TEST(ServingRuntimeTest, RetrievalModelOverridePricesVirtualTime) {
  // Swapping in a pluggable retrieval model must change the virtual
  // timing (like the DES) while the scans keep returning real ids.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();

  retrieval::MeasuredScanProfile profile;
  profile.bytes_per_query_per_server = 64.0 * kMiB;
  profile.scan_bytes_per_core = 2.0 * kGiB;
  profile.merge_seconds_per_query = 1e-5;
  const retrieval::MeasuredRetrievalModel slow(
      profile, DefaultCpuServer(), schedule.retrieval_servers);

  RuntimeOptions options;
  options.num_threads = 1;
  const ServingRuntime baseline(model, schedule, tier.index, options);
  options.retrieval_model = &slow;
  const ServingRuntime priced(model, schedule, tier.index, options);

  const ArrivalTrace trace = PoissonTrace(60, 40.0, 31);
  const RuntimeResult fast_result = baseline.Serve(trace, tier.queries);
  const RuntimeResult slow_result = priced.Serve(trace, tier.queries);
  EXPECT_GT(slow_result.ttft.Mean(), fast_result.ttft.Mean());
  ASSERT_EQ(fast_result.requests.size(), slow_result.requests.size());
  for (size_t r = 0; r < fast_result.requests.size(); ++r) {
    EXPECT_EQ(fast_result.requests[r].first_neighbor,
              slow_result.requests[r].first_neighbor);
  }
}

TEST(ServingRuntimeTest, FullTelemetryLayerIsThreadInvariantAndNeutral) {
  // The whole observation stack at once — windowed ladder, burn-rate
  // alerting, flight recorder, sampled tracing — attached for every
  // worker-pool size: the outcome digest must equal the unobserved
  // run's, and every serialized observation surface must be
  // byte-identical across pool sizes.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier(serving::ShardBackend::kIvf);
  const ArrivalTrace trace = PoissonTrace(150, 120.0, 17);

  RuntimeOptions plain_options;
  plain_options.top_k = 5;
  const uint64_t plain_digest =
      ServingRuntime(model, schedule, tier.index, plain_options)
          .Serve(trace, tier.queries)
          .outcome_digest;

  obs::TimeSeriesOptions ts_options;
  ts_options.window_seconds = 0.1;
  ts_options.windows_per_level = 4;  // Small: force folds.
  obs::SloAlertOptions alert_options;
  alert_options.rules.push_back({});
  alert_options.rules.back().short_window_seconds = 0.2;
  alert_options.rules.back().long_window_seconds = 0.6;
  obs::TraceSamplingOptions sampling;
  sampling.head_rate = 0.25;
  sampling.tail_keep = 4;
  sampling.seed = 11;

  std::vector<std::string> series_jsons;
  std::vector<std::string> alert_jsons;
  std::vector<std::string> summary_jsons;
  for (int threads : {1, 2, 8}) {
    obs::TelemetryTimeSeries series(ts_options);
    obs::SloAlertEngine alerts(alert_options);
    obs::FlightRecorder flight(64);
    obs::TraceRecorder recorder;
    recorder.SetSampling(sampling);

    RuntimeOptions options;
    options.num_threads = threads;
    options.top_k = 5;
    options.timeseries = &series;
    options.alerts = &alerts;
    options.flight = &flight;
    options.trace = &recorder;
    const ServingRuntime runtime(model, schedule, tier.index, options);
    const RuntimeResult result = runtime.Serve(trace, tier.queries);

    EXPECT_EQ(result.outcome_digest, plain_digest) << threads;
    EXPECT_GT(series.windows_closed(), 0) << threads;
    EXPECT_EQ(recorder.finalized_requests(), 150) << threads;
    EXPECT_EQ(recorder.pending_requests(), 0u) << threads;
    EXPECT_GT(flight.appended(), 0) << threads;
    series_jsons.push_back(series.Json());
    alert_jsons.push_back(alerts.Json());
    summary_jsons.push_back(recorder.RequestSummaryJson());
  }
  for (size_t i = 1; i < series_jsons.size(); ++i) {
    EXPECT_EQ(series_jsons[i], series_jsons[0]);
    EXPECT_EQ(alert_jsons[i], alert_jsons[0]);
    EXPECT_EQ(summary_jsons[i], summary_jsons[0]);
  }
}

TEST(ServingRuntimeTest, AlertDigestFoldIsOptInAndDeterministic) {
  // Overload + an unmeetable SLO so the page rule definitely fires.
  // Default policy: transitions are observation-only and the digest
  // matches the unobserved run. With fold_into_digest set, the digest
  // moves — deterministically, for every pool size.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 16);
  const LiveTier tier = MakeLiveTier();
  const ArrivalTrace trace = BurstTrace(64);

  RuntimeOptions base;
  base.admission_queue_limit = 4;
  base.slo.ttft_seconds = 1e-9;
  const uint64_t plain_digest =
      ServingRuntime(model, schedule, tier.index, base)
          .Serve(trace, tier.queries)
          .outcome_digest;

  obs::TimeSeriesOptions ts_options;
  ts_options.window_seconds = 0.05;
  obs::SloAlertOptions alert_options;
  alert_options.rules.push_back({});
  alert_options.rules.back().short_window_seconds = 0.1;
  alert_options.rules.back().long_window_seconds = 0.3;

  std::vector<uint64_t> folded_digests;
  for (int threads : {1, 2, 8}) {
    for (const bool fold : {false, true}) {
      obs::TelemetryTimeSeries series(ts_options);
      obs::SloAlertOptions engine_options = alert_options;
      engine_options.fold_into_digest = fold;
      obs::SloAlertEngine alerts(engine_options);
      RuntimeOptions options = base;
      options.num_threads = threads;
      options.timeseries = &series;
      options.alerts = &alerts;
      const ServingRuntime runtime(model, schedule, tier.index,
                                   options);
      const RuntimeResult result = runtime.Serve(trace, tier.queries);

      ASSERT_FALSE(alerts.transitions().empty());
      if (fold) {
        EXPECT_NE(result.outcome_digest, plain_digest) << threads;
        folded_digests.push_back(result.outcome_digest);
      } else {
        EXPECT_EQ(result.outcome_digest, plain_digest) << threads;
      }
    }
  }
  ASSERT_EQ(folded_digests.size(), 3u);
  EXPECT_EQ(folded_digests[1], folded_digests[0]);
  EXPECT_EQ(folded_digests[2], folded_digests[0]);
}

TEST(ServingRuntimeTest, AlertsWithoutTimeseriesAreRejected) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 16);
  const LiveTier tier = MakeLiveTier();
  obs::SloAlertOptions alert_options;
  alert_options.rules.push_back({});
  obs::SloAlertEngine alerts(alert_options);
  RuntimeOptions options;
  options.alerts = &alerts;  // No timeseries feeding it.
  EXPECT_THROW(ServingRuntime(model, schedule, tier.index, options)
                   .Serve(BurstTrace(4), tier.queries),
               ConfigError);
}

TEST(ServingRuntimeTest, CounterTracksExportStageTimelines) {
  // Satellite of the telemetry layer: the per-stage queue-depth /
  // utilization timelines the runtime already aggregates replay into
  // Chrome "C" counter events, one pair per timeline point.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const LiveTier tier = MakeLiveTier();
  obs::TraceRecorder recorder;
  RuntimeOptions options;
  options.trace = &recorder;
  const ServingRuntime runtime(model, schedule, tier.index, options);
  const RuntimeResult result =
      runtime.Serve(PoissonTrace(40, 100.0, 7), tier.queries);

  size_t timeline_points = 0;
  for (const StageTelemetry& telemetry : result.stages) {
    timeline_points += telemetry.timeline.size();
  }
  ASSERT_GT(timeline_points, 0u);

  int64_t queue_counters = 0;
  int64_t util_counters = 0;
  const JsonValue doc = JsonValue::Parse(recorder.ChromeTraceJson());
  for (const JsonValue& event : doc.At("traceEvents").Items()) {
    if (event.At("ph").AsString() != "C") {
      continue;
    }
    const std::string& name = event.At("name").AsString();
    const double value = event.At("args").At("value").AsNumber();
    if (name.rfind("queue-depth: ", 0) == 0) {
      ++queue_counters;
      EXPECT_GE(value, 0.0);
    } else if (name.rfind("utilization: ", 0) == 0) {
      ++util_counters;
      EXPECT_GE(value, 0.0);
    } else {
      ADD_FAILURE() << "unexpected counter track: " << name;
    }
  }
  EXPECT_EQ(queue_counters, static_cast<int64_t>(timeline_points));
  EXPECT_EQ(util_counters, static_cast<int64_t>(timeline_points));
}

}  // namespace
}  // namespace rago::runtime
