/**
 * @file test_ann_kmeans.cc
 * Tests for the k-means trainer underlying all ANN indexes.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/kmeans.h"

namespace rago::ann {
namespace {

TEST(KMeans, RecoverWellSeparatedClusters) {
  Rng rng(42);
  // Three tight, well-separated blobs.
  const Matrix data = GenClustered(600, 8, 3, /*spread=*/0.01f, rng);
  Rng train_rng(7);
  const KMeansResult result = TrainKMeans(data, 3, train_rng);
  // Every point should be within a tiny distance of its centroid.
  double max_dist = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto c = static_cast<size_t>(result.assignments[i]);
    max_dist = std::max(
        max_dist,
        static_cast<double>(L2Sq(data.Row(i), result.centroids.Row(c), 8)));
  }
  EXPECT_LT(max_dist, 0.1);
}

TEST(KMeans, InertiaNonIncreasingAcrossRuns) {
  Rng rng(1);
  const Matrix data = GenUniform(500, 16, rng);
  Rng r1(3);
  Rng r2(3);
  KMeansOptions one_iter;
  one_iter.max_iterations = 1;
  KMeansOptions many_iter;
  many_iter.max_iterations = 25;
  const double early = TrainKMeans(data, 10, r1, one_iter).inertia;
  const double late = TrainKMeans(data, 10, r2, many_iter).inertia;
  EXPECT_LE(late, early * 1.0001);
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng(9);
  const Matrix data = GenUniform(300, 4, rng);
  Rng a(5);
  Rng b(5);
  const KMeansResult ra = TrainKMeans(data, 8, a);
  const KMeansResult rb = TrainKMeans(data, 8, b);
  EXPECT_EQ(ra.assignments, rb.assignments);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
}

TEST(KMeans, CentroidsAreClusterMeans) {
  Rng rng(2);
  const Matrix data = GenUniform(200, 3, rng);
  Rng train_rng(4);
  const KMeansResult result = TrainKMeans(data, 5, train_rng);
  // Recompute means from the final assignment; should match emitted
  // centroids for non-empty clusters.
  for (int c = 0; c < 5; ++c) {
    double sum[3] = {0, 0, 0};
    int count = 0;
    for (size_t i = 0; i < data.rows(); ++i) {
      if (result.assignments[i] == c) {
        for (int d = 0; d < 3; ++d) {
          sum[d] += data.Row(i)[d];
        }
        ++count;
      }
    }
    if (count == 0) {
      continue;
    }
    // Centroids come from the update step of the last full iteration;
    // allow slack for the final assignment step moving points.
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(result.centroids.Row(static_cast<size_t>(c))[d],
                  sum[d] / count, 0.2);
    }
  }
}

TEST(KMeans, AllAssignmentsInRange) {
  Rng rng(6);
  const Matrix data = GenUniform(100, 5, rng);
  Rng train_rng(8);
  const KMeansResult result = TrainKMeans(data, 7, train_rng);
  ASSERT_EQ(result.assignments.size(), 100u);
  for (int32_t a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 7);
  }
}

TEST(KMeans, HandlesDuplicatePointsWithoutCrash) {
  // All points identical: k-means++ falls back to random picks and the
  // empty-cluster reseed keeps k centroids alive.
  Matrix data(64, 4);
  for (size_t i = 0; i < 64; ++i) {
    for (size_t d = 0; d < 4; ++d) {
      data.Row(i)[d] = 1.0f;
    }
  }
  Rng rng(3);
  const KMeansResult result = TrainKMeans(data, 4, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  Rng rng(10);
  const Matrix data = GenUniform(16, 4, rng);
  Rng train_rng(11);
  KMeansOptions options;
  options.max_iterations = 30;
  const KMeansResult result = TrainKMeans(data, 16, train_rng, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KMeans, RejectsInvalidK) {
  Rng rng(1);
  const Matrix data = GenUniform(10, 2, rng);
  Rng train_rng(2);
  EXPECT_THROW(TrainKMeans(data, 0, train_rng), rago::ConfigError);
  EXPECT_THROW(TrainKMeans(data, 11, train_rng), rago::ConfigError);
}

TEST(NearestCentroid, PicksTrueNearest) {
  Matrix centroids(3, 2);
  centroids.Row(0)[0] = 0.0f;
  centroids.Row(1)[0] = 5.0f;
  centroids.Row(2)[0] = 10.0f;
  const float q1[2] = {1.0f, 0.0f};
  const float q2[2] = {6.0f, 0.0f};
  const float q3[2] = {100.0f, 0.0f};
  EXPECT_EQ(NearestCentroid(centroids, q1), 0);
  EXPECT_EQ(NearestCentroid(centroids, q2), 1);
  EXPECT_EQ(NearestCentroid(centroids, q3), 2);
}

TEST(Distance, KernelsMatchManualComputation) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, 6.0f, 3.0f};
  EXPECT_FLOAT_EQ(L2Sq(a, b, 3), 9.0f + 16.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.0f + 12.0f + 9.0f);
  EXPECT_FLOAT_EQ(Distance(Metric::kL2, a, b, 3), 25.0f);
  EXPECT_FLOAT_EQ(Distance(Metric::kInnerProduct, a, b, 3), -25.0f);
}

TEST(Dataset, GeneratorsAreDeterministic) {
  Rng a(12);
  Rng b(12);
  const Matrix da = GenClustered(50, 6, 4, 0.3f, a);
  const Matrix db = GenClustered(50, 6, 4, 0.3f, b);
  for (size_t i = 0; i < da.rows(); ++i) {
    for (size_t d = 0; d < da.dim(); ++d) {
      EXPECT_FLOAT_EQ(da.Row(i)[d], db.Row(i)[d]);
    }
  }
}

TEST(Dataset, QueriesNearDataAreClose) {
  Rng rng(13);
  const Matrix data = GenUniform(100, 8, rng);
  const Matrix queries = GenQueriesNear(data, 20, 0.001f, rng);
  // Each query should be extremely close to at least one data point.
  for (size_t q = 0; q < queries.rows(); ++q) {
    float best = 1e30f;
    for (size_t i = 0; i < data.rows(); ++i) {
      best = std::min(best, L2Sq(queries.Row(q), data.Row(i), 8));
    }
    EXPECT_LT(best, 0.01f);
  }
}

TEST(Matrix, RowAccessAndBounds) {
  Matrix m(3, 2);
  m.Row(1)[0] = 7.0f;
  EXPECT_FLOAT_EQ(m.Row(1)[0], 7.0f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.dim(), 2u);
  EXPECT_THROW(m.Row(3), rago::InternalError);
}

}  // namespace
}  // namespace rago::ann
