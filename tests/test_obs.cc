/**
 * @file test_obs.cc
 * Tests for the span-trace recorder (serving/obs/trace.h): recorded
 * event fields, per-request filtering, and the exact shape of the
 * Chrome trace-event export — pinned by parsing the emitted JSON with
 * the in-tree reader rather than string matching. Also covers the DES
 * integration path (ServingSimOptions::trace).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/json_reader.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/obs/trace.h"
#include "sim/serving_sim.h"
#include "tests/testing/test_support.h"

namespace rago::obs {
namespace {

TEST(TraceRecorder, RecordsCompleteAndInstantEvents) {
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.size(), 0u);

  TraceEvent& span =
      recorder.AddComplete("exec", "stage", /*pid=*/0, /*tid=*/3,
                           /*start=*/1.5, /*duration=*/0.25,
                           /*request_id=*/7);
  span.args.emplace_back("batch", 4.0);

  recorder.AddInstant("first-token", "request", /*pid=*/1, /*tid=*/7,
                      /*time=*/1.75, /*request_id=*/7);

  ASSERT_EQ(recorder.size(), 2u);
  const TraceEvent& e0 = recorder.events()[0];
  EXPECT_EQ(e0.phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(e0.name, "exec");
  EXPECT_EQ(e0.category, "stage");
  EXPECT_EQ(e0.pid, 0);
  EXPECT_EQ(e0.tid, 3);
  EXPECT_DOUBLE_EQ(e0.start, 1.5);
  EXPECT_DOUBLE_EQ(e0.duration, 0.25);
  EXPECT_EQ(e0.request_id, 7);
  ASSERT_EQ(e0.args.size(), 1u);
  EXPECT_EQ(e0.args[0].first, "batch");
  EXPECT_DOUBLE_EQ(e0.args[0].second, 4.0);

  const TraceEvent& e1 = recorder.events()[1];
  EXPECT_EQ(e1.phase, TraceEvent::Phase::kInstant);
  EXPECT_DOUBLE_EQ(e1.start, 1.75);
  EXPECT_DOUBLE_EQ(e1.duration, 0.0);

  recorder.Clear();
  EXPECT_TRUE(recorder.empty());
}

TEST(TraceRecorder, EventsForRequestFiltersInRecordedOrder) {
  TraceRecorder recorder;
  recorder.AddComplete("a", "c", 0, 0, 0.0, 1.0, /*request_id=*/1);
  recorder.AddComplete("b", "c", 0, 0, 1.0, 1.0, /*request_id=*/2);
  recorder.AddInstant("c", "c", 1, 1, 2.0, /*request_id=*/1);
  recorder.AddComplete("d", "c", 0, 0, 3.0, 1.0);  // no request

  const std::vector<const TraceEvent*> events =
      recorder.EventsForRequest(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->name, "a");
  EXPECT_EQ(events[1]->name, "c");
  EXPECT_TRUE(recorder.EventsForRequest(99).empty());
}

TEST(TraceRecorder, ChromeExportShapeIsPinned) {
  TraceRecorder recorder;
  recorder.SetProcessName(0, "servers");
  recorder.SetThreadName(0, 2, "server 2 (xpu)");
  TraceEvent& span = recorder.AddComplete("exec", "stage", 0, 2,
                                          /*start=*/0.5,
                                          /*duration=*/0.125,
                                          /*request_id=*/11);
  span.args.emplace_back("batch", 8.0);
  recorder.AddInstant("first-token", "request", 1, 11, /*time=*/0.625,
                      /*request_id=*/11);

  const JsonValue doc = JsonValue::Parse(recorder.ChromeTraceJson());
  EXPECT_EQ(doc.At("displayTimeUnit").AsString(), "ms");
  const JsonValue& events = doc.At("traceEvents");
  // Metadata first (process_name, thread_name), then the two events.
  ASSERT_EQ(events.size(), 4u);

  const JsonValue& process_meta = events.Items()[0];
  EXPECT_EQ(process_meta.At("ph").AsString(), "M");
  EXPECT_EQ(process_meta.At("name").AsString(), "process_name");
  EXPECT_EQ(process_meta.At("pid").AsInt(), 0);
  EXPECT_EQ(process_meta.At("args").At("name").AsString(), "servers");

  const JsonValue& thread_meta = events.Items()[1];
  EXPECT_EQ(thread_meta.At("ph").AsString(), "M");
  EXPECT_EQ(thread_meta.At("name").AsString(), "thread_name");
  EXPECT_EQ(thread_meta.At("tid").AsInt(), 2);
  EXPECT_EQ(thread_meta.At("args").At("name").AsString(),
            "server 2 (xpu)");

  // Virtual seconds scale to the microseconds chrome://tracing
  // expects; args carry the request id plus attached payload.
  const JsonValue& complete = events.Items()[2];
  EXPECT_EQ(complete.At("ph").AsString(), "X");
  EXPECT_EQ(complete.At("name").AsString(), "exec");
  EXPECT_EQ(complete.At("cat").AsString(), "stage");
  EXPECT_DOUBLE_EQ(complete.At("ts").AsNumber(), 0.5 * 1e6);
  EXPECT_DOUBLE_EQ(complete.At("dur").AsNumber(), 0.125 * 1e6);
  EXPECT_EQ(complete.At("args").At("request").AsInt(), 11);
  EXPECT_DOUBLE_EQ(complete.At("args").At("batch").AsNumber(), 8.0);

  const JsonValue& instant = events.Items()[3];
  EXPECT_EQ(instant.At("ph").AsString(), "i");
  EXPECT_EQ(instant.At("s").AsString(), "t");
  EXPECT_DOUBLE_EQ(instant.At("ts").AsNumber(), 0.625 * 1e6);
}

TEST(TraceRecorder, RequestSummaryGroupsByRequestId) {
  TraceRecorder recorder;
  recorder.AddComplete("exec", "stage", 0, 0, 0.0, 1.0, /*request_id=*/5);
  recorder.AddInstant("first-token", "request", 1, 2, 1.0,
                      /*request_id=*/2);
  recorder.AddComplete("decode", "request", 1, 5, 1.0, 2.0,
                       /*request_id=*/5);
  recorder.AddComplete("idle", "server", 0, 0, 2.0, 1.0);  // no request

  const JsonValue doc = JsonValue::Parse(recorder.RequestSummaryJson());
  const JsonValue& requests = doc.At("requests");
  ASSERT_EQ(requests.size(), 2u);  // ids 2 and 5; anonymous omitted

  const JsonValue& req2 = requests.Items()[0];
  EXPECT_EQ(req2.At("request").AsInt(), 2);
  ASSERT_EQ(req2.At("events").size(), 1u);
  EXPECT_EQ(req2.At("events").Items()[0].At("name").AsString(),
            "first-token");

  const JsonValue& req5 = requests.Items()[1];
  EXPECT_EQ(req5.At("request").AsInt(), 5);
  ASSERT_EQ(req5.At("events").size(), 2u);
  EXPECT_EQ(req5.At("events").Items()[0].At("name").AsString(), "exec");
  EXPECT_EQ(req5.At("events").Items()[1].At("name").AsString(),
            "decode");
  EXPECT_DOUBLE_EQ(
      req5.At("events").Items()[1].At("duration").AsNumber(), 2.0);
}

// --- DES integration -------------------------------------------------

core::Schedule SimpleSchedule(const core::PipelineModel& model,
                              int group_chips, int decode_chips,
                              int64_t batch, int64_t decode_batch) {
  core::Schedule schedule;
  schedule.chain_group.assign(model.chain().size(), 0);
  schedule.group_chips = {group_chips};
  schedule.chain_batch.assign(model.chain().size(), batch);
  schedule.decode_chips = decode_chips;
  schedule.decode_batch = decode_batch;
  schedule.retrieval_servers = model.MinRetrievalServers();
  schedule.retrieval_batch = batch;
  return schedule;
}

TEST(TraceRecorder, DesSimulationEmitsLoadableTrace) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const sim::ArrivalTrace trace = sim::PoissonTrace(50, 100.0, 3);

  const sim::ServingSimResult plain =
      sim::SimulateServing(model, schedule, trace);

  TraceRecorder recorder;
  sim::ServingSimOptions options;
  options.trace = &recorder;
  const sim::ServingSimResult traced =
      sim::SimulateServing(model, schedule, trace, options);

  // Observation-only: identical outcomes with the recorder attached.
  EXPECT_EQ(traced.completed, plain.completed);
  EXPECT_DOUBLE_EQ(traced.makespan, plain.makespan);
  EXPECT_DOUBLE_EQ(traced.p99_ttft, plain.p99_ttft);
  EXPECT_DOUBLE_EQ(traced.p99_tpot, plain.p99_tpot);

  EXPECT_GT(recorder.size(), 0u);
  bool saw_stage_span = false;
  bool saw_queue_span = false;
  bool saw_request_event = false;
  for (const TraceEvent& event : recorder.events()) {
    if (event.phase == TraceEvent::Phase::kComplete &&
        event.pid == 0) {
      saw_stage_span = true;
    }
    if (event.name.rfind("queue:", 0) == 0) saw_queue_span = true;
    if (event.request_id >= 0) saw_request_event = true;
  }
  EXPECT_TRUE(saw_stage_span);
  EXPECT_TRUE(saw_queue_span);
  EXPECT_TRUE(saw_request_event);

  // Every request that completed has recorded events, and the full
  // export parses as a Chrome trace-event document.
  EXPECT_FALSE(recorder.EventsForRequest(0).empty());
  const JsonValue doc = JsonValue::Parse(recorder.ChromeTraceJson());
  EXPECT_GE(doc.At("traceEvents").size(), recorder.size());
}

// --- Deterministic sampling ------------------------------------------

TEST(TraceSampling, DefaultPolicyIsANoOp) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.sampling_active());
  recorder.AddInstant("arrival", "admission", 1, 3, 0.5, /*request_id=*/3);
  // Commits immediately: nothing buffers without an active policy.
  EXPECT_EQ(recorder.size(), 1u);
  recorder.FinalizeRequest(3, 1.0, false);
  recorder.FlushTailKeep();
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.finalized_requests(), 0);
}

TEST(TraceSampling, RejectsBadPolicyAndLateConfiguration) {
  TraceRecorder recorder;
  TraceSamplingOptions bad;
  bad.head_rate = 1.5;
  EXPECT_THROW(recorder.SetSampling(bad), ConfigError);
  bad.head_rate = 0.5;
  bad.tail_keep = -1;
  EXPECT_THROW(recorder.SetSampling(bad), ConfigError);

  recorder.AddInstant("arrival", "admission", 1, 0, 0.0, 0);
  TraceSamplingOptions late;
  late.head_rate = 0.5;
  EXPECT_THROW(recorder.SetSampling(late), ConfigError);
}

TEST(TraceSampling, HeadSamplingCommitsExactlyTheHashSelectedSubset) {
  TraceSamplingOptions sampling;
  sampling.head_rate = 0.5;
  sampling.seed = 42;

  TraceRecorder recorder;
  recorder.SetSampling(sampling);
  EXPECT_TRUE(recorder.sampling_active());
  for (int64_t id = 0; id < 100; ++id) {
    recorder.SetThreadName(1, static_cast<int>(id),
                           "req " + std::to_string(id));
    recorder.AddInstant("arrival", "admission", 1, static_cast<int>(id),
                        0.01 * static_cast<double>(id), id);
    recorder.FinalizeRequest(id, 1.0, false);
  }

  int64_t expected = 0;
  for (int64_t id = 0; id < 100; ++id) {
    const bool kept = recorder.HeadSampled(id);
    expected += kept ? 1 : 0;
    // The committed set is exactly the pure-function verdict per id.
    EXPECT_EQ(!recorder.EventsForRequest(id).empty(), kept) << id;
  }
  EXPECT_GT(expected, 0);
  EXPECT_LT(expected, 100);
  EXPECT_EQ(recorder.finalized_requests(), 100);
  EXPECT_EQ(recorder.sampled_requests(), expected);
  EXPECT_EQ(recorder.discarded_requests(), 100 - expected);
  EXPECT_EQ(recorder.pending_requests(), 0u);

  // Unsampled requests leave no metadata behind either: only sampled
  // ids surface as pid-1 thread rows in the export.
  const JsonValue doc = JsonValue::Parse(recorder.ChromeTraceJson());
  int64_t thread_rows = 0;
  for (const JsonValue& event : doc.At("traceEvents").Items()) {
    if (event.At("ph").AsString() == "M" &&
        event.At("name").AsString() == "thread_name") {
      ++thread_rows;
    }
  }
  EXPECT_EQ(thread_rows, expected);
}

TEST(TraceSampling, TailKeepRetainsWorstAndViolatorsOutrankSlow) {
  TraceSamplingOptions sampling;
  sampling.head_rate = 0.0;  // Tail ring decides everything.
  sampling.tail_keep = 3;

  TraceRecorder recorder;
  recorder.SetSampling(sampling);
  struct Fin {
    int64_t id;
    double score;
    bool violation;
  };
  // Two SLO violators (scores 1.0, 0.5) and three merely-slow
  // requests (9.0, 7.0, 5.0): the violators must both survive even
  // though every non-violator scored higher.
  const std::vector<Fin> finals = {{1, 5.0, false},
                                   {2, 1.0, true},
                                   {3, 9.0, false},
                                   {4, 0.5, true},
                                   {5, 7.0, false}};
  for (const Fin& fin : finals) {
    recorder.AddInstant("arrival", "admission", 1,
                        static_cast<int>(fin.id), 0.0, fin.id);
    recorder.FinalizeRequest(fin.id, fin.score, fin.violation);
  }
  EXPECT_EQ(recorder.tail_kept(), 3u);
  EXPECT_EQ(recorder.size(), 0u);  // Nothing committed yet.

  recorder.FlushTailKeep();
  EXPECT_EQ(recorder.tail_kept(), 0u);
  EXPECT_FALSE(recorder.EventsForRequest(2).empty());
  EXPECT_FALSE(recorder.EventsForRequest(4).empty());
  EXPECT_FALSE(recorder.EventsForRequest(3).empty());  // Worst score.
  EXPECT_TRUE(recorder.EventsForRequest(1).empty());
  EXPECT_TRUE(recorder.EventsForRequest(5).empty());
  EXPECT_EQ(recorder.sampled_requests(), 3);
  EXPECT_EQ(recorder.discarded_requests(), 2);

  // Flushed in ascending id order for a deterministic export.
  std::vector<int64_t> committed_order;
  for (const TraceEvent& event : recorder.events()) {
    committed_order.push_back(event.request_id);
  }
  EXPECT_EQ(committed_order, (std::vector<int64_t>{2, 3, 4}));
}

TEST(TraceSampling, DesSampledTraceIsASubsetOfTheFullTrace) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const sim::ArrivalTrace trace = sim::PoissonTrace(80, 120.0, 3);

  TraceRecorder full;
  sim::ServingSimOptions full_options;
  full_options.trace = &full;
  const sim::ServingSimResult full_result =
      sim::SimulateServing(model, schedule, trace, full_options);

  TraceRecorder sampled;
  TraceSamplingOptions sampling;
  sampling.head_rate = 0.3;
  sampling.tail_keep = 4;
  sampling.seed = 5;
  sampled.SetSampling(sampling);
  sim::ServingSimOptions sampled_options;
  sampled_options.trace = &sampled;
  const sim::ServingSimResult sampled_result =
      sim::SimulateServing(model, schedule, trace, sampled_options);

  // Sampling is observation-side only: identical simulation results.
  EXPECT_EQ(sampled_result.completed, full_result.completed);
  EXPECT_DOUBLE_EQ(sampled_result.makespan, full_result.makespan);
  EXPECT_DOUBLE_EQ(sampled_result.p99_ttft, full_result.p99_ttft);

  EXPECT_EQ(sampled.finalized_requests(), 80);
  EXPECT_EQ(sampled.pending_requests(), 0u);
  EXPECT_GT(sampled.sampled_requests(), 0);
  EXPECT_LT(sampled.sampled_requests(), 80);
  EXPECT_LT(sampled.size(), full.size());

  // Every committed request's event sequence is byte-equal to what
  // the unsampled run recorded for that id; everything else is gone.
  for (int64_t id = 0; id < 80; ++id) {
    const std::vector<const TraceEvent*> kept =
        sampled.EventsForRequest(id);
    if (kept.empty()) {
      continue;
    }
    const std::vector<const TraceEvent*> reference =
        full.EventsForRequest(id);
    ASSERT_EQ(kept.size(), reference.size()) << id;
    for (size_t i = 0; i < kept.size(); ++i) {
      EXPECT_EQ(kept[i]->name, reference[i]->name);
      EXPECT_EQ(kept[i]->start, reference[i]->start);
      EXPECT_EQ(kept[i]->duration, reference[i]->duration);
    }
  }
}

TEST(TraceSampling, DesTelemetryLadderAndFlightRideAlong) {
  // The full observation stack on the DES: windowed telemetry, alerts
  // against an impossible SLO (everything violates), and the flight
  // recorder — none of it may move a single result field.
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const sim::ArrivalTrace trace = sim::PoissonTrace(80, 120.0, 3);

  const sim::ServingSimResult plain =
      sim::SimulateServing(model, schedule, trace);

  TelemetryTimeSeries series;
  SloAlertOptions alert_options;
  alert_options.rules.push_back({});
  alert_options.rules.back().short_window_seconds = 1.0;
  alert_options.rules.back().long_window_seconds = 2.0;
  SloAlertEngine alerts(alert_options);
  FlightRecorder flight(32);
  sim::ServingSimOptions options;
  options.timeseries = &series;
  options.alerts = &alerts;
  options.flight = &flight;
  options.slo_ttft_seconds = 1e-9;  // Nothing can meet this.
  const sim::ServingSimResult observed =
      sim::SimulateServing(model, schedule, trace, options);

  EXPECT_EQ(observed.completed, plain.completed);
  EXPECT_DOUBLE_EQ(observed.makespan, plain.makespan);
  EXPECT_DOUBLE_EQ(observed.p99_ttft, plain.p99_ttft);
  EXPECT_DOUBLE_EQ(observed.decode_utilization, plain.decode_utilization);

  // The ladder saw every arrival and completion.
  int64_t offered = 0;
  int64_t completed = 0;
  for (int level = 0; level < 3; ++level) {
    for (const WindowStats& window : series.Level(level)) {
      offered += window.offered;
      completed += window.completed;
    }
  }
  EXPECT_EQ(offered, 80);
  EXPECT_EQ(completed, 80);
  // Attainment 0 under the impossible SLO fires the page rule.
  EXPECT_FALSE(alerts.transitions().empty());
  EXPECT_TRUE(alerts.transitions().front().firing);
  // The flight ring stayed bounded and captured begin/end notes.
  EXPECT_GT(flight.appended(), 0);
  EXPECT_LE(flight.size(), 32u);
  const std::string dump = flight.Json();
  EXPECT_NE(dump.find("sim begin"), std::string::npos);
  EXPECT_NE(dump.find("sim end"), std::string::npos);
}

TEST(TraceSampling, SimRequiresTimeseriesForAlerts) {
  const core::PipelineModel model = rago::testing::TinyHyperscaleModel();
  const core::Schedule schedule = SimpleSchedule(model, 8, 8, 4, 64);
  const sim::ArrivalTrace trace = sim::BurstTrace(4);

  SloAlertOptions alert_options;
  alert_options.rules.push_back({});
  SloAlertEngine alerts(alert_options);
  sim::ServingSimOptions options;
  options.alerts = &alerts;  // No timeseries: nothing feeds the engine.
  EXPECT_THROW(sim::SimulateServing(model, schedule, trace, options),
               ConfigError);
}

}  // namespace
}  // namespace rago::obs
