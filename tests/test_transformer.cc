/**
 * @file test_transformer.cc
 * Tests for the transformer architecture presets: parameter counts
 * must land near their nominal sizes, since the paper's cost model
 * keys entirely off parameter-derived FLOPs and bytes.
 */
#include <gtest/gtest.h>

#include "common/check.h"
#include "models/transformer.h"
#include "tests/testing/test_support.h"

namespace rago::models {
namespace {

/// Nominal size in parameters and the allowed relative deviation.
struct SizeCase {
  const char* name;
  TransformerConfig (*factory)();
  double nominal;
  double tolerance;
};

class ParamCountTest : public ::testing::TestWithParam<SizeCase> {};

TEST_P(ParamCountTest, ParamsNearNominal) {
  const SizeCase& c = GetParam();
  const TransformerConfig config = c.factory();
  EXPECT_NO_THROW(config.Validate());
  const double params = static_cast<double>(config.NumParams());
  RAGO_EXPECT_REL_NEAR(params, c.nominal, c.tolerance)
      << config.name << " has " << params << " params, nominal "
      << c.nominal;
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ParamCountTest,
    ::testing::Values(SizeCase{"1B", &Llama1B, 1.24e9, 0.10},
                      SizeCase{"8B", &Llama8B, 8.0e9, 0.10},
                      SizeCase{"70B", &Llama70B, 70.6e9, 0.10},
                      SizeCase{"405B", &Llama405B, 405e9, 0.10},
                      SizeCase{"120M", &Encoder120M, 120e6, 0.15}),
    [](const ::testing::TestParamInfo<SizeCase>& info) {
      return std::string(info.param.name);
    });

TEST(Transformer, PresetsAreOrderedBySize) {
  EXPECT_LT(Encoder120M().NumParams(), Llama1B().NumParams());
  EXPECT_LT(Llama1B().NumParams(), Llama8B().NumParams());
  EXPECT_LT(Llama8B().NumParams(), Llama70B().NumParams());
  EXPECT_LT(Llama70B().NumParams(), Llama405B().NumParams());
}

TEST(Transformer, LlamaBySizeDispatch) {
  EXPECT_EQ(LlamaBySize(1).name, "Llama-1B");
  EXPECT_EQ(LlamaBySize(8).name, "Llama-8B");
  EXPECT_EQ(LlamaBySize(70).name, "Llama-70B");
  EXPECT_EQ(LlamaBySize(405).name, "Llama-405B");
  EXPECT_THROW(LlamaBySize(13), rago::ConfigError);
}

TEST(Transformer, WeightBytesEqualParamsForInt8) {
  const TransformerConfig c = Llama8B();
  EXPECT_DOUBLE_EQ(c.WeightBytes(),
                   static_cast<double>(c.NumParams()) * 1.0);
}

TEST(Transformer, KvBytesPerTokenUsesGqaGeometry) {
  const TransformerConfig c = Llama70B();
  // 2 (K and V) * kv_dim * 2 bytes * layers.
  const double expected = 2.0 * (8 * 128) * 2.0 * 80;
  EXPECT_DOUBLE_EQ(c.KvBytesPerToken(), expected);
  // GQA shrinks the cache 8x versus full multi-head attention.
  TransformerConfig mha = c;
  mha.num_kv_heads = mha.num_heads;
  EXPECT_DOUBLE_EQ(mha.KvBytesPerToken(), 8.0 * c.KvBytesPerToken());
}

TEST(Transformer, EncoderUsesClassicFfnAndBidirectional) {
  const TransformerConfig encoder = Encoder120M();
  EXPECT_EQ(encoder.kind, ModelKind::kEncoder);
  EXPECT_FALSE(encoder.gated_ffn);
  EXPECT_EQ(encoder.num_kv_heads, encoder.num_heads);
}

TEST(Transformer, ValidateCatchesBadGeometry) {
  TransformerConfig c = Llama8B();
  c.head_dim = 100;  // heads * head_dim != d_model
  EXPECT_THROW(c.Validate(), rago::ConfigError);

  c = Llama8B();
  c.num_kv_heads = c.num_heads + 1;
  EXPECT_THROW(c.Validate(), rago::ConfigError);

  c = Llama8B();
  c.num_layers = 0;
  EXPECT_THROW(c.Validate(), rago::ConfigError);

  c = Llama8B();
  c.vocab_size = 0;
  EXPECT_THROW(c.Validate(), rago::ConfigError);
}

TEST(Transformer, TiedEmbeddingsHalveEmbeddingParams) {
  TransformerConfig tied = Llama8B();
  TransformerConfig untied = Llama8B();
  tied.tied_embeddings = true;
  untied.tied_embeddings = false;
  const int64_t diff = untied.NumParams() - tied.NumParams();
  EXPECT_EQ(diff, static_cast<int64_t>(untied.vocab_size) * untied.d_model);
}

}  // namespace
}  // namespace rago::models
