/**
 * @file test_ann_pq.cc
 * Tests for the product quantizer: code sizes, reconstruction quality,
 * and ADC distance consistency.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/dataset.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/pq.h"

namespace rago::ann {
namespace {

Matrix TrainData(size_t n = 1024, size_t dim = 16, uint64_t seed = 3) {
  Rng rng(seed);
  return GenClustered(n, dim, 8, 0.4f, rng);
}

TEST(Pq, CodeBytesEqualSubspaceCount) {
  const Matrix data = TrainData();
  Rng rng(1);
  const ProductQuantizer pq(data, 4, rng);
  EXPECT_EQ(pq.m(), 4);
  EXPECT_EQ(pq.CodeBytes(), 4u);
  EXPECT_EQ(pq.sub_dim(), 4u);
}

TEST(Pq, RequiresDivisibleDimension) {
  const Matrix data = TrainData(512, 10);
  Rng rng(1);
  EXPECT_THROW(ProductQuantizer(data, 3, rng), rago::ConfigError);
  EXPECT_NO_THROW(ProductQuantizer(data, 5, rng));
}

TEST(Pq, RequiresEnoughTrainingData) {
  const Matrix data = TrainData(100, 8);
  Rng rng(1);
  EXPECT_THROW(ProductQuantizer(data, 2, rng), rago::ConfigError);
}

TEST(Pq, EncodeDecodeReconstructsApproximately) {
  const Matrix data = TrainData();
  Rng rng(2);
  const ProductQuantizer pq(data, 8, rng);
  std::vector<uint8_t> code(pq.CodeBytes());
  std::vector<float> decoded(data.dim());
  double total_err = 0.0;
  double total_norm = 0.0;
  for (size_t i = 0; i < 64; ++i) {
    pq.Encode(data.Row(i), code.data());
    pq.Decode(code.data(), decoded.data());
    total_err += L2Sq(data.Row(i), decoded.data(), data.dim());
    total_norm += Dot(data.Row(i), data.Row(i), data.dim());
  }
  // Relative reconstruction error small on clustered data.
  EXPECT_LT(total_err / total_norm, 0.05);
}

TEST(Pq, MoreSubspacesReduceReconstructionError) {
  const Matrix data = TrainData(2048, 16, 5);
  Rng rng_a(7);
  Rng rng_b(7);
  const ProductQuantizer coarse(data, 2, rng_a);
  const ProductQuantizer fine(data, 8, rng_b);
  auto recon_error = [&](const ProductQuantizer& pq) {
    std::vector<uint8_t> code(pq.CodeBytes());
    std::vector<float> decoded(data.dim());
    double err = 0.0;
    for (size_t i = 0; i < 128; ++i) {
      pq.Encode(data.Row(i), code.data());
      pq.Decode(code.data(), decoded.data());
      err += L2Sq(data.Row(i), decoded.data(), data.dim());
    }
    return err;
  };
  EXPECT_LT(recon_error(fine), recon_error(coarse));
}

TEST(Pq, AdcDistanceEqualsDecodedDistance) {
  // ADC(q, code) must equal the exact L2 between q and Decode(code):
  // both sum the same per-subspace squared distances.
  const Matrix data = TrainData();
  Rng rng(4);
  const ProductQuantizer pq(data, 4, rng);
  Rng qrng(9);
  const Matrix queries = GenQueriesNear(data, 8, 0.2f, qrng);
  std::vector<uint8_t> code(pq.CodeBytes());
  std::vector<float> decoded(data.dim());
  for (size_t q = 0; q < queries.rows(); ++q) {
    const auto table = pq.BuildAdcTable(queries.Row(q));
    for (size_t i = 0; i < 16; ++i) {
      pq.Encode(data.Row(i), code.data());
      pq.Decode(code.data(), decoded.data());
      const float adc = pq.AdcDistance(table, code.data());
      const float exact = L2Sq(queries.Row(q), decoded.data(), data.dim());
      EXPECT_NEAR(adc, exact, 1e-3f * std::max(1.0f, exact));
    }
  }
}

TEST(Pq, EncodeAllMatchesIndividualEncode) {
  const Matrix data = TrainData(512, 8);
  Rng rng(6);
  const ProductQuantizer pq(data, 4, rng);
  const std::vector<uint8_t> all = pq.EncodeAll(data);
  ASSERT_EQ(all.size(), data.rows() * pq.CodeBytes());
  std::vector<uint8_t> one(pq.CodeBytes());
  for (size_t i = 0; i < 32; ++i) {
    pq.Encode(data.Row(i), one.data());
    for (size_t b = 0; b < pq.CodeBytes(); ++b) {
      EXPECT_EQ(all[i * pq.CodeBytes() + b], one[b]);
    }
  }
}

TEST(Pq, PaperCompressionGeometry) {
  // The paper compresses 768-dim vectors to 96 bytes = 1 byte per 8
  // dims. Verify the geometry is expressible.
  Rng rng(8);
  const Matrix data = GenClustered(512, 768, 4, 0.5f, rng);
  Rng train_rng(9);
  const ProductQuantizer pq(data, 96, train_rng, /*kmeans_iterations=*/2);
  EXPECT_EQ(pq.CodeBytes(), 96u);
  EXPECT_EQ(pq.sub_dim(), 8u);
  // Compression ratio vs fp32: 32x.
  const double raw_bytes = 768 * 4.0;
  EXPECT_DOUBLE_EQ(raw_bytes / pq.CodeBytes(), 32.0);
}

}  // namespace
}  // namespace rago::ann
