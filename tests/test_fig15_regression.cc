/**
 * @file test_fig15_regression.cc
 * Golden-number regression for the paper's headline result (Fig. 15):
 * RAGO versus the LLM-only-system-extension baseline on Case II
 * (long-context 70B, 1M tokens) and Case IV (rewriter + reranker,
 * 70B), 128-XPU cluster, same grid as bench_fig15_rago_vs_baseline.
 *
 * The frozen values are this repo's deterministic reproduction as of
 * the sharded-retrieval PR. The tight tolerances are the point:
 * refactors of the cost models, optimizer, or retrieval tier must not
 * silently bend the headline speedups. If a change moves these numbers
 * *intentionally*, re-freeze them here and say so in the PR.
 */
#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "core/pipeline_model.h"
#include "core/schema.h"
#include "hardware/cluster.h"
#include "rago/optimizer.h"
#include "tests/testing/test_support.h"

namespace rago {
namespace {

struct Fig15Numbers {
  double rago_max_qpc = 0.0;
  double baseline_max_qpc = 0.0;
  double ttft_reduction = 0.0;  ///< At the baseline's max throughput.
};

Fig15Numbers RunCase(const core::RAGSchema& schema) {
  const core::PipelineModel model(schema, LargeCluster());
  const opt::Optimizer optimizer(model, bench::StandardGrid());
  const opt::OptimizerResult rago_result = optimizer.Search();
  const opt::OptimizerResult baseline = optimizer.SearchBaseline();

  Fig15Numbers numbers;
  numbers.rago_max_qpc = rago_result.MaxQpsPerChip().perf.qps_per_chip;
  numbers.baseline_max_qpc = baseline.MaxQpsPerChip().perf.qps_per_chip;
  const double base_ttft = baseline.MaxQpsPerChip().perf.ttft;
  const double rago_ttft = bench::TtftAtThroughput(
      rago_result.pareto, numbers.baseline_max_qpc);
  if (rago_ttft > 0) {
    numbers.ttft_reduction = 1.0 - rago_ttft / base_ttft;
  }
  return numbers;
}

TEST(Fig15Regression, CaseIILongContextSpeedupBand) {
  const Fig15Numbers numbers =
      RunCase(core::MakeLongContextSchema(70, 1'000'000));
  // Frozen reproduction values (paper: ~1.7x max QPS/Chip).
  RAGO_EXPECT_REL_NEAR(numbers.rago_max_qpc, 0.882, 0.02);
  RAGO_EXPECT_REL_NEAR(numbers.baseline_max_qpc, 0.550, 0.02);
  const double speedup = numbers.rago_max_qpc / numbers.baseline_max_qpc;
  EXPECT_GE(speedup, 1.55);
  EXPECT_LE(speedup, 1.65);
  // RAGO meets the baseline's best throughput at a fraction of its
  // TTFT (paper: up to 55% lower; this reproduction: >90%).
  EXPECT_GE(numbers.ttft_reduction, 0.90);
}

TEST(Fig15Regression, CaseIVRewriterRerankerSpeedupBand) {
  const Fig15Numbers numbers =
      RunCase(core::MakeRewriterRerankerSchema(70));
  // Frozen reproduction values (paper: ~1.5x max QPS/Chip).
  RAGO_EXPECT_REL_NEAR(numbers.rago_max_qpc, 2.144, 0.02);
  RAGO_EXPECT_REL_NEAR(numbers.baseline_max_qpc, 1.482, 0.02);
  const double speedup = numbers.rago_max_qpc / numbers.baseline_max_qpc;
  EXPECT_GE(speedup, 1.40);
  EXPECT_LE(speedup, 1.50);
  EXPECT_GE(numbers.ttft_reduction, 0.90);
}

}  // namespace
}  // namespace rago
