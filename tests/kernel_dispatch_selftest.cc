/**
 * @file kernel_dispatch_selftest.cc
 * Standalone kernel-dispatch selftest (no GTest dependency).
 *
 * Prints the compiled/detected/active kernel variants, then checks the
 * dispatch invariants fast enough for every CI job: scalar/dispatched
 * value agreement across remainder-lane dims, batch-vs-tile
 * bit-identity, ADC bit-identity, and the force-scalar override.
 * CTest runs it twice — dispatched, and with RAGO_FORCE_SCALAR_KERNELS
 * set — so the scalar fallback path stays green on non-AVX runners.
 * Exits 0 on success, 1 on the first failed check.
 */
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/packed_codes.h"

namespace {

using rago::Rng;
namespace kernels = rago::ann::kernels;

int g_failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++g_failures;
  }
}

std::vector<float> RandomBlock(Rng& rng, size_t count) {
  std::vector<float> out(count);
  for (float& x : out) {
    x = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

void CheckVariantAgreement() {
  Rng rng(101);
  for (size_t dim : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{64},
                     size_t{100}}) {
    const size_t rows = 13;
    const std::vector<float> query = RandomBlock(rng, dim);
    const std::vector<float> data = RandomBlock(rng, rows * dim);
    std::vector<float> scalar_l2(rows);
    std::vector<float> active_l2(rows);
    std::vector<float> scalar_dot(rows);
    std::vector<float> active_dot(rows);
    kernels::ScalarKernels().l2sq_batch(query.data(), data.data(), rows, dim,
                                        scalar_l2.data());
    kernels::Active().l2sq_batch(query.data(), data.data(), rows, dim,
                                 active_l2.data());
    kernels::ScalarKernels().dot_batch(query.data(), data.data(), rows, dim,
                                       scalar_dot.data());
    kernels::Active().dot_batch(query.data(), data.data(), rows, dim,
                                active_dot.data());
    for (size_t i = 0; i < rows; ++i) {
      const float l2_scale = std::fmax(std::fabs(scalar_l2[i]), 1.0f);
      const float dot_scale = std::fmax(std::fabs(scalar_dot[i]), 1.0f);
      Check(std::fabs(scalar_l2[i] - active_l2[i]) <= 1e-5f * l2_scale,
            "l2sq_batch scalar/active agreement");
      Check(std::fabs(scalar_dot[i] - active_dot[i]) <= 1e-5f * dot_scale,
            "dot_batch scalar/active agreement");
    }
    // Tile must be bit-identical to batch within the active variant.
    const size_t queries = 5;
    const std::vector<float> query_block = RandomBlock(rng, queries * dim);
    std::vector<float> tiled(queries * rows);
    std::vector<float> batched(rows);
    kernels::Active().l2sq_tile(query_block.data(), queries, data.data(),
                                rows, dim, tiled.data());
    for (size_t q = 0; q < queries; ++q) {
      kernels::Active().l2sq_batch(query_block.data() + q * dim, data.data(),
                                   rows, dim, batched.data());
      for (size_t i = 0; i < rows; ++i) {
        Check(tiled[q * rows + i] == batched[i],
              "l2sq_tile bit-identical to l2sq_batch");
      }
    }
  }
}

void CheckAdcAgreement() {
  Rng rng(102);
  const size_t m = 8;
  const size_t codes = 53;  // Partial packed tail block.
  const std::vector<float> table =
      RandomBlock(rng, m * kernels::kAdcCentroids);
  std::vector<uint8_t> code_block(codes * m);
  for (uint8_t& c : code_block) {
    c = static_cast<uint8_t>(rng.NextBounded(kernels::kAdcCentroids));
  }
  std::vector<float> scalar_out(codes);
  std::vector<float> active_out(codes);
  kernels::ScalarKernels().adc_batch(table.data(), code_block.data(), codes,
                                     m, scalar_out.data());
  kernels::Active().adc_batch(table.data(), code_block.data(), codes, m,
                              active_out.data());
  for (size_t i = 0; i < codes; ++i) {
    Check(scalar_out[i] == active_out[i],
          "adc_batch bit-identical across variants");
  }
  // Packed layout: same distances, bit-for-bit, in the active variant.
  const rago::ann::PackedCodes packed(code_block.data(), codes, m);
  std::vector<float> packed_out(codes);
  kernels::Active().adc_packed(table.data(), packed.data(), codes, m,
                               packed_out.data());
  for (size_t i = 0; i < codes; ++i) {
    Check(scalar_out[i] == packed_out[i],
          "adc_packed bit-identical to strided adc_batch");
  }
}

void CheckForceScalarOverride() {
  const bool was_forced = kernels::ForceScalarActive();
  kernels::SetForceScalar(true);
  Check(kernels::ForceScalarActive(), "SetForceScalar(true) sticks");
  Check(std::string_view(kernels::Active().name) == "scalar",
        "forced-scalar dispatch returns the scalar table");
  kernels::SetForceScalar(was_forced);
}

}  // namespace

int main() {
  std::printf("kernel dispatch selftest\n");
  std::printf("  avx2 compiled:    %s\n",
              kernels::Avx2KernelsCompiled() ? "yes" : "no");
  std::printf("  avx2 supported:   %s\n",
              kernels::CpuSupportsAvx2() ? "yes" : "no");
  std::printf("  avx512 compiled:  %s\n",
              kernels::Avx512KernelsCompiled() ? "yes" : "no");
  std::printf("  avx512 supported: %s\n",
              kernels::CpuSupportsAvx512() ? "yes" : "no");
  std::printf("  force scalar:     %s\n",
              kernels::ForceScalarActive() ? "yes" : "no");
  std::printf("  active variant:   %s\n", kernels::Active().name);

  CheckVariantAgreement();
  CheckAdcAgreement();
  CheckForceScalarOverride();

  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
