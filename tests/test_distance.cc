/**
 * @file test_distance.cc
 * Tests for the distance kernels: L2/IP correctness, metric dispatch,
 * L2-vs-IP rank equivalence on unit vectors, and degenerate inputs.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/distance.h"
#include "tests/testing/test_support.h"

namespace rago::ann {
namespace {

TEST(Distance, L2SqMatchesManualExpansion) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, 6.0f, 3.0f};
  // (1-4)^2 + (2-6)^2 + 0 = 9 + 16 = 25.
  EXPECT_FLOAT_EQ(L2Sq(a, b, 3), 25.0f);
  EXPECT_FLOAT_EQ(L2Sq(a, a, 3), 0.0f);
  EXPECT_FLOAT_EQ(L2Sq(a, b, 3), L2Sq(b, a, 3));  // Symmetric.
}

TEST(Distance, DotMatchesManualExpansion) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, 6.0f, 3.0f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 4.0f + 12.0f + 9.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 3), Dot(b, a, 3));
}

TEST(Distance, ZeroDimIsDegenerateButDefined) {
  const float a[1] = {1.0f};
  EXPECT_FLOAT_EQ(L2Sq(a, a, 0), 0.0f);
  EXPECT_FLOAT_EQ(Dot(a, a, 0), 0.0f);
}

using DistanceSeeded = rago::testing::SeededTest;

TEST_F(DistanceSeeded, DispatchMatchesKernels) {
  Rng& rng = this->rng();
  std::vector<float> a(16);
  std::vector<float> b(16);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.NextGaussian());
    b[i] = static_cast<float>(rng.NextGaussian());
  }
  EXPECT_FLOAT_EQ(Distance(Metric::kL2, a.data(), b.data(), a.size()),
                  L2Sq(a.data(), b.data(), a.size()));
  // Inner product is negated so smaller still means more similar.
  EXPECT_FLOAT_EQ(
      Distance(Metric::kInnerProduct, a.data(), b.data(), a.size()),
      -Dot(a.data(), b.data(), a.size()));
}

TEST(Distance, InnerProductDistanceSmallerForMoreAlignedVectors) {
  const float q[2] = {1.0f, 0.0f};
  const float aligned[2] = {5.0f, 0.0f};
  const float orthogonal[2] = {0.0f, 5.0f};
  EXPECT_LT(Distance(Metric::kInnerProduct, q, aligned, 2),
            Distance(Metric::kInnerProduct, q, orthogonal, 2));
}

/// Normalizes `v` to unit L2 norm (skips near-zero vectors).
bool Normalize(std::vector<float>& v) {
  double norm_sq = 0.0;
  for (const float x : v) {
    norm_sq += static_cast<double>(x) * x;
  }
  if (norm_sq < 1e-12) {
    return false;
  }
  const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : v) {
    x *= inv;
  }
  return true;
}

TEST(Distance, L2AndIpAgreeOnUnitVectors) {
  // On the unit sphere, ||a-b||^2 = 2 - 2<a,b>, so ranking by squared
  // L2 distance must equal ranking by negated inner product.
  Rng rng(7);
  constexpr size_t kDim = 12;
  constexpr size_t kNumVectors = 64;
  std::vector<std::vector<float>> points;
  while (points.size() < kNumVectors) {
    std::vector<float> v(kDim);
    for (float& x : v) {
      x = static_cast<float>(rng.NextGaussian());
    }
    if (Normalize(v)) {
      points.push_back(std::move(v));
    }
  }
  std::vector<float> query(kDim);
  for (float& x : query) {
    x = static_cast<float>(rng.NextGaussian());
  }
  ASSERT_TRUE(Normalize(query));

  // Pointwise identity.
  for (const auto& p : points) {
    const float l2 = Distance(Metric::kL2, query.data(), p.data(), kDim);
    const float ip =
        Distance(Metric::kInnerProduct, query.data(), p.data(), kDim);
    EXPECT_NEAR(l2, 2.0f + 2.0f * ip, 1e-4f);
  }

  // Rank identity.
  std::vector<size_t> by_l2(points.size());
  std::vector<size_t> by_ip(points.size());
  std::iota(by_l2.begin(), by_l2.end(), 0);
  std::iota(by_ip.begin(), by_ip.end(), 0);
  auto rank_by = [&](Metric metric) {
    return [&, metric](size_t i, size_t j) {
      const float di =
          Distance(metric, query.data(), points[i].data(), kDim);
      const float dj =
          Distance(metric, query.data(), points[j].data(), kDim);
      if (di != dj) {
        return di < dj;
      }
      return i < j;
    };
  };
  std::sort(by_l2.begin(), by_l2.end(), rank_by(Metric::kL2));
  std::sort(by_ip.begin(), by_ip.end(), rank_by(Metric::kInnerProduct));
  // Floating-point rounding can swap near-equal mid-ranks; the head of
  // the ranking (what retrieval consumes) must agree exactly.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(by_l2[i], by_ip[i]) << "rank " << i;
  }
}

TEST(Distance, DuplicateVectorsShareDistances) {
  const float a[4] = {0.5f, -1.5f, 2.0f, 0.0f};
  const float b[4] = {0.5f, -1.5f, 2.0f, 0.0f};
  const float q[4] = {1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_EQ(Distance(Metric::kL2, q, a, 4), Distance(Metric::kL2, q, b, 4));
  EXPECT_EQ(Distance(Metric::kInnerProduct, q, a, 4),
            Distance(Metric::kInnerProduct, q, b, 4));
}

}  // namespace
}  // namespace rago::ann
