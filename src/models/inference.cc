#include "models/inference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace rago::models {

InferenceModel::InferenceModel(TransformerConfig config, XpuSpec xpu)
    : config_(std::move(config)), xpu_(std::move(xpu)) {
  config_.Validate();
  RAGO_REQUIRE(xpu_.peak_flops > 0 && xpu_.hbm_bw > 0 && xpu_.ici_bw > 0,
               "XPU spec must have positive compute/memory/link rates");
}

std::vector<ShardingPlan>
InferenceModel::PlansFor(int chips) const {
  RAGO_REQUIRE(chips > 0, "need at least one chip");
  RAGO_REQUIRE(IsPowerOfTwo(chips),
               "chip counts are allocated in powers of two");
  std::vector<ShardingPlan> plans;
  for (int tensor = 1; tensor <= chips; tensor *= 2) {
    const int pipeline = chips / tensor;
    // Pipeline depth cannot exceed layer count; tensor parallelism is
    // capped at the attention head count (finer splits are not
    // profitable on systolic arrays).
    if (pipeline > config_.num_layers || tensor > config_.num_heads) {
      continue;
    }
    plans.push_back(ShardingPlan{tensor, pipeline});
  }
  // May be empty when the chip count exceeds what the model can use
  // (pipeline depth > layers and tensor split > heads); callers treat
  // an empty option set as infeasible.
  return plans;
}

double
InferenceModel::WeightBytesPerChip(const ShardingPlan& plan) const {
  return config_.WeightBytes() / plan.Chips();
}

PhaseCost
InferenceModel::EvalPlan(const std::vector<Op>& ops, const ShardingPlan& plan,
                         double per_layer_comm_bytes, double kv_cache_bytes,
                         bool decode_step) const {
  const double eff_flops = xpu_.EffectiveFlops();
  const double eff_mem = xpu_.EffectiveMemBw();
  const double eff_net = xpu_.EffectiveNetBw();
  const double tensor = plan.tensor;
  const double pipeline = plan.pipeline;

  // Per-operator roofline with tensor-parallel division of both the
  // compute and the resident weights / activations.
  double compute_time = 0.0;
  for (const Op& op : ops) {
    const double flops = op.flops / tensor;
    const double bytes = (op.weight_bytes + op.act_bytes) / tensor;
    const double t = std::max(flops / eff_flops, bytes / eff_mem);
    compute_time += op.count * t;
  }

  // Tensor parallelism: two all-reduces per layer (post-attention and
  // post-FFN), ring cost 2*(t-1)/t of the activation size per chip.
  double comm_time = 0.0;
  if (plan.tensor > 1) {
    const double ring = 2.0 * (tensor - 1.0) / tensor;
    comm_time += config_.num_layers * 2.0 * ring * per_layer_comm_bytes /
                 eff_net;
  }

  // Pipeline parallelism: activations hop between consecutive stages.
  double pp_comm = 0.0;
  if (plan.pipeline > 1) {
    pp_comm = (pipeline - 1.0) * per_layer_comm_bytes / eff_net;
  }

  const double total = compute_time + comm_time + pp_comm;

  PhaseCost cost;
  cost.plan = plan;
  // A single request traverses every stage: latency is the full sum.
  cost.latency = total;
  // In steady state each pipeline stage works on a different
  // (micro)batch, so completions are paced by the slowest stage.
  const double stage_time = (compute_time + comm_time) / pipeline + pp_comm;
  cost.throughput = 1.0 / stage_time;  // Batches (or steps) per second.
  if (decode_step) {
    // For decode, a sequence's next step cannot start until its current
    // step finishes the full pipeline, so TPOT is the full latency;
    // interleaved batches keep stages busy for throughput.
    cost.latency = total;
  }

  cost.mem_per_chip = config_.WeightBytes() / plan.Chips() +
                      kv_cache_bytes / plan.Chips();
  cost.feasible = cost.mem_per_chip <= xpu_.hbm_bytes;
  return cost;
}

std::vector<PhaseCost>
InferenceModel::PrefixOptions(int chips, int64_t batch, int64_t seq_len,
                              const AttentionMode& mode) const {
  std::vector<PhaseCost> options;
  for (int replicas = 1; replicas <= chips && replicas <= batch;
       replicas *= 2) {
    const int sub_chips = chips / replicas;
    const int64_t replica_batch = CeilDiv(batch, replicas);
    const std::vector<Op> ops =
        BuildPrefixOps(config_, replica_batch, seq_len, mode);
    const double per_layer_comm = static_cast<double>(replica_batch) *
                                  seq_len * config_.d_model *
                                  config_.bytes_per_activation;
    // Prefix must hold the KV cache it produces.
    const double kv_bytes = static_cast<double>(replica_batch) * seq_len *
                            config_.KvBytesPerToken();
    for (const ShardingPlan& plan : PlansFor(sub_chips)) {
      PhaseCost cost = EvalPlan(ops, plan, per_layer_comm, kv_bytes,
                                /*decode_step=*/false);
      // Each replica completes replica-batches at the stage rate;
      // fleet items/s = full batch times that rate.
      cost.throughput *= static_cast<double>(batch);
      cost.plan.replicas = replicas;
      options.push_back(cost);
    }
  }
  return options;
}

std::vector<PhaseCost>
InferenceModel::DecodeOptions(int chips, int64_t batch, int64_t context_len,
                              int64_t max_context) const {
  RAGO_REQUIRE(max_context >= context_len,
               "max_context must be at least the average context");
  std::vector<PhaseCost> options;
  for (int replicas = 1; replicas <= chips && replicas <= batch;
       replicas *= 2) {
    const int sub_chips = chips / replicas;
    const int64_t replica_batch = CeilDiv(batch, replicas);
    const std::vector<Op> ops =
        BuildDecodeStepOps(config_, replica_batch, context_len);
    const double per_layer_comm = static_cast<double>(replica_batch) *
                                  config_.d_model *
                                  config_.bytes_per_activation;
    const double kv_bytes = static_cast<double>(replica_batch) * max_context *
                            config_.KvBytesPerToken();
    for (const ShardingPlan& plan : PlansFor(sub_chips)) {
      PhaseCost cost =
          EvalPlan(ops, plan, per_layer_comm, kv_bytes, /*decode_step=*/true);
      // Tokens per second across all replicas' continuous batches.
      cost.throughput *= static_cast<double>(batch);
      cost.plan.replicas = replicas;
      options.push_back(cost);
    }
  }
  return options;
}

std::vector<PhaseCost>
InferenceModel::EncodeOptions(int chips, int64_t batch,
                              int64_t chunk_len) const {
  std::vector<PhaseCost> options;
  for (int replicas = 1; replicas <= chips && replicas <= batch;
       replicas *= 2) {
    const int sub_chips = chips / replicas;
    const int64_t replica_batch = CeilDiv(batch, replicas);
    const std::vector<Op> ops =
        BuildEncodeOps(config_, replica_batch, chunk_len);
    const double per_layer_comm = static_cast<double>(replica_batch) *
                                  chunk_len * config_.d_model *
                                  config_.bytes_per_activation;
    // Encoders emit embeddings; no KV cache is retained.
    for (const ShardingPlan& plan : PlansFor(sub_chips)) {
      PhaseCost cost = EvalPlan(ops, plan, per_layer_comm,
                                /*kv_cache_bytes=*/0, /*decode_step=*/false);
      cost.throughput *= static_cast<double>(batch);  // Chunks per second.
      cost.plan.replicas = replicas;
      options.push_back(cost);
    }
  }
  return options;
}

namespace {

PhaseCost
BestOf(const std::vector<PhaseCost>& options) {
  PhaseCost best;
  best.feasible = false;
  best.latency = std::numeric_limits<double>::infinity();
  for (const PhaseCost& cost : options) {
    if (cost.feasible && cost.latency < best.latency) {
      best = cost;
    }
  }
  return best;
}

PhaseCost
BestThroughputOf(const std::vector<PhaseCost>& options) {
  PhaseCost best;
  best.feasible = false;
  best.throughput = 0.0;
  best.latency = std::numeric_limits<double>::infinity();
  for (const PhaseCost& cost : options) {
    if (!cost.feasible) {
      continue;
    }
    if (cost.throughput > best.throughput ||
        (cost.throughput == best.throughput &&
         cost.latency < best.latency)) {
      best = cost;
    }
  }
  return best;
}

}  // namespace

PhaseCost
InferenceModel::BestPrefix(int chips, int64_t batch, int64_t seq_len,
                           const AttentionMode& mode) const {
  return BestOf(PrefixOptions(chips, batch, seq_len, mode));
}

PhaseCost
InferenceModel::BestDecode(int chips, int64_t batch, int64_t context_len,
                           int64_t max_context) const {
  return BestThroughputOf(DecodeOptions(chips, batch, context_len, max_context));
}

PhaseCost
InferenceModel::BestEncode(int chips, int64_t batch, int64_t chunk_len) const {
  return BestOf(EncodeOptions(chips, batch, chunk_len));
}

int64_t
InferenceModel::MaxDecodeBatch(int chips, int64_t max_context) const {
  const double hbm_total = static_cast<double>(chips) * xpu_.hbm_bytes;
  const double weights = config_.WeightBytes();
  if (weights > hbm_total) {
    return 0;
  }
  const double kv_per_seq =
      static_cast<double>(max_context) * config_.KvBytesPerToken();
  const double max_seqs = (hbm_total - weights) / kv_per_seq;
  if (max_seqs < 1.0) {
    return 0;
  }
  // Round down to a power of two, consistent with the search grid.
  int64_t batch = 1;
  while (batch * 2 <= static_cast<int64_t>(max_seqs)) {
    batch *= 2;
  }
  return batch;
}

}  // namespace rago::models
