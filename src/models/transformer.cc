#include "models/transformer.h"

#include "common/check.h"

namespace rago::models {

int64_t
TransformerConfig::NumParams() const {
  const int64_t d = d_model;
  const int64_t kv = KvDim();
  // Attention: Q (d*d), K and V (d*kv each), O (d*d).
  const int64_t attn = d * d + 2 * d * kv + d * d;
  // FFN: gated (gate+up+down) or classic (up+down).
  const int64_t ffn =
      (gated_ffn ? 3 : 2) * static_cast<int64_t>(d) * ffn_dim;
  // Small per-layer norms are negligible but included for fidelity.
  const int64_t norms = 2 * d;
  const int64_t per_layer = attn + ffn + norms;
  const int64_t embed =
      static_cast<int64_t>(vocab_size) * d * (tied_embeddings ? 1 : 2);
  return per_layer * num_layers + embed;
}

void
TransformerConfig::Validate() const {
  RAGO_REQUIRE(num_layers > 0, name + ": num_layers must be positive");
  RAGO_REQUIRE(d_model > 0, name + ": d_model must be positive");
  RAGO_REQUIRE(num_heads > 0, name + ": num_heads must be positive");
  RAGO_REQUIRE(num_kv_heads > 0 && num_kv_heads <= num_heads,
               name + ": num_kv_heads must be in [1, num_heads]");
  RAGO_REQUIRE(num_heads * head_dim == d_model,
               name + ": heads * head_dim must equal d_model");
  RAGO_REQUIRE(ffn_dim > 0, name + ": ffn_dim must be positive");
  RAGO_REQUIRE(vocab_size > 0, name + ": vocab_size must be positive");
  RAGO_REQUIRE(bytes_per_weight > 0 && bytes_per_activation > 0,
               name + ": byte widths must be positive");
}

TransformerConfig
Llama1B() {
  TransformerConfig c;
  c.name = "Llama-1B";
  c.num_layers = 16;
  c.d_model = 2048;
  c.num_heads = 32;
  c.num_kv_heads = 8;
  c.head_dim = 64;
  c.ffn_dim = 8192;
  c.vocab_size = 128256;
  c.tied_embeddings = true;
  return c;
}

TransformerConfig
Llama8B() {
  TransformerConfig c;
  c.name = "Llama-8B";
  c.num_layers = 32;
  c.d_model = 4096;
  c.num_heads = 32;
  c.num_kv_heads = 8;
  c.head_dim = 128;
  c.ffn_dim = 14336;
  c.vocab_size = 128256;
  return c;
}

TransformerConfig
Llama70B() {
  TransformerConfig c;
  c.name = "Llama-70B";
  c.num_layers = 80;
  c.d_model = 8192;
  c.num_heads = 64;
  c.num_kv_heads = 8;
  c.head_dim = 128;
  c.ffn_dim = 28672;
  c.vocab_size = 128256;
  return c;
}

TransformerConfig
Llama405B() {
  TransformerConfig c;
  c.name = "Llama-405B";
  c.num_layers = 126;
  c.d_model = 16384;
  c.num_heads = 128;
  c.num_kv_heads = 8;
  c.head_dim = 128;
  c.ffn_dim = 53248;
  c.vocab_size = 128256;
  return c;
}

TransformerConfig
Encoder120M() {
  TransformerConfig c;
  c.name = "Encoder-120M";
  c.kind = ModelKind::kEncoder;
  c.num_layers = 12;
  c.d_model = 768;
  c.num_heads = 12;
  c.num_kv_heads = 12;
  c.head_dim = 64;
  c.ffn_dim = 3072;
  c.gated_ffn = false;
  c.vocab_size = 30522;
  c.tied_embeddings = true;
  return c;
}

TransformerConfig
LlamaBySize(int billions) {
  switch (billions) {
    case 1:
      return Llama1B();
    case 8:
      return Llama8B();
    case 70:
      return Llama70B();
    case 405:
      return Llama405B();
    default:
      RAGO_REQUIRE(false, "no Llama preset for " + std::to_string(billions) +
                              "B; choose 1, 8, 70, or 405");
  }
  return {};  // Unreachable.
}

}  // namespace rago::models
