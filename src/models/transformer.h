/**
 * @file transformer.h
 * Architectural descriptions of the transformer models in the paper.
 *
 * The paper evaluates Llama-3-family generative LLMs (1B, 8B, 70B,
 * 405B), an 8B query rewriter, and 120M-class encoder models
 * (document encoder and reranker). Only quantities that feed the
 * roofline cost model matter here: layer counts, hidden sizes,
 * grouped-query-attention geometry, FFN widths, vocabulary, and the
 * number of bytes per weight/activation. Weights are INT8 (1
 * byte/param) per the paper's methodology; activations and KV cache
 * are kept in 2-byte types.
 */
#ifndef RAGO_MODELS_TRANSFORMER_H
#define RAGO_MODELS_TRANSFORMER_H

#include <cstdint>
#include <string>

namespace rago::models {

/// Whether a model is used autoregressively or as a bidirectional encoder.
enum class ModelKind {
  kDecoder,  ///< Causal LM: prefix + autoregressive decode.
  kEncoder,  ///< Bidirectional encoder (document encoder, reranker).
};

/// Transformer architecture description (roofline-relevant fields only).
struct TransformerConfig {
  std::string name;
  ModelKind kind = ModelKind::kDecoder;

  int num_layers = 0;
  int d_model = 0;
  int num_heads = 0;
  int num_kv_heads = 0;  ///< < num_heads under grouped-query attention.
  int head_dim = 0;
  int ffn_dim = 0;
  bool gated_ffn = true;  ///< SwiGLU (3 matrices) vs classic MLP (2).
  int vocab_size = 0;
  bool tied_embeddings = false;

  double bytes_per_weight = 1.0;      ///< INT8 weights.
  double bytes_per_activation = 2.0;  ///< bf16 activations / KV cache.

  /// Hidden size of the concatenated KV projection (GQA-aware).
  int KvDim() const { return num_kv_heads * head_dim; }

  /// Total parameter count implied by the architecture.
  int64_t NumParams() const;

  /// Total weight footprint in bytes.
  double WeightBytes() const { return NumParams() * bytes_per_weight; }

  /// KV-cache bytes per token per sequence across all layers.
  double KvBytesPerToken() const {
    return 2.0 * KvDim() * bytes_per_activation * num_layers;
  }

  /// Throws ConfigError if the architecture is malformed.
  void Validate() const;
};

/// Llama-3.2-1B-class decoder (paper's "1B").
TransformerConfig Llama1B();
/// Llama-3-8B-class decoder (paper's "8B"; also the query rewriter).
TransformerConfig Llama8B();
/// Llama-3-70B-class decoder (paper's "70B").
TransformerConfig Llama70B();
/// Llama-3.1-405B-class decoder (paper's "405B").
TransformerConfig Llama405B();
/// 120M-class sentence-transformer encoder (document encoder, reranker).
TransformerConfig Encoder120M();

/// Preset by (approximate) billions of parameters: 1, 8, 70, or 405.
TransformerConfig LlamaBySize(int billions);

}  // namespace rago::models

#endif  // RAGO_MODELS_TRANSFORMER_H
