/**
 * @file inference.h
 * Roofline inference performance model for XPU accelerators.
 *
 * Implements the paper's inference simulator (§4a): a phase's latency
 * is the sum over its operators of max(compute time, memory time),
 * plus inter-chip communication for the sharding plan. Tensor
 * parallelism divides per-operator work across chips and adds two
 * all-reduces per layer; pipeline parallelism divides layers across
 * stages, multiplying throughput while leaving single-request latency
 * roughly unchanged. Hybrid plans combine both.
 */
#ifndef RAGO_MODELS_INFERENCE_H
#define RAGO_MODELS_INFERENCE_H

#include <cstdint>
#include <vector>

#include "hardware/xpu.h"
#include "models/ops.h"
#include "models/transformer.h"

namespace rago::models {

/// A (data × tensor × pipeline) parallel partitioning over chips.
/// `replicas` independent copies of the model each shard over
/// (tensor x pipeline) chips and serve a slice of the batch.
struct ShardingPlan {
  int tensor = 1;
  int pipeline = 1;
  int replicas = 1;

  int Chips() const { return tensor * pipeline * replicas; }
};

/// Cost of running one phase under a specific sharding plan.
struct PhaseCost {
  ShardingPlan plan;
  double latency = 0.0;        ///< Seconds for one batch / one step.
  double throughput = 0.0;     ///< Batches(prefix)/steps(decode) per sec
                               ///  times batch: items per second.
  double mem_per_chip = 0.0;   ///< Bytes of HBM required per chip.
  bool feasible = false;       ///< Fits in HBM.
};

/**
 * Inference cost model for one model on one XPU generation.
 *
 * All query methods are pure; the model owns no mutable state, so one
 * instance can be shared across threads.
 */
class InferenceModel {
 public:
  InferenceModel(TransformerConfig config, XpuSpec xpu);

  const TransformerConfig& config() const { return config_; }
  const XpuSpec& xpu() const { return xpu_; }

  /**
   * All feasible sharding plans for the prefix phase on `chips` chips
   * (power-of-two tensor/pipeline splits), batch `batch`, prompt
   * length `seq_len`. Latency is time to first token for the batch;
   * throughput is sequences/second in steady state.
   */
  std::vector<PhaseCost> PrefixOptions(
      int chips, int64_t batch, int64_t seq_len,
      const AttentionMode& mode = FullAttention()) const;

  /// Minimum-latency feasible prefix plan; feasible=false if none fits.
  PhaseCost BestPrefix(int chips, int64_t batch, int64_t seq_len,
                       const AttentionMode& mode = FullAttention()) const;

  /**
   * All feasible plans for one decode step with `batch` concurrent
   * sequences whose average live context is `context_len` tokens and
   * whose worst-case context is `max_context` (memory sizing).
   * Latency is the per-step (TPOT) latency; throughput is tokens/s.
   */
  std::vector<PhaseCost> DecodeOptions(int chips, int64_t batch,
                                       int64_t context_len,
                                       int64_t max_context) const;

  /**
   * Best feasible decode plan by throughput (ties broken on latency).
   * Decode serves a continuous stream, so sustained tokens/s is the
   * objective; the chosen plan's step latency is the reported TPOT.
   */
  PhaseCost BestDecode(int chips, int64_t batch, int64_t context_len,
                       int64_t max_context) const;

  /**
   * Encoder throughput/latency for encoding `batch` chunks of
   * `chunk_len` tokens (document encoder / reranker). Only valid for
   * encoder models.
   */
  std::vector<PhaseCost> EncodeOptions(int chips, int64_t batch,
                                       int64_t chunk_len) const;

  /// Minimum-latency feasible encode plan.
  PhaseCost BestEncode(int chips, int64_t batch, int64_t chunk_len) const;

  /**
   * Largest power-of-two continuous-batching batch size whose weights +
   * KV cache fit on `chips` chips with per-sequence context
   * `max_context`. Returns 0 if even batch 1 does not fit.
   */
  int64_t MaxDecodeBatch(int chips, int64_t max_context) const;

  /// Weight bytes per chip under a plan (for capacity reporting).
  double WeightBytesPerChip(const ShardingPlan& plan) const;

 private:
  PhaseCost EvalPlan(const std::vector<Op>& ops, const ShardingPlan& plan,
                     double per_layer_comm_bytes, double kv_cache_bytes,
                     bool decode_step) const;

  std::vector<ShardingPlan> PlansFor(int chips) const;

  TransformerConfig config_;
  XpuSpec xpu_;
};

}  // namespace rago::models

#endif  // RAGO_MODELS_INFERENCE_H
