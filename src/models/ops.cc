#include "models/ops.h"

#include "common/check.h"

namespace rago::models {
namespace {

/// Shared dense-projection + FFN operators for one layer, scaled by the
/// number of tokens processed (`tokens` = batch * seq for prefix/encode,
/// batch for one decode step).
void AppendProjectionOps(const TransformerConfig& c, double tokens,
                         std::vector<Op>& ops) {
  const double d = c.d_model;
  const double kv = c.KvDim();
  const double wb = c.bytes_per_weight;
  const double ab = c.bytes_per_activation;

  Op qkv;
  qkv.name = "qkv_proj";
  qkv.count = c.num_layers;
  qkv.flops = 2.0 * tokens * d * (d + 2.0 * kv);
  qkv.weight_bytes = d * (d + 2.0 * kv) * wb;
  qkv.act_bytes = tokens * (2.0 * d + 2.0 * kv) * ab;
  ops.push_back(qkv);

  Op out;
  out.name = "o_proj";
  out.count = c.num_layers;
  out.flops = 2.0 * tokens * d * d;
  out.weight_bytes = d * d * wb;
  out.act_bytes = 2.0 * tokens * d * ab;
  ops.push_back(out);

  const double ffn_mats = c.gated_ffn ? 3.0 : 2.0;
  Op ffn;
  ffn.name = "ffn";
  ffn.count = c.num_layers;
  ffn.flops = 2.0 * tokens * d * c.ffn_dim * ffn_mats;
  ffn.weight_bytes = ffn_mats * d * c.ffn_dim * wb;
  ffn.act_bytes = tokens * (d + c.ffn_dim) * ab * (c.gated_ffn ? 1.5 : 1.0);
  ops.push_back(ffn);
}

/// Language-model head evaluated for `tokens` positions.
Op LmHeadOp(const TransformerConfig& c, double tokens) {
  Op head;
  head.name = "lm_head";
  head.count = 1.0;
  head.flops = 2.0 * tokens * c.d_model * c.vocab_size;
  head.weight_bytes =
      static_cast<double>(c.d_model) * c.vocab_size * c.bytes_per_weight;
  head.act_bytes = tokens * c.vocab_size * c.bytes_per_activation;
  return head;
}

}  // namespace

std::vector<Op>
BuildPrefixOps(const TransformerConfig& config, int64_t batch, int64_t seq_len,
               const AttentionMode& mode) {
  RAGO_REQUIRE(batch > 0 && seq_len > 0,
               "prefix requires positive batch and sequence length");
  config.Validate();

  std::vector<Op> ops;
  const double b = static_cast<double>(batch);
  const double len = static_cast<double>(seq_len);
  const double tokens = b * len;
  const double d = config.d_model;
  const double ab = config.bytes_per_activation;

  AppendProjectionOps(config, tokens, ops);

  // Attention: causal masking halves the score/context work for
  // decoders; encoders attend bidirectionally.
  const double causal = config.kind == ModelKind::kDecoder ? 0.5 : 1.0;
  const double kv_traffic =
      tokens * 2.0 * config.KvDim() * ab + 2.0 * tokens * d * ab;

  if (!mode.hybrid) {
    Op attn;
    attn.name = "attention";
    attn.kind = OpKind::kAttention;
    attn.count = config.num_layers;
    attn.flops = 4.0 * b * len * len * d * causal;
    attn.act_bytes = kv_traffic;
    ops.push_back(attn);
  } else {
    // Long-context LLM variant (paper §5.2): one in `global_every`
    // layers attends to the full sequence, the rest to a local window.
    const int global_layers =
        (config.num_layers + mode.global_every - 1) / mode.global_every;
    const int local_layers = config.num_layers - global_layers;
    const double window = mode.local_window;

    Op global_attn;
    global_attn.name = "attention_global";
    global_attn.kind = OpKind::kAttention;
    global_attn.count = global_layers;
    global_attn.flops = 4.0 * b * len * len * d * causal;
    global_attn.act_bytes = kv_traffic;
    ops.push_back(global_attn);

    if (local_layers > 0) {
      Op local_attn;
      local_attn.name = "attention_local";
      local_attn.kind = OpKind::kAttention;
      local_attn.count = local_layers;
      local_attn.flops = 4.0 * b * len * window * d;
      local_attn.act_bytes = kv_traffic;
      ops.push_back(local_attn);
    }
  }

  Op embed;
  embed.name = "embed";
  embed.kind = OpKind::kOther;
  embed.act_bytes = tokens * d * ab;
  ops.push_back(embed);

  if (config.kind == ModelKind::kDecoder) {
    // Only the last position's logits are needed to emit token one.
    ops.push_back(LmHeadOp(config, b));
  }
  return ops;
}

std::vector<Op>
BuildDecodeStepOps(const TransformerConfig& config, int64_t batch,
                   int64_t context_len) {
  RAGO_REQUIRE(batch > 0 && context_len > 0,
               "decode requires positive batch and context length");
  RAGO_REQUIRE(config.kind == ModelKind::kDecoder,
               config.name + ": only decoder models can decode");
  config.Validate();

  std::vector<Op> ops;
  const double b = static_cast<double>(batch);
  const double ctx = static_cast<double>(context_len);
  const double d = config.d_model;
  const double ab = config.bytes_per_activation;

  AppendProjectionOps(config, b, ops);

  Op attn;
  attn.name = "attention";
  attn.kind = OpKind::kAttention;
  attn.count = config.num_layers;
  attn.flops = 4.0 * b * ctx * d;
  // Reading the KV cache of all prior tokens dominates decode traffic.
  attn.act_bytes = b * ctx * 2.0 * config.KvDim() * ab + 2.0 * b * d * ab;
  ops.push_back(attn);

  Op embed;
  embed.name = "embed";
  embed.kind = OpKind::kOther;
  embed.act_bytes = b * d * ab;
  ops.push_back(embed);

  ops.push_back(LmHeadOp(config, b));
  return ops;
}

std::vector<Op>
BuildEncodeOps(const TransformerConfig& config, int64_t batch,
               int64_t chunk_len) {
  RAGO_REQUIRE(config.kind == ModelKind::kEncoder,
               config.name + ": BuildEncodeOps requires an encoder model");
  return BuildPrefixOps(config, batch, chunk_len, FullAttention());
}

double
TotalFlops(const std::vector<Op>& ops) {
  double total = 0.0;
  for (const Op& op : ops) {
    total += op.count * op.flops;
  }
  return total;
}

double
TotalBytes(const std::vector<Op>& ops) {
  double total = 0.0;
  for (const Op& op : ops) {
    total += op.count * (op.weight_bytes + op.act_bytes);
  }
  return total;
}

}  // namespace rago::models
