/**
 * @file ops.h
 * Operator-level workload description for transformer phases.
 *
 * Following the paper's inference simulator (§4a, Fig. 4), a phase
 * (prefix, one decode step, or document encoding) is abstracted as a
 * sequence of operators, each with a FLOP count and the bytes it moves
 * through HBM. The roofline engine (inference.cc) derives per-operator
 * execution time as max(compute time, memory time) and adds inter-chip
 * communication for the chosen sharding plan.
 */
#ifndef RAGO_MODELS_OPS_H
#define RAGO_MODELS_OPS_H

#include <string>
#include <vector>

#include "models/transformer.h"

namespace rago::models {

/// Operator category; drives sharding/communication treatment.
enum class OpKind {
  kMatmul,     ///< Dense projection with resident weights.
  kAttention,  ///< Attention score/context computation (reads KV).
  kOther,      ///< Embedding lookups, norms, elementwise.
};

/// One operator (possibly repeated `count` times, e.g. once per layer).
struct Op {
  std::string name;
  OpKind kind = OpKind::kMatmul;
  double count = 1.0;         ///< Repetitions (layers).
  double flops = 0.0;         ///< FLOPs per repetition.
  double weight_bytes = 0.0;  ///< Weight traffic per repetition.
  double act_bytes = 0.0;     ///< Activation/KV traffic per repetition.
};

/// How prefix attention treats the sequence (normal vs long-context LLM).
struct AttentionMode {
  bool hybrid = false;   ///< Global attention only every `global_every`
                         ///  layers; others use a local window.
  int global_every = 4;  ///< 1-in-N layers with full attention.
  int local_window = 128;
};

/// Full-attention default.
inline AttentionMode FullAttention() { return AttentionMode{}; }

/// Efficient long-context LLM variant described in paper §5.2.
inline AttentionMode HybridLocalAttention() {
  AttentionMode mode;
  mode.hybrid = true;
  return mode;
}

/**
 * Operators for the prefix (prompt computation) phase.
 *
 * @param config model architecture.
 * @param batch number of sequences processed together.
 * @param seq_len prompt length in tokens.
 * @param mode attention variant (full vs hybrid-local).
 */
std::vector<Op> BuildPrefixOps(const TransformerConfig& config, int64_t batch,
                               int64_t seq_len,
                               const AttentionMode& mode = FullAttention());

/**
 * Operators for one autoregressive decode step.
 *
 * @param batch sequences in the continuous batch.
 * @param context_len tokens of KV cache read per sequence.
 */
std::vector<Op> BuildDecodeStepOps(const TransformerConfig& config,
                                   int64_t batch, int64_t context_len);

/**
 * Operators for bidirectional encoding of `batch` chunks of
 * `chunk_len` tokens each (document encoder / reranker workloads).
 */
std::vector<Op> BuildEncodeOps(const TransformerConfig& config, int64_t batch,
                               int64_t chunk_len);

/// Total FLOPs across an op list (for tests and quick estimates).
double TotalFlops(const std::vector<Op>& ops);

/// Total HBM traffic (weights + activations) across an op list.
double TotalBytes(const std::vector<Op>& ops);

}  // namespace rago::models

#endif  // RAGO_MODELS_OPS_H
