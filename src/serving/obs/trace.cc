#include "serving/obs/trace.h"

namespace rago::obs {
namespace {

constexpr double kMicrosPerSecond = 1e6;

}  // namespace

void
TraceRecorder::SetProcessName(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void
TraceRecorder::SetThreadName(int pid, int tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

TraceEvent&
TraceRecorder::AddComplete(std::string name, std::string category, int pid,
                           int tid, double start, double duration,
                           int64_t request_id) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = std::move(name);
  event.category = std::move(category);
  event.pid = pid;
  event.tid = tid;
  event.start = start;
  event.duration = duration;
  event.request_id = request_id;
  events_.push_back(std::move(event));
  return events_.back();
}

TraceEvent&
TraceRecorder::AddInstant(std::string name, std::string category, int pid,
                          int tid, double time, int64_t request_id) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.pid = pid;
  event.tid = tid;
  event.start = time;
  event.request_id = request_id;
  events_.push_back(std::move(event));
  return events_.back();
}

std::vector<const TraceEvent*>
TraceRecorder::EventsForRequest(int64_t request_id) const {
  std::vector<const TraceEvent*> matches;
  for (const TraceEvent& event : events_) {
    if (event.request_id == request_id) {
      matches.push_back(&event);
    }
  }
  return matches;
}

void
TraceRecorder::Clear() {
  events_.clear();
  process_names_.clear();
  thread_names_.clear();
}

void
TraceRecorder::WriteChromeTrace(JsonWriter& json) const {
  json.BeginObject();
  json.Key("displayTimeUnit").String("ms");
  json.Key("traceEvents").BeginArray();
  // Metadata first (the format does not require it, but the viewers
  // name tracks more reliably when names precede events). Map order
  // keeps emission deterministic.
  for (const auto& [pid, name] : process_names_) {
    json.BeginObject();
    json.Key("ph").String("M");
    json.Key("name").String("process_name");
    json.Key("pid").Int(pid);
    json.Key("tid").Int(0);
    json.Key("args").BeginObject();
    json.Key("name").String(name);
    json.EndObject();
    json.EndObject();
  }
  for (const auto& [key, name] : thread_names_) {
    json.BeginObject();
    json.Key("ph").String("M");
    json.Key("name").String("thread_name");
    json.Key("pid").Int(key.first);
    json.Key("tid").Int(key.second);
    json.Key("args").BeginObject();
    json.Key("name").String(name);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& event : events_) {
    json.BeginObject();
    const bool complete = event.phase == TraceEvent::Phase::kComplete;
    json.Key("ph").String(complete ? "X" : "i");
    json.Key("name").String(event.name);
    json.Key("cat").String(event.category);
    json.Key("pid").Int(event.pid);
    json.Key("tid").Int(event.tid);
    json.Key("ts").Number(event.start * kMicrosPerSecond);
    if (complete) {
      json.Key("dur").Number(event.duration * kMicrosPerSecond);
    } else {
      json.Key("s").String("t");  // Instant scoped to its thread row.
    }
    if (event.request_id >= 0 || !event.args.empty()) {
      json.Key("args").BeginObject();
      if (event.request_id >= 0) {
        json.Key("request").Int(event.request_id);
      }
      for (const auto& [key, value] : event.args) {
        json.Key(key).Number(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
TraceRecorder::ChromeTraceJson() const {
  JsonWriter json;
  WriteChromeTrace(json);
  return json.str();
}

void
TraceRecorder::WriteRequestSummary(JsonWriter& json) const {
  // Group by request id; within a request, recorded order is causal
  // order (the serial event loop appends as things happen).
  std::map<int64_t, std::vector<const TraceEvent*>> by_request;
  for (const TraceEvent& event : events_) {
    if (event.request_id >= 0) {
      by_request[event.request_id].push_back(&event);
    }
  }
  json.BeginObject();
  json.Key("requests").BeginArray();
  for (const auto& [request_id, spans] : by_request) {
    json.BeginObject();
    json.Key("request").Int(request_id);
    json.Key("events").BeginArray();
    for (const TraceEvent* event : spans) {
      json.BeginObject();
      json.Key("name").String(event->name);
      json.Key("phase").String(
          event->phase == TraceEvent::Phase::kComplete ? "span" : "instant");
      json.Key("start").Number(event->start);
      if (event->phase == TraceEvent::Phase::kComplete) {
        json.Key("duration").Number(event->duration);
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
TraceRecorder::RequestSummaryJson() const {
  JsonWriter json;
  WriteRequestSummary(json);
  return json.str();
}

}  // namespace rago::obs
