#include "serving/obs/trace.h"

#include <algorithm>

#include "common/check.h"

namespace rago::obs {
namespace {

constexpr double kMicrosPerSecond = 1e6;
/// Track group carrying per-request rows (matches both engines).
constexpr int kRequestPid = 1;

}  // namespace

uint64_t
HashRequestId(uint64_t seed, int64_t request_id) {
  // FNV-1a over the 16 bytes of (seed, id) — same constants as the
  // outcome digest, pure function of its inputs.
  uint64_t hash = 14695981039346656037ull;
  const auto fold = [&hash](uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (byte * 8)) & 0xffull;
      hash *= 1099511628211ull;
    }
  };
  fold(seed);
  fold(static_cast<uint64_t>(request_id));
  return hash;
}

void
TraceSamplingOptions::Validate() const {
  RAGO_REQUIRE(head_rate >= 0.0 && head_rate <= 1.0,
               "head_rate must lie in [0, 1]");
  RAGO_REQUIRE(tail_keep >= 0, "tail_keep must be non-negative");
}

void
TraceRecorder::SetProcessName(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void
TraceRecorder::SetThreadName(int pid, int tid, std::string name) {
  if (sampling_active_ && pid == kRequestPid) {
    pending_[tid].thread_name = std::move(name);
    return;
  }
  thread_names_[{pid, tid}] = std::move(name);
}

void
TraceRecorder::SetSampling(TraceSamplingOptions options) {
  options.Validate();
  RAGO_REQUIRE(events_.empty() && pending_.empty() && tail_.empty(),
               "sampling must be configured before recording");
  sampling_ = options;
  sampling_active_ = options.head_rate < 1.0 || options.tail_keep > 0;
}

bool
TraceRecorder::HeadSampled(int64_t request_id) const {
  // Top 53 bits -> uniform double in [0, 1); compare against the rate.
  const uint64_t hash = HashRequestId(sampling_.seed, request_id);
  const double coin =
      static_cast<double>(hash >> 11) * 0x1.0p-53;
  return coin < sampling_.head_rate;
}

TraceEvent&
TraceRecorder::Append(TraceEvent event) {
  if (sampling_active_ && event.request_id >= 0) {
    std::vector<TraceEvent>& buffer = pending_[event.request_id].events;
    buffer.push_back(std::move(event));
    return buffer.back();
  }
  events_.push_back(std::move(event));
  return events_.back();
}

TraceEvent&
TraceRecorder::AddComplete(std::string name, std::string category, int pid,
                           int tid, double start, double duration,
                           int64_t request_id) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = std::move(name);
  event.category = std::move(category);
  event.pid = pid;
  event.tid = tid;
  event.start = start;
  event.duration = duration;
  event.request_id = request_id;
  return Append(std::move(event));
}

TraceEvent&
TraceRecorder::AddInstant(std::string name, std::string category, int pid,
                          int tid, double time, int64_t request_id) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.pid = pid;
  event.tid = tid;
  event.start = time;
  event.request_id = request_id;
  return Append(std::move(event));
}

TraceEvent&
TraceRecorder::AddCounter(std::string name, std::string category, int pid,
                          int tid, double time, double value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.name = std::move(name);
  event.category = std::move(category);
  event.pid = pid;
  event.tid = tid;
  event.start = time;
  event.args.emplace_back("value", value);
  return Append(std::move(event));
}

void
TraceRecorder::Commit(int64_t request_id, PendingRequest request) {
  if (!request.thread_name.empty()) {
    thread_names_[{kRequestPid, static_cast<int>(request_id)}] =
        std::move(request.thread_name);
  }
  for (TraceEvent& event : request.events) {
    events_.push_back(std::move(event));
  }
}

bool
TraceRecorder::TailWorse(const TailEntry& a, const TailEntry& b) {
  if (a.slo_violation != b.slo_violation) {
    return a.slo_violation;  // Violators outrank merely-slow requests.
  }
  if (a.score != b.score) {
    return a.score > b.score;
  }
  return a.request_id < b.request_id;
}

void
TraceRecorder::FinalizeRequest(int64_t request_id, double score,
                               bool slo_violation) {
  if (!sampling_active_) {
    return;
  }
  PendingRequest request;
  auto it = pending_.find(request_id);
  if (it != pending_.end()) {
    request = std::move(it->second);
    pending_.erase(it);
  }
  ++finalized_requests_;
  if (HeadSampled(request_id)) {
    Commit(request_id, std::move(request));
    ++sampled_requests_;
    return;
  }
  if (sampling_.tail_keep > 0) {
    TailEntry entry;
    entry.request_id = request_id;
    entry.score = score;
    entry.slo_violation = slo_violation;
    entry.request = std::move(request);
    // Insert in worst-first order; evict the best-ranked entry once
    // over capacity. K is small, so linear insertion is fine.
    auto pos = std::upper_bound(
        tail_.begin(), tail_.end(), entry,
        [](const TailEntry& a, const TailEntry& b) {
          return TailWorse(a, b);
        });
    tail_.insert(pos, std::move(entry));
    if (tail_.size() > static_cast<size_t>(sampling_.tail_keep)) {
      tail_.pop_back();
      ++discarded_requests_;
    }
    return;
  }
  ++discarded_requests_;
}

void
TraceRecorder::FlushTailKeep() {
  if (!sampling_active_ || tail_.empty()) {
    return;
  }
  std::sort(tail_.begin(), tail_.end(),
            [](const TailEntry& a, const TailEntry& b) {
              return a.request_id < b.request_id;
            });
  for (TailEntry& entry : tail_) {
    Commit(entry.request_id, std::move(entry.request));
    ++sampled_requests_;
  }
  tail_.clear();
}

std::vector<const TraceEvent*>
TraceRecorder::EventsForRequest(int64_t request_id) const {
  std::vector<const TraceEvent*> matches;
  for (const TraceEvent& event : events_) {
    if (event.request_id == request_id) {
      matches.push_back(&event);
    }
  }
  return matches;
}

void
TraceRecorder::Clear() {
  events_.clear();
  process_names_.clear();
  thread_names_.clear();
  pending_.clear();
  tail_.clear();
  finalized_requests_ = 0;
  sampled_requests_ = 0;
  discarded_requests_ = 0;
}

void
TraceRecorder::WriteChromeTrace(JsonWriter& json) const {
  json.BeginObject();
  json.Key("displayTimeUnit").String("ms");
  json.Key("traceEvents").BeginArray();
  // Metadata first (the format does not require it, but the viewers
  // name tracks more reliably when names precede events). Map order
  // keeps emission deterministic.
  for (const auto& [pid, name] : process_names_) {
    json.BeginObject();
    json.Key("ph").String("M");
    json.Key("name").String("process_name");
    json.Key("pid").Int(pid);
    json.Key("tid").Int(0);
    json.Key("args").BeginObject();
    json.Key("name").String(name);
    json.EndObject();
    json.EndObject();
  }
  for (const auto& [key, name] : thread_names_) {
    json.BeginObject();
    json.Key("ph").String("M");
    json.Key("name").String("thread_name");
    json.Key("pid").Int(key.first);
    json.Key("tid").Int(key.second);
    json.Key("args").BeginObject();
    json.Key("name").String(name);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& event : events_) {
    json.BeginObject();
    const bool complete = event.phase == TraceEvent::Phase::kComplete;
    const bool counter = event.phase == TraceEvent::Phase::kCounter;
    json.Key("ph").String(complete ? "X" : (counter ? "C" : "i"));
    json.Key("name").String(event.name);
    json.Key("cat").String(event.category);
    json.Key("pid").Int(event.pid);
    json.Key("tid").Int(event.tid);
    json.Key("ts").Number(event.start * kMicrosPerSecond);
    if (complete) {
      json.Key("dur").Number(event.duration * kMicrosPerSecond);
    } else if (!counter) {
      json.Key("s").String("t");  // Instant scoped to its thread row.
    }
    if (event.request_id >= 0 || !event.args.empty()) {
      json.Key("args").BeginObject();
      if (event.request_id >= 0) {
        json.Key("request").Int(event.request_id);
      }
      for (const auto& [key, value] : event.args) {
        json.Key(key).Number(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
TraceRecorder::ChromeTraceJson() const {
  JsonWriter json;
  WriteChromeTrace(json);
  return json.str();
}

void
TraceRecorder::WriteRequestSummary(JsonWriter& json) const {
  // Group by request id; within a request, recorded order is causal
  // order (the serial event loop appends as things happen).
  std::map<int64_t, std::vector<const TraceEvent*>> by_request;
  for (const TraceEvent& event : events_) {
    if (event.request_id >= 0) {
      by_request[event.request_id].push_back(&event);
    }
  }
  json.BeginObject();
  json.Key("requests").BeginArray();
  for (const auto& [request_id, spans] : by_request) {
    json.BeginObject();
    json.Key("request").Int(request_id);
    json.Key("events").BeginArray();
    for (const TraceEvent* event : spans) {
      json.BeginObject();
      json.Key("name").String(event->name);
      json.Key("phase").String(
          event->phase == TraceEvent::Phase::kComplete ? "span" : "instant");
      json.Key("start").Number(event->start);
      if (event->phase == TraceEvent::Phase::kComplete) {
        json.Key("duration").Number(event->duration);
      }
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
TraceRecorder::RequestSummaryJson() const {
  JsonWriter json;
  WriteRequestSummary(json);
  return json.str();
}

}  // namespace rago::obs
