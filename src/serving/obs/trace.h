/**
 * @file trace.h
 * Span-based per-request trace recorder for the serving engines.
 *
 * Aggregate telemetry (RuntimeResult / ServingSimResult) answers "what
 * were the percentiles"; it cannot answer "why was request 411 slow".
 * This recorder captures the causal structure of one serving run as
 * spans on the virtual clock — admission, queue waits, batch
 * membership, stage execution, cache hits, decode residency — and
 * exports two views:
 *
 *  - **Chrome trace-event JSON** (chrome://tracing, Perfetto): rows
 *    are servers (pid 0, one track per physical server plus the decode
 *    pool) and requests (pid 1, one track per request id), so batch
 *    occupancy and a request's journey line up on one timeline.
 *  - **Compact per-request summary JSON**: each request id with its
 *    recorded spans in order, for programmatic assertions.
 *
 * Recording is opt-in (a null recorder disables everything) and
 * observation-only by contract: recorders accept appends from the
 * serial event loops and never feed anything back, so the outcome
 * digest of a traced run is bit-identical to an untraced one — the
 * invariance tests pin exactly this. Timestamps are virtual seconds;
 * the exporter scales to the microseconds chrome://tracing expects.
 * Not thread-safe (all appends happen on the serial scheduler loop).
 */
#ifndef RAGO_SERVING_OBS_TRACE_H
#define RAGO_SERVING_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"

namespace rago::obs {

/// One recorded trace event (virtual-clock seconds).
struct TraceEvent {
  enum class Phase {
    kComplete,  ///< Duration span ("X" in the trace-event format).
    kInstant,   ///< Point event ("i").
  };

  Phase phase = Phase::kComplete;
  std::string name;
  std::string category;  ///< Trace-event "cat": filterable grouping.
  int pid = 0;           ///< Track group (0 = servers, 1 = requests).
  int tid = 0;           ///< Track within the group.
  double start = 0.0;    ///< Virtual seconds.
  double duration = 0.0; ///< Virtual seconds; unused for instants.
  int64_t request_id = -1;  ///< Owning request, -1 when none.
  /// Extra numeric payload, emitted under "args" in recorded order.
  std::vector<std::pair<std::string, double>> args;
};

/**
 * Append-only event log with named tracks. The runtime and the DES
 * write through the pointer in their options struct; tests and tools
 * read back either export. Reusable across runs via Clear().
 */
class TraceRecorder {
 public:
  /// Names a pid group ("servers", "requests").
  void SetProcessName(int pid, std::string name);
  /// Names one track within a pid group ("server 0 (xpu)", "req 7").
  void SetThreadName(int pid, int tid, std::string name);

  /// Appends a duration span; the returned reference stays valid until
  /// the next append and accepts arg attachment.
  TraceEvent& AddComplete(std::string name, std::string category, int pid,
                          int tid, double start, double duration,
                          int64_t request_id = -1);
  /// Appends a point event.
  TraceEvent& AddInstant(std::string name, std::string category, int pid,
                         int tid, double time, int64_t request_id = -1);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events recorded for one request id, in recorded order.
  std::vector<const TraceEvent*> EventsForRequest(int64_t request_id) const;

  void Clear();

  /**
   * Emits the full Chrome trace-event document:
   * {"displayTimeUnit": "ms", "traceEvents": [metadata..., events...]}.
   * Loadable directly in chrome://tracing or ui.perfetto.dev.
   */
  void WriteChromeTrace(JsonWriter& json) const;
  std::string ChromeTraceJson() const;

  /**
   * Emits the compact summary: {"requests": [{"request": id,
   * "events": [{"name", "phase", "start", "duration"}...]}...]},
   * ordered by request id (events without a request id are omitted).
   */
  void WriteRequestSummary(JsonWriter& json) const;
  std::string RequestSummaryJson() const;

 private:
  std::vector<TraceEvent> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
};

}  // namespace rago::obs

#endif  // RAGO_SERVING_OBS_TRACE_H
