/**
 * @file trace.h
 * Span-based per-request trace recorder for the serving engines.
 *
 * Aggregate telemetry (RuntimeResult / ServingSimResult) answers "what
 * were the percentiles"; it cannot answer "why was request 411 slow".
 * This recorder captures the causal structure of one serving run as
 * spans on the virtual clock — admission, queue waits, batch
 * membership, stage execution, cache hits, decode residency — and
 * exports two views:
 *
 *  - **Chrome trace-event JSON** (chrome://tracing, Perfetto): rows
 *    are servers (pid 0, one track per physical server plus the decode
 *    pool) and requests (pid 1, one track per request id), so batch
 *    occupancy and a request's journey line up on one timeline.
 *  - **Compact per-request summary JSON**: each request id with its
 *    recorded spans in order, for programmatic assertions.
 *
 * Recording is opt-in (a null recorder disables everything) and
 * observation-only by contract: recorders accept appends from the
 * serial event loops and never feed anything back, so the outcome
 * digest of a traced run is bit-identical to an untraced one — the
 * invariance tests pin exactly this. Timestamps are virtual seconds;
 * the exporter scales to the microseconds chrome://tracing expects.
 * Not thread-safe (all appends happen on the serial scheduler loop).
 *
 * **Deterministic sampling** keeps the export usable at soak scale:
 * with `TraceSamplingOptions` set, per-request events buffer until the
 * engine finalizes the request, then commit only when the request is
 * head-sampled (an FNV-1a hash of its id against `head_rate` — a pure
 * function of (seed, id), so the sampled subset is identical for any
 * thread count and any arrival interleaving) or survives the tail-keep
 * ring, which always retains the `tail_keep` worst requests (SLO
 * violators first, then slowest). Events with no request id (server
 * rows, counters) bypass sampling entirely.
 */
#ifndef RAGO_SERVING_OBS_TRACE_H
#define RAGO_SERVING_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"

namespace rago::obs {

/// FNV-1a hash of (seed, request id); the head-sampling coin.
uint64_t HashRequestId(uint64_t seed, int64_t request_id);

/// Head-rate + tail-keep sampling policy for a TraceRecorder.
struct TraceSamplingOptions {
  /// Fraction of requests committed unconditionally, decided by
  /// hash(seed, id) < head_rate. 1.0 (default) disables sampling:
  /// every event commits immediately, exactly as before.
  double head_rate = 1.0;
  /// Worst-request ring size: the K requests with the highest
  /// (violation, score) survive even when not head-sampled. 0 = off.
  int tail_keep = 0;
  /// Seed for the sampling hash; independent of the workload seed.
  uint64_t seed = 0;

  /// Throws ConfigError on head_rate outside [0, 1] or tail_keep < 0.
  void Validate() const;
};

/// One recorded trace event (virtual-clock seconds).
struct TraceEvent {
  enum class Phase {
    kComplete,  ///< Duration span ("X" in the trace-event format).
    kInstant,   ///< Point event ("i").
    kCounter,   ///< Counter sample ("C"): value tracks over time.
  };

  Phase phase = Phase::kComplete;
  std::string name;
  std::string category;  ///< Trace-event "cat": filterable grouping.
  int pid = 0;           ///< Track group (0 = servers, 1 = requests).
  int tid = 0;           ///< Track within the group.
  double start = 0.0;    ///< Virtual seconds.
  double duration = 0.0; ///< Virtual seconds; unused for instants.
  int64_t request_id = -1;  ///< Owning request, -1 when none.
  /// Extra numeric payload, emitted under "args" in recorded order.
  std::vector<std::pair<std::string, double>> args;
};

/**
 * Append-only event log with named tracks. The runtime and the DES
 * write through the pointer in their options struct; tests and tools
 * read back either export. Reusable across runs via Clear().
 */
class TraceRecorder {
 public:
  /// Names a pid group ("servers", "requests").
  void SetProcessName(int pid, std::string name);
  /// Names one track within a pid group ("server 0 (xpu)", "req 7").
  /// Under sampling, names on the request group (pid 1, tid = request
  /// id) defer with the request's events so unsampled requests leave
  /// no metadata behind.
  void SetThreadName(int pid, int tid, std::string name);

  /// Appends a duration span; the returned reference stays valid until
  /// the next append and accepts arg attachment.
  TraceEvent& AddComplete(std::string name, std::string category, int pid,
                          int tid, double start, double duration,
                          int64_t request_id = -1);
  /// Appends a point event.
  TraceEvent& AddInstant(std::string name, std::string category, int pid,
                         int tid, double time, int64_t request_id = -1);
  /// Appends a counter sample ("C" event): `name` identifies the
  /// counter track within `pid`, `value` its level at `time`.
  TraceEvent& AddCounter(std::string name, std::string category, int pid,
                         int tid, double time, double value);

  /**
   * Enables deterministic sampling. Must be called while the recorder
   * is empty; with the default options it is a no-op (head_rate 1.0
   * keeps the direct-commit path). While active, events carrying a
   * request id buffer per request until FinalizeRequest decides their
   * fate; request-less events still commit immediately.
   */
  void SetSampling(TraceSamplingOptions options);
  const TraceSamplingOptions& sampling() const { return sampling_; }
  /// True when a non-default sampling policy is active.
  bool sampling_active() const { return sampling_active_; }
  /// The head-sampling verdict for a request id (pure function).
  bool HeadSampled(int64_t request_id) const;

  /**
   * Seals a request's buffered events: commits them when the id is
   * head-sampled, otherwise offers them to the tail-keep ring keyed by
   * (slo_violation desc, score desc, id asc) — `score` is typically
   * the request's latency. No-op when sampling is inactive.
   */
  void FinalizeRequest(int64_t request_id, double score,
                       bool slo_violation);
  /// Commits the tail-keep survivors (ascending request id) at end of
  /// run; further finalizations start a fresh ring.
  void FlushTailKeep();

  /// Requests finalized / committed / discarded under sampling.
  int64_t finalized_requests() const { return finalized_requests_; }
  int64_t sampled_requests() const { return sampled_requests_; }
  int64_t discarded_requests() const { return discarded_requests_; }
  /// Requests currently buffered (not yet finalized) / in the ring.
  size_t pending_requests() const { return pending_.size(); }
  size_t tail_kept() const { return tail_.size(); }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events recorded for one request id, in recorded order.
  std::vector<const TraceEvent*> EventsForRequest(int64_t request_id) const;

  void Clear();

  /**
   * Emits the full Chrome trace-event document:
   * {"displayTimeUnit": "ms", "traceEvents": [metadata..., events...]}.
   * Loadable directly in chrome://tracing or ui.perfetto.dev.
   */
  void WriteChromeTrace(JsonWriter& json) const;
  std::string ChromeTraceJson() const;

  /**
   * Emits the compact summary: {"requests": [{"request": id,
   * "events": [{"name", "phase", "start", "duration"}...]}...]},
   * ordered by request id (events without a request id are omitted).
   */
  void WriteRequestSummary(JsonWriter& json) const;
  std::string RequestSummaryJson() const;

 private:
  /// Per-request buffer while sampling defers the commit decision.
  struct PendingRequest {
    std::string thread_name;  ///< Deferred pid-1 track name, if any.
    std::vector<TraceEvent> events;
  };
  /// Tail-keep candidate: a finalized, non-head-sampled request.
  struct TailEntry {
    int64_t request_id = 0;
    double score = 0.0;
    bool slo_violation = false;
    PendingRequest request;
  };

  /// True when `a` outranks `b` for a tail-keep slot.
  static bool TailWorse(const TailEntry& a, const TailEntry& b);
  TraceEvent& Append(TraceEvent event);
  void Commit(int64_t request_id, PendingRequest request);

  std::vector<TraceEvent> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;

  TraceSamplingOptions sampling_;
  bool sampling_active_ = false;
  std::map<int64_t, PendingRequest> pending_;
  std::vector<TailEntry> tail_;  ///< Kept sorted worst-first, size <= K.
  int64_t finalized_requests_ = 0;
  int64_t sampled_requests_ = 0;
  int64_t discarded_requests_ = 0;
};

}  // namespace rago::obs

#endif  // RAGO_SERVING_OBS_TRACE_H
