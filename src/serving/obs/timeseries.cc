#include "serving/obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace rago::obs {

void
TimeSeriesOptions::Validate() const {
  RAGO_REQUIRE(window_seconds > 0.0 && std::isfinite(window_seconds),
               "window_seconds must be positive and finite");
  RAGO_REQUIRE(fold_factor >= 2, "fold_factor must be at least 2");
  RAGO_REQUIRE(windows_per_level >= fold_factor,
               "windows_per_level must be at least fold_factor");
  RAGO_REQUIRE(levels >= 1, "levels must be at least 1");
  histogram.Validate();
}

double
WindowStats::Attainment() const {
  const int64_t terminal = completed + rejected;
  if (terminal == 0) {
    return 1.0;
  }
  return static_cast<double>(slo_ok) / static_cast<double>(terminal);
}

void
WindowStats::MergeFrom(const WindowStats& other) {
  RAGO_CHECK(other.start >= start, "fold must merge forward in time");
  span = (other.start + other.span) - start;
  offered += other.offered;
  admitted += other.admitted;
  rejected += other.rejected;
  completed += other.completed;
  slo_ok += other.slo_ok;
  ttft.Merge(other.ttft);
  tpot.Merge(other.tpot);
  queue_wait.Merge(other.queue_wait);
  if (other.stage_max_queue_depth.size() > stage_max_queue_depth.size()) {
    stage_max_queue_depth.resize(other.stage_max_queue_depth.size(), 0);
  }
  for (size_t s = 0; s < other.stage_max_queue_depth.size(); ++s) {
    stage_max_queue_depth[s] =
        std::max(stage_max_queue_depth[s], other.stage_max_queue_depth[s]);
  }
  if (other.stage_busy_seconds.size() > stage_busy_seconds.size()) {
    stage_busy_seconds.resize(other.stage_busy_seconds.size(), 0.0);
  }
  for (size_t s = 0; s < other.stage_busy_seconds.size(); ++s) {
    stage_busy_seconds[s] += other.stage_busy_seconds[s];
  }
}

TelemetryTimeSeries::TelemetryTimeSeries(TimeSeriesOptions options)
    : options_(options) {
  options_.Validate();
  levels_.resize(static_cast<size_t>(options_.levels));
}

WindowStats
TelemetryTimeSeries::MakeWindow(int64_t index, int64_t fine_count) const {
  WindowStats window;
  window.start = static_cast<double>(index) * options_.window_seconds;
  window.span = static_cast<double>(fine_count) * options_.window_seconds;
  window.ttft = StreamingHistogram(options_.histogram);
  window.tpot = StreamingHistogram(options_.histogram);
  window.queue_wait = StreamingHistogram(options_.histogram);
  return window;
}

WindowStats&
TelemetryTimeSeries::WindowFor(double time) {
  RAGO_REQUIRE(!finished_, "time-series already finished");
  RAGO_REQUIRE(time >= 0.0 && std::isfinite(time),
               "telemetry timestamps must be non-negative and finite");
  AdvanceTo(time);
  if (current_.empty()) {
    current_.push_back(MakeWindow(current_index_, 1));
  }
  return current_.front();
}

void
TelemetryTimeSeries::CloseCurrent() {
  RAGO_CHECK(!current_.empty(), "no in-progress window to close");
  WindowStats window = std::move(current_.front());
  current_.clear();

  WindowSummary summary;
  summary.start = window.start;
  summary.span = window.span;
  summary.offered = window.offered;
  summary.admitted = window.admitted;
  summary.rejected = window.rejected;
  summary.completed = window.completed;
  summary.slo_ok = window.slo_ok;
  summary.attainment = window.Attainment();
  for (int64_t depth : window.stage_max_queue_depth) {
    summary.max_queue_depth = std::max(summary.max_queue_depth, depth);
  }
  pending_drain_.push_back(summary);
  ++windows_closed_;

  PushClosed(std::move(window));
}

void
TelemetryTimeSeries::PushClosed(WindowStats window) {
  levels_[0].push_back(std::move(window));
  const size_t capacity = static_cast<size_t>(options_.windows_per_level);
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() <= capacity) {
      break;
    }
    if (level + 1 == levels_.size()) {
      // Bottom of the ladder: shed the oldest window, counted so the
      // export never silently under-reports coverage.
      levels_[level].pop_front();
      ++windows_dropped_;
      break;
    }
    // Fold the oldest fold_factor windows into one coarser window on
    // the next level. Counts add and histograms merge exactly, so the
    // fold loses time resolution only, never events.
    WindowStats folded = std::move(levels_[level].front());
    levels_[level].pop_front();
    for (int i = 1; i < options_.fold_factor; ++i) {
      folded.MergeFrom(levels_[level].front());
      levels_[level].pop_front();
    }
    windows_folded_ += options_.fold_factor;
    levels_[level + 1].push_back(std::move(folded));
  }
}

void
TelemetryTimeSeries::AdvanceTo(double time) {
  RAGO_REQUIRE(time >= 0.0 && std::isfinite(time),
               "telemetry timestamps must be non-negative and finite");
  const int64_t target =
      static_cast<int64_t>(std::floor(time / options_.window_seconds));
  while (current_index_ < target) {
    if (current_.empty()) {
      // Idle gap: materialize the empty window so the exported series
      // stays fixed-interval (and alerting sees "no traffic").
      current_.push_back(MakeWindow(current_index_, 1));
    }
    CloseCurrent();
    ++current_index_;
  }
}

void
TelemetryTimeSeries::Finish(double time) {
  AdvanceTo(time);
  if (!current_.empty()) {
    CloseCurrent();
    ++current_index_;
  }
  finished_ = true;
}

void
TelemetryTimeSeries::RecordOffered(double time, bool admitted) {
  WindowStats& window = WindowFor(time);
  ++window.offered;
  if (admitted) {
    ++window.admitted;
  } else {
    ++window.rejected;
  }
}

void
TelemetryTimeSeries::RecordCompletion(double time, double ttft, double tpot,
                                      double queue_wait, bool slo_ok) {
  WindowStats& window = WindowFor(time);
  ++window.completed;
  if (slo_ok) {
    ++window.slo_ok;
  }
  window.ttft.Add(ttft);
  window.tpot.Add(tpot);
  window.queue_wait.Add(queue_wait);
}

void
TelemetryTimeSeries::RecordQueueDepth(double time, int stage, int64_t depth) {
  RAGO_REQUIRE(stage >= 0, "stage index must be non-negative");
  WindowStats& window = WindowFor(time);
  if (static_cast<size_t>(stage) >= window.stage_max_queue_depth.size()) {
    window.stage_max_queue_depth.resize(static_cast<size_t>(stage) + 1, 0);
  }
  window.stage_max_queue_depth[static_cast<size_t>(stage)] = std::max(
      window.stage_max_queue_depth[static_cast<size_t>(stage)], depth);
  num_stages_ = std::max(num_stages_, stage + 1);
}

void
TelemetryTimeSeries::RecordBusy(double time, int stage, double seconds) {
  RAGO_REQUIRE(stage >= 0, "stage index must be non-negative");
  RAGO_REQUIRE(seconds >= 0.0, "busy time must be non-negative");
  WindowStats& window = WindowFor(time);
  if (static_cast<size_t>(stage) >= window.stage_busy_seconds.size()) {
    window.stage_busy_seconds.resize(static_cast<size_t>(stage) + 1, 0.0);
  }
  window.stage_busy_seconds[static_cast<size_t>(stage)] += seconds;
  num_stages_ = std::max(num_stages_, stage + 1);
}

std::vector<WindowSummary>
TelemetryTimeSeries::DrainClosed() {
  std::vector<WindowSummary> drained;
  drained.swap(pending_drain_);
  return drained;
}

const std::deque<WindowStats>&
TelemetryTimeSeries::Level(int level) const {
  RAGO_REQUIRE(level >= 0 && static_cast<size_t>(level) < levels_.size(),
               "ladder level out of range");
  return levels_[static_cast<size_t>(level)];
}

size_t
TelemetryTimeSeries::WindowsHeld() const {
  size_t held = current_.size();
  for (const std::deque<WindowStats>& level : levels_) {
    held += level.size();
  }
  return held;
}

void
TelemetryTimeSeries::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("levels").BeginArray();
  for (size_t level = 0; level < levels_.size(); ++level) {
    json.BeginObject();
    json.Key("level").Int(static_cast<int64_t>(level));
    json.Key("windows").BeginArray();
    for (const WindowStats& window : levels_[level]) {
      json.BeginObject();
      json.Key("admitted").Int(window.admitted);
      json.Key("attainment").Number(window.Attainment());
      json.Key("completed").Int(window.completed);
      json.Key("offered").Int(window.offered);
      json.Key("queue_wait_p95").Number(window.queue_wait.Quantile(0.95));
      json.Key("rejected").Int(window.rejected);
      json.Key("slo_ok").Int(window.slo_ok);
      json.Key("span").Number(window.span);
      json.Key("stage_busy_seconds").BeginArray();
      for (double busy : window.stage_busy_seconds) {
        json.Number(busy);
      }
      json.EndArray();
      json.Key("stage_max_queue_depth").BeginArray();
      for (int64_t depth : window.stage_max_queue_depth) {
        json.Int(depth);
      }
      json.EndArray();
      json.Key("start").Number(window.start);
      json.Key("tpot_p95").Number(window.tpot.Quantile(0.95));
      json.Key("ttft_p50").Number(window.ttft.Quantile(0.50));
      json.Key("ttft_p95").Number(window.ttft.Quantile(0.95));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("num_stages").Int(num_stages_);
  json.Key("window_seconds").Number(options_.window_seconds);
  json.Key("windows_closed").Int(windows_closed_);
  json.Key("windows_dropped").Int(windows_dropped_);
  json.Key("windows_folded").Int(windows_folded_);
  json.Key("windows_held").Int(static_cast<int64_t>(WindowsHeld()));
  json.EndObject();
}

std::string
TelemetryTimeSeries::Json() const {
  JsonWriter json;
  WriteJson(json);
  return json.str();
}

}  // namespace rago::obs
