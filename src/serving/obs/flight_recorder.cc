#include "serving/obs/flight_recorder.h"

#include <cstdio>
#include <utility>

#include "common/check.h"

namespace rago::obs {

FlightRecorder::FlightRecorder(int capacity)
    : capacity_(static_cast<size_t>(capacity)) {
  RAGO_REQUIRE(capacity >= 1, "flight recorder capacity must be positive");
}

void
FlightRecorder::Append(double time, std::string kind, std::string message,
                       double value) {
  FlightRecord record;
  record.time = time;
  record.kind = std::move(kind);
  record.message = std::move(message);
  record.value = value;
  records_.push_back(std::move(record));
  ++appended_;
  if (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
}

void
FlightRecorder::Clear() {
  records_.clear();
  appended_ = 0;
  dropped_ = 0;
}

void
FlightRecorder::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("appended").Int(appended_);
  json.Key("capacity").Int(static_cast<int64_t>(capacity_));
  json.Key("dropped").Int(dropped_);
  json.Key("records").BeginArray();
  for (const FlightRecord& record : records_) {
    json.BeginObject();
    json.Key("kind").String(record.kind);
    json.Key("message").String(record.message);
    json.Key("time").Number(record.time);
    json.Key("value").Number(record.value);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
FlightRecorder::Json() const {
  JsonWriter json;
  WriteJson(json);
  return json.str();
}

void
FlightRecorder::DumpToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  RAGO_REQUIRE(file != nullptr,
               "cannot open flight-recorder dump for write: " + path);
  const std::string body = Json();
  std::fwrite(body.data(), 1, body.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace rago::obs
