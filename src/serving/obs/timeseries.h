/**
 * @file timeseries.h
 * Windowed telemetry rollups with an RRD-style retention ladder.
 *
 * The whole-run aggregates in RuntimeResult answer "what were the
 * percentiles over the run"; the adaptive controller and the soak
 * scenarios need the *time axis* back — offered/admitted/rejected/
 * completed counts, attainment, latency quantiles, queue depth and
 * busy time per fixed virtual-clock window — without ever holding
 * memory proportional to run length. This header provides that:
 *
 *  - `TelemetryTimeSeries` rolls every recorded event into the
 *    fixed-interval window containing its virtual timestamp. Latency
 *    distributions use `StreamingHistogram` (O(bins) per window), so a
 *    window's memory is a constant of the binning policy.
 *  - Closed windows enter a **multi-resolution retention ladder**:
 *    level 0 holds the most recent `windows_per_level` fine windows;
 *    when it overflows, the oldest `fold_factor` windows merge into a
 *    single coarser window pushed onto level 1, and so on. The last
 *    level drops its oldest window (counted, never silent). Counts add
 *    exactly and histograms with identical policies merge exactly, so
 *    a folded window is the *exact* rollup of its constituents — only
 *    time resolution is lost, never events. Total memory is bounded by
 *    `levels * windows_per_level` windows regardless of run length.
 *
 * Windows are materialized for idle gaps too (an empty window is
 * evidence of "no traffic", which burn-rate alerting must see), and
 * the ladder bounds those the same way. All mutation happens on the
 * serial engine loops with non-decreasing virtual timestamps; given
 * the same event sequence the JSON export is byte-identical, which is
 * what makes the thread-count invariance tests meaningful.
 * Observation-only: nothing here feeds back into scheduling.
 */
#ifndef RAGO_SERVING_OBS_TIMESERIES_H
#define RAGO_SERVING_OBS_TIMESERIES_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/metrics.h"

namespace rago::obs {

/// Window geometry and retention policy of a telemetry time-series.
struct TimeSeriesOptions {
  /// Fine-window length in virtual seconds.
  double window_seconds = 1.0;
  /// Closed windows retained per ladder level before folding/dropping.
  int windows_per_level = 64;
  /// Fine windows merged into one coarser window on overflow.
  int fold_factor = 4;
  /// Ladder depth; level k windows span fold_factor^k fine windows.
  int levels = 3;
  /// Binning policy for the TTFT/TPOT/queue-wait window histograms.
  /// Folds are exact because every window shares this policy.
  StreamingHistogramOptions histogram;

  /// Throws ConfigError on a non-positive window, windows_per_level <
  /// fold_factor, fold_factor < 2, or levels < 1.
  void Validate() const;
};

/// One closed (or in-progress) telemetry window. Fine windows span
/// `window_seconds`; folded windows span the sum of their parts.
struct WindowStats {
  double start = 0.0;  ///< Inclusive lower edge, virtual seconds.
  double span = 0.0;   ///< Window length, virtual seconds.

  int64_t offered = 0;    ///< Arrivals in-window.
  int64_t admitted = 0;   ///< Arrivals accepted past admission.
  int64_t rejected = 0;   ///< Arrivals shed at admission.
  int64_t completed = 0;  ///< Requests finishing in-window.
  int64_t slo_ok = 0;     ///< Completions meeting their SLO.

  StreamingHistogram ttft;        ///< Per-completion TTFT seconds.
  StreamingHistogram tpot;        ///< Per-completion TPOT seconds.
  StreamingHistogram queue_wait;  ///< Per-completion queue wait.

  /// Largest observed queue depth per stage (grown on demand).
  std::vector<int64_t> stage_max_queue_depth;
  /// Busy seconds attributed per stage (batch service intervals).
  std::vector<double> stage_busy_seconds;

  /// SLO attainment over the window's terminal events: slo_ok /
  /// (completed + rejected); 1.0 when the window saw none (no
  /// evidence of violation).
  double Attainment() const;

  /// Exact rollup: counts add, histograms merge bin-for-bin, per-stage
  /// depth takes the max and busy time adds. `other` must be the
  /// window immediately following this one in time.
  void MergeFrom(const WindowStats& other);
};

/// Lightweight view of a closed window handed to the alerting layer —
/// no histogram copies, just the counts burn rates are made of.
struct WindowSummary {
  double start = 0.0;
  double span = 0.0;
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t slo_ok = 0;
  double attainment = 1.0;
  int64_t max_queue_depth = 0;  ///< Max across stages in the window.
};

/**
 * Fixed-interval rollup collector. Engines call the Record* methods
 * from their serial event loops with non-decreasing timestamps;
 * AdvanceTo()/Finish() close windows as virtual time passes their
 * upper edge. Closed windows are queued for DrainClosed() (alerting)
 * and pushed onto the retention ladder (export).
 */
class TelemetryTimeSeries {
 public:
  explicit TelemetryTimeSeries(TimeSeriesOptions options = {});

  /// An arrival at `time`; `admitted` false counts it as rejected.
  void RecordOffered(double time, bool admitted);
  /// A completion at `time` with its latency breakdown and SLO verdict.
  void RecordCompletion(double time, double ttft, double tpot,
                        double queue_wait, bool slo_ok);
  /// Queue-depth observation for `stage` (taken max per window).
  void RecordQueueDepth(double time, int stage, int64_t depth);
  /// Attributes `seconds` of busy time to `stage` in `time`'s window.
  void RecordBusy(double time, int stage, double seconds);

  /// Closes every window whose upper edge is at or before `time`.
  void AdvanceTo(double time);
  /// Closes everything including the in-progress window (end of run).
  void Finish(double time);

  /// Returns summaries of windows closed since the last drain, oldest
  /// first, and clears the pending queue.
  std::vector<WindowSummary> DrainClosed();

  const TimeSeriesOptions& options() const { return options_; }
  /// Retained windows at ladder level `level`, oldest first. Level 0
  /// is the fine resolution; higher levels are coarser folds.
  const std::deque<WindowStats>& Level(int level) const;
  /// Number of stages seen so far (grown on demand).
  int num_stages() const { return num_stages_; }

  int64_t windows_closed() const { return windows_closed_; }
  int64_t windows_folded() const { return windows_folded_; }
  int64_t windows_dropped() const { return windows_dropped_; }
  /// Windows currently held across all levels (+ the in-progress one);
  /// bounded by levels * windows_per_level + 1 by construction.
  size_t WindowsHeld() const;

  /**
   * Emits the whole ladder as one deterministic object value:
   * {"window_seconds", "levels": [{"level", "windows": [{"start",
   * "span", counts..., "attainment", "ttft_p50", ...}...]}...],
   * "windows_closed", "windows_folded", "windows_dropped"}. All
   * containers are index-ordered; byte-identical for identical event
   * sequences.
   */
  void WriteJson(JsonWriter& json) const;
  std::string Json() const;

 private:
  WindowStats MakeWindow(int64_t index, int64_t fine_count) const;
  /// The window containing `time`, closing/creating as needed.
  WindowStats& WindowFor(double time);
  void CloseCurrent();
  void PushClosed(WindowStats window);

  TimeSeriesOptions options_;
  std::vector<std::deque<WindowStats>> levels_;
  std::deque<WindowStats> current_;  ///< 0 or 1 in-progress window.
  int64_t current_index_ = 0;        ///< Fine index of current_.
  bool finished_ = false;
  int num_stages_ = 0;
  std::vector<WindowSummary> pending_drain_;
  int64_t windows_closed_ = 0;
  int64_t windows_folded_ = 0;
  int64_t windows_dropped_ = 0;
};

}  // namespace rago::obs

#endif  // RAGO_SERVING_OBS_TIMESERIES_H
