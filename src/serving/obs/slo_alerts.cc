#include "serving/obs/slo_alerts.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace rago::obs {

void
BurnRateRule::Validate() const {
  RAGO_REQUIRE(!name.empty(), "burn-rate rule needs a name");
  RAGO_REQUIRE(short_window_seconds > 0.0 &&
                   std::isfinite(short_window_seconds),
               "short window must be positive and finite");
  RAGO_REQUIRE(long_window_seconds > short_window_seconds &&
                   std::isfinite(long_window_seconds),
               "long window must exceed the short window");
  RAGO_REQUIRE(burn_threshold > 0.0 && std::isfinite(burn_threshold),
               "burn threshold must be positive and finite");
  RAGO_REQUIRE(fire_after >= 1, "fire_after must be at least 1");
  RAGO_REQUIRE(clear_after >= 1, "clear_after must be at least 1");
}

void
SloAlertOptions::Validate() const {
  RAGO_REQUIRE(attainment_goal > 0.0 && attainment_goal < 1.0,
               "attainment goal must lie strictly inside (0, 1)");
  for (const BurnRateRule& rule : rules) {
    rule.Validate();
  }
}

SloAlertEngine::SloAlertEngine(SloAlertOptions options)
    : options_(std::move(options)) {
  options_.Validate();
  for (const BurnRateRule& rule : options_.rules) {
    max_horizon_ = std::max(max_horizon_, rule.long_window_seconds);
  }
  states_.resize(options_.rules.size());
}

double
SloAlertEngine::BurnRate(double window_seconds, double end) const {
  // Fine windows whose end lies in (end - horizon, end] contribute
  // whole; the horizon is quantized to the telemetry resolution.
  const double cutoff = end - window_seconds;
  int64_t bad = 0;
  int64_t total = 0;
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    const double window_end = it->start + it->span;
    if (window_end > end) {
      continue;
    }
    if (window_end <= cutoff) {
      break;
    }
    bad += (it->completed - it->slo_ok) + it->rejected;
    total += it->completed + it->rejected;
  }
  if (total == 0) {
    return 0.0;  // No terminal events: no budget consumed.
  }
  const double error_rate =
      static_cast<double>(bad) / static_cast<double>(total);
  return error_rate / (1.0 - options_.attainment_goal);
}

std::vector<AlertTransition>
SloAlertEngine::Observe(const WindowSummary& window) {
  if (!history_.empty()) {
    RAGO_REQUIRE(window.start >= history_.back().start,
                 "windows must be observed oldest first");
  }
  history_.push_back(window);
  const double end = window.start + window.span;
  // Evict windows that no longer reach any rule's horizon.
  while (!history_.empty() &&
         history_.front().start + history_.front().span <=
             end - max_horizon_) {
    history_.pop_front();
  }

  std::vector<AlertTransition> fresh;
  for (size_t r = 0; r < options_.rules.size(); ++r) {
    const BurnRateRule& rule = options_.rules[r];
    RuleState& state = states_[r];
    const double short_burn = BurnRate(rule.short_window_seconds, end);
    const double long_burn = BurnRate(rule.long_window_seconds, end);
    const bool breach =
        short_burn >= rule.burn_threshold && long_burn >= rule.burn_threshold;
    if (!state.firing) {
      state.breach_streak = breach ? state.breach_streak + 1 : 0;
      if (state.breach_streak >= rule.fire_after) {
        state.firing = true;
        state.breach_streak = 0;
        state.clean_streak = 0;
        fresh.push_back({end, static_cast<int>(r), true, short_burn,
                         long_burn});
      }
    } else {
      // Clearing keys off the short window only: recovery should be
      // visible immediately even while the long horizon still burns.
      const bool clean = short_burn < rule.burn_threshold;
      state.clean_streak = clean ? state.clean_streak + 1 : 0;
      if (state.clean_streak >= rule.clear_after) {
        state.firing = false;
        state.breach_streak = 0;
        state.clean_streak = 0;
        fresh.push_back({end, static_cast<int>(r), false, short_burn,
                         long_burn});
      }
    }
  }
  transitions_.insert(transitions_.end(), fresh.begin(), fresh.end());
  return fresh;
}

bool
SloAlertEngine::Firing(int rule) const {
  RAGO_REQUIRE(rule >= 0 && static_cast<size_t>(rule) < states_.size(),
               "rule index out of range");
  return states_[static_cast<size_t>(rule)].firing;
}

void
SloAlertEngine::Clear() {
  history_.clear();
  transitions_.clear();
  states_.assign(options_.rules.size(), RuleState{});
}

void
SloAlertEngine::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("attainment_goal").Number(options_.attainment_goal);
  json.Key("rules").BeginArray();
  for (size_t r = 0; r < options_.rules.size(); ++r) {
    const BurnRateRule& rule = options_.rules[r];
    json.BeginObject();
    json.Key("burn_threshold").Number(rule.burn_threshold);
    json.Key("firing").Bool(states_[r].firing);
    json.Key("long_window_seconds").Number(rule.long_window_seconds);
    json.Key("name").String(rule.name);
    json.Key("short_window_seconds").Number(rule.short_window_seconds);
    json.EndObject();
  }
  json.EndArray();
  json.Key("transitions").BeginArray();
  for (const AlertTransition& transition : transitions_) {
    json.BeginObject();
    json.Key("firing").Bool(transition.firing);
    json.Key("long_burn").Number(transition.long_burn);
    json.Key("rule").Int(transition.rule);
    json.Key("short_burn").Number(transition.short_burn);
    json.Key("time").Number(transition.time);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
}

std::string
SloAlertEngine::Json() const {
  JsonWriter json;
  WriteJson(json);
  return json.str();
}

}  // namespace rago::obs
