/**
 * @file flight_recorder.h
 * Bounded ring of recent telemetry/alert/engine records.
 *
 * When a soak run dies at request 843,112, the full trace is either
 * disabled or too large to keep; what post-mortems actually need is
 * the *last few hundred* notable things the engine saw. The flight
 * recorder is that black box: a fixed-capacity ring both engines
 * append to (window closes, alert transitions, admission rejections,
 * engine milestones), overwriting the oldest entries and counting the
 * overwritten so a dump always states what it lost.
 *
 * The ring is dumped as JSON on demand, and the engines dump it
 * automatically when serving aborts — a `RAGO_CHECK` failure or any
 * other exception unwinding the event loop writes the ring to the
 * configured path before the exception continues. Appends happen only
 * on the serial engine loops with virtual-clock timestamps, so ring
 * contents are deterministic and thread-count invariant like every
 * other observability surface.
 */
#ifndef RAGO_SERVING_OBS_FLIGHT_RECORDER_H
#define RAGO_SERVING_OBS_FLIGHT_RECORDER_H

#include <cstdint>
#include <deque>
#include <string>

#include "common/json_writer.h"

namespace rago::obs {

/// One black-box entry (virtual-clock seconds).
struct FlightRecord {
  double time = 0.0;
  std::string kind;     ///< "note", "window", "alert", "reject", ...
  std::string message;  ///< Human-readable one-liner.
  double value = 0.0;   ///< Kind-specific payload (attainment, burn).
};

/// Fixed-capacity append-only ring with an overwrite counter.
class FlightRecorder {
 public:
  explicit FlightRecorder(int capacity = 256);

  void Append(double time, std::string kind, std::string message,
              double value = 0.0);

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  /// Total appends ever; size() + dropped() == appended().
  int64_t appended() const { return appended_; }
  /// Oldest entries overwritten to stay within capacity.
  int64_t dropped() const { return dropped_; }
  /// Retained records, oldest first.
  const std::deque<FlightRecord>& records() const { return records_; }

  void Clear();

  /**
   * Emits {"capacity", "appended", "dropped", "records": [{"time",
   * "kind", "message", "value"}...]} as one deterministic object
   * value, oldest record first.
   */
  void WriteJson(JsonWriter& json) const;
  std::string Json() const;
  /// Writes Json() to `path`; throws ConfigError when unwritable.
  void DumpToFile(const std::string& path) const;

 private:
  size_t capacity_;
  std::deque<FlightRecord> records_;
  int64_t appended_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace rago::obs

#endif  // RAGO_SERVING_OBS_FLIGHT_RECORDER_H
