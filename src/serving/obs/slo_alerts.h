/**
 * @file slo_alerts.h
 * Multi-window burn-rate alerting over windowed SLO attainment.
 *
 * A single "attainment dipped below goal" check either pages on every
 * transient blip (short horizon) or hours late (long horizon). The
 * SRE-style answer is **multi-window burn rates**: express each window
 * as the rate at which it consumes the error budget
 *
 *     burn = error_rate / (1 - attainment_goal)
 *
 * (burn 1.0 = exactly on budget) and fire only when BOTH a short and a
 * long trailing window burn above the rule's threshold — the long
 * window proves the problem is sustained, the short window proves it
 * is still happening. Clearing keys off the short window alone, so
 * recovery is detected fast while the long window still remembers the
 * incident. On top of that, firing/clearing require `fire_after` /
 * `clear_after` consecutive breaching/clean evaluations (hysteresis),
 * so a flapping signal cannot flap the alert.
 *
 * The engine consumes `WindowSummary` values from the telemetry
 * time-series, one per closed fine window, on the serial engine loop.
 * Trailing windows are quantized to whole fine windows (a fine window
 * counts toward a trailing horizon while its end lies inside it), and
 * the retained history is bounded by the longest rule horizon.
 * Everything is a pure function of the window sequence: transitions
 * are deterministic events that the engines emit as trace instants,
 * append to the flight recorder, and — only when explicitly opted in —
 * fold into the outcome digest.
 */
#ifndef RAGO_SERVING_OBS_SLO_ALERTS_H
#define RAGO_SERVING_OBS_SLO_ALERTS_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "serving/obs/timeseries.h"

namespace rago::obs {

/// One short/long window pair with firing/clearing hysteresis.
struct BurnRateRule {
  std::string name = "page";
  double short_window_seconds = 5.0;  ///< "Still happening" horizon.
  double long_window_seconds = 60.0;  ///< "Sustained" horizon.
  /// Fires when both windows burn at or above this multiple of the
  /// error budget; 1.0 = exactly on budget.
  double burn_threshold = 2.0;
  /// Consecutive breaching evaluations before the alert fires.
  int fire_after = 1;
  /// Consecutive clean short-window evaluations before it clears.
  int clear_after = 1;

  /// Throws ConfigError on empty name, non-positive horizons or
  /// threshold, short >= long, or non-positive hysteresis counts.
  void Validate() const;
};

/// Alerting policy: the SLO goal the budget derives from + rules.
struct SloAlertOptions {
  /// Attainment goal in (0, 1); error budget is 1 - attainment_goal.
  double attainment_goal = 0.95;
  std::vector<BurnRateRule> rules;
  /// When true the engines fold every transition into the outcome
  /// digest (time, rule, direction) — the one explicitly-opted-in
  /// departure from the observation-only contract.
  bool fold_into_digest = false;

  /// Throws ConfigError on a goal outside (0, 1) or an invalid rule.
  void Validate() const;
};

/// One deterministic alert-state transition.
struct AlertTransition {
  double time = 0.0;       ///< Virtual time (end of triggering window).
  int rule = 0;            ///< Index into options().rules.
  bool firing = false;     ///< true = fired, false = cleared.
  double short_burn = 0.0; ///< Short-window burn at the transition.
  double long_burn = 0.0;  ///< Long-window burn at the transition.
};

/**
 * Evaluates every rule once per observed window and accumulates the
 * resulting transitions. Deterministic and observation-only; reusable
 * across runs via Clear().
 */
class SloAlertEngine {
 public:
  explicit SloAlertEngine(SloAlertOptions options);

  /// Observes the next closed fine window (oldest first, contiguous)
  /// and returns the transitions it caused, in rule order.
  std::vector<AlertTransition> Observe(const WindowSummary& window);

  bool Firing(int rule) const;
  /// All transitions so far, in observation order.
  const std::vector<AlertTransition>& transitions() const {
    return transitions_;
  }
  const SloAlertOptions& options() const { return options_; }

  /// Burn rate over the trailing `window_seconds` ending at `end`,
  /// quantized to the fine windows whose end lies in (end - horizon,
  /// end]. 0 when those windows saw no terminal events.
  double BurnRate(double window_seconds, double end) const;

  /// Resets alert state and history; options are retained.
  void Clear();

  /**
   * Emits {"attainment_goal", "rules": [{"name", "firing", ...}...],
   * "transitions": [{"time", "rule", "firing", "short_burn",
   * "long_burn"}...]} as one deterministic object value.
   */
  void WriteJson(JsonWriter& json) const;
  std::string Json() const;

 private:
  struct RuleState {
    bool firing = false;
    int breach_streak = 0;
    int clean_streak = 0;
  };

  SloAlertOptions options_;
  double max_horizon_ = 0.0;
  std::deque<WindowSummary> history_;  ///< Bounded by max_horizon_.
  std::vector<RuleState> states_;
  std::vector<AlertTransition> transitions_;
};

}  // namespace rago::obs

#endif  // RAGO_SERVING_OBS_SLO_ALERTS_H
