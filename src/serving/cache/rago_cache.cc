#include "serving/cache/rago_cache.h"

#include <cstring>

#include "common/check.h"

namespace rago::cache {
namespace {

/// FNV-1a 64-bit fold of an arbitrary byte span.
uint64_t FnvFold(uint64_t hash, const void* bytes, size_t size) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

}  // namespace

void
CacheOptions::Validate() const {
  RAGO_REQUIRE(retrieval_capacity >= 0,
               "retrieval cache capacity must be >= 0 (0 disables)");
  RAGO_REQUIRE(lookup_seconds >= 0,
               "cache lookup cost must be non-negative");
  RAGO_REQUIRE(doc_capacity >= 0,
               "doc cache capacity must be >= 0 (0 disables)");
}

LruRetrievalCache::LruRetrievalCache(int64_t capacity)
    : capacity_(capacity) {
  RAGO_REQUIRE(capacity >= 0, "cache capacity must be >= 0");
}

const CachedRetrieval*
LruRetrievalCache::Lookup(uint64_t fingerprint) {
  if (capacity_ == 0) {
    return nullptr;
  }
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Promote to MRU.
  return &it->second->second;
}

void
LruRetrievalCache::Insert(uint64_t fingerprint, CachedRetrieval value) {
  if (capacity_ == 0) {
    return;
  }
  ++counters_.insertions;
  const auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);  // Promote, no evict.
    return;
  }
  if (static_cast<int64_t>(lru_.size()) >= capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.emplace_front(fingerprint, std::move(value));
  entries_.emplace(fingerprint, lru_.begin());
}

LruDocCache::LruDocCache(int64_t capacity) : capacity_(capacity) {
  RAGO_REQUIRE(capacity >= 0, "cache capacity must be >= 0");
}

void
LruDocCache::Touch(int64_t doc_id) {
  const auto it = entries_.find(doc_id);
  if (it != entries_.end()) {
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++counters_.misses;
  ++counters_.insertions;
  if (static_cast<int64_t>(lru_.size()) >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(doc_id);
  entries_.emplace(doc_id, lru_.begin());
}

double
LruDocCache::MeasureAndAdmit(const std::vector<int64_t>& doc_ids) {
  if (capacity_ == 0 || doc_ids.empty()) {
    return 0.0;
  }
  // Deduplicate preserving first-occurrence order so the measured
  // fraction and the LRU touch sequence are content-determined.
  std::vector<int64_t> unique;
  unique.reserve(doc_ids.size());
  for (int64_t id : doc_ids) {
    bool seen = false;
    for (int64_t u : unique) {
      if (u == id) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      unique.push_back(id);
    }
  }
  const int64_t hits_before = counters_.hits;
  for (int64_t id : unique) {
    Touch(id);
  }
  return static_cast<double>(counters_.hits - hits_before) /
         static_cast<double>(unique.size());
}

uint64_t
FingerprintQueries(const ann::Matrix& pool, size_t start_row,
                   int queries) {
  RAGO_REQUIRE(!pool.empty() && queries > 0,
               "fingerprint needs a non-empty pool and positive count");
  uint64_t hash = kFnvOffset;
  for (int q = 0; q < queries; ++q) {
    const size_t row = (start_row + static_cast<size_t>(q)) % pool.rows();
    hash = FnvFold(hash, pool.Row(row), pool.dim() * sizeof(float));
  }
  return hash;
}

}  // namespace rago::cache
