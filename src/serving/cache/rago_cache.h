/**
 * @file rago_cache.h
 * Multi-level RAG serving cache tier (RAGCache-style).
 *
 * Two deterministic LRU levels sit in front of the serving runtime's
 * retrieval and prefix stages:
 *
 *  1. **Retrieval-result cache** (`LruRetrievalCache`): query
 *     fingerprint -> retrieved (doc id, distance) lists. A hit skips
 *     the real ShardedIndex scan entirely and is charged a small
 *     configurable lookup cost, letting the runtime enqueue the prefix
 *     stage immediately — retrieval/prefill overlap that collapses
 *     TTFT for hot queries.
 *  2. **Document/prefix KV cache** (`LruDocCache`): the set of doc ids
 *     whose KV blocks are resident. Each request's retrieved ids are
 *     measured against it, producing a *measured* per-request prefix
 *     cache hit fraction that replaces the assumed
 *     `WorkloadConfig::prefix_cache_hit_rate` knob in prefix pricing.
 *
 * Heavy-tailed query popularity (millions of users) is exactly where
 * this tier pays; the workload library's Zipfian and repeat-neighbor
 * query streams exercise realistic hit rates.
 *
 * Determinism contract: both caches are pure functions of their call
 * sequence — no clocks, no randomization — and the runtime drives them
 * exclusively from its serial virtual-time event loop, so cache state,
 * counters, and every measured hit fraction are bit-identical for any
 * thread count.
 */
#ifndef RAGO_SERVING_CACHE_RAGO_CACHE_H
#define RAGO_SERVING_CACHE_RAGO_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::cache {

/// Configuration of the runtime's cache tier. Zero capacities disable
/// the corresponding level (the default: bit-identical serving to a
/// runtime without a cache tier).
struct CacheOptions {
  /// Retrieval-result cache capacity in entries (requests); 0 = off.
  int64_t retrieval_capacity = 0;
  /**
   * Virtual seconds charged to a retrieval-cache hit in place of the
   * skipped batch wait + scan (the fast-path lookup cost).
   */
  double lookup_seconds = 20e-6;
  /// Document/prefix KV cache capacity in documents; 0 = off.
  int64_t doc_capacity = 0;

  /// Throws ConfigError on negative capacities or lookup cost.
  void Validate() const;
};

/// Hit/miss/eviction accounting of one cache level.
struct CacheCounters {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t insertions = 0;

  /// hits / (hits + misses); 0 before any lookup.
  double HitRate() const {
    const int64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
  }
};

/// Cached result of one request's retrieval: the top-k neighbor list
/// of each of its queries_per_retrieval query vectors.
struct CachedRetrieval {
  std::vector<std::vector<ann::Neighbor>> neighbors;
};

/**
 * Deterministic LRU cache of retrieval results keyed on a query
 * fingerprint. A capacity of 0 makes every operation a counted-free
 * no-op (Lookup always misses without counting, Insert discards).
 */
class LruRetrievalCache {
 public:
  explicit LruRetrievalCache(int64_t capacity);

  bool enabled() const { return capacity_ > 0; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const CacheCounters& counters() const { return counters_; }

  /**
   * Returns the cached value and promotes the entry to most-recently
   * used, or nullptr on a miss. Counts a hit or a miss. The pointer is
   * invalidated by the next Insert.
   */
  const CachedRetrieval* Lookup(uint64_t fingerprint);

  /**
   * Inserts (or replaces, promoting to most-recently used) the value
   * for `fingerprint`, evicting the least-recently-used entry when at
   * capacity. Replacement counts an insertion but never an eviction.
   */
  void Insert(uint64_t fingerprint, CachedRetrieval value);

 private:
  using Entry = std::pair<uint64_t, CachedRetrieval>;
  int64_t capacity_ = 0;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> entries_;
  CacheCounters counters_;
};

/**
 * Deterministic LRU set of resident document ids, modeling a
 * document-level prefix KV cache (RAGCache / CacheBlend-style). The
 * runtime measures each request's retrieved ids against it — the
 * *measured* counterpart of the assumed prefix_cache_hit_rate knob.
 */
class LruDocCache {
 public:
  explicit LruDocCache(int64_t capacity);

  bool enabled() const { return capacity_ > 0; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  const CacheCounters& counters() const { return counters_; }

  /**
   * Measures the fraction of `doc_ids` (deduplicated, order preserved)
   * already resident, then admits them all (touch on hit, insert +
   * LRU eviction on miss). Returns the measured hit fraction in
   * [0, 1]; 0 for an empty id list or a disabled cache (which also
   * counts nothing).
   */
  double MeasureAndAdmit(const std::vector<int64_t>& doc_ids);

 private:
  void Touch(int64_t doc_id);

  int64_t capacity_ = 0;
  std::list<int64_t> lru_;  ///< Front = most recently used.
  std::unordered_map<int64_t, std::list<int64_t>::iterator> entries_;
  CacheCounters counters_;
};

/**
 * Content-based FNV-1a fingerprint of `queries` consecutive rows of
 * `pool` starting at `start_row` (wrapping), matching the runtime's
 * query-drawing convention. Two requests drawing identical vectors
 * fingerprint identically regardless of request id or arrival order.
 */
uint64_t FingerprintQueries(const ann::Matrix& pool, size_t start_row,
                            int queries);

}  // namespace rago::cache

#endif  // RAGO_SERVING_CACHE_RAGO_CACHE_H
