#include "serving/runtime/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace rago::runtime {
namespace {

/// Exponential inter-event time at `rate`, clamped away from log(0).
double NextExponential(Rng& rng, double rate) {
  return -std::log(std::max(rng.NextDouble(), 1e-12)) / rate;
}

}  // namespace

ArrivalTrace
UniformTrace(int count, double qps) {
  RAGO_REQUIRE(count > 0 && qps > 0, "trace needs positive count and rate");
  ArrivalTrace trace;
  trace.arrivals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    trace.arrivals.push_back(i / qps);
  }
  return trace;
}

ArrivalTrace
PoissonTrace(int count, double qps, uint64_t seed) {
  RAGO_REQUIRE(count > 0 && qps > 0, "trace needs positive count and rate");
  Rng rng(seed);
  ArrivalTrace trace;
  trace.arrivals.reserve(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += NextExponential(rng, qps);
    trace.arrivals.push_back(t);
  }
  return trace;
}

ArrivalTrace
BurstTrace(int count) {
  RAGO_REQUIRE(count > 0, "trace needs positive count");
  ArrivalTrace trace;
  trace.arrivals.assign(static_cast<size_t>(count), 0.0);
  return trace;
}

void
MmppOptions::Validate() const {
  RAGO_REQUIRE(quiet_qps > 0 && burst_qps > 0,
               "MMPP rates must be positive");
  RAGO_REQUIRE(mean_quiet_seconds > 0 && mean_burst_seconds > 0,
               "MMPP dwell times must be positive");
}

double
MmppOptions::MeanQps() const {
  Validate();
  return (quiet_qps * mean_quiet_seconds + burst_qps * mean_burst_seconds) /
         (mean_quiet_seconds + mean_burst_seconds);
}

ArrivalTrace
MmppTrace(int count, const MmppOptions& options, uint64_t seed) {
  RAGO_REQUIRE(count > 0, "trace needs positive count");
  options.Validate();
  Rng rng(seed);
  ArrivalTrace trace;
  trace.arrivals.reserve(static_cast<size_t>(count));

  bool burst = false;
  double t = 0.0;
  // Time at which the current state's exponential dwell expires.
  double switch_at = NextExponential(rng, 1.0 / options.mean_quiet_seconds);
  while (static_cast<int>(trace.arrivals.size()) < count) {
    const double rate = burst ? options.burst_qps : options.quiet_qps;
    const double candidate = t + NextExponential(rng, rate);
    if (candidate < switch_at) {
      t = candidate;
      trace.arrivals.push_back(t);
    } else {
      // The dwell expired first: toggle states and resample from the
      // new rate (the memoryless property makes the discarded
      // candidate statistically free).
      t = switch_at;
      burst = !burst;
      const double dwell = burst ? options.mean_burst_seconds
                                 : options.mean_quiet_seconds;
      switch_at = t + NextExponential(rng, 1.0 / dwell);
    }
  }
  return trace;
}

void
DiurnalOptions::Validate() const {
  RAGO_REQUIRE(mean_qps > 0, "diurnal mean rate must be positive");
  RAGO_REQUIRE(period_seconds > 0, "diurnal period must be positive");
  RAGO_REQUIRE(amplitude >= 0 && amplitude < 1,
               "diurnal amplitude must be in [0, 1)");
}

ArrivalTrace
DiurnalTrace(int count, const DiurnalOptions& options, uint64_t seed) {
  RAGO_REQUIRE(count > 0, "trace needs positive count");
  options.Validate();
  Rng rng(seed);
  ArrivalTrace trace;
  trace.arrivals.reserve(static_cast<size_t>(count));

  // Thinning: draw a homogeneous Poisson stream at the peak rate and
  // accept each point with probability rate(t) / peak.
  const double peak = options.mean_qps * (1.0 + options.amplitude);
  // Not M_PI: strict -std=c++17 (no GNU extensions) need not define it.
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double omega = kTwoPi / options.period_seconds;
  double t = 0.0;
  while (static_cast<int>(trace.arrivals.size()) < count) {
    t += NextExponential(rng, peak);
    const double rate =
        options.mean_qps * (1.0 + options.amplitude * std::sin(omega * t));
    if (rng.NextDouble() * peak < rate) {
      trace.arrivals.push_back(t);
    }
  }
  return trace;
}

void
SaveTrace(const ArrivalTrace& trace, const std::string& path) {
  RAGO_REQUIRE(!trace.arrivals.empty(), "cannot save an empty trace");
  std::FILE* file = std::fopen(path.c_str(), "w");
  RAGO_REQUIRE(file != nullptr, "cannot open trace file for write: " + path);
  std::fprintf(file, "rago-trace v1 %zu\n", trace.arrivals.size());
  for (double arrival : trace.arrivals) {
    std::fprintf(file, "%.17g\n", arrival);
  }
  std::fclose(file);
}

ArrivalTrace
LoadTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  RAGO_REQUIRE(file != nullptr, "cannot open trace file: " + path);
  size_t count = 0;
  const bool header_ok =
      std::fscanf(file, "rago-trace v1 %zu\n", &count) == 1;
  if (!header_ok || count == 0) {
    std::fclose(file);
    RAGO_REQUIRE(false, "malformed trace header in " + path);
  }
  ArrivalTrace trace;
  // The header count is untrusted input: cap the up-front reservation
  // so a corrupt header reports ConfigError (below, when arrivals run
  // out) instead of dying in a gigantic allocation.
  trace.arrivals.reserve(std::min<size_t>(count, 1 << 16));
  double previous = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    double arrival = 0.0;
    if (std::fscanf(file, "%lg\n", &arrival) != 1 || arrival < previous ||
        !std::isfinite(arrival)) {
      std::fclose(file);
      RAGO_REQUIRE(false, "malformed arrival in trace file " + path);
    }
    previous = arrival;
    trace.arrivals.push_back(arrival);
  }
  std::fclose(file);
  return trace;
}

QueryStream
ZipfianQueryStream(int count, int64_t pool_rows, double skew,
                   uint64_t seed) {
  RAGO_REQUIRE(count > 0, "query stream needs positive count");
  RAGO_REQUIRE(pool_rows > 0, "query stream needs a non-empty pool");
  RAGO_REQUIRE(skew >= 0, "Zipf skew must be non-negative");
  // Inverse-CDF sampling over the rank weights 1/(r+1)^skew. The CDF
  // is precomputed once; each draw is a binary search, so streams over
  // large pools stay cheap and fully deterministic.
  std::vector<double> cdf(static_cast<size_t>(pool_rows));
  double total = 0.0;
  for (int64_t r = 0; r < pool_rows; ++r) {
    total += std::pow(static_cast<double>(r + 1), -skew);
    cdf[static_cast<size_t>(r)] = total;
  }
  Rng rng(seed);
  QueryStream stream;
  stream.rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    stream.rows.push_back(
        std::min<int64_t>(it - cdf.begin(), pool_rows - 1));
  }
  return stream;
}

void
RepeatNeighborOptions::Validate() const {
  RAGO_REQUIRE(repeat_probability >= 0.0 && repeat_probability <= 1.0,
               "repeat probability must be in [0, 1]");
  RAGO_REQUIRE(window >= 1, "repeat window must be >= 1");
}

QueryStream
RepeatNeighborQueryStream(int count, int64_t pool_rows,
                          const RepeatNeighborOptions& options,
                          uint64_t seed) {
  RAGO_REQUIRE(count > 0, "query stream needs positive count");
  RAGO_REQUIRE(pool_rows > 0, "query stream needs a non-empty pool");
  options.Validate();
  Rng rng(seed);
  QueryStream stream;
  stream.rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const bool repeat =
        !stream.rows.empty() &&
        rng.NextDouble() < options.repeat_probability;
    if (repeat) {
      const auto span = std::min<size_t>(
          stream.rows.size(), static_cast<size_t>(options.window));
      const size_t back = static_cast<size_t>(rng.NextBounded(span));
      stream.rows.push_back(
          stream.rows[stream.rows.size() - 1 - back]);
    } else {
      stream.rows.push_back(static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(pool_rows))));
    }
  }
  return stream;
}

double
OfferedQps(const ArrivalTrace& trace) {
  RAGO_REQUIRE(!trace.arrivals.empty(), "empty arrival trace");
  const double span = trace.arrivals.back();
  if (span <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(trace.arrivals.size()) / span;
}

ArrivalTrace
MergeTraces(const ArrivalTrace& a, const ArrivalTrace& b) {
  ArrivalTrace merged;
  merged.arrivals.resize(a.arrivals.size() + b.arrivals.size());
  std::merge(a.arrivals.begin(), a.arrivals.end(), b.arrivals.begin(),
             b.arrivals.end(), merged.arrivals.begin());
  return merged;
}

}  // namespace rago::runtime
