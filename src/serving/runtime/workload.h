/**
 * @file workload.h
 * Arrival-trace scenario library for the serving stack.
 *
 * One place for every way this repo generates request traffic. The
 * trace-driven DES (sim/serving_sim.h) and the online serving runtime
 * (serving/runtime/runtime.h) both consume the same ArrivalTrace, so
 * a scenario defined here — open-loop Poisson, bursty MMPP, diurnal
 * tides, or a replayed trace file — drives either engine unchanged.
 * This library absorbs the generators that previously lived inside
 * sim/serving_sim.{h,cc}; the sim namespace re-exports them for
 * existing call sites.
 *
 * All generators are seeded and deterministic (common/rng.h): the same
 * (options, seed) produce bit-identical traces on every platform, and
 * trace files round-trip losslessly (%.17g per arrival).
 */
#ifndef RAGO_SERVING_RUNTIME_WORKLOAD_H
#define RAGO_SERVING_RUNTIME_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace rago::runtime {

/// Request arrival trace (seconds, non-decreasing).
struct ArrivalTrace {
  std::vector<double> arrivals;
};

/// Uniform (open-loop) arrivals: `count` requests at fixed `qps`.
ArrivalTrace UniformTrace(int count, double qps);

/// Poisson arrivals at rate `qps`, seeded.
ArrivalTrace PoissonTrace(int count, double qps, uint64_t seed);

/// One burst of `count` simultaneous arrivals at t = 0.
ArrivalTrace BurstTrace(int count);

/**
 * Two-state Markov-modulated Poisson process: traffic alternates
 * between a quiet state and a burst state, with exponentially
 * distributed dwell times. The standard bursty-arrivals model —
 * batched flushes that look fine under Poisson load back up during
 * the burst episodes this produces.
 */
struct MmppOptions {
  double quiet_qps = 50.0;   ///< Arrival rate in the quiet state.
  double burst_qps = 250.0;  ///< Arrival rate in the burst state.
  double mean_quiet_seconds = 2.0;  ///< Mean dwell time, quiet state.
  double mean_burst_seconds = 0.5;  ///< Mean dwell time, burst state.

  /// Throws ConfigError on non-positive rates or dwell times.
  void Validate() const;

  /// Long-run average arrival rate (dwell-time-weighted).
  double MeanQps() const;
};

ArrivalTrace MmppTrace(int count, const MmppOptions& options, uint64_t seed);

/**
 * Diurnal tide: a non-homogeneous Poisson process whose rate swings
 * sinusoidally around `mean_qps` with the given period (one synthetic
 * "day"), sampled by thinning against the peak rate.
 */
struct DiurnalOptions {
  double mean_qps = 50.0;
  double period_seconds = 60.0;  ///< One full load cycle.
  double amplitude = 0.8;        ///< Peak swing, in [0, 1).

  /// Throws ConfigError on non-positive rate/period or amplitude
  /// outside [0, 1).
  void Validate() const;
};

ArrivalTrace DiurnalTrace(int count, const DiurnalOptions& options,
                          uint64_t seed);

/**
 * Writes `trace` to a replayable text file: a `rago-trace v1` header
 * line, then one arrival per line at %.17g (lossless for doubles).
 * Throws ConfigError when the file cannot be written.
 */
void SaveTrace(const ArrivalTrace& trace, const std::string& path);

/**
 * Parses a file written by SaveTrace. Round-trips bit-exactly:
 * LoadTrace(SaveTrace(t)) compares equal to t arrival by arrival.
 * Throws ConfigError on missing files, bad headers, malformed or
 * decreasing arrivals.
 */
ArrivalTrace LoadTrace(const std::string& path);

/// Mean offered load of a trace: count / last arrival (inf for a
/// single-instant burst).
double OfferedQps(const ArrivalTrace& trace);

/**
 * Superimposes two arrival streams into one non-decreasing trace
 * (a stable std::merge — ties keep `a`'s arrivals first). Composes
 * scenario primitives into richer traffic, e.g. MMPP bursts riding a
 * diurnal tide for soak runs.
 */
ArrivalTrace MergeTraces(const ArrivalTrace& a, const ArrivalTrace& b);

// ---------------------------------------------------------------------------
// Query streams: which query each request asks.
// ---------------------------------------------------------------------------

/**
 * Per-request query assignment: rows[i] is the query-pool row request
 * i starts drawing from (it draws queries_per_retrieval consecutive
 * rows, wrapping). The arrival trace says *when* requests come; the
 * query stream says *what* they ask — the dimension that decides
 * whether a cache tier pays. All generators are seeded and
 * deterministic: the same (options, seed) produce bit-identical
 * streams.
 */
struct QueryStream {
  std::vector<int64_t> rows;
};

/**
 * Zipfian query popularity over `pool_rows` rows: row r is drawn with
 * probability proportional to 1 / (r + 1)^skew. skew = 0 is uniform;
 * skew around 1 is the classic heavy-tailed web-query regime where a
 * small hot set dominates — the workload millions of users actually
 * produce, and the one that turns an assumed cache hit rate into a
 * measured quantity.
 */
QueryStream ZipfianQueryStream(int count, int64_t pool_rows, double skew,
                               uint64_t seed);

/// Knobs of the repeat-neighbor stream.
struct RepeatNeighborOptions {
  /// Probability a request repeats a recently issued query.
  double repeat_probability = 0.8;
  /// How far back the repeated query may come from.
  int window = 64;

  /// Throws ConfigError on probability outside [0, 1] or window < 1.
  void Validate() const;
};

/**
 * Repeat-neighbor stream: each request either re-asks one of the last
 * `window` queries (with repeat_probability, uniformly over the
 * window) or asks a fresh uniform row. Models conversational follow-up
 * traffic; repeat_probability = 1.0 yields a repeat-only trace whose
 * measured cache hit rate legitimately reaches 1.0.
 */
QueryStream RepeatNeighborQueryStream(int count, int64_t pool_rows,
                                      const RepeatNeighborOptions& options,
                                      uint64_t seed);

}  // namespace rago::runtime

#endif  // RAGO_SERVING_RUNTIME_WORKLOAD_H
