/**
 * @file runtime.h
 * Online RAG serving runtime: a request-level scheduler that executes
 * a RAGO schedule against live traffic.
 *
 * The analytical model (core/pipeline_model.h) predicts a schedule's
 * steady state and the DES (sim/serving_sim.h) replays it event by
 * event — but neither *serves* anything. This runtime closes the loop:
 * requests from a workload scenario (serving/runtime/workload.h) are
 * admitted through a bounded queue and driven through the schedule's
 * stage graph with per-stage continuous batching (size/timeout flush,
 * like the DES), and the retrieval stage executes **real**
 * ShardedIndex::SearchBatch scans — any backend/partitioner, SIMD
 * kernels and all — fanned out on the shared thread pool.
 *
 * Execution is hybrid: XPU stages (encoder/rewriter/rerank/prefix) and
 * decode consume modeled service times from the same PipelineModel
 * cost models the optimizer uses, advanced on a virtual clock, while
 * the retrieval stage's *results* come from real scans (its virtual
 * service time stays model-priced so telemetry is reproducible). Wall
 * time is therefore dominated by the real scans, and one machine can
 * serve a schedule chosen by the optimizer over the very same
 * calibrated costs — the end-to-end closed loop on the ROADMAP.
 *
 * Determinism contract (PR-3): a fixed RuntimeOptions::seed yields
 * bit-identical request outcomes (retrieved ids, TTFT/TPOT), telemetry
 * histograms, and the outcome digest for every num_threads, because
 * the scheduler loop is serial on virtual time and ShardedIndex
 * guarantees thread-count-invariant merged top-k.
 */
#ifndef RAGO_SERVING_RUNTIME_RUNTIME_H
#define RAGO_SERVING_RUNTIME_RUNTIME_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/pipeline_model.h"
#include "core/schedule.h"
#include "retrieval/perf/retrieval_model.h"
#include "retrieval/serving/sharded_index.h"
#include "serving/cache/rago_cache.h"
#include "serving/obs/flight_recorder.h"
#include "serving/obs/slo_alerts.h"
#include "serving/obs/timeseries.h"
#include "serving/obs/trace.h"
#include "serving/runtime/workload.h"

namespace rago::runtime {

/// Latency service-level objective for one deployment.
struct SloTarget {
  double ttft_seconds = 0.5;   ///< Max acceptable time to first token.
  double tpot_seconds = 0.05;  ///< Max acceptable time per output token.
};

/// Runtime configuration knobs.
struct RuntimeOptions {
  /**
   * Bounded admission queue: arrivals finding this many requests
   * already waiting at the first stage are rejected (counted, never
   * served). Must be positive.
   */
  int admission_queue_limit = 4096;
  /// Maximum virtual seconds a stage waits to fill its batch before
  /// flushing a partial one. Must be non-negative.
  double batch_timeout = 0.050;
  /**
   * Worker threads for the real retrieval scans: 0 = hardware
   * concurrency, 1 = a single worker. Results and telemetry are
   * bit-identical for every value (the ShardedIndex contract).
   */
  int num_threads = 0;
  /// Neighbors fetched per query vector by the retrieval stage.
  int top_k = 10;
  /// Seeds the query-vector assignment stream (request -> pool row).
  uint64_t seed = 0x5eed;
  /// SLO the attainment metric is scored against.
  SloTarget slo;
  /**
   * Optional deterministic pricing of the retrieval stage's virtual
   * service time (e.g. a MeasuredRetrievalModel calibrated from this
   * very index). Defaults to the pipeline model's EvalRetrieval —
   * identical to the DES's treatment. Not owned; must outlive Serve.
   */
  const retrieval::RetrievalModel* retrieval_model = nullptr;
  /// Per-stage queue-depth timeline samples kept (0 disables).
  int timeline_limit = 4096;
  /**
   * Multi-level cache tier (serving/cache/rago_cache.h). With
   * retrieval_capacity > 0, requests whose query fingerprint is cached
   * skip the real scan *and* the retrieval batch entirely: the cached
   * results are delivered after cache.lookup_seconds and the next
   * stage is enqueued immediately (retrieval/prefill overlap). With
   * doc_capacity > 0, each request's retrieved doc ids are measured
   * against a document KV cache and prefix batches are priced with the
   * measured per-batch hit fraction instead of the schema's assumed
   * prefix_cache_hit_rate. Zero capacities (the default) disable each
   * level and reproduce cacheless serving bit-identically.
   */
  cache::CacheOptions cache;

  /**
   * Optional span-trace recorder (serving/obs/trace.h). When set,
   * Serve appends admission/queue/batch/stage/cache/decode spans on
   * the virtual clock as it schedules; null (the default) records
   * nothing. Observation-only by contract: every RuntimeResult field,
   * including the outcome digest, is bit-identical with tracing on or
   * off — the invariance tests pin this. Not owned; must outlive
   * Serve. Appends happen on the serial scheduler loop only.
   */
  obs::TraceRecorder* trace = nullptr;
  /**
   * Optional metrics registry (common/metrics.h). When set, Serve
   * records its counters/gauges and streams TTFT/TPOT/queue-wait into
   * bounded histograms under "runtime.*" names. Same observation-only
   * contract as `trace`. Not owned; must outlive Serve.
   */
  MetricsRegistry* metrics = nullptr;
  /**
   * Optional windowed telemetry (serving/obs/timeseries.h). When set,
   * Serve rolls arrivals/rejections/completions/queue-depth/busy-time
   * into fixed virtual-clock windows with the retention ladder keeping
   * memory bounded for any run length, and closes windows as the event
   * loop passes their upper edge. Same observation-only contract as
   * `trace`; thread-count invariant. Not owned; must outlive Serve and
   * arrive unfinished (Serve calls Finish at the end of the run).
   */
  obs::TelemetryTimeSeries* timeseries = nullptr;
  /**
   * Optional burn-rate alerting (serving/obs/slo_alerts.h). Requires
   * `timeseries`; each closed fine window is fed to the engine and the
   * resulting transitions are emitted as trace instants (when tracing)
   * and flight records (when flying). Observation-only unless the
   * engine's fold_into_digest opts the transitions into the outcome
   * digest. Not owned; must outlive Serve.
   */
  obs::SloAlertEngine* alerts = nullptr;
  /**
   * Optional flight recorder (serving/obs/flight_recorder.h): a
   * bounded ring of recent window/alert/rejection/milestone records.
   * When serving aborts (RAGO_CHECK failure or any exception unwinding
   * the event loop) the ring is dumped to `flight_dump_path` (when
   * non-empty) before the exception continues. Not owned.
   */
  obs::FlightRecorder* flight = nullptr;
  /// Dump target for the flight recorder on abort; empty = no dump.
  std::string flight_dump_path;
  /**
   * Exact samples each latency recorder (TTFT/TPOT/queue-wait, per
   * stage and aggregate) keeps before folding into the bounded
   * streaming representation (common/histogram.h). The switchover is
   * a pure function of the sample count — deterministic across thread
   * counts — and is surfaced via RuntimeResult::streaming_histograms.
   * Must be positive.
   */
  int64_t histogram_sample_cap = Histogram::kDefaultSampleCap;

  /// Throws ConfigError on invalid knobs.
  void Validate() const;
};

/// One (virtual time, state) sample of a stage's telemetry timeline.
struct StageTimelinePoint {
  double time = 0.0;        ///< Virtual seconds.
  int queue_depth = 0;      ///< Waiting requests after the event.
  double utilization = 0.0; ///< Busy fraction of the stage so far.
};

/// Per-stage telemetry of one Serve call.
struct StageTelemetry {
  core::StageType type = core::StageType::kPrefix;
  int server = 0;           ///< Collocation group id, or the dedicated
                            ///< retrieval server index.
  int64_t batches = 0;      ///< Batches flushed (full or timed out).
  int64_t full_batches = 0; ///< Batches flushed at the configured size.
  int64_t requests = 0;     ///< Requests processed.
  double busy_seconds = 0.0;  ///< Virtual server occupancy.
  double utilization = 0.0;   ///< busy_seconds / makespan.
  int max_queue_depth = 0;
  Histogram queue_wait;       ///< Virtual wait from enqueue to flush.
  std::vector<StageTimelinePoint> timeline;
};

/// Outcome of one request (virtual seconds unless noted).
struct RequestOutcome {
  double arrival = 0.0;
  bool admitted = false;
  double ttft = -1.0;        ///< Arrival to first token; -1 if rejected.
  double decode_start = -1.0;  ///< Admission into the decode pool.
  double tpot = -1.0;        ///< Decode seconds per output token (from
                             ///< decode_start, matching the DES).
  double completion = -1.0;  ///< Absolute completion time.
  double queue_wait = 0.0;   ///< Summed pre-decode queue waits.
  int64_t first_neighbor = -1;  ///< Top-1 global id of the request's
                                ///< first query (a real scan result
                                ///< or its cached equivalent).
  bool slo_ok = false;       ///< Completed within both SLO targets.
  /// Served from the retrieval-result cache (no real scan ran).
  bool retrieval_cache_hit = false;
  /// Measured fraction of this request's retrieved documents resident
  /// in the KV cache when its results landed (0 when that level is
  /// disabled) — the measured prefix_cache_hit_rate.
  double prefix_hit_fraction = 0.0;
};

/// Aggregate result of one Serve call.
struct RuntimeResult {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  double makespan = 0.0;     ///< Last completion (virtual seconds).
  double throughput = 0.0;   ///< completed / makespan.

  Histogram ttft;            ///< Completed requests only.
  Histogram tpot;
  Histogram queue_wait;      ///< Summed pre-decode waits per request.

  /**
   * Fraction of *submitted* requests that completed within both SLO
   * targets — rejected requests score as violations, so shedding load
   * cannot inflate attainment.
   */
  double slo_attainment = 0.0;

  std::vector<StageTelemetry> stages;  ///< Pre-decode stages, in order.
  double decode_utilization = 0.0;
  int max_decode_queue_depth = 0;

  /**
   * Cache-tier telemetry: hit/miss/eviction/insertion counters of the
   * retrieval-result cache and the document KV cache, and the mean
   * measured prefix hit fraction over admitted requests — the
   * *measured* quantity that replaces the schema's assumed
   * prefix_cache_hit_rate. All folded into the outcome digest, so the
   * determinism sweep pins them for every thread count.
   */
  cache::CacheCounters retrieval_cache;
  cache::CacheCounters doc_cache;
  double measured_prefix_hit_rate = 0.0;

  /**
   * Latency recorders that hit RuntimeOptions::histogram_sample_cap
   * and degraded to bounded streaming percentiles (0 in typical runs:
   * the switchover is surfaced, never silent).
   */
  int streaming_histograms = 0;

  /// Real-scan accounting (host wall clock; *not* covered by the
  /// determinism contract, unlike everything above).
  double real_scan_seconds = 0.0;
  double real_scan_bytes = 0.0;
  int64_t real_queries_scanned = 0;

  std::vector<RequestOutcome> requests;  ///< Indexed by request id.

  /**
   * FNV-1a digest over every request outcome in id order: admission,
   * retrieved (id, distance-bit) pairs, and TTFT/TPOT/completion bit
   * patterns. Two runs serve identically iff digests match — the
   * determinism tests sweep num_threads against this.
   */
  uint64_t outcome_digest = 0;
};

/**
 * The serving engine for one (model, schedule, index) deployment.
 * Construction validates the schedule against the model and the
 * options; Serve may be called repeatedly (each call is independent).
 */
class ServingRuntime {
 public:
  /**
   * `model`, `index`, and (when set) `options.retrieval_model` are
   * borrowed and must outlive the runtime. The schema must not use
   * iterative retrieval (runtime counterpart of the DES restriction).
   */
  ServingRuntime(const core::PipelineModel& model, core::Schedule schedule,
                 const serving::ShardedIndex& index,
                 RuntimeOptions options = {});

  /**
   * Serves `workload` end to end. Each admitted request draws
   * queries_per_retrieval consecutive rows (wrapping) from
   * `query_pool`, starting at a seed-derived row, and retrieves
   * top_k neighbors through the live sharded index.
   */
  RuntimeResult Serve(const ArrivalTrace& workload,
                      const ann::Matrix& query_pool) const;

  /**
   * Serves with an explicit per-request query assignment (workload.h
   * query streams — Zipfian, repeat-neighbor, ...): request i starts
   * drawing pool rows at stream.rows[i] instead of a seed-derived
   * row. stream.rows.size() must equal the arrival count; rows must
   * be in [0, query_pool.rows()). This is the path that exercises
   * realistic cache hit rates.
   */
  RuntimeResult Serve(const ArrivalTrace& workload,
                      const ann::Matrix& query_pool,
                      const QueryStream& stream) const;

  const core::Schedule& schedule() const { return schedule_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  RuntimeResult ServeImpl(const ArrivalTrace& workload,
                          const ann::Matrix& query_pool,
                          const std::vector<size_t>& row_start) const;

  const core::PipelineModel& model_;
  core::Schedule schedule_;
  const serving::ShardedIndex& index_;
  RuntimeOptions options_;
  /// Owned pool of ResolveNumThreads(options_.num_threads) workers
  /// (always allocated, even for a single worker, so scan parallelism
  /// follows this runtime's knob rather than the index's own default).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace rago::runtime

#endif  // RAGO_SERVING_RUNTIME_RUNTIME_H
