#include "serving/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/stage.h"

namespace rago::runtime {
namespace {

using core::PipelineModel;
using core::StageType;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  // Measurement only: real-scan wall-clock telemetry, never virtual
  // time or control flow. rago-lint: allow(wallclock)
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// FNV-1a 64-bit fold of an arbitrary byte span.
uint64_t FnvFold(uint64_t hash, const void* bytes, size_t size) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t FnvFoldU64(uint64_t hash, uint64_t value) {
  return FnvFold(hash, &value, sizeof(value));
}

uint64_t FnvFoldDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvFoldU64(hash, bits);
}

uint64_t FnvFoldFloat(uint64_t hash, float value) {
  uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvFoldU64(hash, bits);
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

/// One request waiting in a stage queue.
struct QueueEntry {
  int id = 0;
  double enqueued = 0.0;  ///< Virtual time it entered this queue.
};

/// One pipeline stage instantiated for execution.
struct ExecStage {
  StageType type = StageType::kPrefix;
  int server = 0;
  int64_t batch = 1;
  double latency = 0.0;   ///< Virtual completion time of one batch.
  double interval = 0.0;  ///< Virtual server occupancy per batch.
  std::deque<QueueEntry> queue;
  double oldest_enqueue = 0.0;
};

/// Scheduler event; kind ascending breaks time ties (arrivals first),
/// then payload ascending so simultaneous events pop in a fixed order
/// on every standard library, keeping outcomes platform-reproducible,
/// not just run-reproducible. The (time, kind, payload) tie-break
/// covers cache-hit deliveries too: simultaneous hits (e.g. a burst of
/// hot queries) carry their request id as the payload, so the order
/// results enter the post-retrieval stage — and therefore the outcome
/// digest — never depends on anything but the trace.
struct Event {
  double time = 0.0;
  int kind = 0;  // 0 = arrival, 1 = stage-done, 2 = flush, 3 = step,
                 // 4 = cache-hit delivery.
  int a = 0;     // arrival/cache-hit: request id; stage-done/flush:
                 // stage index.

  friend bool operator>(const Event& lhs, const Event& rhs) {
    if (lhs.time != rhs.time) {
      return lhs.time > rhs.time;
    }
    if (lhs.kind != rhs.kind) {
      return lhs.kind > rhs.kind;
    }
    return lhs.a > rhs.a;
  }
};

}  // namespace

void
RuntimeOptions::Validate() const {
  RAGO_REQUIRE(admission_queue_limit > 0,
               "admission_queue_limit must be positive");
  RAGO_REQUIRE(batch_timeout >= 0, "batch_timeout must be non-negative");
  RAGO_REQUIRE(num_threads >= 0,
               "num_threads must be >= 0 (0 = hardware concurrency)");
  RAGO_REQUIRE(top_k >= 1, "top_k must be >= 1");
  RAGO_REQUIRE(slo.ttft_seconds > 0 && slo.tpot_seconds > 0,
               "SLO targets must be positive");
  RAGO_REQUIRE(timeline_limit >= 0, "timeline_limit must be >= 0");
  RAGO_REQUIRE(histogram_sample_cap > 0,
               "histogram_sample_cap must be positive");
  RAGO_REQUIRE(alerts == nullptr || timeseries != nullptr,
               "burn-rate alerting requires a telemetry time-series");
  cache.Validate();
}

ServingRuntime::ServingRuntime(const PipelineModel& model,
                               core::Schedule schedule,
                               const serving::ShardedIndex& index,
                               RuntimeOptions options)
    : model_(model), schedule_(std::move(schedule)), index_(index),
      options_(std::move(options)) {
  options_.Validate();
  RAGO_REQUIRE(model_.schema().retrieval_enabled,
               "the serving runtime requires a retrieval stage");
  RAGO_REQUIRE(!model_.schema().IterativeRetrieval(),
               "iterative retrieval is not supported by the runtime "
               "(use SimulateIterativeDecode)");
  schedule_.Validate(model_.chain().size());
  // A dedicated pool (even of one worker) so scan parallelism follows
  // this runtime's knob, not the index's own num_threads default.
  pool_ = std::make_unique<ThreadPool>(
      ResolveNumThreads(options_.num_threads));
}

RuntimeResult
ServingRuntime::Serve(const ArrivalTrace& workload,
                      const ann::Matrix& query_pool) const {
  RAGO_REQUIRE(!workload.arrivals.empty(), "empty arrival trace");
  RAGO_REQUIRE(!query_pool.empty(), "empty query pool");
  // Legacy assignment: each request's starting pool row derives from
  // the seed (uniform over the pool), exactly as before query streams
  // existed.
  std::vector<size_t> row_start(workload.arrivals.size());
  for (size_t i = 0; i < row_start.size(); ++i) {
    row_start[i] = static_cast<size_t>(
        Rng::DeriveSeed(options_.seed, static_cast<uint64_t>(i)) %
        query_pool.rows());
  }
  return ServeImpl(workload, query_pool, row_start);
}

RuntimeResult
ServingRuntime::Serve(const ArrivalTrace& workload,
                      const ann::Matrix& query_pool,
                      const QueryStream& stream) const {
  RAGO_REQUIRE(!workload.arrivals.empty(), "empty arrival trace");
  RAGO_REQUIRE(!query_pool.empty(), "empty query pool");
  RAGO_REQUIRE(stream.rows.size() == workload.arrivals.size(),
               "query stream length must match the arrival trace");
  std::vector<size_t> row_start(stream.rows.size());
  for (size_t i = 0; i < stream.rows.size(); ++i) {
    const int64_t row = stream.rows[i];
    RAGO_REQUIRE(row >= 0 &&
                     row < static_cast<int64_t>(query_pool.rows()),
                 "query stream row out of pool range");
    row_start[i] = static_cast<size_t>(row);
  }
  return ServeImpl(workload, query_pool, row_start);
}

RuntimeResult
ServingRuntime::ServeImpl(const ArrivalTrace& workload,
                          const ann::Matrix& query_pool,
                          const std::vector<size_t>& row_start) const {
  RAGO_REQUIRE(query_pool.dim() == index_.dim(),
               "query pool dimensionality mismatch with the index");

  // --- Instantiate the stage graph with model-priced service times
  // (identical treatment to the serving DES, so the two engines are
  // directly cross-checkable). ---
  const auto& chain = model_.chain();
  std::vector<ExecStage> stages;
  const int retrieval_server = schedule_.NumGroups();
  size_t retrieval_stage_index = 0;
  size_t prefix_stage_index = 0;
  int prefix_chips = 0;
  size_t chain_index = 0;
  for (StageType type : model_.schema().AllStages()) {
    if (type == StageType::kDecode) {
      continue;  // Decode runs in the continuous-batching pool below.
    }
    ExecStage stage;
    stage.type = type;
    if (type == StageType::kRetrieval) {
      retrieval_stage_index = stages.size();
      stage.server = retrieval_server;
      stage.batch = schedule_.retrieval_batch;
      const int64_t queries =
          stage.batch * model_.schema().retrieval.queries_per_retrieval;
      if (options_.retrieval_model != nullptr) {
        const retrieval::RetrievalCost cost =
            options_.retrieval_model->Search(queries);
        stage.latency = cost.latency;
        stage.interval = static_cast<double>(queries) / cost.throughput;
      } else {
        const core::StagePerf perf = model_.EvalRetrieval(
            static_cast<int>(stage.batch), schedule_.retrieval_servers);
        RAGO_REQUIRE(perf.feasible, "retrieval infeasible under schedule");
        stage.latency = perf.latency;
        stage.interval =
            static_cast<double>(stage.batch) / perf.throughput;
      }
    } else {
      RAGO_CHECK(chain_index < chain.size(), "chain/stage walk mismatch");
      const int group = schedule_.chain_group[chain_index];
      stage.server = group;
      stage.batch = schedule_.chain_batch[chain_index];
      const core::StagePerf perf = model_.EvalChainStage(
          type, schedule_.group_chips[static_cast<size_t>(group)],
          stage.batch);
      RAGO_REQUIRE(perf.feasible, "stage infeasible under schedule");
      stage.latency = perf.latency;
      stage.interval = static_cast<double>(stage.batch) / perf.throughput;
      if (type == StageType::kPrefix) {
        prefix_stage_index = stages.size();
        prefix_chips =
            schedule_.group_chips[static_cast<size_t>(group)];
      }
      ++chain_index;
    }
    stages.push_back(std::move(stage));
  }
  const int num_servers = retrieval_server + 1;

  const core::StagePerf decode_perf =
      model_.EvalDecode(schedule_.decode_chips, schedule_.decode_batch);
  RAGO_REQUIRE(decode_perf.feasible, "decode infeasible under schedule");
  const int decode_tokens = model_.schema().workload.decode_tokens;
  const double step_latency =
      static_cast<double>(schedule_.decode_batch) /
      (decode_perf.throughput * decode_tokens);

  // --- Serving state. ---
  RuntimeResult result;
  result.submitted = static_cast<int64_t>(workload.arrivals.size());
  result.requests.resize(workload.arrivals.size());
  for (size_t i = 0; i < workload.arrivals.size(); ++i) {
    result.requests[i].arrival = workload.arrivals[i];
  }
  result.ttft = Histogram(options_.histogram_sample_cap);
  result.tpot = Histogram(options_.histogram_sample_cap);
  result.queue_wait = Histogram(options_.histogram_sample_cap);
  result.stages.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    result.stages[s].type = stages[s].type;
    result.stages[s].server = stages[s].server;
    result.stages[s].queue_wait = Histogram(options_.histogram_sample_cap);
  }

  // --- Span tracing (opt-in, observation-only: appends never feed
  // back into scheduling, so the digest is invariant to `trace`). ---
  obs::TraceRecorder* trace = options_.trace;
  const int decode_row = num_servers;
  if (trace != nullptr) {
    trace->SetProcessName(0, "servers");
    trace->SetProcessName(1, "requests");
    for (int g = 0; g < schedule_.NumGroups(); ++g) {
      trace->SetThreadName(0, g, "xpu group " + std::to_string(g));
    }
    trace->SetThreadName(0, retrieval_server, "retrieval servers");
    trace->SetThreadName(0, decode_row, "decode pool");
  }

  // --- Windowed telemetry, burn-rate alerting, flight recorder (all
  // opt-in; driven on the virtual clock from the serial loop, so every
  // surface is thread-count invariant, and observation-only except the
  // explicitly-opted-in alert digest fold). ---
  obs::TelemetryTimeSeries* series = options_.timeseries;
  obs::SloAlertEngine* alerts = options_.alerts;
  obs::FlightRecorder* flight = options_.flight;
  const int alert_row = decode_row + 1;
  if (trace != nullptr && alerts != nullptr) {
    trace->SetThreadName(0, alert_row, "slo alerts");
  }
  if (flight != nullptr) {
    flight->Append(0.0, "note",
                   "serve begin: " + std::to_string(result.submitted) +
                       " requests");
  }

  const int qpr = model_.schema().retrieval.queries_per_retrieval;
  const size_t pool_rows = query_pool.rows();
  RAGO_CHECK(row_start.size() == workload.arrivals.size(),
             "row-start assignment length mismatch");

  // --- Cache tier (per Serve call: the engine is reusable and each
  // call's cache state is a pure function of the trace + stream). ---
  cache::LruRetrievalCache retrieval_cache(
      options_.cache.retrieval_capacity);
  cache::LruDocCache doc_cache(options_.cache.doc_capacity);
  // Content-based query fingerprints, computed up front so lookup
  // cost in the event loop is O(1) per request.
  std::vector<uint64_t> fingerprints;
  if (retrieval_cache.enabled()) {
    fingerprints.resize(workload.arrivals.size());
    for (size_t i = 0; i < fingerprints.size(); ++i) {
      fingerprints[i] =
          cache::FingerprintQueries(query_pool, row_start[i], qpr);
    }
  }
  // Measured-hit-rate prefix pricing, memoized per distinct rate (an
  // ordered map: iteration order never matters, lookups are exact).
  std::map<double, std::pair<double, double>> prefix_price_memo;
  const int64_t prefix_batch = stages[prefix_stage_index].batch;
  auto price_prefix = [&](double rate) {
    auto it = prefix_price_memo.find(rate);
    if (it == prefix_price_memo.end()) {
      const core::StagePerf perf =
          model_.EvalPrefixCached(prefix_chips, prefix_batch, rate);
      RAGO_REQUIRE(perf.feasible,
                   "prefix infeasible at measured cache hit rate");
      it = prefix_price_memo
               .emplace(rate,
                        std::make_pair(perf.latency,
                                       static_cast<double>(prefix_batch) /
                                           perf.throughput))
               .first;
    }
    return it->second;
  };

  std::vector<double> server_busy_until(static_cast<size_t>(num_servers),
                                        0.0);
  std::deque<int> decode_waiting;
  struct ActiveSeq {
    int id = 0;
    int tokens = 0;
  };
  std::vector<ActiveSeq> decode_active;
  double decode_busy_time = 0.0;
  bool step_scheduled = false;
  uint64_t digest = kFnvOffset;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events;
  for (size_t i = 0; i < workload.arrivals.size(); ++i) {
    events.push(Event{workload.arrivals[i], 0, static_cast<int>(i)});
  }

  int64_t completed = 0;
  double now = 0.0;

  struct InFlight {
    size_t stage = 0;
    std::vector<int> members;
  };
  std::vector<InFlight> in_flight;

  // Feeds every closed fine window to the flight recorder and the
  // alert engine; alert transitions become trace instants, flight
  // records, and (only when opted in) digest folds.
  auto drain_telemetry_windows = [&]() {
    for (const obs::WindowSummary& window : series->DrainClosed()) {
      const double end = window.start + window.span;
      if (flight != nullptr && (window.offered > 0 || window.completed > 0)) {
        flight->Append(end, "window",
                       "offered=" + std::to_string(window.offered) +
                           " completed=" + std::to_string(window.completed) +
                           " rejected=" + std::to_string(window.rejected),
                       window.attainment);
      }
      if (alerts == nullptr) {
        continue;
      }
      for (const obs::AlertTransition& transition :
           alerts->Observe(window)) {
        const std::string& rule_name =
            alerts->options()
                .rules[static_cast<size_t>(transition.rule)]
                .name;
        if (flight != nullptr) {
          flight->Append(transition.time, "alert",
                         rule_name +
                             (transition.firing ? " firing" : " clear"),
                         transition.short_burn);
        }
        if (trace != nullptr) {
          obs::TraceEvent& instant = trace->AddInstant(
              "alert:" + rule_name +
                  (transition.firing ? ":firing" : ":clear"),
              "alert", 0, alert_row, transition.time);
          instant.args.emplace_back("short_burn", transition.short_burn);
          instant.args.emplace_back("long_burn", transition.long_burn);
        }
        if (alerts->options().fold_into_digest) {
          digest = FnvFoldDouble(digest, transition.time);
          digest = FnvFoldU64(digest,
                              static_cast<uint64_t>(transition.rule));
          digest = FnvFoldU64(digest, transition.firing ? 1u : 0u);
        }
      }
    }
  };
  // Closes windows the virtual clock has passed; called once per
  // popped event so alert evaluation lags arrivals by at most one
  // event, never by wall time.
  auto advance_telemetry = [&]() {
    if (series == nullptr) {
      return;
    }
    series->AdvanceTo(now);
    drain_telemetry_windows();
  };

  auto record_timeline = [&](size_t s) {
    if (series != nullptr) {
      series->RecordQueueDepth(now, static_cast<int>(s),
                               static_cast<int64_t>(stages[s].queue.size()));
    }
    StageTelemetry& telemetry = result.stages[s];
    if (static_cast<int>(telemetry.timeline.size()) >=
        options_.timeline_limit) {
      return;
    }
    StageTimelinePoint point;
    point.time = now;
    point.queue_depth = static_cast<int>(stages[s].queue.size());
    point.utilization =
        now > 0.0 ? telemetry.busy_seconds / now : 0.0;
    telemetry.timeline.push_back(point);
  };

  // Folds one request's retrieved neighbor lists into the digest and
  // outcome, measures its documents against the KV cache, and admits
  // them. Shared by the real-scan and cache-hit delivery paths so the
  // two are byte-for-byte interchangeable in the digest.
  auto record_retrieval = [&](int id,
                              const std::vector<std::vector<ann::Neighbor>>&
                                  per_query) {
    RequestOutcome& outcome = result.requests[static_cast<size_t>(id)];
    digest = FnvFoldU64(digest, static_cast<uint64_t>(id));
    std::vector<int64_t> doc_ids;
    for (size_t q = 0; q < per_query.size(); ++q) {
      for (const ann::Neighbor& neighbor : per_query[q]) {
        digest = FnvFoldU64(digest, static_cast<uint64_t>(neighbor.id));
        digest = FnvFoldFloat(digest, neighbor.dist);
        if (doc_cache.enabled()) {
          doc_ids.push_back(neighbor.id);
        }
      }
      if (q == 0 && !per_query[q].empty()) {
        outcome.first_neighbor = per_query[q].front().id;
      }
    }
    if (doc_cache.enabled()) {
      outcome.prefix_hit_fraction = doc_cache.MeasureAndAdmit(doc_ids);
    }
  };

  // Executes the real scatter-gather scan for one retrieval batch and
  // records each member's retrieved neighbors into the digest. Virtual
  // time is unaffected: the batch's service time stays model-priced.
  auto run_retrieval_scan = [&](const std::vector<int>& members) {
    ann::Matrix batch_queries(members.size() * static_cast<size_t>(qpr),
                              query_pool.dim());
    size_t row = 0;
    for (int id : members) {
      const size_t start = row_start[static_cast<size_t>(id)];
      for (int q = 0; q < qpr; ++q) {
        batch_queries.CopyRowFrom(
            query_pool, (start + static_cast<size_t>(q)) % pool_rows,
            row++);
      }
    }
    // Measurement only (real_scan_wall_s). rago-lint: allow(wallclock)
    const Clock::time_point scan_start = Clock::now();
    serving::ShardSearchStats stats;
    const auto neighbors = index_.SearchBatch(
        batch_queries, static_cast<size_t>(options_.top_k), pool_.get(),
        &stats);
    result.real_scan_seconds += SecondsSince(scan_start);
    result.real_scan_bytes += stats.TotalScanBytes();
    result.real_queries_scanned +=
        static_cast<int64_t>(batch_queries.rows());

    row = 0;
    for (int id : members) {
      std::vector<std::vector<ann::Neighbor>> per_query(
          neighbors.begin() + static_cast<long>(row),
          neighbors.begin() + static_cast<long>(row + qpr));
      row += static_cast<size_t>(qpr);
      record_retrieval(id, per_query);
      if (retrieval_cache.enabled()) {
        retrieval_cache.Insert(fingerprints[static_cast<size_t>(id)],
                               cache::CachedRetrieval{std::move(per_query)});
      }
    }
  };

  auto start_batches = [&](bool force) {
    for (size_t s = 0; s < stages.size(); ++s) {
      ExecStage& stage = stages[s];
      StageTelemetry& telemetry = result.stages[s];
      const auto server = static_cast<size_t>(stage.server);
      while (!stage.queue.empty() && server_busy_until[server] <= now) {
        const bool full =
            static_cast<int64_t>(stage.queue.size()) >= stage.batch;
        // Tolerant flush comparison (see the DES): the flush event
        // fires at exactly oldest + timeout, which can round below
        // timeout when re-derived.
        const bool timed_out =
            now >= stage.oldest_enqueue + options_.batch_timeout - 1e-9;
        if (!full && !force && !timed_out) {
          break;
        }
        const auto take = static_cast<size_t>(std::min<int64_t>(
            stage.batch, static_cast<int64_t>(stage.queue.size())));
        InFlight batch;
        batch.stage = s;
        batch.members.reserve(take);
        double hit_fraction_sum = 0.0;
        for (size_t i = 0; i < take; ++i) {
          const QueueEntry& entry = stage.queue[i];
          batch.members.push_back(entry.id);
          const double wait = now - entry.enqueued;
          telemetry.queue_wait.Add(wait);
          RequestOutcome& outcome =
              result.requests[static_cast<size_t>(entry.id)];
          outcome.queue_wait += wait;
          hit_fraction_sum += outcome.prefix_hit_fraction;
          if (trace != nullptr) {
            trace->AddComplete(
                std::string("queue:") + core::StageName(stage.type),
                "queue", 1, entry.id, entry.enqueued, wait, entry.id);
          }
        }
        stage.queue.erase(stage.queue.begin(),
                          stage.queue.begin() + static_cast<long>(take));
        stage.oldest_enqueue = now;
        // Prefix batches are re-priced with the batch's *measured*
        // document-cache hit fraction when the KV level is live;
        // every other stage (and the cacheless default) keeps its
        // schedule-time pricing.
        double latency = stage.latency;
        double interval = stage.interval;
        if (s == prefix_stage_index && doc_cache.enabled()) {
          const auto priced = price_prefix(
              hit_fraction_sum / static_cast<double>(take));
          latency = priced.first;
          interval = priced.second;
        }
        server_busy_until[server] = now + interval;
        telemetry.busy_seconds += interval;
        if (series != nullptr) {
          // Occupancy attributed to the window containing the batch
          // start (windowed utilization is a rollup, not a partition).
          series->RecordBusy(now, static_cast<int>(s), interval);
        }
        telemetry.batches += 1;
        telemetry.full_batches +=
            static_cast<int64_t>(take) == stage.batch ? 1 : 0;
        telemetry.requests += static_cast<int64_t>(take);
        const double scan_seconds_before = result.real_scan_seconds;
        if (s == retrieval_stage_index) {
          run_retrieval_scan(batch.members);
        }
        if (trace != nullptr) {
          // Server row: occupancy (interval); request rows: the
          // batch's completion latency each member experiences.
          obs::TraceEvent& span = trace->AddComplete(
              std::string(core::StageName(stage.type)) + " x" +
                  std::to_string(take),
              "stage", 0, stage.server, now, interval);
          span.args.emplace_back("batch", static_cast<double>(take));
          span.args.emplace_back("latency", latency);
          if (s == retrieval_stage_index) {
            span.args.emplace_back(
                "real_scan_wall_s",
                result.real_scan_seconds - scan_seconds_before);
          }
          for (int id : batch.members) {
            trace->AddComplete(
                std::string("exec:") + core::StageName(stage.type),
                "stage", 1, id, now, latency, id);
          }
        }
        record_timeline(s);
        in_flight.push_back(std::move(batch));
        events.push(Event{now + latency, 1, static_cast<int>(s)});
      }
      if (!stage.queue.empty() && server_busy_until[server] <= now) {
        events.push(Event{stage.oldest_enqueue + options_.batch_timeout,
                          2, static_cast<int>(s)});
      }
    }
  };

  auto enqueue = [&](size_t s, int request) {
    ExecStage& stage = stages[s];
    if (stage.queue.empty()) {
      stage.oldest_enqueue = now;
      events.push(Event{now + options_.batch_timeout, 2,
                        static_cast<int>(s)});
    }
    stage.queue.push_back(QueueEntry{request, now});
    StageTelemetry& telemetry = result.stages[s];
    telemetry.max_queue_depth =
        std::max(telemetry.max_queue_depth,
                 static_cast<int>(stage.queue.size()));
    record_timeline(s);
  };

  // Entry of a request into stage `s`. The retrieval stage consults
  // the retrieval-result cache first: a hit skips the batch queue and
  // the real scan entirely — the cached neighbors are recorded now (in
  // serial event-loop order, so the digest never depends on thread
  // interleaving) and delivery into the post-retrieval stage is
  // scheduled after only the lookup cost. That is the
  // retrieval/prefill overlap: hot queries reach prefix immediately
  // instead of waiting out batch formation plus a scan.
  auto enter_stage = [&](size_t s, int request) {
    if (s == retrieval_stage_index && retrieval_cache.enabled()) {
      const cache::CachedRetrieval* cached = retrieval_cache.Lookup(
          fingerprints[static_cast<size_t>(request)]);
      if (cached != nullptr) {
        result.requests[static_cast<size_t>(request)]
            .retrieval_cache_hit = true;
        record_retrieval(request, cached->neighbors);
        if (trace != nullptr) {
          trace->AddComplete("retrieval-cache-hit", "cache", 1, request,
                             now, options_.cache.lookup_seconds, request);
        }
        events.push(Event{now + options_.cache.lookup_seconds, 4,
                          request});
        return;
      }
    }
    enqueue(s, request);
  };

  // Cached results are ready: advance past retrieval. Retrieval is
  // never the last pre-decode stage (prefix always follows it), so
  // the successor index is in range.
  auto deliver_cache_hit = [&](int request) {
    RAGO_CHECK(retrieval_stage_index + 1 < stages.size(),
               "retrieval must precede another pre-decode stage");
    enter_stage(retrieval_stage_index + 1, request);
  };

  auto admit_decode = [&]() {
    while (static_cast<int64_t>(decode_active.size()) <
               schedule_.decode_batch &&
           !decode_waiting.empty()) {
      const int id = decode_waiting.front();
      decode_waiting.pop_front();
      result.requests[static_cast<size_t>(id)].decode_start = now;
      decode_active.push_back(ActiveSeq{id, 0});
    }
    if (!decode_active.empty() && !step_scheduled) {
      events.push(Event{now + step_latency, 3, 0});
      step_scheduled = true;
      decode_busy_time += step_latency;
    }
  };

  // Completes the oldest in-flight batch of stage `s`: members advance
  // to the next stage, or emit their first token and join decode.
  auto complete_stage = [&](size_t s) {
    for (size_t b = 0; b < in_flight.size(); ++b) {
      if (in_flight[b].stage != s) {
        continue;
      }
      for (int id : in_flight[b].members) {
        if (s + 1 < stages.size()) {
          enter_stage(s + 1, id);
        } else {
          RequestOutcome& outcome =
              result.requests[static_cast<size_t>(id)];
          outcome.ttft = now - outcome.arrival;
          decode_waiting.push_back(id);
          if (trace != nullptr) {
            trace->AddInstant("first-token", "stage", 1, id, now, id);
          }
          result.max_decode_queue_depth =
              std::max(result.max_decode_queue_depth,
                       static_cast<int>(decode_waiting.size()));
        }
      }
      in_flight.erase(in_flight.begin() + static_cast<long>(b));
      break;
    }
    admit_decode();
  };

  auto decode_step = [&]() {
    step_scheduled = false;
    if (trace != nullptr) {
      // The step that just finished occupied [now - step, now].
      obs::TraceEvent& span = trace->AddComplete(
          "decode-step", "stage", 0, decode_row, now - step_latency,
          step_latency);
      span.args.emplace_back("active",
                             static_cast<double>(decode_active.size()));
    }
    std::vector<ActiveSeq> still;
    still.reserve(decode_active.size());
    for (ActiveSeq& seq : decode_active) {
      if (++seq.tokens >= decode_tokens) {
        RequestOutcome& outcome =
            result.requests[static_cast<size_t>(seq.id)];
        outcome.completion = now;
        outcome.tpot = (now - outcome.decode_start) / decode_tokens;
        ++completed;
        // Same predicate the end-of-run aggregation applies; computed
        // here so windowed telemetry sees the verdict at completion
        // time.
        const bool within_slo_now =
            outcome.ttft <= options_.slo.ttft_seconds &&
            outcome.tpot <= options_.slo.tpot_seconds;
        if (series != nullptr) {
          series->RecordCompletion(now, outcome.ttft, outcome.tpot,
                                   outcome.queue_wait, within_slo_now);
        }
        if (trace != nullptr) {
          trace->AddComplete("decode", "stage", 1, seq.id,
                             outcome.decode_start,
                             now - outcome.decode_start, seq.id);
          trace->AddComplete("request", "request", 1, seq.id,
                             outcome.arrival, now - outcome.arrival,
                             seq.id);
          // Terminal: seal for sampling, scored by end-to-end latency.
          trace->FinalizeRequest(seq.id, now - outcome.arrival,
                                 !within_slo_now);
        }
      } else {
        still.push_back(seq);
      }
    }
    decode_active = std::move(still);
    admit_decode();
  };

  // On any exception below (including RAGO_CHECK invariant failures)
  // dump the flight recorder before unwinding, so the last moments of
  // the run survive the crash.
  struct FlightAbortGuard {
    obs::FlightRecorder* flight;
    const std::string* path;
    const double* now;
    ~FlightAbortGuard() {
      if (flight != nullptr && std::uncaught_exceptions() > 0) {
        flight->Append(*now, "exception", "serve aborted by exception");
        if (!path->empty()) {
          flight->DumpToFile(*path);
        }
      }
    }
  } flight_abort_guard{flight, &options_.flight_dump_path, &now};

  // --- Main loop. ---
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    now = std::max(now, event.time);
    advance_telemetry();

    switch (event.kind) {
      case 0: {  // Arrival: bounded admission into the first stage.
        RequestOutcome& outcome =
            result.requests[static_cast<size_t>(event.a)];
        if (static_cast<int64_t>(stages[0].queue.size()) >=
            options_.admission_queue_limit) {
          outcome.admitted = false;
          ++result.rejected;
          if (series != nullptr) {
            series->RecordOffered(now, /*admitted=*/false);
          }
          if (flight != nullptr) {
            flight->Append(now, "reject",
                           "request " + std::to_string(event.a) +
                               " shed at admission",
                           static_cast<double>(stages[0].queue.size()));
          }
          if (trace != nullptr) {
            trace->SetThreadName(1, event.a,
                                 "req " + std::to_string(event.a));
            trace->AddInstant("rejected", "admission", 1, event.a, now,
                              event.a);
            // A rejection is terminal: seal the request for sampling
            // (it scores as an SLO violation with zero latency).
            trace->FinalizeRequest(event.a, 0.0, /*slo_violation=*/true);
          }
        } else {
          outcome.admitted = true;
          ++result.admitted;
          if (series != nullptr) {
            series->RecordOffered(now, /*admitted=*/true);
          }
          if (trace != nullptr) {
            trace->SetThreadName(1, event.a,
                                 "req " + std::to_string(event.a));
            trace->AddInstant("arrival", "admission", 1, event.a, now,
                              event.a);
          }
          enter_stage(0, event.a);
        }
        break;
      }
      case 1: {
        complete_stage(static_cast<size_t>(event.a));
        break;
      }
      case 2: {
        break;  // Flush deadline; start_batches below handles it.
      }
      case 3: {
        decode_step();
        break;
      }
      case 4: {
        deliver_cache_hit(event.a);
        break;
      }
      default:
        RAGO_CHECK(false, "unknown event kind");
    }
    start_batches(/*force=*/false);
  }

  // --- Drain partial batches below the flush timeout at the end. ---
  while (completed < result.admitted) {
    start_batches(/*force=*/true);
    if (events.empty()) {
      break;
    }
    const Event event = events.top();
    events.pop();
    now = std::max(now, event.time);
    advance_telemetry();
    if (event.kind == 1) {
      complete_stage(static_cast<size_t>(event.a));
    } else if (event.kind == 3) {
      decode_step();
    } else if (event.kind == 4) {
      deliver_cache_hit(event.a);
    }
  }
  RAGO_CHECK(completed == result.admitted,
             "serving runtime failed to drain all admitted requests");
  result.completed = completed;

  // --- Seal the observation layer at virtual end-of-run. ---
  if (series != nullptr) {
    series->Finish(now);
    drain_telemetry_windows();
  }
  if (trace != nullptr) {
    trace->FlushTailKeep();
  }
  if (flight != nullptr) {
    flight->Append(now, "note",
                   "serve end: completed=" + std::to_string(completed),
                   static_cast<double>(completed));
    if (!options_.flight_dump_path.empty()) {
      flight->DumpToFile(options_.flight_dump_path);
    }
  }

  // --- Aggregate telemetry (id order: independent of event order). ---
  result.makespan = now;
  result.throughput =
      static_cast<double>(completed) / std::max(now, 1e-12);
  int64_t within_slo = 0;
  for (RequestOutcome& outcome : result.requests) {
    if (!outcome.admitted) {
      continue;
    }
    RAGO_CHECK(outcome.ttft >= 0 && outcome.completion >= 0,
               "admitted request did not finish");
    result.ttft.Add(outcome.ttft);
    result.tpot.Add(outcome.tpot);
    result.queue_wait.Add(outcome.queue_wait);
    outcome.slo_ok = outcome.ttft <= options_.slo.ttft_seconds &&
                     outcome.tpot <= options_.slo.tpot_seconds;
    within_slo += outcome.slo_ok ? 1 : 0;
  }
  result.slo_attainment =
      static_cast<double>(within_slo) /
      static_cast<double>(result.submitted);
  for (StageTelemetry& telemetry : result.stages) {
    telemetry.utilization =
        telemetry.busy_seconds / std::max(result.makespan, 1e-12);
  }
  result.decode_utilization =
      decode_busy_time / std::max(result.makespan, 1e-12);

  // Counter tracks: replay each stage's recorded timeline as Chrome
  // "C" events so viewers draw queue-depth and utilization graphs
  // alongside the spans. Reads the finished timelines only.
  if (trace != nullptr) {
    for (size_t s = 0; s < result.stages.size(); ++s) {
      const StageTelemetry& telemetry = result.stages[s];
      const std::string label = std::string(core::StageName(telemetry.type)) +
                                " s" + std::to_string(s);
      for (const StageTimelinePoint& point : telemetry.timeline) {
        trace->AddCounter("queue-depth: " + label, "telemetry", 0,
                          static_cast<int>(s), point.time,
                          static_cast<double>(point.queue_depth));
        trace->AddCounter("utilization: " + label, "telemetry", 0,
                          static_cast<int>(s), point.time,
                          point.utilization);
      }
    }
  }

  // Cache-tier telemetry (id order / counter state: both independent
  // of event interleaving by construction — the caches only ever
  // mutate inside the serial event loop).
  result.retrieval_cache = retrieval_cache.counters();
  result.doc_cache = doc_cache.counters();
  double hit_fraction_total = 0.0;
  for (const RequestOutcome& outcome : result.requests) {
    if (outcome.admitted) {
      hit_fraction_total += outcome.prefix_hit_fraction;
    }
  }
  result.measured_prefix_hit_rate =
      result.admitted > 0
          ? hit_fraction_total / static_cast<double>(result.admitted)
          : 0.0;

  for (const RequestOutcome& outcome : result.requests) {
    digest = FnvFoldU64(digest, outcome.admitted ? 1u : 0u);
    digest = FnvFoldDouble(digest, outcome.ttft);
    digest = FnvFoldDouble(digest, outcome.tpot);
    digest = FnvFoldDouble(digest, outcome.completion);
    digest = FnvFoldU64(digest,
                        static_cast<uint64_t>(outcome.first_neighbor));
    digest = FnvFoldU64(digest, outcome.retrieval_cache_hit ? 1u : 0u);
    digest = FnvFoldDouble(digest, outcome.prefix_hit_fraction);
  }
  for (const cache::CacheCounters* counters :
       {&result.retrieval_cache, &result.doc_cache}) {
    digest = FnvFoldU64(digest, static_cast<uint64_t>(counters->hits));
    digest = FnvFoldU64(digest, static_cast<uint64_t>(counters->misses));
    digest = FnvFoldU64(digest,
                        static_cast<uint64_t>(counters->evictions));
    digest = FnvFoldU64(digest,
                        static_cast<uint64_t>(counters->insertions));
  }
  digest = FnvFoldDouble(digest, result.measured_prefix_hit_rate);
  result.outcome_digest = digest;

  // Surface (never hide) recorders that hit the sample cap and fell
  // back to bounded streaming percentiles.
  result.streaming_histograms =
      (result.ttft.streaming_active() ? 1 : 0) +
      (result.tpot.streaming_active() ? 1 : 0) +
      (result.queue_wait.streaming_active() ? 1 : 0);
  for (const StageTelemetry& telemetry : result.stages) {
    result.streaming_histograms +=
        telemetry.queue_wait.streaming_active() ? 1 : 0;
  }

  // --- Metrics export (opt-in; reads the finished result only, so it
  // can never perturb it). ---
  if (options_.metrics != nullptr) {
    MetricsRegistry& metrics = *options_.metrics;
    metrics.GetCounter("runtime.requests_submitted").Inc(result.submitted);
    metrics.GetCounter("runtime.requests_admitted").Inc(result.admitted);
    metrics.GetCounter("runtime.requests_rejected").Inc(result.rejected);
    metrics.GetCounter("runtime.requests_completed").Inc(result.completed);
    int64_t batches = 0;
    int64_t full_batches = 0;
    for (const StageTelemetry& telemetry : result.stages) {
      batches += telemetry.batches;
      full_batches += telemetry.full_batches;
    }
    metrics.GetCounter("runtime.batches_flushed").Inc(batches);
    metrics.GetCounter("runtime.full_batches").Inc(full_batches);
    metrics.GetCounter("runtime.retrieval_cache_hits")
        .Inc(result.retrieval_cache.hits);
    metrics.GetCounter("runtime.retrieval_cache_misses")
        .Inc(result.retrieval_cache.misses);
    metrics.GetCounter("runtime.streaming_histograms")
        .Inc(result.streaming_histograms);
    metrics.GetGauge("runtime.throughput_rps").Set(result.throughput);
    metrics.GetGauge("runtime.makespan_seconds").Set(result.makespan);
    metrics.GetGauge("runtime.slo_attainment").Set(result.slo_attainment);
    metrics.GetGauge("runtime.decode_utilization")
        .Set(result.decode_utilization);
    metrics.GetGauge("runtime.measured_prefix_hit_rate")
        .Set(result.measured_prefix_hit_rate);
    StreamingHistogram& ttft_hist =
        metrics.GetHistogram("runtime.ttft_seconds");
    StreamingHistogram& tpot_hist =
        metrics.GetHistogram("runtime.tpot_seconds");
    StreamingHistogram& wait_hist =
        metrics.GetHistogram("runtime.queue_wait_seconds");
    for (const RequestOutcome& outcome : result.requests) {
      if (!outcome.admitted) {
        continue;
      }
      ttft_hist.Add(outcome.ttft);
      tpot_hist.Add(outcome.tpot);
      wait_hist.Add(outcome.queue_wait);
    }
  }
  return result;
}

}  // namespace rago::runtime
