#include "rago/optimizer.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"
#include "common/pareto.h"
#include "common/thread_pool.h"

namespace rago::opt {
namespace {

using core::EndToEndPerf;
using core::Schedule;
using core::StagePerf;
using core::StagePerfProvider;
using core::StageType;

/// One pre-evaluated setting of a collocation group.
struct GroupOption {
  int chips = 1;
  int64_t batch = 1;
  double latency = 0.0;           ///< Sum of member stage latencies.
  double seconds_per_request = 0.0;  ///< Time-multiplexed 1/throughput.
};

/// One pre-evaluated decode setting.
struct DecodeOption {
  int chips = 1;
  int64_t batch = 1;
  double latency = 0.0;  ///< Step latency.
  double throughput = 0.0;
};

/// 3-objective dominance: fewer chips, lower latency, lower busy time.
bool DominatesOption(const GroupOption& a, const GroupOption& b) {
  const bool no_worse = a.chips <= b.chips && a.latency <= b.latency &&
                        a.seconds_per_request <= b.seconds_per_request;
  const bool better = a.chips < b.chips || a.latency < b.latency ||
                      a.seconds_per_request < b.seconds_per_request;
  return no_worse && better;
}

bool DominatesDecode(const DecodeOption& a, const DecodeOption& b) {
  const bool no_worse = a.chips <= b.chips && a.latency <= b.latency &&
                        a.throughput >= b.throughput;
  const bool better = a.chips < b.chips || a.latency < b.latency ||
                      a.throughput > b.throughput;
  return no_worse && better;
}

bool EqualObjectives(const GroupOption& a, const GroupOption& b) {
  return a.chips == b.chips && a.latency == b.latency &&
         a.seconds_per_request == b.seconds_per_request;
}

bool EqualObjectives(const DecodeOption& a, const DecodeOption& b) {
  return a.chips == b.chips && a.latency == b.latency &&
         a.throughput == b.throughput;
}

template <typename Option, typename Dom>
std::vector<Option> PruneOptions(std::vector<Option> options, Dom dominates) {
  std::vector<Option> kept;
  for (size_t i = 0; i < options.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < options.size() && !dominated; ++j) {
      if (i != j && dominates(options[j], options[i])) {
        dominated = true;
      }
    }
    // Keep only the first of objective-identical options.
    for (size_t j = 0; j < i && !dominated; ++j) {
      if (EqualObjectives(options[j], options[i])) {
        dominated = true;
      }
    }
    if (!dominated) {
      kept.push_back(options[i]);
    }
  }
  return kept;
}

/// Key for memoized stage lookups.
uint64_t CacheKey(int a, int b, int64_t c) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 48) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(b)) << 32) ^
         static_cast<uint64_t>(c);
}

/// A schedule frontier whose exact ties keep the Key()-smallest
/// schedule, so concurrent partial frontiers merge order-independently.
using ScheduleFront = OnlineParetoFront<Schedule>;

}  // namespace

const ScheduledPoint&
OptimizerResult::MaxQpsPerChip() const {
  RAGO_REQUIRE(!pareto.empty(), "empty Pareto frontier");
  const ScheduledPoint* best = &pareto.front();
  for (const ScheduledPoint& point : pareto) {
    if (point.perf.qps_per_chip > best->perf.qps_per_chip) {
      best = &point;
    }
  }
  return *best;
}

const ScheduledPoint&
OptimizerResult::MinTtft() const {
  RAGO_REQUIRE(!pareto.empty(), "empty Pareto frontier");
  const ScheduledPoint* best = &pareto.front();
  for (const ScheduledPoint& point : pareto) {
    if (point.perf.ttft < best->perf.ttft) {
      best = &point;
    }
  }
  return *best;
}

/// Memoizing stage-performance provider for serial evaluation paths
/// (SearchBaseline). Search() uses the index-keyed ProfileTable below
/// instead, which is populated in parallel and then read-only.
class MemoProvider {
 public:
  explicit MemoProvider(const core::PipelineModel& model) : model_(model) {}

  StagePerfProvider Provider() {
    StagePerfProvider provider;
    provider.chain = [this](StageType stage, int chips, int64_t batch) {
      const uint64_t key = CacheKey(static_cast<int>(stage), chips, batch);
      auto it = chain_.find(key);
      if (it == chain_.end()) {
        it = chain_.emplace(key, model_.EvalChainStage(stage, chips, batch))
                 .first;
      }
      return it->second;
    };
    provider.decode = [this](int chips, int64_t batch) {
      const uint64_t key = CacheKey(0, chips, batch);
      auto it = decode_.find(key);
      if (it == decode_.end()) {
        it = decode_.emplace(key, model_.EvalDecode(chips, batch)).first;
      }
      return it->second;
    };
    provider.retrieval = [this](int request_batch, int servers) {
      const uint64_t key = CacheKey(servers, 0, request_batch);
      auto it = retrieval_.find(key);
      if (it == retrieval_.end()) {
        it = retrieval_
                 .emplace(key, model_.EvalRetrieval(request_batch, servers))
                 .first;
      }
      return it->second;
    };
    provider.ingest = [this](int chips, int64_t batch) {
      const uint64_t key = CacheKey(1, chips, batch);
      auto it = ingest_.find(key);
      if (it == ingest_.end()) {
        it = ingest_.emplace(key, model_.EvalIngestPrefix(chips, batch))
                 .first;
      }
      return it->second;
    };
    return provider;
  }

 private:
  const core::PipelineModel& model_;
  std::unordered_map<uint64_t, StagePerf> chain_;
  std::unordered_map<uint64_t, StagePerf> decode_;
  std::unordered_map<uint64_t, StagePerf> retrieval_;
  std::unordered_map<uint64_t, StagePerf> ingest_;
};

Optimizer::Optimizer(const core::PipelineModel& model, SearchOptions options)
    : model_(model), options_(std::move(options)) {
  RAGO_REQUIRE(!options_.batch_sizes.empty(), "batch grid must be non-empty");
  RAGO_REQUIRE(!options_.decode_batch_sizes.empty(),
               "decode batch grid must be non-empty");
  RAGO_REQUIRE(options_.num_threads >= 0,
               "num_threads must be >= 0 (0 = hardware concurrency)");
}

int
Optimizer::Budget() const {
  return options_.max_total_xpus > 0 ? options_.max_total_xpus
                                     : model_.cluster().TotalXpus();
}

std::vector<std::vector<int>>
Optimizer::PlacementOptions() const {
  const size_t k = model_.chain().size();
  std::vector<std::vector<int>> placements;
  const uint32_t splits = k >= 1 ? (1u << (k - 1)) : 1u;
  for (uint32_t mask = 0; mask < splits; ++mask) {
    std::vector<int> groups(k, 0);
    int group = 0;
    for (size_t i = 1; i < k; ++i) {
      if (mask & (1u << (i - 1))) {
        ++group;  // Split between stage i-1 and i.
      }
      groups[i] = group;
    }
    placements.push_back(std::move(groups));
  }
  return placements;
}

std::string
Optimizer::PlacementLabel(const std::vector<int>& chain_group) const {
  const auto& chain = model_.chain();
  RAGO_REQUIRE(chain_group.size() == chain.size(),
               "placement size mismatch");
  std::string label;
  int current = -1;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain_group[i] != current) {
      if (current >= 0) {
        label += "]";
      }
      label += "[";
      current = chain_group[i];
    } else {
      label += "+";
    }
    label += core::StageName(chain[i]);
  }
  label += "]";
  return label;
}

OptimizerResult
Optimizer::Search() const {
  return Search(model_.LiveProvider());
}

OptimizerResult
Optimizer::Search(const StagePerfProvider& provider) const {
  RAGO_REQUIRE(provider.chain && provider.decode && provider.retrieval &&
                   provider.ingest,
               "stage-perf provider must supply all four lookups");
  const auto& chain = model_.chain();
  const bool iterative = model_.schema().IterativeRetrieval();
  const bool has_retrieval = model_.schema().retrieval_enabled;
  const int budget = std::min(Budget(), model_.cluster().TotalXpus());
  const int servers =
      has_retrieval ? std::min(model_.MinRetrievalServers(),
                               model_.cluster().num_servers)
                    : 1;

  const int num_threads = ResolveNumThreads(options_.num_threads);
  std::unique_ptr<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (num_threads > 1) {
    pool_storage = std::make_unique<ThreadPool>(num_threads);
    pool = pool_storage.get();
  }

  // -------------------------------------------------------------------
  // Step 1: profile every stage setting once, fanned out as
  // (stage x chips x batch) tasks into one index-keyed table (slots
  // make the result thread-count-invariant; PipelineModel evaluation is
  // const and thread-compatible). The table is read-only afterwards.
  // -------------------------------------------------------------------
  std::vector<int> chip_grid;  // chip_grid[i] == 1 << i, up to budget.
  for (int c = 1; c <= budget; c *= 2) {
    chip_grid.push_back(c);
  }
  const size_t kChips = chip_grid.size();
  const size_t kBatches = options_.batch_sizes.size();
  const size_t kDecodeBatches = options_.decode_batch_sizes.size();
  const size_t kStages = chain.size();

  const size_t n_chain = kStages * kChips * kBatches;
  const size_t n_decode = kChips * kDecodeBatches;
  const size_t n_retr = has_retrieval ? kBatches : 0;
  const size_t n_ingest = iterative ? kChips * kBatches : 0;
  std::vector<StagePerf> profiles(n_chain + n_decode + n_retr + n_ingest);
  ParallelFor(pool, profiles.size(), [&](size_t i) {
    if (i < n_chain) {
      const size_t s = i / (kChips * kBatches);
      const size_t rem = i % (kChips * kBatches);
      const size_t c = rem / kBatches;
      const size_t b = rem % kBatches;
      profiles[i] = provider.chain(chain[s], chip_grid[c],
                                   options_.batch_sizes[b]);
    } else if (i < n_chain + n_decode) {
      const size_t rem = i - n_chain;
      const size_t c = rem / kDecodeBatches;
      const size_t db = rem % kDecodeBatches;
      profiles[i] =
          provider.decode(chip_grid[c], options_.decode_batch_sizes[db]);
    } else if (i < n_chain + n_decode + n_retr) {
      const size_t b = i - n_chain - n_decode;
      profiles[i] = provider.retrieval(
          static_cast<int>(options_.batch_sizes[b]), servers);
    } else {
      const size_t rem = i - n_chain - n_decode - n_retr;
      const size_t c = rem / kBatches;
      const size_t b = rem % kBatches;
      profiles[i] =
          provider.ingest(chip_grid[c], options_.batch_sizes[b]);
    }
  });
  auto chain_perf = [&](size_t s, size_t c, size_t b) -> const StagePerf& {
    return profiles[(s * kChips + c) * kBatches + b];
  };
  auto decode_perf = [&](size_t c, size_t db) -> const StagePerf& {
    return profiles[n_chain + c * kDecodeBatches + db];
  };
  auto retr_perf = [&](size_t b) -> const StagePerf& {
    return profiles[n_chain + n_decode + b];
  };
  auto ingest_perf = [&](size_t c, size_t b) -> const StagePerf& {
    return profiles[n_chain + n_decode + n_retr + c * kBatches + b];
  };
  auto chip_index = [](int chips) {
    size_t idx = 0;
    while ((1 << idx) < chips) {
      ++idx;
    }
    return idx;
  };

  OptimizerResult result;

  // --- Pre-evaluated retrieval options (initial retrieval). ---
  struct RetrievalOption {
    int64_t batch = 1;
    double latency = 0.0;
    double request_throughput = std::numeric_limits<double>::infinity();
  };
  std::vector<RetrievalOption> retrieval_options;
  if (has_retrieval) {
    for (size_t b = 0; b < kBatches; ++b) {
      const StagePerf& perf = retr_perf(b);
      if (perf.feasible) {
        retrieval_options.push_back(RetrievalOption{
            options_.batch_sizes[b], perf.latency, perf.throughput});
      }
    }
    RAGO_REQUIRE(!retrieval_options.empty(),
                 "no feasible retrieval configuration");
  } else {
    retrieval_options.push_back(RetrievalOption{});
  }

  // --- Pre-evaluated iterative retrieval rounds (Case III). ---
  struct IterOption {
    int64_t batch = 1;
    size_t batch_idx = 0;  ///< Index into batch_sizes (ingest lookup).
    double retrieval_latency = 0.0;
  };
  std::vector<IterOption> iter_options = {IterOption{}};
  if (iterative) {
    iter_options.clear();
    for (size_t b = 0; b < kBatches; ++b) {
      const StagePerf& perf = retr_perf(b);
      if (perf.feasible) {
        iter_options.push_back(
            IterOption{options_.batch_sizes[b], b, perf.latency});
      }
    }
  }
  const int iter_rounds =
      iterative ? model_.schema().retrieval.retrievals_per_sequence - 1 : 0;
  const double retrieval_load =
      has_retrieval ? model_.schema().retrieval.retrievals_per_sequence : 1.0;
  const int retrieval_equiv =
      has_retrieval ? model_.RetrievalChipEquivalents(servers) : 0;
  const int decode_tokens = model_.schema().workload.decode_tokens;

  // -------------------------------------------------------------------
  // Step 2 prep: per-placement option tables assembled from the profile
  // table (pure arithmetic; no model evaluation).
  // -------------------------------------------------------------------
  auto group_options_for = [&](const std::vector<int>& placement, int g,
                               int64_t forced_batch) {
    std::vector<GroupOption> options;
    for (size_t c = 0; c < kChips; ++c) {
      for (size_t b = 0; b < kBatches; ++b) {
        const int64_t batch = options_.batch_sizes[b];
        if (forced_batch > 0 && batch != forced_batch) {
          continue;
        }
        GroupOption option;
        option.chips = chip_grid[c];
        option.batch = batch;
        bool feasible = true;
        double mem = 0.0;
        for (size_t i = 0; i < kStages; ++i) {
          if (placement[i] != g) {
            continue;
          }
          const StagePerf& perf = chain_perf(i, c, b);
          if (!perf.feasible) {
            feasible = false;
            break;
          }
          option.latency += perf.latency;
          option.seconds_per_request += 1.0 / perf.throughput;
          mem += perf.mem_per_chip;
        }
        if (!feasible || mem > model_.cluster().xpu.hbm_bytes) {
          continue;
        }
        options.push_back(option);
      }
    }
    if (options_.per_stage_pareto_pruning) {
      options = PruneOptions(std::move(options), DominatesOption);
    }
    return options;
  };

  // --- Decode option table (placement-independent). ---
  std::vector<DecodeOption> decode_options;
  for (size_t c = 0; c < kChips; ++c) {
    for (size_t db = 0; db < kDecodeBatches; ++db) {
      const StagePerf& perf = decode_perf(c, db);
      if (!perf.feasible) {
        continue;
      }
      DecodeOption option;
      option.chips = chip_grid[c];
      option.batch = options_.decode_batch_sizes[db];
      option.latency = perf.latency;
      option.throughput = perf.throughput;
      decode_options.push_back(option);
    }
  }
  if (options_.per_stage_pareto_pruning) {
    decode_options = PruneOptions(std::move(decode_options), DominatesDecode);
  }

  /// One (placement, forced batch) enumeration subtree.
  struct EnumContext {
    const std::vector<int>* placement = nullptr;
    int groups = 0;
    int span_group = -1;
    std::vector<std::vector<GroupOption>> tables;
  };

  const std::vector<std::vector<int>> placements = PlacementOptions();
  std::vector<EnumContext> contexts;
  for (size_t p = 0; p < placements.size(); ++p) {
    if (options_.placement_filter >= 0 &&
        static_cast<size_t>(options_.placement_filter) != p) {
      continue;
    }
    const std::vector<int>& placement = placements[p];
    const int groups = placement.back() + 1;
    // Group that pauses for retrieval (collocated across the retrieval
    // point), or -1 when retrieval sits between disaggregated groups.
    const size_t after_retrieval =
        has_retrieval ? model_.PostRetrievalChainIndex() : 0;
    const int span_group =
        (has_retrieval && after_retrieval > 0 &&
         placement[after_retrieval] == placement[after_retrieval - 1])
            ? placement[after_retrieval]
            : -1;

    auto add_context = [&](int64_t forced_batch) {
      EnumContext ctx;
      ctx.placement = &placement;
      ctx.groups = groups;
      ctx.span_group = span_group;
      ctx.tables.resize(static_cast<size_t>(groups));
      for (int g = 0; g < groups; ++g) {
        ctx.tables[static_cast<size_t>(g)] =
            group_options_for(placement, g, forced_batch);
        if (ctx.tables[static_cast<size_t>(g)].empty()) {
          return;  // Some stage cannot run at this granularity.
        }
      }
      contexts.push_back(std::move(ctx));
    };

    if (options_.per_group_batching) {
      add_context(/*forced_batch=*/-1);
    } else {
      for (int64_t batch : options_.batch_sizes) {
        add_context(batch);
      }
    }
  }

  // -------------------------------------------------------------------
  // Steps 2-3: enumerate schedules. Work decomposes into independent
  // tasks — one per (context, first-group option[, second-group
  // option]) subtree — each building a thread-local frontier; the
  // partition only balances load, it cannot change the result because
  // the frontier reduction is order-independent (Schedule tie-break).
  // -------------------------------------------------------------------
  struct EnumTask {
    const EnumContext* ctx = nullptr;
    int i0 = -1;  ///< Index into ctx->tables[0].
    int i1 = -1;  ///< Index into ctx->tables[1]; -1 when groups == 1.
  };
  // The one budget prune, shared by task generation and the in-task
  // recursion so the partition boundary cannot drift from the
  // enumeration it splits: after granting `chips` to group `g`, every
  // remaining group and decode still need >= 1 chip each.
  auto within_budget = [budget](const EnumContext& ctx, int g,
                                int used_chips, int chips) {
    return used_chips + chips + (ctx.groups - g - 1) + 1 <= budget;
  };
  std::vector<EnumTask> tasks;
  for (const EnumContext& ctx : contexts) {
    const auto& t0 = ctx.tables[0];
    for (size_t i0 = 0; i0 < t0.size(); ++i0) {
      if (!within_budget(ctx, 0, 0, t0[i0].chips)) {
        continue;
      }
      if (ctx.groups >= 2) {
        const auto& t1 = ctx.tables[1];
        for (size_t i1 = 0; i1 < t1.size(); ++i1) {
          if (!within_budget(ctx, 1, t0[i0].chips, t1[i1].chips)) {
            continue;
          }
          tasks.push_back(EnumTask{&ctx, static_cast<int>(i0),
                                   static_cast<int>(i1)});
        }
      } else {
        tasks.push_back(EnumTask{&ctx, static_cast<int>(i0), -1});
      }
    }
  }

  /// Thread-local accumulation of one enumeration task.
  struct TaskResult {
    ScheduleFront front;
    std::map<std::string, ScheduleFront> plan_fronts;
    int64_t evaluated = 0;
    int64_t feasible = 0;
  };
  std::vector<TaskResult> slots(tasks.size());
  std::atomic<int64_t> evaluated_total{0};
  std::atomic<int64_t> feasible_total{0};

  auto run_combination = [&](const EnumContext& ctx,
                             const std::vector<GroupOption>& chosen,
                             int used_chips, const DecodeOption& decode,
                             TaskResult& local) {
    double chain_latency = 0.0;
    // Throughput split into the groups unaffected by the retrieval
    // pause and the (single) group that pauses, which depends on the
    // retrieval option below.
    double fixed_throughput = std::numeric_limits<double>::infinity();
    double span_spr = 0.0;
    for (int g = 0; g < ctx.groups; ++g) {
      const GroupOption& option = chosen[static_cast<size_t>(g)];
      chain_latency += option.latency;
      if (g == ctx.span_group) {
        span_spr = option.seconds_per_request;
      } else {
        fixed_throughput =
            std::min(fixed_throughput, 1.0 / option.seconds_per_request);
      }
    }
    const int prefix_chips = chosen.back().chips;  // Prefix: last group.
    const size_t prefix_chip_idx = chip_index(prefix_chips);
    const int chip_equiv =
        std::max(used_chips + decode.chips, retrieval_equiv);

    auto make_schedule = [&](const RetrievalOption& retr,
                             const IterOption& iter) {
      Schedule schedule;
      schedule.chain_group = *ctx.placement;
      schedule.group_chips.resize(static_cast<size_t>(ctx.groups));
      schedule.chain_batch.resize(kStages);
      for (int g = 0; g < ctx.groups; ++g) {
        schedule.group_chips[static_cast<size_t>(g)] =
            chosen[static_cast<size_t>(g)].chips;
      }
      for (size_t i = 0; i < kStages; ++i) {
        schedule.chain_batch[i] =
            chosen[static_cast<size_t>((*ctx.placement)[i])].batch;
      }
      schedule.decode_chips = decode.chips;
      schedule.decode_batch = decode.batch;
      schedule.retrieval_servers = servers;
      schedule.retrieval_batch = retr.batch;
      schedule.iterative_batch = iter.batch;
      return schedule;
    };

    std::string plan_label;
    if (options_.keep_plan_frontiers) {
      plan_label = PlacementLabel(*ctx.placement) + " chips=";
      for (int g = 0; g < ctx.groups; ++g) {
        plan_label += std::to_string(chosen[static_cast<size_t>(g)].chips) +
                      (g + 1 < ctx.groups ? "," : "");
      }
      plan_label += " dec=" + std::to_string(decode.chips);
    }

    for (const RetrievalOption& retr : retrieval_options) {
      const double ttft = chain_latency + retr.latency;
      double chain_throughput = fixed_throughput;
      if (ctx.span_group >= 0) {
        const double paused_spr =
            span_spr + retr.latency / static_cast<double>(retr.batch);
        chain_throughput = std::min(chain_throughput, 1.0 / paused_spr);
      }
      for (const IterOption& iter : iter_options) {
        ++local.evaluated;
        double decode_throughput = decode.throughput;
        if (iterative) {
          // Mirror PipelineModel::EvaluateWith's stall model.
          const StagePerf& ingest =
              ingest_perf(prefix_chip_idx, iter.batch_idx);
          if (!ingest.feasible) {
            continue;
          }
          const double lambda = static_cast<double>(decode.batch) *
                                iter_rounds /
                                (decode_tokens * decode.latency);
          const double wait =
              (static_cast<double>(iter.batch) - 1.0) / (2.0 * lambda);
          const double stall_total =
              iter_rounds *
              (iter.retrieval_latency + ingest.latency + wait);
          decode_throughput =
              static_cast<double>(decode.batch) /
              (decode_tokens * decode.latency + stall_total);
        }
        const double qps =
            std::min({chain_throughput,
                      retr.request_throughput / retrieval_load,
                      decode_throughput});
        const double qpc = qps / chip_equiv;
        ++local.feasible;
        if (local.front.WouldAccept(ttft, qpc)) {
          local.front.Offer(ttft, qpc, make_schedule(retr, iter));
        }
        if (options_.keep_plan_frontiers) {
          auto& plan_front = local.plan_fronts[plan_label];
          if (plan_front.WouldAccept(ttft, qpc)) {
            plan_front.Offer(ttft, qpc, make_schedule(retr, iter));
          }
        }
      }
    }
  };

  ParallelFor(pool, tasks.size(), [&](size_t t) {
    const EnumTask& task = tasks[t];
    const EnumContext& ctx = *task.ctx;
    TaskResult& local = slots[t];
    std::vector<GroupOption> chosen(static_cast<size_t>(ctx.groups));
    chosen[0] = ctx.tables[0][static_cast<size_t>(task.i0)];
    int used = chosen[0].chips;
    int start = 1;
    if (task.i1 >= 0) {
      chosen[1] = ctx.tables[1][static_cast<size_t>(task.i1)];
      used += chosen[1].chips;
      start = 2;
    }
    std::function<void(int, int)> recurse = [&](int g, int used_chips) {
      if (g == ctx.groups) {
        for (const DecodeOption& decode : decode_options) {
          if (used_chips + decode.chips > budget) {
            continue;
          }
          run_combination(ctx, chosen, used_chips, decode, local);
        }
        return;
      }
      for (const GroupOption& option : ctx.tables[static_cast<size_t>(g)]) {
        if (!within_budget(ctx, g, used_chips, option.chips)) {
          continue;
        }
        chosen[static_cast<size_t>(g)] = option;
        recurse(g + 1, used_chips + option.chips);
      }
    };
    recurse(start, used);
    // Counter updates stay atomic (totals are partition-invariant);
    // frontiers merge after the barrier below.
    evaluated_total.fetch_add(local.evaluated, std::memory_order_relaxed);
    feasible_total.fetch_add(local.feasible, std::memory_order_relaxed);
  });
  result.schedules_evaluated = evaluated_total.load();
  result.schedules_feasible = feasible_total.load();

  // --- Order-independent reduction of per-task frontiers. ---
  ScheduleFront front;
  std::map<std::string, ScheduleFront> plan_fronts;
  for (TaskResult& slot : slots) {
    front.Merge(std::move(slot.front));
    for (auto& [label, plan_front] : slot.plan_fronts) {
      plan_fronts[label].Merge(std::move(plan_front));
    }
  }

  // --- Final Pareto frontier, re-evaluated through the canonical
  // assembly with the same provider so the reported metrics come from
  // one cost source (measured costs change the report, not just the
  // ranking). ---
  auto finalize = [&](std::vector<ParetoPoint<Schedule>> raw) {
    std::vector<ParetoPoint<ScheduledPoint>> rescored;
    rescored.reserve(raw.size());
    for (auto& point : raw) {
      const EndToEndPerf perf = model_.EvaluateWith(point.payload, provider);
      RAGO_CHECK(perf.feasible, "frontier schedule must be feasible");
      ParetoPoint<ScheduledPoint> out;
      out.latency = perf.ttft;
      out.throughput = perf.qps_per_chip;
      out.payload = ScheduledPoint{std::move(point.payload), perf};
      rescored.push_back(std::move(out));
    }
    std::vector<ScheduledPoint> frontier;
    for (auto& point : ParetoFrontier(std::move(rescored))) {
      frontier.push_back(std::move(point.payload));
    }
    return frontier;
  };

  result.pareto = finalize(front.Take());
  if (options_.keep_plan_frontiers) {
    // std::map iteration gives the label-sorted order directly.
    for (auto& [label, plan_front] : plan_fronts) {
      PlanFrontier frontier;
      frontier.plan_label = label;
      frontier.points = finalize(plan_front.Take());
      result.plan_frontiers.push_back(std::move(frontier));
    }
  }
  return result;
}

OptimizerResult
Optimizer::SearchBaseline() const {
  // Paper §7.1: every auxiliary stage collocated with the main-LLM
  // prefix; prefix:decode chips 1:1 (time consumption is within
  // 1.2-1.4:1 across the 8B/70B models); batching policies tuned.
  const auto& chain = model_.chain();
  const bool has_retrieval = model_.schema().retrieval_enabled;
  const int budget = Budget();
  const int servers =
      has_retrieval ? std::min(model_.MinRetrievalServers(),
                               model_.cluster().num_servers)
                    : 1;
  const int half = std::max(1, budget / 2);

  MemoProvider memo(model_);
  const StagePerfProvider provider = memo.Provider();

  OptimizerResult result;
  std::vector<ParetoPoint<ScheduledPoint>> points;

  std::vector<int64_t> iter_batches = {1};
  if (model_.schema().IterativeRetrieval()) {
    iter_batches = options_.batch_sizes;
  }
  std::vector<int64_t> retrieval_batches =
      has_retrieval ? options_.batch_sizes : std::vector<int64_t>{1};

  Schedule schedule;
  schedule.chain_group.assign(chain.size(), 0);
  schedule.group_chips = {half};
  schedule.chain_batch.assign(chain.size(), 1);
  schedule.decode_chips = half;
  schedule.retrieval_servers = servers;

  for (int64_t batch : options_.batch_sizes) {
    std::fill(schedule.chain_batch.begin(), schedule.chain_batch.end(),
              batch);
    for (int64_t decode_batch : options_.decode_batch_sizes) {
      schedule.decode_batch = decode_batch;
      for (int64_t retrieval_batch : retrieval_batches) {
        schedule.retrieval_batch = retrieval_batch;
        for (int64_t iter_batch : iter_batches) {
          schedule.iterative_batch = iter_batch;
          ++result.schedules_evaluated;
          const EndToEndPerf perf = model_.EvaluateWith(schedule, provider);
          if (!perf.feasible) {
            continue;
          }
          ++result.schedules_feasible;
          ParetoPoint<ScheduledPoint> point;
          point.latency = perf.ttft;
          point.throughput = perf.qps_per_chip;
          point.payload = ScheduledPoint{schedule, perf};
          points.push_back(point);
        }
      }
    }
  }

  points = ParetoFrontier(std::move(points));
  for (auto& point : points) {
    result.pareto.push_back(std::move(point.payload));
  }
  return result;
}

}  // namespace rago::opt
