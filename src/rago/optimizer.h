/**
 * @file optimizer.h
 * RAGO: exhaustive search for optimal RAG serving schedules.
 *
 * Implements the paper's Algorithm 1. Given a RAGSchema and resource
 * constraints, RAGO explores:
 *  - task placement: contiguous collocation of prefix-chain stages
 *    (neighbor-only grouping, paper Fig. 13);
 *  - resource allocation: power-of-two XPU counts per group and for
 *    decode, within the cluster budget;
 *  - batching policy: per-group batch sizes, decode continuous batch,
 *    and the iterative retrieval batch where applicable.
 *
 * Step 1 profiles every stage at every (chips, batch) setting once
 * (with optional per-stage Pareto pruning); Steps 2-3 enumerate
 * schedules and assemble end-to-end performance from the profiles,
 * keeping the TTFT x QPS/Chip Pareto frontier.
 */
#ifndef RAGO_RAGO_OPTIMIZER_H
#define RAGO_RAGO_OPTIMIZER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline_model.h"

namespace rago::opt {

/// Search-space granularity knobs (paper: user-defined granularity).
struct SearchOptions {
  /// Batch sizes explored for prefix-chain groups (powers of two).
  std::vector<int64_t> batch_sizes = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  /// Batch sizes explored for the decode stage.
  std::vector<int64_t> decode_batch_sizes = {1,  2,   4,   8,   16,  32,
                                             64, 128, 256, 512, 1024};
  /// XPU budget; 0 means the full cluster.
  int max_total_xpus = 0;
  /// Each collocation group picks its own batch size; if false, one
  /// batch size is shared by all pre-decode stages.
  bool per_group_batching = true;
  /// Apply per-stage Pareto pruning after profiling (Algorithm 1
  /// step 1). Disabling is exposed for the pruning ablation bench.
  bool per_stage_pareto_pruning = true;
  /// Keep one Pareto frontier per (placement, allocation) plan for
  /// Pareto-composition plots (paper Fig. 16/18). Costs memory.
  bool keep_plan_frontiers = false;
  /// Restrict the search to one placement (index into
  /// PlacementOptions()); -1 searches all placements.
  int placement_filter = -1;
  /**
   * Worker threads for Search(): Step-1 stage profiling fans out as
   * (stage x chips x batch) tasks and Steps 2-3 enumerate placement /
   * allocation subtrees as independent tasks, each building a local
   * Pareto frontier that is merged with an order-independent,
   * payload-tie-broken reduction. 0 = hardware concurrency, 1 =
   * serial. The reported frontier (points, schedules, counters) is
   * bit-identical for every value (pinned by test_determinism).
   */
  int num_threads = 0;
};

/// A schedule together with its evaluated end-to-end performance.
struct ScheduledPoint {
  core::Schedule schedule;
  core::EndToEndPerf perf;
};

/// Pareto frontier of one (placement, allocation) plan.
struct PlanFrontier {
  std::string plan_label;  ///< e.g. "[encode][prefix] chips=64,16 dec=16".
  std::vector<ScheduledPoint> points;
};

/// Output of one optimizer run.
struct OptimizerResult {
  /// Global Pareto frontier over (TTFT down, QPS/Chip up), TTFT-sorted.
  std::vector<ScheduledPoint> pareto;
  /// Per-plan frontiers (only when keep_plan_frontiers is set).
  std::vector<PlanFrontier> plan_frontiers;
  int64_t schedules_evaluated = 0;
  int64_t schedules_feasible = 0;

  /// Highest-QPS/Chip point on the frontier (requires non-empty).
  const ScheduledPoint& MaxQpsPerChip() const;
  /// Lowest-TTFT point on the frontier (requires non-empty).
  const ScheduledPoint& MinTtft() const;
};

/// The RAGO search engine for one pipeline model.
class Optimizer {
 public:
  Optimizer(const core::PipelineModel& model, SearchOptions options = {});

  /// Full Algorithm 1 search (live model-priced stage costs).
  OptimizerResult Search() const;

  /**
   * Algorithm 1 with externally supplied stage costs: every Step-1
   * profile and the final frontier re-scoring go through `provider`
   * instead of the model's live evaluators, so measured costs — e.g.
   * PipelineModel::ProviderWithRetrievalModel wrapping a
   * MeasuredRetrievalModel calibrated on the serving index — steer
   * which schedules win, not just how they are reported. Lookups must
   * be thread-compatible: Step 1 invokes them concurrently from the
   * profiling fan-out. Search() is this with model.LiveProvider().
   */
  OptimizerResult Search(const core::StagePerfProvider& provider) const;

  /**
   * Baseline from the paper's evaluation (§7.1): all auxiliary stages
   * collocated with the main-LLM prefix partition, prefix:decode chips
   * fixed at 1:1, batching still tuned.
   */
  OptimizerResult SearchBaseline() const;

  /**
   * Placement candidates: every contiguous partition of the prefix
   * chain into collocation groups (2^(k-1) options for k stages).
   * Each entry is a chain_group vector.
   */
  std::vector<std::vector<int>> PlacementOptions() const;

  /// Human-readable label of a placement option.
  std::string PlacementLabel(const std::vector<int>& chain_group) const;

  /// XPU budget used by this optimizer instance.
  int Budget() const;

 private:
  const core::PipelineModel& model_;
  SearchOptions options_;
};

}  // namespace rago::opt

#endif  // RAGO_RAGO_OPTIMIZER_H
