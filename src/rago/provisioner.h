/**
 * @file provisioner.h
 * SLO-driven capacity planning on top of the RAGO search.
 *
 * The paper's optimizer answers "what is the best schedule for a
 * fixed cluster?". Deployments usually ask the inverse: "how few XPUs
 * can serve this workload within its SLOs?". The provisioner runs the
 * RAGO search under increasing power-of-two XPU budgets and returns
 * the cheapest schedule meeting the targets — an extension the paper
 * lists under cost efficiency in its future-work discussion (§9).
 */
#ifndef RAGO_RAGO_PROVISIONER_H
#define RAGO_RAGO_PROVISIONER_H

#include "rago/optimizer.h"

namespace rago::opt {

/// Service-level objectives for one RAG deployment.
struct SloSpec {
  double max_ttft = 0.0;  ///< Seconds; 0 disables the constraint.
  double max_tpot = 0.0;  ///< Seconds per output token; 0 disables.
  double min_qps = 0.0;   ///< Sustained requests/second; 0 disables.
};

/// Outcome of provisioning.
struct ProvisionResult {
  bool satisfiable = false;
  int xpu_budget = 0;  ///< Smallest budget that met the SLOs.
  ScheduledPoint chosen;
  /// Budgets probed, in order (for reporting).
  std::vector<int> budgets_tried;
};

/**
 * Finds the smallest power-of-two XPU budget (up to the cluster size)
 * whose optimized frontier contains a schedule meeting `slo`, and the
 * cheapest such schedule (fewest allocated XPUs, then max QPS).
 */
ProvisionResult Provision(const core::PipelineModel& model,
                          const SloSpec& slo,
                          const SearchOptions& options = {});

}  // namespace rago::opt

#endif  // RAGO_RAGO_PROVISIONER_H
