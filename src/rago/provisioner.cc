#include "rago/provisioner.h"

#include "common/check.h"

namespace rago::opt {
namespace {

bool MeetsSlo(const core::EndToEndPerf& perf, const SloSpec& slo) {
  if (slo.max_ttft > 0 && perf.ttft > slo.max_ttft) {
    return false;
  }
  if (slo.max_tpot > 0 && perf.tpot > slo.max_tpot) {
    return false;
  }
  if (slo.min_qps > 0 && perf.qps < slo.min_qps) {
    return false;
  }
  return true;
}

}  // namespace

ProvisionResult
Provision(const core::PipelineModel& model, const SloSpec& slo,
          const SearchOptions& options) {
  RAGO_REQUIRE(slo.max_ttft > 0 || slo.max_tpot > 0 || slo.min_qps > 0,
               "provisioning needs at least one SLO constraint");
  ProvisionResult result;

  for (int budget = 1; budget <= model.cluster().TotalXpus(); budget *= 2) {
    result.budgets_tried.push_back(budget);
    SearchOptions constrained = options;
    constrained.max_total_xpus = budget;
    const Optimizer optimizer(model, constrained);
    const OptimizerResult search = optimizer.Search();

    const ScheduledPoint* best = nullptr;
    for (const ScheduledPoint& point : search.pareto) {
      if (!MeetsSlo(point.perf, slo)) {
        continue;
      }
      if (best == nullptr ||
          point.schedule.AllocatedXpus() <
              best->schedule.AllocatedXpus() ||
          (point.schedule.AllocatedXpus() ==
               best->schedule.AllocatedXpus() &&
           point.perf.qps > best->perf.qps)) {
        best = &point;
      }
    }
    if (best != nullptr) {
      result.satisfiable = true;
      result.xpu_budget = budget;
      result.chosen = *best;
      return result;
    }
  }
  return result;
}

}  // namespace rago::opt
