/**
 * @file sharded_index.h
 * Scatter-gather ANN search over a sharded in-memory database.
 *
 * Functional counterpart of the paper's multi-server retrieval tier
 * (§3.3): the database is partitioned across N logical servers, every
 * query fans out to all shards (each shard searched by any of the
 * existing functional backends), and per-shard top-k heaps are merged
 * into globally ranked results with the deterministic TopK tie-break.
 * With the flat backend the merged results are bit-identical to a
 * single-index search — the property the exactness tests pin — and
 * per-shard timing instrumentation feeds the measured-cost calibration
 * adapter (serving/calibration.h) so the serving DES can replay real
 * multi-server scans against the analytical ScannModel.
 *
 * Determinism contract: given a fixed options.seed, build and search
 * results are identical for every thread count (block results land in
 * (shard x query-block)-indexed slots; the merge visits shards in
 * order; per-shard build RNG streams derive from Rng::DeriveSeed).
 */
#ifndef RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H
#define RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/scann_tree.h"
#include "retrieval/ann/topk.h"
#include "retrieval/perf/scann_model.h"
#include "retrieval/serving/partitioner.h"

namespace rago::serving {

/// Per-shard search engine choice.
enum class ShardBackend {
  kFlat,
  kIvf,
  kIvfPq,
  kHnsw,
  kScannTree,
};

const char* ShardBackendName(ShardBackend backend);

/// Build + search configuration of a sharded index.
struct ShardedIndexOptions {
  int num_shards = 4;
  PartitionerKind partitioner = PartitionerKind::kRoundRobin;
  ShardBackend backend = ShardBackend::kFlat;
  ann::Metric metric = ann::Metric::kL2;
  /// Base seed; per-shard build streams derive deterministically.
  uint64_t seed = 0x5ca77e2;

  /**
   * Worker threads for SearchBatch when the caller passes no pool:
   * 0 = hardware concurrency, 1 = inline. The owned pool is created
   * lazily on first use; an explicitly passed pool always wins.
   */
  int num_threads = 0;
  /**
   * Queries per (shard x query-block) task. Sub-shard splitting keeps
   * workers busy when large batches land on few shards; the block size
   * is a fixed knob (never derived from the thread count) so the task
   * decomposition — and therefore the merged results and scan-byte
   * accounting — is identical for every pool size.
   */
  int query_block = 32;

  // Backend knobs (only the matching backend's fields are read).
  ann::IvfOptions ivf;
  int nprobe = 8;               ///< IVF / IVF-PQ probe width.
  ann::IvfPqOptions ivfpq;
  int rerank = 0;               ///< IVF-PQ / tree exact re-rank depth.
  ann::HnswOptions hnsw;
  int ef_search = 64;           ///< HNSW beam width.
  ann::ScannTreeOptions tree;
  int beam = 8;                 ///< Tree beam width per level.

  /**
   * Optional capacity check: when set, the shard count must cover the
   * modeled database's DRAM footprint
   * (ScannModel::MinServersForCapacity on `modeled_server`), so
   * under-provisioned configurations fail loudly at build time instead
   * of silently mispricing the tier they stand in for.
   */
  std::optional<retrieval::DatabaseSpec> modeled_db;
  CpuServerSpec modeled_server = DefaultCpuServer();
};

/// Instrumentation of one shard during a batch search.
struct ShardStats {
  int64_t rows = 0;           ///< Database vectors held by the shard.
  double scan_bytes = 0.0;    ///< Bytes scanned over the whole batch.
  /**
   * Shard-local busy seconds: the summed durations of this shard's
   * (shard x query-block) tasks. Equals wall time when the batch fits
   * one block (or runs inline); with sub-shard parallelism the blocks
   * overlap, so this upper-bounds the shard's wall-clock contribution.
   */
  double wall_seconds = 0.0;
};

/// Instrumentation of one SearchBatch call.
struct ShardSearchStats {
  std::vector<ShardStats> shards;
  double merge_seconds = 0.0;  ///< Gather + global top-k merge time.
  int64_t num_queries = 0;

  double TotalScanBytes() const;
  /// Mean bytes one query scans within one shard.
  double BytesPerQueryPerShard() const;
  /// Busiest shard's summed task seconds — an upper bound on the
  /// scatter critical path (exact when each shard ran as one block).
  double MaxShardSeconds() const;
};

/**
 * N logical retrieval servers behind one search interface. Immutable
 * after construction; SearchBatch is const and thread-compatible.
 */
class ShardedIndex {
 public:
  /// Partitions `data` and builds one backend index per shard.
  ShardedIndex(ann::Matrix data, const ShardedIndexOptions& options);

  ~ShardedIndex();
  ShardedIndex(ShardedIndex&&) noexcept;
  ShardedIndex& operator=(ShardedIndex&&) noexcept = delete;

  /// Scatter-gather top-k for one query (global ids, ascending dist).
  std::vector<ann::Neighbor> Search(const float* query, size_t k) const;

  /**
   * Batched multi-query scatter-gather, split into (shard x
   * query-block) tasks. Tasks run on `pool` when given, else on the
   * lazily created owned pool (options.num_threads; inline when that
   * resolves to 1); results are identical for any thread count. When
   * `stats` is non-null it receives per-shard instrumentation.
   */
  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, ThreadPool* pool = nullptr,
      ShardSearchStats* stats = nullptr) const;

  int num_shards() const { return options_.num_shards; }
  size_t size() const { return total_rows_; }
  size_t dim() const { return dim_; }
  const ShardedIndexOptions& options() const { return options_; }
  const Partition& partition() const { return partition_; }

  /// Estimated bytes one query scans per shard (backend model; the
  /// HNSW backend reports the measured lifetime average over every
  /// query searched so far — block-order independent — 0 before any
  /// search).
  double BytesPerQueryPerShardEstimate() const;

 private:
  struct Shard;

  /// Explicit pool if given, else the lazily built owned pool (null
  /// when options_.num_threads resolves to 1).
  ThreadPool* EffectivePool(ThreadPool* pool) const;

  ShardedIndexOptions options_;
  size_t total_rows_ = 0;
  size_t dim_ = 0;
  Partition partition_;
  std::vector<Shard> shards_;
  mutable std::mutex pool_mutex_;  ///< Guards owned_pool_ creation.
  mutable std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace rago::serving

#endif  // RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H
