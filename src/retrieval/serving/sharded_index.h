/**
 * @file sharded_index.h
 * Scatter-gather ANN search over a sharded in-memory database.
 *
 * Functional counterpart of the paper's multi-server retrieval tier
 * (§3.3): the database is partitioned across N logical servers, every
 * query fans out to all shards (each shard searched by any of the
 * existing functional backends), and per-shard top-k heaps are merged
 * into globally ranked results with the deterministic TopK tie-break.
 * With the flat backend the merged results are bit-identical to a
 * single-index search — the property the exactness tests pin — and
 * per-shard timing instrumentation feeds the measured-cost calibration
 * adapter (serving/calibration.h) so the serving DES can replay real
 * multi-server scans against the analytical ScannModel.
 *
 * Determinism contract: given a fixed options.seed, build and search
 * results are identical for every thread count (shard results land in
 * shard-indexed slots; the merge visits shards in order; per-shard
 * build RNG streams derive from Rng::DeriveSeed).
 */
#ifndef RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H
#define RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "hardware/cpu_server.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/hnsw_index.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/ann/ivfpq_index.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/scann_tree.h"
#include "retrieval/ann/topk.h"
#include "retrieval/perf/scann_model.h"
#include "retrieval/serving/partitioner.h"

namespace rago::serving {

/// Per-shard search engine choice.
enum class ShardBackend {
  kFlat,
  kIvf,
  kIvfPq,
  kHnsw,
  kScannTree,
};

const char* ShardBackendName(ShardBackend backend);

/// Build + search configuration of a sharded index.
struct ShardedIndexOptions {
  int num_shards = 4;
  PartitionerKind partitioner = PartitionerKind::kRoundRobin;
  ShardBackend backend = ShardBackend::kFlat;
  ann::Metric metric = ann::Metric::kL2;
  /// Base seed; per-shard build streams derive deterministically.
  uint64_t seed = 0x5ca77e2;

  // Backend knobs (only the matching backend's fields are read).
  ann::IvfOptions ivf;
  int nprobe = 8;               ///< IVF / IVF-PQ probe width.
  ann::IvfPqOptions ivfpq;
  int rerank = 0;               ///< IVF-PQ / tree exact re-rank depth.
  ann::HnswOptions hnsw;
  int ef_search = 64;           ///< HNSW beam width.
  ann::ScannTreeOptions tree;
  int beam = 8;                 ///< Tree beam width per level.

  /**
   * Optional capacity check: when set, the shard count must cover the
   * modeled database's DRAM footprint
   * (ScannModel::MinServersForCapacity on `modeled_server`), so
   * under-provisioned configurations fail loudly at build time instead
   * of silently mispricing the tier they stand in for.
   */
  std::optional<retrieval::DatabaseSpec> modeled_db;
  CpuServerSpec modeled_server = DefaultCpuServer();
};

/// Instrumentation of one shard during a batch search.
struct ShardStats {
  int64_t rows = 0;           ///< Database vectors held by the shard.
  double scan_bytes = 0.0;    ///< Bytes scanned over the whole batch.
  double wall_seconds = 0.0;  ///< Shard-local search wall time.
};

/// Instrumentation of one SearchBatch call.
struct ShardSearchStats {
  std::vector<ShardStats> shards;
  double merge_seconds = 0.0;  ///< Gather + global top-k merge time.
  int64_t num_queries = 0;

  double TotalScanBytes() const;
  /// Mean bytes one query scans within one shard.
  double BytesPerQueryPerShard() const;
  /// Slowest shard's wall time (the scatter-gather critical path).
  double MaxShardSeconds() const;
};

/**
 * N logical retrieval servers behind one search interface. Immutable
 * after construction; SearchBatch is const and thread-compatible.
 */
class ShardedIndex {
 public:
  /// Partitions `data` and builds one backend index per shard.
  ShardedIndex(ann::Matrix data, const ShardedIndexOptions& options);

  ~ShardedIndex();
  ShardedIndex(ShardedIndex&&) noexcept;
  ShardedIndex& operator=(ShardedIndex&&) noexcept = delete;

  /// Scatter-gather top-k for one query (global ids, ascending dist).
  std::vector<ann::Neighbor> Search(const float* query, size_t k) const;

  /**
   * Batched multi-query scatter-gather. Shard scans run on `pool`
   * (inline when null); results are identical for any thread count.
   * When `stats` is non-null it receives per-shard instrumentation.
   */
  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, ThreadPool* pool = nullptr,
      ShardSearchStats* stats = nullptr) const;

  int num_shards() const { return options_.num_shards; }
  size_t size() const { return total_rows_; }
  size_t dim() const { return dim_; }
  const ShardedIndexOptions& options() const { return options_; }
  const Partition& partition() const { return partition_; }

  /// Estimated bytes one query scans per shard (backend model; the
  /// HNSW backend reports the measured average of its most recent
  /// batch, 0 before any search).
  double BytesPerQueryPerShardEstimate() const;

 private:
  struct Shard;

  ShardedIndexOptions options_;
  size_t total_rows_ = 0;
  size_t dim_ = 0;
  Partition partition_;
  std::vector<Shard> shards_;
};

}  // namespace rago::serving

#endif  // RAGO_RETRIEVAL_SERVING_SHARDED_INDEX_H
