#include "retrieval/serving/partitioner.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/kmeans.h"

namespace rago::serving {
namespace {

/// splitmix64 finalizer: decorrelates consecutive row ids.
uint64_t HashId(uint64_t id, uint64_t seed) {
  uint64_t z = id + seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Partition MakeEmpty(int num_shards) {
  Partition partition;
  partition.shard_rows.resize(static_cast<size_t>(num_shards));
  return partition;
}

Partition RoundRobin(size_t rows, int num_shards) {
  Partition partition = MakeEmpty(num_shards);
  for (size_t i = 0; i < rows; ++i) {
    partition.shard_rows[i % static_cast<size_t>(num_shards)].push_back(
        static_cast<int64_t>(i));
  }
  return partition;
}

Partition HashRows(size_t rows, int num_shards, uint64_t seed) {
  Partition partition = MakeEmpty(num_shards);
  for (size_t i = 0; i < rows; ++i) {
    const auto shard =
        HashId(i, seed) % static_cast<uint64_t>(num_shards);
    partition.shard_rows[shard].push_back(static_cast<int64_t>(i));
  }
  return partition;
}

/**
 * k-means with `num_shards` centroids, then capacity-bounded placement:
 * each row (in ascending id order) goes to its nearest centroid whose
 * shard is below ceil(rows / num_shards), spilling to the next-nearest
 * otherwise. Keeps cluster locality without the unbounded skew of raw
 * nearest-centroid assignment.
 */
Partition KMeansBalanced(const ann::Matrix& data, int num_shards,
                         uint64_t seed) {
  Partition partition = MakeEmpty(num_shards);
  const size_t capacity = static_cast<size_t>(
      CeilDiv(static_cast<int64_t>(data.rows()), num_shards));
  Rng rng(seed);
  const ann::KMeansResult trained =
      ann::TrainKMeans(data, num_shards, rng);

  std::vector<int> order(static_cast<size_t>(num_shards));
  std::vector<float> dist(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < data.rows(); ++i) {
    // The shard centroids are one contiguous block: rank them with a
    // single batched scan per row.
    ann::kernels::DistanceBatch(ann::Metric::kL2, data.Row(i),
                                trained.centroids.data(),
                                static_cast<size_t>(num_shards), data.dim(),
                                dist.data());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const float da = dist[static_cast<size_t>(a)];
      const float db = dist[static_cast<size_t>(b)];
      return da != db ? da < db : a < b;
    });
    for (int shard : order) {
      auto& rows = partition.shard_rows[static_cast<size_t>(shard)];
      if (rows.size() < capacity) {
        rows.push_back(static_cast<int64_t>(i));
        break;
      }
    }
  }
  return partition;
}

}  // namespace

const char*
PartitionerName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kRoundRobin: return "round-robin";
    case PartitionerKind::kHash: return "hash";
    case PartitionerKind::kKMeansBalanced: return "kmeans";
  }
  RAGO_CHECK(false, "unknown partitioner kind");
}

size_t
Partition::TotalRows() const {
  size_t total = 0;
  for (const auto& rows : shard_rows) {
    total += rows.size();
  }
  return total;
}

Partition
PartitionRows(const ann::Matrix& data, int num_shards, PartitionerKind kind,
              uint64_t seed) {
  RAGO_REQUIRE(num_shards >= 1, "need at least one shard");
  RAGO_REQUIRE(!data.empty(), "cannot partition an empty database");
  RAGO_REQUIRE(static_cast<size_t>(num_shards) <= data.rows(),
               "more shards than database rows");
  switch (kind) {
    case PartitionerKind::kRoundRobin:
      return RoundRobin(data.rows(), num_shards);
    case PartitionerKind::kHash:
      return HashRows(data.rows(), num_shards, seed);
    case PartitionerKind::kKMeansBalanced:
      return KMeansBalanced(data, num_shards, seed);
  }
  RAGO_CHECK(false, "unknown partitioner kind");
}

}  // namespace rago::serving
