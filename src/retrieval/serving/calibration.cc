#include "retrieval/serving/calibration.h"

#include "common/check.h"

namespace rago::serving {

retrieval::MeasuredScanProfile
ProfileFromStats(const ShardSearchStats& stats) {
  RAGO_REQUIRE(!stats.shards.empty() && stats.num_queries > 0,
               "calibration needs a non-empty measured batch");

  // Each shard task occupies one worker thread, so shard bytes over
  // shard wall time is a per-core scan rate. Aggregate across shards
  // (total bytes over total busy seconds) to damp timer noise on the
  // tiny per-shard intervals functional runs produce.
  double total_bytes = 0.0;
  double total_seconds = 0.0;
  for (const ShardStats& shard : stats.shards) {
    total_bytes += shard.scan_bytes;
    total_seconds += shard.wall_seconds;
  }
  RAGO_REQUIRE(total_bytes > 0 && total_seconds > 0,
               "calibration run measured no scan work");

  retrieval::MeasuredScanProfile profile;
  profile.bytes_per_query_per_server = stats.BytesPerQueryPerShard();
  profile.scan_bytes_per_core = total_bytes / total_seconds;
  profile.merge_seconds_per_query =
      stats.merge_seconds / static_cast<double>(stats.num_queries);
  return profile;
}

retrieval::MeasuredRetrievalModel
CalibrateRetrievalModel(const ShardedIndex& index,
                        const ann::Matrix& queries, size_t k,
                        const CpuServerSpec& server, ThreadPool* pool) {
  ShardSearchStats stats;
  index.SearchBatch(queries, k, pool, &stats);
  return retrieval::MeasuredRetrievalModel(ProfileFromStats(stats), server,
                                           index.num_shards());
}

}  // namespace rago::serving
