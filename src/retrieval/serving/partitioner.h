/**
 * @file partitioner.h
 * Database partitioning policies for the sharded retrieval tier.
 *
 * The paper's hyperscale databases are sharded across many CPU hosts
 * with every query visiting every shard (§3.3). How vectors are dealt
 * onto shards does not change exact-search results (the gather merges
 * per-shard top-k), but it changes per-shard load and, for the
 * approximate backends, per-shard index quality:
 *  - round-robin: perfectly balanced, structure-oblivious;
 *  - hash: balanced in expectation, stable under id-space growth;
 *  - kmeans-balanced: clusters co-located per shard under a hard
 *    capacity bound, the regime where per-shard IVF/tree indexes keep
 *    their cluster structure.
 * All policies assign rows in ascending global-id order within each
 * shard, which preserves the deterministic TopK tie-break end to end.
 */
#ifndef RAGO_RETRIEVAL_SERVING_PARTITIONER_H
#define RAGO_RETRIEVAL_SERVING_PARTITIONER_H

#include <cstdint>
#include <vector>

#include "retrieval/ann/matrix.h"

namespace rago::serving {

/// Supported shard-assignment policies.
enum class PartitionerKind {
  kRoundRobin,
  kHash,
  kKMeansBalanced,
};

/// Human-readable policy name (for tables and JSON output).
const char* PartitionerName(PartitionerKind kind);

/// Shard assignment: per-shard global row ids, ascending within shard.
struct Partition {
  std::vector<std::vector<int64_t>> shard_rows;

  int num_shards() const { return static_cast<int>(shard_rows.size()); }
  size_t TotalRows() const;
};

/**
 * Partitions the rows of `data` into `num_shards` shards under `kind`.
 * Deterministic in (data, num_shards, kind, seed); every row lands in
 * exactly one shard, and no shard exceeds ceil(rows / num_shards) for
 * the round-robin and kmeans-balanced policies.
 */
Partition PartitionRows(const ann::Matrix& data, int num_shards,
                        PartitionerKind kind, uint64_t seed);

}  // namespace rago::serving

#endif  // RAGO_RETRIEVAL_SERVING_PARTITIONER_H
