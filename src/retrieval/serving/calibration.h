/**
 * @file calibration.h
 * Turns measured shard timings into a RetrievalModel.
 *
 * The bridge between the functional sharded tier and the analytical
 * serving stack: a calibration run over a ShardedIndex yields per-shard
 * scan bytes and wall times; those distill into a MeasuredScanProfile,
 * and the resulting MeasuredRetrievalModel plugs into the serving DES
 * (sim::ServingSimOptions::retrieval_model) wherever the analytical
 * ScannModel would be used — so replayed multi-server scans and the
 * published cost model can be cross-checked against each other.
 */
#ifndef RAGO_RETRIEVAL_SERVING_CALIBRATION_H
#define RAGO_RETRIEVAL_SERVING_CALIBRATION_H

#include "hardware/cpu_server.h"
#include "retrieval/perf/measured_model.h"
#include "retrieval/serving/sharded_index.h"

namespace rago::serving {

/**
 * Distills a calibration run's stats into a scan profile: mean bytes
 * per query per shard, the effective per-core scan rate shards
 * actually achieved (each shard task runs on one worker thread), and
 * the per-query merge overhead.
 */
retrieval::MeasuredScanProfile ProfileFromStats(
    const ShardSearchStats& stats);

/**
 * Convenience calibration: searches `queries` through `index` (top-k
 * `k`) and returns a measured-cost model of its shard fleet on
 * `server`-class hosts.
 */
retrieval::MeasuredRetrievalModel CalibrateRetrievalModel(
    const ShardedIndex& index, const ann::Matrix& queries, size_t k,
    const CpuServerSpec& server, ThreadPool* pool = nullptr);

}  // namespace rago::serving

#endif  // RAGO_RETRIEVAL_SERVING_CALIBRATION_H
