#include "retrieval/serving/sharded_index.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/flat_index.h"

namespace rago::serving {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  // Measurement only: feeds ShardSearchStats wall_s for calibration,
  // never control flow or results. rago-lint: allow(wallclock)
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Uniform per-shard search engine. Implementations wrap one functional
 * index, run its batched entry point, and report the (estimated or
 * measured) bytes scanned — the quantity the analytical cost models
 * price, and what calibration feeds back to them.
 */
class ShardEngine {
 public:
  virtual ~ShardEngine() = default;

  /// Shard-local top-k per query; adds scanned bytes to `*scan_bytes`.
  virtual std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const = 0;

  /// Estimated bytes one query scans in this shard.
  virtual double BytesPerQuery() const = 0;
};

class FlatEngine : public ShardEngine {
 public:
  FlatEngine(ann::Matrix data, ann::Metric metric)
      : index_(std::move(data), metric) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes +=
        BytesPerQuery() * static_cast<double>(queries.rows());
    return index_.SearchBatch(queries, k);
  }

  double BytesPerQuery() const override {
    return static_cast<double>(index_.size()) *
           static_cast<double>(index_.dim()) * sizeof(float);
  }

 private:
  ann::FlatIndex index_;
};

class IvfEngine : public ShardEngine {
 public:
  IvfEngine(ann::Matrix data, ann::Metric metric, ann::IvfOptions options,
            int nprobe, Rng& rng)
      : nprobe_(nprobe), dim_(data.dim()) {
    options.nlist = std::max(
        1, std::min(options.nlist, static_cast<int>(data.rows())));
    index_ = std::make_unique<ann::IvfIndex>(std::move(data), metric,
                                             options, rng);
  }

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_->SearchBatch(queries, k, nprobe_);
  }

  double BytesPerQuery() const override {
    // In-list exact distances plus the coarse centroid scan.
    return (index_->ExpectedScannedVectors(nprobe_) + index_->nlist()) *
           static_cast<double>(dim_) * sizeof(float);
  }

 private:
  int nprobe_;
  size_t dim_;
  std::unique_ptr<ann::IvfIndex> index_;
};

class IvfPqEngine : public ShardEngine {
 public:
  IvfPqEngine(ann::Matrix data, ann::IvfPqOptions options, int nprobe,
              int rerank, Rng& rng)
      : nprobe_(nprobe), rerank_(rerank) {
    options.nlist = std::max(
        1, std::min(options.nlist, static_cast<int>(data.rows())));
    index_ =
        std::make_unique<ann::IvfPqIndex>(std::move(data), options, rng);
  }

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_->SearchBatch(queries, k, nprobe_, rerank_);
  }

  double BytesPerQuery() const override {
    return index_->ExpectedScannedBytes(nprobe_);
  }

 private:
  int nprobe_;
  int rerank_;
  std::unique_ptr<ann::IvfPqIndex> index_;
};

class HnswEngine : public ShardEngine {
 public:
  HnswEngine(ann::Matrix data, ann::Metric metric,
             const ann::HnswOptions& options, int ef_search, Rng& rng)
      : ef_search_(ef_search), dim_(data.dim()),
        index_(std::move(data), metric, options, rng) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    // The counted overload keeps the eval tally in a caller-owned
    // slot, so the (shard x query-block) tasks of one batch search
    // this shard concurrently; only the stats fold below serializes.
    int64_t evals = 0;
    auto results = index_.SearchBatch(queries, k, ef_search_, &evals);
    // Graph search has no closed-form scan estimate; charge the
    // measured distance evaluations at full precision.
    *scan_bytes += static_cast<double>(evals) *
                   static_cast<double>(dim_) * sizeof(float);
    // Lifetime integer totals: block completion order cannot change
    // the running average (unlike a "most recent block" snapshot).
    std::lock_guard<std::mutex> guard(mutex_);
    total_evals_ += evals;
    total_queries_ += static_cast<int64_t>(results.size());
    return results;
  }

  double BytesPerQuery() const override {
    // Measured average over every query searched so far; 0 before any.
    std::lock_guard<std::mutex> guard(mutex_);
    if (total_queries_ == 0) {
      return 0.0;
    }
    return static_cast<double>(total_evals_) /
           static_cast<double>(total_queries_) *
           static_cast<double>(dim_) * sizeof(float);
  }

 private:
  int ef_search_;
  size_t dim_;
  ann::HnswIndex index_;
  mutable std::mutex mutex_;
  mutable int64_t total_evals_ = 0;
  mutable int64_t total_queries_ = 0;
};

class ScannTreeEngine : public ShardEngine {
 public:
  ScannTreeEngine(ann::Matrix data, const ann::ScannTreeOptions& options,
                  int beam, int rerank, Rng& rng)
      : beam_(beam), rerank_(rerank),
        index_(std::move(data), options, rng) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_.SearchBatch(queries, k, beam_, rerank_);
  }

  double BytesPerQuery() const override {
    return index_.ExpectedLeafBytesScanned(beam_);
  }

 private:
  int beam_;
  int rerank_;
  ann::ScannTree index_;
};

std::unique_ptr<ShardEngine> BuildEngine(ann::Matrix data,
                                         const ShardedIndexOptions& options,
                                         Rng& rng) {
  switch (options.backend) {
    case ShardBackend::kFlat:
      return std::make_unique<FlatEngine>(std::move(data), options.metric);
    case ShardBackend::kIvf:
      return std::make_unique<IvfEngine>(std::move(data), options.metric,
                                         options.ivf, options.nprobe, rng);
    case ShardBackend::kIvfPq:
      return std::make_unique<IvfPqEngine>(std::move(data), options.ivfpq,
                                           options.nprobe, options.rerank,
                                           rng);
    case ShardBackend::kHnsw:
      return std::make_unique<HnswEngine>(std::move(data), options.metric,
                                          options.hnsw, options.ef_search,
                                          rng);
    case ShardBackend::kScannTree:
      return std::make_unique<ScannTreeEngine>(std::move(data), options.tree,
                                               options.beam, options.rerank,
                                               rng);
  }
  RAGO_CHECK(false, "unknown shard backend");
}

}  // namespace

const char*
ShardBackendName(ShardBackend backend) {
  switch (backend) {
    case ShardBackend::kFlat: return "flat";
    case ShardBackend::kIvf: return "ivf";
    case ShardBackend::kIvfPq: return "ivfpq";
    case ShardBackend::kHnsw: return "hnsw";
    case ShardBackend::kScannTree: return "scann-tree";
  }
  RAGO_CHECK(false, "unknown shard backend");
}

double
ShardSearchStats::TotalScanBytes() const {
  double total = 0.0;
  for (const ShardStats& shard : shards) {
    total += shard.scan_bytes;
  }
  return total;
}

double
ShardSearchStats::BytesPerQueryPerShard() const {
  if (shards.empty() || num_queries == 0) {
    return 0.0;
  }
  return TotalScanBytes() /
         (static_cast<double>(num_queries) *
          static_cast<double>(shards.size()));
}

double
ShardSearchStats::MaxShardSeconds() const {
  double worst = 0.0;
  for (const ShardStats& shard : shards) {
    worst = std::max(worst, shard.wall_seconds);
  }
  return worst;
}

/// One logical retrieval server: its global ids and search engine.
struct ShardedIndex::Shard {
  std::vector<int64_t> ids;  ///< Local row -> global id (ascending).
  std::unique_ptr<ShardEngine> engine;  ///< Null for empty shards.
};

ShardedIndex::~ShardedIndex() = default;

// Hand-written because pool_mutex_ pins the implicit move; the moved-to
// index re-creates its owned pool lazily on first use.
ShardedIndex::ShardedIndex(ShardedIndex&& other) noexcept
    : options_(std::move(other.options_)),
      total_rows_(other.total_rows_),
      dim_(other.dim_),
      partition_(std::move(other.partition_)),
      shards_(std::move(other.shards_)) {}

ShardedIndex::ShardedIndex(ann::Matrix data,
                           const ShardedIndexOptions& options)
    : options_(options), total_rows_(data.rows()), dim_(data.dim()) {
  RAGO_REQUIRE(options_.num_shards >= 1, "need at least one shard");
  RAGO_REQUIRE(options_.num_threads >= 0,
               "num_threads must be >= 0 (0 = hardware concurrency)");
  RAGO_REQUIRE(options_.query_block >= 1,
               "query_block must be >= 1");
  if (options_.modeled_db.has_value()) {
    options_.modeled_db->Validate();
    const int min_servers = retrieval::ScannModel::MinServersForCapacity(
        *options_.modeled_db, options_.modeled_server);
    RAGO_REQUIRE(
        options_.num_shards >= min_servers,
        "shard count under-provisions the modeled database: " +
            std::to_string(options_.num_shards) + " shards < " +
            std::to_string(min_servers) +
            " servers required for DRAM capacity");
  }
  partition_ =
      PartitionRows(data, options_.num_shards, options_.partitioner,
                    options_.seed);

  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    shard.ids = partition_.shard_rows[static_cast<size_t>(s)];
    if (shard.ids.empty()) {
      continue;  // Hash partitions may leave tiny databases uneven.
    }
    ann::Matrix rows(shard.ids.size(), dim_);
    for (size_t i = 0; i < shard.ids.size(); ++i) {
      rows.CopyRowFrom(data, static_cast<size_t>(shard.ids[i]), i);
    }
    // Independent deterministic build stream per shard.
    Rng shard_rng(Rng::DeriveSeed(options_.seed,
                                  static_cast<uint64_t>(s)));
    shard.engine = BuildEngine(std::move(rows), options_, shard_rng);
  }
}

std::vector<ann::Neighbor>
ShardedIndex::Search(const float* query, size_t k) const {
  ann::Matrix one(1, dim_);
  for (size_t d = 0; d < dim_; ++d) {
    one.Row(0)[d] = query[d];
  }
  return SearchBatch(one, k).front();
}

ThreadPool*
ShardedIndex::EffectivePool(ThreadPool* pool) const {
  if (pool != nullptr) {
    return pool;
  }
  const int threads = ResolveNumThreads(options_.num_threads);
  if (threads <= 1) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (owned_pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return owned_pool_.get();
}

std::vector<std::vector<ann::Neighbor>>
ShardedIndex::SearchBatch(const ann::Matrix& queries, size_t k,
                          ThreadPool* pool,
                          ShardSearchStats* stats) const {
  RAGO_REQUIRE(queries.dim() == dim_, "query dimensionality mismatch");
  RAGO_REQUIRE(k >= 1, "top-k requires k >= 1");
  pool = EffectivePool(pool);
  const size_t num_queries = queries.rows();
  const size_t num_shards = shards_.size();

  // --- Scatter: (shard x query-block) tasks into task-indexed slots.
  // Sub-shard blocks keep workers busy when a large batch lands on few
  // shards; the fixed block size makes the decomposition — and all
  // block-ordered accumulation below — thread-count-invariant. ---
  const size_t block = static_cast<size_t>(options_.query_block);
  const size_t num_blocks = (num_queries + block - 1) / block;
  struct BlockResult {
    std::vector<std::vector<ann::Neighbor>> results;
    double scan_bytes = 0.0;
    double wall_seconds = 0.0;
  };
  std::vector<BlockResult> blocks(num_shards * num_blocks);
  std::vector<ShardStats> shard_stats(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_stats[s].rows = static_cast<int64_t>(shards_[s].ids.size());
  }
  // Materialize each block's query rows once, shared by every shard
  // (and outside the timed window). The single-block fast path feeds
  // `queries` straight through.
  std::vector<ann::Matrix> chunks;
  if (num_blocks > 1) {
    chunks.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t begin = b * block;
      const size_t end = std::min(num_queries, begin + block);
      ann::Matrix chunk(end - begin, dim_);
      for (size_t i = begin; i < end; ++i) {
        chunk.CopyRowFrom(queries, i, i - begin);
      }
      chunks.push_back(std::move(chunk));
    }
  }
  ParallelFor(pool, blocks.size(), [&](size_t t) {
    const size_t s = t / num_blocks;
    const size_t b = t % num_blocks;
    const Shard& shard = shards_[s];
    if (shard.engine == nullptr) {
      return;
    }
    BlockResult& slot = blocks[t];
    const ann::Matrix& chunk = num_blocks == 1 ? queries : chunks[b];
    // Measurement only (per-shard scan wall_s). rago-lint: allow(wallclock)
    const Clock::time_point start = Clock::now();
    std::vector<std::vector<ann::Neighbor>> results =
        shard.engine->SearchBatch(chunk, k, &slot.scan_bytes);
    // Map shard-local row ids to global ids. Rows are assigned in
    // ascending global order, so the mapping is monotone and the
    // merged tie-break matches the single-index one exactly.
    for (auto& result : results) {
      for (ann::Neighbor& neighbor : result) {
        neighbor.id = shard.ids[static_cast<size_t>(neighbor.id)];
      }
    }
    slot.results = std::move(results);
    slot.wall_seconds = SecondsSince(start);
  });

  // Fold block slots into per-shard stats in block order, so the
  // floating-point scan_bytes sum never depends on completion order.
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t b = 0; b < num_blocks; ++b) {
      const BlockResult& slot = blocks[s * num_blocks + b];
      shard_stats[s].scan_bytes += slot.scan_bytes;
      shard_stats[s].wall_seconds += slot.wall_seconds;
    }
  }

  // --- Gather: merge per-shard heaps with the deterministic order. ---
  // Measurement only (merge wall_s). rago-lint: allow(wallclock)
  const Clock::time_point merge_start = Clock::now();
  std::vector<std::vector<ann::Neighbor>> merged(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    ann::TopK topk(k);
    const size_t b = q / block;
    const size_t offset = q % block;
    for (size_t s = 0; s < num_shards; ++s) {
      const BlockResult& slot = blocks[s * num_blocks + b];
      if (slot.results.empty()) {
        continue;  // Empty shard produced no result lists.
      }
      for (const ann::Neighbor& neighbor : slot.results[offset]) {
        topk.Push(neighbor.dist, neighbor.id);
      }
    }
    merged[q] = topk.SortedTake();
  }
  const double merge_seconds = SecondsSince(merge_start);

  if (stats != nullptr) {
    stats->shards = std::move(shard_stats);
    stats->merge_seconds = merge_seconds;
    stats->num_queries = static_cast<int64_t>(num_queries);
  }
  return merged;
}

double
ShardedIndex::BytesPerQueryPerShardEstimate() const {
  double total = 0.0;
  int populated = 0;
  for (const Shard& shard : shards_) {
    if (shard.engine != nullptr) {
      total += shard.engine->BytesPerQuery();
      ++populated;
    }
  }
  return populated > 0 ? total / populated : 0.0;
}

}  // namespace rago::serving
