#include "retrieval/serving/sharded_index.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/flat_index.h"

namespace rago::serving {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Uniform per-shard search engine. Implementations wrap one functional
 * index, run its batched entry point, and report the (estimated or
 * measured) bytes scanned — the quantity the analytical cost models
 * price, and what calibration feeds back to them.
 */
class ShardEngine {
 public:
  virtual ~ShardEngine() = default;

  /// Shard-local top-k per query; adds scanned bytes to `*scan_bytes`.
  virtual std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const = 0;

  /// Estimated bytes one query scans in this shard.
  virtual double BytesPerQuery() const = 0;
};

class FlatEngine : public ShardEngine {
 public:
  FlatEngine(ann::Matrix data, ann::Metric metric)
      : index_(std::move(data), metric) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes +=
        BytesPerQuery() * static_cast<double>(queries.rows());
    return index_.SearchBatch(queries, k);
  }

  double BytesPerQuery() const override {
    return static_cast<double>(index_.size()) *
           static_cast<double>(index_.dim()) * sizeof(float);
  }

 private:
  ann::FlatIndex index_;
};

class IvfEngine : public ShardEngine {
 public:
  IvfEngine(ann::Matrix data, ann::Metric metric, ann::IvfOptions options,
            int nprobe, Rng& rng)
      : nprobe_(nprobe), dim_(data.dim()) {
    options.nlist = std::max(
        1, std::min(options.nlist, static_cast<int>(data.rows())));
    index_ = std::make_unique<ann::IvfIndex>(std::move(data), metric,
                                             options, rng);
  }

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_->SearchBatch(queries, k, nprobe_);
  }

  double BytesPerQuery() const override {
    // In-list exact distances plus the coarse centroid scan.
    return (index_->ExpectedScannedVectors(nprobe_) + index_->nlist()) *
           static_cast<double>(dim_) * sizeof(float);
  }

 private:
  int nprobe_;
  size_t dim_;
  std::unique_ptr<ann::IvfIndex> index_;
};

class IvfPqEngine : public ShardEngine {
 public:
  IvfPqEngine(ann::Matrix data, ann::IvfPqOptions options, int nprobe,
              int rerank, Rng& rng)
      : nprobe_(nprobe), rerank_(rerank) {
    options.nlist = std::max(
        1, std::min(options.nlist, static_cast<int>(data.rows())));
    index_ =
        std::make_unique<ann::IvfPqIndex>(std::move(data), options, rng);
  }

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_->SearchBatch(queries, k, nprobe_, rerank_);
  }

  double BytesPerQuery() const override {
    return index_->ExpectedScannedBytes(nprobe_);
  }

 private:
  int nprobe_;
  int rerank_;
  std::unique_ptr<ann::IvfPqIndex> index_;
};

class HnswEngine : public ShardEngine {
 public:
  HnswEngine(ann::Matrix data, ann::Metric metric,
             const ann::HnswOptions& options, int ef_search, Rng& rng)
      : ef_search_(ef_search), dim_(data.dim()),
        index_(std::move(data), metric, options, rng) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    // HnswIndex::Search writes a mutable eval counter, so concurrent
    // SearchBatch calls on the same ShardedIndex must serialize per
    // shard to keep the advertised const-thread-compatibility. Within
    // one batch each shard is searched by exactly one worker, so this
    // lock is uncontended on the hot path.
    std::lock_guard<std::mutex> guard(mutex_);
    auto results = index_.SearchBatch(queries, k, ef_search_);
    // Graph search has no closed-form scan estimate; charge the
    // measured distance evaluations at full precision.
    const double batch_bytes =
        static_cast<double>(index_.last_distance_evals()) *
        static_cast<double>(dim_) * sizeof(float);
    *scan_bytes += batch_bytes;
    if (!results.empty()) {
      bytes_per_query_ = batch_bytes / static_cast<double>(results.size());
    }
    return results;
  }

  double BytesPerQuery() const override {
    // Measured on the most recent batch; 0 before any search.
    std::lock_guard<std::mutex> guard(mutex_);
    return bytes_per_query_;
  }

 private:
  int ef_search_;
  size_t dim_;
  ann::HnswIndex index_;
  mutable std::mutex mutex_;
  mutable double bytes_per_query_ = 0.0;
};

class ScannTreeEngine : public ShardEngine {
 public:
  ScannTreeEngine(ann::Matrix data, const ann::ScannTreeOptions& options,
                  int beam, int rerank, Rng& rng)
      : beam_(beam), rerank_(rerank),
        index_(std::move(data), options, rng) {}

  std::vector<std::vector<ann::Neighbor>> SearchBatch(
      const ann::Matrix& queries, size_t k, double* scan_bytes) const
      override {
    *scan_bytes += BytesPerQuery() * static_cast<double>(queries.rows());
    return index_.SearchBatch(queries, k, beam_, rerank_);
  }

  double BytesPerQuery() const override {
    return index_.ExpectedLeafBytesScanned(beam_);
  }

 private:
  int beam_;
  int rerank_;
  ann::ScannTree index_;
};

std::unique_ptr<ShardEngine> BuildEngine(ann::Matrix data,
                                         const ShardedIndexOptions& options,
                                         Rng& rng) {
  switch (options.backend) {
    case ShardBackend::kFlat:
      return std::make_unique<FlatEngine>(std::move(data), options.metric);
    case ShardBackend::kIvf:
      return std::make_unique<IvfEngine>(std::move(data), options.metric,
                                         options.ivf, options.nprobe, rng);
    case ShardBackend::kIvfPq:
      return std::make_unique<IvfPqEngine>(std::move(data), options.ivfpq,
                                           options.nprobe, options.rerank,
                                           rng);
    case ShardBackend::kHnsw:
      return std::make_unique<HnswEngine>(std::move(data), options.metric,
                                          options.hnsw, options.ef_search,
                                          rng);
    case ShardBackend::kScannTree:
      return std::make_unique<ScannTreeEngine>(std::move(data), options.tree,
                                               options.beam, options.rerank,
                                               rng);
  }
  RAGO_CHECK(false, "unknown shard backend");
}

}  // namespace

const char*
ShardBackendName(ShardBackend backend) {
  switch (backend) {
    case ShardBackend::kFlat: return "flat";
    case ShardBackend::kIvf: return "ivf";
    case ShardBackend::kIvfPq: return "ivfpq";
    case ShardBackend::kHnsw: return "hnsw";
    case ShardBackend::kScannTree: return "scann-tree";
  }
  RAGO_CHECK(false, "unknown shard backend");
}

double
ShardSearchStats::TotalScanBytes() const {
  double total = 0.0;
  for (const ShardStats& shard : shards) {
    total += shard.scan_bytes;
  }
  return total;
}

double
ShardSearchStats::BytesPerQueryPerShard() const {
  if (shards.empty() || num_queries == 0) {
    return 0.0;
  }
  return TotalScanBytes() /
         (static_cast<double>(num_queries) *
          static_cast<double>(shards.size()));
}

double
ShardSearchStats::MaxShardSeconds() const {
  double worst = 0.0;
  for (const ShardStats& shard : shards) {
    worst = std::max(worst, shard.wall_seconds);
  }
  return worst;
}

/// One logical retrieval server: its global ids and search engine.
struct ShardedIndex::Shard {
  std::vector<int64_t> ids;  ///< Local row -> global id (ascending).
  std::unique_ptr<ShardEngine> engine;  ///< Null for empty shards.
};

ShardedIndex::~ShardedIndex() = default;
ShardedIndex::ShardedIndex(ShardedIndex&&) noexcept = default;

ShardedIndex::ShardedIndex(ann::Matrix data,
                           const ShardedIndexOptions& options)
    : options_(options), total_rows_(data.rows()), dim_(data.dim()) {
  RAGO_REQUIRE(options_.num_shards >= 1, "need at least one shard");
  if (options_.modeled_db.has_value()) {
    options_.modeled_db->Validate();
    const int min_servers = retrieval::ScannModel::MinServersForCapacity(
        *options_.modeled_db, options_.modeled_server);
    RAGO_REQUIRE(
        options_.num_shards >= min_servers,
        "shard count under-provisions the modeled database: " +
            std::to_string(options_.num_shards) + " shards < " +
            std::to_string(min_servers) +
            " servers required for DRAM capacity");
  }
  partition_ =
      PartitionRows(data, options_.num_shards, options_.partitioner,
                    options_.seed);

  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    shard.ids = partition_.shard_rows[static_cast<size_t>(s)];
    if (shard.ids.empty()) {
      continue;  // Hash partitions may leave tiny databases uneven.
    }
    ann::Matrix rows(shard.ids.size(), dim_);
    for (size_t i = 0; i < shard.ids.size(); ++i) {
      rows.CopyRowFrom(data, static_cast<size_t>(shard.ids[i]), i);
    }
    // Independent deterministic build stream per shard.
    Rng shard_rng(Rng::DeriveSeed(options_.seed,
                                  static_cast<uint64_t>(s)));
    shard.engine = BuildEngine(std::move(rows), options_, shard_rng);
  }
}

std::vector<ann::Neighbor>
ShardedIndex::Search(const float* query, size_t k) const {
  ann::Matrix one(1, dim_);
  for (size_t d = 0; d < dim_; ++d) {
    one.Row(0)[d] = query[d];
  }
  return SearchBatch(one, k).front();
}

std::vector<std::vector<ann::Neighbor>>
ShardedIndex::SearchBatch(const ann::Matrix& queries, size_t k,
                          ThreadPool* pool,
                          ShardSearchStats* stats) const {
  RAGO_REQUIRE(queries.dim() == dim_, "query dimensionality mismatch");
  RAGO_REQUIRE(k >= 1, "top-k requires k >= 1");
  const size_t num_queries = queries.rows();
  const size_t num_shards = shards_.size();

  // --- Scatter: per-shard batched search into shard-indexed slots. ---
  std::vector<std::vector<std::vector<ann::Neighbor>>> per_shard(
      num_shards);
  std::vector<ShardStats> shard_stats(num_shards);
  ParallelFor(pool, num_shards, [&](size_t s) {
    const Shard& shard = shards_[s];
    ShardStats& local = shard_stats[s];
    local.rows = static_cast<int64_t>(shard.ids.size());
    if (shard.engine == nullptr) {
      return;
    }
    const Clock::time_point start = Clock::now();
    auto results = shard.engine->SearchBatch(queries, k, &local.scan_bytes);
    // Map shard-local row ids to global ids. Rows are assigned in
    // ascending global order, so the mapping is monotone and the
    // merged tie-break matches the single-index one exactly.
    for (auto& result : results) {
      for (ann::Neighbor& neighbor : result) {
        neighbor.id = shard.ids[static_cast<size_t>(neighbor.id)];
      }
    }
    per_shard[s] = std::move(results);
    local.wall_seconds = SecondsSince(start);
  });

  // --- Gather: merge per-shard heaps with the deterministic order. ---
  const Clock::time_point merge_start = Clock::now();
  std::vector<std::vector<ann::Neighbor>> merged(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    ann::TopK topk(k);
    for (size_t s = 0; s < num_shards; ++s) {
      if (per_shard[s].empty()) {
        continue;  // Empty shard produced no result lists.
      }
      for (const ann::Neighbor& neighbor : per_shard[s][q]) {
        topk.Push(neighbor.dist, neighbor.id);
      }
    }
    merged[q] = topk.SortedTake();
  }
  const double merge_seconds = SecondsSince(merge_start);

  if (stats != nullptr) {
    stats->shards = std::move(shard_stats);
    stats->merge_seconds = merge_seconds;
    stats->num_queries = static_cast<int64_t>(num_queries);
  }
  return merged;
}

double
ShardedIndex::BytesPerQueryPerShardEstimate() const {
  double total = 0.0;
  int populated = 0;
  for (const Shard& shard : shards_) {
    if (shard.engine != nullptr) {
      total += shard.engine->BytesPerQuery();
      ++populated;
    }
  }
  return populated > 0 ? total / populated : 0.0;
}

}  // namespace rago::serving
