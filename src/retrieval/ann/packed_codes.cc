#include "retrieval/ann/packed_codes.h"

#include "common/check.h"

namespace rago::ann {

using kernels::kPackedBlock;

PackedCodes::PackedCodes(size_t m) : m_(m) {
  RAGO_REQUIRE(m > 0, "PackedCodes requires at least one subspace");
}

PackedCodes::PackedCodes(const uint8_t* codes, size_t num_codes, size_t m)
    : PackedCodes(m) {
  packed_.reserve((num_codes + kPackedBlock - 1) / kPackedBlock *
                  kPackedBlock * m);
  for (size_t i = 0; i < num_codes; ++i) {
    Append(codes + i * m);
  }
}

void
PackedCodes::Append(const uint8_t* code) {
  RAGO_CHECK(m_ > 0, "Append on a width-less PackedCodes");
  const size_t lane = num_codes_ % kPackedBlock;
  if (lane == 0) {
    // Open a fresh zero-padded block; padding bytes stay 0 (a valid
    // table index) so kernels may compute the unused lanes safely.
    packed_.resize(packed_.size() + kPackedBlock * m_, 0);
  }
  uint8_t* block =
      packed_.data() + (num_codes_ / kPackedBlock) * kPackedBlock * m_;
  for (size_t s = 0; s < m_; ++s) {
    block[s * kPackedBlock + lane] = code[s];
  }
  ++num_codes_;
}

void
PackedCodes::Unpack(size_t i, uint8_t* out) const {
  RAGO_CHECK(i < num_codes_, "PackedCodes::Unpack index out of range");
  const uint8_t* block =
      packed_.data() + (i / kPackedBlock) * kPackedBlock * m_;
  const size_t lane = i % kPackedBlock;
  for (size_t s = 0; s < m_; ++s) {
    out[s] = block[s * kPackedBlock + lane];
  }
}

std::vector<uint8_t>
PackedCodes::UnpackAll() const {
  std::vector<uint8_t> out(num_codes_ * m_);
  for (size_t i = 0; i < num_codes_; ++i) {
    Unpack(i, out.data() + i * m_);
  }
  return out;
}

}  // namespace rago::ann
