/**
 * @file rerank.h
 * Exact re-ranking of an approximate-search shortlist.
 *
 * Shared by the PQ-based indexes (IVF-PQ, ScaNN tree): the shortlist
 * rows are scattered across the raw database, so they are gathered
 * into one contiguous block and scored with the batched L2 kernel.
 */
#ifndef RAGO_RETRIEVAL_ANN_RERANK_H
#define RAGO_RETRIEVAL_ANN_RERANK_H

#include <vector>

#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

/**
 * Re-scores `shortlist` (ids into `raw`) with exact L2 distances to
 * `query` and returns the top `k`. Pushes in shortlist order
 * (ascending approximate distance), so equal exact distances keep the
 * deterministic TopK id tie-break.
 */
inline std::vector<Neighbor> RerankExactL2(
    const std::vector<Neighbor>& shortlist, const float* query,
    const Matrix& raw, size_t k) {
  Matrix gathered(shortlist.size(), raw.dim());
  for (size_t i = 0; i < shortlist.size(); ++i) {
    gathered.CopyRowFrom(raw, static_cast<size_t>(shortlist[i].id), i);
  }
  std::vector<float> dists(shortlist.size());
  kernels::DistanceBatch(Metric::kL2, query, gathered.data(),
                         shortlist.size(), raw.dim(), dists.data());
  TopK exact(k);
  for (size_t i = 0; i < shortlist.size(); ++i) {
    exact.Push(dists[i], shortlist[i].id);
  }
  return exact.SortedTake();
}

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_RERANK_H
