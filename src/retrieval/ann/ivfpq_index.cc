#include "retrieval/ann/ivfpq_index.h"

#include <algorithm>

#include "common/check.h"
#include "retrieval/ann/coarse_rank.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/kmeans.h"
#include "retrieval/ann/rerank.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

IvfPqIndex::IvfPqIndex(Matrix data, const IvfPqOptions& options, Rng& rng)
    : num_vectors_(data.rows()),
      nlist_(options.nlist),
      encode_residuals_(options.encode_residuals) {
  RAGO_REQUIRE(!data.empty(), "IVF-PQ requires a non-empty database");
  RAGO_REQUIRE(options.nlist > 0, "nlist must be positive");
  RAGO_REQUIRE(static_cast<size_t>(options.nlist) <= data.rows(),
               "nlist cannot exceed the database size");

  const size_t dim = data.dim();

  KMeansOptions kmeans_options;
  kmeans_options.max_iterations = options.kmeans_iterations;
  KMeansResult coarse = TrainKMeans(data, nlist_, rng, kmeans_options);
  centroids_ = std::move(coarse.centroids);

  // Training material for PQ: residuals against the assigned centroid
  // (tighter codebooks) or the raw vectors.
  Matrix train(data.rows(), dim);
  for (size_t i = 0; i < data.rows(); ++i) {
    const float* row = data.Row(i);
    const float* centroid =
        centroids_.Row(static_cast<size_t>(coarse.assignments[i]));
    float* dst = train.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      dst[d] = encode_residuals_ ? row[d] - centroid[d] : row[d];
    }
  }
  pq_ = std::make_unique<ProductQuantizer>(train, options.pq_subspaces, rng,
                                           options.kmeans_iterations);

  ids_.resize(static_cast<size_t>(nlist_));
  codes_.assign(static_cast<size_t>(nlist_), PackedCodes(pq_->CodeBytes()));
  std::vector<uint8_t> code(pq_->CodeBytes());
  for (size_t i = 0; i < data.rows(); ++i) {
    const auto cluster = static_cast<size_t>(coarse.assignments[i]);
    pq_->Encode(train.Row(i), code.data());
    ids_[cluster].push_back(static_cast<int64_t>(i));
    codes_[cluster].Append(code.data());
  }

  if (options.keep_raw_vectors) {
    raw_ = std::move(data);
  }
}

std::vector<Neighbor>
IvfPqIndex::SearchLists(const float* query, size_t k, int rerank,
                        const std::vector<int32_t>& clusters) const {
  RAGO_REQUIRE(rerank == 0 || !raw_.empty(),
               "re-ranking requires keep_raw_vectors at build time");
  const size_t dim = centroids_.dim();

  // ADC scan inside probed lists. The candidate pool is max(k, rerank)
  // wide so re-ranking has material to work with.
  const size_t pool = std::max(k, static_cast<size_t>(rerank));
  TopK candidates(pool);
  std::vector<float> shifted(dim);
  for (int32_t cluster : clusters) {
    const auto c = static_cast<size_t>(cluster);
    const float* centroid = centroids_.Row(c);
    const float* table_query = query;
    if (encode_residuals_) {
      for (size_t d = 0; d < dim; ++d) {
        shifted[d] = query[d] - centroid[d];
      }
      table_query = shifted.data();
    }
    const std::vector<float> table = pq_->BuildAdcTable(table_query);
    const std::vector<int64_t>& list_ids = ids_[c];
    kernels::ScanCodesPackedIntoTopK(table.data(), codes_[c].data(),
                                     list_ids.size(), pq_->CodeBytes(),
                                     list_ids.data(), /*base_id=*/0,
                                     candidates);
  }

  std::vector<Neighbor> approx = candidates.SortedTake();
  if (rerank <= 0) {
    if (approx.size() > k) {
      approx.resize(k);
    }
    return approx;
  }
  return RerankExactL2(approx, query, raw_, k);
}

std::vector<Neighbor>
IvfPqIndex::Search(const float* query, size_t k, int nprobe,
                   int rerank) const {
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  // Rank coarse clusters.
  TopK cluster_rank(static_cast<size_t>(std::min(nprobe, nlist_)));
  kernels::ScanRowsIntoTopK(Metric::kL2, query, centroids_.data(),
                            centroids_.rows(), centroids_.dim(),
                            /*ids=*/nullptr, /*base_id=*/0, cluster_rank);
  std::vector<int32_t> clusters;
  for (const Neighbor& cluster : cluster_rank.SortedTake()) {
    clusters.push_back(static_cast<int32_t>(cluster.id));
  }
  return SearchLists(query, k, rerank, clusters);
}

std::vector<std::vector<Neighbor>>
IvfPqIndex::SearchBatch(const Matrix& queries, size_t k, int nprobe,
                        int rerank) const {
  RAGO_REQUIRE(queries.dim() == pq_->dim(),
               "query dimensionality mismatch");
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  // Whole-block coarse ranking through the micro-tile kernel;
  // bit-identical to per-query Search's ranking.
  const std::vector<std::vector<int32_t>> ranked =
      RankCentroidsBatch(queries, centroids_, nprobe);
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = SearchLists(queries.Row(q), k, rerank, ranked[q]);
  }
  return out;
}

double
IvfPqIndex::ExpectedScannedBytes(int nprobe) const {
  const double probed = std::min(nprobe, nlist_);
  return static_cast<double>(num_vectors_) * probed / nlist_ *
         static_cast<double>(pq_->CodeBytes());
}

}  // namespace rago::ann
