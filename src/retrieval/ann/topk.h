/**
 * @file topk.h
 * Bounded top-k accumulator for nearest-neighbor search.
 */
#ifndef RAGO_RETRIEVAL_ANN_TOPK_H
#define RAGO_RETRIEVAL_ANN_TOPK_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"

namespace rago::ann {

/// One search hit: distance (smaller is better) and database id.
struct Neighbor {
  float dist = 0.0f;
  int64_t id = -1;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) {
      return a.dist < b.dist;
    }
    return a.id < b.id;  // Deterministic tie-break.
  }

  friend bool operator>(const Neighbor& a, const Neighbor& b) {
    return b < a;
  }
};

/// Keeps the k smallest-distance candidates seen so far.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {
    RAGO_REQUIRE(k > 0, "top-k requires k >= 1");
  }

  /// Offers a candidate; cheap rejection once the heap is full.
  void Push(float dist, int64_t id) {
    const Neighbor candidate{dist, id};
    if (heap_.size() < k_) {
      heap_.push(candidate);
    } else if (candidate < heap_.top()) {
      // Full Neighbor ordering (not just distance) so equal-distance
      // ties resolve to the lower id regardless of push order.
      heap_.pop();
      heap_.push(candidate);
    }
  }

  /// Current admission threshold (worst kept distance), or +inf.
  float Threshold() const {
    return heap_.size() < k_ ? std::numeric_limits<float>::infinity()
                             : heap_.top().dist;
  }

  size_t size() const { return heap_.size(); }

  /// Extracts results sorted by ascending distance; empties the heap.
  std::vector<Neighbor> SortedTake() {
    std::vector<Neighbor> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  // Max-heap on distance so the worst candidate is evictable in O(log k).
  std::priority_queue<Neighbor> heap_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_TOPK_H
