#include "retrieval/ann/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {
namespace {

/// Points per assignment micro-tile: two 4-query kernel groups, so the
/// centroid block is streamed once per 8 points.
constexpr size_t kAssignTile = 8;

/// k-means++ seeding: each new centroid is drawn proportionally to the
/// squared distance from the nearest already-chosen centroid.
Matrix SeedPlusPlus(const Matrix& data, int k, Rng& rng) {
  const size_t n = data.rows();
  const size_t dim = data.dim();
  Matrix centroids(static_cast<size_t>(k), dim);

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  std::vector<float> dist(n);
  size_t first = rng.NextBounded(n);
  centroids.CopyRowFrom(data, first, 0);

  for (int c = 1; c < k; ++c) {
    const float* last = centroids.Row(static_cast<size_t>(c - 1));
    // One batched scan of the whole database against the newest
    // centroid replaces n single-row distance calls.
    kernels::DistanceBatch(Metric::kL2, last, data.data(), n, dim,
                           dist.data());
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], dist[i]);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.NextBounded(n);  // All points identical.
    }
    centroids.CopyRowFrom(data, chosen, static_cast<size_t>(c));
  }
  return centroids;
}

Matrix SeedRandom(const Matrix& data, int k, Rng& rng) {
  Matrix centroids(static_cast<size_t>(k), data.dim());
  for (int c = 0; c < k; ++c) {
    centroids.CopyRowFrom(data, rng.NextBounded(data.rows()),
                          static_cast<size_t>(c));
  }
  return centroids;
}

}  // namespace

int32_t
NearestCentroid(const Matrix& centroids, const float* vec) {
  return static_cast<int32_t>(kernels::ArgMinL2(
      vec, centroids.data(), centroids.rows(), centroids.dim()));
}

KMeansResult
TrainKMeans(const Matrix& data, int k, Rng& rng, const KMeansOptions& options) {
  RAGO_REQUIRE(k > 0, "k must be positive");
  RAGO_REQUIRE(static_cast<size_t>(k) <= data.rows(),
               "k-means requires at least k input rows");
  const size_t n = data.rows();
  const size_t dim = data.dim();
  const auto num_centroids = static_cast<size_t>(k);

  KMeansResult result;
  result.centroids = options.plus_plus_seeding ? SeedPlusPlus(data, k, rng)
                                               : SeedRandom(data, k, rng);
  result.assignments.assign(n, 0);

  std::vector<double> sums(num_centroids * dim);
  std::vector<int64_t> counts(num_centroids);
  std::vector<float> tile_dists(kAssignTile * num_centroids);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step: micro-tile the points against the centroid
    // block, then argmin each point's distance row (first index wins
    // ties, like the sequential scan this replaces).
    double inertia = 0.0;
    std::vector<size_t> farthest_per_cluster(num_centroids, 0);
    std::vector<float> farthest_dist(num_centroids, -1.0f);
    for (size_t start = 0; start < n; start += kAssignTile) {
      const size_t count =
          n - start < kAssignTile ? n - start : kAssignTile;
      kernels::DistanceTile(Metric::kL2, data.Row(start), count,
                            result.centroids.data(), num_centroids, dim,
                            tile_dists.data());
      for (size_t j = 0; j < count; ++j) {
        const size_t i = start + j;
        const float* dists = tile_dists.data() + j * num_centroids;
        size_t c = 0;
        float d = dists[0];
        for (size_t cc = 1; cc < num_centroids; ++cc) {
          if (dists[cc] < d) {
            d = dists[cc];
            c = cc;
          }
        }
        result.assignments[i] = static_cast<int32_t>(c);
        inertia += d;
        if (d > farthest_dist[c]) {
          farthest_dist[c] = d;
          farthest_per_cluster[c] = i;
        }
      }
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(result.assignments[i]);
      const float* row = data.Row(i);
      for (size_t d = 0; d < dim; ++d) {
        sums[c * dim + d] += row[d];
      }
      ++counts[c];
    }
    for (size_t c = 0; c < num_centroids; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the globally farthest point of
        // the largest cluster to keep k live centroids.
        size_t donor = 0;
        float worst = -1.0f;
        for (size_t cc = 0; cc < num_centroids; ++cc) {
          if (farthest_dist[cc] > worst) {
            worst = farthest_dist[cc];
            donor = cc;
          }
        }
        result.centroids.CopyRowFrom(data, farthest_per_cluster[donor], c);
        continue;
      }
      float* centroid = result.centroids.Row(c);
      for (size_t d = 0; d < dim; ++d) {
        centroid[d] =
            static_cast<float>(sums[c * dim + d] / counts[c]);
      }
    }

    // Convergence check on relative inertia improvement.
    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          (prev_inertia - inertia) / std::max(prev_inertia, 1e-30);
      if (rel >= 0.0 && rel < options.tolerance) {
        break;
      }
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace rago::ann
