/**
 * @file distance_kernels.h
 * Batched distance-kernel layer with runtime dispatch.
 *
 * Every ANN hot path in this repo reduces to one of three scan shapes:
 *  - one query against N contiguous database rows (list / leaf scans),
 *  - a micro-tile of Q queries against N contiguous rows (batched
 *    search, k-means assignment) where each row load is amortized over
 *    all Q queries,
 *  - an ADC pass of N product-quantizer codes against a prebuilt
 *    lookup table.
 *
 * This header exposes those shapes as a function-pointer kernel table
 * with two implementations: a portable scalar reference and an
 * AVX2/FMA variant selected at runtime via CPUID. Consumers call the
 * metric-dispatching wrappers (DistanceBatch / DistanceTile /
 * ScanRowsIntoTopK / ...) and automatically run on the fastest
 * compiled-in kernels the host supports.
 *
 * Determinism contract:
 *  - Within one variant, the batch and tile kernels produce
 *    bit-identical values for the same (query, row) pair, and the
 *    scalar variant is bit-identical to the legacy sequential loops in
 *    distance.h. Scan order (and therefore every TopK id tie-break)
 *    never depends on the variant.
 *  - Across variants, SIMD reassociates the per-dimension accumulation,
 *    so distances may differ in the last few ulps. Exact search paths
 *    therefore return the same top-k *ids* under every variant unless
 *    two distinct rows' true distances differ by less than that
 *    reassociation error (sub-ulp near-ties); identical rows always
 *    compute identical distances within a variant, so duplicate
 *    tie-breaks never diverge. Approximate paths are pinned by recall
 *    parity. For guaranteed bit-exact cross-architecture
 *    reproducibility, force the scalar kernels via
 *    SetForceScalar(true) or the RAGO_FORCE_SCALAR_KERNELS=1
 *    environment variable.
 *  - The ADC kernel accumulates table entries in subspace order in
 *    every variant, so ADC distances are bit-identical across variants
 *    given the same table.
 */
#ifndef RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H
#define RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "retrieval/ann/distance.h"
#include "retrieval/ann/topk.h"

namespace rago::ann::kernels {

/// Centroids per PQ subspace the ADC kernels assume (8-bit codes).
inline constexpr size_t kAdcCentroids = 256;

/**
 * One kernel implementation set. All row pointers are float32 and may
 * be unaligned; `rows` is row-major with stride `dim`.
 */
struct KernelTable {
  const char* name;  ///< "scalar" or "avx2".

  /// out[i] = squared L2 distance of `query` to row i, i in [0, num_rows).
  void (*l2sq_batch)(const float* query, const float* rows, size_t num_rows,
                     size_t dim, float* out);

  /// out[i] = dot product of `query` with row i.
  void (*dot_batch)(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out);

  /// Micro-tile: out[q * num_rows + i] = L2Sq(queries row q, rows row i).
  void (*l2sq_tile)(const float* queries, size_t num_queries,
                    const float* rows, size_t num_rows, size_t dim,
                    float* out);

  /// Micro-tile: out[q * num_rows + i] = Dot(queries row q, rows row i).
  void (*dot_tile)(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t dim,
                   float* out);

  /**
   * ADC scan: out[i] = sum over s in [0, m) of
   * table[s * kAdcCentroids + codes[i * m + s]].
   */
  void (*adc_batch)(const float* table, const uint8_t* codes,
                    size_t num_codes, size_t m, float* out);
};

/// The portable scalar reference kernels (always available).
const KernelTable& ScalarKernels();

/// True when this binary was compiled with the AVX2/FMA kernel TU.
bool Avx2KernelsCompiled();

/// Runtime CPUID probe: does this host support AVX2 and FMA?
bool CpuSupportsAvx2();

/**
 * Forces the scalar kernels regardless of CPU support (bit-exact
 * cross-architecture reproducibility). Overrides the
 * RAGO_FORCE_SCALAR_KERNELS environment variable, which seeds the
 * initial state (any value other than empty/"0" forces scalar).
 */
void SetForceScalar(bool force);

/// Current force-scalar state (after env-variable resolution).
bool ForceScalarActive();

/**
 * The active kernel table: AVX2 when compiled in, supported by the
 * host, and not forced off; scalar otherwise. Cheap enough to call
 * per scan.
 */
const KernelTable& Active();

// ---------------------------------------------------------------------------
// Metric-dispatching conveniences over Active(). Inner-product values
// are negated (smaller = more similar), matching Distance().
// ---------------------------------------------------------------------------

/// Batched Distance(): one query vs `num_rows` contiguous rows.
void DistanceBatch(Metric metric, const float* query, const float* rows,
                   size_t num_rows, size_t dim, float* out);

/// Micro-tiled Distance(): `num_queries` x `num_rows` distance block.
void DistanceTile(Metric metric, const float* queries, size_t num_queries,
                  const float* rows, size_t num_rows, size_t dim, float* out);

/// Single-pair Distance() through the active kernels (so forced-scalar
/// runs are scalar end to end, including one-off evaluations).
float DistanceOne(Metric metric, const float* query, const float* row,
                  size_t dim);

/**
 * Scans `num_rows` contiguous rows and offers every distance to
 * `topk` in row order (so the deterministic id tie-break is preserved).
 * Candidate ids are `ids[i]` when `ids` is non-null, else `base_id + i`.
 * Tiles internally; `scratch` is grown as needed and reusable across
 * calls.
 */
void ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                      size_t num_rows, size_t dim, const int64_t* ids,
                      int64_t base_id, TopK& topk,
                      std::vector<float>& scratch);

/**
 * ADC-scans `num_codes` m-byte codes against `table` (m x kAdcCentroids,
 * subspace-major) and offers every distance to `topk` in code order.
 * Candidate ids are `ids[i]` when non-null, else `base_id + i`.
 */
void ScanCodesIntoTopK(const float* table, const uint8_t* codes,
                       size_t num_codes, size_t m, const int64_t* ids,
                       int64_t base_id, TopK& topk,
                       std::vector<float>& scratch);

/**
 * Micro-tiled multi-query scan: streams `num_rows` contiguous rows
 * once per query tile through the tile kernel and offers every
 * (query, row) distance to `heaps[query]` in ascending row order
 * (candidate ids `base_id + row`), so per-heap tie-breaks match a
 * per-query ScanRowsIntoTopK scan exactly. `heaps` must hold
 * `num_queries` accumulators. The shared core of
 * FlatIndex::SearchBatch and the IVF coarse-centroid block ranking.
 */
void ScanTileIntoTopK(Metric metric, const float* queries,
                      size_t num_queries, const float* rows,
                      size_t num_rows, size_t dim, int64_t base_id,
                      TopK* heaps);

/**
 * Index of the row nearest to `query` by squared L2 (first index wins
 * ties, matching the sequential `d < best` loops this replaces). When
 * `min_dist` is non-null it receives the winning distance.
 * `num_rows` must be positive.
 */
size_t ArgMinL2(const float* query, const float* rows, size_t num_rows,
                size_t dim, std::vector<float>& scratch,
                float* min_dist = nullptr);

// ---------------------------------------------------------------------------
// Overloads backed by one per-thread reusable scratch buffer. The scan
// helpers never nest (none calls another), so a single thread-local
// buffer suffices and per-query call sites stay allocation-free after
// a thread's first scan. Prefer the explicit-scratch overloads only
// when a caller already owns a buffer (e.g. HnswIndex::Scratch).
// ---------------------------------------------------------------------------

void ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                      size_t num_rows, size_t dim, const int64_t* ids,
                      int64_t base_id, TopK& topk);

void ScanCodesIntoTopK(const float* table, const uint8_t* codes,
                       size_t num_codes, size_t m, const int64_t* ids,
                       int64_t base_id, TopK& topk);

size_t ArgMinL2(const float* query, const float* rows, size_t num_rows,
                size_t dim, float* min_dist = nullptr);

}  // namespace rago::ann::kernels

#endif  // RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H
