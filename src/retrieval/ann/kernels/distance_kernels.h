/**
 * @file distance_kernels.h
 * Batched distance-kernel layer with runtime dispatch.
 *
 * Every ANN hot path in this repo reduces to one of three scan shapes:
 *  - one query against N contiguous database rows (list / leaf scans),
 *  - a micro-tile of Q queries against N contiguous rows (batched
 *    search, k-means assignment) where each row load is amortized over
 *    all Q queries,
 *  - an ADC pass of N product-quantizer codes against a prebuilt
 *    lookup table.
 *
 * The ADC pass comes in two layouts: the strided (code-major) layout
 * PQ encoders emit naturally, and a blocked subspace-major "packed"
 * layout (FAISS-style transposition) where each block of kPackedBlock
 * codes stores all first-subspace bytes contiguously, then all second-
 * subspace bytes, and so on — turning the SIMD variants' strided
 * per-code byte loads into one contiguous load per subspace.
 *
 * This header exposes those shapes as a function-pointer kernel table
 * with three implementations: a portable scalar reference, an AVX2/FMA
 * variant, and an AVX-512F/BW variant, selected at runtime via CPUID
 * with priority scalar < avx2 < avx512. Consumers call the
 * metric-dispatching wrappers (DistanceBatch / DistanceTile /
 * ScanRowsIntoTopK / ...) and automatically run on the fastest
 * compiled-in kernels the host supports. The RAGO_KERNEL_VARIANT
 * environment variable ("scalar", "avx2", or "avx512") caps the
 * dispatched tier for benchmarking a specific variant.
 *
 * Determinism contract:
 *  - Within one variant, the batch and tile kernels produce
 *    bit-identical values for the same (query, row) pair, and the
 *    scalar variant is bit-identical to the legacy sequential loops in
 *    distance.h. Scan order (and therefore every TopK id tie-break)
 *    never depends on the variant.
 *  - Across variants, SIMD reassociates the per-dimension accumulation
 *    of the *float* kernels (l2sq/dot batch and tile), so those
 *    distances may differ in the last few ulps. Exact search paths
 *    therefore return the same top-k *ids* under every variant unless
 *    two distinct rows' true distances differ by less than that
 *    reassociation error (sub-ulp near-ties); identical rows always
 *    compute identical distances within a variant, so duplicate
 *    tie-breaks never diverge. Approximate paths are pinned by recall
 *    parity. For guaranteed bit-exact cross-architecture
 *    reproducibility, force the scalar kernels via
 *    SetForceScalar(true) or the RAGO_FORCE_SCALAR_KERNELS=1
 *    environment variable.
 *  - The ulp caveat never applies to ADC: both ADC kernels accumulate
 *    table entries in subspace order s = 0..m-1 with lane-independent
 *    adds in every variant and both layouts, so ADC distances are
 *    bit-identical across variants — and across the strided and packed
 *    layouts — given the same table.
 *  - Degenerate ADC shapes are well-defined in every variant:
 *    num_codes == 0 writes nothing, m == 0 writes 0.0f per code.
 */
#ifndef RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H
#define RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "retrieval/ann/distance.h"
#include "retrieval/ann/topk.h"

namespace rago::ann::kernels {

/// Centroids per PQ subspace the ADC kernels assume (8-bit codes).
inline constexpr size_t kAdcCentroids = 256;

/**
 * Codes per block of the packed (subspace-major) ADC layout. Within a
 * block, byte `s * kPackedBlock + j` is subspace `s` of code `j`; the
 * final block of a list is zero-padded to full width. 32 lanes feed
 * the AVX2 variant four 8-lane groups and the AVX-512 variant two
 * 16-lane groups per subspace.
 */
inline constexpr size_t kPackedBlock = 32;

/**
 * One kernel implementation set. All row pointers are float32 and may
 * be unaligned; `rows` is row-major with stride `dim`.
 */
struct KernelTable {
  const char* name;  ///< "scalar", "avx2", or "avx512".

  /// out[i] = squared L2 distance of `query` to row i, i in [0, num_rows).
  void (*l2sq_batch)(const float* query, const float* rows, size_t num_rows,
                     size_t dim, float* out);

  /// out[i] = dot product of `query` with row i.
  void (*dot_batch)(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out);

  /// Micro-tile: out[q * num_rows + i] = L2Sq(queries row q, rows row i).
  void (*l2sq_tile)(const float* queries, size_t num_queries,
                    const float* rows, size_t num_rows, size_t dim,
                    float* out);

  /// Micro-tile: out[q * num_rows + i] = Dot(queries row q, rows row i).
  void (*dot_tile)(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t dim,
                   float* out);

  /**
   * ADC scan, strided (code-major) layout: out[i] = sum over s in
   * [0, m) of table[s * kAdcCentroids + codes[i * m + s]].
   * num_codes == 0 writes nothing; m == 0 writes 0.0f per code.
   */
  void (*adc_batch)(const float* table, const uint8_t* codes,
                    size_t num_codes, size_t m, float* out);

  /**
   * ADC scan, packed (blocked subspace-major) layout: `packed` holds
   * ceil(num_codes / kPackedBlock) zero-padded blocks of
   * kPackedBlock * m bytes where byte
   * `block * kPackedBlock * m + s * kPackedBlock + j` is subspace `s`
   * of code `block * kPackedBlock + j`. Distances are bit-identical to
   * adc_batch over the unpacked codes (same subspace-order, lane-
   * independent accumulation). Exactly `num_codes` outputs are
   * written. num_codes == 0 writes nothing; m == 0 writes 0.0f per
   * code.
   */
  void (*adc_packed)(const float* table, const uint8_t* packed,
                     size_t num_codes, size_t m, float* out);
};

/// The portable scalar reference kernels (always available).
const KernelTable& ScalarKernels();

/// True when this binary was compiled with the AVX2/FMA kernel TU.
bool Avx2KernelsCompiled();

/// Runtime CPUID probe: does this host support AVX2 and FMA?
bool CpuSupportsAvx2();

/// True when this binary was compiled with the AVX-512F/BW kernel TU.
bool Avx512KernelsCompiled();

/// Runtime CPUID probe: does this host support AVX-512F and AVX-512BW?
bool CpuSupportsAvx512();

/**
 * The compiled-in, host-supported table for a named variant ("scalar",
 * "avx2", "avx512"), independent of the dispatch state — nullptr when
 * that variant is not compiled in, not supported by this host, or the
 * name is unknown. Lets benches and tests compare specific tiers
 * side by side.
 */
const KernelTable* VariantByName(const char* name);

/**
 * Forces the scalar kernels regardless of CPU support (bit-exact
 * cross-architecture reproducibility). Overrides the
 * RAGO_FORCE_SCALAR_KERNELS environment variable, which seeds the
 * initial state (any value other than empty/"0" forces scalar).
 */
void SetForceScalar(bool force);

/// Current force-scalar state (after env-variable resolution).
bool ForceScalarActive();

/**
 * The active kernel table: the highest-priority variant (scalar <
 * avx2 < avx512) that is compiled in and supported by the host, unless
 * forced off. SetForceScalar / RAGO_FORCE_SCALAR_KERNELS pins scalar;
 * otherwise the RAGO_KERNEL_VARIANT environment variable ("scalar",
 * "avx2", "avx512"; read once on first dispatch, any other value
 * throws ConfigError) caps the tier, falling back to the best
 * available at or below the cap. Cheap enough to call per scan.
 */
const KernelTable& Active();

// ---------------------------------------------------------------------------
// Metric-dispatching conveniences over Active(). Inner-product values
// are negated (smaller = more similar), matching Distance().
// ---------------------------------------------------------------------------

/// Batched Distance(): one query vs `num_rows` contiguous rows.
void DistanceBatch(Metric metric, const float* query, const float* rows,
                   size_t num_rows, size_t dim, float* out);

/// Micro-tiled Distance(): `num_queries` x `num_rows` distance block.
void DistanceTile(Metric metric, const float* queries, size_t num_queries,
                  const float* rows, size_t num_rows, size_t dim, float* out);

/// Single-pair Distance() through the active kernels (so forced-scalar
/// runs are scalar end to end, including one-off evaluations).
float DistanceOne(Metric metric, const float* query, const float* row,
                  size_t dim);

/**
 * Scans `num_rows` contiguous rows and offers every distance to
 * `topk` in row order (so the deterministic id tie-break is preserved).
 * Candidate ids are `ids[i]` when `ids` is non-null, else `base_id + i`.
 * Tiles internally; `scratch` is grown as needed and reusable across
 * calls.
 */
void ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                      size_t num_rows, size_t dim, const int64_t* ids,
                      int64_t base_id, TopK& topk,
                      std::vector<float>& scratch);

/**
 * ADC-scans `num_codes` m-byte codes against `table` (m x kAdcCentroids,
 * subspace-major) and offers every distance to `topk` in code order.
 * Candidate ids are `ids[i]` when non-null, else `base_id + i`.
 */
void ScanCodesIntoTopK(const float* table, const uint8_t* codes,
                       size_t num_codes, size_t m, const int64_t* ids,
                       int64_t base_id, TopK& topk,
                       std::vector<float>& scratch);

/**
 * ADC-scans `num_codes` codes stored in the packed (blocked
 * subspace-major) layout — see KernelTable::adc_packed for the exact
 * byte layout — and offers every distance to `topk` in code order.
 * Bit-identical results (distances, ids, tie-breaks) to
 * ScanCodesIntoTopK over the unpacked codes in every variant.
 * Candidate ids are `ids[i]` when non-null, else `base_id + i`.
 */
void ScanCodesPackedIntoTopK(const float* table, const uint8_t* packed,
                             size_t num_codes, size_t m, const int64_t* ids,
                             int64_t base_id, TopK& topk,
                             std::vector<float>& scratch);

/**
 * Micro-tiled multi-query scan: streams `num_rows` contiguous rows
 * once per query tile through the tile kernel and offers every
 * (query, row) distance to `heaps[query]` in ascending row order
 * (candidate ids `base_id + row`), so per-heap tie-breaks match a
 * per-query ScanRowsIntoTopK scan exactly. `heaps` must hold
 * `num_queries` accumulators. The shared core of
 * FlatIndex::SearchBatch and the IVF coarse-centroid block ranking.
 */
void ScanTileIntoTopK(Metric metric, const float* queries,
                      size_t num_queries, const float* rows,
                      size_t num_rows, size_t dim, int64_t base_id,
                      TopK* heaps);

/**
 * Index of the row nearest to `query` by squared L2 (first index wins
 * ties, matching the sequential `d < best` loops this replaces). When
 * `min_dist` is non-null it receives the winning distance.
 * `num_rows` must be positive.
 */
size_t ArgMinL2(const float* query, const float* rows, size_t num_rows,
                size_t dim, std::vector<float>& scratch,
                float* min_dist = nullptr);

// ---------------------------------------------------------------------------
// Overloads backed by one per-thread reusable scratch buffer. The scan
// helpers never nest (none calls another), so a single thread-local
// buffer suffices and per-query call sites stay allocation-free after
// a thread's first scan. Prefer the explicit-scratch overloads only
// when a caller already owns a buffer (e.g. HnswIndex::Scratch).
// ---------------------------------------------------------------------------

void ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                      size_t num_rows, size_t dim, const int64_t* ids,
                      int64_t base_id, TopK& topk);

void ScanCodesIntoTopK(const float* table, const uint8_t* codes,
                       size_t num_codes, size_t m, const int64_t* ids,
                       int64_t base_id, TopK& topk);

void ScanCodesPackedIntoTopK(const float* table, const uint8_t* packed,
                             size_t num_codes, size_t m, const int64_t* ids,
                             int64_t base_id, TopK& topk);

size_t ArgMinL2(const float* query, const float* rows, size_t num_rows,
                size_t dim, float* min_dist = nullptr);

}  // namespace rago::ann::kernels

#endif  // RAGO_RETRIEVAL_ANN_KERNELS_DISTANCE_KERNELS_H
