/**
 * @file avx512_kernels.h
 * Internal declaration of the AVX-512F/BW kernel table.
 *
 * Defined in distance_kernels_avx512.cc, which is only added to the
 * build (with -mavx512f -mavx512bw) when the toolchain targets x86 and
 * accepts the flags; RAGO_KERNELS_HAVE_AVX512 guards every reference.
 * Not part of the public kernel API — consumers go through Active().
 */
#ifndef RAGO_RETRIEVAL_ANN_KERNELS_AVX512_KERNELS_H
#define RAGO_RETRIEVAL_ANN_KERNELS_AVX512_KERNELS_H

#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann::kernels {

#if defined(RAGO_KERNELS_HAVE_AVX512)
/// The AVX-512F/BW implementation set (host support checked by callers).
const KernelTable& Avx512Kernels();
#endif

}  // namespace rago::ann::kernels

#endif  // RAGO_RETRIEVAL_ANN_KERNELS_AVX512_KERNELS_H
