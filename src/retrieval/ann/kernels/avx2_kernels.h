/**
 * @file avx2_kernels.h
 * Internal declaration of the AVX2/FMA kernel table.
 *
 * Defined in distance_kernels_avx2.cc, which is only added to the
 * build (with -mavx2 -mfma) when the toolchain targets x86 and accepts
 * the flags; RAGO_KERNELS_HAVE_AVX2 guards every reference. Not part
 * of the public kernel API — consumers go through Active().
 */
#ifndef RAGO_RETRIEVAL_ANN_KERNELS_AVX2_KERNELS_H
#define RAGO_RETRIEVAL_ANN_KERNELS_AVX2_KERNELS_H

#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann::kernels {

#if defined(RAGO_KERNELS_HAVE_AVX2)
/// The AVX2/FMA implementation set (host support checked by callers).
const KernelTable& Avx2Kernels();
#endif

}  // namespace rago::ann::kernels

#endif  // RAGO_RETRIEVAL_ANN_KERNELS_AVX2_KERNELS_H
