/**
 * @file distance_kernels_avx512.cc
 * AVX-512F/BW distance kernels. Compiled with -mavx512f -mavx512bw only
 * on x86 toolchains that accept the flags (see CMakeLists.txt); callers
 * reach this table through runtime CPUID dispatch, never directly.
 *
 * Determinism notes (mirrors distance_kernels_avx2.cc):
 *  - Each row's accumulation order is fixed: 16-lane FMA chains over
 *    the vector body (one chain per row), one horizontal sum in a fixed
 *    extract/shuffle order, then a sequential scalar remainder. Grouped
 *    (4-row / 4-query) paths perform the exact same per-row operation
 *    sequence, so batch and tile kernels are bit-identical for the same
 *    (query, row) pair regardless of grouping.
 *  - For dim < 16 the vector body is empty and the remainder loop is
 *    the scalar kernel, so tiny dims are bit-identical to scalar (the
 *    TU builds with -ffp-contract=off so the compiler cannot fuse
 *    these scalar loops into FMA and break that identity).
 *  - The ADC kernels add table entries in subspace order with
 *    lane-independent adds, matching scalar summation order
 *    bit-for-bit: the strided kernel gathers per subspace across 16
 *    codes, the packed kernel loads each subspace's 32 contiguous code
 *    bytes and gathers in two 16-lane groups, with a masked store for
 *    the final partial block.
 */
#include "retrieval/ann/kernels/avx512_kernels.h"

#if defined(RAGO_KERNELS_HAVE_AVX512)

#include <immintrin.h>

namespace rago::ann::kernels {
namespace {

/// Fixed-order horizontal sum over the four 128-bit quarters q0..q3:
/// ((q0 + q2) + (q1 + q3)), then pairwise within 128 bits in the same
/// shuffle order as the AVX2 TU. Every kernel funnels through this one
/// order. Immediate lane shuffles instead of _mm512_extractf32x4_ps,
/// whose _mm_undefined_ps() operand trips GCC's -Wmaybe-uninitialized
/// under inlining.
inline float HorizontalSum(__m512 v) {
  const __m512 fold2 =
      _mm512_add_ps(v, _mm512_shuffle_f32x4(v, v, _MM_SHUFFLE(1, 0, 3, 2)));
  const __m512 fold1 = _mm512_add_ps(
      fold2, _mm512_shuffle_f32x4(fold2, fold2, _MM_SHUFFLE(2, 3, 0, 1)));
  __m128 sum = _mm512_castps512_ps128(fold1);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
  return _mm_cvtss_f32(sum);
}

inline float L2Row(const float* query, const float* row, size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    const __m512 q = _mm512_loadu_ps(query + d);
    const __m512 r = _mm512_loadu_ps(row + d);
    const __m512 diff = _mm512_sub_ps(q, r);
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  float sum = HorizontalSum(acc);
  for (; d < dim; ++d) {
    const float diff = query[d] - row[d];
    sum += diff * diff;
  }
  return sum;
}

inline float DotRow(const float* query, const float* row, size_t dim) {
  __m512 acc = _mm512_setzero_ps();
  size_t d = 0;
  for (; d + 16 <= dim; d += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(query + d),
                          _mm512_loadu_ps(row + d), acc);
  }
  float sum = HorizontalSum(acc);
  for (; d < dim; ++d) {
    sum += query[d] * row[d];
  }
  return sum;
}

void Avx512L2Batch(const float* query, const float* rows, size_t num_rows,
                   size_t dim, float* out) {
  size_t i = 0;
  // Four rows per pass: the query load is shared and the four FMA
  // chains are independent, hiding FMA latency behind throughput.
  for (; i + 4 <= num_rows; i += 4) {
    const float* r0 = rows + (i + 0) * dim;
    const float* r1 = rows + (i + 1) * dim;
    const float* r2 = rows + (i + 2) * dim;
    const float* r3 = rows + (i + 3) * dim;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      const __m512 q = _mm512_loadu_ps(query + d);
      const __m512 d0 = _mm512_sub_ps(q, _mm512_loadu_ps(r0 + d));
      const __m512 d1 = _mm512_sub_ps(q, _mm512_loadu_ps(r1 + d));
      const __m512 d2 = _mm512_sub_ps(q, _mm512_loadu_ps(r2 + d));
      const __m512 d3 = _mm512_sub_ps(q, _mm512_loadu_ps(r3 + d));
      a0 = _mm512_fmadd_ps(d0, d0, a0);
      a1 = _mm512_fmadd_ps(d1, d1, a1);
      a2 = _mm512_fmadd_ps(d2, d2, a2);
      a3 = _mm512_fmadd_ps(d3, d3, a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; d < dim; ++d) {
      const float q = query[d];
      const float e0 = q - r0[d];
      const float e1 = q - r1[d];
      const float e2 = q - r2[d];
      const float e3 = q - r3[d];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < num_rows; ++i) {
    out[i] = L2Row(query, rows + i * dim, dim);
  }
}

void Avx512DotBatch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= num_rows; i += 4) {
    const float* r0 = rows + (i + 0) * dim;
    const float* r1 = rows + (i + 1) * dim;
    const float* r2 = rows + (i + 2) * dim;
    const float* r3 = rows + (i + 3) * dim;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    size_t d = 0;
    for (; d + 16 <= dim; d += 16) {
      const __m512 q = _mm512_loadu_ps(query + d);
      a0 = _mm512_fmadd_ps(q, _mm512_loadu_ps(r0 + d), a0);
      a1 = _mm512_fmadd_ps(q, _mm512_loadu_ps(r1 + d), a1);
      a2 = _mm512_fmadd_ps(q, _mm512_loadu_ps(r2 + d), a2);
      a3 = _mm512_fmadd_ps(q, _mm512_loadu_ps(r3 + d), a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; d < dim; ++d) {
      const float q = query[d];
      s0 += q * r0[d];
      s1 += q * r1[d];
      s2 += q * r2[d];
      s3 += q * r3[d];
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < num_rows; ++i) {
    out[i] = DotRow(query, rows + i * dim, dim);
  }
}

void Avx512L2Tile(const float* queries, size_t num_queries, const float* rows,
                  size_t num_rows, size_t dim, float* out) {
  size_t q = 0;
  // Four queries per pass with rows in the outer loop: each row is
  // streamed from memory once and scored against all four queries.
  for (; q + 4 <= num_queries; q += 4) {
    const float* q0 = queries + (q + 0) * dim;
    const float* q1 = queries + (q + 1) * dim;
    const float* q2 = queries + (q + 2) * dim;
    const float* q3 = queries + (q + 3) * dim;
    for (size_t i = 0; i < num_rows; ++i) {
      const float* row = rows + i * dim;
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps();
      __m512 a3 = _mm512_setzero_ps();
      size_t d = 0;
      for (; d + 16 <= dim; d += 16) {
        const __m512 r = _mm512_loadu_ps(row + d);
        const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(q0 + d), r);
        const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(q1 + d), r);
        const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(q2 + d), r);
        const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(q3 + d), r);
        a0 = _mm512_fmadd_ps(d0, d0, a0);
        a1 = _mm512_fmadd_ps(d1, d1, a1);
        a2 = _mm512_fmadd_ps(d2, d2, a2);
        a3 = _mm512_fmadd_ps(d3, d3, a3);
      }
      float s0 = HorizontalSum(a0);
      float s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2);
      float s3 = HorizontalSum(a3);
      for (; d < dim; ++d) {
        const float r = row[d];
        const float e0 = q0[d] - r;
        const float e1 = q1[d] - r;
        const float e2 = q2[d] - r;
        const float e3 = q3[d] - r;
        s0 += e0 * e0;
        s1 += e1 * e1;
        s2 += e2 * e2;
        s3 += e3 * e3;
      }
      out[(q + 0) * num_rows + i] = s0;
      out[(q + 1) * num_rows + i] = s1;
      out[(q + 2) * num_rows + i] = s2;
      out[(q + 3) * num_rows + i] = s3;
    }
  }
  for (; q < num_queries; ++q) {
    Avx512L2Batch(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void Avx512DotTile(const float* queries, size_t num_queries, const float* rows,
                   size_t num_rows, size_t dim, float* out) {
  size_t q = 0;
  for (; q + 4 <= num_queries; q += 4) {
    const float* q0 = queries + (q + 0) * dim;
    const float* q1 = queries + (q + 1) * dim;
    const float* q2 = queries + (q + 2) * dim;
    const float* q3 = queries + (q + 3) * dim;
    for (size_t i = 0; i < num_rows; ++i) {
      const float* row = rows + i * dim;
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps();
      __m512 a3 = _mm512_setzero_ps();
      size_t d = 0;
      for (; d + 16 <= dim; d += 16) {
        const __m512 r = _mm512_loadu_ps(row + d);
        a0 = _mm512_fmadd_ps(_mm512_loadu_ps(q0 + d), r, a0);
        a1 = _mm512_fmadd_ps(_mm512_loadu_ps(q1 + d), r, a1);
        a2 = _mm512_fmadd_ps(_mm512_loadu_ps(q2 + d), r, a2);
        a3 = _mm512_fmadd_ps(_mm512_loadu_ps(q3 + d), r, a3);
      }
      float s0 = HorizontalSum(a0);
      float s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2);
      float s3 = HorizontalSum(a3);
      for (; d < dim; ++d) {
        const float r = row[d];
        s0 += q0[d] * r;
        s1 += q1[d] * r;
        s2 += q2[d] * r;
        s3 += q3[d] * r;
      }
      out[(q + 0) * num_rows + i] = s0;
      out[(q + 1) * num_rows + i] = s1;
      out[(q + 2) * num_rows + i] = s2;
      out[(q + 3) * num_rows + i] = s3;
    }
  }
  for (; q < num_queries; ++q) {
    Avx512DotBatch(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void Avx512AdcBatch(const float* table, const uint8_t* codes,
                    size_t num_codes, size_t m, float* out) {
  size_t i = 0;
  // Sixteen codes per pass: one gather per subspace pulls the table
  // entry of each code's byte. The indices are assembled with scalar
  // byte reads (the codes are strided by m, so there is no contiguous
  // vector load to be had — that is exactly what the packed layout
  // fixes); lane-wise adds preserve scalar summation order, so results
  // are bit-identical to scalar.
  for (; i + 16 <= num_codes; i += 16) {
    const uint8_t* c = codes + i * m;
    __m512 acc = _mm512_setzero_ps();
    for (size_t s = 0; s < m; ++s) {
      const __m512i idx = _mm512_set_epi32(
          c[15 * m + s], c[14 * m + s], c[13 * m + s], c[12 * m + s],
          c[11 * m + s], c[10 * m + s], c[9 * m + s], c[8 * m + s],
          c[7 * m + s], c[6 * m + s], c[5 * m + s], c[4 * m + s],
          c[3 * m + s], c[2 * m + s], c[1 * m + s], c[0 * m + s]);
      acc = _mm512_add_ps(
          acc, _mm512_i32gather_ps(idx, table + s * kAdcCentroids, 4));
    }
    _mm512_storeu_ps(out + i, acc);
  }
  for (; i < num_codes; ++i) {
    const uint8_t* code = codes + i * m;
    float dist = 0.0f;
    for (size_t s = 0; s < m; ++s) {
      dist += table[s * kAdcCentroids + code[s]];
    }
    out[i] = dist;
  }
}

/// One packed block (32 codes): two 16-lane accumulators. Per subspace
/// the 32 code bytes are two contiguous 16-byte loads widened to
/// 32-bit gather indices; lane-wise adds in s order keep results
/// bit-identical to scalar.
inline void Avx512AdcPackedBlock(const float* table, const uint8_t* block,
                                 size_t m, __m512* acc0, __m512* acc1) {
  __m512 a0 = _mm512_setzero_ps();
  __m512 a1 = _mm512_setzero_ps();
  for (size_t s = 0; s < m; ++s) {
    const uint8_t* lanes = block + s * kPackedBlock;
    const float* row = table + s * kAdcCentroids;
    const __m512i i0 = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 0)));
    const __m512i i1 = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 16)));
    a0 = _mm512_add_ps(a0, _mm512_i32gather_ps(i0, row, 4));
    a1 = _mm512_add_ps(a1, _mm512_i32gather_ps(i1, row, 4));
  }
  *acc0 = a0;
  *acc1 = a1;
}

void Avx512AdcPacked(const float* table, const uint8_t* packed,
                     size_t num_codes, size_t m, float* out) {
  size_t i = 0;
  __m512 acc0;
  __m512 acc1;
  for (; i + kPackedBlock <= num_codes; i += kPackedBlock) {
    Avx512AdcPackedBlock(table, packed + i * m, m, &acc0, &acc1);
    _mm512_storeu_ps(out + i, acc0);
    _mm512_storeu_ps(out + i + 16, acc1);
  }
  if (i < num_codes) {
    // Tail block: the padding lanes are zero bytes (valid table index
    // 0), so the full block computes safely; masked stores write only
    // the real lanes.
    Avx512AdcPackedBlock(table, packed + i * m, m, &acc0, &acc1);
    const size_t rem = num_codes - i;
    if (rem > 16) {
      _mm512_storeu_ps(out + i, acc0);
      _mm512_mask_storeu_ps(
          out + i + 16, static_cast<__mmask16>((1u << (rem - 16)) - 1u),
          acc1);
    } else {
      // Never form out + i + 16 here: with rem <= 16 it could point
      // past one-past-the-end of an exactly-sized output buffer.
      _mm512_mask_storeu_ps(
          out + i, static_cast<__mmask16>((1u << rem) - 1u), acc0);
    }
  }
}

const KernelTable kAvx512Table = {
    "avx512",      Avx512L2Batch, Avx512DotBatch, Avx512L2Tile,
    Avx512DotTile, Avx512AdcBatch, Avx512AdcPacked,
};

}  // namespace

const KernelTable&
Avx512Kernels() {
  return kAvx512Table;
}

}  // namespace rago::ann::kernels

#endif  // RAGO_KERNELS_HAVE_AVX512
