#include "retrieval/ann/kernels/distance_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"
#include "retrieval/ann/kernels/avx2_kernels.h"
#include "retrieval/ann/kernels/avx512_kernels.h"

namespace rago::ann::kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. The per-row loops are bit-identical to the
// legacy sequential L2Sq/Dot in distance.cc — the batch shape changes
// only where the loop lives, not the accumulation order — so forcing
// scalar reproduces pre-kernel-layer results exactly.
// ---------------------------------------------------------------------------

void ScalarL2Batch(const float* query, const float* rows, size_t num_rows,
                   size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = L2Sq(query, rows + i * dim, dim);
  }
}

void ScalarDotBatch(const float* query, const float* rows, size_t num_rows,
                    size_t dim, float* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    out[i] = Dot(query, rows + i * dim, dim);
  }
}

void ScalarL2Tile(const float* queries, size_t num_queries, const float* rows,
                  size_t num_rows, size_t dim, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    ScalarL2Batch(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void ScalarDotTile(const float* queries, size_t num_queries,
                   const float* rows, size_t num_rows, size_t dim,
                   float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    ScalarDotBatch(queries + q * dim, rows, num_rows, dim,
                   out + q * num_rows);
  }
}

void ScalarAdcBatch(const float* table, const uint8_t* codes,
                    size_t num_codes, size_t m, float* out) {
  // num_codes == 0 writes nothing and m == 0 yields 0.0f per code by
  // construction — the documented degenerate-shape contract.
  for (size_t i = 0; i < num_codes; ++i) {
    const uint8_t* code = codes + i * m;
    float dist = 0.0f;
    for (size_t s = 0; s < m; ++s) {
      dist += table[s * kAdcCentroids + code[s]];
    }
    out[i] = dist;
  }
}

void ScalarAdcPacked(const float* table, const uint8_t* packed,
                     size_t num_codes, size_t m, float* out) {
  // Per code: walk its lane down the block's subspace-major rows in
  // s order — the same accumulation sequence as ScalarAdcBatch, so
  // packed and strided distances are bit-identical.
  for (size_t i = 0; i < num_codes; ++i) {
    const uint8_t* block =
        packed + (i / kPackedBlock) * kPackedBlock * m;
    const size_t lane = i % kPackedBlock;
    float dist = 0.0f;
    for (size_t s = 0; s < m; ++s) {
      dist += table[s * kAdcCentroids + block[s * kPackedBlock + lane]];
    }
    out[i] = dist;
  }
}

const KernelTable kScalarTable = {
    "scalar",       ScalarL2Batch, ScalarDotBatch,  ScalarL2Tile,
    ScalarDotTile,  ScalarAdcBatch, ScalarAdcPacked,
};

// ---------------------------------------------------------------------------
// Dispatch state. The force-scalar flag seeds from the environment on
// first query; SetForceScalar overrides it afterwards.
// ---------------------------------------------------------------------------

// -1 = unresolved (read the environment), 0 = dispatched, 1 = scalar.
std::atomic<int> g_force_scalar{-1};

bool EnvForcesScalar() {
  const char* value = std::getenv("RAGO_FORCE_SCALAR_KERNELS");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

/// Dispatch priority tiers: scalar < avx2 < avx512.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The RAGO_KERNEL_VARIANT cap, or the top tier when unset/empty.
Tier EnvTierCap() {
  const char* value = std::getenv("RAGO_KERNEL_VARIANT");
  if (value == nullptr || value[0] == '\0') {
    return Tier::kAvx512;
  }
  if (std::strcmp(value, "scalar") == 0) {
    return Tier::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    return Tier::kAvx2;
  }
  if (std::strcmp(value, "avx512") == 0) {
    return Tier::kAvx512;
  }
  RAGO_REQUIRE(false, std::string("RAGO_KERNEL_VARIANT must be scalar, "
                                  "avx2, or avx512; got \"") +
                          value + "\"");
  return Tier::kScalar;  // Unreachable.
}

/// The best compiled-in, host-supported table at or below `cap`.
const KernelTable& BestTableUpTo(Tier cap) {
#if defined(RAGO_KERNELS_HAVE_AVX512)
  if (cap >= Tier::kAvx512 && CpuSupportsAvx512()) {
    return Avx512Kernels();
  }
#endif
#if defined(RAGO_KERNELS_HAVE_AVX2)
  if (cap >= Tier::kAvx2 && CpuSupportsAvx2()) {
    return Avx2Kernels();
  }
#endif
  (void)cap;
  return kScalarTable;
}

/// Rows-per-tile for the TopK / argmin scan helpers: big enough to
/// amortize kernel-call overhead, small enough that the distance
/// scratch stays L1/L2-resident for any realistic dim.
constexpr size_t kScanTile = 512;

/// Multi-query tile shape for ScanTileIntoTopK: 8 queries x 1024 rows
/// of distances is a 32 KB scratch block (L1/L2-resident at any dim),
/// and 8 queries per row pass feed the 4-query micro-tile kernel two
/// full groups.
constexpr size_t kQueryTile = 8;
constexpr size_t kRowTile = 1024;

/// The per-thread buffer behind the scratch-less helper overloads.
std::vector<float>& TlsScratch() {
  static thread_local std::vector<float> scratch;
  return scratch;
}

}  // namespace

const KernelTable&
ScalarKernels() {
  return kScalarTable;
}

bool
Avx2KernelsCompiled() {
#if defined(RAGO_KERNELS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool
CpuSupportsAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool
Avx512KernelsCompiled() {
#if defined(RAGO_KERNELS_HAVE_AVX512)
  return true;
#else
  return false;
#endif
}

bool
CpuSupportsAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512bw");
  return supported;
#else
  return false;
#endif
}

const KernelTable*
VariantByName(const char* name) {
  if (name == nullptr) {
    return nullptr;
  }
  if (std::strcmp(name, "scalar") == 0) {
    return &kScalarTable;
  }
#if defined(RAGO_KERNELS_HAVE_AVX2)
  if (std::strcmp(name, "avx2") == 0 && CpuSupportsAvx2()) {
    return &Avx2Kernels();
  }
#endif
#if defined(RAGO_KERNELS_HAVE_AVX512)
  if (std::strcmp(name, "avx512") == 0 && CpuSupportsAvx512()) {
    return &Avx512Kernels();
  }
#endif
  return nullptr;
}

void
SetForceScalar(bool force) {
  g_force_scalar.store(force ? 1 : 0, std::memory_order_relaxed);
}

bool
ForceScalarActive() {
  int state = g_force_scalar.load(std::memory_order_relaxed);
  if (state < 0) {
    state = EnvForcesScalar() ? 1 : 0;
    g_force_scalar.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

const KernelTable&
Active() {
  if (ForceScalarActive()) {
    return kScalarTable;
  }
  // The env cap is parsed once; the resolved table is immutable for
  // the process lifetime (force-scalar remains the only runtime knob).
  static const KernelTable& dispatched = BestTableUpTo(EnvTierCap());
  return dispatched;
}

void
DistanceBatch(Metric metric, const float* query, const float* rows,
              size_t num_rows, size_t dim, float* out) {
  const KernelTable& kernels = Active();
  switch (metric) {
    case Metric::kL2:
      kernels.l2sq_batch(query, rows, num_rows, dim, out);
      return;
    case Metric::kInnerProduct:
      kernels.dot_batch(query, rows, num_rows, dim, out);
      for (size_t i = 0; i < num_rows; ++i) {
        out[i] = -out[i];
      }
      return;
  }
  RAGO_CHECK(false, "unhandled Metric in DistanceBatch");
}

void
DistanceTile(Metric metric, const float* queries, size_t num_queries,
             const float* rows, size_t num_rows, size_t dim, float* out) {
  const KernelTable& kernels = Active();
  switch (metric) {
    case Metric::kL2:
      kernels.l2sq_tile(queries, num_queries, rows, num_rows, dim, out);
      return;
    case Metric::kInnerProduct:
      kernels.dot_tile(queries, num_queries, rows, num_rows, dim, out);
      for (size_t i = 0; i < num_queries * num_rows; ++i) {
        out[i] = -out[i];
      }
      return;
  }
  RAGO_CHECK(false, "unhandled Metric in DistanceTile");
}

float
DistanceOne(Metric metric, const float* query, const float* row,
            size_t dim) {
  float out = 0.0f;
  DistanceBatch(metric, query, row, 1, dim, &out);
  return out;
}

void
ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                 size_t num_rows, size_t dim, const int64_t* ids,
                 int64_t base_id, TopK& topk, std::vector<float>& scratch) {
  if (num_rows == 0) {
    return;
  }
  const size_t tile = num_rows < kScanTile ? num_rows : kScanTile;
  if (scratch.size() < tile) {
    scratch.resize(tile);
  }
  for (size_t start = 0; start < num_rows; start += tile) {
    const size_t count =
        num_rows - start < tile ? num_rows - start : tile;
    DistanceBatch(metric, query, rows + start * dim, count, dim,
                  scratch.data());
    for (size_t i = 0; i < count; ++i) {
      const size_t row = start + i;
      topk.Push(scratch[i],
                ids != nullptr ? ids[row]
                               : base_id + static_cast<int64_t>(row));
    }
  }
}

void
ScanCodesIntoTopK(const float* table, const uint8_t* codes, size_t num_codes,
                  size_t m, const int64_t* ids, int64_t base_id, TopK& topk,
                  std::vector<float>& scratch) {
  if (num_codes == 0) {
    return;
  }
  const size_t tile = num_codes < kScanTile ? num_codes : kScanTile;
  if (scratch.size() < tile) {
    scratch.resize(tile);
  }
  const KernelTable& kernels = Active();
  for (size_t start = 0; start < num_codes; start += tile) {
    const size_t count =
        num_codes - start < tile ? num_codes - start : tile;
    kernels.adc_batch(table, codes + start * m, count, m, scratch.data());
    for (size_t i = 0; i < count; ++i) {
      const size_t code = start + i;
      topk.Push(scratch[i],
                ids != nullptr ? ids[code]
                               : base_id + static_cast<int64_t>(code));
    }
  }
}

void
ScanCodesPackedIntoTopK(const float* table, const uint8_t* packed,
                        size_t num_codes, size_t m, const int64_t* ids,
                        int64_t base_id, TopK& topk,
                        std::vector<float>& scratch) {
  if (num_codes == 0) {
    return;
  }
  // kScanTile is a multiple of kPackedBlock, so every tile starts on a
  // block boundary and the packed offset is simply start * m.
  static_assert(kScanTile % kPackedBlock == 0,
                "scan tile must cover whole packed blocks");
  const size_t tile = num_codes < kScanTile ? num_codes : kScanTile;
  if (scratch.size() < tile) {
    scratch.resize(tile);
  }
  const KernelTable& kernels = Active();
  for (size_t start = 0; start < num_codes; start += tile) {
    const size_t count =
        num_codes - start < tile ? num_codes - start : tile;
    kernels.adc_packed(table, packed + start * m, count, m,
                       scratch.data());
    for (size_t i = 0; i < count; ++i) {
      const size_t code = start + i;
      topk.Push(scratch[i],
                ids != nullptr ? ids[code]
                               : base_id + static_cast<int64_t>(code));
    }
  }
}

void
ScanTileIntoTopK(Metric metric, const float* queries, size_t num_queries,
                 const float* rows, size_t num_rows, size_t dim,
                 int64_t base_id, TopK* heaps) {
  // Rows in the outer loop: each row tile is streamed once and scored
  // against every query. Distances reach each heap in ascending row
  // order, so results are bit-identical to a per-query scan for any
  // tiling. Scratch comes from the shared per-thread buffer (this
  // helper never nests with the other scan helpers).
  std::vector<float>& dists = TlsScratch();
  if (dists.size() < kQueryTile * kRowTile) {
    dists.resize(kQueryTile * kRowTile);
  }
  for (size_t row0 = 0; row0 < num_rows; row0 += kRowTile) {
    const size_t rows_here =
        num_rows - row0 < kRowTile ? num_rows - row0 : kRowTile;
    for (size_t query0 = 0; query0 < num_queries; query0 += kQueryTile) {
      const size_t queries_here = num_queries - query0 < kQueryTile
                                      ? num_queries - query0
                                      : kQueryTile;
      DistanceTile(metric, queries + query0 * dim, queries_here,
                   rows + row0 * dim, rows_here, dim, dists.data());
      for (size_t q = 0; q < queries_here; ++q) {
        TopK& heap = heaps[query0 + q];
        const float* row_dists = dists.data() + q * rows_here;
        for (size_t i = 0; i < rows_here; ++i) {
          heap.Push(row_dists[i],
                    base_id + static_cast<int64_t>(row0 + i));
        }
      }
    }
  }
}

size_t
ArgMinL2(const float* query, const float* rows, size_t num_rows, size_t dim,
         std::vector<float>& scratch, float* min_dist) {
  RAGO_CHECK(num_rows > 0, "ArgMinL2 requires at least one row");
  const size_t tile = num_rows < kScanTile ? num_rows : kScanTile;
  if (scratch.size() < tile) {
    scratch.resize(tile);
  }
  const KernelTable& kernels = Active();
  size_t best = 0;
  float best_dist = 0.0f;
  bool first = true;
  for (size_t start = 0; start < num_rows; start += tile) {
    const size_t count =
        num_rows - start < tile ? num_rows - start : tile;
    kernels.l2sq_batch(query, rows + start * dim, count, dim,
                       scratch.data());
    for (size_t i = 0; i < count; ++i) {
      // Strict < keeps the first occurrence of the minimum, matching
      // the sequential loops this replaces.
      if (first || scratch[i] < best_dist) {
        best_dist = scratch[i];
        best = start + i;
        first = false;
      }
    }
  }
  if (min_dist != nullptr) {
    *min_dist = best_dist;
  }
  return best;
}

void
ScanRowsIntoTopK(Metric metric, const float* query, const float* rows,
                 size_t num_rows, size_t dim, const int64_t* ids,
                 int64_t base_id, TopK& topk) {
  ScanRowsIntoTopK(metric, query, rows, num_rows, dim, ids, base_id, topk,
                   TlsScratch());
}

void
ScanCodesIntoTopK(const float* table, const uint8_t* codes, size_t num_codes,
                  size_t m, const int64_t* ids, int64_t base_id,
                  TopK& topk) {
  ScanCodesIntoTopK(table, codes, num_codes, m, ids, base_id, topk,
                    TlsScratch());
}

void
ScanCodesPackedIntoTopK(const float* table, const uint8_t* packed,
                        size_t num_codes, size_t m, const int64_t* ids,
                        int64_t base_id, TopK& topk) {
  ScanCodesPackedIntoTopK(table, packed, num_codes, m, ids, base_id, topk,
                          TlsScratch());
}

size_t
ArgMinL2(const float* query, const float* rows, size_t num_rows, size_t dim,
         float* min_dist) {
  return ArgMinL2(query, rows, num_rows, dim, TlsScratch(), min_dist);
}

}  // namespace rago::ann::kernels
