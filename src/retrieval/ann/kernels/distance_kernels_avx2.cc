/**
 * @file distance_kernels_avx2.cc
 * AVX2/FMA distance kernels. Compiled with -mavx2 -mfma only on x86
 * toolchains that accept the flags (see CMakeLists.txt); callers reach
 * this table through runtime CPUID dispatch, never directly.
 *
 * Determinism notes:
 *  - Each row's accumulation order is fixed: 8-lane FMA chains over the
 *    vector body (one chain per row), one horizontal sum in a fixed
 *    shuffle order, then a sequential scalar remainder. Grouped (4-row
 *    / 4-query) paths perform the exact same per-row operation
 *    sequence, so batch and tile kernels are bit-identical for the
 *    same (query, row) pair regardless of grouping.
 *  - For dim < 8 the vector body is empty and the remainder loop is
 *    the scalar kernel, so tiny dims are bit-identical to scalar (the
 *    TU builds with -ffp-contract=off so the compiler cannot fuse
 *    these scalar loops into FMA and break that identity).
 *  - The ADC kernels add table entries in subspace order, matching
 *    scalar summation order bit-for-bit: the strided kernel gathers
 *    per subspace across 8 codes, the packed kernel loads each
 *    subspace's 32 contiguous code bytes (the transposed layout's
 *    whole point) and gathers in four 8-lane groups.
 */
#include "retrieval/ann/kernels/avx2_kernels.h"

#if defined(RAGO_KERNELS_HAVE_AVX2)

#include <immintrin.h>

namespace rago::ann::kernels {
namespace {

/// Fixed-order horizontal sum: (lo128 + hi128), then pairwise within
/// the 128-bit half. Every kernel funnels through this one order.
inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
  return _mm_cvtss_f32(sum);
}

inline float L2Row(const float* query, const float* row, size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    const __m256 q = _mm256_loadu_ps(query + d);
    const __m256 r = _mm256_loadu_ps(row + d);
    const __m256 diff = _mm256_sub_ps(q, r);
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  float sum = HorizontalSum(acc);
  for (; d < dim; ++d) {
    const float diff = query[d] - row[d];
    sum += diff * diff;
  }
  return sum;
}

inline float DotRow(const float* query, const float* row, size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  size_t d = 0;
  for (; d + 8 <= dim; d += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + d),
                          _mm256_loadu_ps(row + d), acc);
  }
  float sum = HorizontalSum(acc);
  for (; d < dim; ++d) {
    sum += query[d] * row[d];
  }
  return sum;
}

void Avx2L2Batch(const float* query, const float* rows, size_t num_rows,
                 size_t dim, float* out) {
  size_t i = 0;
  // Four rows per pass: the query load is shared and the four FMA
  // chains are independent, hiding FMA latency behind throughput.
  for (; i + 4 <= num_rows; i += 4) {
    const float* r0 = rows + (i + 0) * dim;
    const float* r1 = rows + (i + 1) * dim;
    const float* r2 = rows + (i + 2) * dim;
    const float* r3 = rows + (i + 3) * dim;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      const __m256 q = _mm256_loadu_ps(query + d);
      const __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + d));
      const __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + d));
      const __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + d));
      const __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + d));
      a0 = _mm256_fmadd_ps(d0, d0, a0);
      a1 = _mm256_fmadd_ps(d1, d1, a1);
      a2 = _mm256_fmadd_ps(d2, d2, a2);
      a3 = _mm256_fmadd_ps(d3, d3, a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; d < dim; ++d) {
      const float q = query[d];
      const float e0 = q - r0[d];
      const float e1 = q - r1[d];
      const float e2 = q - r2[d];
      const float e3 = q - r3[d];
      s0 += e0 * e0;
      s1 += e1 * e1;
      s2 += e2 * e2;
      s3 += e3 * e3;
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < num_rows; ++i) {
    out[i] = L2Row(query, rows + i * dim, dim);
  }
}

void Avx2DotBatch(const float* query, const float* rows, size_t num_rows,
                  size_t dim, float* out) {
  size_t i = 0;
  for (; i + 4 <= num_rows; i += 4) {
    const float* r0 = rows + (i + 0) * dim;
    const float* r1 = rows + (i + 1) * dim;
    const float* r2 = rows + (i + 2) * dim;
    const float* r3 = rows + (i + 3) * dim;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    size_t d = 0;
    for (; d + 8 <= dim; d += 8) {
      const __m256 q = _mm256_loadu_ps(query + d);
      a0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + d), a0);
      a1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + d), a1);
      a2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + d), a2);
      a3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + d), a3);
    }
    float s0 = HorizontalSum(a0);
    float s1 = HorizontalSum(a1);
    float s2 = HorizontalSum(a2);
    float s3 = HorizontalSum(a3);
    for (; d < dim; ++d) {
      const float q = query[d];
      s0 += q * r0[d];
      s1 += q * r1[d];
      s2 += q * r2[d];
      s3 += q * r3[d];
    }
    out[i + 0] = s0;
    out[i + 1] = s1;
    out[i + 2] = s2;
    out[i + 3] = s3;
  }
  for (; i < num_rows; ++i) {
    out[i] = DotRow(query, rows + i * dim, dim);
  }
}

void Avx2L2Tile(const float* queries, size_t num_queries, const float* rows,
                size_t num_rows, size_t dim, float* out) {
  size_t q = 0;
  // Four queries per pass with rows in the outer loop: each row is
  // streamed from memory once and scored against all four queries —
  // the bandwidth amplification batched multi-query search exists for.
  for (; q + 4 <= num_queries; q += 4) {
    const float* q0 = queries + (q + 0) * dim;
    const float* q1 = queries + (q + 1) * dim;
    const float* q2 = queries + (q + 2) * dim;
    const float* q3 = queries + (q + 3) * dim;
    for (size_t i = 0; i < num_rows; ++i) {
      const float* row = rows + i * dim;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      size_t d = 0;
      for (; d + 8 <= dim; d += 8) {
        const __m256 r = _mm256_loadu_ps(row + d);
        const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(q0 + d), r);
        const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(q1 + d), r);
        const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(q2 + d), r);
        const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(q3 + d), r);
        a0 = _mm256_fmadd_ps(d0, d0, a0);
        a1 = _mm256_fmadd_ps(d1, d1, a1);
        a2 = _mm256_fmadd_ps(d2, d2, a2);
        a3 = _mm256_fmadd_ps(d3, d3, a3);
      }
      float s0 = HorizontalSum(a0);
      float s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2);
      float s3 = HorizontalSum(a3);
      for (; d < dim; ++d) {
        const float r = row[d];
        const float e0 = q0[d] - r;
        const float e1 = q1[d] - r;
        const float e2 = q2[d] - r;
        const float e3 = q3[d] - r;
        s0 += e0 * e0;
        s1 += e1 * e1;
        s2 += e2 * e2;
        s3 += e3 * e3;
      }
      out[(q + 0) * num_rows + i] = s0;
      out[(q + 1) * num_rows + i] = s1;
      out[(q + 2) * num_rows + i] = s2;
      out[(q + 3) * num_rows + i] = s3;
    }
  }
  for (; q < num_queries; ++q) {
    Avx2L2Batch(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void Avx2DotTile(const float* queries, size_t num_queries, const float* rows,
                 size_t num_rows, size_t dim, float* out) {
  size_t q = 0;
  for (; q + 4 <= num_queries; q += 4) {
    const float* q0 = queries + (q + 0) * dim;
    const float* q1 = queries + (q + 1) * dim;
    const float* q2 = queries + (q + 2) * dim;
    const float* q3 = queries + (q + 3) * dim;
    for (size_t i = 0; i < num_rows; ++i) {
      const float* row = rows + i * dim;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      size_t d = 0;
      for (; d + 8 <= dim; d += 8) {
        const __m256 r = _mm256_loadu_ps(row + d);
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(q0 + d), r, a0);
        a1 = _mm256_fmadd_ps(_mm256_loadu_ps(q1 + d), r, a1);
        a2 = _mm256_fmadd_ps(_mm256_loadu_ps(q2 + d), r, a2);
        a3 = _mm256_fmadd_ps(_mm256_loadu_ps(q3 + d), r, a3);
      }
      float s0 = HorizontalSum(a0);
      float s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2);
      float s3 = HorizontalSum(a3);
      for (; d < dim; ++d) {
        const float r = row[d];
        s0 += q0[d] * r;
        s1 += q1[d] * r;
        s2 += q2[d] * r;
        s3 += q3[d] * r;
      }
      out[(q + 0) * num_rows + i] = s0;
      out[(q + 1) * num_rows + i] = s1;
      out[(q + 2) * num_rows + i] = s2;
      out[(q + 3) * num_rows + i] = s3;
    }
  }
  for (; q < num_queries; ++q) {
    Avx2DotBatch(queries + q * dim, rows, num_rows, dim, out + q * num_rows);
  }
}

void Avx2AdcBatch(const float* table, const uint8_t* codes, size_t num_codes,
                  size_t m, float* out) {
  size_t i = 0;
  // Eight codes per pass: one gather per subspace pulls the table
  // entry of each code's byte; lane-wise adds preserve scalar
  // summation order, so results are bit-identical to scalar.
  for (; i + 8 <= num_codes; i += 8) {
    const uint8_t* c = codes + i * m;
    __m256 acc = _mm256_setzero_ps();
    for (size_t s = 0; s < m; ++s) {
      const __m256i idx = _mm256_setr_epi32(
          c[0 * m + s], c[1 * m + s], c[2 * m + s], c[3 * m + s],
          c[4 * m + s], c[5 * m + s], c[6 * m + s], c[7 * m + s]);
      acc = _mm256_add_ps(
          acc, _mm256_i32gather_ps(table + s * kAdcCentroids, idx, 4));
    }
    _mm256_storeu_ps(out + i, acc);
  }
  for (; i < num_codes; ++i) {
    const uint8_t* code = codes + i * m;
    float dist = 0.0f;
    for (size_t s = 0; s < m; ++s) {
      dist += table[s * kAdcCentroids + code[s]];
    }
    out[i] = dist;
  }
}

/// One packed block (32 codes): four 8-lane accumulators. Per
/// subspace the 32 code bytes are one contiguous 32-byte load instead
/// of the strided per-code byte reads Avx2AdcBatch pays before each
/// gather; lane-wise adds in s order keep results bit-identical to
/// scalar.
inline void Avx2AdcPackedBlock(const float* table, const uint8_t* block,
                               size_t m, float* out) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  for (size_t s = 0; s < m; ++s) {
    const uint8_t* lanes = block + s * kPackedBlock;
    const float* row = table + s * kAdcCentroids;
    const __m256i i0 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lanes + 0)));
    const __m256i i1 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lanes + 8)));
    const __m256i i2 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lanes + 16)));
    const __m256i i3 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(lanes + 24)));
    acc0 = _mm256_add_ps(acc0, _mm256_i32gather_ps(row, i0, 4));
    acc1 = _mm256_add_ps(acc1, _mm256_i32gather_ps(row, i1, 4));
    acc2 = _mm256_add_ps(acc2, _mm256_i32gather_ps(row, i2, 4));
    acc3 = _mm256_add_ps(acc3, _mm256_i32gather_ps(row, i3, 4));
  }
  _mm256_storeu_ps(out + 0, acc0);
  _mm256_storeu_ps(out + 8, acc1);
  _mm256_storeu_ps(out + 16, acc2);
  _mm256_storeu_ps(out + 24, acc3);
}

void Avx2AdcPacked(const float* table, const uint8_t* packed,
                   size_t num_codes, size_t m, float* out) {
  size_t i = 0;
  for (; i + kPackedBlock <= num_codes; i += kPackedBlock) {
    Avx2AdcPackedBlock(table, packed + i * m, m, out + i);
  }
  if (i < num_codes) {
    // Tail block: the padding lanes are zero bytes (valid table index
    // 0), so the full block computes safely; copy only the real lanes.
    float lanes[kPackedBlock];
    Avx2AdcPackedBlock(table, packed + i * m, m, lanes);
    for (size_t j = 0; i + j < num_codes; ++j) {
      out[i + j] = lanes[j];
    }
  }
}

const KernelTable kAvx2Table = {
    "avx2",     Avx2L2Batch, Avx2DotBatch, Avx2L2Tile,
    Avx2DotTile, Avx2AdcBatch, Avx2AdcPacked,
};

}  // namespace

const KernelTable&
Avx2Kernels() {
  return kAvx2Table;
}

}  // namespace rago::ann::kernels

#endif  // RAGO_KERNELS_HAVE_AVX2
