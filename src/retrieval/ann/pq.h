/**
 * @file pq.h
 * Product quantization (PQ) codec with asymmetric distance computation.
 *
 * PQ splits each vector into `m` subspaces and quantizes each to one
 * of 256 per-subspace centroids, so a vector becomes `m` bytes. The
 * paper's hyperscale database compresses 768-dim vectors to 96 bytes;
 * queries scan codes via ADC lookup tables, which is exactly the
 * byte-stream workload the ScaNN cost model prices.
 */
#ifndef RAGO_RETRIEVAL_ANN_PQ_H
#define RAGO_RETRIEVAL_ANN_PQ_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/matrix.h"

namespace rago::ann {

/// Trained product quantizer: m subspaces x 256 centroids each.
class ProductQuantizer {
 public:
  /// Number of centroids per subspace (8-bit codes).
  static constexpr int kCentroids = 256;

  /**
   * Trains codebooks over `data`.
   *
   * @param data training vectors (dim divisible by m).
   * @param m number of subspaces (= code bytes per vector).
   * @param rng seeding for the per-subspace k-means.
   * @param kmeans_iterations Lloyd iterations per subspace.
   */
  ProductQuantizer(const Matrix& data, int m, Rng& rng,
                   int kmeans_iterations = 10);

  /// Encodes one vector into m code bytes appended to `out`.
  void Encode(const float* vec, uint8_t* out) const;

  /// Encodes all rows; returns rows*m bytes.
  std::vector<uint8_t> EncodeAll(const Matrix& data) const;

  /// Reconstructs an approximation of a coded vector.
  void Decode(const uint8_t* code, float* out) const;

  /**
   * Builds the ADC lookup table for `query`: m*256 partial squared
   * distances, laid out subspace-major.
   */
  std::vector<float> BuildAdcTable(const float* query) const;

  /// ADC distance of one code against a prebuilt table.
  float AdcDistance(const std::vector<float>& table,
                    const uint8_t* code) const;

  int m() const { return m_; }
  size_t dim() const { return dim_; }
  size_t sub_dim() const { return sub_dim_; }

  /// Bytes per encoded vector (== m).
  size_t CodeBytes() const { return static_cast<size_t>(m_); }

 private:
  int m_ = 0;
  size_t dim_ = 0;
  size_t sub_dim_ = 0;
  /// Codebooks: m matrices of kCentroids x sub_dim, flattened.
  std::vector<float> codebooks_;

  const float* Centroid(int subspace, int centroid) const {
    return codebooks_.data() +
           (static_cast<size_t>(subspace) * kCentroids + centroid) * sub_dim_;
  }
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_PQ_H
