#include "retrieval/ann/dataset.h"

namespace rago::ann {

Matrix
GenUniform(size_t n, size_t dim, Rng& rng, float lo, float hi) {
  Matrix data(n, dim);
  for (size_t i = 0; i < n; ++i) {
    float* row = data.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.NextUniform(lo, hi));
    }
  }
  return data;
}

Matrix
GenClustered(size_t n, size_t dim, int clusters, float spread, Rng& rng) {
  Matrix centers(static_cast<size_t>(clusters), dim);
  for (size_t c = 0; c < static_cast<size_t>(clusters); ++c) {
    float* row = centers.Row(c);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(rng.NextUniform(0.0, 10.0));
    }
  }
  Matrix data(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const float* center =
        centers.Row(rng.NextBounded(static_cast<uint64_t>(clusters)));
    float* row = data.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = center[d] +
               spread * static_cast<float>(rng.NextGaussian());
    }
  }
  return data;
}

Matrix
GenQueriesNear(const Matrix& data, size_t n, float noise, Rng& rng) {
  Matrix queries(n, data.dim());
  for (size_t i = 0; i < n; ++i) {
    const float* base = data.Row(rng.NextBounded(data.rows()));
    float* row = queries.Row(i);
    for (size_t d = 0; d < data.dim(); ++d) {
      row[d] = base[d] + noise * static_cast<float>(rng.NextGaussian());
    }
  }
  return queries;
}

}  // namespace rago::ann
