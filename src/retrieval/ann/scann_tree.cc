#include "retrieval/ann/scann_tree.h"

#include <algorithm>

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/kmeans.h"
#include "retrieval/ann/rerank.h"

namespace rago::ann {

ScannTree::ScannTree(Matrix data, const ScannTreeOptions& options, Rng& rng)
    : options_(options), num_vectors_(data.rows()) {
  RAGO_REQUIRE(!data.empty(), "tree requires a non-empty database");
  RAGO_REQUIRE(options.levels >= 1, "tree needs at least one centroid level");
  RAGO_REQUIRE(options.fanout > 1, "fanout must exceed one");

  // A single global PQ codebook (non-residual) keeps the ADC table
  // per-query instead of per-leaf, matching ScaNN's flat scoring path.
  pq_ = std::make_unique<ProductQuantizer>(data, options.pq_subspaces, rng,
                                           options.kmeans_iterations);

  std::vector<int64_t> all_ids(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    all_ids[i] = static_cast<int64_t>(i);
  }
  root_ = BuildNode(data, all_ids, /*level=*/0, rng);

  if (options.keep_raw_vectors) {
    raw_ = std::move(data);
  }
}

std::unique_ptr<ScannTree::Node>
ScannTree::BuildNode(const Matrix& data, const std::vector<int64_t>& ids,
                     int level, Rng& rng) {
  auto node = std::make_unique<Node>();

  // Leaf: encode members with the global PQ codebook.
  const bool too_small =
      ids.size() <= static_cast<size_t>(options_.fanout);
  if (level == options_.levels || (too_small && level > 0)) {
    node->ids = ids;
    node->codes = PackedCodes(pq_->CodeBytes());
    std::vector<uint8_t> code(pq_->CodeBytes());
    for (size_t i = 0; i < ids.size(); ++i) {
      pq_->Encode(data.Row(static_cast<size_t>(ids[i])), code.data());
      node->codes.Append(code.data());
    }
    ++leaf_count_;
    return node;
  }

  // Internal: partition members into `fanout` clusters.
  Matrix subset(ids.size(), data.dim());
  for (size_t i = 0; i < ids.size(); ++i) {
    subset.CopyRowFrom(data, static_cast<size_t>(ids[i]), i);
  }
  const int k = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(options_.fanout), ids.size()));
  KMeansOptions kmeans_options;
  kmeans_options.max_iterations = options_.kmeans_iterations;
  KMeansResult trained = TrainKMeans(subset, k, rng, kmeans_options);

  std::vector<std::vector<int64_t>> partitions(static_cast<size_t>(k));
  for (size_t i = 0; i < ids.size(); ++i) {
    partitions[static_cast<size_t>(trained.assignments[i])].push_back(ids[i]);
  }

  // Drop empty partitions while keeping centroid rows aligned with
  // children.
  std::vector<size_t> live;
  for (size_t p = 0; p < partitions.size(); ++p) {
    if (!partitions[p].empty()) {
      live.push_back(p);
    }
  }
  node->centroids = Matrix(live.size(), data.dim());
  for (size_t i = 0; i < live.size(); ++i) {
    node->centroids.CopyRowFrom(trained.centroids, live[i], i);
    node->children.push_back(
        BuildNode(data, partitions[live[i]], level + 1, rng));
  }
  return node;
}

std::vector<Neighbor>
ScannTree::Search(const float* query, size_t k, int beam, int rerank) const {
  RAGO_REQUIRE(beam > 0, "beam width must be positive");
  RAGO_REQUIRE(rerank == 0 || !raw_.empty(),
               "re-ranking requires keep_raw_vectors at build time");

  // Beam search down the centroid levels; each node's centroid block is
  // contiguous, so scoring a frontier is one batched scan per node.
  std::vector<const Node*> frontier = {root_.get()};
  while (!frontier.empty() && !frontier.front()->IsLeaf()) {
    // Score all children of the frontier, keep the `beam` closest.
    TopK best(static_cast<size_t>(beam));
    std::vector<const Node*> child_nodes;
    for (const Node* node : frontier) {
      kernels::ScanRowsIntoTopK(
          Metric::kL2, query, node->centroids.data(), node->centroids.rows(),
          node->centroids.dim(), /*ids=*/nullptr,
          /*base_id=*/static_cast<int64_t>(child_nodes.size()), best);
      for (const auto& child : node->children) {
        child_nodes.push_back(child.get());
      }
    }
    std::vector<const Node*> next;
    for (const Neighbor& nb : best.SortedTake()) {
      next.push_back(child_nodes[static_cast<size_t>(nb.id)]);
    }
    frontier = std::move(next);
  }

  // ADC scan of the selected leaves.
  const std::vector<float> table = pq_->BuildAdcTable(query);
  const size_t pool = std::max(k, static_cast<size_t>(rerank));
  TopK candidates(pool);
  for (const Node* leaf : frontier) {
    kernels::ScanCodesPackedIntoTopK(table.data(), leaf->codes.data(),
                                     leaf->ids.size(), pq_->CodeBytes(),
                                     leaf->ids.data(), /*base_id=*/0,
                                     candidates);
  }

  std::vector<Neighbor> approx = candidates.SortedTake();
  if (rerank <= 0) {
    if (approx.size() > k) {
      approx.resize(k);
    }
    return approx;
  }
  return RerankExactL2(approx, query, raw_, k);
}

double
ScannTree::ExpectedLeafBytesScanned(int beam) const {
  RAGO_CHECK(leaf_count_ > 0, "tree has no leaves");
  const double leaves_visited =
      std::min<double>(beam, static_cast<double>(leaf_count_));
  const double avg_leaf_vectors =
      static_cast<double>(num_vectors_) / static_cast<double>(leaf_count_);
  return leaves_visited * avg_leaf_vectors *
         static_cast<double>(pq_->CodeBytes());
}

std::vector<std::vector<Neighbor>>
ScannTree::SearchBatch(const Matrix& queries, size_t k, int beam,
                       int rerank) const {
  RAGO_REQUIRE(queries.dim() == pq_->dim(),
               "query dimensionality mismatch");
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Search(queries.Row(q), k, beam, rerank);
  }
  return out;
}

}  // namespace rago::ann
