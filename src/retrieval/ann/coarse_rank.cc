#include "retrieval/ann/coarse_rank.h"

#include <algorithm>

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

std::vector<std::vector<int32_t>>
RankCentroidsBatch(const Matrix& queries, const Matrix& centroids,
                   int nprobe) {
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  RAGO_REQUIRE(queries.dim() == centroids.dim(),
               "query/centroid dimensionality mismatch");
  const size_t num_queries = queries.rows();
  const size_t num_centroids = centroids.rows();
  const size_t keep = std::min<size_t>(static_cast<size_t>(nprobe),
                                       num_centroids);

  std::vector<TopK> heaps;
  heaps.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    heaps.emplace_back(keep);
  }
  // Shared micro-tiled scan; each heap sees centroids in ascending
  // index order, so tie-breaks match the per-query ranking exactly.
  kernels::ScanTileIntoTopK(Metric::kL2, queries.data(), num_queries,
                            centroids.data(), num_centroids,
                            centroids.dim(), /*base_id=*/0, heaps.data());

  std::vector<std::vector<int32_t>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<int32_t>& ranked = out[q];
    ranked.reserve(keep);
    for (const Neighbor& neighbor : heaps[q].SortedTake()) {
      ranked.push_back(static_cast<int32_t>(neighbor.id));
    }
  }
  return out;
}

}  // namespace rago::ann
