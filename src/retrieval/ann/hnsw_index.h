/**
 * @file hnsw_index.h
 * Hierarchical Navigable Small World (HNSW) graph index.
 *
 * The paper motivates IVF-PQ over graph-based ANN for hyperscale RAG
 * because PQ codes are far more memory-efficient (§2), while graphs
 * win on per-query work at small-to-medium scale. This functional
 * HNSW implementation makes that trade-off measurable in the
 * benchmarks: recall vs distance computations vs bytes of index.
 *
 * Implements the standard algorithm [Malkov & Yashunin, TPAMI'18]:
 * exponentially distributed layer assignment, greedy descent through
 * the upper layers, and beam search (ef) with bidirectional link
 * insertion and degree pruning at the base layer.
 */
#ifndef RAGO_RETRIEVAL_ANN_HNSW_INDEX_H
#define RAGO_RETRIEVAL_ANN_HNSW_INDEX_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

/// HNSW build parameters.
struct HnswOptions {
  int max_degree = 16;           ///< M: links per node above layer 0.
  int ef_construction = 64;      ///< Beam width during insertion.
  double level_multiplier = 0.0; ///< 0 -> default 1/ln(M).
};

/// In-memory HNSW graph over an owned vector matrix.
class HnswIndex {
 public:
  /**
   * Builds the graph by inserting every row of `data` in order.
   * Deterministic given `rng`'s seed.
   */
  HnswIndex(Matrix data, Metric metric, const HnswOptions& options,
            Rng& rng);

  /**
   * Approximate top-k with beam width `ef_search` (>= k for sensible
   * recall). Returns ascending-distance neighbors.
   */
  std::vector<Neighbor> Search(const float* query, size_t k,
                               int ef_search) const;

  /**
   * Search that adds its distance-evaluation count to
   * `*distance_evals` instead of writing the shared mutable counter —
   * safe to call concurrently from multiple threads (the sharded tier
   * runs (shard x query-block) tasks against one index).
   */
  std::vector<Neighbor> Search(const float* query, size_t k, int ef_search,
                               int64_t* distance_evals) const;

  /**
   * Batched Search over every row of `queries`. Afterwards
   * last_distance_evals() reports the total across the whole batch.
   */
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 size_t k,
                                                 int ef_search) const;

  /// Concurrency-safe batched search; adds the batch's distance
  /// evaluations to `*distance_evals` (the shared counter is untouched).
  std::vector<std::vector<Neighbor>> SearchBatch(
      const Matrix& queries, size_t k, int ef_search,
      int64_t* distance_evals) const;

  /// Distance computations performed by the last counter-less Search /
  /// SearchBatch call (racy under concurrent searches; prefer the
  /// `distance_evals` overloads there).
  int64_t last_distance_evals() const { return last_distance_evals_; }

  /// Total link-storage bytes (the graph's memory overhead).
  int64_t GraphBytes() const;

  size_t size() const { return data_.rows(); }
  int max_level() const { return max_level_; }

 private:
  struct Node {
    int level = 0;
    /// links[l] = neighbor ids at layer l (0 <= l <= level).
    std::vector<std::vector<int32_t>> links;
  };

  /**
   * Gather buffers reused across one search (or the whole build):
   * graph neighbors are scattered through the database, so each hop
   * stages its candidates into `rows` and scores the block with one
   * batched kernel call. One instance per top-level call keeps the
   * index immutable and concurrent searches independent.
   */
  struct Scratch {
    std::vector<int32_t> ids;  ///< Candidate ids, in link order.
    std::vector<float> rows;   ///< Their gathered vectors.
    std::vector<float> dists;  ///< Batched distance outputs.
  };

  /// Distance to one node; bumps the caller-owned eval counter.
  float Dist(const float* query, int32_t id, int64_t& evals) const;

  /// Gathers the first `count` ids of scratch.ids into scratch.rows,
  /// batch-computes their distances into scratch.dists, and bumps
  /// `evals` by `count`.
  void BatchDist(const float* query, size_t count, Scratch& scratch,
                 int64_t& evals) const;

  /// Greedy descent to the closest node at `layer`.
  int32_t GreedyStep(const float* query, int32_t entry, int layer,
                     int64_t& evals, Scratch& scratch) const;

  /// Beam search at one layer; returns up to `ef` closest candidates.
  std::vector<Neighbor> SearchLayer(const float* query, int32_t entry,
                                    int ef, int layer, int64_t& evals,
                                    Scratch& scratch) const;

  /// Selects up to `m` diverse neighbors from candidates (heuristic).
  std::vector<int32_t> SelectNeighbors(const std::vector<Neighbor>& found,
                                       int m) const;

  int DrawLevel(Rng& rng) const;

  Matrix data_;
  Metric metric_;
  HnswOptions options_;
  double level_multiplier_ = 0.0;
  std::vector<Node> nodes_;
  int32_t entry_point_ = -1;
  int max_level_ = -1;
  mutable int64_t last_distance_evals_ = 0;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_HNSW_INDEX_H
