/**
 * @file recall.h
 * Recall evaluation against exact ground truth.
 */
#ifndef RAGO_RETRIEVAL_ANN_RECALL_H
#define RAGO_RETRIEVAL_ANN_RECALL_H

#include <vector>

#include "retrieval/ann/topk.h"

namespace rago::ann {

/**
 * Recall@k of one query: fraction of the first k ground-truth ids
 * present anywhere in `approx`.
 */
double RecallAtK(const std::vector<Neighbor>& approx,
                 const std::vector<Neighbor>& truth, size_t k);

/// Mean recall@k over per-query result lists (sizes must match).
double MeanRecallAtK(const std::vector<std::vector<Neighbor>>& approx,
                     const std::vector<std::vector<Neighbor>>& truth,
                     size_t k);

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_RECALL_H
