/**
 * @file kmeans.h
 * Lloyd's k-means with k-means++ seeding.
 *
 * Used to train IVF coarse quantizers, product-quantizer codebooks,
 * and the hierarchical ScaNN-style tree. Deterministic given the Rng
 * seed.
 */
#ifndef RAGO_RETRIEVAL_ANN_KMEANS_H
#define RAGO_RETRIEVAL_ANN_KMEANS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/matrix.h"

namespace rago::ann {

/// k-means training output.
struct KMeansResult {
  Matrix centroids;                  ///< k x dim centroid matrix.
  std::vector<int32_t> assignments;  ///< Per-input nearest centroid.
  double inertia = 0.0;              ///< Sum of squared distances.
  int iterations_run = 0;
};

/// Tuning knobs for k-means training.
struct KMeansOptions {
  int max_iterations = 20;
  /// Stop early when relative inertia improvement drops below this.
  double tolerance = 1e-4;
  /// Use k-means++ seeding (otherwise uniform random rows).
  bool plus_plus_seeding = true;
};

/**
 * Trains k centroids over `data`.
 *
 * Empty clusters are re-seeded from the point farthest from its
 * centroid, so exactly k non-degenerate centroids are returned even on
 * adversarial data (k must not exceed the number of rows).
 */
KMeansResult TrainKMeans(const Matrix& data, int k, Rng& rng,
                         const KMeansOptions& options = {});

/// Index of the centroid nearest to `vec` (L2).
int32_t NearestCentroid(const Matrix& centroids, const float* vec);

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_KMEANS_H
