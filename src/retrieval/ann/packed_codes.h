/**
 * @file packed_codes.h
 * Blocked subspace-major ("fast-scan") storage for PQ code lists.
 *
 * PQ encoders emit codes code-major: code i's m bytes are contiguous.
 * SIMD ADC kernels want the transpose — for a group of codes, all
 * first-subspace bytes contiguous, then all second-subspace bytes —
 * so each subspace becomes one vector load instead of a strided
 * per-code byte walk (FAISS's fast-scan layout). PackedCodes stores a
 * list in blocks of kernels::kPackedBlock codes: within block b, byte
 * `b * kPackedBlock * m + s * kPackedBlock + j` is subspace s of code
 * `b * kPackedBlock + j`, and the final block is zero-padded to full
 * width (byte 0 is a valid table index, so kernels may compute the
 * padding lanes and discard them). Scanning goes through
 * kernels::ScanCodesPackedIntoTopK, which is bit-identical to the
 * strided scan in every kernel variant.
 */
#ifndef RAGO_RETRIEVAL_ANN_PACKED_CODES_H
#define RAGO_RETRIEVAL_ANN_PACKED_CODES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {

/// A list of m-byte PQ codes in the blocked subspace-major layout.
class PackedCodes {
 public:
  /// Empty list with no code width; assign a width-bearing instance
  /// before appending (lets node/list containers default-construct).
  PackedCodes() = default;

  /// Empty list of m-byte codes (m > 0).
  explicit PackedCodes(size_t m);

  /// Packs `num_codes` codes from the strided (code-major) layout.
  PackedCodes(const uint8_t* codes, size_t num_codes, size_t m);

  /// Appends one m-byte code (strided layout) to the list.
  void Append(const uint8_t* code);

  /// Unpacks code i back into m strided bytes at `out`.
  void Unpack(size_t i, uint8_t* out) const;

  /// The whole list back in the strided layout (num_codes * m bytes).
  std::vector<uint8_t> UnpackAll() const;

  /// Packed blocks, ceil(num_codes / kPackedBlock) * kPackedBlock * m
  /// bytes; the layout ScanCodesPackedIntoTopK expects.
  const uint8_t* data() const { return packed_.data(); }

  size_t num_codes() const { return num_codes_; }
  size_t m() const { return m_; }

  /// Total packed bytes including the final block's zero padding.
  size_t PackedBytes() const { return packed_.size(); }

 private:
  size_t m_ = 0;
  size_t num_codes_ = 0;
  std::vector<uint8_t> packed_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_PACKED_CODES_H
