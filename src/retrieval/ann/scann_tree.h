/**
 * @file scann_tree.h
 * Multi-level k-means tree with PQ-coded leaves (ScaNN-style).
 *
 * The paper's hyperscale database uses a balanced three-level tree
 * with a ~4K fanout per node (§4). This functional counterpart builds
 * the same shape at laptop scale: `levels` of k-means partitioning
 * with a configurable fanout, leaves storing product-quantized codes
 * scanned via ADC. Beam width per level plays the role of the
 * centroid-selection fraction in the analytical cost model.
 */
#ifndef RAGO_RETRIEVAL_ANN_SCANN_TREE_H
#define RAGO_RETRIEVAL_ANN_SCANN_TREE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/packed_codes.h"
#include "retrieval/ann/pq.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

/// Tree build parameters.
struct ScannTreeOptions {
  int levels = 2;        ///< Internal (centroid) levels above the leaves.
  int fanout = 16;       ///< Children per internal node.
  int pq_subspaces = 8;  ///< PQ code bytes per vector.
  int kmeans_iterations = 8;
  bool keep_raw_vectors = true;  ///< Enables exact re-ranking.
};

/// Hierarchical centroid tree over PQ-coded leaves.
class ScannTree {
 public:
  ScannTree(Matrix data, const ScannTreeOptions& options, Rng& rng);

  /**
   * Beam search: keeps the `beam` closest nodes per internal level,
   * then ADC-scans the codes in the selected leaves.
   *
   * @param rerank if positive, exact re-rank of the top candidates.
   */
  std::vector<Neighbor> Search(const float* query, size_t k, int beam,
                               int rerank = 0) const;

  /// Batched Search over every row of `queries`.
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 size_t k, int beam,
                                                 int rerank = 0) const;

  /// Average leaf code bytes scanned by a query with beam width `beam`.
  double ExpectedLeafBytesScanned(int beam) const;

  /// Number of leaves in the tree.
  size_t NumLeaves() const { return leaf_count_; }
  size_t size() const { return num_vectors_; }

 private:
  struct Node {
    Matrix centroids;  ///< One row per child (internal nodes only).
    std::vector<std::unique_ptr<Node>> children;
    std::vector<int64_t> ids;  ///< Leaf payload.
    PackedCodes codes;         ///< Leaf payload, packed fast-scan layout.

    bool IsLeaf() const { return children.empty(); }
  };

  std::unique_ptr<Node> BuildNode(const Matrix& data,
                                  const std::vector<int64_t>& ids, int level,
                                  Rng& rng);

  ScannTreeOptions options_;
  size_t num_vectors_ = 0;
  size_t leaf_count_ = 0;
  std::unique_ptr<Node> root_;
  std::unique_ptr<ProductQuantizer> pq_;
  Matrix raw_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_SCANN_TREE_H
