#include "retrieval/ann/ivf_index.h"

#include <algorithm>

#include "common/check.h"

namespace rago::ann {

IvfIndex::IvfIndex(Matrix data, Metric metric, const IvfOptions& options,
                   Rng& rng)
    : data_(std::move(data)), metric_(metric), nlist_(options.nlist) {
  RAGO_REQUIRE(!data_.empty(), "IVF requires a non-empty database");
  RAGO_REQUIRE(options.nlist > 0, "nlist must be positive");
  RAGO_REQUIRE(static_cast<size_t>(options.nlist) <= data_.rows(),
               "nlist cannot exceed the database size");

  KMeansOptions kmeans_options;
  kmeans_options.max_iterations = options.kmeans_iterations;
  KMeansResult trained = TrainKMeans(data_, nlist_, rng, kmeans_options);
  centroids_ = std::move(trained.centroids);

  lists_.resize(static_cast<size_t>(nlist_));
  for (size_t i = 0; i < data_.rows(); ++i) {
    lists_[static_cast<size_t>(trained.assignments[i])].push_back(
        static_cast<int64_t>(i));
  }
}

std::vector<int32_t>
IvfIndex::NearestClusters(const float* query, int nprobe) const {
  // Rank all centroids by distance and take the closest nprobe.
  TopK topk(static_cast<size_t>(std::min(nprobe, nlist_)));
  for (int c = 0; c < nlist_; ++c) {
    topk.Push(L2Sq(query, centroids_.Row(static_cast<size_t>(c)),
                   centroids_.dim()),
              c);
  }
  std::vector<int32_t> out;
  for (const Neighbor& nb : topk.SortedTake()) {
    out.push_back(static_cast<int32_t>(nb.id));
  }
  return out;
}

std::vector<Neighbor>
IvfIndex::Search(const float* query, size_t k, int nprobe) const {
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  TopK topk(k);
  for (int32_t cluster : NearestClusters(query, nprobe)) {
    for (int64_t id : lists_[static_cast<size_t>(cluster)]) {
      topk.Push(Distance(metric_, query, data_.Row(static_cast<size_t>(id)),
                         data_.dim()),
                id);
    }
  }
  return topk.SortedTake();
}

std::vector<std::vector<Neighbor>>
IvfIndex::SearchBatch(const Matrix& queries, size_t k, int nprobe) const {
  RAGO_REQUIRE(queries.dim() == data_.dim(), "query dimensionality mismatch");
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Search(queries.Row(q), k, nprobe);
  }
  return out;
}

double
IvfIndex::ExpectedScannedVectors(int nprobe) const {
  const double probed = std::min(nprobe, nlist_);
  return static_cast<double>(data_.rows()) * probed / nlist_;
}

}  // namespace rago::ann
