#include "retrieval/ann/ivf_index.h"

#include <algorithm>

#include "common/check.h"
#include "retrieval/ann/coarse_rank.h"
#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {

IvfIndex::IvfIndex(Matrix data, Metric metric, const IvfOptions& options,
                   Rng& rng)
    : metric_(metric), nlist_(options.nlist), num_rows_(data.rows()),
      dim_(data.dim()) {
  RAGO_REQUIRE(!data.empty(), "IVF requires a non-empty database");
  RAGO_REQUIRE(options.nlist > 0, "nlist must be positive");
  RAGO_REQUIRE(static_cast<size_t>(options.nlist) <= data.rows(),
               "nlist cannot exceed the database size");

  KMeansOptions kmeans_options;
  kmeans_options.max_iterations = options.kmeans_iterations;
  KMeansResult trained = TrainKMeans(data, nlist_, rng, kmeans_options);
  centroids_ = std::move(trained.centroids);

  lists_.resize(static_cast<size_t>(nlist_));
  for (size_t i = 0; i < num_rows_; ++i) {
    lists_[static_cast<size_t>(trained.assignments[i])].push_back(
        static_cast<int64_t>(i));
  }

  // Regroup rows list-contiguously so each probe scans one block with
  // the batched kernels; ids stay ascending within a list, preserving
  // the deterministic tie-break order of the old scattered scan.
  reordered_ = Matrix(num_rows_, dim_);
  list_offsets_.resize(static_cast<size_t>(nlist_) + 1);
  size_t next = 0;
  for (size_t c = 0; c < lists_.size(); ++c) {
    list_offsets_[c] = next;
    for (int64_t id : lists_[c]) {
      reordered_.CopyRowFrom(data, static_cast<size_t>(id), next++);
    }
  }
  list_offsets_[lists_.size()] = next;
}

std::vector<int32_t>
IvfIndex::NearestClusters(const float* query, int nprobe) const {
  // Rank all centroids by distance and take the closest nprobe.
  TopK topk(static_cast<size_t>(std::min(nprobe, nlist_)));
  kernels::ScanRowsIntoTopK(Metric::kL2, query, centroids_.data(),
                            centroids_.rows(), centroids_.dim(),
                            /*ids=*/nullptr, /*base_id=*/0, topk);
  std::vector<int32_t> out;
  for (const Neighbor& nb : topk.SortedTake()) {
    out.push_back(static_cast<int32_t>(nb.id));
  }
  return out;
}

std::vector<Neighbor>
IvfIndex::SearchLists(const float* query, size_t k,
                      const std::vector<int32_t>& clusters) const {
  TopK topk(k);
  for (int32_t cluster : clusters) {
    const auto c = static_cast<size_t>(cluster);
    const size_t begin = list_offsets_[c];
    const size_t count = list_offsets_[c + 1] - begin;
    if (count == 0) {
      continue;
    }
    kernels::ScanRowsIntoTopK(metric_, query, reordered_.Row(begin), count,
                              dim_, lists_[c].data(), /*base_id=*/0, topk);
  }
  return topk.SortedTake();
}

std::vector<Neighbor>
IvfIndex::Search(const float* query, size_t k, int nprobe) const {
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  return SearchLists(query, k, NearestClusters(query, nprobe));
}

std::vector<std::vector<Neighbor>>
IvfIndex::SearchBatch(const Matrix& queries, size_t k, int nprobe) const {
  RAGO_REQUIRE(queries.dim() == dim_, "query dimensionality mismatch");
  RAGO_REQUIRE(nprobe > 0, "nprobe must be positive");
  // Rank coarse centroids for the whole block at once (micro-tile
  // kernel); bit-identical to the per-query ranking, so batched and
  // per-query search return the same ids.
  const std::vector<std::vector<int32_t>> ranked =
      RankCentroidsBatch(queries, centroids_, nprobe);
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = SearchLists(queries.Row(q), k, ranked[q]);
  }
  return out;
}

double
IvfIndex::ExpectedScannedVectors(int nprobe) const {
  const double probed = std::min(nprobe, nlist_);
  return static_cast<double>(num_rows_) * probed / nlist_;
}

}  // namespace rago::ann
