/**
 * @file distance.h
 * Distance kernels for the functional ANN library.
 *
 * Distances follow the "smaller is better" convention: inner-product
 * similarity is negated so the same top-k machinery serves both
 * metrics.
 *
 * These per-pair functions are the portable scalar reference. Scan
 * loops should use the batched kernel layer in
 * kernels/distance_kernels.h instead, which runs the same math through
 * runtime-dispatched SIMD variants (the scalar variant is bit-identical
 * to these loops).
 */
#ifndef RAGO_RETRIEVAL_ANN_DISTANCE_H
#define RAGO_RETRIEVAL_ANN_DISTANCE_H

#include <cstddef>

namespace rago::ann {

/// Supported similarity metrics.
enum class Metric {
  kL2,            ///< Squared Euclidean distance.
  kInnerProduct,  ///< Negated dot product (maximum inner product search).
};

/// Squared L2 distance between two `dim`-wide vectors.
float L2Sq(const float* a, const float* b, size_t dim);

/// Dot product between two `dim`-wide vectors.
float Dot(const float* a, const float* b, size_t dim);

/// Metric dispatch; returns a value where smaller means more similar.
float Distance(Metric metric, const float* a, const float* b, size_t dim);

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_DISTANCE_H
