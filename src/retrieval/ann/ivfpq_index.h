/**
 * @file ivfpq_index.h
 * IVF-PQ: inverted lists of product-quantized codes.
 *
 * The workhorse algorithm for hyperscale RAG retrieval (paper §2):
 * memory-efficient PQ codes (96 bytes for 768 dims at 1 byte per 8
 * dims) scanned with ADC lookup tables inside the probed IVF lists.
 * Optionally re-ranks the top PQ candidates with exact distances.
 */
#ifndef RAGO_RETRIEVAL_ANN_IVFPQ_INDEX_H
#define RAGO_RETRIEVAL_ANN_IVFPQ_INDEX_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/ivf_index.h"
#include "retrieval/ann/packed_codes.h"
#include "retrieval/ann/pq.h"

namespace rago::ann {

/// IVF-PQ build parameters.
struct IvfPqOptions {
  int nlist = 64;
  int pq_subspaces = 8;  ///< Code bytes per vector.
  int kmeans_iterations = 10;
  bool encode_residuals = true;  ///< PQ on (vector - centroid) residuals.
  /// Keep the raw vectors to allow exact re-ranking (costs memory).
  bool keep_raw_vectors = true;
};

/// IVF index whose lists store PQ codes instead of raw vectors.
class IvfPqIndex {
 public:
  IvfPqIndex(Matrix data, const IvfPqOptions& options, Rng& rng);

  /**
   * Approximate top-k via ADC scan of `nprobe` lists.
   *
   * @param rerank if positive, the top `rerank` PQ candidates are
   *   re-scored with exact distances (requires keep_raw_vectors).
   */
  std::vector<Neighbor> Search(const float* query, size_t k, int nprobe,
                               int rerank = 0) const;

  /**
   * Batched Search over every row of `queries`. Coarse centroids are
   * ranked for the whole block through the micro-tile kernel
   * (coarse_rank.h); results are exactly per-query Search's.
   */
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 size_t k, int nprobe,
                                                 int rerank = 0) const;

  /// Bytes of PQ codes scanned by a query with `nprobe` (average).
  double ExpectedScannedBytes(int nprobe) const;

  int nlist() const { return nlist_; }
  size_t size() const { return num_vectors_; }
  const ProductQuantizer& pq() const { return *pq_; }

 private:
  /// ADC-scans the given ranked clusters' lists for one query.
  std::vector<Neighbor> SearchLists(
      const float* query, size_t k, int rerank,
      const std::vector<int32_t>& clusters) const;

  size_t num_vectors_ = 0;
  int nlist_ = 0;
  bool encode_residuals_ = true;
  Matrix centroids_;
  Matrix raw_;  ///< Empty when keep_raw_vectors is false.
  std::unique_ptr<ProductQuantizer> pq_;
  /// Per-list vector ids and codes in the packed fast-scan layout.
  std::vector<std::vector<int64_t>> ids_;
  std::vector<PackedCodes> codes_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_IVFPQ_INDEX_H
