#include "retrieval/ann/recall.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace rago::ann {

double
RecallAtK(const std::vector<Neighbor>& approx,
          const std::vector<Neighbor>& truth, size_t k) {
  RAGO_REQUIRE(k > 0, "recall requires k >= 1");
  const size_t want = std::min(k, truth.size());
  if (want == 0) {
    return 1.0;
  }
  std::unordered_set<int64_t> found;
  for (const Neighbor& nb : approx) {
    found.insert(nb.id);
  }
  size_t hits = 0;
  for (size_t i = 0; i < want; ++i) {
    if (found.count(truth[i].id) > 0) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(want);
}

double
MeanRecallAtK(const std::vector<std::vector<Neighbor>>& approx,
              const std::vector<std::vector<Neighbor>>& truth, size_t k) {
  RAGO_REQUIRE(approx.size() == truth.size(),
               "approx/truth query counts must match");
  RAGO_REQUIRE(!approx.empty(), "need at least one query");
  double total = 0.0;
  for (size_t q = 0; q < approx.size(); ++q) {
    total += RecallAtK(approx[q], truth[q], k);
  }
  return total / static_cast<double>(approx.size());
}

}  // namespace rago::ann
