/**
 * @file matrix.h
 * Row-major dense float matrix used by the functional ANN library.
 *
 * The functional library (k-means, IVF, PQ, ScaNN-style tree) operates
 * on in-memory float vectors. A thin owning container keeps the code
 * free of raw pointer arithmetic at call sites.
 */
#ifndef RAGO_RETRIEVAL_ANN_MATRIX_H
#define RAGO_RETRIEVAL_ANN_MATRIX_H

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace rago::ann {

/// Owning row-major matrix of floats: `rows` vectors of width `dim`.
class Matrix {
 public:
  Matrix() = default;

  Matrix(size_t rows, size_t dim)
      : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {
    RAGO_REQUIRE(dim > 0, "matrix dim must be positive");
  }

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }

  float* Row(size_t i) {
    RAGO_CHECK(i < rows_, "row index out of range");
    return data_.data() + i * dim_;
  }

  const float* Row(size_t i) const {
    RAGO_CHECK(i < rows_, "row index out of range");
    return data_.data() + i * dim_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Deep copy (indexes take their data by move; clone to keep one).
  Matrix Clone() const {
    Matrix out;
    out.rows_ = rows_;
    out.dim_ = dim_;
    out.data_ = data_;
    return out;
  }

  /// Copies row `src_row` of `src` into row `dst_row` of this matrix.
  void CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row) {
    RAGO_CHECK(src.dim() == dim_, "dimensionality mismatch");
    const float* from = src.Row(src_row);
    float* to = Row(dst_row);
    for (size_t d = 0; d < dim_; ++d) {
      to[d] = from[d];
    }
  }

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_MATRIX_H
