/**
 * @file dataset.h
 * Synthetic vector dataset generators for the functional ANN library.
 *
 * The paper's databases are proprietary hyperscale corpora; for the
 * functional substrate we generate seeded synthetic data with
 * controllable cluster structure so recall/speed trade-offs (paper
 * Fig. 7b's P_scan axis) can be exercised deterministically.
 */
#ifndef RAGO_RETRIEVAL_ANN_DATASET_H
#define RAGO_RETRIEVAL_ANN_DATASET_H

#include <cstdint>

#include "common/rng.h"
#include "retrieval/ann/matrix.h"

namespace rago::ann {

/// i.i.d. uniform vectors in [lo, hi)^dim.
Matrix GenUniform(size_t n, size_t dim, Rng& rng, float lo = 0.0f,
                  float hi = 1.0f);

/**
 * Gaussian mixture: `clusters` centers drawn uniformly in [0,10)^dim,
 * points scattered around them with standard deviation `spread`.
 * Clustered data is the regime where IVF-style indexes shine.
 */
Matrix GenClustered(size_t n, size_t dim, int clusters, float spread,
                    Rng& rng);

/// Queries perturbed from random database rows (realistic near-duplicates).
Matrix GenQueriesNear(const Matrix& data, size_t n, float noise, Rng& rng);

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_DATASET_H
