#include "retrieval/ann/flat_index.h"

#include "common/check.h"

namespace rago::ann {

FlatIndex::FlatIndex(Matrix data, Metric metric)
    : data_(std::move(data)), metric_(metric) {
  RAGO_REQUIRE(!data_.empty(), "flat index requires a non-empty database");
}

std::vector<Neighbor>
FlatIndex::Search(const float* query, size_t k) const {
  TopK topk(k);
  for (size_t i = 0; i < data_.rows(); ++i) {
    topk.Push(Distance(metric_, query, data_.Row(i), data_.dim()),
              static_cast<int64_t>(i));
  }
  return topk.SortedTake();
}

std::vector<std::vector<Neighbor>>
FlatIndex::SearchBatch(const Matrix& queries, size_t k) const {
  RAGO_REQUIRE(queries.dim() == data_.dim(), "query dimensionality mismatch");
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Search(queries.Row(q), k);
  }
  return out;
}

}  // namespace rago::ann
