#include "retrieval/ann/flat_index.h"

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {
namespace {

/// Batched-search tile shape: 8 queries x 1024 rows of distances is a
/// 32 KB scratch block (L1/L2-resident at any dim), and 8 queries per
/// row pass feed the 4-query micro-tile kernel two full groups.
constexpr size_t kQueryTile = 8;
constexpr size_t kRowTile = 1024;

}  // namespace

FlatIndex::FlatIndex(Matrix data, Metric metric)
    : data_(std::move(data)), metric_(metric) {
  RAGO_REQUIRE(!data_.empty(), "flat index requires a non-empty database");
}

std::vector<Neighbor>
FlatIndex::Search(const float* query, size_t k) const {
  TopK topk(k);
  kernels::ScanRowsIntoTopK(metric_, query, data_.data(), data_.rows(),
                            data_.dim(), /*ids=*/nullptr, /*base_id=*/0,
                            topk);
  return topk.SortedTake();
}

std::vector<std::vector<Neighbor>>
FlatIndex::SearchBatch(const Matrix& queries, size_t k) const {
  RAGO_REQUIRE(queries.dim() == data_.dim(), "query dimensionality mismatch");
  const size_t num_queries = queries.rows();
  const size_t num_rows = data_.rows();
  std::vector<TopK> heaps;
  heaps.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    heaps.emplace_back(k);
  }
  // Rows in the outer loop: each database tile is streamed once and
  // scored against every query via the micro-tile kernel. Distances
  // reach each heap in ascending row order, so results are
  // bit-identical to per-query Search for any tiling.
  std::vector<float> dists(kQueryTile * kRowTile);
  for (size_t row0 = 0; row0 < num_rows; row0 += kRowTile) {
    const size_t rows_here =
        num_rows - row0 < kRowTile ? num_rows - row0 : kRowTile;
    for (size_t query0 = 0; query0 < num_queries; query0 += kQueryTile) {
      const size_t queries_here = num_queries - query0 < kQueryTile
                                      ? num_queries - query0
                                      : kQueryTile;
      kernels::DistanceTile(metric_, queries.Row(query0), queries_here,
                            data_.Row(row0), rows_here, data_.dim(),
                            dists.data());
      for (size_t q = 0; q < queries_here; ++q) {
        TopK& heap = heaps[query0 + q];
        const float* row_dists = dists.data() + q * rows_here;
        for (size_t i = 0; i < rows_here; ++i) {
          heap.Push(row_dists[i], static_cast<int64_t>(row0 + i));
        }
      }
    }
  }
  std::vector<std::vector<Neighbor>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    out[q] = heaps[q].SortedTake();
  }
  return out;
}

}  // namespace rago::ann
