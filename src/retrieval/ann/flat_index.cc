#include "retrieval/ann/flat_index.h"

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {

FlatIndex::FlatIndex(Matrix data, Metric metric)
    : data_(std::move(data)), metric_(metric) {
  RAGO_REQUIRE(!data_.empty(), "flat index requires a non-empty database");
}

std::vector<Neighbor>
FlatIndex::Search(const float* query, size_t k) const {
  TopK topk(k);
  kernels::ScanRowsIntoTopK(metric_, query, data_.data(), data_.rows(),
                            data_.dim(), /*ids=*/nullptr, /*base_id=*/0,
                            topk);
  return topk.SortedTake();
}

std::vector<std::vector<Neighbor>>
FlatIndex::SearchBatch(const Matrix& queries, size_t k) const {
  RAGO_REQUIRE(queries.dim() == data_.dim(), "query dimensionality mismatch");
  const size_t num_queries = queries.rows();
  std::vector<TopK> heaps;
  heaps.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    heaps.emplace_back(k);
  }
  // Shared micro-tiled scan: every database row is streamed once per
  // query tile, and each heap sees distances in ascending row order,
  // so results are bit-identical to per-query Search.
  kernels::ScanTileIntoTopK(metric_, queries.data(), num_queries,
                            data_.data(), data_.rows(), data_.dim(),
                            /*base_id=*/0, heaps.data());
  std::vector<std::vector<Neighbor>> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    out[q] = heaps[q].SortedTake();
  }
  return out;
}

}  // namespace rago::ann
