/**
 * @file coarse_rank.h
 * Batched coarse-centroid ranking for inverted-file indexes.
 *
 * The IVF and IVF-PQ batched entry points used to rank coarse
 * centroids once per query with the one-query batch kernel; this
 * helper ranks a whole query block through the multi-query micro-tile
 * kernel instead, streaming each centroid row once per query tile
 * (the same row-outer tiling FlatIndex::SearchBatch uses).
 *
 * Parity contract: within one kernel variant the batch and tile
 * kernels are bit-identical for the same (query, row) pair, and
 * centroids are offered in ascending index order in both paths, so the
 * returned ranking — ids, order, and tie-breaks — is exactly the
 * per-query ScanRowsIntoTopK ranking (pinned in
 * tests/test_distance_kernels.cc).
 */
#ifndef RAGO_RETRIEVAL_ANN_COARSE_RANK_H
#define RAGO_RETRIEVAL_ANN_COARSE_RANK_H

#include <cstdint>
#include <vector>

#include "retrieval/ann/matrix.h"

namespace rago::ann {

/**
 * For every row of `queries`, the indexes of the `nprobe` nearest
 * `centroids` rows by squared L2, ascending by (distance, id). Caps
 * nprobe at the centroid count; `nprobe` must be positive.
 */
std::vector<std::vector<int32_t>> RankCentroidsBatch(
    const Matrix& queries, const Matrix& centroids, int nprobe);

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_COARSE_RANK_H
