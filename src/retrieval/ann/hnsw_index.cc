#include "retrieval/ann/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"

namespace rago::ann {

HnswIndex::HnswIndex(Matrix data, Metric metric, const HnswOptions& options,
                     Rng& rng)
    : data_(std::move(data)), metric_(metric), options_(options) {
  RAGO_REQUIRE(!data_.empty(), "HNSW requires a non-empty database");
  RAGO_REQUIRE(options_.max_degree >= 2, "max_degree must be at least 2");
  RAGO_REQUIRE(options_.ef_construction >= options_.max_degree,
               "ef_construction should be at least max_degree");
  level_multiplier_ = options_.level_multiplier > 0
                          ? options_.level_multiplier
                          : 1.0 / std::log(options_.max_degree);

  nodes_.resize(data_.rows());
  int64_t build_evals = 0;  // Build-time distance evals, not reported.
  Scratch scratch;          // Gather buffers shared by the whole build.
  for (size_t i = 0; i < data_.rows(); ++i) {
    const auto id = static_cast<int32_t>(i);
    const int level = DrawLevel(rng);
    Node& node = nodes_[i];
    node.level = level;
    node.links.resize(static_cast<size_t>(level) + 1);

    if (entry_point_ < 0) {
      entry_point_ = id;
      max_level_ = level;
      continue;
    }

    // Phase 1: greedy descent from the global entry down to level+1.
    int32_t entry = entry_point_;
    for (int layer = max_level_; layer > level; --layer) {
      entry = GreedyStep(data_.Row(i), entry, layer, build_evals, scratch);
    }

    // Phase 2: beam search and link at each layer from min(level,
    // max_level_) down to 0.
    for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
      const std::vector<Neighbor> found =
          SearchLayer(data_.Row(i), entry, options_.ef_construction,
                      layer, build_evals, scratch);
      // Base layer allows 2M links (standard HNSW practice).
      const int m = layer == 0 ? 2 * options_.max_degree
                               : options_.max_degree;
      const std::vector<int32_t> selected = SelectNeighbors(found, m);
      for (int32_t nb : selected) {
        node.links[static_cast<size_t>(layer)].push_back(nb);
        auto& back = nodes_[static_cast<size_t>(nb)]
                         .links[static_cast<size_t>(layer)];
        back.push_back(id);
        if (static_cast<int>(back.size()) > m) {
          // Re-prune the neighbor's links with the same diversity
          // heuristic used at insertion. Keeping only the m *nearest*
          // would sever inter-cluster bridges and disconnect the
          // graph on clustered data. The overflowing link list stages
          // through the gather buffers like any other candidate block.
          scratch.ids.assign(back.begin(), back.end());
          BatchDist(data_.Row(static_cast<size_t>(nb)), back.size(),
                    scratch, build_evals);
          std::vector<Neighbor> candidates;
          candidates.reserve(back.size());
          for (size_t j = 0; j < back.size(); ++j) {
            candidates.push_back(
                Neighbor{scratch.dists[j], scratch.ids[j]});
          }
          std::sort(candidates.begin(), candidates.end());
          back = SelectNeighbors(candidates, m);
        }
      }
      if (!found.empty()) {
        entry = static_cast<int32_t>(found.front().id);
      }
    }

    if (level > max_level_) {
      max_level_ = level;
      entry_point_ = id;
    }
  }
}

int
HnswIndex::DrawLevel(Rng& rng) const {
  const double u = std::max(rng.NextDouble(), 1e-12);
  return static_cast<int>(-std::log(u) * level_multiplier_);
}

float
HnswIndex::Dist(const float* query, int32_t id, int64_t& evals) const {
  ++evals;
  return kernels::DistanceOne(metric_, query,
                              data_.Row(static_cast<size_t>(id)),
                              data_.dim());
}

void
HnswIndex::BatchDist(const float* query, size_t count, Scratch& scratch,
                     int64_t& evals) const {
  const size_t dim = data_.dim();
  if (scratch.rows.size() < count * dim) {
    scratch.rows.resize(count * dim);
  }
  if (scratch.dists.size() < count) {
    scratch.dists.resize(count);
  }
  for (size_t i = 0; i < count; ++i) {
    const float* row = data_.Row(static_cast<size_t>(scratch.ids[i]));
    std::copy(row, row + dim, scratch.rows.data() + i * dim);
  }
  kernels::DistanceBatch(metric_, query, scratch.rows.data(), count, dim,
                         scratch.dists.data());
  evals += static_cast<int64_t>(count);
}

int32_t
HnswIndex::GreedyStep(const float* query, int32_t entry, int layer,
                      int64_t& evals, Scratch& scratch) const {
  int32_t current = entry;
  float best = Dist(query, current, evals);
  bool improved = true;
  while (improved) {
    improved = false;
    const std::vector<int32_t>& links =
        nodes_[static_cast<size_t>(current)].links[static_cast<size_t>(
            layer)];
    if (links.empty()) {
      break;
    }
    scratch.ids.assign(links.begin(), links.end());
    BatchDist(query, scratch.ids.size(), scratch, evals);
    // Sequential running-best over the batch keeps the legacy
    // semantics: the first occurrence of the block's minimum wins.
    for (size_t i = 0; i < scratch.ids.size(); ++i) {
      if (scratch.dists[i] < best) {
        best = scratch.dists[i];
        current = scratch.ids[i];
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Neighbor>
HnswIndex::SearchLayer(const float* query, int32_t entry, int ef,
                       int layer, int64_t& evals, Scratch& scratch) const {
  std::unordered_set<int32_t> visited = {entry};
  // Min-heap of candidates to expand; bounded max-heap of results.
  std::priority_queue<Neighbor, std::vector<Neighbor>,
                      std::greater<Neighbor>>
      candidates;
  TopK results(static_cast<size_t>(ef));
  const float entry_dist = Dist(query, entry, evals);
  candidates.push(Neighbor{entry_dist, entry});
  results.Push(entry_dist, entry);

  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (current.dist > results.Threshold()) {
      break;  // No candidate can improve the result set.
    }
    // Stage this hop's unvisited neighbors into the gather buffers
    // (link order preserved), then score the block in one kernel call.
    scratch.ids.clear();
    for (int32_t nb :
         nodes_[static_cast<size_t>(current.id)].links[static_cast<size_t>(
             layer)]) {
      if (visited.insert(nb).second) {
        scratch.ids.push_back(nb);
      }
    }
    if (scratch.ids.empty()) {
      continue;
    }
    BatchDist(query, scratch.ids.size(), scratch, evals);
    for (size_t i = 0; i < scratch.ids.size(); ++i) {
      const float d = scratch.dists[i];
      if (d < results.Threshold()) {
        candidates.push(Neighbor{d, scratch.ids[i]});
        results.Push(d, scratch.ids[i]);
      }
    }
  }
  return results.SortedTake();
}

std::vector<int32_t>
HnswIndex::SelectNeighbors(const std::vector<Neighbor>& found, int m) const {
  // Heuristic diversity selection: keep a candidate only if it is
  // closer to the query than to every already-selected neighbor.
  std::vector<int32_t> selected;
  for (const Neighbor& candidate : found) {
    if (static_cast<int>(selected.size()) >= m) {
      break;
    }
    bool diverse = true;
    for (int32_t chosen : selected) {
      const float to_chosen = kernels::DistanceOne(
          metric_, data_.Row(static_cast<size_t>(candidate.id)),
          data_.Row(static_cast<size_t>(chosen)), data_.dim());
      if (to_chosen < candidate.dist) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(static_cast<int32_t>(candidate.id));
    }
  }
  // Fall back to plain nearest if diversity pruned too aggressively.
  for (const Neighbor& candidate : found) {
    if (static_cast<int>(selected.size()) >= m) {
      break;
    }
    if (std::find(selected.begin(), selected.end(),
                  static_cast<int32_t>(candidate.id)) == selected.end()) {
      selected.push_back(static_cast<int32_t>(candidate.id));
    }
  }
  return selected;
}

std::vector<Neighbor>
HnswIndex::Search(const float* query, size_t k, int ef_search) const {
  int64_t evals = 0;
  std::vector<Neighbor> found = Search(query, k, ef_search, &evals);
  last_distance_evals_ = evals;
  return found;
}

std::vector<Neighbor>
HnswIndex::Search(const float* query, size_t k, int ef_search,
                  int64_t* distance_evals) const {
  RAGO_REQUIRE(ef_search >= 1, "ef_search must be positive");
  RAGO_REQUIRE(distance_evals != nullptr,
               "counted Search needs an eval slot (use the 3-arg "
               "overload to skip counting)");
  int64_t evals = 0;
  Scratch scratch;
  int32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    entry = GreedyStep(query, entry, layer, evals, scratch);
  }
  std::vector<Neighbor> found = SearchLayer(
      query, entry, std::max<int>(ef_search, static_cast<int>(k)), 0,
      evals, scratch);
  if (found.size() > k) {
    found.resize(k);
  }
  *distance_evals += evals;
  return found;
}

int64_t
HnswIndex::GraphBytes() const {
  int64_t total = 0;
  for (const Node& node : nodes_) {
    for (const auto& layer : node.links) {
      total += static_cast<int64_t>(layer.size()) * sizeof(int32_t);
    }
  }
  return total;
}

std::vector<std::vector<Neighbor>>
HnswIndex::SearchBatch(const Matrix& queries, size_t k,
                       int ef_search) const {
  int64_t evals = 0;
  std::vector<std::vector<Neighbor>> out =
      SearchBatch(queries, k, ef_search, &evals);
  last_distance_evals_ = evals;
  return out;
}

std::vector<std::vector<Neighbor>>
HnswIndex::SearchBatch(const Matrix& queries, size_t k, int ef_search,
                       int64_t* distance_evals) const {
  RAGO_REQUIRE(queries.dim() == data_.dim(), "query dimensionality mismatch");
  RAGO_REQUIRE(distance_evals != nullptr,
               "counted SearchBatch needs an eval slot (use the 3-arg "
               "overload to skip counting)");
  std::vector<std::vector<Neighbor>> out(queries.rows());
  for (size_t q = 0; q < queries.rows(); ++q) {
    out[q] = Search(queries.Row(q), k, ef_search, distance_evals);
  }
  return out;
}

}  // namespace rago::ann
