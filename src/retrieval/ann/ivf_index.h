/**
 * @file ivf_index.h
 * Inverted-file (IVF) index with exact in-list distances.
 *
 * Vectors are partitioned into `nlist` clusters by a trained coarse
 * quantizer; a query scans only the `nprobe` nearest clusters. This is
 * the uncompressed building block beneath IVF-PQ.
 *
 * Storage is list-contiguous: at build time the database rows are
 * regrouped so each inverted list occupies one contiguous block, and
 * in-list scans run through the batched distance kernels
 * (kernels/distance_kernels.h) instead of per-row pointer chasing.
 */
#ifndef RAGO_RETRIEVAL_ANN_IVF_INDEX_H
#define RAGO_RETRIEVAL_ANN_IVF_INDEX_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "retrieval/ann/distance.h"
#include "retrieval/ann/kmeans.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

/// IVF build parameters.
struct IvfOptions {
  int nlist = 64;          ///< Number of coarse clusters.
  int kmeans_iterations = 10;
};

/// Inverted-file index over an in-memory database.
class IvfIndex {
 public:
  IvfIndex(Matrix data, Metric metric, const IvfOptions& options, Rng& rng);

  /**
   * Approximate top-k: scans the `nprobe` clusters whose centroids are
   * nearest to the query.
   */
  std::vector<Neighbor> Search(const float* query, size_t k,
                               int nprobe) const;

  /**
   * Batched Search over every row of `queries`. Coarse centroids are
   * ranked for the whole block through the micro-tile kernel
   * (coarse_rank.h); results are exactly per-query Search's.
   */
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 size_t k, int nprobe) const;

  /// Number of database vectors a query with `nprobe` scans on average.
  double ExpectedScannedVectors(int nprobe) const;

  int nlist() const { return nlist_; }
  size_t size() const { return num_rows_; }
  size_t dim() const { return dim_; }
  const Matrix& centroids() const { return centroids_; }
  const std::vector<int64_t>& list(int cluster) const {
    return lists_[static_cast<size_t>(cluster)];
  }

 private:
  std::vector<int32_t> NearestClusters(const float* query, int nprobe) const;

  /// Scans the given ranked clusters' lists for one query.
  std::vector<Neighbor> SearchLists(
      const float* query, size_t k,
      const std::vector<int32_t>& clusters) const;

  Metric metric_;
  int nlist_ = 0;
  size_t num_rows_ = 0;
  size_t dim_ = 0;
  Matrix centroids_;
  /// Per-list original row ids, ascending within each list.
  std::vector<std::vector<int64_t>> lists_;
  /// Database rows regrouped list-contiguously: list c occupies rows
  /// [list_offsets_[c], list_offsets_[c + 1]) of reordered_, in the
  /// same order as lists_[c].
  Matrix reordered_;
  std::vector<size_t> list_offsets_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_IVF_INDEX_H
