#include "retrieval/ann/pq.h"

#include <algorithm>

#include "common/check.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/kmeans.h"

namespace rago::ann {

static_assert(ProductQuantizer::kCentroids ==
                  static_cast<int>(kernels::kAdcCentroids),
              "ADC kernels assume the PQ codebook width");

ProductQuantizer::ProductQuantizer(const Matrix& data, int m, Rng& rng,
                                   int kmeans_iterations)
    : m_(m), dim_(data.dim()) {
  RAGO_REQUIRE(m > 0, "PQ requires at least one subspace");
  RAGO_REQUIRE(dim_ % static_cast<size_t>(m) == 0,
               "vector dim must be divisible by the subspace count");
  RAGO_REQUIRE(data.rows() >= kCentroids,
               "PQ training needs at least 256 vectors");
  sub_dim_ = dim_ / static_cast<size_t>(m);
  codebooks_.resize(static_cast<size_t>(m_) * kCentroids * sub_dim_);

  // Train an independent k-means codebook per subspace.
  KMeansOptions options;
  options.max_iterations = kmeans_iterations;
  for (int s = 0; s < m_; ++s) {
    Matrix sub(data.rows(), sub_dim_);
    for (size_t i = 0; i < data.rows(); ++i) {
      const float* row = data.Row(i) + static_cast<size_t>(s) * sub_dim_;
      float* dst = sub.Row(i);
      std::copy(row, row + sub_dim_, dst);
    }
    const KMeansResult trained = TrainKMeans(sub, kCentroids, rng, options);
    for (int c = 0; c < kCentroids; ++c) {
      const float* src = trained.centroids.Row(static_cast<size_t>(c));
      float* dst = codebooks_.data() +
                   (static_cast<size_t>(s) * kCentroids + c) * sub_dim_;
      std::copy(src, src + sub_dim_, dst);
    }
  }
}

void
ProductQuantizer::Encode(const float* vec, uint8_t* out) const {
  for (int s = 0; s < m_; ++s) {
    const float* sub_vec = vec + static_cast<size_t>(s) * sub_dim_;
    // Each subspace's 256 centroids are one contiguous block; argmin
    // over the batched scan keeps the first-wins tie-break of the old
    // sequential loop.
    out[s] = static_cast<uint8_t>(
        kernels::ArgMinL2(sub_vec, Centroid(s, 0), kCentroids, sub_dim_));
  }
}

std::vector<uint8_t>
ProductQuantizer::EncodeAll(const Matrix& data) const {
  RAGO_REQUIRE(data.dim() == dim_, "dimensionality mismatch");
  std::vector<uint8_t> codes(data.rows() * CodeBytes());
  for (size_t i = 0; i < data.rows(); ++i) {
    Encode(data.Row(i), codes.data() + i * CodeBytes());
  }
  return codes;
}

void
ProductQuantizer::Decode(const uint8_t* code, float* out) const {
  for (int s = 0; s < m_; ++s) {
    const float* centroid = Centroid(s, code[s]);
    float* dst = out + static_cast<size_t>(s) * sub_dim_;
    std::copy(centroid, centroid + sub_dim_, dst);
  }
}

std::vector<float>
ProductQuantizer::BuildAdcTable(const float* query) const {
  std::vector<float> table(static_cast<size_t>(m_) * kCentroids);
  for (int s = 0; s < m_; ++s) {
    const float* sub_query = query + static_cast<size_t>(s) * sub_dim_;
    // One batched scan fills the subspace's 256 table entries.
    kernels::Active().l2sq_batch(sub_query, Centroid(s, 0), kCentroids,
                                 sub_dim_,
                                 table.data() +
                                     static_cast<size_t>(s) * kCentroids);
  }
  return table;
}

float
ProductQuantizer::AdcDistance(const std::vector<float>& table,
                              const uint8_t* code) const {
  RAGO_CHECK(table.size() == static_cast<size_t>(m_) * kCentroids,
             "ADC table size mismatch");
  float dist = 0.0f;
  kernels::Active().adc_batch(table.data(), code, /*num_codes=*/1,
                              static_cast<size_t>(m_), &dist);
  return dist;
}

}  // namespace rago::ann
