/**
 * @file flat_index.h
 * Exact (brute-force) nearest-neighbor index.
 *
 * Serves two roles: the retrieval engine for small per-request
 * databases (paper Case II uses brute-force kNN), and the ground-truth
 * oracle for recall evaluation of the approximate indexes.
 */
#ifndef RAGO_RETRIEVAL_ANN_FLAT_INDEX_H
#define RAGO_RETRIEVAL_ANN_FLAT_INDEX_H

#include <vector>

#include "retrieval/ann/distance.h"
#include "retrieval/ann/matrix.h"
#include "retrieval/ann/topk.h"

namespace rago::ann {

/// Exact k-nearest-neighbor search over an in-memory matrix.
class FlatIndex {
 public:
  FlatIndex(Matrix data, Metric metric);

  /// Exact top-k neighbors of `query`, sorted by ascending distance.
  std::vector<Neighbor> Search(const float* query, size_t k) const;

  /// Exact top-k for every row of `queries` (one result per query).
  std::vector<std::vector<Neighbor>> SearchBatch(const Matrix& queries,
                                                 size_t k) const;

  size_t size() const { return data_.rows(); }
  size_t dim() const { return data_.dim(); }
  const Matrix& data() const { return data_; }

 private:
  Matrix data_;
  Metric metric_;
};

}  // namespace rago::ann

#endif  // RAGO_RETRIEVAL_ANN_FLAT_INDEX_H
