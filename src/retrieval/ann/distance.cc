#include "retrieval/ann/distance.h"

#include "common/check.h"

namespace rago::ann {

float
L2Sq(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

float
Dot(const float* a, const float* b, size_t dim) {
  float sum = 0.0f;
  for (size_t d = 0; d < dim; ++d) {
    sum += a[d] * b[d];
  }
  return sum;
}

float
Distance(Metric metric, const float* a, const float* b, size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2Sq(a, b, dim);
    case Metric::kInnerProduct:
      return -Dot(a, b, dim);
  }
  // An unhandled Metric must fail loudly, not masquerade as distance 0.
  RAGO_CHECK(false, "unhandled Metric in Distance()");
}

}  // namespace rago::ann
