#include "retrieval/perf/roofline.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "retrieval/ann/kernels/distance_kernels.h"
#include "retrieval/ann/packed_codes.h"

namespace rago::retrieval {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  // Machine-peak probes time real executions by definition; the result
  // feeds the roofline model, never simulated behavior or control flow.
  // rago-lint: allow(wallclock)
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Defeats dead-code elimination of a probe/kernel result.
void Consume(float value) {
  static volatile float sink = 0.0f;
  sink = sink + value;
}

std::vector<float> RandomFloats(size_t count, uint64_t seed) {
  std::vector<float> data(count);
  Rng rng(seed);
  for (float& value : data) {
    value = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  }
  return data;
}

/// FLOPs per (query, row, dimension) element of a distance scan:
/// L2 is subtract + fused multiply-add (3), IP one fused multiply-add
/// (2; the negation is amortized per row, not per element).
double FlopsPerElement(ann::Metric metric) {
  return metric == ann::Metric::kL2 ? 3.0 : 2.0;
}

}  // namespace

void
ProbeOptions::Validate() const {
  RAGO_REQUIRE(triad_elements > 0, "triad_elements must be positive");
  RAGO_REQUIRE(flop_iterations > 0, "flop_iterations must be positive");
  RAGO_REQUIRE(repetitions > 0, "repetitions must be positive");
}

MachinePeaks
CalibrateMachinePeaks(const ProbeOptions& options) {
  options.Validate();
  MachinePeaks peaks;

  // --- STREAM-style triad: a[i] = b[i] + s * c[i]. Arrays are sized
  // far beyond any LLC, so the best repetition approaches the DRAM
  // bandwidth one thread can draw — the roof the scan kernels live
  // under. Traffic counted the STREAM way: 3 arrays touched per pass.
  {
    const size_t n = options.triad_elements;
    std::vector<float> a(n, 0.0f);
    std::vector<float> b = RandomFloats(n, 0x57eea);
    std::vector<float> c = RandomFloats(n, 0x57eeb);
    const float scalar = 3.0f;
    double best_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < options.repetitions; ++rep) {
      // Probe timing — measurement only. rago-lint: allow(wallclock)
      const Clock::time_point start = Clock::now();
      for (size_t i = 0; i < n; ++i) {
        a[i] = b[i] + scalar * c[i];
      }
      best_seconds = std::min(best_seconds, SecondsSince(start));
      Consume(a[n / 2]);
    }
    peaks.bandwidth_bytes_per_sec =
        3.0 * static_cast<double>(n) * sizeof(float) /
        std::max(best_seconds, 1e-12);
  }

  // --- FLOP roof: independent fused multiply-add chains (enough to
  // cover FMA latency) over cache-resident state. Measures what the
  // compiled scalar/vector code class actually achieves, which is the
  // relevant roof for kernels built the same way.
  {
    constexpr size_t kChains = 16;
    float acc[kChains];
    float mul[kChains];
    for (size_t i = 0; i < kChains; ++i) {
      acc[i] = 1.0f + 1e-6f * static_cast<float>(i);
      mul[i] = 1.0f - 1e-7f * static_cast<float>(i);
    }
    const size_t iters = options.flop_iterations / kChains;
    double best_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < options.repetitions; ++rep) {
      // Probe timing — measurement only. rago-lint: allow(wallclock)
      const Clock::time_point start = Clock::now();
      for (size_t i = 0; i < iters; ++i) {
        for (size_t chain = 0; chain < kChains; ++chain) {
          acc[chain] = acc[chain] * mul[chain] + 1e-9f;
        }
      }
      best_seconds = std::min(best_seconds, SecondsSince(start));
    }
    float checksum = 0.0f;
    for (size_t i = 0; i < kChains; ++i) {
      checksum += acc[i];
    }
    Consume(checksum);
    // One fused multiply-add = 2 FLOPs.
    peaks.flops_per_sec = 2.0 * static_cast<double>(iters) * kChains /
                          std::max(best_seconds, 1e-12);
  }

  return peaks;
}

KernelWork
AccountBatchScan(ann::Metric metric, size_t num_rows, size_t dim) {
  RAGO_REQUIRE(num_rows > 0 && dim > 0, "scan shape must be positive");
  KernelWork work;
  // The query stays register/cache-resident; the row block streams
  // once; one float distance is written per row.
  work.bytes = static_cast<double>(num_rows) * dim * sizeof(float) +
               static_cast<double>(num_rows) * sizeof(float);
  work.flops =
      static_cast<double>(num_rows) * dim * FlopsPerElement(metric);
  return work;
}

KernelWork
AccountTileScan(ann::Metric metric, size_t num_queries, size_t num_rows,
                size_t dim) {
  RAGO_REQUIRE(num_queries > 0 && num_rows > 0 && dim > 0,
               "tile shape must be positive");
  KernelWork work;
  // The row stream is shared by all queries — the whole point of the
  // micro-tile: intensity scales with the tile height.
  work.bytes = static_cast<double>(num_rows) * dim * sizeof(float) +
               static_cast<double>(num_queries) * dim * sizeof(float) +
               static_cast<double>(num_queries) * num_rows * sizeof(float);
  work.flops = static_cast<double>(num_queries) * num_rows * dim *
               FlopsPerElement(metric);
  return work;
}

KernelWork
AccountAdcScan(size_t num_codes, size_t m) {
  RAGO_REQUIRE(num_codes > 0 && m > 0, "ADC shape must be positive");
  KernelWork work;
  // Codes stream once (1 byte per subspace); the m x 256 lookup table
  // is cache-resident and counted once; one float written per code.
  work.bytes = static_cast<double>(num_codes) * m +
               static_cast<double>(m) * ann::kernels::kAdcCentroids *
                   sizeof(float) +
               static_cast<double>(num_codes) * sizeof(float);
  // One table-lookup accumulation per (code, subspace).
  work.flops = static_cast<double>(num_codes) * m;
  return work;
}

KernelWork
AccountAdcPackedScan(size_t num_codes, size_t m) {
  RAGO_REQUIRE(num_codes > 0 && m > 0, "ADC shape must be positive");
  const size_t blocks = (num_codes + ann::kernels::kPackedBlock - 1) /
                        ann::kernels::kPackedBlock;
  KernelWork work;
  // The packed stream is padded to whole blocks (the tail block's
  // padding lanes are computed and discarded); table and outputs are
  // the same as the strided scan.
  work.bytes = static_cast<double>(blocks) * ann::kernels::kPackedBlock * m +
               static_cast<double>(m) * ann::kernels::kAdcCentroids *
                   sizeof(float) +
               static_cast<double>(num_codes) * sizeof(float);
  work.flops = static_cast<double>(num_codes) * m;
  return work;
}

void
KernelProfileOptions::Validate() const {
  RAGO_REQUIRE(num_rows > 0 && dim > 0, "scan shape must be positive");
  RAGO_REQUIRE(tile_queries > 0, "tile_queries must be positive");
  RAGO_REQUIRE(pq_m > 0, "pq_m must be positive");
  RAGO_REQUIRE(repetitions > 0, "repetitions must be positive");
}

KernelProfiler::KernelProfiler(MachinePeaks peaks,
                               KernelProfileOptions options)
    : peaks_(peaks), options_(options) {
  options_.Validate();
  RAGO_REQUIRE(peaks_.bandwidth_bytes_per_sec > 0 &&
                   peaks_.flops_per_sec > 0,
               "machine peaks must be calibrated (positive)");
}

namespace {

/// Times `invoke` (best of `repetitions`) and assembles the point.
template <typename Fn>
KernelRooflinePoint MakePoint(const std::string& kernel,
                              const MachinePeaks& peaks, KernelWork work,
                              int repetitions, Fn&& invoke) {
  KernelRooflinePoint point;
  point.kernel = kernel;
  point.variant = ann::kernels::Active().name;
  point.work = work;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repetitions; ++rep) {
    // Kernel timing — measurement only. rago-lint: allow(wallclock)
    const Clock::time_point start = Clock::now();
    invoke();
    best_seconds = std::min(best_seconds, SecondsSince(start));
  }
  point.seconds = std::max(best_seconds, 1e-12);
  point.achieved_bytes_per_sec = work.bytes / point.seconds;
  point.achieved_flops_per_sec = work.flops / point.seconds;
  point.intensity = work.Intensity();
  point.memory_bound = point.intensity < peaks.RidgeIntensity();
  point.bound_seconds =
      std::max(work.bytes / peaks.bandwidth_bytes_per_sec,
               work.flops / peaks.flops_per_sec);
  point.roofline_efficiency = point.bound_seconds / point.seconds;
  return point;
}

}  // namespace

KernelRooflinePoint
KernelProfiler::ProfileL2Batch() const {
  const size_t rows = options_.num_rows;
  const size_t dim = options_.dim;
  const std::vector<float> row_data =
      RandomFloats(rows * dim, Rng::DeriveSeed(options_.seed, 1));
  const std::vector<float> query =
      RandomFloats(dim, Rng::DeriveSeed(options_.seed, 2));
  std::vector<float> out(rows);
  auto point = MakePoint(
      "l2sq_batch", peaks_, AccountBatchScan(ann::Metric::kL2, rows, dim),
      options_.repetitions, [&]() {
        ann::kernels::Active().l2sq_batch(query.data(), row_data.data(),
                                          rows, dim, out.data());
        Consume(out[rows / 2]);
      });
  return point;
}

KernelRooflinePoint
KernelProfiler::ProfileIpBatch() const {
  const size_t rows = options_.num_rows;
  const size_t dim = options_.dim;
  const std::vector<float> row_data =
      RandomFloats(rows * dim, Rng::DeriveSeed(options_.seed, 3));
  const std::vector<float> query =
      RandomFloats(dim, Rng::DeriveSeed(options_.seed, 4));
  std::vector<float> out(rows);
  auto point = MakePoint(
      "dot_batch", peaks_,
      AccountBatchScan(ann::Metric::kInnerProduct, rows, dim),
      options_.repetitions, [&]() {
        ann::kernels::Active().dot_batch(query.data(), row_data.data(),
                                         rows, dim, out.data());
        Consume(out[rows / 2]);
      });
  return point;
}

KernelRooflinePoint
KernelProfiler::ProfileL2Tile() const {
  const size_t rows = options_.num_rows;
  const size_t dim = options_.dim;
  const size_t queries = options_.tile_queries;
  const std::vector<float> row_data =
      RandomFloats(rows * dim, Rng::DeriveSeed(options_.seed, 5));
  const std::vector<float> query_data =
      RandomFloats(queries * dim, Rng::DeriveSeed(options_.seed, 6));
  std::vector<float> out(queries * rows);
  auto point = MakePoint(
      "l2sq_tile", peaks_,
      AccountTileScan(ann::Metric::kL2, queries, rows, dim),
      options_.repetitions, [&]() {
        ann::kernels::Active().l2sq_tile(query_data.data(), queries,
                                         row_data.data(), rows, dim,
                                         out.data());
        Consume(out[out.size() / 2]);
      });
  return point;
}

KernelRooflinePoint
KernelProfiler::ProfileAdc() const {
  const size_t codes = options_.num_rows;
  const size_t m = options_.pq_m;
  std::vector<uint8_t> code_data(codes * m);
  Rng rng(Rng::DeriveSeed(options_.seed, 7));
  for (uint8_t& code : code_data) {
    code = static_cast<uint8_t>(rng.NextBounded(ann::kernels::kAdcCentroids));
  }
  const std::vector<float> table =
      RandomFloats(m * ann::kernels::kAdcCentroids,
                   Rng::DeriveSeed(options_.seed, 8));
  std::vector<float> out(codes);
  auto point = MakePoint(
      "adc_batch", peaks_, AccountAdcScan(codes, m), options_.repetitions,
      [&]() {
        ann::kernels::Active().adc_batch(table.data(), code_data.data(),
                                         codes, m, out.data());
        Consume(out[codes / 2]);
      });
  return point;
}

KernelRooflinePoint
KernelProfiler::ProfileAdcPacked() const {
  // Same shape, seed, and table as ProfileAdc so the two points
  // isolate the layout: strided gathers vs contiguous per-subspace
  // loads over identical code content.
  const size_t codes = options_.num_rows;
  const size_t m = options_.pq_m;
  std::vector<uint8_t> code_data(codes * m);
  Rng rng(Rng::DeriveSeed(options_.seed, 7));
  for (uint8_t& code : code_data) {
    code = static_cast<uint8_t>(rng.NextBounded(ann::kernels::kAdcCentroids));
  }
  const ann::PackedCodes packed(code_data.data(), codes, m);
  const std::vector<float> table =
      RandomFloats(m * ann::kernels::kAdcCentroids,
                   Rng::DeriveSeed(options_.seed, 8));
  std::vector<float> out(codes);
  auto point = MakePoint(
      "adc_packed", peaks_, AccountAdcPackedScan(codes, m),
      options_.repetitions, [&]() {
        ann::kernels::Active().adc_packed(table.data(), packed.data(),
                                          codes, m, out.data());
        Consume(out[codes / 2]);
      });
  return point;
}

}  // namespace rago::retrieval
