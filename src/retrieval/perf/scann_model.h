/**
 * @file scann_model.h
 * ScaNN-style multi-level tree retrieval performance model.
 *
 * Implements the published model of [Sun et al., "Automating Nearest
 * Neighbor Search Configuration with Constrained Optimization"] as
 * used by the paper (§4b): search is a sequence of vector-scan
 * operators, one per tree level, each costed with a roofline over
 * per-core PQ-scan throughput and server memory bandwidth. ScaNN
 * dedicates one thread per query and parallelizes batches across
 * threads; large databases are sharded across servers, with every
 * query visiting every shard and negligible broadcast/gather cost.
 */
#ifndef RAGO_RETRIEVAL_PERF_SCANN_MODEL_H
#define RAGO_RETRIEVAL_PERF_SCANN_MODEL_H

#include <cstdint>
#include <vector>

#include "hardware/cpu_server.h"
#include "retrieval/perf/retrieval_model.h"

namespace rago::retrieval {

/// Hyperscale vector database description (paper defaults: RETRO-scale).
struct DatabaseSpec {
  int64_t num_vectors = 64'000'000'000;  ///< 64B passages.
  int dim = 768;                         ///< Embedding dimensionality.
  double pq_bytes_per_vector = 96.0;     ///< 1 byte per 8 dims.
  double scan_fraction = 0.001;          ///< P_scan: leaf vectors scanned.
  int tree_fanout = 4000;                ///< Balanced fanout per node.
  int tree_levels = 3;                   ///< (64e9)^(1/3) ~= 4e3.
  /// Fraction of each intermediate level's candidate children scanned
  /// whose parents were selected (centroid beam width).
  double centroid_select_fraction = 0.01;
  /// Bytes per centroid at internal levels (full-precision float).
  double centroid_bytes_per_vector() const { return 4.0 * dim; }

  /// Total quantized database size in bytes (leaf PQ codes).
  double QuantizedBytes() const {
    return static_cast<double>(num_vectors) * pq_bytes_per_vector;
  }

  /// Throws ConfigError on malformed specs.
  void Validate() const;
};

/// One per-level scan operator (for introspection and tests).
struct ScanOp {
  int level = 0;         ///< 1-based tree level (1 = root centroids).
  double bytes = 0.0;    ///< Bytes scanned per query at this level.
};

/**
 * Distributed ScaNN search cost model.
 *
 * The database is sharded evenly across `num_servers` hosts with
 * independent indexes; each query scans its P_scan fraction of every
 * shard in parallel and results are aggregated (broadcast/gather
 * overhead is negligible per the paper).
 */
class ScannModel : public RetrievalModel {
 public:
  ScannModel(DatabaseSpec db, CpuServerSpec server, int num_servers);

  RetrievalCost Search(int64_t batch_queries) const override;
  double BytesScannedPerQuery() const override;

  /// Per-level scan operators for a single query over the full database.
  std::vector<ScanOp> ScanOps() const;

  /// Bytes a single query scans within one shard (server).
  double BytesPerQueryPerServer() const;

  /// Hosts required so the quantized database fits in DRAM.
  int MinServersForCapacity() const;

  /// Same capacity floor without constructing a model (shard-count
  /// validation in the functional sharded tier uses this).
  static int MinServersForCapacity(const DatabaseSpec& db,
                                   const CpuServerSpec& server);

  const DatabaseSpec& db() const { return db_; }
  int num_servers() const { return num_servers_; }

 private:
  DatabaseSpec db_;
  CpuServerSpec server_;
  int num_servers_;
};

}  // namespace rago::retrieval

#endif  // RAGO_RETRIEVAL_PERF_SCANN_MODEL_H
