#include "retrieval/perf/bruteforce_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace rago::retrieval {

BruteForceModel::BruteForceModel(int64_t num_vectors, int dim,
                                 double bytes_per_dim, CpuServerSpec server)
    : num_vectors_(num_vectors),
      dim_(dim),
      bytes_per_dim_(bytes_per_dim),
      server_(server) {
  RAGO_REQUIRE(num_vectors_ > 0, "database must contain vectors");
  RAGO_REQUIRE(dim_ > 0, "dimensionality must be positive");
  RAGO_REQUIRE(bytes_per_dim_ > 0, "bytes per dimension must be positive");
}

double
BruteForceModel::BytesScannedPerQuery() const {
  return static_cast<double>(num_vectors_) * dim_ * bytes_per_dim_;
}

RetrievalCost
BruteForceModel::Search(int64_t batch_queries) const {
  RAGO_REQUIRE(batch_queries > 0, "batch must be positive");
  const double bytes = BytesScannedPerQuery();
  const int64_t concurrent = std::min<int64_t>(batch_queries, server_.cores);
  const double per_core_rate =
      std::min(server_.scan_bytes_per_core,
               server_.EffectiveMemBw() / static_cast<double>(concurrent));
  const int64_t waves = CeilDiv(batch_queries, server_.cores);

  RetrievalCost cost;
  cost.latency = static_cast<double>(waves) * bytes / per_core_rate;
  cost.throughput = static_cast<double>(batch_queries) / cost.latency;
  return cost;
}

}  // namespace rago::retrieval
