/**
 * @file retrieval_model.h
 * Abstract retrieval cost model interface.
 *
 * Retrieval in the paper runs on host CPU servers, not XPUs, and is
 * characterized by the bytes of database vectors scanned per query
 * (§3.3). Two concrete models implement this interface: the ScaNN
 * multi-level-tree model for hyperscale ANN search, and a brute-force
 * kNN model for the small per-request databases of long-context RAG.
 */
#ifndef RAGO_RETRIEVAL_PERF_RETRIEVAL_MODEL_H
#define RAGO_RETRIEVAL_PERF_RETRIEVAL_MODEL_H

#include <cstdint>

namespace rago::retrieval {

/// Latency/throughput of a retrieval batch.
struct RetrievalCost {
  double latency = 0.0;     ///< Seconds until the whole batch completes.
  double throughput = 0.0;  ///< Sustained queries per second at this batch.
};

/// Cost model for one retrieval tier.
class RetrievalModel {
 public:
  virtual ~RetrievalModel() = default;

  /// Cost of a batch of `batch_queries` query vectors.
  virtual RetrievalCost Search(int64_t batch_queries) const = 0;

  /// Database bytes scanned per query (the paper's B_retrieval).
  virtual double BytesScannedPerQuery() const = 0;
};

}  // namespace rago::retrieval

#endif  // RAGO_RETRIEVAL_PERF_RETRIEVAL_MODEL_H
