#include "retrieval/perf/measured_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace rago::retrieval {

void
MeasuredScanProfile::Validate() const {
  RAGO_REQUIRE(bytes_per_query_per_server > 0,
               "measured profile needs positive bytes per query");
  RAGO_REQUIRE(scan_bytes_per_core > 0,
               "measured profile needs a positive scan rate");
  RAGO_REQUIRE(merge_seconds_per_query >= 0,
               "merge overhead cannot be negative");
}

MeasuredRetrievalModel::MeasuredRetrievalModel(MeasuredScanProfile profile,
                                               CpuServerSpec server,
                                               int num_servers)
    : profile_(profile), server_(std::move(server)),
      num_servers_(num_servers) {
  profile_.Validate();
  RAGO_REQUIRE(num_servers_ > 0, "need at least one retrieval server");
}

double
MeasuredRetrievalModel::BytesScannedPerQuery() const {
  return profile_.bytes_per_query_per_server * num_servers_;
}

RetrievalCost
MeasuredRetrievalModel::Search(int64_t batch_queries) const {
  RAGO_REQUIRE(batch_queries > 0, "batch must be positive");

  // Same wave/roofline shape as ScannModel::Search, with the measured
  // per-core scan rate in place of the calibrated constant.
  const int64_t concurrent = std::min<int64_t>(batch_queries, server_.cores);
  const double per_core_rate =
      std::min(profile_.scan_bytes_per_core,
               server_.EffectiveMemBw() / static_cast<double>(concurrent));
  const int64_t waves = CeilDiv(batch_queries, server_.cores);

  RetrievalCost cost;
  cost.latency = static_cast<double>(waves) *
                     profile_.bytes_per_query_per_server / per_core_rate +
                 static_cast<double>(batch_queries) *
                     profile_.merge_seconds_per_query;
  cost.throughput = static_cast<double>(batch_queries) / cost.latency;
  return cost;
}

}  // namespace rago::retrieval
