/**
 * @file roofline.h
 * Roofline profiler for the retrieval distance kernels.
 *
 * The paper's cost models price retrieval from published constants
 * (18 GB/s/core scan rate); the distance-kernel layer
 * (retrieval/ann/kernels) actually executes those scans. This profiler
 * closes the loop between the two on a real machine:
 *
 *  1. **Machine peaks** — a STREAM-style triad probe measures the
 *     achievable memory bandwidth and an FMA-chain probe the achievable
 *     single-thread FLOP rate, giving the two roofs of the roofline
 *     model and their ridge intensity (flops/byte where the roofs
 *     cross).
 *  2. **Kernel accounting** — closed-form bytes-moved and FLOPs for
 *     every scan shape the ANN backends use (L2/IP batch scans, the
 *     Q-row micro-tile, the PQ ADC pass). Pure arithmetic: machine-
 *     invariant and unit-testable.
 *  3. **Kernel profiling** — times the *active* kernel table over
 *     synthetic data and combines measurement with accounting into a
 *     roofline point: achieved GB/s, achieved GFLOP/s, arithmetic
 *     intensity, memory- vs compute-bound classification against the
 *     calibrated roofs, and efficiency vs the roofline bound.
 *
 * The measured points feed the perf-regression harness
 * (bench/bench_obs_trajectory.cc); the measured *retrieval costs* feed
 * schedule search through serving::CalibrateRetrievalModel →
 * core::PipelineModel::ProviderWithRetrievalModel →
 * opt::Optimizer::Search(provider).
 *
 * Accounting convention: a batch scan streams the row block once from
 * DRAM (queries and accumulators stay cache-resident) and writes one
 * float per (query, row); FLOPs count one fused multiply-add as two.
 */
#ifndef RAGO_RETRIEVAL_PERF_ROOFLINE_H
#define RAGO_RETRIEVAL_PERF_ROOFLINE_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "retrieval/ann/distance.h"

namespace rago::retrieval {

/// Measured machine roofs (achieved, not theoretical: the probes run
/// the same compiled code class as the kernels they calibrate).
struct MachinePeaks {
  double bandwidth_bytes_per_sec = 0.0;  ///< STREAM triad, one thread.
  double flops_per_sec = 0.0;            ///< FMA chains, one thread.

  /// Ridge intensity (flops/byte): below it a kernel is memory-bound,
  /// above it compute-bound.
  double RidgeIntensity() const {
    return flops_per_sec / bandwidth_bytes_per_sec;
  }
};

/// Probe sizing knobs.
struct ProbeOptions {
  /// Floats per triad array (default 4M = 16 MB/array, 48 MB total —
  /// far beyond LLC so the probe measures DRAM, not cache).
  size_t triad_elements = size_t{4} << 20;
  /// Fused multiply-adds per FLOP-probe repetition.
  size_t flop_iterations = size_t{16} << 20;
  /// Probe repetitions; the best (max rate) repetition is kept, the
  /// standard defense against warm-up and scheduling noise.
  int repetitions = 3;

  /// Throws ConfigError on non-positive sizes.
  void Validate() const;
};

/// Runs both probes. Wall-clock measurement: *not* deterministic, and
/// never folded into anything the determinism contract covers.
MachinePeaks CalibrateMachinePeaks(const ProbeOptions& options = {});

/// Closed-form work of one kernel invocation.
struct KernelWork {
  double bytes = 0.0;  ///< DRAM traffic (reads + written outputs).
  double flops = 0.0;  ///< Floating-point operations (FMA = 2).

  double Intensity() const { return flops / bytes; }
};

/// One query against `num_rows` contiguous float32 rows.
KernelWork AccountBatchScan(ann::Metric metric, size_t num_rows, size_t dim);

/// Micro-tile: `num_queries` x `num_rows` distance block. The row
/// stream is amortized over all queries — intensity grows linearly
/// with the tile height, which is what pushes the tile kernel across
/// the ridge into compute-bound territory.
KernelWork AccountTileScan(ann::Metric metric, size_t num_queries,
                           size_t num_rows, size_t dim);

/// ADC pass: `num_codes` m-byte PQ codes against an m x 256 table.
KernelWork AccountAdcScan(size_t num_codes, size_t m);

/// Packed (blocked subspace-major) ADC pass: same FLOPs as the strided
/// scan, but the code stream is padded to whole kPackedBlock blocks.
KernelWork AccountAdcPackedScan(size_t num_codes, size_t m);

/// One profiled kernel: measurement x accounting x roofs.
struct KernelRooflinePoint {
  std::string kernel;        ///< e.g. "l2sq_batch".
  std::string variant;  ///< Active table ("scalar"/"avx2"/"avx512").
  KernelWork work;           ///< Per-invocation closed-form work.
  double seconds = 0.0;      ///< Best-repetition wall time.
  double achieved_bytes_per_sec = 0.0;
  double achieved_flops_per_sec = 0.0;
  double intensity = 0.0;    ///< work.flops / work.bytes.
  /// Intensity below the machine ridge: the bandwidth roof binds.
  bool memory_bound = false;
  /// Roofline lower bound on runtime: max(bytes/bw, flops/peak).
  double bound_seconds = 0.0;
  /// bound_seconds / seconds, in (0, 1] up to measurement noise.
  double roofline_efficiency = 0.0;
};

/// Kernel-profiling knobs.
struct KernelProfileOptions {
  size_t num_rows = 1 << 16;  ///< Rows per scan (16 MB at dim 64).
  size_t dim = 64;
  size_t tile_queries = 64;   ///< Tile height for the micro-tile shape.
  size_t pq_m = 16;           ///< PQ subspaces for the ADC shape.
  int repetitions = 3;        ///< Best repetition is kept.
  uint64_t seed = 0x900f;     ///< Synthetic-data seed.

  /// Throws ConfigError on non-positive sizes.
  void Validate() const;
};

/**
 * Times the active kernel table (retrieval/ann/kernels) over seeded
 * synthetic data and classifies each scan shape against `peaks`.
 * Measurement is wall-clock (not deterministic); the accounting inside
 * each point is closed-form and machine-invariant.
 */
class KernelProfiler {
 public:
  KernelProfiler(MachinePeaks peaks, KernelProfileOptions options = {});

  KernelRooflinePoint ProfileL2Batch() const;
  KernelRooflinePoint ProfileIpBatch() const;
  KernelRooflinePoint ProfileL2Tile() const;
  KernelRooflinePoint ProfileAdc() const;
  /// The packed fast-scan layout the ANN indexes actually scan.
  KernelRooflinePoint ProfileAdcPacked() const;

  const MachinePeaks& peaks() const { return peaks_; }
  const KernelProfileOptions& options() const { return options_; }

 private:
  MachinePeaks peaks_;
  KernelProfileOptions options_;
};

}  // namespace rago::retrieval

#endif  // RAGO_RETRIEVAL_PERF_ROOFLINE_H
