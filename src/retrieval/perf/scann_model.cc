#include "retrieval/perf/scann_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace rago::retrieval {

void
DatabaseSpec::Validate() const {
  RAGO_REQUIRE(num_vectors > 0, "database must contain vectors");
  RAGO_REQUIRE(dim > 0, "vector dimensionality must be positive");
  RAGO_REQUIRE(pq_bytes_per_vector > 0, "PQ code size must be positive");
  RAGO_REQUIRE(scan_fraction > 0 && scan_fraction <= 1.0,
               "scan_fraction must be in (0, 1]");
  RAGO_REQUIRE(tree_fanout > 1, "tree fanout must exceed one");
  RAGO_REQUIRE(tree_levels >= 1 && tree_levels <= 4,
               "tree levels must be in [1, 4]");
  RAGO_REQUIRE(centroid_select_fraction > 0 && centroid_select_fraction <= 1,
               "centroid_select_fraction must be in (0, 1]");
}

ScannModel::ScannModel(DatabaseSpec db, CpuServerSpec server, int num_servers)
    : db_(db), server_(server), num_servers_(num_servers) {
  db_.Validate();
  RAGO_REQUIRE(num_servers_ > 0, "need at least one retrieval server");
  RAGO_REQUIRE(num_servers_ >= MinServersForCapacity(),
               "quantized database does not fit in host DRAM: need at least " +
                   std::to_string(MinServersForCapacity()) + " servers");
}

int
ScannModel::MinServersForCapacity() const {
  return MinServersForCapacity(db_, server_);
}

int
ScannModel::MinServersForCapacity(const DatabaseSpec& db,
                                  const CpuServerSpec& server) {
  return static_cast<int>(
      std::ceil(db.QuantizedBytes() / server.dram_bytes));
}

std::vector<ScanOp>
ScannModel::ScanOps() const {
  std::vector<ScanOp> ops;
  // Internal levels hold full-precision centroids. The root level is
  // scanned completely; at deeper internal levels the query scans all
  // children of the selected parents (beam = centroid_select_fraction
  // of the level above).
  double selected_nodes = 1.0;  // Virtual root.
  for (int level = 1; level < db_.tree_levels; ++level) {
    const double scanned = selected_nodes * db_.tree_fanout;
    ScanOp op;
    op.level = level;
    op.bytes = scanned * db_.centroid_bytes_per_vector();
    ops.push_back(op);
    selected_nodes =
        std::max(1.0, scanned * db_.centroid_select_fraction);
  }
  // Leaf level: scan_fraction of all quantized database vectors. This
  // is the paper's B_retrieval ~= N_dbvec * B_vec * P_scan term and
  // dominates total bytes for hyperscale databases.
  ScanOp leaf;
  leaf.level = db_.tree_levels;
  leaf.bytes = static_cast<double>(db_.num_vectors) * db_.scan_fraction *
               db_.pq_bytes_per_vector;
  ops.push_back(leaf);
  return ops;
}

double
ScannModel::BytesScannedPerQuery() const {
  double total = 0.0;
  for (const ScanOp& op : ScanOps()) {
    total += op.bytes;
  }
  return total;
}

double
ScannModel::BytesPerQueryPerServer() const {
  return BytesScannedPerQuery() / num_servers_;
}

RetrievalCost
ScannModel::Search(int64_t batch_queries) const {
  RAGO_REQUIRE(batch_queries > 0, "batch must be positive");
  const double bytes_per_server = BytesPerQueryPerServer();

  // One thread per query. With q concurrent queries on a server, each
  // core sustains min(per-core scan rate, fair share of memory BW).
  const int64_t concurrent = std::min<int64_t>(batch_queries, server_.cores);
  const double per_core_rate =
      std::min(server_.scan_bytes_per_core,
               server_.EffectiveMemBw() / static_cast<double>(concurrent));

  // Queries beyond the core count run in successive waves.
  const int64_t waves = CeilDiv(batch_queries, server_.cores);
  RetrievalCost cost;
  cost.latency =
      static_cast<double>(waves) * bytes_per_server / per_core_rate;
  cost.throughput = static_cast<double>(batch_queries) / cost.latency;
  return cost;
}

}  // namespace rago::retrieval
