/**
 * @file bruteforce_model.h
 * Brute-force kNN cost model for small, per-request databases.
 *
 * Long-context RAG (paper Case II) builds a database of only 1K-100K
 * vectors from the user's uploaded document. Indexing costs would
 * dominate for such ephemeral data, so search is an exact scan of all
 * vectors, stored full precision (fp16) in host memory.
 */
#ifndef RAGO_RETRIEVAL_PERF_BRUTEFORCE_MODEL_H
#define RAGO_RETRIEVAL_PERF_BRUTEFORCE_MODEL_H

#include <cstdint>

#include "hardware/cpu_server.h"
#include "retrieval/perf/retrieval_model.h"

namespace rago::retrieval {

/// Exact-scan retrieval over an in-memory per-request database.
class BruteForceModel : public RetrievalModel {
 public:
  /**
   * @param num_vectors database vectors (context_tokens / chunk_len).
   * @param dim embedding dimensionality.
   * @param bytes_per_dim storage width (2 for fp16).
   * @param server host executing the scan.
   */
  BruteForceModel(int64_t num_vectors, int dim, double bytes_per_dim,
                  CpuServerSpec server);

  RetrievalCost Search(int64_t batch_queries) const override;
  double BytesScannedPerQuery() const override;

 private:
  int64_t num_vectors_;
  int dim_;
  double bytes_per_dim_;
  CpuServerSpec server_;
};

}  // namespace rago::retrieval

#endif  // RAGO_RETRIEVAL_PERF_BRUTEFORCE_MODEL_H
