/**
 * @file measured_model.h
 * Retrieval cost model backed by measured scan timings.
 *
 * The analytical ScannModel prices multi-server retrieval from
 * published constants (18 GB/s/core scan rate, derated DRAM
 * bandwidth). The functional sharded tier (retrieval/serving) produces
 * the same quantities by measurement: bytes scanned and wall time per
 * shard. This adapter replays the same roofline/wave formula over a
 * *measured* profile, so the serving DES can cross-check analytical
 * prices against real multi-server scans.
 */
#ifndef RAGO_RETRIEVAL_PERF_MEASURED_MODEL_H
#define RAGO_RETRIEVAL_PERF_MEASURED_MODEL_H

#include <cstdint>

#include "hardware/cpu_server.h"
#include "retrieval/perf/retrieval_model.h"

namespace rago::retrieval {

/// Scan-cost profile distilled from a calibration run (or synthesized
/// from an analytical model for cross-validation).
struct MeasuredScanProfile {
  /// Bytes one query scans within one shard/server.
  double bytes_per_query_per_server = 0.0;
  /// Effective per-core scan throughput achieved, bytes/second.
  double scan_bytes_per_core = 0.0;
  /// Gather/merge seconds charged per query at the aggregator (the
  /// analytical model treats this as negligible; measurement keeps it).
  double merge_seconds_per_query = 0.0;

  /// Throws ConfigError on non-positive rates or bytes.
  void Validate() const;
};

/**
 * RetrievalModel over a measured profile: one thread per query, query
 * waves beyond the core count, per-core rate capped by the fair share
 * of derated memory bandwidth — structurally identical to
 * ScannModel::Search so disagreement isolates calibration error, not
 * formula drift.
 */
class MeasuredRetrievalModel : public RetrievalModel {
 public:
  MeasuredRetrievalModel(MeasuredScanProfile profile, CpuServerSpec server,
                         int num_servers);

  RetrievalCost Search(int64_t batch_queries) const override;
  double BytesScannedPerQuery() const override;

  const MeasuredScanProfile& profile() const { return profile_; }
  int num_servers() const { return num_servers_; }

 private:
  MeasuredScanProfile profile_;
  CpuServerSpec server_;
  int num_servers_;
};

}  // namespace rago::retrieval

#endif  // RAGO_RETRIEVAL_PERF_MEASURED_MODEL_H
