/**
 * @file table.h
 * Plain-text table rendering for benchmark harness output.
 *
 * Every figure/table harness in bench/ prints its series through
 * TextTable so the output lines up with the rows the paper reports and
 * can be diffed between runs. A CSV emitter is provided for plotting.
 */
#ifndef RAGO_COMMON_TABLE_H
#define RAGO_COMMON_TABLE_H

#include <string>
#include <vector>

namespace rago {

/// Column-aligned ASCII table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row (may differ in width from the header).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string Num(double value, int precision = 4);

  /// Renders the table with column alignment and separators.
  std::string ToString() const;

  /// Renders the table as CSV (header first if set).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rago

#endif  // RAGO_COMMON_TABLE_H
