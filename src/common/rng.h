/**
 * @file rng.h
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (synthetic datasets, retrieval trigger
 * positions in the iterative-retrieval simulator) draw from Rng so every
 * experiment is reproducible from a seed. The core is splitmix64 feeding
 * xoshiro256**, which is fast, high quality, and trivially portable.
 */
#ifndef RAGO_COMMON_RNG_H
#define RAGO_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"

namespace rago {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(x);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    RAGO_CHECK(bound > 0, "NextBounded requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u;
    double v;
    double s;
    do {
      u = NextUniform(-1.0, 1.0);
      v = NextUniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    have_cached_ = true;
    return u * factor;
  }

  /**
   * Derives an independent child seed for substream `stream` (e.g. one
   * per shard or worker). Pure function of (seed, stream), so parallel
   * components stay reproducible regardless of construction order or
   * thread count.
   */
  static uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
    uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (stream + 1));
    return SplitMix64(x);
  }

 private:
  static uint64_t SplitMix64(uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace rago

#endif  // RAGO_COMMON_RNG_H
