/**
 * @file pareto.h
 * Pareto-frontier utilities.
 *
 * RAGO's search (paper Algorithm 1) prunes per-stage candidate
 * configurations and the final end-to-end schedules to their Pareto
 * frontiers over (latency: lower is better, throughput: higher is
 * better). The helpers here are generic over the payload carried with
 * each point so the same code serves stage profiles and full schedules.
 */
#ifndef RAGO_COMMON_PARETO_H
#define RAGO_COMMON_PARETO_H

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

namespace rago {

/// A 2-D objective sample: minimize `latency`, maximize `throughput`.
template <typename Payload>
struct ParetoPoint {
  double latency = 0.0;     ///< Seconds; lower is better.
  double throughput = 0.0;  ///< Per-second rate; higher is better.
  Payload payload{};        ///< Configuration that produced this point.
};

/// True if `a` dominates `b` (no worse in both axes, better in one).
template <typename Payload>
bool Dominates(const ParetoPoint<Payload>& a, const ParetoPoint<Payload>& b) {
  const bool no_worse = a.latency <= b.latency && a.throughput >= b.throughput;
  const bool better = a.latency < b.latency || a.throughput > b.throughput;
  return no_worse && better;
}

/**
 * Reduces `points` to its Pareto frontier.
 *
 * The result is sorted by ascending latency with strictly increasing
 * throughput; exact duplicates keep their first occurrence. Runs in
 * O(n log n).
 */
template <typename Payload>
std::vector<ParetoPoint<Payload>> ParetoFrontier(
    std::vector<ParetoPoint<Payload>> points) {
  if (points.empty()) {
    return points;
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const auto& a, const auto& b) {
                     if (a.latency != b.latency) {
                       return a.latency < b.latency;
                     }
                     return a.throughput > b.throughput;
                   });
  std::vector<ParetoPoint<Payload>> frontier;
  double best_throughput = -1.0;
  for (auto& p : points) {
    if (p.throughput > best_throughput) {
      best_throughput = p.throughput;
      frontier.push_back(std::move(p));
    }
  }
  return frontier;
}

/**
 * Incrementally maintained Pareto frontier.
 *
 * Offer() costs O(log n) for rejected (dominated) candidates, which is
 * the common case in large searches; accepted candidates additionally
 * erase the points they dominate. The payload is only materialized for
 * accepted points, so callers can pass a factory for expensive
 * payloads.
 *
 * Exact (latency, throughput) duplicates are arbitrated by a total
 * order on the payload (`PayloadLess`, std::less by default): the
 * smallest payload survives. This makes the final frontier — points
 * AND payloads — a pure function of the offered set, independent of
 * offer order, so frontiers built concurrently and merged in any order
 * are bit-identical to a serial build (the optimizer's determinism
 * contract; mirrors the TopK equal-distance id tie-break).
 */
template <typename Payload, typename PayloadLess = std::less<Payload>>
class OnlineParetoFront {
 public:
  /// True if a point with this (latency, throughput) would be kept or
  /// could replace an objective-identical incumbent via the payload
  /// tie-break (Offer() arbitrates).
  bool WouldAccept(double latency, double throughput) const {
    auto it = points_.upper_bound(latency);
    if (it == points_.begin()) {
      return true;
    }
    --it;  // Greatest latency <= candidate's.
    if (it->second.throughput < throughput) {
      return true;
    }
    return it->first == latency && it->second.throughput == throughput;
  }

  /// Inserts the point if non-dominated; evicts points it dominates.
  /// Objective-identical ties keep the PayloadLess-smallest payload.
  /// Returns true when inserted (or when a tie replaced the payload).
  bool Offer(double latency, double throughput, Payload payload) {
    auto it = points_.find(latency);
    if (it != points_.end() && it->second.throughput == throughput) {
      // Equal on both objectives: offer order must not decide which
      // duplicate survives.
      if (PayloadLess{}(payload, it->second.payload)) {
        it->second.payload = std::move(payload);
        return true;
      }
      return false;
    }
    if (!WouldAccept(latency, throughput)) {
      return false;
    }
    // Drop an existing point at identical latency (it has lower
    // throughput, or WouldAccept had rejected us).
    if (it != points_.end()) {
      points_.erase(it);
    }
    it = points_
             .emplace(latency,
                      ParetoPoint<Payload>{latency, throughput,
                                           std::move(payload)})
             .first;
    // Erase successors this point dominates (higher latency, lower or
    // equal throughput).
    auto next = std::next(it);
    while (next != points_.end() && next->second.throughput <= throughput) {
      next = points_.erase(next);
    }
    return true;
  }

  /// Offers every point of `other` into this frontier, emptying it.
  /// With the payload tie-break, merging partial frontiers yields the
  /// same result for any merge order or work partition.
  void Merge(OnlineParetoFront&& other) {
    for (auto& [key, point] : other.points_) {
      (void)key;
      Offer(point.latency, point.throughput, std::move(point.payload));
    }
    other.points_.clear();
  }

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Extracts the frontier sorted by ascending latency.
  std::vector<ParetoPoint<Payload>> Take() {
    std::vector<ParetoPoint<Payload>> out;
    out.reserve(points_.size());
    for (auto& [key, point] : points_) {
      out.push_back(std::move(point));
    }
    points_.clear();
    return out;
  }

 private:
  std::map<double, ParetoPoint<Payload>> points_;
};

/// True if no point in `points` dominates another (frontier invariant).
template <typename Payload>
bool IsParetoFrontier(const std::vector<ParetoPoint<Payload>>& points) {
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); ++j) {
      if (i != j && Dominates(points[i], points[j])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rago

#endif  // RAGO_COMMON_PARETO_H
