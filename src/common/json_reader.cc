#include "common/json_reader.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace rago {
namespace {

[[noreturn]] void ParseFail(const std::string& what, size_t where) {
  throw ConfigError("JSON parse error at offset " + std::to_string(where) +
                    ": " + what);
}

}  // namespace

/// Recursive-descent parser over one in-memory document.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      ParseFail("trailing characters after document", pos_);
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      ParseFail("unexpected end of input", pos_);
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      ParseFail(std::string("expected '") + c + "'", pos_);
    }
    ++pos_;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t i = 0;
    while (literal[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != literal[i]) {
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.string_ = ParseString();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        if (ConsumeLiteral("true")) {
          value.bool_ = true;
        } else if (ConsumeLiteral("false")) {
          value.bool_ = false;
        } else {
          ParseFail("invalid literal", pos_);
        }
        return value;
      }
      case 'n': {
        if (!ConsumeLiteral("null")) {
          ParseFail("invalid literal", pos_);
        }
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (Peek() != '"') {
        ParseFail("expected object key string", pos_);
      }
      std::string key = ParseString();
      for (const auto& member : value.members_) {
        if (member.first == key) {
          ParseFail("duplicate object key '" + key + "'", pos_);
        }
      }
      Expect(':');
      value.members_.emplace_back(std::move(key), ParseValue());
      const char next = Peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(ParseValue());
      const char next = Peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        ParseFail("unterminated string", pos_);
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        ParseFail("unterminated escape", pos_);
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ParseFail("truncated \\u escape", pos_);
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              ParseFail("invalid \\u escape digit", pos_);
            }
          }
          // The writer only emits \u00XX control escapes; decode the
          // Basic-Latin range and reject what we never produce.
          if (code > 0x7f) {
            ParseFail("unsupported non-ASCII \\u escape", pos_);
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          ParseFail("invalid escape character", pos_);
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      ParseFail("expected a value", start);
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      ParseFail("malformed number '" + token + "'", start);
    }
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.number_ = number;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue
JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

bool
JsonValue::AsBool() const {
  RAGO_REQUIRE(is_bool(), "JSON value is not a boolean");
  return bool_;
}

double
JsonValue::AsNumber() const {
  RAGO_REQUIRE(is_number(), "JSON value is not a number");
  return number_;
}

int64_t
JsonValue::AsInt() const {
  return static_cast<int64_t>(AsNumber());
}

const std::string&
JsonValue::AsString() const {
  RAGO_REQUIRE(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>&
JsonValue::Items() const {
  RAGO_REQUIRE(is_array(), "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>&
JsonValue::Members() const {
  RAGO_REQUIRE(is_object(), "JSON value is not an object");
  return members_;
}

const JsonValue*
JsonValue::Find(const std::string& key) const {
  RAGO_REQUIRE(is_object(), "JSON value is not an object");
  for (const auto& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const JsonValue&
JsonValue::At(const std::string& key) const {
  const JsonValue* value = Find(key);
  RAGO_REQUIRE(value != nullptr, "missing JSON object key: " + key);
  return *value;
}

size_t
JsonValue::size() const {
  if (is_array()) {
    return items_.size();
  }
  if (is_object()) {
    return members_.size();
  }
  RAGO_REQUIRE(false, "JSON value has no size");
  return 0;
}

JsonValue
ParseJsonFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  RAGO_REQUIRE(file != nullptr, "cannot open JSON file: " + path);
  std::string text;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(file);
  return JsonValue::Parse(text);
}

}  // namespace rago
