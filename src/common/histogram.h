/**
 * @file histogram.h
 * Exact-sample latency recorder with percentile queries.
 *
 * The serving DES and the online runtime both report latency
 * percentiles (TTFT, TPOT, queue wait). Both are bound by the repo's
 * determinism contract — fixed seed => bit-identical statistics for
 * any thread count — so the recorder keeps the exact samples rather
 * than bucketed counts: percentiles are then pure functions of the
 * recorded multiset, never of a binning policy, and two runs that
 * produced the same samples report the same doubles to the last bit.
 * Sample volumes here are requests per run (thousands), so exactness
 * costs nothing material.
 */
#ifndef RAGO_COMMON_HISTOGRAM_H
#define RAGO_COMMON_HISTOGRAM_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rago {

/// Accumulates double samples; answers mean/min/max/percentile.
class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sum_ += value;
    sorted_ = false;
  }

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  /// Arithmetic mean; 0 when no samples were recorded.
  double Mean() const {
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
  }

  /**
   * Nearest-rank percentile: the sorted sample at index
   * floor(p * (n - 1)), the convention the serving DES has always used
   * for p99 TTFT. `p` must be in [0, 1]; 0 when no samples were
   * recorded.
   */
  double Percentile(double p) const {
    RAGO_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    const auto index = static_cast<size_t>(
        p * static_cast<double>(samples_.size() - 1));
    return samples_[index];
  }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

}  // namespace rago

#endif  // RAGO_COMMON_HISTOGRAM_H
