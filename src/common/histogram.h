/**
 * @file histogram.h
 * Latency recorder: exact samples with a bounded streaming fallback.
 *
 * The serving DES and the online runtime both report latency
 * percentiles (TTFT, TPOT, queue wait). Both are bound by the repo's
 * determinism contract — fixed seed => bit-identical statistics for
 * any thread count — so the recorder keeps the exact samples while it
 * can: percentiles are then pure functions of the recorded multiset,
 * never of a binning policy, and two runs that produced the same
 * samples report the same doubles to the last bit.
 *
 * Exactness is the right trade for runs of thousands of requests and
 * the wrong one for million-request soaks, where an unbounded sample
 * vector is a memory leak in slow motion. Each recorder therefore
 * carries a sample cap: when the cap is reached, the exact samples
 * fold into a bounded fixed-bin log-scale StreamingHistogram
 * (common/metrics.h) and recording continues in O(bins) memory.
 * The switchover is deterministic (a pure function of the sample
 * count) and surfaced via streaming_active(), never silent: consumers
 * like the runtime report how many recorders degraded to streaming
 * mode. Percentiles after the switchover are approximate within one
 * bin ratio; Mean/count stay exact throughout.
 */
#ifndef RAGO_COMMON_HISTOGRAM_H
#define RAGO_COMMON_HISTOGRAM_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"

namespace rago {

/// Accumulates double samples; answers mean/min/max/percentile.
class Histogram {
 public:
  /// Default cap: 1M exact samples (8 MB) before streaming mode.
  static constexpr int64_t kDefaultSampleCap = int64_t{1} << 20;

  Histogram() = default;
  /**
   * `sample_cap` exact samples are kept before the recorder folds
   * into `streaming_options` bins (must be positive). Percentile
   * convention and Mean stay identical either side of the switchover;
   * only percentile exactness degrades (bounded by the bin ratio).
   */
  explicit Histogram(int64_t sample_cap,
                     StreamingHistogramOptions streaming_options = {})
      : sample_cap_(sample_cap), streaming_options_(streaming_options) {
    RAGO_REQUIRE(sample_cap_ > 0, "sample cap must be positive");
    streaming_options_.Validate();
  }

  void Add(double value) {
    if (streaming_.has_value()) {
      streaming_->Add(value);
      return;
    }
    samples_.push_back(value);
    sum_ += value;
    sorted_ = false;
    if (static_cast<int64_t>(samples_.size()) >= sample_cap_) {
      SwitchToStreaming();
    }
  }

  int64_t count() const {
    return streaming_.has_value() ? streaming_->count()
                                  : static_cast<int64_t>(samples_.size());
  }
  bool empty() const { return count() == 0; }

  /// True once the sample cap forced bounded streaming recording.
  bool streaming_active() const { return streaming_.has_value(); }
  int64_t sample_cap() const { return sample_cap_; }

  /// Arithmetic mean (always exact); 0 when no samples were recorded.
  double Mean() const {
    if (streaming_.has_value()) {
      return streaming_->Mean();
    }
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
  }

  /**
   * Nearest-rank percentile: the sorted sample at index
   * floor(p * (n - 1)), the convention the serving DES has always used
   * for p99 TTFT. `p` must be in [0, 1]; 0 when no samples were
   * recorded. After the streaming switchover the same rank is answered
   * from the log-scale bins (approximate within one bin ratio).
   */
  double Percentile(double p) const {
    if (streaming_.has_value()) {
      return streaming_->Quantile(p);
    }
    RAGO_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0, 1]");
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    const auto index = static_cast<size_t>(
        p * static_cast<double>(samples_.size() - 1));
    return samples_[index];
  }

 private:
  void SwitchToStreaming() {
    StreamingHistogram streaming(streaming_options_);
    for (double sample : samples_) {
      streaming.Add(sample);
    }
    streaming_ = std::move(streaming);
    samples_.clear();
    samples_.shrink_to_fit();
  }

  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  int64_t sample_cap_ = kDefaultSampleCap;
  StreamingHistogramOptions streaming_options_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  std::optional<StreamingHistogram> streaming_;
};

}  // namespace rago

#endif  // RAGO_COMMON_HISTOGRAM_H
