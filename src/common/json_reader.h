/**
 * @file json_reader.h
 * Minimal JSON parser for the perf-regression tooling.
 *
 * The bench harnesses emit machine-readable `--json` documents through
 * json_writer.h; the perf-regression comparator (bench_obs_trajectory
 * --baseline) and the schema round-trip tests need to read them back.
 * This is the matching reader: a small recursive-descent parser into a
 * DOM of JsonValue nodes. It covers the JSON the writer produces
 * (objects, arrays, strings with the writer's escapes, finite numbers,
 * booleans, null) and rejects malformed input with ConfigError. Not a
 * general-purpose validator — no streaming, no surrogate pairs, input
 * must be UTF-8.
 */
#ifndef RAGO_COMMON_JSON_READER_H
#define RAGO_COMMON_JSON_READER_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rago {

/// One parsed JSON node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete document (throws ConfigError on malformed input
  /// or trailing garbage).
  static JsonValue Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ConfigError on type mismatch.
  bool AsBool() const;
  double AsNumber() const;
  int64_t AsInt() const;  ///< Number truncated toward zero.
  const std::string& AsString() const;

  /// Array elements, in document order.
  const std::vector<JsonValue>& Items() const;
  /// Object members, in document order (duplicate keys are rejected at
  /// parse time).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const;

  /// Object lookup: null when absent (object type required).
  const JsonValue* Find(const std::string& key) const;
  /// Object lookup that throws ConfigError when the key is absent.
  const JsonValue& At(const std::string& key) const;

  /// Elements of an array / members of an object.
  size_t size() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Reads and parses a whole JSON file (throws ConfigError on IO or
/// parse failure).
JsonValue ParseJsonFile(const std::string& path);

}  // namespace rago

#endif  // RAGO_COMMON_JSON_READER_H
