/**
 * @file math_util.h
 * Small numeric helpers shared across modules.
 */
#ifndef RAGO_COMMON_MATH_UTIL_H
#define RAGO_COMMON_MATH_UTIL_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rago {

/// Ceiling division for non-negative integers.
inline constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  return (a + b - 1) / b;
}

/// True if `x` is a (positive) power of two.
inline constexpr bool IsPowerOfTwo(int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x (x must be positive).
inline int64_t NextPowerOfTwo(int64_t x) {
  RAGO_CHECK(x > 0, "NextPowerOfTwo requires positive input");
  int64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

/// All powers of two in [lo, hi], inclusive.
inline std::vector<int64_t> PowersOfTwoInRange(int64_t lo, int64_t hi) {
  std::vector<int64_t> out;
  for (int64_t p = 1; p <= hi; p <<= 1) {
    if (p >= lo) {
      out.push_back(p);
    }
  }
  return out;
}

/// `n` logarithmically spaced values from lo to hi (inclusive); lo,hi > 0.
inline std::vector<double> LogSpace(double lo, double hi, int n) {
  RAGO_CHECK(lo > 0 && hi > 0 && n >= 2, "LogSpace needs lo,hi>0 and n>=2");
  std::vector<double> out(static_cast<size_t>(n));
  const double step = (std::log(hi) - std::log(lo)) / (n - 1);
  for (int i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] = std::exp(std::log(lo) + step * i);
  }
  return out;
}

/// Relative difference |a-b| / max(|a|,|b|,eps).
inline double RelDiff(double a, double b, double eps = 1e-30) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace rago

#endif  // RAGO_COMMON_MATH_UTIL_H
