#include "common/metrics.h"

#include <algorithm>
#include <cmath>

namespace rago {

void
StreamingHistogramOptions::Validate() const {
  RAGO_REQUIRE(min_value > 0.0, "min_value must be positive");
  RAGO_REQUIRE(max_value > min_value, "max_value must exceed min_value");
  RAGO_REQUIRE(bins_per_decade > 0, "bins_per_decade must be positive");
}

StreamingHistogram::StreamingHistogram(StreamingHistogramOptions options)
    : options_(options) {
  options_.Validate();
  log_min_ = std::log10(options_.min_value);
  const double decades =
      std::log10(options_.max_value) - log_min_;
  const auto bins = static_cast<size_t>(
      std::ceil(decades * options_.bins_per_decade - 1e-12));
  bins_.assign(std::max<size_t>(bins, 1), 0);
}

size_t
StreamingHistogram::BinIndex(double value) const {
  // Callers guarantee min_value <= value < max_value here.
  const double offset =
      (std::log10(value) - log_min_) * options_.bins_per_decade;
  auto bin = static_cast<size_t>(std::max(offset, 0.0));
  return std::min(bin, bins_.size() - 1);
}

void
StreamingHistogram::Add(double value) {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_seen_ = max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  if (!(value >= options_.min_value)) {  // Includes <= 0 and NaN.
    ++underflow_;
  } else if (value >= options_.max_value) {
    ++overflow_;
  } else {
    ++bins_[BinIndex(value)];
  }
}

void
StreamingHistogram::Merge(const StreamingHistogram& other) {
  RAGO_REQUIRE(options_ == other.options_,
               "streaming histograms merge only with identical binning");
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

double
StreamingHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t
StreamingHistogram::bin_count(size_t bin) const {
  RAGO_REQUIRE(bin < bins_.size(), "bin index out of range");
  return bins_[bin];
}

double
StreamingHistogram::BinLower(size_t bin) const {
  RAGO_REQUIRE(bin < bins_.size(), "bin index out of range");
  return std::pow(
      10.0, log_min_ + static_cast<double>(bin) / options_.bins_per_decade);
}

double
StreamingHistogram::BinUpper(size_t bin) const {
  RAGO_REQUIRE(bin < bins_.size(), "bin index out of range");
  return std::pow(10.0, log_min_ + static_cast<double>(bin + 1) /
                            options_.bins_per_decade);
}

double
StreamingHistogram::Quantile(double p) const {
  RAGO_REQUIRE(p >= 0.0 && p <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) {
    return 0.0;
  }
  const auto rank = static_cast<int64_t>(
      p * static_cast<double>(count_ - 1));
  int64_t seen = underflow_;
  if (rank < seen) {
    return min_seen_;  // Underflow region: exact minimum.
  }
  for (size_t bin = 0; bin < bins_.size(); ++bin) {
    seen += bins_[bin];
    if (rank < seen) {
      const double mid = std::sqrt(BinLower(bin) * BinUpper(bin));
      return std::clamp(mid, min_seen_, max_seen_);
    }
  }
  return max_seen_;  // Overflow region: exact maximum.
}

MetricCounter&
MetricsRegistry::GetCounter(const std::string& name) {
  RAGO_REQUIRE(!name.empty(), "metric names must be non-empty");
  return counters_[name];
}

MetricGauge&
MetricsRegistry::GetGauge(const std::string& name) {
  RAGO_REQUIRE(!name.empty(), "metric names must be non-empty");
  return gauges_[name];
}

StreamingHistogram&
MetricsRegistry::GetHistogram(const std::string& name,
                              StreamingHistogramOptions options) {
  RAGO_REQUIRE(!name.empty(), "metric names must be non-empty");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, StreamingHistogram(options)).first;
  }
  return it->second;
}

const MetricCounter*
MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const MetricGauge*
MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const StreamingHistogram*
MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void
MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Int(counter.value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Number(gauge.value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Int(histogram.count());
    json.Key("mean").Number(histogram.Mean());
    json.Key("min").Number(histogram.Min());
    json.Key("max").Number(histogram.Max());
    json.Key("p50").Number(histogram.Quantile(0.5));
    json.Key("p95").Number(histogram.Quantile(0.95));
    json.Key("p99").Number(histogram.Quantile(0.99));
    json.Key("underflow").Int(histogram.underflow());
    json.Key("overflow").Int(histogram.overflow());
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace rago
