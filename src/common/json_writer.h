/**
 * @file json_writer.h
 * Minimal streaming JSON emitter for machine-readable bench output.
 *
 * The bench harnesses print human-readable TextTables; perf-trajectory
 * tracking across PRs additionally needs a stable machine format
 * (`--json out.json` -> BENCH_*.json). This writer covers exactly
 * that: nested objects/arrays, strings, finite numbers, booleans. No
 * parsing, no dependencies.
 */
#ifndef RAGO_COMMON_JSON_WRITER_H
#define RAGO_COMMON_JSON_WRITER_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"

namespace rago {

/// Append-only JSON builder with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  /// Emits an object key; the next value call supplies its value.
  JsonWriter& Key(const std::string& name) {
    Separate();
    AppendString(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Separate();
    AppendString(value);
    return *this;
  }

  JsonWriter& Number(double value) {
    Separate();
    if (!std::isfinite(value)) {
      out_ += "null";  // JSON has no inf/nan.
      return *this;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    out_ += buffer;
    return *this;
  }

  JsonWriter& Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
    return *this;
  }

  /// Finished document; all containers must be closed.
  const std::string& str() const {
    RAGO_CHECK(depth_.empty(), "unclosed JSON container");
    return out_;
  }

 private:
  JsonWriter& Open(char bracket) {
    Separate();
    out_ += bracket;
    depth_.push_back(false);
    return *this;
  }

  JsonWriter& Close(char bracket) {
    RAGO_CHECK(!depth_.empty(), "unbalanced JSON close");
    depth_.pop_back();
    out_ += bracket;
    return *this;
  }

  /// Inserts a comma before siblings; keys suppress it for their value.
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) {
        out_ += ',';
      }
      depth_.back() = true;
    }
  }

  void AppendString(const std::string& value) {
    out_ += '"';
    for (char c : value) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> depth_;  ///< Per container: has emitted a sibling.
  bool pending_value_ = false;
};

}  // namespace rago

#endif  // RAGO_COMMON_JSON_WRITER_H
