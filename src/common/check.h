/**
 * @file check.h
 * Error handling primitives.
 *
 * The library distinguishes two failure classes, mirroring gem5's
 * fatal/panic split:
 *  - configuration errors (the caller's fault): throw ConfigError via
 *    RAGO_REQUIRE so applications can catch and report them;
 *  - internal invariant violations (a library bug): RAGO_CHECK throws
 *    InternalError with file/line context.
 *
 * This split is enforced mechanically: rago_lint's `assert` and
 * `raw-throw` rules (tools/lint/) reject C assert() and
 * `throw std::...` in favor of these primitives.
 */
#ifndef RAGO_COMMON_CHECK_H
#define RAGO_COMMON_CHECK_H

#include <stdexcept>
#include <string>

namespace rago {

/// Thrown when user-provided configuration is invalid.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (library bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void ThrowConfig(const std::string& msg) {
  throw ConfigError(msg);
}

[[noreturn]] inline void ThrowInternal(const char* file, int line,
                                       const std::string& msg) {
  throw InternalError(std::string(file) + ":" + std::to_string(line) + ": " +
                      msg);
}

}  // namespace detail
}  // namespace rago

/// Validate user-facing configuration; throws rago::ConfigError.
#define RAGO_REQUIRE(cond, msg)            \
  do {                                     \
    if (!(cond)) {                         \
      ::rago::detail::ThrowConfig((msg));  \
    }                                      \
  } while (false)

/// Validate internal invariants; throws rago::InternalError.
#define RAGO_CHECK(cond, msg)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      ::rago::detail::ThrowInternal(__FILE__, __LINE__, (msg)); \
    }                                                           \
  } while (false)

#endif  // RAGO_COMMON_CHECK_H
