#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rago {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << value;
  return os.str();
}

std::string TextTable::ToString() const {
  // Compute per-column widths across header and rows.
  std::vector<size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };

  size_t total = 1;
  for (size_t w : widths) {
    total += w + 3;
  }
  const std::string rule(total, '-');

  if (!title_.empty()) {
    os << title_ << "\n";
  }
  os << rule << "\n";
  if (!header_.empty()) {
    emit(header_);
    os << rule << "\n";
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  os << rule << "\n";
  return os.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace rago
