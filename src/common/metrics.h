/**
 * @file metrics.h
 * Named-metric registry with bounded-memory streaming histograms.
 *
 * The exact-sample recorder (common/histogram.h) keeps every sample so
 * percentiles are bit-exact — the right trade for runs of thousands of
 * requests, and the wrong one for million-request soaks. This header
 * adds the bounded counterpart: a fixed-bin log-scale histogram whose
 * memory is a function of its binning policy, never of the sample
 * count, plus counters/gauges and a registry that surfaces all of them
 * under stable names with deterministic (name-sorted) JSON emission.
 *
 * Everything here is deterministic given the same sample sequence and
 * thread-compatible-but-not-thread-safe: the serving runtime mutates
 * metrics only inside its serial event loop, matching the repo's
 * fixed-seed => bit-identical telemetry contract.
 */
#ifndef RAGO_COMMON_METRICS_H
#define RAGO_COMMON_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/json_writer.h"

namespace rago {

/// Binning policy of a streaming histogram. Two histograms merge only
/// when their policies are identical.
struct StreamingHistogramOptions {
  /// Lower edge of the first regular bin. Samples below it (including
  /// zero and negatives) land in the underflow bin.
  double min_value = 1e-6;
  /// Upper edge of the last regular bin. Samples at or above it land
  /// in the overflow bin.
  double max_value = 1e4;
  /// Log-scale resolution: bins per factor-of-10. Quantile error is
  /// bounded by one bin ratio, 10^(1/bins_per_decade).
  int bins_per_decade = 32;

  /// Throws ConfigError on non-positive bounds/resolution or
  /// max_value <= min_value.
  void Validate() const;

  friend bool operator==(const StreamingHistogramOptions& a,
                         const StreamingHistogramOptions& b) {
    return a.min_value == b.min_value && a.max_value == b.max_value &&
           a.bins_per_decade == b.bins_per_decade;
  }
};

/**
 * Fixed-bin log-scale histogram: O(bins) memory for any sample count.
 * Quantiles use the same nearest-rank convention as the exact recorder
 * and answer the geometric midpoint of the rank's bin, clamped to the
 * exactly-tracked [min_seen, max_seen] range, so the reported value is
 * within one bin ratio of the exact-sample quantile.
 */
class StreamingHistogram {
 public:
  explicit StreamingHistogram(StreamingHistogramOptions options = {});

  void Add(double value);

  /// Folds `other` into this histogram. Counts add exactly, so merging
  /// is associative and commutative bin-for-bin; requires identical
  /// binning policies (throws ConfigError otherwise).
  void Merge(const StreamingHistogram& other);

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double Sum() const { return sum_; }
  /// Arithmetic mean (exact); 0 when no samples were recorded.
  double Mean() const;
  /// Exact smallest/largest sample seen; 0 when empty.
  double Min() const { return count_ > 0 ? min_seen_ : 0.0; }
  double Max() const { return count_ > 0 ? max_seen_ : 0.0; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }

  /**
   * Nearest-rank quantile over the bin counts: the bin holding sorted
   * sample floor(p * (n - 1)) answers its geometric midpoint, clamped
   * to the exact extremes. `p` must be in [0, 1]; 0 when empty.
   */
  double Quantile(double p) const;

  const StreamingHistogramOptions& options() const { return options_; }
  size_t num_bins() const { return bins_.size(); }
  int64_t bin_count(size_t bin) const;
  /// Lower/upper value edges of a regular bin.
  double BinLower(size_t bin) const;
  double BinUpper(size_t bin) const;

 private:
  size_t BinIndex(double value) const;

  StreamingHistogramOptions options_;
  double log_min_ = 0.0;         ///< log10(min_value), precomputed.
  std::vector<int64_t> bins_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Monotonically increasing integer metric.
class MetricCounter {
 public:
  void Inc(int64_t delta = 1) {
    RAGO_REQUIRE(delta >= 0, "counter increments must be non-negative");
    value_ += delta;
  }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-written double metric.
class MetricGauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/**
 * Owns named counters, gauges, and streaming histograms. Get-or-create
 * lookup; iteration and JSON emission are name-sorted so two runs that
 * recorded the same values emit byte-identical documents.
 */
class MetricsRegistry {
 public:
  /// Get-or-create. Names must be non-empty and are namespaced by
  /// metric kind (a counter and a gauge may share a name).
  MetricCounter& GetCounter(const std::string& name);
  MetricGauge& GetGauge(const std::string& name);
  /// `options` configures the histogram on first creation and is
  /// ignored on later lookups of the same name.
  StreamingHistogram& GetHistogram(const std::string& name,
                                   StreamingHistogramOptions options = {});

  /// Null when the metric was never created (const lookup, no insert).
  const MetricCounter* FindCounter(const std::string& name) const;
  const MetricGauge* FindGauge(const std::string& name) const;
  const StreamingHistogram* FindHistogram(const std::string& name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  void Clear();

  /**
   * Emits {"counters": {...}, "gauges": {...}, "histograms": {name:
   * {count, mean, min, max, p50, p95, p99, underflow, overflow}}} as
   * one object value into `json` (caller supplies the surrounding
   * key/document structure).
   */
  void WriteJson(JsonWriter& json) const;

 private:
  std::map<std::string, MetricCounter> counters_;
  std::map<std::string, MetricGauge> gauges_;
  std::map<std::string, StreamingHistogram> histograms_;
};

}  // namespace rago

#endif  // RAGO_COMMON_METRICS_H
